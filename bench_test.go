// The benchmarks live in an external test package: the harness drives the
// public aurora API (the tenants experiment opens volumes on a shared
// fleet), so an in-package test file importing harness would be a cycle.
package aurora_test

import (
	"fmt"
	"testing"

	"aurora"
	"aurora/internal/harness"
)

// One benchmark per table and figure of the paper's evaluation. Each
// iteration runs the corresponding harness experiment at quick scale and
// reports its headline metrics; `cmd/aurora-bench` runs the same
// experiments at full scale and prints the paper-shaped tables.

func benchExperiment(b *testing.B, id string, report ...string) {
	b.Helper()
	s := harness.Quick()
	fn, ok := harness.Registry[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var last *harness.Result
	for i := 0; i < b.N; i++ {
		last = fn(s)
	}
	for _, m := range report {
		if v, ok := last.Metrics[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

func BenchmarkTable1NetworkIOs(b *testing.B) {
	benchExperiment(b, "table1", "aurora_ios_per_txn", "mysql_ios_per_txn", "txn_ratio")
}

func BenchmarkFigure6ReadScaling(b *testing.B) {
	benchExperiment(b, "fig6", "aurora_scaling_factor", "aurora_vs_mysql_top")
}

func BenchmarkFigure7WriteScaling(b *testing.B) {
	benchExperiment(b, "fig7", "aurora_scaling_factor", "aurora_vs_mysql_top")
}

func BenchmarkTable2DataSizes(b *testing.B) {
	benchExperiment(b, "table2", "aurora_degradation", "mysql_degradation", "advantage_at_max")
}

func BenchmarkTable3Connections(b *testing.B) {
	benchExperiment(b, "table3", "aurora_growth", "mysql_tail_vs_peak")
}

func BenchmarkTable4ReplicaLag(b *testing.B) {
	benchExperiment(b, "table4", "aurora_lag_ms_at_1000", "mysql_lag_ms_at_1000")
}

func BenchmarkTable5TPCC(b *testing.B) {
	benchExperiment(b, "table5", "min_ratio", "max_ratio")
}

func BenchmarkFigure8ResponseTime(b *testing.B) {
	benchExperiment(b, "fig8", "before_ms", "after_ms", "improvement")
}

func BenchmarkFigure9SelectLatency(b *testing.B) {
	benchExperiment(b, "fig9", "p95_improvement")
}

func BenchmarkFigure10InsertLatency(b *testing.B) {
	benchExperiment(b, "fig10", "p95_improvement")
}

func BenchmarkFigure11MultiReplicaLag(b *testing.B) {
	benchExperiment(b, "fig11", "max_lag_ms")
}

func BenchmarkFigure12ZDP(b *testing.B) {
	benchExperiment(b, "fig12", "pause_ms", "failed_stmts")
}

func BenchmarkRecoveryTime(b *testing.B) {
	benchExperiment(b, "recovery", "aurora_ms_at_max", "mysql_ms_at_max")
}

func BenchmarkDurabilityModel(b *testing.B) {
	benchExperiment(b, "durability", "aurora_read_loss", "twothree_read_loss")
}

func BenchmarkAblationSyncCommit(b *testing.B) {
	benchExperiment(b, "ablation-sync-commit", "speedup")
}

func BenchmarkAblationCoalescing(b *testing.B) {
	benchExperiment(b, "ablation-coalesce", "coalesced_ios", "uncoalesced_ios")
}

func BenchmarkAblationFullPageWrites(b *testing.B) {
	benchExperiment(b, "ablation-full-pages", "amplification")
}

func BenchmarkAblationMaterialization(b *testing.B) {
	benchExperiment(b, "ablation-materialize", "chain_before", "chain_after")
}

// Micro-benchmarks of the public API on a fast local cluster.

func benchCluster(b *testing.B) *aurora.Cluster {
	b.Helper()
	c, err := aurora.NewCluster(aurora.Options{Name: "bench", DisableBackground: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

func BenchmarkClusterPut(b *testing.B) {
	c := benchCluster(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put([]byte(fmt.Sprintf("bench-%09d", i)), []byte("value")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterGet(b *testing.B) {
	c := benchCluster(b)
	const rows = 10000
	for i := 0; i < rows; i++ {
		if err := c.Put([]byte(fmt.Sprintf("bench-%09d", i)), []byte("value")); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := c.Get([]byte(fmt.Sprintf("bench-%09d", i%rows))); err != nil || !ok {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterTxnCommit(b *testing.B) {
	c := benchCluster(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := c.Begin()
		for j := 0; j < 4; j++ {
			if err := tx.Put([]byte(fmt.Sprintf("t%d-%d", i, j)), []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterParallelPut(b *testing.B) {
	c := benchCluster(b)
	b.ReportAllocs()
	b.ResetTimer()
	var n int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n++
			if err := c.Put([]byte(fmt.Sprintf("p-%d-%d", n, b.N)), []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
	})
}
