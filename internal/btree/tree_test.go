package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"aurora/internal/core"
	"aurora/internal/page"
)

// memStore is an in-memory Store for unit tests.
type memStore struct {
	pages map[core.PageID]page.Page
}

func newMemStore() *memStore { return &memStore{pages: make(map[core.PageID]page.Page)} }

func (s *memStore) Page(id core.PageID) (page.Page, error) {
	p, ok := s.pages[id]
	if !ok {
		return nil, fmt.Errorf("memstore: page %d missing", id)
	}
	return p, nil
}

func (s *memStore) FreshPage(id core.PageID) (page.Page, error) {
	p := page.New(id)
	s.pages[id] = p
	return p, nil
}

func newTree(t *testing.T) (*Tree, *memStore) {
	t.Helper()
	s := newMemStore()
	rec := NewRecorder()
	tr, err := Create(s, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Touched() {
		t.Fatal("create recorded nothing")
	}
	return tr, s
}

func TestCreateAndOpen(t *testing.T) {
	_, s := newTree(t)
	tr, err := Open(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := tr.Get([]byte("missing")); err != nil || ok {
		t.Fatalf("get on empty tree: %v %v", ok, err)
	}
	// Open on a non-tree store fails.
	bad := newMemStore()
	if _, err := bad.FreshPage(MetaPageID); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Fatal("Open accepted an unformatted meta page")
	}
}

func TestPutGetDelete(t *testing.T) {
	tr, _ := newTree(t)
	rec := NewRecorder()
	if err := tr.Put(rec, []byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put(rec, []byte("beta"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get([]byte("alpha"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("get alpha: %q %v %v", v, ok, err)
	}
	// Replace.
	if err := tr.Put(rec, []byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = tr.Get([]byte("alpha"))
	if string(v) != "one" {
		t.Fatalf("after replace: %q", v)
	}
	rows, _ := tr.Rows()
	if rows != 2 {
		t.Fatalf("rows %d, want 2", rows)
	}
	// Delete.
	ok, err = tr.Delete(rec, []byte("alpha"))
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if _, ok, _ := tr.Get([]byte("alpha")); ok {
		t.Fatal("deleted key still visible")
	}
	if ok, _ := tr.Delete(rec, []byte("alpha")); ok {
		t.Fatal("double delete reported true")
	}
	rows, _ = tr.Rows()
	if rows != 1 {
		t.Fatalf("rows %d, want 1", rows)
	}
}

func TestValidationErrors(t *testing.T) {
	tr, _ := newTree(t)
	rec := NewRecorder()
	if err := tr.Put(rec, nil, []byte("v")); err != ErrEmptyKey {
		t.Fatalf("empty key: %v", err)
	}
	if err := tr.Put(rec, bytes.Repeat([]byte("k"), MaxKey+1), nil); err != ErrKeyTooLarge {
		t.Fatalf("big key: %v", err)
	}
	if err := tr.Put(rec, []byte("k"), bytes.Repeat([]byte("v"), MaxValue+1)); err != ErrValueTooLarge {
		t.Fatalf("big value: %v", err)
	}
}

func TestSplitsAndOrderedScan(t *testing.T) {
	tr, _ := newTree(t)
	rec := NewRecorder()
	const n = 2000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		k := []byte(fmt.Sprintf("key%06d", i))
		v := []byte(fmt.Sprintf("val-%d", i))
		if err := tr.Put(rec, k, v); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rows, _ := tr.Rows()
	if rows != n {
		t.Fatalf("rows %d, want %d", rows, n)
	}
	// Full scan is ordered and complete.
	var got []string
	if err := tr.Scan(nil, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("scan found %d, want %d", len(got), n)
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("scan out of order")
	}
	// Point lookups across the whole range.
	for i := 0; i < n; i += 97 {
		k := []byte(fmt.Sprintf("key%06d", i))
		v, ok, err := tr.Get(k)
		if err != nil || !ok {
			t.Fatalf("get %s: %v %v", k, ok, err)
		}
		if string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("get %s = %q", k, v)
		}
	}
}

func TestRangeScanBounds(t *testing.T) {
	tr, _ := newTree(t)
	rec := NewRecorder()
	for i := 0; i < 100; i++ {
		if err := tr.Put(rec, []byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := tr.Scan([]byte("k010"), []byte("k020"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "k010" || got[9] != "k019" {
		t.Fatalf("range scan %v", got)
	}
	// Early stop.
	count := 0
	if err := tr.Scan(nil, nil, func(k, v []byte) bool {
		count++
		return count < 5
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestCompactionReclaimsDeadSpace(t *testing.T) {
	tr, s := newTree(t)
	rec := NewRecorder()
	// Repeatedly overwrite one key with values large enough to fill the
	// leaf with dead entries; without compaction this would split.
	val := bytes.Repeat([]byte("x"), 256)
	for i := 0; i < 200; i++ {
		if err := tr.Put(rec, []byte("hot"), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The tree must still be a single leaf plus meta: compaction, not
	// splitting, absorbed the churn.
	if len(s.pages) != 2 {
		t.Fatalf("pages %d, want 2 (meta+leaf)", len(s.pages))
	}
	rows, _ := tr.Rows()
	if rows != 1 {
		t.Fatalf("rows %d", rows)
	}
}

func TestDeltaRecordsAreCompact(t *testing.T) {
	tr, _ := newTree(t)
	seed := NewRecorder()
	if err := tr.Put(seed, []byte("seed"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// A single small put into a non-splitting leaf must log far less than
	// a page — the heart of "only redo crosses the network" (§3.2).
	rec := NewRecorder()
	if err := tr.Put(rec, []byte("key-abc"), []byte("value-xyz")); err != nil {
		t.Fatal(err)
	}
	m := &core.MTR{Txn: 1}
	if err := rec.AppendRecords(m, func(core.PageID) core.PGID { return 0 }); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range m.Records {
		total += len(r.Data)
	}
	if total == 0 {
		t.Fatal("no delta bytes recorded")
	}
	if total > 256 {
		t.Fatalf("single put logged %d delta bytes, want << page size", total)
	}
}

func TestRecorderRollback(t *testing.T) {
	tr, _ := newTree(t)
	rec := NewRecorder()
	if err := tr.Put(rec, []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	rec2 := NewRecorder()
	if err := tr.Put(rec2, []byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	rec2.Rollback()
	if _, ok, _ := tr.Get([]byte("b")); ok {
		t.Fatal("rolled-back key visible")
	}
	if v, ok, _ := tr.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatal("rollback damaged earlier data")
	}
	// Rows counter also restored (meta page was touched by rec2's Put).
	rows, _ := tr.Rows()
	if rows != 1 {
		t.Fatalf("rows %d after rollback, want 1", rows)
	}
}

// Model-based property test: random Put/Delete/Get against a map oracle,
// with invariant checks and a final full comparison via Scan.
func TestTreeMatchesModel(t *testing.T) {
	for _, seed := range []int64{7, 42, 99, 12345} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			tr, _ := newTree(t)
			rec := NewRecorder()
			rng := rand.New(rand.NewSource(seed))
			model := make(map[string]string)
			keyFor := func() []byte {
				return []byte(fmt.Sprintf("k%04d", rng.Intn(800)))
			}
			for op := 0; op < 5000; op++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4, 5: // put
					k := keyFor()
					v := []byte(fmt.Sprintf("v%d-%d", op, rng.Intn(1000)))
					if err := tr.Put(rec, k, v); err != nil {
						t.Fatalf("op %d put: %v", op, err)
					}
					model[string(k)] = string(v)
				case 6, 7: // delete
					k := keyFor()
					ok, err := tr.Delete(rec, k)
					if err != nil {
						t.Fatalf("op %d delete: %v", op, err)
					}
					_, inModel := model[string(k)]
					if ok != inModel {
						t.Fatalf("op %d delete mismatch: tree %v model %v", op, ok, inModel)
					}
					delete(model, string(k))
				default: // get
					k := keyFor()
					v, ok, err := tr.Get(k)
					if err != nil {
						t.Fatalf("op %d get: %v", op, err)
					}
					want, inModel := model[string(k)]
					if ok != inModel || (ok && string(v) != want) {
						t.Fatalf("op %d get mismatch: %q %v vs %q %v", op, v, ok, want, inModel)
					}
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			rows, _ := tr.Rows()
			if int(rows) != len(model) {
				t.Fatalf("rows %d, model %d", rows, len(model))
			}
			got := make(map[string]string)
			if err := tr.Scan(nil, nil, func(k, v []byte) bool {
				got[string(k)] = string(v)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(model) {
				t.Fatalf("scan %d entries, model %d", len(got), len(model))
			}
			for k, v := range model {
				if got[k] != v {
					t.Fatalf("key %q: tree %q model %q", k, got[k], v)
				}
			}
		})
	}
}

func BenchmarkTreePut(b *testing.B) {
	s := newMemStore()
	rec := NewRecorder()
	tr, err := Create(s, rec)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("key%09d", i))
		if err := tr.Put(rec, k, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeGet(b *testing.B) {
	s := newMemStore()
	rec := NewRecorder()
	tr, err := Create(s, rec)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		k := []byte(fmt.Sprintf("key%09d", i))
		if err := tr.Put(rec, k, k); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("key%09d", i%10000))
		if _, ok, err := tr.Get(k); err != nil || !ok {
			b.Fatal(err)
		}
	}
}
