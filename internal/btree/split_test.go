package btree

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestSplitMixedEntrySizes reproduces a crash the chaos matrix found: a
// leaf holding a skewed mix of tiny and near-MaxValue entries used to split
// at the entry-count midpoint, which can assign one half more bytes than a
// page holds and write out of bounds during the rewrite. Splits must
// balance bytes, not counts.
func TestSplitMixedEntrySizes(t *testing.T) {
	tr, _ := newTree(t)
	rec := NewRecorder()
	rng := rand.New(rand.NewSource(42))
	want := map[string][]byte{}
	// Interleave tiny and huge values under keys that collate into the same
	// leaves, across enough inserts to force many leaf and internal splits.
	for i := 0; i < 400; i++ {
		key := fmt.Sprintf("k%03d-%02d", rng.Intn(100), i%7)
		size := 8
		if i%2 == 0 {
			size = MaxValue - rng.Intn(64)
		}
		val := make([]byte, size)
		rng.Read(val)
		if err := tr.Put(rec, []byte(key), val); err != nil {
			t.Fatalf("put %s (%dB): %v", key, size, err)
		}
		want[key] = val
	}
	for key, val := range want {
		got, ok, err := tr.Get([]byte(key))
		if err != nil || !ok {
			t.Fatalf("get %s: ok=%v err=%v", key, ok, err)
		}
		if string(got) != string(val) {
			t.Fatalf("key %s: %d bytes differ from the %d written", key, len(got), len(val))
		}
	}
	// Skewed internal keys: long keys adjacent to short ones exercise the
	// byte-balanced internal split as separators accumulate.
	long := make([]byte, MaxKey)
	for i := 0; i < 200; i++ {
		copy(long, fmt.Sprintf("L%03d", i))
		key := append([]byte(nil), long[:16+rng.Intn(MaxKey-16)]...)
		if err := tr.Put(rec, key, []byte("x")); err != nil {
			t.Fatalf("long key %d: %v", i, err)
		}
		if _, ok, err := tr.Get(key); err != nil || !ok {
			t.Fatalf("long key %d readback: ok=%v err=%v", i, ok, err)
		}
	}
}
