// Package btree implements the access method of the database engine: a
// B+-tree over fixed-size pages, standing in for InnoDB's clustered index.
// The tree never writes pages anywhere — it mutates cached page images and
// records every structural or row change as redo log records (byte deltas
// between before- and after-images), grouped into mini-transactions by the
// caller. Splits and merges of tree pages are exactly the "groups of
// operations that must be executed atomically" that InnoDB's MTRs model
// (§5).
package btree

import (
	"aurora/internal/core"
	"aurora/internal/page"
)

// diffGap is the merge distance for delta spans: nearby edits within a page
// collapse into one record.
const diffGap = 24

// Recorder captures the before-images of every page an operation touches
// and turns the accumulated changes into redo records for one MTR.
type Recorder struct {
	before map[core.PageID][]byte
	pages  map[core.PageID]page.Page
	order  []core.PageID
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		before: make(map[core.PageID][]byte),
		pages:  make(map[core.PageID]page.Page),
	}
}

// Touch registers a page about to be mutated, saving its before-image on
// first touch. It must be called before the first mutation of each page.
func (r *Recorder) Touch(id core.PageID, p page.Page) {
	if _, ok := r.before[id]; ok {
		return
	}
	r.before[id] = append([]byte(nil), p.Payload()...)
	r.pages[id] = p
	r.order = append(r.order, id)
}

// Touched reports whether any page was modified.
func (r *Recorder) Touched() bool { return len(r.order) > 0 }

// AppendRecords emits the delta records for every touched page, in touch
// order, into m. pgOf maps pages onto protection groups.
func (r *Recorder) AppendRecords(m *core.MTR, pgOf func(core.PageID) core.PGID) error {
	for _, id := range r.order {
		p := r.pages[id]
		recs, err := page.DiffRecords(pgOf(id), id, m.Txn, r.before[id], p.Payload(), diffGap)
		if err != nil {
			return err
		}
		m.Records = append(m.Records, recs...)
	}
	return nil
}

// AppendFullPages emits a full-image record for every touched page instead
// of byte deltas — the "ship whole pages" ablation that quantifies why
// Aurora writes only redo (§3.1: what is written matters as much as how).
func (r *Recorder) AppendFullPages(m *core.MTR, pgOf func(core.PageID) core.PGID) {
	for _, id := range r.order {
		p := r.pages[id]
		m.Records = append(m.Records, core.Record{
			Type: core.RecPageInit, PG: pgOf(id), Page: id, Txn: m.Txn,
			Data: append([]byte(nil), p.Payload()...),
		})
	}
}

// StampLSNs stores the final LSN each touched page received into the page
// header, maintaining the engine invariant that a cached page's LSN names
// its latest logged change. lastFor reports the highest LSN assigned to a
// page's records (volume.PendingWrite.LastLSNFor).
func (r *Recorder) StampLSNs(lastFor func(core.PageID) core.LSN) {
	for _, id := range r.order {
		if lsn := lastFor(id); lsn > r.pages[id].LSN() {
			r.pages[id].SetLSN(lsn)
		}
	}
}

// Rollback restores every touched page to its before-image — used when an
// operation fails midway (e.g. a value too large) so the cache never holds
// unlogged garbage.
func (r *Recorder) Rollback() {
	for _, id := range r.order {
		copy(r.pages[id].Payload(), r.before[id])
	}
	r.Reset()
}

// Reset clears the recorder for reuse.
func (r *Recorder) Reset() {
	r.before = make(map[core.PageID][]byte)
	r.pages = make(map[core.PageID]page.Page)
	r.order = r.order[:0]
}

// TouchedPages returns the ids of the touched pages in touch order.
func (r *Recorder) TouchedPages() []core.PageID {
	return append([]core.PageID(nil), r.order...)
}
