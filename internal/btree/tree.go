package btree

import (
	"bytes"
	"errors"
	"fmt"

	"aurora/internal/core"
	"aurora/internal/page"
)

// Store supplies page images to the tree. The engine implements it on top
// of the buffer cache and the storage volume.
type Store interface {
	// Page returns the current mutable image of an existing page.
	Page(id core.PageID) (page.Page, error)
	// FreshPage materializes a brand-new zeroed page image for id without
	// consulting storage (the page has never been written).
	FreshPage(id core.PageID) (page.Page, error)
}

// MetaPageID is the well-known page holding the tree metadata.
const MetaPageID core.PageID = 0

// Tree is a B+-tree rooted at the meta page. All mutating methods must be
// called under the caller's exclusive latch; readers under a shared latch.
type Tree struct {
	store Store
}

// Create formats a brand-new tree: a meta page and an empty root leaf.
// Mutations are captured by rec; the caller ships them as the first MTR.
func Create(store Store, rec *Recorder) (*Tree, error) {
	mp, err := store.FreshPage(MetaPageID)
	if err != nil {
		return nil, err
	}
	rec.Touch(MetaPageID, mp)
	rootID := MetaPageID + 1
	rp, err := store.FreshPage(rootID)
	if err != nil {
		return nil, err
	}
	rec.Touch(rootID, rp)
	initLeaf(rp, 0)

	pl := mp.Payload()
	pl[offType] = nodeMeta
	m := meta{mp}
	putU32(pl[1:], metaMagic)
	m.setRoot(uint64(rootID))
	m.setNext(uint64(rootID) + 1)
	m.setRows(0)
	return &Tree{store: store}, nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// View binds a Tree to a store without validating the meta page. The
// engine uses it to run each operation against an operation-scoped store
// (cache-backed, snapshot-backed...) after validating once with Open.
func View(store Store) *Tree { return &Tree{store: store} }

// Open attaches to an existing tree, validating the meta page.
func Open(store Store) (*Tree, error) {
	mp, err := store.Page(MetaPageID)
	if err != nil {
		return nil, err
	}
	if mp.Payload()[offType] != nodeMeta || (meta{mp}).magic() != metaMagic {
		return nil, fmt.Errorf("%w: bad meta page", ErrNotBtreePage)
	}
	return &Tree{store: store}, nil
}

func (t *Tree) meta() (meta, error) {
	mp, err := t.store.Page(MetaPageID)
	if err != nil {
		return meta{}, err
	}
	return meta{mp}, nil
}

// Rows returns the approximate live row count.
func (t *Tree) Rows() (uint64, error) {
	m, err := t.meta()
	if err != nil {
		return 0, err
	}
	return m.rows(), nil
}

// allocPage reserves a fresh page id, recording the meta mutation.
func (t *Tree) allocPage(rec *Recorder) (core.PageID, page.Page, error) {
	m, err := t.meta()
	if err != nil {
		return 0, nil, err
	}
	rec.Touch(MetaPageID, m.p)
	id := core.PageID(m.next())
	m.setNext(uint64(id) + 1)
	p, err := t.store.FreshPage(id)
	if err != nil {
		return 0, nil, err
	}
	return id, p, nil
}

func checkKV(key, val []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if len(key) > MaxKey {
		return ErrKeyTooLarge
	}
	if len(val) > MaxValue {
		return ErrValueTooLarge
	}
	return nil
}

// descend walks from the root to the leaf for key, returning the path of
// internal page ids (root first) and the leaf.
func (t *Tree) descend(key []byte) (path []core.PageID, leafID core.PageID, leaf node, err error) {
	m, err := t.meta()
	if err != nil {
		return nil, 0, node{}, err
	}
	id := core.PageID(m.root())
	for {
		p, err := t.store.Page(id)
		if err != nil {
			return nil, 0, node{}, err
		}
		n := node{p}
		switch n.typ() {
		case nodeLeaf:
			return path, id, n, nil
		case nodeInternal:
			path = append(path, id)
			child, err := n.childFor(key)
			if err != nil {
				return nil, 0, node{}, err
			}
			id = core.PageID(child)
		default:
			return nil, 0, node{}, fmt.Errorf("%w: page %d type %d", ErrCorrupt, id, n.typ())
		}
	}
}

// Get returns the value stored for key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	if err := checkKV(key, nil); err != nil {
		return nil, false, err
	}
	_, _, leaf, err := t.descend(key)
	if err != nil {
		return nil, false, err
	}
	e, ok, err := leaf.findLive(key)
	if err != nil || !ok {
		return nil, false, err
	}
	return append([]byte(nil), e.val...), true, nil
}

// Put inserts or replaces a key. All page mutations are captured by rec.
func (t *Tree) Put(rec *Recorder, key, val []byte) error {
	if err := checkKV(key, val); err != nil {
		return err
	}
	path, leafID, leaf, err := t.descend(key)
	if err != nil {
		return err
	}
	rec.Touch(leafID, leaf.p)

	// Replace: kill the existing live entry first.
	existing, had, err := leaf.findLive(key)
	if err != nil {
		return err
	}
	if had {
		leaf.kill(existing.off)
	}

	need := leafEntrySize(len(key), len(val))
	if leaf.free() < need {
		// Try compaction before splitting.
		live, err := leaf.liveBytes()
		if err != nil {
			return err
		}
		if len(leaf.area())-live >= need {
			ents, err := leaf.liveSorted()
			if err != nil {
				return err
			}
			leaf.rewriteLeaf(ents)
		} else {
			if err := t.splitLeafAndInsert(rec, path, leafID, leaf, key, val); err != nil {
				return err
			}
			if !had {
				if err := t.bumpRows(rec, +1); err != nil {
					return err
				}
			}
			return nil
		}
	}
	leaf.appendLeaf(key, val)
	if !had {
		if err := t.bumpRows(rec, +1); err != nil {
			return err
		}
	}
	return nil
}

func (t *Tree) bumpRows(rec *Recorder, delta int64) error {
	m, err := t.meta()
	if err != nil {
		return err
	}
	rec.Touch(MetaPageID, m.p)
	m.setRows(uint64(int64(m.rows()) + delta))
	return nil
}

// splitLeafAndInsert splits a full leaf and inserts (key,val) into the
// correct half, then threads the separator up the path.
func (t *Tree) splitLeafAndInsert(rec *Recorder, path []core.PageID, leftID core.PageID, left node, key, val []byte) error {
	ents, err := left.liveSorted()
	if err != nil {
		return err
	}
	// Merge the new entry into the sorted set (replace already handled).
	ents = append(ents, kv{})
	pos := len(ents) - 1
	for pos > 0 && bytes.Compare(ents[pos-1].k, key) > 0 {
		ents[pos] = ents[pos-1]
		pos--
	}
	ents[pos] = kv{k: append([]byte(nil), key...), v: append([]byte(nil), val...)}

	// Split by bytes, not entry count: with mixed entry sizes a count-based
	// midpoint can hand one half more bytes than a page holds, and
	// rewriteLeaf would write out of bounds. The greedy cut keeps each half
	// within half the total plus one entry, which always fits: the total is
	// at most a full page plus the new entry, and one entry is bounded by
	// MaxKey+MaxValue.
	total := 0
	for _, e := range ents {
		total += leafEntrySize(len(e.k), len(e.v))
	}
	mid, acc := 0, 0
	for mid < len(ents)-1 {
		acc += leafEntrySize(len(ents[mid].k), len(ents[mid].v))
		mid++
		if acc*2 >= total {
			break
		}
	}
	if mid == 0 {
		mid = 1
	}
	rightID, rp, err := t.allocPage(rec)
	if err != nil {
		return err
	}
	rec.Touch(rightID, rp)
	right := initLeaf(rp, left.link())
	right.rewriteLeaf(ents[mid:])
	left.rewriteLeaf(ents[:mid])
	left.setLink(uint64(rightID))

	sep := append([]byte(nil), ents[mid].k...)
	return t.insertSeparator(rec, path, sep, uint64(rightID))
}

// insertSeparator threads a (separator, rightChild) pair into the lowest
// internal node of the path, splitting upward as needed.
func (t *Tree) insertSeparator(rec *Recorder, path []core.PageID, sep []byte, rightChild uint64) error {
	if len(path) == 0 {
		return t.growRoot(rec, sep, rightChild)
	}
	nodeID := path[len(path)-1]
	p, err := t.store.Page(nodeID)
	if err != nil {
		return err
	}
	rec.Touch(nodeID, p)
	n := node{p}
	brs, err := n.scanInternal()
	if err != nil {
		return err
	}
	// Copy keys out: rewrite below reuses the underlying area.
	cp := make([]branch, len(brs), len(brs)+1)
	for i, b := range brs {
		cp[i] = branch{key: append([]byte(nil), b.key...), child: b.child}
	}
	pos := len(cp)
	cp = append(cp, branch{})
	for pos > 0 && bytes.Compare(cp[pos-1].key, sep) > 0 {
		cp[pos] = cp[pos-1]
		pos--
	}
	cp[pos] = branch{key: sep, child: rightChild}

	// Fits?
	total := 0
	for _, b := range cp {
		total += branchSize(len(b.key))
	}
	if total <= len(n.area()) {
		n.rewriteInternal(n.link(), cp)
		return nil
	}

	// Split the internal node: a byte-balanced separator moves up (same
	// count-vs-bytes trap as the leaf split when key sizes are skewed).
	mid, acc := 0, 0
	for mid < len(cp)-1 {
		acc += branchSize(len(cp[mid].key))
		mid++
		if acc*2 >= total {
			break
		}
	}
	if mid == 0 {
		mid = 1
	}
	upKey := cp[mid].key
	rightID, rp, err := t.allocPage(rec)
	if err != nil {
		return err
	}
	rec.Touch(rightID, rp)
	initInternal(rp, cp[mid].child, cp[mid+1:])
	n.rewriteInternal(n.link(), cp[:mid])
	return t.insertSeparator(rec, path[:len(path)-1], upKey, uint64(rightID))
}

// growRoot replaces the root with a new internal node over the old root.
func (t *Tree) growRoot(rec *Recorder, sep []byte, rightChild uint64) error {
	m, err := t.meta()
	if err != nil {
		return err
	}
	rec.Touch(MetaPageID, m.p)
	newID, np, err := t.allocPage(rec)
	if err != nil {
		return err
	}
	rec.Touch(newID, np)
	initInternal(np, m.root(), []branch{{key: sep, child: rightChild}})
	m.setRoot(uint64(newID))
	return nil
}

// Delete removes a key, reporting whether it existed. Pages are never
// merged; sparse leaves are reclaimed by compaction on later inserts (a
// deliberate simplification documented in DESIGN.md).
func (t *Tree) Delete(rec *Recorder, key []byte) (bool, error) {
	if err := checkKV(key, nil); err != nil {
		return false, err
	}
	_, leafID, leaf, err := t.descend(key)
	if err != nil {
		return false, err
	}
	e, ok, err := leaf.findLive(key)
	if err != nil || !ok {
		return false, err
	}
	rec.Touch(leafID, leaf.p)
	leaf.kill(e.off)
	if err := t.bumpRows(rec, -1); err != nil {
		return false, err
	}
	return true, nil
}

// Scan visits live entries with from <= key < to in order (to == nil means
// unbounded). fn returning false stops the scan.
func (t *Tree) Scan(from, to []byte, fn func(key, val []byte) bool) error {
	if from == nil {
		from = []byte{0}
	}
	_, _, leaf, err := t.descend(from)
	if err != nil {
		return err
	}
	for {
		ents, err := leaf.liveSorted()
		if err != nil {
			return err
		}
		for _, e := range ents {
			if bytes.Compare(e.k, from) < 0 {
				continue
			}
			if to != nil && bytes.Compare(e.k, to) >= 0 {
				return nil
			}
			if !fn(e.k, e.v) {
				return nil
			}
		}
		next := leaf.link()
		if next == 0 {
			return nil
		}
		p, err := t.store.Page(core.PageID(next))
		if err != nil {
			return err
		}
		leaf = node{p}
		if leaf.typ() != nodeLeaf {
			return fmt.Errorf("%w: leaf chain reached page %d type %d", ErrCorrupt, next, leaf.typ())
		}
	}
}

// CheckInvariants walks the whole tree verifying structure: every leaf
// reachable, keys in order, separators consistent, and the leaf chain
// matching the in-order traversal. Intended for tests and the scrub tool.
func (t *Tree) CheckInvariants() error {
	m, err := t.meta()
	if err != nil {
		return err
	}
	var leaves []core.PageID
	var walk func(id core.PageID, lo, hi []byte) error
	walk = func(id core.PageID, lo, hi []byte) error {
		p, err := t.store.Page(id)
		if err != nil {
			return err
		}
		n := node{p}
		switch n.typ() {
		case nodeLeaf:
			ents, err := n.liveSorted()
			if err != nil {
				return err
			}
			for _, e := range ents {
				if lo != nil && bytes.Compare(e.k, lo) < 0 {
					return fmt.Errorf("%w: leaf %d key below bound", ErrCorrupt, id)
				}
				if hi != nil && bytes.Compare(e.k, hi) >= 0 {
					return fmt.Errorf("%w: leaf %d key above bound", ErrCorrupt, id)
				}
			}
			leaves = append(leaves, id)
			return nil
		case nodeInternal:
			brs, err := n.scanInternal()
			if err != nil {
				return err
			}
			prev := lo
			child := n.link()
			for _, b := range brs {
				if prev != nil && bytes.Compare(b.key, prev) < 0 {
					return fmt.Errorf("%w: internal %d separators unsorted", ErrCorrupt, id)
				}
				if err := walk(core.PageID(child), prev, b.key); err != nil {
					return err
				}
				prev = b.key
				child = b.child
			}
			return walk(core.PageID(child), prev, hi)
		default:
			return fmt.Errorf("%w: page %d type %d in tree", ErrCorrupt, id, n.typ())
		}
	}
	if err := walk(core.PageID(m.root()), nil, nil); err != nil {
		return err
	}
	// The leaf sibling chain must enumerate exactly the reachable leaves.
	if len(leaves) > 0 {
		id := leaves[0]
		for i := 0; ; i++ {
			if i >= len(leaves) {
				return errors.New("btree: leaf chain longer than reachable leaves")
			}
			if leaves[i] != id {
				return fmt.Errorf("%w: leaf chain order mismatch at %d", ErrCorrupt, id)
			}
			p, err := t.store.Page(id)
			if err != nil {
				return err
			}
			next := (node{p}).link()
			if next == 0 {
				if i != len(leaves)-1 {
					return errors.New("btree: leaf chain ends early")
				}
				break
			}
			id = core.PageID(next)
		}
	}
	return nil
}
