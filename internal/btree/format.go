package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"aurora/internal/page"
)

// Node types stored in the first payload byte.
const (
	nodeFree     = 0
	nodeLeaf     = 1
	nodeInternal = 2
	nodeMeta     = 3
)

// Payload layout (offsets within page payload):
//
//	[0]     node type
//	[1:3)   live entry count (u16)
//	[3:11)  leaf: next-leaf page id; internal: leftmost child page id (u64)
//	[11:13) used bytes in the entry area (u16)
//	[13:)   entry area
//
// Leaf entries are append-only: [klen u16][vlen u16][flags u8][key][value];
// flag bit 0 marks the entry dead (superseded or deleted). Appends keep
// redo deltas small; compaction rewrites the page when the area fills.
// Internal entries are kept sorted: [klen u16][key][child u64].
const (
	offType  = 0
	offCount = 1
	offLink  = 3
	offUsed  = 11
	entBase  = 13
)

// Size limits enforced at the API boundary.
const (
	MaxKey   = 256
	MaxValue = 1024
)

const entryDead = 1

// Errors surfaced by the tree.
var (
	ErrKeyTooLarge   = errors.New("btree: key exceeds MaxKey")
	ErrValueTooLarge = errors.New("btree: value exceeds MaxValue")
	ErrEmptyKey      = errors.New("btree: empty key")
	ErrCorrupt       = errors.New("btree: corrupt node")
	ErrNotBtreePage  = errors.New("btree: page is not a tree node")
)

type node struct {
	p page.Page
}

func (n node) typ() byte      { return n.p.Payload()[offType] }
func (n node) setTyp(t byte)  { n.p.Payload()[offType] = t }
func (n node) count() int     { return int(binary.LittleEndian.Uint16(n.p.Payload()[offCount:])) }
func (n node) setCount(c int) { binary.LittleEndian.PutUint16(n.p.Payload()[offCount:], uint16(c)) }
func (n node) link() uint64   { return binary.LittleEndian.Uint64(n.p.Payload()[offLink:]) }
func (n node) setLink(v uint64) {
	binary.LittleEndian.PutUint64(n.p.Payload()[offLink:], v)
}
func (n node) used() int     { return int(binary.LittleEndian.Uint16(n.p.Payload()[offUsed:])) }
func (n node) setUsed(u int) { binary.LittleEndian.PutUint16(n.p.Payload()[offUsed:], uint16(u)) }

func (n node) area() []byte { return n.p.Payload()[entBase:] }

// free reports the remaining bytes in the entry area.
func (n node) free() int { return len(n.area()) - n.used() }

// leafEntry is a decoded leaf slot.
type leafEntry struct {
	off  int // offset of the entry within the area (for in-place kill)
	dead bool
	key  []byte // aliases the page payload
	val  []byte // aliases the page payload
}

const leafHdr = 2 + 2 + 1

func leafEntrySize(k, v int) int { return leafHdr + k + v }

// scanLeaf decodes every entry (live and dead) of a leaf.
func (n node) scanLeaf() ([]leafEntry, error) {
	area := n.area()
	used := n.used()
	var out []leafEntry
	off := 0
	for off < used {
		if off+leafHdr > used {
			return nil, fmt.Errorf("%w: leaf entry header at %d", ErrCorrupt, off)
		}
		klen := int(binary.LittleEndian.Uint16(area[off:]))
		vlen := int(binary.LittleEndian.Uint16(area[off+2:]))
		flags := area[off+4]
		end := off + leafHdr + klen + vlen
		if end > used {
			return nil, fmt.Errorf("%w: leaf entry body at %d", ErrCorrupt, off)
		}
		out = append(out, leafEntry{
			off:  off,
			dead: flags&entryDead != 0,
			key:  area[off+leafHdr : off+leafHdr+klen],
			val:  area[off+leafHdr+klen : end],
		})
		off = end
	}
	return out, nil
}

// findLive returns the live entry for key, if any.
func (n node) findLive(key []byte) (leafEntry, bool, error) {
	ents, err := n.scanLeaf()
	if err != nil {
		return leafEntry{}, false, err
	}
	for _, e := range ents {
		if !e.dead && bytes.Equal(e.key, key) {
			return e, true, nil
		}
	}
	return leafEntry{}, false, nil
}

// kill marks the entry at off dead and decrements the live count.
func (n node) kill(off int) {
	n.area()[off+4] |= entryDead
	n.setCount(n.count() - 1)
}

// appendLeaf appends a live entry; the caller has verified space.
func (n node) appendLeaf(key, val []byte) {
	area := n.area()
	off := n.used()
	binary.LittleEndian.PutUint16(area[off:], uint16(len(key)))
	binary.LittleEndian.PutUint16(area[off+2:], uint16(len(val)))
	area[off+4] = 0
	copy(area[off+leafHdr:], key)
	copy(area[off+leafHdr+len(key):], val)
	n.setUsed(off + leafEntrySize(len(key), len(val)))
	n.setCount(n.count() + 1)
}

// liveSorted returns the live entries sorted by key (data copied so the
// page can be rewritten underneath).
func (n node) liveSorted() ([]kv, error) {
	ents, err := n.scanLeaf()
	if err != nil {
		return nil, err
	}
	out := make([]kv, 0, n.count())
	for _, e := range ents {
		if !e.dead {
			out = append(out, kv{
				k: append([]byte(nil), e.key...),
				v: append([]byte(nil), e.val...),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].k, out[j].k) < 0 })
	return out, nil
}

type kv struct{ k, v []byte }

// liveBytes returns the space live entries occupy.
func (n node) liveBytes() (int, error) {
	ents, err := n.scanLeaf()
	if err != nil {
		return 0, err
	}
	total := 0
	for _, e := range ents {
		if !e.dead {
			total += leafEntrySize(len(e.key), len(e.val))
		}
	}
	return total, nil
}

// rewriteLeaf replaces the leaf's entry area with the given live entries.
func (n node) rewriteLeaf(entries []kv) {
	area := n.area()
	for i := range area {
		area[i] = 0
	}
	n.setUsed(0)
	n.setCount(0)
	for _, e := range entries {
		n.appendLeaf(e.k, e.v)
	}
}

// initLeaf formats a page as an empty leaf.
func initLeaf(p page.Page, next uint64) node {
	n := node{p}
	pl := p.Payload()
	for i := range pl {
		pl[i] = 0
	}
	n.setTyp(nodeLeaf)
	n.setLink(next)
	return n
}

// Internal-node entries: sorted [klen u16][key][child u64].

type branch struct {
	key   []byte
	child uint64
}

const branchHdr = 2 + 8

func branchSize(k int) int { return branchHdr + k }

// scanInternal decodes the sorted separators of an internal node.
func (n node) scanInternal() ([]branch, error) {
	area := n.area()
	used := n.used()
	var out []branch
	off := 0
	for off < used {
		if off+2 > used {
			return nil, fmt.Errorf("%w: branch header at %d", ErrCorrupt, off)
		}
		klen := int(binary.LittleEndian.Uint16(area[off:]))
		end := off + 2 + klen + 8
		if end > used {
			return nil, fmt.Errorf("%w: branch body at %d", ErrCorrupt, off)
		}
		out = append(out, branch{
			key:   area[off+2 : off+2+klen],
			child: binary.LittleEndian.Uint64(area[off+2+klen : end]),
		})
		off = end
	}
	return out, nil
}

// rewriteInternal replaces the separators of an internal node.
func (n node) rewriteInternal(leftmost uint64, brs []branch) {
	area := n.area()
	for i := range area {
		area[i] = 0
	}
	n.setLink(leftmost)
	off := 0
	for _, b := range brs {
		binary.LittleEndian.PutUint16(area[off:], uint16(len(b.key)))
		copy(area[off+2:], b.key)
		binary.LittleEndian.PutUint64(area[off+2+len(b.key):], b.child)
		off += branchSize(len(b.key))
	}
	n.setUsed(off)
	n.setCount(len(brs))
}

// childFor returns the child page to descend into for key.
func (n node) childFor(key []byte) (uint64, error) {
	brs, err := n.scanInternal()
	if err != nil {
		return 0, err
	}
	child := n.link() // leftmost
	for _, b := range brs {
		if bytes.Compare(key, b.key) >= 0 {
			child = b.child
		} else {
			break
		}
	}
	return child, nil
}

// initInternal formats a page as an internal node.
func initInternal(p page.Page, leftmost uint64, brs []branch) node {
	n := node{p}
	pl := p.Payload()
	for i := range pl {
		pl[i] = 0
	}
	n.setTyp(nodeInternal)
	n.rewriteInternal(leftmost, brs)
	return n
}

// Meta page layout (type nodeMeta):
//
//	[1:5)   magic
//	[5:13)  root page id
//	[13:21) next free page id
//	[21:29) row count (approximate, maintained by Put/Delete)
const metaMagic = 0x42545245 // "BTRE"

type meta struct{ p page.Page }

func (m meta) magic() uint32 { return binary.LittleEndian.Uint32(m.p.Payload()[1:]) }
func (m meta) root() uint64  { return binary.LittleEndian.Uint64(m.p.Payload()[5:]) }
func (m meta) setRoot(r uint64) {
	binary.LittleEndian.PutUint64(m.p.Payload()[5:], r)
}
func (m meta) next() uint64 { return binary.LittleEndian.Uint64(m.p.Payload()[13:]) }
func (m meta) setNext(n uint64) {
	binary.LittleEndian.PutUint64(m.p.Payload()[13:], n)
}
func (m meta) rows() uint64 { return binary.LittleEndian.Uint64(m.p.Payload()[21:]) }
func (m meta) setRows(n uint64) {
	binary.LittleEndian.PutUint64(m.p.Payload()[21:], n)
}
