// Package storage implements Aurora's multi-tenant scale-out storage
// service: the storage node that receives redo log batches, persists and
// acknowledges them in the foreground, and performs everything else —
// sorting and gap detection, peer-to-peer gossip, coalescing log records
// into materialized data pages, backup to the object store, garbage
// collection below the PGMRPL, and CRC scrubbing — continuously and
// asynchronously in the background (Figure 4, §3.3).
//
// The log is the database: a node's materialized pages are only a cache of
// log applications, and any read can be served by materializing the page's
// delta chain on demand at the requested read point.
package storage

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/netsim"
	"aurora/internal/objstore"
	"aurora/internal/page"
	"aurora/internal/trace"
)

// Errors returned by node operations.
var (
	ErrNodeDown      = errors.New("storage: node down")
	ErrIncomplete    = errors.New("storage: segment not complete at read point")
	ErrNoSuchPage    = errors.New("storage: page never written")
	ErrStaleEpoch    = errors.New("storage: truncation epoch stale")
	ErrWipedSegment  = errors.New("storage: segment wiped, needs repair")
	ErrStaleGeometry = errors.New("storage: geometry epoch stale")
	// ErrCorruptPage is returned when a read finds the base image's CRC
	// invalid: the node refuses to serve bytes it cannot vouch for, the
	// client hedges to a peer replica, and the scrubber repairs the image
	// in the background — corruption is never observable, only slow.
	ErrCorruptPage = errors.New("storage: page checksum mismatch")
	// ErrWrongTier is returned when a page read reaches a log-tier replica
	// (Taurus split): log replicas only append, CRC, fsync and ack — they
	// never materialize pages, so the read must route to the page tier.
	ErrWrongTier = errors.New("storage: log-tier replica cannot serve page reads")
	// ErrWrongVolume is returned when a batch or record addressed to one
	// tenant volume reaches a segment owned by another. On a shared fleet
	// this is the tenancy boundary: a node vouches for exactly one
	// (volume, PG) and refuses everyone else's bytes outright.
	ErrWrongVolume = errors.New("storage: batch addressed to a different tenant volume")
)

// Config configures one storage node (one segment replica).
type Config struct {
	Seg  core.SegmentID
	Node netsim.NodeID
	AZ   netsim.AZ
	Net  *netsim.Network
	Disk disk.Config
	// Vol is the tenant volume this segment belongs to. Zero is the legacy
	// single-tenant volume; its wire format and backup keys are unchanged.
	Vol core.VolumeID
	// Host binds the node to a physical machine in a shared multi-tenant
	// fleet: the node adopts the host's network identity, AZ and SSD,
	// registers in its (volume, PG) segment registry, and runs foreground
	// traffic through its per-tenant QoS scheduler. Nil keeps the classic
	// one-node-per-segment deployment with private identity and disk.
	Host *Host
	// Store receives periodic backups; nil disables backup.
	Store *objstore.Store
	// GossipInterval controls the background gossip loop (Start).
	GossipInterval time.Duration
	// CoalesceInterval controls background page materialization (Start).
	CoalesceInterval time.Duration
	// BackupInterval controls background backup staging (Start).
	BackupInterval time.Duration
	// ScrubInterval controls background CRC validation (Start).
	ScrubInterval time.Duration
	// CoalesceChainLen triggers materialization of a page once its delta
	// chain exceeds this many records even above the PGMRPL (the paper's
	// observation that only pages with long chains need rematerialization).
	CoalesceChainLen int
	// Role selects what this replica does with the redo stream under a
	// role-split quorum (Taurus, PAPERS.md). The zero value RoleFull keeps
	// classic behavior: synchronous ingest, materialization, and reads.
	// RoleLog appends and acks but never materializes or serves pages;
	// its log is GC'd only once every peer has pulled it. RolePage is fed
	// asynchronously by gossip pull and catches up to a read point on
	// demand when its applied LSN trails it.
	Role core.ReplicaRole
}

func (c *Config) fillDefaults() {
	if c.GossipInterval <= 0 {
		c.GossipInterval = 20 * time.Millisecond
	}
	if c.CoalesceInterval <= 0 {
		c.CoalesceInterval = 20 * time.Millisecond
	}
	if c.BackupInterval <= 0 {
		c.BackupInterval = 200 * time.Millisecond
	}
	if c.ScrubInterval <= 0 {
		c.ScrubInterval = 500 * time.Millisecond
	}
	if c.CoalesceChainLen <= 0 {
		c.CoalesceChainLen = 32
	}
}

// pageState is one page on the segment: an optional materialized base image
// plus the chain of not-yet-coalesced records sorted by ascending LSN.
type pageState struct {
	base  page.Page
	chain []*core.Record
}

// Stats is a snapshot of node activity counters.
type Stats struct {
	BatchesReceived uint64
	RecordsReceived uint64
	RecordsHeld     int
	PagesHeld       int
	GossipRounds    uint64
	RecordsGossiped uint64
	FeedBytes       uint64 // bytes pulled from peers (gossip + catch-up)
	PagesCoalesced  uint64
	RecordsGCed     uint64
	Backups         uint64
	ScrubsClean     uint64
	ScrubsRepaired  uint64
	Reads           uint64
	CorruptReads    uint64 // foreground reads refused on a base-image CRC mismatch
}

// Ack is the acknowledgement a node returns for a persisted batch. The
// writer uses the piggybacked SCL to maintain its runtime view of segment
// completeness for read routing (§4.2.3).
type Ack struct {
	Seg core.SegmentID
	SCL core.LSN
}

// Node is one storage node hosting one segment replica.
type Node struct {
	cfg Config
	ssd *disk.SSD

	mu     sync.Mutex
	log    map[core.LSN]*core.Record // retained records for gossip/materialize
	logIdx []core.LSN                // sorted index over log's keys (see logIdxInsertLocked)
	pages  map[core.PageID]*pageState
	cpls   []core.LSN // sorted CPL LSNs at or below SCL retention
	gaps   *core.GapTracker
	gcTail core.LSN // highest record LSN ever garbage collected
	trunc  core.TruncationRange
	pgmrpl core.LSN
	vdl    core.LSN // latest VDL learned from the writer (piggybacked)
	wiped  bool

	// geomEpoch is the highest geometry epoch the node has learned (from
	// batch piggybacks or an explicit ObserveGeometry push at a cutover).
	// Writes framed under an older geometry are rejected with
	// ErrStaleGeometry so a record can never land on a PG that no longer
	// owns its stripe; readers routing with an older table get the same
	// rejection and refetch the geometry. Epoch 0 is unversioned.
	geomEpoch uint64

	peers []*Node

	down atomic.Bool
	// feedPaused stops the *background* gossip pull (the log→page feed in
	// a role split) without touching foreground traffic or the read-time
	// catch-up path — the chaos knob behind the pagestore-lag fault.
	feedPaused atomic.Bool

	// Background loops run under a root context created by Start and
	// canceled by Stop; every network send they issue observes it, so a
	// stopping node abandons in-flight gossip/repair waits immediately.
	runMu     sync.Mutex
	runCtx    context.Context
	runCancel context.CancelFunc
	stopped   sync.WaitGroup

	batches      atomic.Uint64
	records      atomic.Uint64
	gossips      atomic.Uint64
	gossiped     atomic.Uint64
	feedBytes    atomic.Uint64
	coalesces    atomic.Uint64
	gced         atomic.Uint64
	backups      atomic.Uint64
	scrubOK      atomic.Uint64
	scrubFix     atomic.Uint64
	reads        atomic.Uint64
	corruptReads atomic.Uint64
}

// NewNode creates a storage node and registers it on the network. A
// host-bound node (cfg.Host != nil) instead adopts the host's already
// registered identity and shares its SSD, object store and QoS scheduler
// with every other segment on the machine — that sharing is what makes the
// fleet multi-tenant rather than a set of dedicated nodes.
func NewNode(cfg Config) *Node {
	cfg.fillDefaults()
	var ssd *disk.SSD
	if h := cfg.Host; h != nil {
		cfg.Node = h.cfg.ID
		cfg.AZ = h.cfg.AZ
		if cfg.Store == nil {
			cfg.Store = h.cfg.Store
		}
		ssd = h.ssd
	} else {
		cfg.Net.AddNode(cfg.Node, cfg.AZ)
		ssd = disk.New(cfg.Disk)
	}
	n := &Node{
		cfg:   cfg,
		ssd:   ssd,
		log:   make(map[core.LSN]*core.Record),
		pages: make(map[core.PageID]*pageState),
		gaps:  core.NewGapTracker(core.ZeroLSN),
	}
	if cfg.Host != nil {
		cfg.Host.register(n)
	}
	return n
}

// Vol returns the tenant volume this segment belongs to.
func (n *Node) Vol() core.VolumeID { return n.cfg.Vol }

// Host returns the physical machine a host-bound node lives on (nil for a
// classic dedicated node).
func (n *Node) Host() *Host { return n.cfg.Host }

// Detach removes a host-bound node from its host's segment registry (volume
// teardown or migration off the host). No-op for dedicated nodes.
func (n *Node) Detach() {
	if n.cfg.Host != nil {
		n.cfg.Host.unregister(n)
	}
}

// qos returns the host's per-tenant scheduler, nil for dedicated nodes (all
// qos methods treat a nil receiver as shaping disabled).
func (n *Node) qos() *qos {
	if n.cfg.Host != nil {
		return n.cfg.Host.qos
	}
	return nil
}

// checkVol enforces the tenancy boundary on the foreground write path.
func (n *Node) checkVol(vol core.VolumeID) error {
	if vol != n.cfg.Vol {
		return fmt.Errorf("%s seg pg=%d owned by %s, batch from %s: %w",
			n.cfg.Node, n.cfg.Seg.PG, n.cfg.Vol, vol, ErrWrongVolume)
	}
	return nil
}

// Seg returns the segment identity this node hosts.
func (n *Node) Seg() core.SegmentID { return n.cfg.Seg }

// NodeID returns the node's network identity.
func (n *Node) NodeID() netsim.NodeID { return n.cfg.Node }

// AZ returns the availability zone the node lives in.
func (n *Node) AZ() netsim.AZ { return n.cfg.AZ }

// Role returns the replica's tier under a role-split quorum (RoleFull
// when the split is off).
func (n *Node) Role() core.ReplicaRole { return n.cfg.Role }

// PauseFeed pauses (or resumes) the node's background gossip pull — the
// log→page feed when this is a page replica. Foreground traffic and the
// read-time catch-up pull keep working; only the background loop idles,
// so a paused page replica falls ever further behind the durable tail.
func (n *Node) PauseFeed(paused bool) { n.feedPaused.Store(paused) }

// FeedBytes returns the bytes this node has ingested by pulling from
// peers (background gossip plus read-time catch-up). On a page replica
// this is the asynchronous log→page feed volume.
func (n *Node) FeedBytes() uint64 { return n.feedBytes.Load() }

// Disk exposes the node's SSD for fault injection.
func (n *Node) Disk() *disk.SSD { return n.ssd }

// SetPeers wires the node to the other replicas of its protection group.
func (n *Node) SetPeers(peers []*Node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = nil
	for _, p := range peers {
		if p != n {
			n.peers = append(n.peers, p)
		}
	}
}

// Crash makes the node reject all traffic (a node reboot or failure). Its
// durable state — persisted log and pages — is retained for Restart.
func (n *Node) Crash() { n.down.Store(true) }

// Restart brings a crashed node back online.
func (n *Node) Restart() { n.down.Store(false) }

// Down reports whether the node is crashed.
func (n *Node) Down() bool { return n.down.Load() }

// Wipe simulates permanent loss of the node's disk: all durable state is
// destroyed and the node refuses service until repaired from peers.
func (n *Node) Wipe() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.log = make(map[core.LSN]*core.Record)
	n.logIdx = nil
	n.pages = make(map[core.PageID]*pageState)
	n.cpls = nil
	n.gaps = core.NewGapTracker(core.ZeroLSN)
	n.wiped = true
}

// BatchResult is the per-batch outcome of one Ingest flight. A nil Err
// means the batch was persisted and filed; a non-nil Err is a
// NON-TRANSIENT rejection of just that batch (wrong volume, stale geometry
// epoch, corrupt wire bytes) that redelivery cannot fix — the sender nacks
// that batch's quorum tracker immediately instead of retrying the flight.
type BatchResult struct {
	PG      core.PGID
	Records int // records newly filed (duplicates excluded)
	Err     error
}

// Ingest is the foreground write path: steps (1) and (2) of Figure 4. A
// flight of encoded batches (accumulated by the writer's per-segment sender
// while a previous flight was in the air) arrives as one network message
// and is persisted with one hot-log write and one sync — this is what
// drives IOs per transaction below one at high concurrency (Table 1). The
// wire bytes are fsynced BEFORE decoding: the hot log persists what the
// wire carried, and filing into the in-memory indexes happens after
// durability, exactly as a real log-structured store would replay it.
//
// The flight views are BORROWED for the duration of the call (they
// typically point into the sender's arena). Anything the node retains is
// copied: per batch, one body buffer plus one record slab whose Data fields
// alias that buffer — the slab stays reachable until every record filed
// from it is GC'd, which is the price of two allocations per batch instead
// of two per record.
//
// Outcomes are split by scope: a node-level error (down, wiped, disk
// failure, QoS rejection, canceled ctx) fails the whole flight and the
// sender retries it; per-batch rejections land in results (appended to and
// returned, so callers can pass reusable scratch) and fail only that
// batch. VDL and PGMRPL are piggybacked from the writer on every flight.
//
// When ctx carries a sampled span (trace.FromContext), the ingest is
// recorded as a storage.ingest span decomposed into disk.write, disk.sync
// and storage.apply children — the last hops of a commit's critical path.
// Cancellation is honored only before persistence begins: once the hot-log
// write starts the flight is durable and the ack is returned regardless.
func (n *Node) Ingest(ctx context.Context, flight []core.BatchView, vdl, pgmrpl core.LSN, results []BatchResult) (Ack, []BatchResult, error) {
	if err := ctx.Err(); err != nil {
		return Ack{}, results, err
	}
	parent := trace.FromContext(ctx)
	if n.down.Load() {
		return Ack{}, results, fmt.Errorf("%s: %w", n.cfg.Node, ErrNodeDown)
	}
	size := 0
	for _, v := range flight {
		size += v.Len()
	}
	// QoS admission happens before any disk IO: a shaped tenant waits (or
	// is rejected at its queue cap) without holding the hot log.
	vol := n.cfg.Vol
	if len(flight) > 0 {
		vol = flight[0].Vol()
	}
	if err := n.qos().AdmitIngest(ctx, vol, size); err != nil {
		return Ack{}, results, err
	}
	ingest := parent.Child("storage.ingest")
	ingest.Annotate("node", n.cfg.Node)
	ingest.Annotate("batches", len(flight))
	ingest.Annotate("bytes", size)
	wsp := ingest.Child("disk.write")
	if err := n.ssd.Write(size); err != nil {
		wsp.End()
		ingest.End()
		return Ack{}, results, fmt.Errorf("%s hot log: %w", n.cfg.Node, err)
	}
	wsp.End()
	ssp := ingest.Child("disk.sync")
	if err := n.ssd.Sync(); err != nil {
		ssp.End()
		ingest.End()
		return Ack{}, results, fmt.Errorf("%s hot log sync: %w", n.cfg.Node, err)
	}
	ssp.End()
	asp := ingest.Child("storage.apply")
	n.mu.Lock()
	if n.wiped {
		n.mu.Unlock()
		asp.End()
		ingest.End()
		return Ack{}, results, fmt.Errorf("%s: %w", n.cfg.Node, ErrWipedSegment)
	}
	accepted, filedTotal := 0, 0
	for _, v := range flight {
		res := BatchResult{PG: v.PG()}
		res.Records, res.Err = n.ingestBatchLocked(v)
		if res.Err == nil {
			accepted++
			filedTotal += res.Records
		}
		results = append(results, res)
	}
	n.observePointsLocked(vdl, pgmrpl)
	scl := n.gaps.SCL()
	n.mu.Unlock()
	asp.End()
	ingest.Annotate("scl", scl)
	ingest.End()
	n.batches.Add(uint64(accepted))
	n.records.Add(uint64(filedTotal))
	return Ack{Seg: n.cfg.Seg, SCL: scl}, results, nil
}

// ingestBatchLocked validates one borrowed batch view and files its records,
// returning how many were newly filed. The records are decoded zero-copy
// into one retained body buffer + record slab per batch (see Ingest).
func (n *Node) ingestBatchLocked(v core.BatchView) (int, error) {
	if err := n.checkVol(v.Vol()); err != nil {
		return 0, err
	}
	if err := n.observeGeometryLocked(v.Epoch()); err != nil {
		return 0, err
	}
	if err := v.Verify(); err != nil {
		return 0, fmt.Errorf("%s: batch pg=%d: %w", n.cfg.Node, v.PG(), err)
	}
	// The one copy the node owes: the view's bytes die with the sender's
	// arena, so the retained records decode against a private body buffer.
	body := append([]byte(nil), v.Body()...)
	slab := make([]core.Record, v.NumRecords())
	off := 0
	filed := 0
	for i := range slab {
		consumed, err := core.DecodeRecordInto(body[off:], &slab[i])
		if err != nil {
			return filed, fmt.Errorf("%s: batch pg=%d record %d: %w", n.cfg.Node, v.PG(), i, err)
		}
		off += consumed
		if n.admitRecordLocked(&slab[i]) {
			n.fileLocked(&slab[i])
			filed++
		}
	}
	return filed, nil
}

// logIdxInsertLocked records lsn in the sorted key index kept alongside the
// log map. The index turns recordsAfter — the gossip pull that doubles as
// the log→page feed under a role split — from a full map scan plus sort
// into a binary search, and GC of a prefix into a slice trim. Records
// almost always arrive in LSN order, so the common case is an append.
func (n *Node) logIdxInsertLocked(lsn core.LSN) {
	if ln := len(n.logIdx); ln == 0 || n.logIdx[ln-1] < lsn {
		n.logIdx = append(n.logIdx, lsn)
		return
	}
	i := sort.Search(len(n.logIdx), func(i int) bool { return n.logIdx[i] >= lsn })
	n.logIdx = append(n.logIdx, 0)
	copy(n.logIdx[i+1:], n.logIdx[i:])
	n.logIdx[i] = lsn
}

// logIdxDeleteLocked removes lsn from the sorted key index.
func (n *Node) logIdxDeleteLocked(lsn core.LSN) {
	i := sort.Search(len(n.logIdx), func(i int) bool { return n.logIdx[i] >= lsn })
	if i < len(n.logIdx) && n.logIdx[i] == lsn {
		n.logIdx = append(n.logIdx[:i], n.logIdx[i+1:]...)
	}
}

// logIdxTrimLocked drops every index entry at or below floor (a GC prefix),
// copying the suffix so the backing array does not pin collected entries.
func (n *Node) logIdxTrimLocked(floor core.LSN) {
	i := sort.Search(len(n.logIdx), func(i int) bool { return n.logIdx[i] > floor })
	if i == 0 {
		return
	}
	n.logIdx = append([]core.LSN(nil), n.logIdx[i:]...)
}

// ingestLocked clones and files one record, reporting whether it was new.
// It serves the cold paths that hold records decoded from elsewhere
// (gossip, repair, snapshot restore); the foreground Ingest path files slab
// records directly via admitRecordLocked+fileLocked without the clone.
func (n *Node) ingestLocked(r *core.Record) bool {
	if !n.admitRecordLocked(r) {
		return false
	}
	cl := r.Clone()
	n.fileLocked(&cl)
	return true
}

// admitRecordLocked reports whether the record should be filed. Duplicates,
// annulled and GC'd records are rejected silently.
func (n *Node) admitRecordLocked(r *core.Record) bool {
	// Defense in depth for multi-tenancy: even a record arriving via gossip
	// or repair (paths that bypass the foreground batch check) must carry
	// this segment's volume — a foreign tenant's record is never filed.
	if r.Vol != n.cfg.Vol {
		return false
	}
	if n.trunc.Annuls(r.LSN) || r.LSN <= n.gcTail {
		return false
	}
	if _, dup := n.log[r.LSN]; dup {
		return false
	}
	return true
}

// fileLocked files an admitted record into the log, page chains, CPL index
// and gap tracker. The node takes ownership of *rec (and whatever its Data
// aliases) from this point on; records are immutable once filed.
func (n *Node) fileLocked(rec *core.Record) {
	n.log[rec.LSN] = rec
	n.logIdxInsertLocked(rec.LSN)
	if rec.PageRecord() {
		ps := n.pages[rec.Page]
		if ps == nil {
			ps = &pageState{}
			n.pages[rec.Page] = ps
		}
		// Insert keeping the chain sorted by LSN; records usually arrive
		// in order so the common case is an append.
		i := len(ps.chain)
		for i > 0 && ps.chain[i-1].LSN > rec.LSN {
			i--
		}
		ps.chain = append(ps.chain, nil)
		copy(ps.chain[i+1:], ps.chain[i:])
		ps.chain[i] = rec
	}
	if rec.IsCPL() {
		i := sort.Search(len(n.cpls), func(j int) bool { return n.cpls[j] >= rec.LSN })
		if i == len(n.cpls) || n.cpls[i] != rec.LSN {
			n.cpls = append(n.cpls, 0)
			copy(n.cpls[i+1:], n.cpls[i:])
			n.cpls[i] = rec.LSN
		}
	}
	n.gaps.Add(rec.PrevLSN, rec.LSN)
}

// observeGeometryLocked folds a piggybacked geometry epoch into the node's
// view and rejects epochs the node knows to be superseded. Epoch 0 batches
// are unversioned and always accepted.
func (n *Node) observeGeometryLocked(epoch uint64) error {
	if epoch == 0 {
		return nil
	}
	if epoch < n.geomEpoch {
		return fmt.Errorf("%s: %w: have %d, got %d", n.cfg.Node, ErrStaleGeometry, n.geomEpoch, epoch)
	}
	n.geomEpoch = epoch
	return nil
}

// ObserveGeometry pushes a new geometry epoch to the node (the explicit
// notification at a cutover; batches also piggyback it). Down nodes miss
// the push and learn the epoch from the next batch or read instead.
func (n *Node) ObserveGeometry(epoch uint64) {
	if n.down.Load() {
		return
	}
	n.mu.Lock()
	if epoch > n.geomEpoch {
		n.geomEpoch = epoch
	}
	n.mu.Unlock()
}

// GeomEpoch returns the highest geometry epoch the node has learned.
func (n *Node) GeomEpoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.geomEpoch
}

func (n *Node) observePointsLocked(vdl, pgmrpl core.LSN) {
	if vdl > n.vdl {
		n.vdl = vdl
	}
	if pgmrpl > n.pgmrpl {
		n.pgmrpl = pgmrpl
	}
}

// SCL returns the segment complete LSN.
func (n *Node) SCL() core.LSN {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.gaps.SCL()
}

// HasGaps reports whether the node is missing records it knows exist.
func (n *Node) HasGaps() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.gaps.HasGap()
}

// HighestLSN returns the highest LSN the node knows of: the maximum of its
// retained records, its GC boundary and its completeness point. Recovery
// compares it against the SCL to detect dangling records above a hole.
func (n *Node) HighestLSN() core.LSN {
	n.mu.Lock()
	defer n.mu.Unlock()
	max := n.gcTail
	if scl := n.gaps.SCL(); scl > max {
		max = scl
	}
	if ln := len(n.logIdx); ln > 0 && n.logIdx[ln-1] > max {
		max = n.logIdx[ln-1]
	}
	return max
}

// HighestCPLAtOrBelow returns the highest consistency point at or below
// limit that this node has seen (ZeroLSN if none). Volume recovery uses it
// to compute the VDL from the VCL (§4.1).
func (n *Node) HighestCPLAtOrBelow(limit core.LSN) core.LSN {
	n.mu.Lock()
	defer n.mu.Unlock()
	i := sort.Search(len(n.cpls), func(j int) bool { return n.cpls[j] > limit })
	if i == 0 {
		return core.ZeroLSN
	}
	return n.cpls[i-1]
}

// ReadPage is the foreground read path: it serves the version of the page
// as of readPoint, materializing from the base image plus the delta chain.
//
// required is the completeness the writer demands: the LSN of the last
// record of this protection group at or below the read point. The writer
// tracks it precisely (§4.2.3 — "the database ... normally knows which
// segment is capable of satisfying a read"), and the node re-verifies its
// SCL against it. The read point itself may exceed the SCL when the PG has
// been idle while the volume's VDL advanced on other PGs.
func (n *Node) ReadPage(ctx context.Context, id core.PageID, readPoint, required core.LSN) (page.Page, error) {
	return n.ReadPageChecked(ctx, id, readPoint, required, 0)
}

// ReadPageChecked is ReadPage with a geometry-epoch check: a caller routing
// with an older geometry than the node has learned is rejected with
// ErrStaleGeometry and must refetch the table and re-route — a read must
// never be answered by a node that silently lost the page's stripe to a
// cutover (it would materialize an empty page, not fail). A caller with a
// newer epoch teaches it to the node. Epoch 0 skips the check.
func (n *Node) ReadPageChecked(ctx context.Context, id core.PageID, readPoint, required core.LSN, geomEpoch uint64) (page.Page, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if n.down.Load() {
		return nil, fmt.Errorf("%s: %w", n.cfg.Node, ErrNodeDown)
	}
	if n.cfg.Role == core.RoleLog {
		return nil, fmt.Errorf("%s: %w", n.cfg.Node, ErrWrongTier)
	}
	if err := n.qos().AdmitRead(ctx, n.cfg.Vol); err != nil {
		return nil, err
	}
	// A page replica whose applied LSN trails the read point replays the
	// missing log from its peers before answering — the split's read
	// fallback. Bounded and ctx-scoped; if it cannot reach the read point
	// the ErrIncomplete below stands and the client hedges to a peer.
	if n.cfg.Role == core.RolePage && n.SCL() < required {
		n.catchUpTo(ctx, required)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if geomEpoch != 0 {
		if geomEpoch < n.geomEpoch {
			return nil, fmt.Errorf("%s: %w: have %d, got %d", n.cfg.Node, ErrStaleGeometry, n.geomEpoch, geomEpoch)
		}
		n.geomEpoch = geomEpoch
	}
	if n.wiped {
		return nil, fmt.Errorf("%s: %w", n.cfg.Node, ErrWipedSegment)
	}
	if n.gaps.SCL() < required {
		return nil, fmt.Errorf("%s: %w: scl=%d required=%d", n.cfg.Node, ErrIncomplete, n.gaps.SCL(), required)
	}
	ps := n.pages[id]
	if ps == nil {
		return nil, fmt.Errorf("%s page %d: %w", n.cfg.Node, id, ErrNoSuchPage)
	}
	if err := n.ssd.Read(page.Size); err != nil {
		return nil, err
	}
	// Gate the read on the base image's CRC (Figure 4 step 8 moved into the
	// foreground path): a corrupt base must never be materialized into a
	// response. The refusal makes the corruption look like a failed replica
	// — the client's hedged read falls through to a peer — while the
	// background scrubber repairs this copy.
	if ps.base != nil {
		if err := ps.base.VerifyChecksum(); err != nil {
			n.corruptReads.Add(1)
			return nil, fmt.Errorf("%s page %d: %w: %v", n.cfg.Node, id, ErrCorruptPage, err)
		}
	}
	p, err := page.Materialize(id, ps.base, ps.chain, readPoint)
	if err != nil {
		return nil, err
	}
	n.reads.Add(1)
	return p, nil
}

// Reads returns the number of foreground page reads this node has served
// (the per-PG IO counter growth tests assert rebalanced reads against).
func (n *Node) Reads() uint64 { return n.reads.Load() }

// StripePages enumerates the pages this segment holds that match the given
// predicate (typically stripe membership), with each page's tail LSN: the
// highest LSN reflected in its base image or delta chain. The rebalancer
// uses it to drive the copy and to detect pages dirtied since the warm
// copy (tail > copiedAt) that need re-copying inside the fence.
func (n *Node) StripePages(match func(core.PageID) bool) map[core.PageID]core.LSN {
	if n.down.Load() {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[core.PageID]core.LSN)
	for id, ps := range n.pages {
		if !match(id) {
			continue
		}
		var tail core.LSN
		if ps.base != nil {
			tail = ps.base.LSN()
		}
		if k := len(ps.chain); k > 0 && ps.chain[k-1].LSN > tail {
			tail = ps.chain[k-1].LSN
		}
		out[id] = tail
	}
	return out
}

// Truncate applies an epoch-versioned truncation range (§4.3), annulling
// every record in (From, To]. Stale epochs are rejected so an interrupted
// and restarted recovery cannot be confused by older truncations.
func (n *Node) Truncate(tr core.TruncationRange) error {
	if n.down.Load() {
		return fmt.Errorf("%s: %w", n.cfg.Node, ErrNodeDown)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if tr.Epoch < n.trunc.Epoch {
		return fmt.Errorf("%s: %w: have %d, got %d", n.cfg.Node, ErrStaleEpoch, n.trunc.Epoch, tr.Epoch)
	}
	n.trunc = tr
	for lsn, rec := range n.log {
		if !tr.Annuls(lsn) {
			continue
		}
		delete(n.log, lsn)
		n.logIdxDeleteLocked(lsn)
		if rec.PageRecord() {
			if ps := n.pages[rec.Page]; ps != nil {
				ps.chain = removeRecord(ps.chain, lsn)
				if ps.base == nil && len(ps.chain) == 0 {
					delete(n.pages, rec.Page)
				}
			}
		}
	}
	n.cpls = filterLSNs(n.cpls, func(l core.LSN) bool { return !tr.Annuls(l) })
	n.rebuildGapsLocked()
	// Persist the truncation decision durably.
	return n.ssd.Write(64)
}

// rebuildGapsLocked reconstructs the completeness tracker from the
// surviving records. The chain is seeded at the highest LSN ever garbage
// collected (everything at or below it was complete when coalesced), so
// that after a truncation the SCL lands on an actual record LSN and future
// records chain correctly from it.
func (n *Node) rebuildGapsLocked() {
	g := core.NewGapTracker(n.gcTail)
	for _, r := range sortedRecords(n.log) {
		g.Add(r.PrevLSN, r.LSN)
	}
	n.gaps = g
}

// TruncationEpoch returns the epoch of the last applied truncation.
func (n *Node) TruncationEpoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.trunc.Epoch
}

func removeRecord(chain []*core.Record, lsn core.LSN) []*core.Record {
	for i, r := range chain {
		if r.LSN == lsn {
			return append(chain[:i], chain[i+1:]...)
		}
	}
	return chain
}

func filterLSNs(in []core.LSN, keep func(core.LSN) bool) []core.LSN {
	out := in[:0]
	for _, l := range in {
		if keep(l) {
			out = append(out, l)
		}
	}
	return out
}

// Stats returns a snapshot of activity counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	held := len(n.log)
	pages := len(n.pages)
	n.mu.Unlock()
	return Stats{
		BatchesReceived: n.batches.Load(),
		RecordsReceived: n.records.Load(),
		RecordsHeld:     held,
		PagesHeld:       pages,
		GossipRounds:    n.gossips.Load(),
		RecordsGossiped: n.gossiped.Load(),
		FeedBytes:       n.feedBytes.Load(),
		PagesCoalesced:  n.coalesces.Load(),
		RecordsGCed:     n.gced.Load(),
		Backups:         n.backups.Load(),
		ScrubsClean:     n.scrubOK.Load(),
		ScrubsRepaired:  n.scrubFix.Load(),
		Reads:           n.reads.Load(),
		CorruptReads:    n.corruptReads.Load(),
	}
}

// Start launches the background loops — gossip, coalesce/GC, backup, scrub
// — under a root context that Stop cancels. Tests can instead drive
// GossipOnce/CoalesceOnce/BackupNow/ScrubOnce deterministically.
func (n *Node) Start() {
	n.runMu.Lock()
	defer n.runMu.Unlock()
	if n.runCancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	n.runCtx, n.runCancel = ctx, cancel
	run := func(interval time.Duration, f func()) {
		n.stopped.Add(1)
		go func() {
			defer n.stopped.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if !n.down.Load() {
						f()
					}
				}
			}
		}()
	}
	run(n.cfg.GossipInterval, func() { n.GossipOnce() })
	run(n.cfg.CoalesceInterval, func() { n.CoalesceOnce() })
	if n.cfg.Store != nil {
		run(n.cfg.BackupInterval, func() { n.BackupNow() })
	}
	run(n.cfg.ScrubInterval, func() { n.ScrubOnce() })
}

// Stop cancels the root context and waits for the background loops started
// by Start to exit; any gossip or repair send they were blocked in is
// abandoned immediately.
func (n *Node) Stop() {
	n.runMu.Lock()
	cancel := n.runCancel
	n.runCtx, n.runCancel = nil, nil
	n.runMu.Unlock()
	if cancel != nil {
		cancel()
		n.stopped.Wait()
	}
}

// runContext returns the root context the background loops run under, or
// context.Background when they are not running (tests driving the
// background steps directly).
func (n *Node) runContext() context.Context {
	n.runMu.Lock()
	defer n.runMu.Unlock()
	if n.runCtx != nil {
		return n.runCtx
	}
	return context.Background()
}
