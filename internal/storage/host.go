package storage

import (
	"fmt"
	"sync"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/netsim"
	"aurora/internal/objstore"
)

// segKey addresses one hosted segment replica: which tenant volume it belongs
// to and which of that volume's protection groups it serves. One host carries
// at most one replica of any (volume, PG) pair — placement guarantees it, and
// the registry enforces it.
type segKey struct {
	Vol core.VolumeID
	PG  core.PGID
}

// HostConfig describes one physical storage machine in a shared fleet.
type HostConfig struct {
	ID    netsim.NodeID
	AZ    netsim.AZ
	Net   *netsim.Network
	Disk  disk.Config     // one SSD shared by every hosted segment
	Store *objstore.Store // shared object store for backups (may be nil)
	QoS   QoSConfig       // per-tenant fair-share shaping (zero = no shaping)
}

// Host is one physical storage machine serving segments from many independent
// tenant volumes (§1: thousands of customer volumes share one storage fleet).
// Each hosted segment is still a *Node — the unit of completeness tracking,
// gossip and repair is unchanged — but host-bound nodes share the host's
// network identity, its SSD, and its per-tenant QoS scheduler instead of
// owning private ones. The registry keyed by (volume, PG) is what lets the
// host demultiplex incoming batches to the right tenant's segment.
type Host struct {
	cfg HostConfig
	ssd *disk.SSD
	qos *qos

	mu   sync.Mutex
	segs map[segKey]*Node
}

// NewHost registers the host with the network and provisions its disk.
func NewHost(cfg HostConfig) *Host {
	cfg.Net.AddNode(cfg.ID, cfg.AZ)
	return &Host{
		cfg:  cfg,
		ssd:  disk.New(cfg.Disk),
		qos:  newQoS(cfg.QoS),
		segs: make(map[segKey]*Node),
	}
}

// ID returns the host's network identity.
func (h *Host) ID() netsim.NodeID { return h.cfg.ID }

// AZ returns the availability zone the host lives in.
func (h *Host) AZ() netsim.AZ { return h.cfg.AZ }

// register adds a freshly provisioned segment node to the host's registry.
// Placement never assigns two replicas of one (volume, PG) to the same host,
// so a duplicate key is a caller bug, not a runtime condition.
func (h *Host) register(n *Node) {
	key := segKey{Vol: n.cfg.Vol, PG: n.cfg.Seg.PG}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.segs[key]; dup {
		panic(fmt.Sprintf("storage: host %s already hosts %s pg=%d", h.cfg.ID, key.Vol, key.PG))
	}
	h.segs[key] = n
}

// unregister removes a segment from the registry (volume teardown or segment
// migration off the host).
func (h *Host) unregister(n *Node) {
	key := segKey{Vol: n.cfg.Vol, PG: n.cfg.Seg.PG}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.segs[key] == n {
		delete(h.segs, key)
	}
}

// Segments snapshots every segment node currently hosted.
func (h *Host) Segments() []*Node {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Node, 0, len(h.segs))
	for _, n := range h.segs {
		out = append(out, n)
	}
	return out
}

// SegmentsOf snapshots the segments hosted for one tenant volume.
func (h *Host) SegmentsOf(vol core.VolumeID) []*Node {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []*Node
	for key, n := range h.segs {
		if key.Vol == vol {
			out = append(out, n)
		}
	}
	return out
}

// Tenants returns the set of volumes with at least one segment on this host.
func (h *Host) Tenants() map[core.VolumeID]int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[core.VolumeID]int)
	for key := range h.segs {
		out[key.Vol]++
	}
	return out
}

// QoSStats snapshots the per-tenant shaping counters on this host.
func (h *Host) QoSStats() map[core.VolumeID]TenantStats { return h.qos.Stats() }

// Crash takes the whole machine down: every hosted segment, every tenant.
// This is the multi-tenant blast radius placement exists to bound.
func (h *Host) Crash() {
	for _, n := range h.Segments() {
		n.Crash()
	}
}

// Restart brings every hosted segment back up.
func (h *Host) Restart() {
	for _, n := range h.Segments() {
		n.Restart()
	}
}
