package storage

import (
	"aurora/internal/core"
	"aurora/internal/page"
)

// CoalesceOnce advances materialized pages and garbage collects log
// records (Figure 4 steps 5 and 7). A page's base image may only advance to
// the PGMRPL — the low-water mark below which the writer guarantees no
// read-point will ever be requested (§4.2.3) — and never past the segment's
// own completeness point. The entire log prefix at or below that safe point
// (page records folded into bases, plus transaction metadata records) is
// then garbage collected as one unit, so the retained log always starts
// exactly where the GC boundary (gcTail) ends. CPL positions are retained:
// they are tiny and recovery needs them.
//
// Unlike checkpointing, which is governed by the length of the entire redo
// log chain, the work here is governed per page by the length of that
// page's chain — the key asymmetry called out in §3.2.
//
// It returns the number of pages whose base image advanced.
func (n *Node) CoalesceOnce() int {
	if n.down.Load() {
		return 0
	}
	if n.cfg.Role == core.RoleLog {
		return n.logGCOnce()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.wiped {
		return 0
	}
	safe := n.pgmrpl
	if scl := n.gaps.SCL(); scl < safe {
		safe = scl
	}
	if safe <= n.gcTail {
		return 0
	}

	// Phase 1: materialize every page whose chain intersects the prefix.
	type pending struct {
		ps      *pageState
		newBase page.Page
		cut     int
	}
	var work []pending
	for id, ps := range n.pages {
		if len(ps.chain) == 0 || ps.chain[0].LSN > safe {
			continue
		}
		cut := 0
		for cut < len(ps.chain) && ps.chain[cut].LSN <= safe {
			cut++
		}
		newBase, err := page.Materialize(id, ps.base, ps.chain[:cut], safe)
		if err != nil {
			// A malformed record would have been caught at generation; a
			// failure here means local corruption. Abort the whole round so
			// the GC prefix stays consistent; the scrubber will repair.
			return 0
		}
		newBase.UpdateChecksum()
		work = append(work, pending{ps: ps, newBase: newBase, cut: cut})
	}

	// Phase 2: install bases and GC the complete prefix atomically.
	for _, w := range work {
		w.ps.base = w.newBase
		w.ps.chain = append([]*core.Record(nil), w.ps.chain[w.cut:]...)
	}
	gced := uint64(0)
	for _, lsn := range n.logIdx {
		if lsn > safe {
			break
		}
		delete(n.log, lsn)
		if lsn > n.gcTail {
			n.gcTail = lsn
		}
		gced++
	}
	n.logIdxTrimLocked(safe)
	n.gced.Add(gced)
	n.coalesces.Add(uint64(len(work)))
	for range work {
		if err := n.ssd.Write(page.Size); err != nil {
			break
		}
	}
	return len(work)
}

// logGCOnce is the log tier's frugal stand-in for coalescing: no page is
// ever materialized — a log replica's job ends at durable, complete,
// pulled. The retained log prefix is GC'd only once this replica and
// every peer are complete through it (page replicas pull the feed from
// here, so dropping records a peer still needs would starve the feed)
// and never above the PGMRPL. A wiped or freshly-repairing peer holds
// the floor at its SCL, which safely stalls GC until it catches up.
func (n *Node) logGCOnce() int {
	// Peer SCLs are read without holding our own lock (same discipline as
	// the gossip pull) to keep lock ordering single-level.
	n.mu.Lock()
	peers := append([]*Node(nil), n.peers...)
	n.mu.Unlock()
	floor := n.SCL()
	for _, p := range peers {
		if s := p.SCL(); s < floor {
			floor = s
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.wiped {
		return 0
	}
	if n.pgmrpl < floor {
		floor = n.pgmrpl
	}
	if floor <= n.gcTail {
		return 0
	}
	gced := uint64(0)
	for _, lsn := range n.logIdx {
		if lsn > floor {
			break
		}
		delete(n.log, lsn)
		if lsn > n.gcTail {
			n.gcTail = lsn
		}
		gced++
	}
	if gced == 0 {
		return 0
	}
	n.logIdxTrimLocked(floor)
	// Trim delta chains below the floor: the history lives on in the page
	// tier's materialized bases, not here. The chain bookkeeping exists
	// only so StripePages can report page tails to the rebalancer.
	for id, ps := range n.pages {
		cut := 0
		for cut < len(ps.chain) && ps.chain[cut].LSN <= floor {
			cut++
		}
		if cut > 0 {
			ps.chain = append([]*core.Record(nil), ps.chain[cut:]...)
		}
		if ps.base == nil && len(ps.chain) == 0 {
			delete(n.pages, id)
		}
	}
	n.gced.Add(gced)
	// Persist the advanced GC boundary.
	n.ssd.Write(64)
	return 0
}

// GCTail returns the highest log LSN garbage collected so far — the point
// below which the segment's history lives only in materialized pages.
func (n *Node) GCTail() core.LSN {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.gcTail
}

// ChainLength returns the delta-chain length of a page (0 if unknown). The
// harness uses it to demonstrate that background materialization bounds
// read-time apply work.
func (n *Node) ChainLength(id core.PageID) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	ps := n.pages[id]
	if ps == nil {
		return 0
	}
	return len(ps.chain)
}

// BasePageLSN returns the LSN of the materialized base image of a page
// (ZeroLSN if the page has never been coalesced).
func (n *Node) BasePageLSN(id core.PageID) core.LSN {
	n.mu.Lock()
	defer n.mu.Unlock()
	ps := n.pages[id]
	if ps == nil || ps.base == nil {
		return core.ZeroLSN
	}
	return ps.base.LSN()
}
