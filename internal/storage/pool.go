package storage

import (
	"fmt"
	"sync"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/netsim"
	"aurora/internal/objstore"
	"aurora/internal/quorum"
)

// PoolConfig describes a shared multi-tenant storage fleet.
type PoolConfig struct {
	Name  string // host ID prefix, e.g. "fleet" -> fleet-h00, fleet-h01, ...
	Hosts int    // physical machines, spread round-robin over AZs
	AZs   int    // availability zones (0 = 3, matching the Aurora quorum)
	Net   *netsim.Network
	Disk  disk.Config
	Store *objstore.Store
	QoS   QoSConfig
}

// Pool is a fleet of storage hosts shared by many tenant volumes. Volumes do
// not own hosts; they own segments that the pool places onto hosts with
// AZ-spread and blast-radius limits (quorum.PlacePG). The pool is the
// service-level isolation boundary Aurora describes: tenancy is enforced by
// registries, QoS and placement, not by dedicating hardware per customer.
type Pool struct {
	cfg PoolConfig

	mu    sync.Mutex
	hosts []*Host
}

// NewPool provisions the fleet's hosts round-robin across AZs: host i lands
// in AZ i mod AZs, so every AZ has ⌈Hosts/AZs⌉ machines and any quorum's
// AZ-spread constraint is satisfiable whenever Hosts >= AZs.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.AZs <= 0 {
		cfg.AZs = 3
	}
	p := &Pool{cfg: cfg}
	for i := 0; i < cfg.Hosts; i++ {
		p.hosts = append(p.hosts, NewHost(HostConfig{
			ID:    netsim.NodeID(fmt.Sprintf("%s-h%02d", cfg.Name, i)),
			AZ:    netsim.AZ(i % cfg.AZs),
			Net:   cfg.Net,
			Disk:  cfg.Disk,
			Store: cfg.Store,
			QoS:   cfg.QoS,
		}))
	}
	return p
}

// Hosts snapshots the fleet's machines.
func (p *Pool) Hosts() []*Host {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Host(nil), p.hosts...)
}

// Store returns the pool's shared object store (may be nil).
func (p *Pool) Store() *objstore.Store { return p.cfg.Store }

// Place chooses one host per replica of volume vol's protection group pg
// under the quorum's AZ-spread rules and the pool's blast-radius scoring.
// The placement lock covers the whole choose step so concurrent volume
// provisioning sees each other's assignments.
func (p *Pool) Place(vol core.VolumeID, pg core.PGID, q quorum.Config) ([]*Host, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	infos := make([]quorum.HostInfo, len(p.hosts))
	for i, h := range p.hosts {
		tenants := h.Tenants()
		shared := len(tenants)
		if _, mine := tenants[vol]; mine {
			shared--
		}
		total := 0
		for _, n := range tenants {
			total += n
		}
		infos[i] = quorum.HostInfo{
			AZ:       int(h.AZ()),
			Segments: total,
			Tenant:   tenants[vol],
			Shared:   shared,
		}
	}
	picks, err := quorum.PlacePG(q, infos)
	if err != nil {
		return nil, fmt.Errorf("place %s pg=%d: %w", vol, pg, err)
	}
	out := make([]*Host, len(picks))
	for i, j := range picks {
		out[i] = p.hosts[j]
	}
	return out, nil
}

// TenantStats aggregates per-tenant QoS counters across every host.
func (p *Pool) TenantStats() map[core.VolumeID]TenantStats {
	p.mu.Lock()
	hosts := append([]*Host(nil), p.hosts...)
	p.mu.Unlock()
	out := make(map[core.VolumeID]TenantStats)
	for _, h := range hosts {
		for vol, st := range h.QoSStats() {
			agg := out[vol]
			agg.add(st)
			out[vol] = agg
		}
	}
	return out
}
