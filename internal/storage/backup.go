package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"aurora/internal/core"
	"aurora/internal/page"
)

// ErrBadSnapshot reports a corrupt or truncated snapshot.
var ErrBadSnapshot = errors.New("storage: malformed snapshot")

// snapshotMagic guards against restoring foreign blobs.
const snapshotMagic = uint32(0x41555253) // "AURS"

// Snapshot serialises the segment's full durable state: materialized base
// pages, retained log records, CPL index and consistency points. It is the
// payload for both continuous backup to the object store (Figure 4 step 6)
// and peer-to-peer segment repair (§2.3).
func (n *Node) Snapshot() []byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.snapshotLocked()
}

func (n *Node) snapshotLocked() []byte {
	var buf []byte
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put32(snapshotMagic)

	// Pages, sorted for determinism.
	ids := make([]core.PageID, 0, len(n.pages))
	for id := range n.pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	put32(uint32(len(ids)))
	for _, id := range ids {
		ps := n.pages[id]
		put64(uint64(id))
		if ps.base != nil {
			buf = append(buf, 1)
			buf = append(buf, ps.base...)
		} else {
			buf = append(buf, 0)
		}
	}

	// Records, sorted by LSN (the key index is already in order).
	put32(uint32(len(n.logIdx)))
	for _, lsn := range n.logIdx {
		buf = n.log[lsn].AppendEncode(buf)
	}

	// CPL index and points.
	put32(uint32(len(n.cpls)))
	for _, c := range n.cpls {
		put64(uint64(c))
	}
	put64(uint64(n.vdl))
	put64(uint64(n.pgmrpl))
	put64(uint64(n.gcTail))
	put64(n.trunc.Epoch)
	put64(uint64(n.trunc.From))
	put64(uint64(n.trunc.To))
	put64(n.geomEpoch)
	return buf
}

// LoadSnapshot replaces the node's state with the snapshot contents. It is
// the restore half of backup and the receive half of repair.
func (n *Node) LoadSnapshot(buf []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.loadSnapshotLocked(buf)
}

func (n *Node) loadSnapshotLocked(buf []byte) error {
	off := 0
	need := func(k int) error {
		if len(buf)-off < k {
			return ErrBadSnapshot
		}
		return nil
	}
	get32 := func() (uint32, error) {
		if err := need(4); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v, nil
	}
	get64 := func() (uint64, error) {
		if err := need(8); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		return v, nil
	}
	magic, err := get32()
	if err != nil || magic != snapshotMagic {
		return ErrBadSnapshot
	}

	pages := make(map[core.PageID]*pageState)
	log := make(map[core.LSN]*core.Record)

	nPages, err := get32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nPages; i++ {
		id, err := get64()
		if err != nil {
			return err
		}
		if err := need(1); err != nil {
			return err
		}
		hasBase := buf[off] == 1
		off++
		ps := &pageState{}
		if hasBase {
			if err := need(page.Size); err != nil {
				return err
			}
			ps.base = append(page.Page(nil), buf[off:off+page.Size]...)
			off += page.Size
		}
		pages[core.PageID(id)] = ps
	}

	nRecs, err := get32()
	if err != nil {
		return err
	}
	gaps := core.NewGapTracker(core.ZeroLSN)
	for i := uint32(0); i < nRecs; i++ {
		r, used, err := core.DecodeRecord(buf[off:])
		if err != nil {
			return fmt.Errorf("%w: record %d: %v", ErrBadSnapshot, i, err)
		}
		off += used
		cl := r.Clone()
		log[cl.LSN] = &cl
		if cl.PageRecord() {
			ps := pages[cl.Page]
			if ps == nil {
				ps = &pageState{}
				pages[cl.Page] = ps
			}
			ps.chain = append(ps.chain, &cl)
		}
	}
	for _, ps := range pages {
		sort.Slice(ps.chain, func(i, j int) bool { return ps.chain[i].LSN < ps.chain[j].LSN })
	}

	nCPL, err := get32()
	if err != nil {
		return err
	}
	cpls := make([]core.LSN, 0, nCPL)
	for i := uint32(0); i < nCPL; i++ {
		v, err := get64()
		if err != nil {
			return err
		}
		cpls = append(cpls, core.LSN(v))
	}
	vdl, err := get64()
	if err != nil {
		return err
	}
	pgmrpl, err := get64()
	if err != nil {
		return err
	}
	gcTail, err := get64()
	if err != nil {
		return err
	}
	epoch, err := get64()
	if err != nil {
		return err
	}
	from, err := get64()
	if err != nil {
		return err
	}
	to, err := get64()
	if err != nil {
		return err
	}
	geomEpoch, err := get64()
	if err != nil {
		return err
	}

	// Rebuild the gap tracker: the retained log chains from the GC boundary
	// (everything at or below gcTail lives only in materialized pages and
	// was complete when coalesced).
	gaps = core.NewGapTracker(core.LSN(gcTail))
	idx := make([]core.LSN, 0, len(log))
	for _, r := range sortedRecords(log) {
		gaps.Add(r.PrevLSN, r.LSN)
		idx = append(idx, r.LSN)
	}

	n.pages = pages
	n.log = log
	n.logIdx = idx
	n.cpls = cpls
	n.vdl = core.LSN(vdl)
	n.pgmrpl = core.LSN(pgmrpl)
	n.gcTail = core.LSN(gcTail)
	n.trunc = core.TruncationRange{Epoch: epoch, From: core.LSN(from), To: core.LSN(to)}
	n.geomEpoch = geomEpoch
	n.gaps = gaps
	n.wiped = false
	return nil
}

func sortedRecords(log map[core.LSN]*core.Record) []*core.Record {
	out := make([]*core.Record, 0, len(log))
	for _, r := range log {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LSN < out[j].LSN })
	return out
}

// BackupKey returns the object-store key for this segment's backups. Keys
// are namespaced by tenant volume so two tenants' PITR snapshots can never
// collide on a shared store; the legacy volume 0 keeps its historical keys
// so existing stores remain readable.
func (n *Node) BackupKey() string {
	if n.cfg.Vol != 0 {
		return fmt.Sprintf("vol%d/backup/pg%04d/seg%d", uint32(n.cfg.Vol), n.cfg.Seg.PG, n.cfg.Seg.Replica)
	}
	return fmt.Sprintf("backup/pg%04d/seg%d", n.cfg.Seg.PG, n.cfg.Seg.Replica)
}

// BackupNow stages the segment's state to the object store (Figure 4
// step 6) and returns the stored version id, or 0 if no store is attached.
func (n *Node) BackupNow() int {
	if n.cfg.Store == nil || n.down.Load() {
		return 0
	}
	snap := n.Snapshot()
	if err := n.ssd.Read(len(snap)); err != nil {
		return 0
	}
	v := n.cfg.Store.Put(n.BackupKey(), snap)
	n.backups.Add(1)
	return v
}

// RestoreFromBackup loads the newest backup version from the object store.
func (n *Node) RestoreFromBackup() error {
	if n.cfg.Store == nil {
		return errors.New("storage: no object store attached")
	}
	snap, err := n.cfg.Store.Get(n.BackupKey())
	if err != nil {
		return err
	}
	if err := n.ssd.Write(len(snap)); err != nil {
		return err
	}
	return n.LoadSnapshot(snap)
}
