package storage

import (
	"sort"

	"aurora/internal/core"
)

// gossipBatchLimit bounds how many records one gossip exchange transfers.
const gossipBatchLimit = 512

// gossipRequestSize is the wire size of a gossip pull request.
const gossipRequestSize = 64

// GossipOnce runs one round of peer-to-peer gossip: the node asks each
// reachable peer for records it is missing (Figure 4 step 4). Gossip is the
// mechanism that fills holes left by silently dropped batches, so the
// writer never has to retry into a slow or flaky replica — the 4/6 quorum
// absorbs it and gossip repairs it (§3.3, §4.1).
//
// The exchange is a pull: the requester advertises its SCL and the peer
// returns records with larger LSNs. It returns the number of records
// ingested this round.
func (n *Node) GossipOnce() int {
	if n.down.Load() {
		return 0
	}
	// Gossip runs under the node's root context: a stopping node abandons
	// its in-flight pulls instead of finishing the round.
	ctx := n.runContext()
	total := 0
	n.mu.Lock()
	peers := append([]*Node(nil), n.peers...)
	n.mu.Unlock()
	for _, peer := range peers {
		if ctx.Err() != nil {
			break
		}
		if peer.down.Load() {
			continue
		}
		// Cheap pre-check: nothing to pull if the peer is not ahead and we
		// have no holes to fill.
		myscl := n.SCL()
		if peer.SCL() <= myscl && !n.HasGaps() {
			continue
		}
		if err := n.cfg.Net.Send(ctx, n.cfg.Node, peer.cfg.Node, gossipRequestSize); err != nil {
			continue
		}
		recs, vdl, pgmrpl := peer.recordsAfter(myscl, gossipBatchLimit)
		if len(recs) == 0 {
			continue
		}
		size := 0
		for _, r := range recs {
			size += r.EncodedSize()
		}
		if err := n.cfg.Net.Send(ctx, peer.cfg.Node, n.cfg.Node, size); err != nil {
			continue
		}
		if err := n.ssd.Write(size); err != nil {
			continue
		}
		fresh := 0
		n.mu.Lock()
		if !n.wiped {
			for _, r := range recs {
				if n.ingestLocked(r) {
					fresh++
				}
			}
			n.observePointsLocked(vdl, pgmrpl)
		}
		n.mu.Unlock()
		peer.gossiped.Add(uint64(fresh))
		total += fresh
	}
	n.gossips.Add(1)
	return total
}

// recordsAfter returns up to limit retained records with LSN > after,
// sorted by ascending LSN, along with the node's view of VDL and PGMRPL so
// consistency points propagate epidemically too.
func (n *Node) recordsAfter(after core.LSN, limit int) ([]*core.Record, core.LSN, core.LSN) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []*core.Record
	for lsn, r := range n.log {
		if lsn > after {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LSN < out[j].LSN })
	if len(out) > limit {
		out = out[:limit]
	}
	return out, n.vdl, n.pgmrpl
}

// SyncGroup runs gossip rounds across a group of nodes until no node makes
// progress — used by volume recovery, which first lets the storage service
// repair itself before computing durable points (§4.1), and by tests.
func SyncGroup(nodes []*Node) {
	for {
		progress := 0
		for _, nd := range nodes {
			progress += nd.GossipOnce()
		}
		if progress == 0 {
			return
		}
	}
}
