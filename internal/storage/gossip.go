package storage

import (
	"context"
	"sort"

	"aurora/internal/core"
)

// gossipBatchLimit bounds how many records one gossip exchange transfers.
const gossipBatchLimit = 512

// gossipRequestSize is the wire size of a gossip pull request.
const gossipRequestSize = 64

// GossipOnce runs one round of peer-to-peer gossip: the node asks each
// reachable peer for records it is missing (Figure 4 step 4). Gossip is the
// mechanism that fills holes left by silently dropped batches, so the
// writer never has to retry into a slow or flaky replica — the 4/6 quorum
// absorbs it and gossip repairs it (§3.3, §4.1).
//
// The exchange is a pull: the requester advertises its SCL and the peer
// returns records with larger LSNs. It returns the number of records
// ingested this round.
//
// Under a role split this same pull IS the log→page feed: page replicas
// receive no foreground batches and learn the redo stream exclusively by
// pulling it from the log tier (or from page peers that are ahead).
// PauseFeed idles this background round without touching the read-time
// catch-up pull.
func (n *Node) GossipOnce() int {
	if n.down.Load() || n.feedPaused.Load() {
		return 0
	}
	// Gossip runs under the node's root context: a stopping node abandons
	// its in-flight pulls instead of finishing the round.
	total := n.pullRound(n.runContext())
	n.gossips.Add(1)
	return total
}

// catchUpTo pulls from peers until the node's SCL reaches target, a round
// makes no progress, or the bounded round budget runs out. It ignores
// PauseFeed — a paused background feed must not break the read path — and
// runs under the caller's (read) context so a canceled hedge stops
// pulling immediately. Reports whether target was reached.
func (n *Node) catchUpTo(ctx context.Context, target core.LSN) bool {
	const rounds = 32
	for i := 0; i < rounds; i++ {
		if ctx.Err() != nil || n.down.Load() {
			return false
		}
		if n.SCL() >= target {
			return true
		}
		if n.pullRound(ctx) == 0 {
			return n.SCL() >= target
		}
	}
	return n.SCL() >= target
}

// pullRound runs one pull pass over all reachable peers, returning the
// number of fresh records ingested.
func (n *Node) pullRound(ctx context.Context) int {
	total := 0
	n.mu.Lock()
	peers := append([]*Node(nil), n.peers...)
	n.mu.Unlock()
	// Prefer same-AZ peers: every AZ holds a complete copy of the stream
	// under both schemes (two full replicas classically, one log replica
	// under a role split), so pulling locally first keeps the steady-state
	// feed off the cross-AZ links and off their latency.
	sort.SliceStable(peers, func(i, j int) bool {
		return (peers[i].cfg.AZ == n.cfg.AZ) && (peers[j].cfg.AZ != n.cfg.AZ)
	})
	for _, peer := range peers {
		if ctx.Err() != nil {
			break
		}
		if peer.down.Load() {
			continue
		}
		// Cheap pre-check: nothing to pull if the peer is not ahead and we
		// have no holes to fill.
		myscl := n.SCL()
		if peer.SCL() <= myscl && !n.HasGaps() {
			continue
		}
		if err := n.cfg.Net.Send(ctx, n.cfg.Node, peer.cfg.Node, gossipRequestSize); err != nil {
			continue
		}
		recs, vdl, pgmrpl := peer.recordsAfter(myscl, gossipBatchLimit)
		if len(recs) == 0 {
			continue
		}
		size := 0
		for _, r := range recs {
			size += r.EncodedSize()
		}
		if err := n.cfg.Net.Send(ctx, peer.cfg.Node, n.cfg.Node, size); err != nil {
			continue
		}
		if err := n.ssd.Write(size); err != nil {
			continue
		}
		fresh := 0
		n.mu.Lock()
		if !n.wiped {
			for _, r := range recs {
				if n.ingestLocked(r) {
					fresh++
				}
			}
			n.observePointsLocked(vdl, pgmrpl)
		}
		n.mu.Unlock()
		n.feedBytes.Add(uint64(size))
		peer.gossiped.Add(uint64(fresh))
		total += fresh
	}
	return total
}

// recordsAfter returns up to limit retained records with LSN > after,
// sorted by ascending LSN, along with the node's view of VDL and PGMRPL so
// consistency points propagate epidemically too.
func (n *Node) recordsAfter(after core.LSN, limit int) ([]*core.Record, core.LSN, core.LSN) {
	n.mu.Lock()
	defer n.mu.Unlock()
	// The sorted key index makes this a binary search plus a bounded copy —
	// the pull runs every couple of milliseconds per page replica under a
	// role split, and a full map scan here would hold the log node's lock
	// on the commit ack path.
	i := sort.Search(len(n.logIdx), func(i int) bool { return n.logIdx[i] > after })
	m := len(n.logIdx) - i
	if m > limit {
		m = limit
	}
	if m <= 0 {
		return nil, n.vdl, n.pgmrpl
	}
	out := make([]*core.Record, 0, m)
	for _, lsn := range n.logIdx[i : i+m] {
		out = append(out, n.log[lsn])
	}
	return out, n.vdl, n.pgmrpl
}

// SyncGroup runs gossip rounds across a group of nodes until no node makes
// progress — used by volume recovery, which first lets the storage service
// repair itself before computing durable points (§4.1), and by tests.
func SyncGroup(nodes []*Node) {
	for {
		progress := 0
		for _, nd := range nodes {
			progress += nd.GossipOnce()
		}
		if progress == 0 {
			return
		}
	}
}
