package storage

import (
	"context"

	"aurora/internal/core"
)

// Test shims over Node.Ingest. Production traffic arrives as wire-encoded
// BatchViews borrowed from the sender's arena; tests mostly build []core.Batch
// values, so these helpers encode them the way the framer would and fold the
// per-batch results back into a single error (the first per-batch rejection),
// matching the pre-Ingest ReceiveBatch/ReceiveBatches semantics they replace.

// receiveBatches encodes and ingests a flight. Node-level errors come back
// from Ingest itself; otherwise the first per-batch rejection is returned.
func receiveBatches(n *Node, ctx context.Context, flight []*core.Batch, vdl, mrpl core.LSN) (Ack, error) {
	views := make([]core.BatchView, 0, len(flight))
	for _, b := range flight {
		wire := b.AppendEncode(nil)
		v, _, err := core.ParseBatchView(wire)
		if err != nil {
			return Ack{}, err
		}
		views = append(views, v)
	}
	ack, results, err := n.Ingest(ctx, views, vdl, mrpl, nil)
	if err != nil {
		return ack, err
	}
	for _, res := range results {
		if res.Err != nil {
			return ack, res.Err
		}
	}
	return ack, nil
}

// receiveBatch ingests a single batch, mirroring the old ReceiveBatch.
func receiveBatch(n *Node, ctx context.Context, b *core.Batch, vdl, mrpl core.LSN) (Ack, error) {
	return receiveBatches(n, ctx, []*core.Batch{b}, vdl, mrpl)
}
