package storage

import (
	"context"
	"errors"
	"testing"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/netsim"
)

func testHostPool(t *testing.T, hosts int) (*netsim.Network, *Pool) {
	t.Helper()
	net := netsim.New(netsim.FastLocal())
	return net, NewPool(PoolConfig{Name: "hp", Hosts: hosts, Net: net, Disk: disk.FastLocal()})
}

func TestQoSUnlimitedWhenUnconfigured(t *testing.T) {
	q := newQoS(QoSConfig{})
	for i := 0; i < 100; i++ {
		if err := q.AdmitIngest(context.Background(), 1, 1<<20); err != nil {
			t.Fatal(err)
		}
	}
	if st := q.Stats()[1]; st.Throttles != 0 || st.Rejects != 0 {
		t.Fatalf("shaping engaged with no capacity configured: %+v", st)
	}
}

func TestQoSThrottlesBeyondBurst(t *testing.T) {
	q := newQoS(QoSConfig{IngestBytesPerSec: 1 << 20, Burst: 4096})
	start := time.Now()
	// 64 KiB over a 4 KiB burst at 1 MiB/s must shape for tens of ms.
	for i := 0; i < 16; i++ {
		if err := q.AdmitIngest(context.Background(), 1, 4096); err != nil {
			t.Fatal(err)
		}
	}
	st := q.Stats()[1]
	if st.Throttles == 0 {
		t.Fatal("no throttles recorded past the burst")
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("16x4KiB at 1MiB/s took %v, want >= ~57ms of shaping", elapsed)
	}
	if st.IngestBytes != 16*4096 {
		t.Fatalf("IngestBytes = %d, want %d", st.IngestBytes, 16*4096)
	}
}

func TestQoSFairShareSplitsCapacity(t *testing.T) {
	q := newQoS(QoSConfig{IngestBytesPerSec: 2 << 20, Burst: 1, ActiveWindow: time.Second})
	ctx := context.Background()
	// Touch both tenants so both count as active, then measure one
	// tenant's shaped rate: it should be ~half the host capacity.
	_ = q.AdmitIngest(ctx, 1, 1)
	_ = q.AdmitIngest(ctx, 2, 1)
	start := time.Now()
	const chunk = 64 * 1024
	for i := 0; i < 8; i++ {
		if err := q.AdmitIngest(ctx, 1, chunk); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// 512 KiB at a 1 MiB/s fair share (half of 2 MiB/s) ≈ 500ms; a full
	// 2 MiB/s share would take ~250ms. Split the difference generously.
	if elapsed < 350*time.Millisecond {
		t.Fatalf("8x64KiB done in %v — tenant got more than its fair share", elapsed)
	}
}

func TestQoSQueueCapRejects(t *testing.T) {
	q := newQoS(QoSConfig{IngestBytesPerSec: 1024, Burst: 1, MaxQueue: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// First oversized admit occupies the single queue slot (it will wait a
	// long time at 1 KiB/s); launch it in the background.
	done := make(chan error, 1)
	go func() { done <- q.AdmitIngest(ctx, 1, 1<<20) }()
	// Wait until the waiter is registered.
	deadline := time.Now().Add(2 * time.Second)
	for {
		q.mu.Lock()
		waiters := 0
		if tq := q.tenants[1]; tq != nil {
			waiters = tq.ingest.waiters
		}
		q.mu.Unlock()
		if waiters >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := q.AdmitIngest(ctx, 1, 1<<20); !errors.Is(err, ErrThrottled) {
		t.Fatalf("err = %v, want ErrThrottled", err)
	}
	if st := q.Stats()[1]; st.Rejects != 1 {
		t.Fatalf("Rejects = %d, want 1", st.Rejects)
	}
	cancel()
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("background admit: %v", err)
	}
}

func TestQoSCancelRefundsDebt(t *testing.T) {
	q := newQoS(QoSConfig{IngestBytesPerSec: 1024, Burst: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- q.AdmitIngest(ctx, 7, 1<<20) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	q.mu.Lock()
	debt := q.tenants[7].ingest.debt
	q.mu.Unlock()
	if debt > 4096 {
		t.Fatalf("debt %v not refunded after cancellation", debt)
	}
}

func TestHostRegistryRejectsDuplicates(t *testing.T) {
	_, pool := testHostPool(t, 3)
	h := pool.Hosts()[0]
	n := NewNode(Config{
		Seg: core.SegmentID{PG: 1, Replica: 0}, Vol: 5, Host: h,
	})
	defer n.Detach()
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate (vol, pg) registration did not panic")
		}
	}()
	NewNode(Config{Seg: core.SegmentID{PG: 1, Replica: 1}, Vol: 5, Host: h})
}

func TestHostCrashTakesDownAllTenants(t *testing.T) {
	_, pool := testHostPool(t, 3)
	h := pool.Hosts()[0]
	n1 := NewNode(Config{Seg: core.SegmentID{PG: 0}, Vol: 1, Host: h})
	n2 := NewNode(Config{Seg: core.SegmentID{PG: 0}, Vol: 2, Host: h})
	defer n1.Detach()
	defer n2.Detach()
	h.Crash()
	if !n1.Down() || !n2.Down() {
		t.Fatal("host crash left a hosted segment up")
	}
	h.Restart()
	if n1.Down() || n2.Down() {
		t.Fatal("host restart left a hosted segment down")
	}
	if got := len(h.Tenants()); got != 2 {
		t.Fatalf("host reports %d tenants, want 2", got)
	}
}
