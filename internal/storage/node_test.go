package storage

import (
	"context"
	"errors"
	"testing"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/netsim"
	"aurora/internal/objstore"
)

// testPG builds a 6-replica protection group on a fast network.
func testPG(t *testing.T, store *objstore.Store) (*netsim.Network, []*Node) {
	t.Helper()
	net := netsim.New(netsim.FastLocal())
	nodes := make([]*Node, 6)
	for i := range nodes {
		nodes[i] = NewNode(Config{
			Seg:   core.SegmentID{PG: 0, Replica: uint8(i)},
			Node:  netsim.NodeID(string(rune('a' + i))),
			AZ:    netsim.AZ(i / 2),
			Net:   net,
			Disk:  disk.FastLocal(),
			Store: store,
		})
	}
	for _, n := range nodes {
		n.SetPeers(nodes)
	}
	return net, nodes
}

// writeMTRs frames count single-delta MTRs for pg 0 page `pg0Page` and
// delivers them to the given subset of nodes, returning the framer.
func writeMTRs(t *testing.T, nodes []*Node, count int, to func(i int) []*Node) *core.Framer {
	t.Helper()
	f := core.NewFramer(core.NewAllocator(core.ZeroLSN, 0), nil)
	for i := 0; i < count; i++ {
		m := &core.MTR{Txn: uint64(i)}
		m.AddDelta(0, core.PageID(i%3), uint32(4*i%128), []byte{byte(i), byte(i + 1)})
		batches, _, err := f.Frame(context.Background(), m)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range to(i) {
			for bi := range batches {
				if _, err := receiveBatch(n, context.Background(), &batches[bi], core.ZeroLSN, core.ZeroLSN); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return f
}

func all(nodes []*Node) func(int) []*Node { return func(int) []*Node { return nodes } }

func TestReceiveBatchAdvancesSCL(t *testing.T) {
	_, nodes := testPG(t, nil)
	writeMTRs(t, nodes, 10, all(nodes))
	for _, n := range nodes {
		if n.SCL() != 10 {
			t.Fatalf("%s SCL %d, want 10", n.NodeID(), n.SCL())
		}
		if n.HasGaps() {
			t.Fatalf("%s has gaps", n.NodeID())
		}
	}
	s := nodes[0].Stats()
	if s.BatchesReceived != 10 || s.RecordsReceived != 10 || s.RecordsHeld != 10 {
		t.Fatalf("stats %+v", s)
	}
	// Each receive persisted the hot log and synced.
	ds := nodes[0].Disk().Stats()
	if ds.Writes != 10 || ds.Syncs != 10 {
		t.Fatalf("disk %+v", ds)
	}
}

func TestReceiveBatchDuplicatesIgnored(t *testing.T) {
	_, nodes := testPG(t, nil)
	f := core.NewFramer(core.NewAllocator(core.ZeroLSN, 0), nil)
	m := &core.MTR{Txn: 1}
	m.AddDelta(0, 1, 0, []byte("x"))
	batches, _, _ := f.Frame(context.Background(), m)
	for i := 0; i < 3; i++ {
		if _, err := receiveBatch(nodes[0], context.Background(), &batches[0], 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if s := nodes[0].Stats(); s.RecordsHeld != 1 {
		t.Fatalf("held %d, want 1", s.RecordsHeld)
	}
}

func TestCrashedNodeRejects(t *testing.T) {
	_, nodes := testPG(t, nil)
	nodes[0].Crash()
	if !nodes[0].Down() {
		t.Fatal("Down not reported")
	}
	b := &core.Batch{PG: 0}
	if _, err := receiveBatch(nodes[0], context.Background(), b, 0, 0); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("receive on crashed node: %v", err)
	}
	if _, err := nodes[0].ReadPage(context.Background(), 1, 0, 0); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("read on crashed node: %v", err)
	}
	nodes[0].Restart()
	if _, err := receiveBatch(nodes[0], context.Background(), b, 0, 0); err != nil {
		t.Fatalf("receive after restart: %v", err)
	}
}

func TestGossipFillsHoles(t *testing.T) {
	_, nodes := testPG(t, nil)
	// Deliver every MTR to 4 nodes only (a legal 4/6 quorum write);
	// replicas 4 and 5 miss everything.
	writeMTRs(t, nodes, 20, func(int) []*Node { return nodes[:4] })
	if nodes[5].SCL() != 0 {
		t.Fatal("replica 5 should have nothing yet")
	}
	got := nodes[5].GossipOnce()
	if got == 0 {
		t.Fatal("gossip pulled nothing")
	}
	if nodes[5].SCL() != 20 {
		t.Fatalf("replica 5 SCL %d after gossip, want 20", nodes[5].SCL())
	}
	if s := nodes[0].Stats(); s.RecordsGossiped == 0 {
		t.Fatal("provider did not count gossiped records")
	}
}

func TestGossipFillsInteriorGap(t *testing.T) {
	_, nodes := testPG(t, nil)
	// Node 0 gets MTRs except #5; others get all.
	writeMTRs(t, nodes, 10, func(i int) []*Node {
		if i == 5 {
			return nodes[1:]
		}
		return nodes
	})
	if nodes[0].SCL() != 5 || !nodes[0].HasGaps() {
		t.Fatalf("setup: SCL %d gaps %v", nodes[0].SCL(), nodes[0].HasGaps())
	}
	nodes[0].GossipOnce()
	if nodes[0].SCL() != 10 {
		t.Fatalf("SCL %d after gossip, want 10", nodes[0].SCL())
	}
}

func TestSyncGroupConverges(t *testing.T) {
	_, nodes := testPG(t, nil)
	// Scatter MTRs: MTR i lands only on nodes[i%6] — no quorum anywhere,
	// but the union is complete.
	writeMTRs(t, nodes, 30, func(i int) []*Node { return nodes[i%6 : i%6+1] })
	SyncGroup(nodes)
	for _, n := range nodes {
		if n.SCL() != 30 {
			t.Fatalf("%s SCL %d after sync, want 30", n.NodeID(), n.SCL())
		}
	}
}

func TestGossipSkipsDownPeers(t *testing.T) {
	_, nodes := testPG(t, nil)
	writeMTRs(t, nodes, 5, func(int) []*Node { return nodes[:1] })
	for _, n := range nodes[1:] {
		n.Crash()
	}
	// Gossip from node 1 (crashed) does nothing; node 0 pulling from
	// crashed peers also gets nothing and must not hang.
	if got := nodes[1].GossipOnce(); got != 0 {
		t.Fatal("crashed node gossiped")
	}
	nodes[1].Restart()
	if got := nodes[1].GossipOnce(); got != 5 {
		t.Fatalf("restarted node pulled %d, want 5", got)
	}
}

func TestReadPageMaterializesAtReadPoint(t *testing.T) {
	_, nodes := testPG(t, nil)
	f := core.NewFramer(core.NewAllocator(core.ZeroLSN, 0), nil)
	for i, s := range []string{"aa", "bb", "cc"} {
		m := &core.MTR{Txn: uint64(i)}
		m.AddDelta(0, 7, 0, []byte(s))
		batches, _, _ := f.Frame(context.Background(), m)
		for _, n := range nodes {
			if _, err := receiveBatch(n, context.Background(), &batches[0], 0, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	p, err := nodes[2].ReadPage(context.Background(), 7, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:2]); got != "bb" {
		t.Fatalf("read point 2 payload %q, want bb", got)
	}
	p, err = nodes[2].ReadPage(context.Background(), 7, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:2]); got != "cc" {
		t.Fatalf("read point 3 payload %q, want cc", got)
	}
	if _, err := nodes[2].ReadPage(context.Background(), 7, 9, 9); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("read beyond SCL: %v", err)
	}
	if _, err := nodes[2].ReadPage(context.Background(), 999, 1, 0); !errors.Is(err, ErrNoSuchPage) {
		t.Fatalf("unknown page: %v", err)
	}
}

func TestTruncateAnnulsTail(t *testing.T) {
	_, nodes := testPG(t, nil)
	writeMTRs(t, nodes, 10, all(nodes))
	n := nodes[0]
	if err := n.Truncate(core.TruncationRange{Epoch: 1, From: 6, To: 100}); err != nil {
		t.Fatal(err)
	}
	if n.SCL() != 6 {
		t.Fatalf("SCL %d after truncate, want 6", n.SCL())
	}
	if s := n.Stats(); s.RecordsHeld != 6 {
		t.Fatalf("held %d, want 6", s.RecordsHeld)
	}
	// Stale epoch rejected.
	if err := n.Truncate(core.TruncationRange{Epoch: 0, From: 2, To: 100}); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale epoch: %v", err)
	}
	if n.TruncationEpoch() != 1 {
		t.Fatal("epoch changed by stale truncate")
	}
	// Records arriving after the truncation that fall inside it are dropped.
	f := core.NewFramer(core.NewAllocator(core.ZeroLSN, 0), nil)
	m := &core.MTR{Txn: 99}
	m.AddDelta(0, 1, 0, []byte("zz"))
	batches, _, _ := f.Frame(context.Background(), m) // LSN 1... already held; craft manual record inside range
	_ = batches
	manual := core.Batch{PG: 0, Records: []core.Record{{
		LSN: 8, PrevLSN: 6, Type: core.RecPageDelta, PG: 0, Page: 1, Data: []byte("np"),
	}}}
	if _, err := receiveBatch(n, context.Background(), &manual, 0, 0); err != nil {
		t.Fatal(err)
	}
	if s := n.Stats(); s.RecordsHeld != 6 {
		t.Fatalf("annulled record was ingested: held %d", s.RecordsHeld)
	}
}

func TestHighestCPLAtOrBelow(t *testing.T) {
	_, nodes := testPG(t, nil)
	f := core.NewFramer(core.NewAllocator(core.ZeroLSN, 0), nil)
	// MTR of 3 records: CPL at 3. MTR of 2 records: CPL at 5.
	m1 := &core.MTR{Txn: 1}
	m1.AddDelta(0, 1, 0, []byte("a"))
	m1.AddDelta(0, 2, 0, []byte("b"))
	m1.AddDelta(0, 3, 0, []byte("c"))
	b1, _, _ := f.Frame(context.Background(), m1)
	m2 := &core.MTR{Txn: 2}
	m2.AddDelta(0, 1, 4, []byte("d"))
	m2.AddDelta(0, 2, 4, []byte("e"))
	b2, _, _ := f.Frame(context.Background(), m2)
	n := nodes[0]
	for _, b := range append(b1, b2...) {
		bb := b
		if _, err := receiveBatch(n, context.Background(), &bb, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.HighestCPLAtOrBelow(100); got != 5 {
		t.Fatalf("cpl<=100 = %d, want 5", got)
	}
	if got := n.HighestCPLAtOrBelow(4); got != 3 {
		t.Fatalf("cpl<=4 = %d, want 3", got)
	}
	if got := n.HighestCPLAtOrBelow(2); got != 0 {
		t.Fatalf("cpl<=2 = %d, want 0", got)
	}
}

func TestCoalesceAdvancesBaseAndGCs(t *testing.T) {
	_, nodes := testPG(t, nil)
	n := nodes[0]
	f := core.NewFramer(core.NewAllocator(core.ZeroLSN, 0), nil)
	for i := 0; i < 8; i++ {
		m := &core.MTR{Txn: uint64(i)}
		m.AddDelta(0, 1, uint32(i), []byte{byte('a' + i)})
		batches, _, _ := f.Frame(context.Background(), m)
		// Piggyback VDL=8, PGMRPL=5 on the last batch.
		vdl, mrpl := core.ZeroLSN, core.ZeroLSN
		if i == 7 {
			vdl, mrpl = 8, 5
		}
		if _, err := receiveBatch(n, context.Background(), &batches[0], vdl, mrpl); err != nil {
			t.Fatal(err)
		}
	}
	if adv := n.CoalesceOnce(); adv != 1 {
		t.Fatalf("coalesced %d pages, want 1", adv)
	}
	if got := n.BasePageLSN(1); got != 5 {
		t.Fatalf("base LSN %d, want 5 (PGMRPL)", got)
	}
	if got := n.ChainLength(1); got != 3 {
		t.Fatalf("chain length %d, want 3", got)
	}
	if s := n.Stats(); s.RecordsGCed != 5 || s.RecordsHeld != 3 {
		t.Fatalf("gc stats %+v", s)
	}
	// Reads at/above the PGMRPL still work and see the right data.
	p, err := n.ReadPage(context.Background(), 1, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:8]); got != "abcdefgh" {
		t.Fatalf("payload %q", got)
	}
	p, err = n.ReadPage(context.Background(), 1, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:8]); got != "abcde\x00\x00\x00" {
		t.Fatalf("payload at read point 5: %q", got)
	}
	// CPLs are never GCed: recovery depends on them.
	if got := n.HighestCPLAtOrBelow(3); got != 3 {
		t.Fatalf("old CPL lost: %d", got)
	}
}

func TestCoalesceIdempotentWhenNothingToDo(t *testing.T) {
	_, nodes := testPG(t, nil)
	if adv := nodes[0].CoalesceOnce(); adv != 0 {
		t.Fatal("coalesced on empty node")
	}
}

func TestBackupRestoreRoundTrip(t *testing.T) {
	store := objstore.New()
	_, nodes := testPG(t, store)
	writeMTRs(t, nodes, 12, all(nodes))
	n := nodes[0]
	if v := n.BackupNow(); v != 1 {
		t.Fatalf("backup version %d", v)
	}
	before, err := n.ReadPage(context.Background(), 1, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	n.Wipe()
	if _, err := n.ReadPage(context.Background(), 1, 12, 0); !errors.Is(err, ErrWipedSegment) {
		t.Fatalf("read on wiped segment: %v", err)
	}
	if err := n.RestoreFromBackup(); err != nil {
		t.Fatal(err)
	}
	if n.SCL() != 12 {
		t.Fatalf("SCL after restore %d, want 12", n.SCL())
	}
	after, err := n.ReadPage(context.Background(), 1, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(before.Payload()) != string(after.Payload()) {
		t.Fatal("restored page differs")
	}
}

func TestSnapshotAfterCoalesce(t *testing.T) {
	_, nodes := testPG(t, nil)
	n := nodes[0]
	f := core.NewFramer(core.NewAllocator(core.ZeroLSN, 0), nil)
	for i := 0; i < 6; i++ {
		m := &core.MTR{Txn: uint64(i)}
		m.AddDelta(0, 2, uint32(i), []byte{byte('A' + i)})
		batches, _, _ := f.Frame(context.Background(), m)
		if _, err := receiveBatch(n, context.Background(), &batches[0], 6, 4); err != nil {
			t.Fatal(err)
		}
	}
	n.CoalesceOnce() // base to 4, chain 5..6
	snap := n.Snapshot()
	n2 := NewNode(Config{Seg: n.Seg(), Node: "fresh", AZ: 0, Net: netsim.New(netsim.FastLocal()), Disk: disk.FastLocal()})
	if err := n2.LoadSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if n2.SCL() != 6 {
		t.Fatalf("restored SCL %d, want 6", n2.SCL())
	}
	p, err := n2.ReadPage(context.Background(), 2, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:6]); got != "ABCDEF" {
		t.Fatalf("payload %q", got)
	}
}

func TestLoadSnapshotRejectsGarbage(t *testing.T) {
	_, nodes := testPG(t, nil)
	if err := nodes[0].LoadSnapshot([]byte("not a snapshot")); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("garbage accepted: %v", err)
	}
	if err := nodes[0].LoadSnapshot(nil); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("nil accepted: %v", err)
	}
}

func TestScrubDetectsAndRepairsCorruption(t *testing.T) {
	_, nodes := testPG(t, nil)
	f := core.NewFramer(core.NewAllocator(core.ZeroLSN, 0), nil)
	for i := 0; i < 4; i++ {
		m := &core.MTR{Txn: uint64(i)}
		m.AddDelta(0, 3, uint32(i), []byte{byte('a' + i)})
		batches, _, _ := f.Frame(context.Background(), m)
		for _, n := range nodes {
			if _, err := receiveBatch(n, context.Background(), &batches[0], 4, 4); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, n := range nodes {
		n.CoalesceOnce()
	}
	n := nodes[0]
	if !n.CorruptPage(3) {
		t.Fatal("no base image to corrupt")
	}
	if bad := n.ScrubOnce(); bad != 1 {
		t.Fatalf("scrub found %d corrupt pages, want 1", bad)
	}
	if s := n.Stats(); s.ScrubsRepaired != 1 {
		t.Fatalf("repairs %d", s.ScrubsRepaired)
	}
	p, err := n.ReadPage(context.Background(), 3, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:4]); got != "abcd" {
		t.Fatalf("repaired payload %q", got)
	}
	// A second scrub is clean.
	if bad := n.ScrubOnce(); bad != 0 {
		t.Fatal("scrub still dirty after repair")
	}
}

func TestRepairFromPeerAfterWipe(t *testing.T) {
	net, nodes := testPG(t, nil)
	writeMTRs(t, nodes, 15, all(nodes))
	n := nodes[0]
	n.Wipe()
	net.ResetStats()
	if err := n.RepairFrom(nodes[1]); err != nil {
		t.Fatal(err)
	}
	if n.SCL() != 15 {
		t.Fatalf("SCL after repair %d, want 15", n.SCL())
	}
	if net.Stats().Bytes == 0 {
		t.Fatal("repair crossed no network")
	}
	// Repair from a crashed peer fails.
	n.Wipe()
	nodes[1].Crash()
	if err := n.RepairFrom(nodes[1]); err == nil {
		t.Fatal("repair from crashed peer succeeded")
	}
}

func TestBackgroundLoopsSmoke(t *testing.T) {
	store := objstore.New()
	_, nodes := testPG(t, store)
	for _, n := range nodes {
		n.Start()
		n.Start() // idempotent
	}
	writeMTRs(t, nodes, 10, func(int) []*Node { return nodes[:4] })
	deadline := time.Now().Add(2 * time.Second)
	for nodes[5].SCL() != 10 {
		if time.Now().After(deadline) {
			t.Fatal("background gossip did not converge")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, n := range nodes {
		n.Stop()
		n.Stop() // idempotent
	}
}

func TestReadCostsDiskIO(t *testing.T) {
	_, nodes := testPG(t, nil)
	writeMTRs(t, nodes, 3, all(nodes))
	n := nodes[0]
	n.Disk().ResetStats()
	if _, err := n.ReadPage(context.Background(), 1, 3, 0); err != nil {
		t.Fatal(err)
	}
	if n.Disk().Stats().Reads != 1 {
		t.Fatal("page read did not cost a disk read")
	}
	if n.Stats().Reads != 1 {
		t.Fatal("read not counted")
	}
}
