package storage

import (
	"context"
	"fmt"

	"aurora/internal/core"
	"aurora/internal/page"
)

// ScrubOnce validates the CRC of every materialized base page (Figure 4
// step 8) and repairs corrupt pages by fetching a healthy copy from a peer
// replica. It returns the number of pages found corrupt.
func (n *Node) ScrubOnce() int {
	if n.down.Load() {
		return 0
	}
	n.mu.Lock()
	var bad []core.PageID
	for id, ps := range n.pages {
		if ps.base == nil {
			continue
		}
		if err := ps.base.VerifyChecksum(); err != nil {
			bad = append(bad, id)
		} else {
			n.scrubOK.Add(1)
		}
	}
	peers := append([]*Node(nil), n.peers...)
	n.mu.Unlock()

	ctx := n.runContext()
	for _, id := range bad {
		if n.repairPageFromPeers(ctx, id, peers) {
			n.scrubFix.Add(1)
		}
	}
	return len(bad)
}

// repairPageFromPeers replaces a corrupt base page with a verified copy
// from the first peer that has one, merging the peer's delta chain so no
// record is lost.
func (n *Node) repairPageFromPeers(ctx context.Context, id core.PageID, peers []*Node) bool {
	for _, peer := range peers {
		if peer.down.Load() || ctx.Err() != nil {
			continue
		}
		if err := n.cfg.Net.Send(ctx, n.cfg.Node, peer.cfg.Node, gossipRequestSize); err != nil {
			continue
		}
		base, chain, ok := peer.pageCopy(id)
		if !ok {
			continue
		}
		size := len(base)
		for _, r := range chain {
			size += r.EncodedSize()
		}
		if err := n.cfg.Net.Send(ctx, peer.cfg.Node, n.cfg.Node, size); err != nil {
			continue
		}
		if base != nil {
			if err := base.VerifyChecksum(); err != nil {
				continue // the peer's copy is corrupt too; try the next one
			}
		}
		if err := n.ssd.Write(size); err != nil {
			return false
		}
		n.mu.Lock()
		ps := n.pages[id]
		if ps == nil {
			ps = &pageState{}
			n.pages[id] = ps
		}
		ps.base = base
		// Rebuild the chain: keep records strictly above the new base and
		// merge in any the peer had that we lack.
		merged := map[core.LSN]*core.Record{}
		for _, r := range ps.chain {
			if base == nil || r.LSN > base.LSN() {
				merged[r.LSN] = r
			}
		}
		for _, r := range chain {
			if base == nil || r.LSN > base.LSN() {
				if _, have := merged[r.LSN]; !have {
					cl := r.Clone()
					merged[cl.LSN] = &cl
					n.log[cl.LSN] = &cl
					n.logIdxInsertLocked(cl.LSN)
				}
			}
		}
		ps.chain = ps.chain[:0]
		for _, r := range merged {
			ps.chain = append(ps.chain, r)
		}
		sortChain(ps.chain)
		n.mu.Unlock()
		return true
	}
	return false
}

// pageCopy returns a clone of the node's base image and chain for a page.
func (n *Node) pageCopy(id core.PageID) (page.Page, []*core.Record, bool) {
	if n.down.Load() {
		return nil, nil, false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	ps := n.pages[id]
	if ps == nil {
		return nil, nil, false
	}
	var base page.Page
	if ps.base != nil {
		base = ps.base.Clone()
	}
	chain := make([]*core.Record, len(ps.chain))
	copy(chain, ps.chain)
	return base, chain, true
}

func sortChain(chain []*core.Record) {
	for i := 1; i < len(chain); i++ {
		for j := i; j > 0 && chain[j-1].LSN > chain[j].LSN; j-- {
			chain[j-1], chain[j] = chain[j], chain[j-1]
		}
	}
}

// CorruptPage flips bytes in the materialized base image of a page — the
// fault the scrubber exists to catch. It reports whether a base image was
// present to corrupt.
func (n *Node) CorruptPage(id core.PageID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	ps := n.pages[id]
	if ps == nil || ps.base == nil {
		return false
	}
	payload := ps.base.Payload()
	payload[0] ^= 0xFF
	payload[len(payload)-1] ^= 0xFF
	return true
}

// RepairFrom re-replicates the entire segment from a healthy peer — the
// repair path behind both permanent disk loss and heat management's
// segment migration (§2.3). The full snapshot crosses the network and is
// written to local disk, which is what makes small segments fast to repair
// and hence MTTR short (§2.2).
func (n *Node) RepairFrom(peer *Node) error {
	if peer.down.Load() {
		return fmt.Errorf("repair source %s: %w", peer.cfg.Node, ErrNodeDown)
	}
	ctx := n.runContext()
	if err := n.cfg.Net.Send(ctx, n.cfg.Node, peer.cfg.Node, gossipRequestSize); err != nil {
		return err
	}
	snap := peer.Snapshot()
	if err := n.cfg.Net.Send(ctx, peer.cfg.Node, n.cfg.Node, len(snap)); err != nil {
		return err
	}
	if err := n.ssd.Write(len(snap)); err != nil {
		return err
	}
	return n.LoadSnapshot(snap)
}
