package storage

import (
	"context"
	"errors"
	"testing"

	"aurora/internal/core"
)

func TestReceiveBatchesCoalesced(t *testing.T) {
	_, nodes := testPG(t, nil)
	n := nodes[0]
	f := core.NewFramer(core.NewAllocator(core.ZeroLSN, 0), nil)
	var flight []*core.Batch
	for i := 0; i < 5; i++ {
		m := &core.MTR{Txn: uint64(i)}
		m.AddDelta(0, core.PageID(i), 0, []byte{byte(i)})
		bs, _, err := f.Frame(context.Background(), m)
		if err != nil {
			t.Fatal(err)
		}
		b := bs[0]
		flight = append(flight, &b)
	}
	ack, err := receiveBatches(n, context.Background(), flight, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ack.SCL != 5 {
		t.Fatalf("SCL %d, want 5", ack.SCL)
	}
	// One coalesced flight = one hot-log write and one sync, five batches.
	ds := n.Disk().Stats()
	if ds.Writes != 1 || ds.Syncs != 1 {
		t.Fatalf("disk %+v, want exactly one write+sync for the flight", ds)
	}
	if s := n.Stats(); s.BatchesReceived != 5 || s.RecordsReceived != 5 {
		t.Fatalf("stats %+v", s)
	}
}

func TestReceiveBatchesDownAndWiped(t *testing.T) {
	_, nodes := testPG(t, nil)
	n := nodes[0]
	b := &core.Batch{PG: 0, Records: []core.Record{{
		LSN: 1, Type: core.RecPageDelta, PG: 0, Page: 1, Data: []byte("x"),
	}}}
	n.Crash()
	if _, err := receiveBatches(n, context.Background(), []*core.Batch{b}, 0, 0); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("crashed: %v", err)
	}
	n.Restart()
	n.Wipe()
	if _, err := receiveBatches(n, context.Background(), []*core.Batch{b}, 0, 0); !errors.Is(err, ErrWipedSegment) {
		t.Fatalf("wiped: %v", err)
	}
}

func TestReceiveBatchesFailedDisk(t *testing.T) {
	_, nodes := testPG(t, nil)
	n := nodes[0]
	n.Disk().Fail(true)
	b := &core.Batch{PG: 0, Records: []core.Record{{
		LSN: 1, Type: core.RecPageDelta, PG: 0, Page: 1, Data: []byte("x"),
	}}}
	if _, err := receiveBatches(n, context.Background(), []*core.Batch{b}, 0, 0); err == nil {
		t.Fatal("write to failed disk succeeded")
	}
}

func TestGCTailAndIngestBelowTail(t *testing.T) {
	_, nodes := testPG(t, nil)
	n := nodes[0]
	f := core.NewFramer(core.NewAllocator(core.ZeroLSN, 0), nil)
	for i := 0; i < 6; i++ {
		m := &core.MTR{Txn: uint64(i)}
		m.AddDelta(0, 1, uint32(i), []byte{byte(i)})
		bs, _, _ := f.Frame(context.Background(), m)
		if _, err := receiveBatch(n, context.Background(), &bs[0], 6, 6); err != nil {
			t.Fatal(err)
		}
	}
	n.CoalesceOnce()
	if n.GCTail() != 6 {
		t.Fatalf("gc tail %d, want 6", n.GCTail())
	}
	// A duplicate of a GCed record must be ignored, not resurrected.
	dup := core.Batch{PG: 0, Records: []core.Record{{
		LSN: 3, PrevLSN: 2, Type: core.RecPageDelta, PG: 0, Page: 1, Data: []byte("z"),
	}}}
	if _, err := receiveBatch(n, context.Background(), &dup, 6, 6); err != nil {
		t.Fatal(err)
	}
	if s := n.Stats(); s.RecordsHeld != 0 {
		t.Fatalf("GCed record resurrected: held %d", s.RecordsHeld)
	}
	// Reads at the GC floor still serve from the materialized base.
	p, err := n.ReadPage(context.Background(), 1, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:6]); got != "\x00\x01\x02\x03\x04\x05" {
		t.Fatalf("payload % x", p.Payload()[:6])
	}
}

// TestReceiveBatchesRedeliveryIdempotent re-sends a whole flight, as the
// write path's retry does when an ack is lost after the node already
// persisted the batches: the duplicate must ack the same SCL and change
// nothing durable.
func TestReceiveBatchesRedeliveryIdempotent(t *testing.T) {
	_, nodes := testPG(t, nil)
	n := nodes[0]
	f := core.NewFramer(core.NewAllocator(core.ZeroLSN, 0), nil)
	var flight []*core.Batch
	for i := 0; i < 5; i++ {
		m := &core.MTR{Txn: uint64(i)}
		m.AddDelta(0, core.PageID(i), 0, []byte{byte(i)})
		bs, _, err := f.Frame(context.Background(), m)
		if err != nil {
			t.Fatal(err)
		}
		b := bs[0]
		flight = append(flight, &b)
	}
	ack1, err := receiveBatches(n, context.Background(), flight, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	held := n.Stats().RecordsHeld
	ack2, err := receiveBatches(n, context.Background(), flight, 0, 0)
	if err != nil {
		t.Fatalf("redelivery rejected: %v", err)
	}
	if ack2.SCL != ack1.SCL {
		t.Fatalf("redelivery ack SCL %d, want %d", ack2.SCL, ack1.SCL)
	}
	if got := n.Stats().RecordsHeld; got != held {
		t.Fatalf("redelivery changed records held: %d, want %d", got, held)
	}
	if n.HasGaps() {
		t.Fatal("redelivery introduced gaps")
	}
}
