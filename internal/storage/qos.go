package storage

import (
	"context"
	"errors"
	"sync"
	"time"

	"aurora/internal/core"
)

// ErrThrottled is returned when a tenant's per-host queue is already full of
// throttled work: admitting more would let a hot tenant build an unbounded
// backlog on the host and starve everyone behind it. The writer's sender
// treats it like any other delivery failure — retry with backoff — so the
// tenant's offered load is shed back onto its own pipeline, not the host's.
var ErrThrottled = errors.New("storage: tenant throttled, queue full")

// QoSConfig shapes how one storage host divides its capacity between the
// tenant volumes it serves. Capacities are per host and shared: each tenant's
// instantaneous rate limit is capacity divided by the number of currently
// active tenants (fair share), so an idle fleet gives one tenant everything
// and a contended fleet converges to equal slices. Zero capacities disable
// shaping on that path.
type QoSConfig struct {
	// IngestBytesPerSec is the host's total foreground ingest budget,
	// fair-shared across active tenants.
	IngestBytesPerSec float64
	// ReadsPerSec is the host's total foreground page-read budget,
	// fair-shared across active tenants.
	ReadsPerSec float64
	// Burst is how far a tenant may run ahead of its fair-share rate before
	// shaping delays it (bytes for ingest, ops for reads — the same knob
	// covers both, scaled by the mean op size). Zero selects a default.
	Burst float64
	// MaxQueue caps how many operations per tenant may wait behind the
	// bucket at once; beyond it the host rejects with ErrThrottled rather
	// than queueing (per-tenant queue depth cap). Zero selects a default.
	MaxQueue int
	// ActiveWindow is how long a tenant counts as active after its last
	// operation when computing fair shares. Zero selects a default.
	ActiveWindow time.Duration
}

func (c *QoSConfig) fillDefaults() {
	if c.Burst <= 0 {
		c.Burst = 64 * 1024
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 32
	}
	if c.ActiveWindow <= 0 {
		c.ActiveWindow = 250 * time.Millisecond
	}
}

// Enabled reports whether any shaping is configured.
func (c QoSConfig) Enabled() bool { return c.IngestBytesPerSec > 0 || c.ReadsPerSec > 0 }

// TenantStats is one tenant's activity on one host.
type TenantStats struct {
	IngestBytes  uint64        // foreground redo bytes admitted
	Reads        uint64        // foreground page reads admitted
	Throttles    uint64        // operations delayed by fair-share shaping
	Rejects      uint64        // operations refused at the queue-depth cap
	ThrottleWait time.Duration // total time operations spent shaped
}

func (s *TenantStats) add(o TenantStats) {
	s.IngestBytes += o.IngestBytes
	s.Reads += o.Reads
	s.Throttles += o.Throttles
	s.Rejects += o.Rejects
	s.ThrottleWait += o.ThrottleWait
}

// bucket is one tenant's debt-based token bucket on one path: debt is how
// many units the tenant has consumed beyond what its accrued rate allowance
// covers. Admission charges the op, drains debt at the tenant's current fair
// share, and shapes (sleeps) whenever debt exceeds the burst allowance.
type bucket struct {
	debt    float64
	last    time.Time
	waiters int
}

// tenantQoS is one tenant's shaping state on one host.
type tenantQoS struct {
	ingest     bucket
	read       bucket
	lastActive time.Time
	stats      TenantStats
}

// qos is the per-host fair-share scheduler. All state is under one mutex;
// the critical sections are O(tenants-on-host) at worst (counting active
// tenants) and allocation-free in steady state.
type qos struct {
	cfg QoSConfig

	mu      sync.Mutex
	tenants map[core.VolumeID]*tenantQoS
}

func newQoS(cfg QoSConfig) *qos {
	cfg.fillDefaults()
	return &qos{cfg: cfg, tenants: make(map[core.VolumeID]*tenantQoS)}
}

// activeLocked counts tenants active within the window (the caller's own
// tenant is always counted — it is acting right now).
func (q *qos) activeLocked(now time.Time, self core.VolumeID) int {
	n := 0
	for vol, t := range q.tenants {
		if vol == self || now.Sub(t.lastActive) <= q.cfg.ActiveWindow {
			n++
		}
	}
	return n
}

func (q *qos) tenantLocked(vol core.VolumeID) *tenantQoS {
	t := q.tenants[vol]
	if t == nil {
		t = &tenantQoS{}
		q.tenants[vol] = t
	}
	return t
}

// admit charges units against one tenant's bucket and returns how long the
// caller must be shaped before proceeding, or ErrThrottled when the tenant's
// queue-depth cap is hit. release must be called after the shaping wait (or
// immediately on a zero wait).
func (q *qos) admit(vol core.VolumeID, b *bucket, t *tenantQoS, capacity, units float64, now time.Time) (time.Duration, error) {
	// Fair share: the host's capacity divided by active tenants. A tenant
	// alone on the host gets everything; a contended host converges to
	// equal slices (work-conserving up to the activity window).
	rate := capacity / float64(q.activeLocked(now, vol))
	if !b.last.IsZero() {
		b.debt -= rate * now.Sub(b.last).Seconds()
		if b.debt < 0 {
			b.debt = 0
		}
	}
	b.last = now
	if b.debt+units > q.cfg.Burst && b.waiters >= q.cfg.MaxQueue {
		t.stats.Rejects++
		return 0, ErrThrottled
	}
	b.debt += units
	if b.debt <= q.cfg.Burst {
		return 0, nil
	}
	wait := time.Duration((b.debt - q.cfg.Burst) / rate * float64(time.Second))
	b.waiters++
	t.stats.Throttles++
	t.stats.ThrottleWait += wait
	return wait, nil
}

// shape performs the ctx-aware throttle sleep computed by admit. A canceled
// wait refunds the charge: the operation never ran.
func (q *qos) shape(ctx context.Context, b *bucket, units float64, wait time.Duration) error {
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-timer.C:
		q.mu.Lock()
		b.waiters--
		q.mu.Unlock()
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		b.waiters--
		b.debt -= units
		if b.debt < 0 {
			b.debt = 0
		}
		q.mu.Unlock()
		return ctx.Err()
	}
}

// AdmitIngest admits size bytes of foreground redo from tenant vol,
// delaying the caller to the tenant's fair share of the host's ingest
// capacity. Hot tenants beyond their queue cap get ErrThrottled.
func (q *qos) AdmitIngest(ctx context.Context, vol core.VolumeID, size int) error {
	if q == nil || q.cfg.IngestBytesPerSec <= 0 {
		return nil
	}
	now := time.Now()
	q.mu.Lock()
	t := q.tenantLocked(vol)
	t.lastActive = now
	wait, err := q.admit(vol, &t.ingest, t, q.cfg.IngestBytesPerSec, float64(size), now)
	if err == nil {
		t.stats.IngestBytes += uint64(size)
	}
	b := &t.ingest
	q.mu.Unlock()
	if err != nil {
		return err
	}
	if wait <= 0 {
		return nil
	}
	return q.shape(ctx, b, float64(size), wait)
}

// AdmitRead admits one foreground page read from tenant vol against the
// host's read capacity, fair-shared like ingest.
func (q *qos) AdmitRead(ctx context.Context, vol core.VolumeID) error {
	if q == nil || q.cfg.ReadsPerSec <= 0 {
		return nil
	}
	// Reads are counted in ops; scale one op to the burst's byte units so
	// the same Burst knob covers both paths (burst/readUnit ops of slack).
	const readUnit = 4096
	now := time.Now()
	q.mu.Lock()
	t := q.tenantLocked(vol)
	t.lastActive = now
	wait, err := q.admit(vol, &t.read, t, q.cfg.ReadsPerSec*readUnit, readUnit, now)
	if err == nil {
		t.stats.Reads++
	}
	b := &t.read
	q.mu.Unlock()
	if err != nil {
		return err
	}
	if wait <= 0 {
		return nil
	}
	return q.shape(ctx, b, readUnit, wait)
}

// Stats snapshots every tenant's counters on this scheduler.
func (q *qos) Stats() map[core.VolumeID]TenantStats {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[core.VolumeID]TenantStats, len(q.tenants))
	for vol, t := range q.tenants {
		out[vol] = t.stats
	}
	return out
}
