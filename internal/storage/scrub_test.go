package storage

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"aurora/internal/core"
)

// scrubPG builds a 6-replica PG with coalesced base images on every node:
// 8 deltas to page 1, PGMRPL piggybacked so CoalesceOnce materializes a
// base at LSN 5 with a 3-record chain on top.
func scrubPG(t *testing.T) []*Node {
	t.Helper()
	_, nodes := testPG(t, nil)
	f := core.NewFramer(core.NewAllocator(core.ZeroLSN, 0), nil)
	for i := 0; i < 8; i++ {
		m := &core.MTR{Txn: uint64(i)}
		m.AddDelta(0, 1, uint32(i), []byte{byte('a' + i)})
		batches, _, _ := f.Frame(context.Background(), m)
		vdl, mrpl := core.ZeroLSN, core.ZeroLSN
		if i == 7 {
			vdl, mrpl = 8, 5
		}
		for _, n := range nodes {
			if _, err := receiveBatch(n, context.Background(), &batches[0], vdl, mrpl); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, n := range nodes {
		if adv := n.CoalesceOnce(); adv != 1 {
			t.Fatalf("%s coalesced %d pages, want 1", n.NodeID(), adv)
		}
	}
	return nodes
}

// TestCorruptionInvisibleToReaders is the end-to-end contract the CorruptPage
// fault depends on: after a base image is corrupted, (1) the corrupt replica
// refuses the read with ErrCorruptPage instead of serving bad bytes, (2) the
// scrubber detects the corruption and repairs the image from a peer, and
// (3) the repaired replica serves bytes identical to a healthy peer's.
// Nothing in the window between corruption and repair can hand a reader a
// page whose checksum does not verify.
func TestCorruptionInvisibleToReaders(t *testing.T) {
	nodes := scrubPG(t)
	victim, peer := nodes[0], nodes[1]

	healthy, err := peer.ReadPage(context.Background(), 1, 8, 0)
	if err != nil {
		t.Fatal(err)
	}

	if !victim.CorruptPage(1) {
		t.Fatal("no base image to corrupt")
	}

	// (1) The read path must refuse, not serve, the corrupt base.
	_, err = victim.ReadPage(context.Background(), 1, 8, 0)
	if !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("read of corrupt page: err=%v, want ErrCorruptPage", err)
	}
	if got := victim.Stats().CorruptReads; got != 1 {
		t.Fatalf("CorruptReads = %d, want 1", got)
	}

	// (2) One scrub pass detects and repairs from a peer.
	if bad := victim.ScrubOnce(); bad != 1 {
		t.Fatalf("scrub found %d corrupt pages, want 1", bad)
	}
	s := victim.Stats()
	if s.ScrubsRepaired != 1 {
		t.Fatalf("ScrubsRepaired = %d, want 1", s.ScrubsRepaired)
	}

	// (3) The repaired image serves bytes identical to the healthy peer.
	repaired, err := victim.ReadPage(context.Background(), 1, 8, 0)
	if err != nil {
		t.Fatalf("read after scrub: %v", err)
	}
	if !bytes.Equal(repaired, healthy) {
		t.Fatal("repaired page differs from healthy peer's copy")
	}
}

// TestScrubSkipsCorruptPeerCopy: a repair must verify the peer's image
// before installing it — with the nearest peer corrupt too, the scrubber
// keeps walking until it finds a clean copy.
func TestScrubSkipsCorruptPeerCopy(t *testing.T) {
	nodes := scrubPG(t)
	victim := nodes[0]
	if !victim.CorruptPage(1) || !nodes[1].CorruptPage(1) {
		t.Fatal("no base image to corrupt")
	}
	if bad := victim.ScrubOnce(); bad != 1 {
		t.Fatalf("scrub found %d corrupt pages, want 1", bad)
	}
	if victim.Stats().ScrubsRepaired != 1 {
		t.Fatal("victim not repaired despite four clean peers")
	}
	p, err := victim.ReadPage(context.Background(), 1, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:8]); got != "abcdefgh" {
		t.Fatalf("payload after repair: %q", got)
	}
}
