package disk

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestCountsAndStats(t *testing.T) {
	d := New(FastLocal())
	if err := d.Write(100); err != nil {
		t.Fatal(err)
	}
	if err := d.Read(40); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Writes != 1 || s.Reads != 1 || s.Syncs != 1 || s.BytesWritten != 100 || s.BytesRead != 40 {
		t.Fatalf("stats %+v", s)
	}
	d.ResetStats()
	if s := d.Stats(); s != (Stats{}) {
		t.Fatalf("reset failed: %+v", s)
	}
}

func TestFailureInjection(t *testing.T) {
	d := New(FastLocal())
	d.Fail(true)
	if !d.Failed() {
		t.Fatal("Failed not reported")
	}
	if err := d.Write(1); !errors.Is(err, ErrFailed) {
		t.Fatalf("write on failed disk: %v", err)
	}
	if err := d.Read(1); !errors.Is(err, ErrFailed) {
		t.Fatalf("read on failed disk: %v", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrFailed) {
		t.Fatalf("sync on failed disk: %v", err)
	}
	if s := d.Stats(); s.Writes != 0 {
		t.Fatal("failed IO counted")
	}
	d.Fail(false)
	if err := d.Write(1); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyAndBandwidth(t *testing.T) {
	d := New(Config{WriteLatency: time.Millisecond, Bandwidth: 1000})
	var slept time.Duration
	d.SetSleeper(func(dur time.Duration) { slept += dur })
	if err := d.Write(500); err != nil {
		t.Fatal(err)
	}
	if slept != time.Millisecond+500*time.Millisecond {
		t.Fatalf("slept %v", slept)
	}
}

func TestSlowDevice(t *testing.T) {
	d := New(Config{ReadLatency: time.Millisecond})
	var slept time.Duration
	d.SetSleeper(func(dur time.Duration) { slept = dur })
	d.SetSlow(4)
	if err := d.Read(0); err != nil {
		t.Fatal(err)
	}
	if slept != 4*time.Millisecond {
		t.Fatalf("slow read %v, want 4ms", slept)
	}
	d.SetSlow(0)
	if err := d.Read(0); err != nil {
		t.Fatal(err)
	}
	if slept != time.Millisecond {
		t.Fatalf("restored read %v, want 1ms", slept)
	}
}

func TestConcurrent(t *testing.T) {
	d := New(FastLocal())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := d.Write(8); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s := d.Stats(); s.Writes != 8000 || s.BytesWritten != 64000 {
		t.Fatalf("stats %+v", s)
	}
}
