// Package disk simulates the locally attached SSDs of storage nodes and
// database hosts. It models per-operation latency and tracks IO counts so
// experiments can report disk traffic alongside network traffic, and it
// supports fault injection (failed device, slow device) for the chaos and
// repair scenarios of §2.3.
package disk

import (
	"errors"
	"sync/atomic"
	"time"
)

// Errors returned by IO methods.
var ErrFailed = errors.New("disk: device failed")

// Config models device speed.
type Config struct {
	WriteLatency time.Duration
	ReadLatency  time.Duration
	SyncLatency  time.Duration
	// Bandwidth in bytes/second; 0 = unlimited.
	Bandwidth int64
}

// FastLocal returns a zero-latency device for logic tests.
func FastLocal() Config { return Config{} }

// NVMe returns the scaled-down default SSD model used by the harness.
func NVMe() Config {
	return Config{
		WriteLatency: 80 * time.Microsecond,
		ReadLatency:  60 * time.Microsecond,
		SyncLatency:  50 * time.Microsecond,
		Bandwidth:    2 << 30,
	}
}

// Stats is a snapshot of device counters.
type Stats struct {
	Writes       uint64
	Reads        uint64
	Syncs        uint64
	BytesWritten uint64
	BytesRead    uint64
}

// SSD is a simulated device. All methods are safe for concurrent use.
type SSD struct {
	cfg      Config
	failed   atomic.Bool
	slowMult atomic.Int64 // x1000 fixed point, 0 = 1.0

	writes atomic.Uint64
	reads  atomic.Uint64
	syncs  atomic.Uint64
	wBytes atomic.Uint64
	rBytes atomic.Uint64

	sleep func(time.Duration)
}

// New returns a device with the given speed model.
func New(cfg Config) *SSD { return &SSD{cfg: cfg, sleep: time.Sleep} }

// SetSleeper overrides the sleep function for tests.
func (d *SSD) SetSleeper(f func(time.Duration)) { d.sleep = f }

// Fail marks the device failed or repaired. Failed devices return ErrFailed
// on every operation — the "permanent failure of a disk" from §2.1.
func (d *SSD) Fail(failed bool) { d.failed.Store(failed) }

// Failed reports the failure state.
func (d *SSD) Failed() bool { return d.failed.Load() }

// SetSlow applies a latency multiplier — a hot disk (§2.3). mult <= 1 clears.
func (d *SSD) SetSlow(mult float64) {
	if mult <= 1 {
		d.slowMult.Store(0)
	} else {
		d.slowMult.Store(int64(mult * 1000))
	}
}

func (d *SSD) delay(base time.Duration, size int) {
	if d.cfg.Bandwidth > 0 && size > 0 {
		base += time.Duration(int64(size) * int64(time.Second) / d.cfg.Bandwidth)
	}
	if m := d.slowMult.Load(); m > 0 {
		base = time.Duration(int64(base) * m / 1000)
	}
	if base > 0 {
		d.sleep(base)
	}
}

// Write models writing size bytes.
func (d *SSD) Write(size int) error {
	if d.failed.Load() {
		return ErrFailed
	}
	d.delay(d.cfg.WriteLatency, size)
	d.writes.Add(1)
	d.wBytes.Add(uint64(size))
	return nil
}

// Read models reading size bytes.
func (d *SSD) Read(size int) error {
	if d.failed.Load() {
		return ErrFailed
	}
	d.delay(d.cfg.ReadLatency, size)
	d.reads.Add(1)
	d.rBytes.Add(uint64(size))
	return nil
}

// Sync models a durability barrier (fsync).
func (d *SSD) Sync() error {
	if d.failed.Load() {
		return ErrFailed
	}
	d.delay(d.cfg.SyncLatency, 0)
	d.syncs.Add(1)
	return nil
}

// Stats returns a snapshot of counters.
func (d *SSD) Stats() Stats {
	return Stats{
		Writes:       d.writes.Load(),
		Reads:        d.reads.Load(),
		Syncs:        d.syncs.Load(),
		BytesWritten: d.wBytes.Load(),
		BytesRead:    d.rBytes.Load(),
	}
}

// ResetStats zeroes the counters.
func (d *SSD) ResetStats() {
	d.writes.Store(0)
	d.reads.Store(0)
	d.syncs.Store(0)
	d.wBytes.Store(0)
	d.rBytes.Store(0)
}
