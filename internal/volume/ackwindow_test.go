package volume

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aurora/internal/core"
)

func TestAckWindowFrontierAndVDL(t *testing.T) {
	w := newAckWindow(0)
	w.addCPL(3)
	w.addCPL(5)
	// Acks out of order: 4-5 first, then 1-3.
	if vdl := w.markAcked(4, 5); vdl != 0 {
		t.Fatalf("vdl %d before prefix acked", vdl)
	}
	if vdl := w.markAcked(1, 3); vdl != 5 {
		t.Fatalf("vdl %d, want 5 (both CPLs covered)", vdl)
	}
	if w.outstanding() != 0 {
		t.Fatalf("outstanding %d", w.outstanding())
	}
}

func TestAckWindowVDLOnlyAtCPLs(t *testing.T) {
	w := newAckWindow(0)
	w.addCPL(4)
	if vdl := w.markAcked(1, 3); vdl != 0 {
		t.Fatalf("vdl %d: LSN 3 is not a CPL", vdl)
	}
	if vdl := w.markAcked(4, 4); vdl != 4 {
		t.Fatalf("vdl %d, want 4", vdl)
	}
}

func TestAckWindowSeededStart(t *testing.T) {
	w := newAckWindow(100)
	w.addCPL(102)
	if vdl := w.markAcked(101, 102); vdl != 102 {
		t.Fatalf("vdl %d after recovery-seeded window", vdl)
	}
}

func TestAckWindowSkipTo(t *testing.T) {
	w := newAckWindow(0)
	w.addCPL(2)
	w.addCPL(9)
	w.markAcked(1, 2)
	w.skipTo(10)
	if w.outstanding() != 0 {
		t.Fatalf("outstanding %d after skip", w.outstanding())
	}
}

// Property: for any permutation of ack order, once everything is acked the
// VDL equals the highest CPL.
func TestAckWindowPermutationProperty(t *testing.T) {
	f := func(seed int64, nSmall uint8) bool {
		n := int(nSmall%40) + 1
		rng := rand.New(rand.NewSource(seed))
		w := newAckWindow(0)
		var lastCPL core.LSN
		for l := 1; l <= n; l++ {
			if rng.Intn(3) == 0 || l == n {
				w.addCPL(core.LSN(l))
				lastCPL = core.LSN(l)
			}
		}
		var final core.LSN
		for _, l := range rng.Perm(n) {
			final = w.markAcked(core.LSN(l+1), core.LSN(l+1))
		}
		// After all acks the VDL must have reached the last CPL (the final
		// markAcked call may not be the one that crossed it, so query by
		// acking an empty-range no-op).
		if got := w.markAcked(1, 1); got != lastCPL {
			return false
		}
		_ = final
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPGTailTracker(t *testing.T) {
	tr := NewPGTailTracker(map[core.PGID]core.LSN{2: 50})
	if tr.DurableTail(2) != 50 || tr.DurableTail(0) != 0 {
		t.Fatal("seed tails wrong")
	}
	tr.AddMTR(&core.MTR{Records: []core.Record{
		{LSN: 60, Type: core.RecPageDelta, PG: 0, Page: 1},
		{LSN: 62, Type: core.RecPageDelta, PG: 0, Page: 2},
	}})
	tr.AddMTR(&core.MTR{Records: []core.Record{
		{LSN: 61, Type: core.RecPageDelta, PG: 2, Page: 3},
	}})
	tr.Advance(61)
	if got := tr.DurableTail(0); got != 60 {
		t.Fatalf("pg0 tail %d, want 60 (62 not durable yet)", got)
	}
	if got := tr.DurableTail(2); got != 61 {
		t.Fatalf("pg2 tail %d, want 61", got)
	}
	tr.Advance(100)
	if got := tr.DurableTail(0); got != 62 {
		t.Fatalf("pg0 tail %d, want 62", got)
	}
	// Advance is monotonic; a stale advance changes nothing.
	tr.Advance(10)
	if got := tr.DurableTail(0); got != 62 {
		t.Fatalf("tail regressed to %d", got)
	}
}

func TestReadRegistryLowWaterMark(t *testing.T) {
	r := newReadRegistry(10)
	if lwm := r.lowWaterMark(20); lwm != 20 {
		t.Fatalf("no-readers LWM %d, want VDL", lwm)
	}
	rel5 := r.register(15)
	rel8 := r.register(18)
	if lwm := r.lowWaterMark(30); lwm != 20 {
		// Floor is monotonic: it already advanced to 20 above, and the
		// outstanding reads (15, 18) cannot drag it back.
		t.Fatalf("LWM %d, want floor 20", lwm)
	}
	rel5()
	rel8()
	if lwm := r.lowWaterMark(40); lwm != 40 {
		t.Fatalf("LWM %d after releases, want 40", lwm)
	}
	// A long-held read pins the mark.
	hold := r.register(40)
	r.register(45) // a later read does not matter; min rules
	if lwm := r.lowWaterMark(99); lwm != 40 {
		t.Fatalf("LWM %d, want pinned 40", lwm)
	}
	hold()
	if lwm := r.lowWaterMark(99); lwm != 45 {
		t.Fatalf("LWM %d, want 45 (remaining read)", lwm)
	}
}
