package volume

import (
	"sync"
	"testing"
	"time"

	"aurora/internal/control"
	"aurora/internal/core"
)

// TestHedgeDeadlineForgetsColdStart is the regression test for the
// lifetime-P95 bug: a slow cold start used to inflate the hedge deadline
// permanently (the reservoir never forgot it). With windowed quantiles the
// deadline must recover once the slow samples age out of the window — even
// with AutoTune off (no knob steering involved here).
func TestHedgeDeadlineForgetsColdStart(t *testing.T) {
	h := newHealthTracker(HealthConfig{WindowInterval: 20 * time.Millisecond}, 1, 6)
	pg := core.PGID(0)

	// Cold start: a full recompute batch of slow reads.
	for i := 0; i < deadlineEvery; i++ {
		h.observeReadLatency(pg, 5*time.Millisecond)
	}
	inflated := h.ReadDeadline(pg)
	if inflated < 5*time.Millisecond {
		t.Fatalf("cold-start deadline = %v, want >= 3x the slow p95", inflated)
	}

	// Let the cold-start samples age out of both windows, then observe
	// steady fast traffic.
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < deadlineEvery; i++ {
		h.observeReadLatency(pg, 100*time.Microsecond)
	}
	recovered := h.ReadDeadline(pg)
	if recovered >= inflated {
		t.Fatalf("deadline never recovered from cold start: %v -> %v", inflated, recovered)
	}
	if recovered > time.Millisecond {
		t.Fatalf("recovered deadline = %v, want < 1ms for 100µs traffic", recovered)
	}
}

// TestHedgeKnobScalesDeadline verifies the control-plane multiplier knob
// overrides the static config multiplier, and that clearing it restores
// the static fallback.
func TestHedgeKnobScalesDeadline(t *testing.T) {
	h := newHealthTracker(HealthConfig{WindowInterval: time.Second}, 1, 6)
	pg := core.PGID(0)
	feed := func() {
		for i := 0; i < deadlineEvery; i++ {
			h.observeReadLatency(pg, time.Millisecond)
		}
	}
	feed()
	static := h.ReadDeadline(pg) // ~3x windowed p95

	k := control.NewKnob(control.KnobHedgeMultPct, control.DefaultHedgeMultPct,
		control.MinHedgeMultPct, control.MaxHedgeMultPct)
	k.Set(control.MaxHedgeMultPct) // 8x
	h.SetHedgeKnob(k)
	feed()
	loose := h.ReadDeadline(pg)
	if loose <= static {
		t.Fatalf("8x knob did not loosen deadline: static=%v knob=%v", static, loose)
	}

	k.Set(control.MinHedgeMultPct) // 1.5x
	feed()
	tight := h.ReadDeadline(pg)
	if tight >= loose {
		t.Fatalf("1.5x knob did not tighten deadline: loose=%v tight=%v", loose, tight)
	}

	h.SetHedgeKnob(nil)
	feed()
	back := h.ReadDeadline(pg)
	if back <= tight {
		t.Fatalf("clearing the knob did not restore the 3x fallback: %v", back)
	}
}

// TestBackoffRespectsKnobCap verifies backoffFor honours an adaptively
// lowered or raised ceiling, jitter included.
func TestBackoffRespectsKnobCap(t *testing.T) {
	for try := 0; try < deliverAttempts; try++ {
		capAt := 500 * time.Microsecond
		for i := 0; i < 50; i++ {
			d := backoffFor(try, capAt)
			// Jitter adds up to 50% on top of the capped base.
			if d > capAt+capAt/2 {
				t.Fatalf("try %d: backoff %v exceeds cap %v (+jitter)", try, d, capAt)
			}
			if d <= 0 {
				t.Fatalf("try %d: non-positive backoff %v", try, d)
			}
		}
	}
	// A generous cap must not truncate the early exponential steps.
	base := backoffFor(0, 50*time.Millisecond)
	if base < deliverBaseBackoff {
		t.Fatalf("first backoff %v below base %v", base, deliverBaseBackoff)
	}
}

// TestKnobUpdatesRaceReadPath hammers hedge-mult and backoff-cap knob
// updates while reads and deadline recomputes run concurrently — the
// volume half of the knob-vs-hot-path -race safety satellite.
func TestKnobUpdatesRaceReadPath(t *testing.T) {
	h := newHealthTracker(HealthConfig{WindowInterval: 5 * time.Millisecond}, 4, 6)
	k := control.NewKnob(control.KnobHedgeMultPct, control.DefaultHedgeMultPct,
		control.MinHedgeMultPct, control.MaxHedgeMultPct)
	h.SetHedgeKnob(k)
	boff := control.NewKnob(control.KnobBackoffCapUS, control.DefaultBackoffCapUS,
		control.MinBackoffCapUS, control.MaxBackoffCapUS)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pg := core.PGID(g)
			lat := time.Duration(100+g*50) * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.observeReadLatency(pg, lat)
				_ = h.ReadDeadline(pg)
				_ = backoffFor(1, time.Duration(boff.Load())*time.Microsecond)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := int64(control.MinHedgeMultPct)
		for {
			select {
			case <-stop:
				return
			default:
			}
			k.Set(v)
			boff.Set(v * 10)
			v++
			if v > control.MaxHedgeMultPct {
				v = control.MinHedgeMultPct
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	for g := 0; g < 4; g++ {
		if d := h.ReadDeadline(core.PGID(g)); d <= 0 {
			t.Fatalf("pg %d deadline %v after race", g, d)
		}
	}
}
