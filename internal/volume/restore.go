package volume

import (
	"errors"
	"fmt"
	"time"

	"aurora/internal/core"
	"aurora/internal/storage"
)

// ErrNoBackup is returned when a protection group has no usable backup at
// or before the requested restore point.
var ErrNoBackup = errors.New("volume: no backup available for restore point")

// RestoreReport describes a point-in-time restore.
type RestoreReport struct {
	AsOf          time.Time
	Segments      int // segments loaded from the object store
	VDL           core.LSN
	Epoch         uint64
	GeometryEpoch uint64 // routing-table epoch recovered from the manifest
	PGs           int    // protection groups of the restored volume
	Duration      time.Duration
}

// RestoreFleet provisions a brand-new fleet whose state is the newest
// continuous backup at or before asOf — point-in-time restore (§1, §5:
// "backing up and restoring data from and to those volumes"). Storage
// nodes stage snapshots to the object store continuously and
// independently, so the restored segments are mutually inconsistent by up
// to one backup interval; the standard volume recovery protocol then
// brings the restored volume to a consistent durable point exactly as it
// would after a crash: gossip to completeness, compute VCL/VDL, truncate
// the tail.
//
// The source fleet is untouched: restore always creates a new volume, as
// the managed service does.
//
// cfg.Vol selects which tenant's namespaced backups and geometry manifest
// are read from the shared store (zero = the legacy unprefixed keys), so
// restoring one tenant can never pick up another tenant's snapshots.
func RestoreFleet(cfg FleetConfig, asOf time.Time) (*Fleet, *RestoreReport, error) {
	if cfg.Store == nil {
		return nil, nil, errors.New("volume: restore requires an object store")
	}
	start := time.Now()
	// A grown volume routes pages differently than the day it was created:
	// recover the geometry that was in force at the restore point from the
	// manifest, so the restored fleet provisions the right number of PGs and
	// routes reads the way the backups were written. A volume from before
	// geometry manifests falls back to the caller-supplied geometry.
	if enc, _, err := cfg.Store.GetAsOf(GeometryManifestKey(cfg.Vol), asOf); err == nil {
		g, err := core.DecodeGeometry(enc)
		if err != nil {
			return nil, nil, fmt.Errorf("volume: geometry manifest: %w", err)
		}
		cfg.Geometry = g
	}
	f, err := NewFleet(cfg)
	if err != nil {
		return nil, nil, err
	}
	rep := &RestoreReport{AsOf: asOf, GeometryEpoch: f.Geometry().Epoch(), PGs: f.PGs()}
	for g := 0; g < f.PGs(); g++ {
		pg := core.PGID(g)
		loaded := 0
		for r, n := range f.Replicas(pg) {
			key := n.BackupKey()
			snap, _, err := cfg.Store.GetAsOf(key, asOf)
			if err != nil {
				continue // this replica had no backup yet; repair below
			}
			if err := n.LoadSnapshot(snap); err != nil {
				return nil, nil, fmt.Errorf("pg %d replica %d: %w", g, r, err)
			}
			loaded++
		}
		if loaded < f.Quorum().Vr {
			return nil, nil, fmt.Errorf("pg %d: %d backups at or before %v: %w",
				g, loaded, asOf, ErrNoBackup)
		}
		rep.Segments += loaded
		// Replicas without a usable backup re-replicate from the restored
		// peers, bringing the PG back to full strength.
		for r, n := range f.Replicas(pg) {
			if n.SCL() == core.ZeroLSN && n.HighestLSN() == core.ZeroLSN {
				if err := f.RepairSegment(pg, r); err != nil {
					return nil, nil, fmt.Errorf("pg %d replica %d repair: %w", g, r, err)
				}
			}
		}
	}
	rep.Duration = time.Since(start)
	return f, rep, nil
}

// SyncRestored runs the storage-side convergence a restored fleet needs
// before recovery (exposed for observability; Recover also does this).
func SyncRestored(f *Fleet) {
	for g := 0; g < f.PGs(); g++ {
		storage.SyncGroup(f.Replicas(core.PGID(g)))
	}
}
