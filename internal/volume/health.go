package volume

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"aurora/internal/control"
	"aurora/internal/core"
	"aurora/internal/metrics"
	"aurora/internal/netsim"
	"aurora/internal/page"
	"aurora/internal/storage"
)

// HealthState classifies one segment replica from the volume client's
// vantage point. The storage fleet runs under a "continuous low level
// background noise of node, disk and network path failures" (§2.1); most of
// that noise is gray — a replica that is slow or flaky, not down — so a
// binary up/down view stalls the chain on exactly the nodes the quorum was
// meant to absorb.
type HealthState int

const (
	// Healthy: acks arrive at the latency its peers see.
	Healthy HealthState = iota
	// Degraded: alive but slow or briefly flaky; used last, never first.
	Degraded
	// Suspect: a failure streak long enough that the fleet's repair
	// monitor steps in (gossip catch-up or full segment repair, §2.3).
	Suspect
)

func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Suspect:
		return "suspect"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// HealthConfig tunes the gray-failure tracker. The zero value selects the
// defaults below.
type HealthConfig struct {
	// EWMAAlpha is the weight of a new latency sample (default 0.2).
	EWMAAlpha float64
	// DegradedFails consecutive failures mark a replica Degraded
	// (default 2); SuspectFails mark it Suspect (default 5).
	DegradedFails int
	SuspectFails  int
	// A replica is also Degraded when its latency EWMA exceeds both
	// DegradedLatencyFloor and DegradedLatencyFactor times the best
	// peer's EWMA — the gray-slow signature (defaults 1ms, 8x).
	DegradedLatencyFloor  time.Duration
	DegradedLatencyFactor float64
	// Per-attempt read deadline: HedgeMult times the windowed p95 read
	// latency, clamped to [HedgeMin, HedgeMax] (defaults 3x, 250µs, 50ms).
	// When an attempt exceeds it a hedge is launched to the next-best
	// replica (§4.2.3's tail-avoidance without quorum reads).
	HedgeMult float64
	HedgeMin  time.Duration
	HedgeMax  time.Duration
	// WindowInterval is the rotation interval of the windowed read-latency
	// histograms the hedge deadline derives from (default 250ms at
	// simulation scale). The deadline reflects only the last one-to-two
	// windows of traffic, so a cold-start outlier stops inflating it one
	// rotation later — the failure mode of the old lifetime-P95 estimator.
	WindowInterval time.Duration
	// MonitorInterval paces the fleet's self-driven repair loop
	// (default 5ms at simulation scale).
	MonitorInterval time.Duration
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.2
	}
	if c.DegradedFails <= 0 {
		c.DegradedFails = 2
	}
	if c.SuspectFails <= 0 {
		c.SuspectFails = 5
	}
	if c.DegradedLatencyFloor <= 0 {
		c.DegradedLatencyFloor = time.Millisecond
	}
	if c.DegradedLatencyFactor <= 0 {
		c.DegradedLatencyFactor = 8
	}
	if c.HedgeMult <= 0 {
		c.HedgeMult = 3
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 250 * time.Microsecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 50 * time.Millisecond
	}
	if c.WindowInterval <= 0 {
		c.WindowInterval = 250 * time.Millisecond
	}
	if c.MonitorInterval <= 0 {
		c.MonitorInterval = 5 * time.Millisecond
	}
	return c
}

// replicaHealth scores one (PG, replica) pair from delivery acks and read
// attempts: a latency EWMA plus a consecutive-failure streak.
type replicaHealth struct {
	mu       sync.Mutex
	ewma     float64 // seconds; 0 until the first successful observation
	fails    int     // consecutive failures since the last success
	outlived int     // consecutive attempts canceled because a sibling won
	oks      uint64
	errs     uint64
}

// pgLatency derives the hedge deadline for one protection group from the
// windowed distribution of recent successful read latencies — only the
// last one-to-two window intervals count, so a startup outlier cannot
// permanently inflate the deadline the way a lifetime reservoir did. The
// quantile walk is amortized: the deadline is recomputed every
// deadlineEvery samples and cached in an atomic.
type pgLatency struct {
	win      *metrics.WindowedHistogram
	n        atomic.Uint64
	deadline atomic.Int64 // nanoseconds; 0 means "no data yet"
}

const deadlineEvery = 32

// HealthStats is a snapshot of the gray-failure counters.
type HealthStats struct {
	Retries      uint64 // write-path redeliveries after a failed flight
	Hedges       uint64 // hedged read attempts launched on deadline
	HedgeWins    uint64 // reads won by a hedge rather than the primary
	HedgeCancels uint64 // losing attempts actively canceled after a win
	AutoRepairs  uint64 // monitor-triggered repairs/catch-ups of suspects
	RespDrops    uint64 // successful page reads whose response never arrived
}

// HealthTracker maintains per-(PG, replica) health for one fleet. All
// methods are safe for concurrent use; the per-PG tables are copy-on-write
// so Grow can append protection groups without a lock on the hot paths.
type HealthTracker struct {
	cfg  HealthConfig
	reps atomic.Pointer[[][]*replicaHealth]
	lat  atomic.Pointer[[]*pgLatency]

	// hedgeKnob, when set (by the writer client wiring the control plane),
	// overrides cfg.HedgeMult as the deadline multiplier, in percent. The
	// static fallback is the config value — a tracker with no knob behaves
	// exactly as before.
	hedgeKnob atomic.Pointer[control.Knob]

	// readWin aggregates successful read-attempt latencies across all PGs
	// in the same windowed form the per-PG estimators use: the adaptive
	// controller's read-path signal.
	readWin *metrics.WindowedHistogram

	retries      metrics.Counter
	hedges       metrics.Counter
	hedgeWins    metrics.Counter
	hedgeCancels metrics.Counter
	autoRepairs  metrics.Counter
	respDrops    metrics.Counter
}

func newHealthTracker(cfg HealthConfig, pgs, replicas int) *HealthTracker {
	h := &HealthTracker{cfg: cfg.withDefaults()}
	h.readWin = metrics.NewWindowedHistogram(h.cfg.WindowInterval)
	reps := make([][]*replicaHealth, pgs)
	lat := make([]*pgLatency, pgs)
	for g := range reps {
		reps[g] = newPGHealth(replicas)
		lat[g] = &pgLatency{win: metrics.NewWindowedHistogram(h.cfg.WindowInterval)}
	}
	h.reps.Store(&reps)
	h.lat.Store(&lat)
	return h
}

func newPGHealth(replicas int) []*replicaHealth {
	out := make([]*replicaHealth, replicas)
	for i := range out {
		out[i] = &replicaHealth{}
	}
	return out
}

// Grow extends the tracker to cover newPGs protection groups (no-op if it
// already does). Callers serialise growth; concurrent readers see either
// the old or the new table, both valid.
func (h *HealthTracker) Grow(newPGs, replicas int) {
	reps := *h.reps.Load()
	if newPGs <= len(reps) {
		return
	}
	nr := make([][]*replicaHealth, len(reps), newPGs)
	copy(nr, reps)
	lat := *h.lat.Load()
	nl := make([]*pgLatency, len(lat), newPGs)
	copy(nl, lat)
	for g := len(reps); g < newPGs; g++ {
		nr = append(nr, newPGHealth(replicas))
		nl = append(nl, &pgLatency{win: metrics.NewWindowedHistogram(h.cfg.WindowInterval)})
	}
	h.reps.Store(&nr)
	h.lat.Store(&nl)
}

func (h *HealthTracker) rep(pg core.PGID, idx int) *replicaHealth {
	reps := *h.reps.Load()
	return reps[int(pg)%len(reps)][idx]
}

// ObserveOK records a successful exchange with the replica and its latency.
func (h *HealthTracker) ObserveOK(pg core.PGID, idx int, d time.Duration) {
	r := h.rep(pg, idx)
	r.mu.Lock()
	s := d.Seconds()
	if r.ewma == 0 {
		r.ewma = s
	} else {
		r.ewma += h.cfg.EWMAAlpha * (s - r.ewma)
	}
	r.fails = 0
	r.outlived = 0
	r.oks++
	r.mu.Unlock()
}

// ObserveOutlived records an attempt canceled because a later-launched
// sibling won the race: the elapsed time is a lower bound on the replica's
// true latency, so it only ever pushes the EWMA up. Gray evidence, not a
// failure — the replica answered nothing wrong, it was just too slow to
// wait for.
func (h *HealthTracker) ObserveOutlived(pg core.PGID, idx int, d time.Duration) {
	r := h.rep(pg, idx)
	r.mu.Lock()
	s := d.Seconds()
	if s > r.ewma {
		if r.ewma == 0 {
			r.ewma = s
		} else {
			r.ewma += h.cfg.EWMAAlpha * (s - r.ewma)
		}
	}
	r.outlived++
	r.mu.Unlock()
}

// ObserveFailure records a failed exchange (send error, node error...).
func (h *HealthTracker) ObserveFailure(pg core.PGID, idx int) {
	r := h.rep(pg, idx)
	r.mu.Lock()
	r.fails++
	r.errs++
	r.mu.Unlock()
}

// Reset clears a replica's failure streak and latency memory — called after
// the segment has been repaired or migrated onto a fresh node.
func (h *HealthTracker) Reset(pg core.PGID, idx int) {
	r := h.rep(pg, idx)
	r.mu.Lock()
	r.fails = 0
	r.ewma = 0
	r.mu.Unlock()
}

type repSnap struct {
	ewma     float64
	fails    int
	outlived int
}

func (h *HealthTracker) snapshot(pg core.PGID) []repSnap {
	all := *h.reps.Load()
	reps := all[int(pg)%len(all)]
	out := make([]repSnap, len(reps))
	for i, r := range reps {
		r.mu.Lock()
		out[i] = repSnap{ewma: r.ewma, fails: r.fails, outlived: r.outlived}
		r.mu.Unlock()
	}
	return out
}

// stateOf classifies replica i given a consistent snapshot of its PG.
func (h *HealthTracker) stateOf(snaps []repSnap, i int) HealthState {
	s := snaps[i]
	if s.fails >= h.cfg.SuspectFails {
		return Suspect
	}
	if s.fails >= h.cfg.DegradedFails {
		return Degraded
	}
	// A replica repeatedly outlived by later-launched hedges is gray-slow
	// even though no exchange ever failed: its true latency is censored by
	// the cancellation, so the streak — not the EWMA — carries the signal.
	if s.outlived >= h.cfg.DegradedFails {
		return Degraded
	}
	// Latency comparison against the fastest peer with data: a replica
	// whose EWMA is far above its PG's best is gray-slow even though every
	// exchange nominally succeeds.
	if s.ewma > h.cfg.DegradedLatencyFloor.Seconds() {
		best := 0.0
		for j, p := range snaps {
			if j == i || p.ewma == 0 {
				continue
			}
			if best == 0 || p.ewma < best {
				best = p.ewma
			}
		}
		if best == 0 || s.ewma > h.cfg.DegradedLatencyFactor*best {
			return Degraded
		}
	}
	return Healthy
}

// State reports the current health classification of one replica.
func (h *HealthTracker) State(pg core.PGID, idx int) HealthState {
	return h.stateOf(h.snapshot(pg), idx)
}

// States reports the classification of every replica in a PG.
func (h *HealthTracker) States(pg core.PGID) []HealthState {
	snaps := h.snapshot(pg)
	out := make([]HealthState, len(snaps))
	for i := range snaps {
		out[i] = h.stateOf(snaps, i)
	}
	return out
}

// Order returns read-candidate indices for a PG sorted best-first: healthy
// before degraded before suspect, same-AZ before cross-AZ within a class,
// lowest latency EWMA within that. Down nodes are excluded — they are not
// gray, they are gone, and gossip (not the read path) heals them.
func (h *HealthTracker) Order(pg core.PGID, replicas []*storage.Node, myAZ netsim.AZ) []int {
	snaps := h.snapshot(pg)
	cands := make([]readCand, 0, len(replicas))
	for i, n := range replicas {
		if n.Down() {
			continue
		}
		cands = append(cands, readCand{
			idx:   i,
			state: h.stateOf(snaps, i),
			far:   n.AZ() != myAZ,
			ewma:  snaps[i].ewma,
		})
	}
	// Insertion sort: V is tiny (6) and order must be deterministic.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && candLess(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.idx
	}
	return out
}

type readCand struct {
	idx   int
	state HealthState
	far   bool
	ewma  float64
}

func candLess(a, b readCand) bool {
	if a.state != b.state {
		return a.state < b.state
	}
	if a.far != b.far {
		return !a.far
	}
	if a.ewma != b.ewma {
		return a.ewma < b.ewma
	}
	return a.idx < b.idx
}

// SetHedgeKnob routes the hedge-deadline multiplier through a control-plane
// knob (value in percent: 300 = 3x the windowed p95). A nil knob restores
// the static config multiplier. Called once at client wiring time.
func (h *HealthTracker) SetHedgeKnob(k *control.Knob) { h.hedgeKnob.Store(k) }

// hedgeMultPct returns the current deadline multiplier in percent.
func (h *HealthTracker) hedgeMultPct() int64 {
	if k := h.hedgeKnob.Load(); k != nil {
		return k.Load()
	}
	return int64(h.cfg.HedgeMult * 100)
}

// ReadWindow exposes the all-PG windowed read-attempt distribution — the
// adaptive controller's read-path signal source.
func (h *HealthTracker) ReadWindow() *metrics.WindowedHistogram { return h.readWin }

// observeReadLatency feeds the per-PG deadline estimator (and the global
// controller signal) with one successful read attempt.
func (h *HealthTracker) observeReadLatency(pg core.PGID, d time.Duration) {
	h.readWin.ObserveDuration(d)
	lat := *h.lat.Load()
	l := lat[int(pg)%len(lat)]
	l.win.ObserveDuration(d)
	if l.n.Add(1)%deadlineEvery != 0 {
		return
	}
	dl := time.Duration(h.hedgeMultPct()) * l.win.QuantileDuration(0.95) / 100
	if dl < h.cfg.HedgeMin {
		dl = h.cfg.HedgeMin
	}
	if dl > h.cfg.HedgeMax {
		dl = h.cfg.HedgeMax
	}
	l.deadline.Store(int64(dl))
}

// ReadDeadline returns the per-attempt deadline for reads of a PG, derived
// from the windowed latency distribution (multiplier x p95, clamped).
func (h *HealthTracker) ReadDeadline(pg core.PGID) time.Duration {
	lat := *h.lat.Load()
	if d := lat[int(pg)%len(lat)].deadline.Load(); d > 0 {
		return time.Duration(d)
	}
	return h.cfg.HedgeMin
}

// Stats returns a snapshot of the gray-failure counters.
func (h *HealthTracker) Stats() HealthStats {
	return HealthStats{
		Retries:      h.retries.Load(),
		Hedges:       h.hedges.Load(),
		HedgeWins:    h.hedgeWins.Load(),
		HedgeCancels: h.hedgeCancels.Load(),
		AutoRepairs:  h.autoRepairs.Load(),
		RespDrops:    h.respDrops.Load(),
	}
}

// runHedged executes one logical page read over an ordered candidate list.
// The first candidate is tried immediately; whenever the newest attempt
// exceeds the PG's read deadline, a hedge is launched to the next candidate.
// A failed attempt advances to the next candidate at once. The first success
// wins and the losing attempts still in flight are actively canceled — each
// attempt runs under its own child of ctx, so a loser parked in a simulated
// network hop unwinds immediately instead of running to completion
// (HedgeCancels counts them). Health observations are fed for every attempt
// that ran to its own verdict, so a slow loser still raises its replica's
// EWMA and sinks in future orderings; a loser that merely got canceled is
// not blamed. Cancellation of ctx itself abandons the read.
func (h *HealthTracker) runHedged(ctx context.Context, pg core.PGID, cands []int, attempt func(ctx context.Context, idx int, hedged bool) (page.Page, error)) (page.Page, error) {
	if len(cands) == 0 {
		return nil, ErrReadUnavailable
	}
	type result struct {
		val   page.Page
		err   error
		hedge bool
	}
	ch := make(chan result, len(cands)) // buffered: losers never block
	cancels := make([]context.CancelFunc, 0, len(cands))
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()
	next := 0
	launch := func(hedge bool) {
		idx := cands[next]
		next++
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		go func() {
			start := time.Now()
			v, err := attempt(actx, idx, hedge)
			if err == nil {
				lat := time.Since(start)
				h.ObserveOK(pg, idx, lat)
				h.observeReadLatency(pg, lat)
			} else if errors.Is(err, context.Canceled) {
				// Canceled because a sibling won: the time it was
				// outlived by still counts against its latency EWMA (a
				// caller abandon — ctx itself done — is not evidence).
				if ctx.Err() == nil {
					h.ObserveOutlived(pg, idx, time.Since(start))
				}
			} else {
				h.ObserveFailure(pg, idx)
			}
			ch <- result{val: v, err: err, hedge: hedge}
		}()
	}
	launch(false)
	inflight := 1
	deadline := h.ReadDeadline(pg)
	var lastErr error = ErrReadUnavailable
	for inflight > 0 {
		var fire <-chan time.Time
		var timer *time.Timer
		if next < len(cands) {
			timer = time.NewTimer(deadline)
			fire = timer.C
		}
		select {
		case r := <-ch:
			if timer != nil {
				timer.Stop()
			}
			inflight--
			if r.err == nil {
				if r.hedge {
					h.hedgeWins.Inc()
				}
				if inflight > 0 {
					// The deferred cancels abort the losers; count them.
					h.hedgeCancels.Add(uint64(inflight))
				}
				return r.val, nil
			}
			if !errors.Is(r.err, context.Canceled) {
				lastErr = r.err
			}
			if inflight == 0 && next < len(cands) && ctx.Err() == nil {
				launch(false)
				inflight++
			}
		case <-fire:
			h.hedges.Inc()
			launch(true)
			inflight++
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, lastErr
}

// Write-path redelivery policy: a failed flight is retried with capped
// exponential backoff plus jitter before the replica is nacked. The budget
// is deliberately small — the 4/6 quorum masks a replica that stays bad,
// and gossip repairs it (§3.3) — but one retry absorbs the overwhelmingly
// common gray case of a single dropped or rejected message. The backoff
// ceiling is a control-plane knob (control.KnobBackoffCapUS, default
// control.DefaultBackoffCapUS) scaled against the observed windowed
// delivery RTT; the base and attempt budget stay fixed.
const (
	deliverAttempts    = 4 // 1 initial + 3 retries
	deliverBaseBackoff = 200 * time.Microsecond
)

// backoffFor returns the pre-retry sleep for retry number n (0-based),
// capped at cap, with up to 50% uniform jitter so retries from senders
// that failed together do not re-collide.
func backoffFor(n int, cap time.Duration) time.Duration {
	d := deliverBaseBackoff << uint(n)
	if cap > 0 && d > cap {
		d = cap
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}
