package volume

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/netsim"
	"aurora/internal/storage"
)

// testPool builds a shared host fleet big enough for the 4/6 quorum: hosts
// round-robin over 3 AZs, so 9 hosts give 3 per AZ (the quorum needs 2
// distinct hosts per AZ per PG).
func testPool(t *testing.T, hosts int) (*netsim.Network, *storage.Pool) {
	t.Helper()
	net := netsim.New(netsim.FastLocal())
	pool := storage.NewPool(storage.PoolConfig{
		Name: "shared", Hosts: hosts, Net: net, Disk: disk.FastLocal(),
	})
	return net, pool
}

func openTenant(t *testing.T, net *netsim.Network, pool *storage.Pool, vol core.VolumeID, pgs int) (*Fleet, *Client) {
	t.Helper()
	f, err := NewFleet(FleetConfig{
		Name: fmt.Sprintf("t%d", vol), Vol: vol, Pool: pool,
		Geometry: core.UniformGeometry(pgs), Net: net, Disk: disk.FastLocal(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c := Bootstrap(f, ClientConfig{
		WriterNode: netsim.NodeID(fmt.Sprintf("writer%d", vol)), WriterAZ: 0,
	})
	return f, c
}

// TestPooledFleetRequiresVolume: a pooled fleet with the zero VolumeID would
// make tenants indistinguishable; NewFleet must refuse it.
func TestPooledFleetRequiresVolume(t *testing.T) {
	net, pool := testPool(t, 9)
	_, err := NewFleet(FleetConfig{
		Name: "bad", Pool: pool,
		Geometry: core.UniformGeometry(1), Net: net, Disk: disk.FastLocal(),
	})
	if err == nil {
		t.Fatal("NewFleet accepted Pool with Vol=0")
	}
}

// TestPlacementSpreadsTenants: every PG's replicas land on distinct hosts in
// the quorum's AZ pattern, and no host carries two segments of one
// (volume, PG).
func TestPlacementSpreadsTenants(t *testing.T) {
	net, pool := testPool(t, 9)
	for vol := core.VolumeID(1); vol <= 3; vol++ {
		f, c := openTenant(t, net, pool, vol, 2)
		defer c.Close()
		for g := 0; g < f.PGs(); g++ {
			seen := map[netsim.NodeID]bool{}
			for r, n := range f.Replicas(core.PGID(g)) {
				if n.Host() == nil {
					t.Fatalf("vol %d pg %d replica %d not host-bound", vol, g, r)
				}
				id := n.Host().ID()
				if seen[id] {
					t.Fatalf("vol %d pg %d: two replicas on host %s", vol, g, id)
				}
				seen[id] = true
				if want := netsim.AZ(f.Quorum().ReplicaAZ(r)); n.Host().AZ() != want {
					t.Fatalf("vol %d pg %d replica %d in AZ %d, want %d", vol, g, r, n.Host().AZ(), want)
				}
			}
		}
	}
	// With three tenants on nine hosts every machine should be serving
	// someone — placement balances rather than stacking one host.
	for _, h := range pool.Hosts() {
		if len(h.Segments()) == 0 {
			t.Fatalf("host %s idle while 3 tenants x 2 PGs x 6 replicas are placed", h.ID())
		}
	}
}

// TestTenantIsolationConcurrent is the -race isolation regression: two
// volumes share one host fleet under concurrent writers; each volume's VDL
// must advance monotonically, and every byte read back must be the bytes
// that tenant wrote.
func TestTenantIsolationConcurrent(t *testing.T) {
	net, pool := testPool(t, 9)
	f1, c1 := openTenant(t, net, pool, 1, 2)
	f2, c2 := openTenant(t, net, pool, 2, 2)
	defer c1.Close()
	defer c2.Close()
	_ = f1
	_ = f2

	const writes = 60
	var wg sync.WaitGroup
	run := func(c *Client, tag byte) {
		defer wg.Done()
		var prev core.LSN
		for i := 0; i < writes; i++ {
			id := core.PageID(i % 8)
			m := &core.MTR{Txn: uint64(i + 1)}
			// Each tenant writes its own tag so cross-volume leakage is
			// detectable by content, not just by error.
			m.AddDelta(c.PGOf(id), id, 0, bytes.Repeat([]byte{tag}, 64))
			if _, err := c.WriteMTR(context.Background(), m); err != nil {
				t.Errorf("tenant %c write %d: %v", tag, i, err)
				return
			}
			if v := c.VDL(); v < prev {
				t.Errorf("tenant %c VDL regressed %d -> %d", tag, prev, v)
				return
			} else {
				prev = v
			}
		}
	}
	wg.Add(2)
	go run(c1, 'a')
	go run(c2, 'b')
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	verify := func(c *Client, tag byte) {
		for i := 0; i < 8; i++ {
			p, _, err := c.ReadPage(context.Background(), core.PageID(i))
			if err != nil {
				t.Fatalf("tenant %c read page %d: %v", tag, i, err)
			}
			got := p.Payload()[:64]
			if !bytes.Equal(got, bytes.Repeat([]byte{tag}, 64)) {
				t.Fatalf("tenant %c page %d holds %q — cross-volume leakage", tag, i, got[:8])
			}
		}
	}
	verify(c1, 'a')
	verify(c2, 'b')

	// Storage-level check: no segment of either volume holds a record
	// stamped with the other volume's identity.
	for _, h := range pool.Hosts() {
		for _, vol := range []core.VolumeID{1, 2} {
			for _, n := range h.SegmentsOf(vol) {
				if n.Vol() != vol {
					t.Fatalf("host %s registry lists %s under vol %d", h.ID(), n.Vol(), vol)
				}
			}
		}
	}
}

// TestTenantRecoveryIsolated: crash tenant 1's writer and recover it while
// tenant 2 keeps writing; recovery must restore tenant 1's bytes and leave
// tenant 2's stream untouched.
func TestTenantRecoveryIsolated(t *testing.T) {
	net, pool := testPool(t, 9)
	f1, c1 := openTenant(t, net, pool, 1, 2)
	_, c2 := openTenant(t, net, pool, 2, 2)
	defer c2.Close()

	for i := 0; i < 20; i++ {
		id := core.PageID(i % 4)
		m := &core.MTR{Txn: uint64(i + 1)}
		m.AddDelta(c1.PGOf(id), id, 0, bytes.Repeat([]byte{'x'}, 32))
		if _, err := c1.WriteMTR(context.Background(), m); err != nil {
			t.Fatal(err)
		}
	}
	want1 := c1.VDL()
	c1.Crash()

	// Tenant 2 writes on while tenant 1 recovers.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := core.PageID(i % 4)
			m := &core.MTR{Txn: uint64(i + 1)}
			m.AddDelta(c2.PGOf(id), id, 0, bytes.Repeat([]byte{'y'}, 32))
			if _, err := c2.WriteMTR(context.Background(), m); err != nil {
				t.Errorf("tenant 2 during tenant 1 recovery: %v", err)
				return
			}
		}
	}()

	rc, rep, err := Recover(context.Background(), f1, ClientConfig{WriterNode: "writer1-g2", WriterAZ: 1})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if rep.VDL < want1 {
		t.Fatalf("tenant 1 recovered VDL %d < pre-crash %d", rep.VDL, want1)
	}
	for i := 0; i < 4; i++ {
		p, _, err := rc.ReadPage(context.Background(), core.PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Payload()[:32]; !bytes.Equal(got, bytes.Repeat([]byte{'x'}, 32)) {
			t.Fatalf("tenant 1 page %d after recovery holds %q", i, got[:8])
		}
	}
}

// TestWrongVolumeRejected: a batch stamped for one tenant thrown at another
// tenant's segment is refused with ErrWrongVolume, and gossip-path records
// with a foreign stamp are never filed.
func TestWrongVolumeRejected(t *testing.T) {
	net, pool := testPool(t, 9)
	f1, c1 := openTenant(t, net, pool, 1, 1)
	f2, c2 := openTenant(t, net, pool, 2, 1)
	defer c1.Close()
	defer c2.Close()

	m := &core.MTR{Txn: 1}
	m.AddDelta(c1.PGOf(3), 3, 0, []byte("mine"))
	if _, err := c1.WriteMTR(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	rec := core.Record{LSN: 999, PrevLSN: 0, Type: core.RecPageDelta, PG: 0, Vol: 1, Page: 3, Offset: 0, Data: []byte("oops"), Flags: core.FlagCPL}
	b := &core.Batch{PG: 0, Vol: 1, Records: []core.Record{rec}}
	n2 := f2.Replicas(0)[0]
	if _, err := nodeIngest(n2, b, 0, 0); err == nil {
		t.Fatal("tenant 2 segment accepted tenant 1 batch")
	}
	before := n2.SCL()
	// Even a direct ingest attempt (the gossip path) must drop the record.
	if n2.HighestLSN() >= 999 {
		t.Fatal("foreign record visible on tenant 2 segment")
	}
	_ = f1
	if n2.SCL() != before {
		t.Fatal("foreign batch moved tenant 2 SCL")
	}
}
