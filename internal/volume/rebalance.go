package volume

// Live volume growth (§3): Aurora volumes grow by appending protection
// groups on demand. Grow allocates the new PGs, then rebalances stripes of
// the page→PG routing table onto them with a copy + catch-up + cutover
// protocol, while reads and writes continue:
//
//	warm copy   un-fenced: read every page of the stripe at the current
//	            VDL and frame full-image records addressed to the new PG
//	            (FlagPlaced keeps the framer's router from re-routing them
//	            through the still-old geometry).
//	fence       take the geometry fence exclusively: no MTR can frame, so
//	            no new record can route to the stripe. Commits queue behind
//	            the fence; they never fail. Wait until the VDL covers every
//	            allocated LSN — all old-epoch batches are now durable.
//	catch-up    re-copy the pages whose old-PG tail moved past the warm
//	            copy (writes that raced it), and pages born after the
//	            enumeration; wait for the copies to be durable.
//	cutover     publish a new geometry epoch with the stripe re-pointed,
//	            effective from the current VDL. Storage nodes learn the
//	            epoch and nack stale-epoch traffic; clients re-route.
//	unfence     queued commits frame under the new geometry.
//
// Reads below the cutover LSN still route to the stripe's old PG, which
// keeps the page history (GC is bounded by the MRPL), so snapshot reads
// never observe a half-copied page on the new PG.

import (
	"errors"
	"fmt"
	"time"

	"aurora/internal/core"
)

// ErrGrowthInProgress is returned when Grow is called while a previous
// growth is still rebalancing.
var ErrGrowthInProgress = errors.New("volume: growth already in progress")

// GrowthReport summarises one completed Grow call.
type GrowthReport struct {
	AddedPGs     []core.PGID
	FromEpoch    uint64
	ToEpoch      uint64
	StripesMoved int
	PagesCopied  uint64
	Duration     time.Duration
}

// Grow appends n protection groups to the volume and rebalances stripes
// onto them while the workload continues. Writes framed during a stripe's
// brief cutover window queue behind the geometry fence (they never fail);
// reads keep flowing throughout, routed by read point. Growth calls are
// serialised: a second Grow while one is rebalancing returns
// ErrGrowthInProgress.
func (c *Client) Grow(n int) (*GrowthReport, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if !c.growing.CompareAndSwap(false, true) {
		return nil, ErrGrowthInProgress
	}
	defer c.growing.Store(false)

	start := time.Now()
	fromEpoch := c.fleet.Geometry().Epoch()

	// Allocate the PGs and publish the allocation epoch under the fence,
	// with the pipe drained first: nodes nack batches framed under an older
	// epoch, so every outstanding batch must be durable before any node
	// learns the new one. The stripe table is unchanged by this step.
	c.geomMu.Lock()
	if err := c.vdl.WaitCtx(c.rootCtx, c.alloc.HighestAllocated()); err != nil {
		c.geomMu.Unlock()
		return nil, fmt.Errorf("volume: grow drain: %w", err)
	}
	added, err := c.fleet.Grow(n)
	if err != nil {
		c.geomMu.Unlock()
		return nil, err
	}
	c.extendSenders()
	c.geomMu.Unlock()

	plan := c.fleet.Geometry().GrowthPlan()
	c.rebalTotal.Add(uint64(len(plan)))
	rep := &GrowthReport{AddedPGs: added, FromEpoch: fromEpoch}
	for _, mv := range plan {
		copied, err := c.migrateStripe(mv)
		rep.PagesCopied += copied
		if err != nil {
			rep.ToEpoch = c.fleet.Geometry().Epoch()
			rep.Duration = time.Since(start)
			return rep, fmt.Errorf("volume: migrate stripe %d to pg %d: %w", mv.Stripe, mv.To, err)
		}
		rep.StripesMoved++
		c.rebalMoved.Add(1)
	}
	rep.ToEpoch = c.fleet.Geometry().Epoch()
	rep.Duration = time.Since(start)
	return rep, nil
}

// migrateStripe moves one stripe of the routing table onto its new PG.
// It returns the number of pages copied (warm + catch-up).
func (c *Client) migrateStripe(mv core.StripeMove) (uint64, error) {
	g := c.fleet.Geometry()
	inStripe := func(id core.PageID) bool { return g.StripeOf(id) == mv.Stripe }

	// Warm copy, un-fenced: traffic continues, racing writes are caught up
	// below. copiedAt records the read point each page was copied at.
	copiedAt := make(map[core.PageID]core.LSN)
	var copied uint64
	for id := range c.stripePages(mv.From, inStripe) {
		at, err := c.copyStripePage(id, mv.To)
		if err != nil {
			return copied, err
		}
		copiedAt[id] = at
		copied++
	}

	// Fence: no MTR can frame while held, so the stripe's record stream is
	// frozen. Drain the allocation pipe — once the VDL covers every
	// allocated LSN, every batch framed under the current epoch is durable.
	c.geomMu.Lock()
	defer c.geomMu.Unlock()
	if err := c.vdl.WaitCtx(c.rootCtx, c.alloc.HighestAllocated()); err != nil {
		return copied, fmt.Errorf("volume: fence drain: %w", err)
	}

	// Catch-up: re-copy pages whose old-PG tail outran their warm copy, and
	// pages born after the warm enumeration.
	var maxCPL core.LSN
	for id, tail := range c.stripePages(mv.From, inStripe) {
		if at, ok := copiedAt[id]; ok && tail <= at {
			continue
		}
		_, cpl, err := c.copyStripePageFenced(id, mv.To)
		if err != nil {
			return copied, err
		}
		if cpl > maxCPL {
			maxCPL = cpl
		}
		copied++
	}
	if maxCPL > core.ZeroLSN {
		if err := c.vdl.WaitCtx(c.rootCtx, maxCPL); err != nil {
			return copied, fmt.Errorf("volume: catch-up drain: %w", err)
		}
	}

	// Cutover: re-point the stripe, effective from the current VDL. Reads
	// below it keep routing to the old PG and its retained history. Derive
	// from the *current* geometry — earlier moves of this plan already
	// advanced the epoch past the snapshot taken for StripeOf above.
	ng, err := c.fleet.Geometry().MoveStripe(mv.Stripe, mv.To)
	if err != nil {
		return copied, err
	}
	if err := c.fleet.PublishGeometry(ng, c.vdl.VDL()); err != nil {
		return copied, err
	}
	return copied, nil
}

// stripePages enumerates the stripe's pages across the old PG's replicas
// (union, keeping the highest per-page tail seen). After the drain inside
// the fence every durable record is on a write quorum, so the union over
// non-down replicas covers at least the durable tail of every page.
func (c *Client) stripePages(from core.PGID, match func(core.PageID) bool) map[core.PageID]core.LSN {
	out := make(map[core.PageID]core.LSN)
	for _, n := range c.fleet.Replicas(from) {
		for id, tail := range n.StripePages(match) {
			if tail > out[id] {
				out[id] = tail
			}
		}
	}
	return out
}

// copyStripePage reads one page at the current VDL and writes its full
// image to the destination PG. The record carries FlagPlaced so the
// framer's router leaves its deliberate destination alone. Returns the
// read point the copy reflects.
func (c *Client) copyStripePage(id core.PageID, to core.PGID) (core.LSN, error) {
	at, _, err := c.copyStripePageFenced(id, to)
	return at, err
}

// copyStripePageFenced is the copy primitive; it does not take the
// geometry fence itself, so it is safe both un-fenced (warm copy) and
// while the rebalancer holds the fence exclusively (catch-up). Returns the
// read point and the copy record's CPL.
func (c *Client) copyStripePageFenced(id core.PageID, to core.PGID) (core.LSN, core.LSN, error) {
	// Rebalancer IO runs under the client's root context: bounded by the
	// client's lifetime, not by any commit's deadline.
	ctx := c.rootCtx
	readPoint := c.vdl.VDL()
	release := c.reads.register(readPoint)
	defer release()
	p, err := c.readAt(ctx, id, readPoint)
	if err != nil {
		return core.ZeroLSN, core.ZeroLSN, err
	}
	m := &core.MTR{}
	m.Records = append(m.Records, core.Record{
		Type:  core.RecPageInit,
		PG:    to,
		Page:  id,
		Flags: core.FlagPlaced,
		// Ownership: Materialize builds a fresh payload for every read (the
		// storage node never hands out its own buffers), and the framer
		// copies Data into the wire arena before Ship returns — no second
		// defensive copy is needed.
		Data: p.Payload(),
	})
	pw, err := c.frameUnfenced(m)
	if err != nil {
		return core.ZeroLSN, core.ZeroLSN, err
	}
	defer pw.Release()
	if err := pw.Ship(ctx); err != nil {
		return core.ZeroLSN, core.ZeroLSN, err
	}
	c.rebalCopied.Add(1)
	return readPoint, pw.cpl, nil
}

// frameUnfenced is FrameMTR without the geometry fence, for the
// rebalancer's own records (explicitly placed, so a concurrent cutover
// cannot mis-route them — and the catch-up path runs with the fence
// already held exclusively).
func (c *Client) frameUnfenced(m *core.MTR) (*PendingWrite, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	g, err := c.framer.FrameGroup(c.rootCtx, []*core.MTR{m})
	if err != nil {
		return nil, err
	}
	cpl := g.CPLs[0]
	c.win.addCPL(cpl)
	c.tails.AddMTR(m)
	c.mtrs.Add(1)
	c.frames.Add(1)
	c.recsWritten.Add(uint64(len(m.Records)))
	return &PendingWrite{c: c, g: g, mtr: m, cpl: cpl}, nil
}
