package volume

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/netsim"
	"aurora/internal/quorum"
	"aurora/internal/storage"
)

func testSplitVolume(t *testing.T, pgs int) (*Fleet, *Client) {
	t.Helper()
	net := netsim.New(netsim.FastLocal())
	f, err := NewFleet(FleetConfig{
		Name: "tx", Geometry: core.UniformGeometry(pgs), Net: net,
		Disk: disk.FastLocal(), Quorum: quorum.TaurusMix(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c := Bootstrap(f, ClientConfig{WriterNode: "writer", WriterAZ: 0})
	t.Cleanup(c.Close)
	return f, c
}

// pauseFeeds pauses (or resumes) the background log→page feed on every page
// replica, so tests can force the page tier to lag arbitrarily far.
func pauseFeeds(f *Fleet, paused bool) {
	for g := 0; g < f.PGs(); g++ {
		for _, n := range f.Replicas(core.PGID(g)) {
			if n.Role() == core.RolePage {
				n.PauseFeed(paused)
			}
		}
	}
}

// TestSplitStaleReadFallsBack is the stale-page-replica regression test:
// with the feed paused no page replica has seen any redo, yet a read at a
// fresh read point must transparently replay the log from the tier's peers
// and serve the post-read-point version — never a stale page, never an
// error. Run under -race it also exercises the read-time catch-up pull
// racing the writer's foreground ingest on the log tier.
func TestSplitStaleReadFallsBack(t *testing.T) {
	f, c := testSplitVolume(t, 2)
	pauseFeeds(f, true)

	const pages = 4
	for i := 0; i < pages; i++ {
		writePage(t, c, core.PageID(i), fmt.Sprintf("s%02d", i))
	}
	readPoint := c.VDL()

	// Sanity: the page tier is genuinely stale — no feed has run.
	for _, n := range f.Replicas(0) {
		if n.Role() == core.RolePage && n.SCL() != core.ZeroLSN {
			t.Fatalf("page replica %s has SCL %d with the feed paused", n.NodeID(), n.SCL())
		}
	}

	for i := 0; i < pages; i++ {
		p, err := c.ReadPageAt(context.Background(), core.PageID(i), readPoint)
		if err != nil {
			t.Fatalf("read page %d at %d: %v", i, readPoint, err)
		}
		want := fmt.Sprintf("s%02d", i)
		if got := string(p.Payload()[:len(want)]); got != want {
			t.Fatalf("page %d: got %q, want %q (stale version served)", i, got, want)
		}
	}
}

// TestSplitStaleReadConcurrent races writers against readers with the
// background feed paused, so every read is forced through the catch-up
// path while the log tier is still ingesting. No read may observe a
// pre-read-point version of its page.
func TestSplitStaleReadConcurrent(t *testing.T) {
	f, c := testSplitVolume(t, 2)
	pauseFeeds(f, true)

	const rounds = 30
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := core.PageID(w)
			for i := 0; i < rounds; i++ {
				val := fmt.Sprintf("w%dv%04d", w, i)
				m := &core.MTR{Txn: uint64(w*rounds + i + 1)}
				m.AddDelta(c.PGOf(id), id, 0, []byte(val))
				cpl, err := c.WriteMTR(context.Background(), m)
				if err != nil {
					errs <- fmt.Errorf("write %s: %w", val, err)
					return
				}
				// VDL advances from acks and can momentarily trail the
				// returned commit point; read at the commit's own LSN once
				// VDL covers it so the just-written version is demanded.
				for c.VDL() < cpl {
					runtime.Gosched()
				}
				rp := cpl
				p, err := c.ReadPageAt(context.Background(), id, rp)
				if err != nil {
					errs <- fmt.Errorf("read %d at %d: %w", id, rp, err)
					return
				}
				if got := string(p.Payload()[:len(val)]); got != val {
					errs <- fmt.Errorf("page %d at %d: got %q, want %q (stale page served)", id, rp, got, val)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	_ = f
}

// TestSplitCrashedLaggingPageReplica crashes a lagging page replica
// mid-read-stream: the hedged read must route around it to the surviving
// page replicas, which replay the log at read time.
func TestSplitCrashedLaggingPageReplica(t *testing.T) {
	f, c := testSplitVolume(t, 1)
	pauseFeeds(f, true)

	writePage(t, c, 0, "before-crash")
	readPoint := c.VDL()

	// Crash one lagging page replica (replica 3 = the first page-tier
	// index under TaurusMix).
	f.Node(0, 3).Crash()

	p, err := c.ReadPageAt(context.Background(), 0, readPoint)
	if err != nil {
		t.Fatalf("read with crashed lagging page replica: %v", err)
	}
	if got := string(p.Payload()[:len("before-crash")]); got != "before-crash" {
		t.Fatalf("got %q, want %q", got, "before-crash")
	}

	// Heal: restart, resume the feed, and let gossip converge the tier.
	f.Node(0, 3).Restart()
	pauseFeeds(f, false)
	storage.SyncGroup(f.Replicas(0))
	if scl := f.Node(0, 3).SCL(); scl < readPoint {
		t.Fatalf("healed page replica SCL %d, want >= %d", scl, readPoint)
	}
}

// TestSplitCommitNeedsOnlyLogTier verifies the tentpole ack rule: with every
// page replica down, commits still resolve on the 2/3 log-tier quorum; with
// a log replica down too (1 of 3 left), they must fail.
func TestSplitCommitNeedsOnlyLogTier(t *testing.T) {
	f, c := testSplitVolume(t, 1)
	for r := 3; r < 6; r++ {
		f.Node(0, r).Crash()
	}
	cpl := writePage(t, c, 0, "log-tier-only")
	if got := c.VDL(); got != cpl {
		t.Fatalf("VDL %d, want %d: commit did not resolve on the log tier alone", got, cpl)
	}

	// Drop the log tier below its write quorum: 2 of 3 log replicas down.
	f.Node(0, 1).Crash()
	f.Node(0, 2).Crash()
	m := &core.MTR{Txn: 99}
	m.AddDelta(0, 0, 0, []byte("no-quorum"))
	if _, err := c.WriteMTR(context.Background(), m); err == nil {
		t.Fatal("write succeeded with 1/3 log replicas, want quorum failure")
	}

	// Restore and confirm the volume recovers its write availability.
	f.Node(0, 1).Restart()
	f.Node(0, 2).Restart()
	storage.SyncGroup(f.Replicas(0))
	writePage(t, c, 0, "healed")
}

// TestSplitLogTierRefusesPageReads pins the role contract at the storage
// API: a log replica answers ErrWrongTier rather than serving (or faking) a
// page it never materializes.
func TestSplitLogTierRefusesPageReads(t *testing.T) {
	f, c := testSplitVolume(t, 1)
	writePage(t, c, 0, "v")
	rp := c.VDL()
	n := f.Node(0, 0)
	if n.Role() != core.RoleLog {
		t.Fatalf("replica 0 role %v, want log", n.Role())
	}
	epoch := f.Geometry().Epoch()
	if _, err := n.ReadPageChecked(context.Background(), 0, rp, rp, epoch); !errors.Is(err, storage.ErrWrongTier) {
		t.Fatalf("log-tier read: %v, want ErrWrongTier", err)
	}
}
