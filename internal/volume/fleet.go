package volume

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/netsim"
	"aurora/internal/objstore"
	"aurora/internal/quorum"
	"aurora/internal/storage"
)

// GeometryManifestKey is the object-store key the fleet publishes volume
// vol's geometry under. Point-in-time restore reads the manifest as of the
// restore point so a grown volume routes pages the way it did then. Keys are
// namespaced per tenant so two volumes sharing one store can never clobber
// each other's manifest lineage; the legacy volume 0 keeps its historical
// key so existing stores remain readable.
func GeometryManifestKey(vol core.VolumeID) string {
	if vol != 0 {
		return fmt.Sprintf("vol%d/manifest/geometry", uint32(vol))
	}
	return "manifest/geometry"
}

// FleetConfig describes the storage fleet backing one volume.
type FleetConfig struct {
	// Name prefixes every storage node's network identity so several
	// volumes can share one simulated network (multi-tenancy, §7.1).
	Name string
	// Vol is the tenant volume identity stamped on every record, batch,
	// segment and backup key. Zero is the legacy single-tenant volume.
	Vol core.VolumeID
	// Pool places this volume's segments onto a shared multi-tenant host
	// fleet (with AZ-spread and blast-radius scoring) instead of
	// provisioning dedicated nodes. Requires Vol != 0 so tenants on the
	// pool are distinguishable. Nil keeps the classic dedicated fleet.
	Pool *storage.Pool
	// Geometry is the volume's initial page→PG routing table — the single
	// source of truth for placement. core.UniformGeometry(pgs) gives the
	// classic uniform striping over pgs protection groups; the fleet
	// provisions Geometry.PGs() groups and Grow appends more, publishing
	// new geometry epochs as stripes cut over.
	Geometry *core.Geometry
	// Quorum is the replication scheme; zero value selects quorum.Aurora().
	Quorum quorum.Config
	Net    *netsim.Network
	Disk   disk.Config
	// Store receives continuous backups; nil disables them.
	Store *objstore.Store
	// Background cadence for the storage nodes (zero = storage defaults).
	GossipInterval   time.Duration
	CoalesceInterval time.Duration
	BackupInterval   time.Duration
	ScrubInterval    time.Duration
	// Health tunes the gray-failure tracker and the self-driven repair
	// monitor; the zero value selects the defaults in HealthConfig.
	Health HealthConfig
}

// geomVersion is one entry of the fleet's geometry history: the table plus
// the first read point it routes. Reads at a point below a cutover must
// route with the geometry that was current then — the stripe's old PG
// retains every record at or below the cutover (GC is bounded by the
// MRPL), while the new PG only has state from the copy onward.
type geomVersion struct {
	geom  *core.Geometry
	since core.LSN
}

// Fleet owns the storage nodes of one volume: protection groups of V
// segment replicas each, placed two per AZ across three AZs (for the
// default quorum), plus the epoch-versioned geometry that maps pages onto
// them. Grow appends protection groups at runtime; the hot-path accessors
// (Replicas, PGOf) are lock-free over copy-on-write state.
type Fleet struct {
	cfg    FleetConfig
	q      quorum.Config
	pgs    atomic.Pointer[[][]*storage.Node]
	gen    int // migration generation counter for unique node names
	health *HealthTracker

	geomMu  sync.Mutex // serialises growth and geometry publication
	geom    atomic.Pointer[core.Geometry]
	histMu  sync.RWMutex
	history []geomVersion
	started atomic.Bool

	monMu   sync.Mutex
	monStop chan struct{}
	monDone sync.WaitGroup

	// readerPts pins the read points of attached read replicas: the writer
	// folds the minimum into its MRPL so storage GC never collects a page
	// version a replica may still serve (§4.2.3). Reader.Close releases the
	// pin — a departed replica must not hold the GC floor down forever.
	readerMu  sync.Mutex
	readerPts map[netsim.NodeID]core.LSN
}

// NewFleet provisions the storage nodes and wires each PG's peers.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Geometry == nil || cfg.Geometry.PGs() <= 0 {
		return nil, errors.New("volume: geometry required (core.UniformGeometry)")
	}
	if cfg.Net == nil {
		return nil, errors.New("volume: network required")
	}
	q := cfg.Quorum
	if q.V == 0 {
		q = quorum.Aurora()
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = "vol"
	}
	if cfg.Pool != nil {
		if cfg.Vol == 0 {
			return nil, errors.New("volume: a pooled fleet needs a nonzero VolumeID")
		}
		if cfg.Store == nil {
			cfg.Store = cfg.Pool.Store()
		}
	}
	f := &Fleet{cfg: cfg, q: q}
	npgs := cfg.Geometry.PGs()
	pgs := make([][]*storage.Node, npgs)
	for g := 0; g < npgs; g++ {
		replicas, err := f.provisionPG(g)
		if err != nil {
			return nil, err
		}
		pgs[g] = replicas
	}
	f.pgs.Store(&pgs)
	f.health = newHealthTracker(cfg.Health, npgs, q.V)
	f.geom.Store(cfg.Geometry)
	f.history = []geomVersion{{geom: cfg.Geometry, since: core.ZeroLSN}}
	// The manifest is only persisted when the geometry changes (Grow,
	// stripe cutovers): a restored fleet shares the source's object store,
	// and writing at provision time would pollute the source's manifest
	// lineage. A never-grown volume has no manifest; restore falls back to
	// the caller-supplied geometry, which is exactly the initial one.
	f.broadcastGeometry(cfg.Geometry)
	return f, nil
}

// provisionPG builds the V replicas of one protection group and wires
// their peers. On a pooled fleet the replicas are placed onto shared hosts
// chosen by the pool (AZ-spread, blast-radius limits); placement can fail
// when an AZ has no host, so provisioning is fallible in pool mode.
func (f *Fleet) provisionPG(g int) ([]*storage.Node, error) {
	var hosts []*storage.Host
	if f.cfg.Pool != nil {
		var err error
		hosts, err = f.cfg.Pool.Place(f.cfg.Vol, core.PGID(g), f.q)
		if err != nil {
			return nil, err
		}
	}
	replicas := make([]*storage.Node, f.q.V)
	for r := 0; r < f.q.V; r++ {
		role := f.q.Role(r)
		gossip := f.cfg.GossipInterval
		if role == core.RolePage && gossip <= 0 {
			// A page replica's gossip pull IS its redo feed, not just hole
			// repair: it sees no foreground batches, and its staleness is
			// what read-time catch-up has to pay for. Pull on a much
			// tighter cadence than the repair-oriented default; the no-op
			// pre-check keeps idle rounds nearly free.
			gossip = 5 * time.Millisecond
		}
		cfg := storage.Config{
			Seg:              core.SegmentID{PG: core.PGID(g), Replica: uint8(r)},
			Node:             f.nodeName(g, r, 0),
			AZ:               netsim.AZ(f.q.ReplicaAZ(r)),
			Net:              f.cfg.Net,
			Disk:             f.cfg.Disk,
			Vol:              f.cfg.Vol,
			Store:            f.cfg.Store,
			GossipInterval:   gossip,
			CoalesceInterval: f.cfg.CoalesceInterval,
			BackupInterval:   f.cfg.BackupInterval,
			ScrubInterval:    f.cfg.ScrubInterval,
			Role:             role,
		}
		if hosts != nil {
			cfg.Host = hosts[r]
		}
		replicas[r] = storage.NewNode(cfg)
	}
	for _, n := range replicas {
		n.SetPeers(replicas)
	}
	return replicas, nil
}

// Health exposes the fleet's gray-failure tracker.
func (f *Fleet) Health() *HealthTracker { return f.health }

func (f *Fleet) nodeName(pg, replica, gen int) netsim.NodeID {
	if gen == 0 {
		return netsim.NodeID(fmt.Sprintf("%s-pg%d-s%d", f.cfg.Name, pg, replica))
	}
	return netsim.NodeID(fmt.Sprintf("%s-pg%d-s%d-g%d", f.cfg.Name, pg, replica, gen))
}

// Quorum returns the replication scheme.
func (f *Fleet) Quorum() quorum.Config { return f.q }

// Vol returns the tenant volume identity this fleet serves (zero for a
// legacy single-tenant fleet).
func (f *Fleet) Vol() core.VolumeID { return f.cfg.Vol }

// Pool returns the shared host fleet this volume is placed on (nil for a
// dedicated fleet).
func (f *Fleet) Pool() *storage.Pool { return f.cfg.Pool }

// PGs returns the number of protection groups.
func (f *Fleet) PGs() int { return len(*f.pgs.Load()) }

// Geometry returns the current page→PG routing table.
func (f *Fleet) Geometry() *core.Geometry { return f.geom.Load() }

// GeometryAt returns the geometry that routes reads at the given read
// point: the newest table whose cutover point is at or below it.
func (f *Fleet) GeometryAt(readPoint core.LSN) *core.Geometry {
	f.histMu.RLock()
	defer f.histMu.RUnlock()
	for i := len(f.history) - 1; i > 0; i-- {
		if f.history[i].since <= readPoint {
			return f.history[i].geom
		}
	}
	return f.history[0].geom
}

// PGOf maps a page onto its protection group under the current geometry.
func (f *Fleet) PGOf(id core.PageID) core.PGID {
	return f.geom.Load().PG(id)
}

// PGOfAt maps a page onto the protection group that holds its history as
// of readPoint — reads below a stripe cutover go to the stripe's old PG.
func (f *Fleet) PGOfAt(id core.PageID, readPoint core.LSN) core.PGID {
	return f.GeometryAt(readPoint).PG(id)
}

// Replicas returns the current replicas of a protection group.
func (f *Fleet) Replicas(pg core.PGID) []*storage.Node {
	pgs := *f.pgs.Load()
	return pgs[int(pg)%len(pgs)]
}

// Node returns one replica.
func (f *Fleet) Node(pg core.PGID, replica int) *storage.Node {
	return f.Replicas(pg)[replica]
}

// PublishGeometry installs a new geometry as the current routing table:
// the history gains an entry effective from the given cutover LSN, the
// manifest is persisted to the object store, and every storage node is
// taught the new epoch (nodes also learn it from batch piggybacks). The
// epoch must advance; the cutover point must be monotone.
func (f *Fleet) PublishGeometry(g *core.Geometry, since core.LSN) error {
	f.geomMu.Lock()
	defer f.geomMu.Unlock()
	return f.publishLocked(g, since)
}

func (f *Fleet) publishLocked(g *core.Geometry, since core.LSN) error {
	cur := f.geom.Load()
	if g.Epoch() <= cur.Epoch() {
		return fmt.Errorf("volume: geometry epoch %d not newer than %d", g.Epoch(), cur.Epoch())
	}
	if g.PGs() > f.PGs() {
		return fmt.Errorf("volume: geometry routes %d PGs, fleet has %d", g.PGs(), f.PGs())
	}
	f.histMu.Lock()
	if last := f.history[len(f.history)-1].since; since < last {
		since = last
	}
	f.history = append(f.history, geomVersion{geom: g, since: since})
	f.histMu.Unlock()
	f.geom.Store(g)
	f.persistGeometry(g)
	f.broadcastGeometry(g)
	return nil
}

func (f *Fleet) persistGeometry(g *core.Geometry) {
	if f.cfg.Store != nil {
		f.cfg.Store.Put(GeometryManifestKey(f.cfg.Vol), g.AppendEncode(nil))
	}
}

func (f *Fleet) broadcastGeometry(g *core.Geometry) {
	for _, pg := range *f.pgs.Load() {
		for _, n := range pg {
			n.ObserveGeometry(g.Epoch())
		}
	}
}

// Grow appends n protection groups of V segment replicas across the three
// AZs and publishes a new geometry epoch covering them (§3: the volume
// grows by appending protection groups on demand). The new PGs hold no
// stripes yet — the caller (Client.Grow) runs the rebalancer that moves
// stripes onto them via copy + catch-up + cutover while traffic continues.
// It returns the IDs of the appended PGs.
func (f *Fleet) Grow(n int) ([]core.PGID, error) {
	if n <= 0 {
		return nil, errors.New("volume: Grow needs a positive PG count")
	}
	f.geomMu.Lock()
	defer f.geomMu.Unlock()
	old := f.PGs()
	ng, err := f.Geometry().WithPGs(old + n)
	if err != nil {
		return nil, err
	}
	cur := *f.pgs.Load()
	pgs := make([][]*storage.Node, old, old+n)
	copy(pgs, cur)
	added := make([]core.PGID, 0, n)
	for g := old; g < old+n; g++ {
		replicas, err := f.provisionPG(g)
		if err != nil {
			return nil, err
		}
		pgs = append(pgs, replicas)
		added = append(added, core.PGID(g))
	}
	f.pgs.Store(&pgs)
	f.health.Grow(old+n, f.q.V)
	for _, pg := range added {
		for _, node := range f.Replicas(pg) {
			if f.started.Load() {
				node.Start()
			}
			// Stage an initial (empty) backup immediately so a restore to a
			// point just after growth finds a snapshot for every segment.
			node.BackupNow()
		}
	}
	// The stripe table is unchanged, so the new epoch routes identically;
	// it takes effect from the same point its predecessor did.
	f.histMu.RLock()
	since := f.history[len(f.history)-1].since
	f.histMu.RUnlock()
	if err := f.publishLocked(ng, since); err != nil {
		return nil, err
	}
	return added, nil
}

// Start launches background loops on every storage node plus the fleet's
// self-driven repair monitor.
func (f *Fleet) Start() {
	f.started.Store(true)
	for _, pg := range *f.pgs.Load() {
		for _, n := range pg {
			n.Start()
		}
	}
	f.monMu.Lock()
	defer f.monMu.Unlock()
	if f.monStop != nil {
		return
	}
	f.monStop = make(chan struct{})
	stop := f.monStop
	f.monDone.Add(1)
	go func() {
		defer f.monDone.Done()
		t := time.NewTicker(f.health.cfg.MonitorInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				f.healthMonitorOnce()
			}
		}
	}()
}

// Stop terminates all background loops.
func (f *Fleet) Stop() {
	f.started.Store(false)
	f.monMu.Lock()
	stop := f.monStop
	f.monStop = nil
	f.monMu.Unlock()
	if stop != nil {
		close(stop)
		f.monDone.Wait()
	}
	for _, pg := range *f.pgs.Load() {
		for _, n := range pg {
			n.Stop()
			// A pooled volume's segments leave their hosts' registries on
			// shutdown so the machines' capacity and blast-radius scores are
			// freed for other tenants. No-op for dedicated nodes.
			n.Detach()
		}
	}
}

// healthMonitorOnce is one pass of the self-driven repair loop: any replica
// stuck in Suspect is healed without waiting for a chaos script or an
// operator — first by a gossip catch-up (cheap, fills dropped batches),
// then by a full segment repair from a healthy peer. This is the §2.3 MTTR
// argument turned into a control loop: the fleet notices its own gray
// failures and shrinks the window in which a second fault could pair with
// them.
func (f *Fleet) healthMonitorOnce() {
	for g, replicas := range *f.pgs.Load() {
		pg := core.PGID(g)
		for i, n := range replicas {
			if f.health.State(pg, i) != Suspect {
				continue
			}
			if n.Down() {
				continue // crashed, not gray: restart + gossip heal it
			}
			if n.GossipOnce() > 0 && !n.HasGaps() {
				f.health.autoRepairs.Inc()
				f.health.Reset(pg, i)
				continue
			}
			if err := f.RepairSegment(pg, i); err == nil {
				f.health.autoRepairs.Inc()
			}
		}
	}
}

// setReaderPoint records (monotonically) the read point a replica reader
// has pinned. The reader advances it as its applied view moves forward.
func (f *Fleet) setReaderPoint(node netsim.NodeID, lsn core.LSN) {
	f.readerMu.Lock()
	if f.readerPts == nil {
		f.readerPts = make(map[netsim.NodeID]core.LSN)
	}
	if cur, ok := f.readerPts[node]; !ok || lsn > cur {
		f.readerPts[node] = lsn
	}
	f.readerMu.Unlock()
}

// unregisterReader drops a reader's read-point pin.
func (f *Fleet) unregisterReader(node netsim.NodeID) {
	f.readerMu.Lock()
	delete(f.readerPts, node)
	f.readerMu.Unlock()
}

// readerFloor returns the lowest read point pinned by any attached reader,
// and whether one exists.
func (f *Fleet) readerFloor() (core.LSN, bool) {
	f.readerMu.Lock()
	defer f.readerMu.Unlock()
	var floor core.LSN
	found := false
	for _, lsn := range f.readerPts {
		if !found || lsn < floor {
			floor = lsn
			found = true
		}
	}
	return floor, found
}

// PageFeedBytes sums the asynchronous log→page feed traffic over the
// fleet's page-tier replicas. Zero when the quorum is not role-split:
// full replicas also gossip, but that is hole repair, not a feed.
func (f *Fleet) PageFeedBytes() uint64 {
	var total uint64
	for _, pg := range *f.pgs.Load() {
		for _, n := range pg {
			if n.Role() == core.RolePage {
				total += n.FeedBytes()
			}
		}
	}
	return total
}

// Net returns the underlying network.
func (f *Fleet) Net() *netsim.Network { return f.cfg.Net }

// Store returns the backup object store (may be nil).
func (f *Fleet) Store() *objstore.Store { return f.cfg.Store }

// ErrNoHealthyPeer is returned when a repair finds no source replica.
var ErrNoHealthyPeer = errors.New("volume: no healthy peer to repair from")

// RepairSegment re-replicates one segment from the first healthy peer in
// its PG — the quorum repair that restores full replication after a
// failure (§2.2). Page-capable peers are preferred as the source: under a
// role split a log replica's snapshot has no materialized bases and its
// log prefix may already be GC'd, so it can only seed another log
// replica, never rebuild page history.
func (f *Fleet) RepairSegment(pg core.PGID, replica int) error {
	replicas := f.Replicas(pg)
	target := replicas[replica]
	try := func(logTier bool) bool {
		for i, peer := range replicas {
			if i == replica || peer.Down() || (peer.Role() == core.RoleLog) != logTier {
				continue
			}
			if err := target.RepairFrom(peer); err == nil {
				// One peer's snapshot may trail the quorum by a batch still in
				// flight; gossip immediately to converge.
				target.GossipOnce()
				f.health.Reset(pg, replica)
				return true
			}
		}
		return false
	}
	if try(false) || try(true) {
		return nil
	}
	return fmt.Errorf("pg %d replica %d: %w", pg, replica, ErrNoHealthyPeer)
}

// MigrateSegment moves one segment replica to a fresh node in the given AZ
// — heat management and fleet patching from §2.3: mark the segment bad,
// repair the quorum onto a colder node, retire the old host. The storage
// node's background loops are not started automatically; callers that run
// a started fleet should Start() the returned node.
func (f *Fleet) MigrateSegment(pg core.PGID, replica int, az netsim.AZ) (*storage.Node, error) {
	if f.cfg.Pool != nil {
		// A pooled segment's machine is chosen by placement, not by the
		// caller, and its network identity belongs to the host — the
		// dedicated-node migration below would tear down a shared machine.
		return nil, errors.New("volume: MigrateSegment not supported on a pooled fleet")
	}
	replicas := f.Replicas(pg)
	old := replicas[replica]
	f.gen++
	fresh := storage.NewNode(storage.Config{
		Seg:              core.SegmentID{PG: pg, Replica: uint8(replica)},
		Node:             f.nodeName(int(pg), replica, f.gen),
		AZ:               az,
		Net:              f.cfg.Net,
		Disk:             f.cfg.Disk,
		Store:            f.cfg.Store,
		GossipInterval:   f.cfg.GossipInterval,
		CoalesceInterval: f.cfg.CoalesceInterval,
		BackupInterval:   f.cfg.BackupInterval,
		ScrubInterval:    f.cfg.ScrubInterval,
		Role:             f.q.Role(replica),
	})
	// Prefer a page-capable source for the same reason RepairSegment does:
	// a log peer cannot rebuild materialized history.
	var src *storage.Node
	for i, peer := range replicas {
		if i != replica && !peer.Down() && peer.Role() != core.RoleLog {
			src = peer
			break
		}
	}
	if src == nil {
		for i, peer := range replicas {
			if i != replica && !peer.Down() {
				src = peer
				break
			}
		}
	}
	if src == nil {
		f.cfg.Net.RemoveNode(fresh.NodeID())
		return nil, fmt.Errorf("pg %d replica %d: %w", pg, replica, ErrNoHealthyPeer)
	}
	if err := fresh.RepairFrom(src); err != nil {
		f.cfg.Net.RemoveNode(fresh.NodeID())
		return nil, err
	}
	replicas[replica] = fresh
	for _, n := range replicas {
		n.SetPeers(replicas)
	}
	fresh.GossipOnce() // converge past any batch still in flight at copy time
	old.Stop()
	old.Crash()
	f.cfg.Net.RemoveNode(old.NodeID())
	f.health.Reset(pg, replica) // fresh node, fresh score
	return fresh, nil
}
