package volume

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/netsim"
	"aurora/internal/objstore"
	"aurora/internal/quorum"
	"aurora/internal/storage"
)

// FleetConfig describes the storage fleet backing one volume.
type FleetConfig struct {
	// Name prefixes every storage node's network identity so several
	// volumes can share one simulated network (multi-tenancy, §7.1).
	Name string
	// PGs is the number of protection groups. The volume's page space is
	// striped across them: pg(page) = page mod PGs — the "high entropy"
	// placement of §3.3.
	PGs int
	// Quorum is the replication scheme; zero value selects quorum.Aurora().
	Quorum quorum.Config
	Net    *netsim.Network
	Disk   disk.Config
	// Store receives continuous backups; nil disables them.
	Store *objstore.Store
	// Background cadence for the storage nodes (zero = storage defaults).
	GossipInterval   time.Duration
	CoalesceInterval time.Duration
	BackupInterval   time.Duration
	ScrubInterval    time.Duration
	// Health tunes the gray-failure tracker and the self-driven repair
	// monitor; the zero value selects the defaults in HealthConfig.
	Health HealthConfig
}

// Fleet owns the storage nodes of one volume: PGs protection groups of V
// segment replicas each, placed two per AZ across three AZs (for the
// default quorum).
type Fleet struct {
	cfg    FleetConfig
	q      quorum.Config
	pgs    [][]*storage.Node
	gen    int // migration generation counter for unique node names
	health *HealthTracker

	monMu   sync.Mutex
	monStop chan struct{}
	monDone sync.WaitGroup
}

// NewFleet provisions the storage nodes and wires each PG's peers.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.PGs <= 0 {
		return nil, errors.New("volume: PGs must be positive")
	}
	if cfg.Net == nil {
		return nil, errors.New("volume: network required")
	}
	q := cfg.Quorum
	if q.V == 0 {
		q = quorum.Aurora()
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = "vol"
	}
	f := &Fleet{cfg: cfg, q: q}
	f.pgs = make([][]*storage.Node, cfg.PGs)
	for g := 0; g < cfg.PGs; g++ {
		replicas := make([]*storage.Node, q.V)
		for r := 0; r < q.V; r++ {
			replicas[r] = storage.NewNode(storage.Config{
				Seg:              core.SegmentID{PG: core.PGID(g), Replica: uint8(r)},
				Node:             f.nodeName(g, r, 0),
				AZ:               netsim.AZ(q.ReplicaAZ(r)),
				Net:              cfg.Net,
				Disk:             cfg.Disk,
				Store:            cfg.Store,
				GossipInterval:   cfg.GossipInterval,
				CoalesceInterval: cfg.CoalesceInterval,
				BackupInterval:   cfg.BackupInterval,
				ScrubInterval:    cfg.ScrubInterval,
			})
		}
		for _, n := range replicas {
			n.SetPeers(replicas)
		}
		f.pgs[g] = replicas
	}
	f.health = newHealthTracker(cfg.Health, cfg.PGs, q.V)
	return f, nil
}

// Health exposes the fleet's gray-failure tracker.
func (f *Fleet) Health() *HealthTracker { return f.health }

func (f *Fleet) nodeName(pg, replica, gen int) netsim.NodeID {
	if gen == 0 {
		return netsim.NodeID(fmt.Sprintf("%s-pg%d-s%d", f.cfg.Name, pg, replica))
	}
	return netsim.NodeID(fmt.Sprintf("%s-pg%d-s%d-g%d", f.cfg.Name, pg, replica, gen))
}

// Quorum returns the replication scheme.
func (f *Fleet) Quorum() quorum.Config { return f.q }

// PGs returns the number of protection groups.
func (f *Fleet) PGs() int { return len(f.pgs) }

// PGOf maps a page onto its protection group.
func (f *Fleet) PGOf(id core.PageID) core.PGID {
	return core.PGID(uint64(id) % uint64(len(f.pgs)))
}

// Replicas returns the current replicas of a protection group.
func (f *Fleet) Replicas(pg core.PGID) []*storage.Node {
	return f.pgs[int(pg)%len(f.pgs)]
}

// Node returns one replica.
func (f *Fleet) Node(pg core.PGID, replica int) *storage.Node {
	return f.pgs[int(pg)%len(f.pgs)][replica]
}

// Start launches background loops on every storage node plus the fleet's
// self-driven repair monitor.
func (f *Fleet) Start() {
	for _, pg := range f.pgs {
		for _, n := range pg {
			n.Start()
		}
	}
	f.monMu.Lock()
	defer f.monMu.Unlock()
	if f.monStop != nil {
		return
	}
	f.monStop = make(chan struct{})
	stop := f.monStop
	f.monDone.Add(1)
	go func() {
		defer f.monDone.Done()
		t := time.NewTicker(f.health.cfg.MonitorInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				f.healthMonitorOnce()
			}
		}
	}()
}

// Stop terminates all background loops.
func (f *Fleet) Stop() {
	f.monMu.Lock()
	stop := f.monStop
	f.monStop = nil
	f.monMu.Unlock()
	if stop != nil {
		close(stop)
		f.monDone.Wait()
	}
	for _, pg := range f.pgs {
		for _, n := range pg {
			n.Stop()
		}
	}
}

// healthMonitorOnce is one pass of the self-driven repair loop: any replica
// stuck in Suspect is healed without waiting for a chaos script or an
// operator — first by a gossip catch-up (cheap, fills dropped batches),
// then by a full segment repair from a healthy peer. This is the §2.3 MTTR
// argument turned into a control loop: the fleet notices its own gray
// failures and shrinks the window in which a second fault could pair with
// them.
func (f *Fleet) healthMonitorOnce() {
	for g, replicas := range f.pgs {
		pg := core.PGID(g)
		for i, n := range replicas {
			if f.health.State(pg, i) != Suspect {
				continue
			}
			if n.Down() {
				continue // crashed, not gray: restart + gossip heal it
			}
			if n.GossipOnce() > 0 && !n.HasGaps() {
				f.health.autoRepairs.Inc()
				f.health.Reset(pg, i)
				continue
			}
			if err := f.RepairSegment(pg, i); err == nil {
				f.health.autoRepairs.Inc()
			}
		}
	}
}

// Net returns the underlying network.
func (f *Fleet) Net() *netsim.Network { return f.cfg.Net }

// Store returns the backup object store (may be nil).
func (f *Fleet) Store() *objstore.Store { return f.cfg.Store }

// ErrNoHealthyPeer is returned when a repair finds no source replica.
var ErrNoHealthyPeer = errors.New("volume: no healthy peer to repair from")

// RepairSegment re-replicates one segment from the first healthy peer in
// its PG — the quorum repair that restores full replication after a
// failure (§2.2).
func (f *Fleet) RepairSegment(pg core.PGID, replica int) error {
	replicas := f.Replicas(pg)
	target := replicas[replica]
	for i, peer := range replicas {
		if i == replica || peer.Down() {
			continue
		}
		if err := target.RepairFrom(peer); err == nil {
			// One peer's snapshot may trail the quorum by a batch still in
			// flight; gossip immediately to converge.
			target.GossipOnce()
			f.health.Reset(pg, replica)
			return nil
		}
	}
	return fmt.Errorf("pg %d replica %d: %w", pg, replica, ErrNoHealthyPeer)
}

// MigrateSegment moves one segment replica to a fresh node in the given AZ
// — heat management and fleet patching from §2.3: mark the segment bad,
// repair the quorum onto a colder node, retire the old host. The storage
// node's background loops are not started automatically; callers that run
// a started fleet should Start() the returned node.
func (f *Fleet) MigrateSegment(pg core.PGID, replica int, az netsim.AZ) (*storage.Node, error) {
	replicas := f.Replicas(pg)
	old := replicas[replica]
	f.gen++
	fresh := storage.NewNode(storage.Config{
		Seg:              core.SegmentID{PG: pg, Replica: uint8(replica)},
		Node:             f.nodeName(int(pg), replica, f.gen),
		AZ:               az,
		Net:              f.cfg.Net,
		Disk:             f.cfg.Disk,
		Store:            f.cfg.Store,
		GossipInterval:   f.cfg.GossipInterval,
		CoalesceInterval: f.cfg.CoalesceInterval,
		BackupInterval:   f.cfg.BackupInterval,
		ScrubInterval:    f.cfg.ScrubInterval,
	})
	var src *storage.Node
	for i, peer := range replicas {
		if i != replica && !peer.Down() {
			src = peer
			break
		}
	}
	if src == nil {
		f.cfg.Net.RemoveNode(fresh.NodeID())
		return nil, fmt.Errorf("pg %d replica %d: %w", pg, replica, ErrNoHealthyPeer)
	}
	if err := fresh.RepairFrom(src); err != nil {
		f.cfg.Net.RemoveNode(fresh.NodeID())
		return nil, err
	}
	replicas[replica] = fresh
	for _, n := range replicas {
		n.SetPeers(replicas)
	}
	fresh.GossipOnce() // converge past any batch still in flight at copy time
	old.Stop()
	old.Crash()
	f.cfg.Net.RemoveNode(old.NodeID())
	f.health.Reset(pg, replica) // fresh node, fresh score
	return fresh, nil
}
