package volume

import (
	"sync"

	"aurora/internal/core"
	"aurora/internal/quorum"
	"aurora/internal/storage"
)

// shipment is one batch awaiting delivery to one segment replica, with the
// quorum tracker that resolves its MTR.
type shipment struct {
	batch *core.Batch
	tr    *quorum.Tracker
}

// replicaSender is the per-(PG, replica) delivery pipeline. Batches framed
// while a previous flight is on the wire accumulate in the queue and are
// coalesced into a single network message and a single hot-log write on
// the storage node — the batching of §3.2's IO flow. It is this pipeline
// that pushes network IOs per transaction below one at high concurrency
// (Table 1) and lets commit throughput scale with connections (Table 3).
type replicaSender struct {
	c    *Client
	pg   core.PGID
	idx  int
	node *storage.Node

	mu         sync.Mutex
	cond       *sync.Cond
	queue      []shipment
	stopped    bool
	noCoalesce bool
}

func newReplicaSender(c *Client, pg core.PGID, idx int, node *storage.Node, noCoalesce bool) *replicaSender {
	s := &replicaSender{c: c, pg: pg, idx: idx, node: node, noCoalesce: noCoalesce}
	s.cond = sync.NewCond(&s.mu)
	go s.loop()
	return s
}

// enqueue adds a shipment to the pipeline.
func (s *replicaSender) enqueue(sh shipment) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		sh.tr.Nack(s.idx)
		return
	}
	s.queue = append(s.queue, sh)
	s.cond.Signal()
	s.mu.Unlock()
}

func (s *replicaSender) stop() {
	s.mu.Lock()
	s.stopped = true
	pending := s.queue
	s.queue = nil
	s.cond.Signal()
	s.mu.Unlock()
	for _, sh := range pending {
		sh.tr.Nack(s.idx)
	}
}

func (s *replicaSender) loop() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped {
			s.mu.Unlock()
			return
		}
		var flight []shipment
		if s.noCoalesce {
			flight = s.queue[:1]
			s.queue = append([]shipment(nil), s.queue[1:]...)
		} else {
			flight = s.queue
			s.queue = nil
		}
		s.mu.Unlock()

		s.deliver(flight)
	}
}

// deliver ships one coalesced flight: one send, one ReceiveBatches, one
// ack. Failures nack every batch in the flight; the 4/6 quorum absorbs
// them and gossip repairs the replica later.
func (s *replicaSender) deliver(flight []shipment) {
	c := s.c
	size := 0
	batches := make([]*core.Batch, len(flight))
	for i, sh := range flight {
		batches[i] = sh.batch
		size += sh.batch.EncodedSize()
	}
	nackAll := func() {
		for _, sh := range flight {
			sh.tr.Nack(s.idx)
		}
	}
	if err := c.fleet.cfg.Net.Send(c.node, s.node.NodeID(), size); err != nil {
		nackAll()
		return
	}
	vdlNow := c.vdl.VDL()
	mrpl := c.reads.lowWaterMark(vdlNow)
	ack, err := s.node.ReceiveBatches(batches, vdlNow, mrpl)
	if err != nil {
		nackAll()
		return
	}
	if err := c.fleet.cfg.Net.Send(s.node.NodeID(), c.node, ackSize); err != nil {
		nackAll()
		return
	}
	c.noteSCL(ack)
	for _, sh := range flight {
		sh.tr.Ack(s.idx)
	}
}

// shipBatch hands one batch to every replica's sender pipeline and waits
// for the write quorum.
func (c *Client) shipBatch(b *core.Batch) error {
	senders := c.senders[int(b.PG)%len(c.senders)]
	tr := quorum.NewTracker(c.q)
	sh := shipment{batch: b, tr: tr}
	for _, s := range senders {
		s.enqueue(sh)
	}
	<-tr.Done()
	if err := tr.Err(); err != nil {
		return err
	}
	first := b.Records[0].LSN
	last := b.Records[len(b.Records)-1].LSN
	newVDL := c.win.markAcked(first, last)
	if c.vdl.Advance(newVDL) {
		c.alloc.AdvanceVDL(newVDL)
		c.tails.Advance(newVDL)
	}
	return nil
}
