package volume

import (
	"context"
	"fmt"
	"sync"
	"time"

	"aurora/internal/core"
	"aurora/internal/netsim"
	"aurora/internal/quorum"
	"aurora/internal/storage"
	"aurora/internal/trace"
)

// sendHop wraps one network send in a named child span of parent ("net.req",
// "net.ack", "net.resp"...), annotated with the endpoints and payload size.
// With a nil parent — the unsampled common case — only the send happens.
func sendHop(ctx context.Context, net *netsim.Network, parent *trace.Span, name string, from, to netsim.NodeID, size int) error {
	sp := parent.Child(name)
	sp.Annotate("from", from)
	sp.Annotate("to", to)
	sp.Annotate("bytes", size)
	err := net.Send(ctx, from, to, size)
	if err != nil {
		sp.Annotate("err", err)
	}
	sp.End()
	return err
}

// shipment is one batch awaiting delivery to one segment replica, with the
// quorum tracker that resolves its MTR.
type shipment struct {
	batch *core.Batch
	tr    *quorum.Tracker
	sp    *trace.Span // batch.ship span of a sampled commit; nil otherwise
}

// replicaSender is the per-(PG, replica) delivery pipeline. Batches framed
// while a previous flight is on the wire accumulate in the queue and are
// coalesced into a single network message and a single hot-log write on
// the storage node — the batching of §3.2's IO flow. It is this pipeline
// that pushes network IOs per transaction below one at high concurrency
// (Table 1) and lets commit throughput scale with connections (Table 3).
type replicaSender struct {
	c    *Client
	pg   core.PGID
	idx  int
	node *storage.Node

	mu         sync.Mutex
	cond       *sync.Cond
	queue      []shipment
	stopped    bool // terminal: loop exited, enqueue nacks
	draining   bool // graceful: loop delivers the queue, then stops
	noCoalesce bool
}

func newReplicaSender(c *Client, pg core.PGID, idx int, node *storage.Node, noCoalesce bool) *replicaSender {
	s := &replicaSender{c: c, pg: pg, idx: idx, node: node, noCoalesce: noCoalesce}
	s.cond = sync.NewCond(&s.mu)
	go s.loop()
	return s
}

// enqueue adds a shipment to the pipeline.
func (s *replicaSender) enqueue(sh shipment) {
	s.mu.Lock()
	if s.stopped || s.draining {
		s.mu.Unlock()
		sh.tr.Nack(s.idx)
		return
	}
	s.queue = append(s.queue, sh)
	s.cond.Signal()
	s.mu.Unlock()
}

// stop tears the pipeline down abruptly: queued shipments are nacked.
func (s *replicaSender) stop() {
	s.mu.Lock()
	s.stopped = true
	pending := s.queue
	s.queue = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, sh := range pending {
		sh.tr.Nack(s.idx)
	}
}

// drain stops the pipeline gracefully: queued shipments are delivered (the
// write path's retry budget still applies), then the loop exits. It blocks
// until the pipeline has fully stopped.
func (s *replicaSender) drain() {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	for !s.stopped {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

func (s *replicaSender) loop() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.stopped && !s.draining {
			s.cond.Wait()
		}
		if s.stopped || len(s.queue) == 0 {
			// Abrupt stop, or graceful drain with nothing left to deliver.
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		var flight []shipment
		if s.noCoalesce {
			flight = s.queue[:1]
			s.queue = append([]shipment(nil), s.queue[1:]...)
		} else {
			flight = s.queue
			s.queue = nil
		}
		s.mu.Unlock()

		s.deliver(flight)
	}
}

// deliver ships one coalesced flight: one send, one ReceiveBatches, one
// ack. A failed flight is redelivered with capped exponential backoff plus
// jitter — the gray case of a single dropped message must not nack a live
// replica — and the replica is nacked only once the retry budget is
// exhausted. If every batch in the flight resolves its quorum while we back
// off, the redelivery is dropped: the 4/6 quorum absorbed the failure and
// gossip repairs this replica later (§3.3). Storage ingestion is
// idempotent, so a redelivery racing a flight that did land is harmless.
func (s *replicaSender) deliver(flight []shipment) {
	c := s.c
	// Delivery runs under the client's root context: a Crash abandons the
	// in-flight exchange and its backoff immediately. Per-commit deadlines
	// deliberately do NOT reach here — a committer detaching must not stop
	// its batch from shipping (durability is decided by the quorum, not the
	// waiter).
	ctx := c.rootCtx
	size := 0
	batches := make([]*core.Batch, len(flight))
	for i, sh := range flight {
		batches[i] = sh.batch
		size += sh.batch.EncodedSize()
	}
	for try := 0; ; try++ {
		// One replica.flight span per traced shipment per attempt. The
		// first becomes the lead: the single physical exchange's net and
		// storage children hang off it; coalesced followers share the
		// flight's wall time but point at the lead for the breakdown.
		var lead *trace.Span
		var flightSpans []*trace.Span
		for _, sh := range flight {
			fsp := sh.sp.Child("replica.flight")
			if fsp == nil {
				continue
			}
			fsp.Annotate("replica", s.idx)
			fsp.Annotate("node", s.node.NodeID())
			fsp.Annotate("batches", len(flight))
			if try > 0 {
				fsp.Annotate("try", try+1)
			}
			if lead == nil {
				lead = fsp
			} else {
				fsp.Annotate("coalesced", true)
			}
			flightSpans = append(flightSpans, fsp)
		}
		start := time.Now()
		ack, err := s.attempt(ctx, batches, size, lead)
		for _, fsp := range flightSpans {
			if err != nil {
				fsp.Annotate("err", err)
			}
			fsp.End()
		}
		if err == nil {
			c.fleet.health.ObserveOK(s.pg, s.idx, time.Since(start))
			c.logBytes.Add(uint64(size))
			// A late ack from a retried flight may arrive after the quorum
			// already resolved; noteSCL is a monotonic max and Ack on a
			// resolved tracker is a no-op, so stale acks still advance the
			// segment's completeness view safely.
			c.noteSCL(ack)
			for _, sh := range flight {
				sh.tr.Ack(s.idx)
			}
			return
		}
		if ctx.Err() != nil {
			break // client torn down mid-flight; nack, don't blame health
		}
		c.fleet.health.ObserveFailure(s.pg, s.idx)
		if try+1 >= deliverAttempts {
			break
		}
		if s.resolvedAll(flight) {
			return // settled without us; gossip will catch this replica up
		}
		// Backoff selects on the root context so a crashing client never
		// waits out a retry schedule.
		bt := time.NewTimer(backoffFor(try))
		select {
		case <-bt.C:
		case <-ctx.Done():
			bt.Stop()
		}
		s.mu.Lock()
		stopped := s.stopped
		s.mu.Unlock()
		if stopped || ctx.Err() != nil {
			break
		}
		c.fleet.health.retries.Inc()
	}
	for _, sh := range flight {
		sh.tr.Nack(s.idx)
	}
}

// attempt performs one delivery exchange: request send, persist+ack on the
// storage node, ack send back. sp (the lead flight span, nil when the
// flight carries no sampled commit) parents the hop and ingest spans.
func (s *replicaSender) attempt(ctx context.Context, batches []*core.Batch, size int, sp *trace.Span) (storage.Ack, error) {
	c := s.c
	if err := sendHop(ctx, c.fleet.cfg.Net, sp, "net.req", c.node, s.node.NodeID(), size); err != nil {
		return storage.Ack{}, err
	}
	vdlNow := c.vdl.VDL()
	mrpl := c.mrpl(vdlNow)
	ack, err := s.node.ReceiveBatches(trace.NewContext(ctx, sp), batches, vdlNow, mrpl)
	if err != nil {
		return storage.Ack{}, err
	}
	if err := sendHop(ctx, c.fleet.cfg.Net, sp, "net.ack", s.node.NodeID(), c.node, ackSize); err != nil {
		return storage.Ack{}, err
	}
	return ack, nil
}

// resolvedAll reports whether every batch in the flight has already
// resolved its write quorum (success or failure) without this replica.
func (s *replicaSender) resolvedAll(flight []shipment) bool {
	for _, sh := range flight {
		if !sh.tr.Resolved() {
			return false
		}
	}
	return true
}

// shipBatch hands one batch to every replica's sender pipeline and waits
// for the write quorum, or until ctx fires. A non-nil sp (a sampled
// commit's ship span) gets a batch.ship child carrying the per-replica
// flights, and a quorum.wait child covering the time blocked on the 4/6
// tracker.
//
// VDL advancement is decoupled from the wait: a dedicated watcher advances
// the durable point when the quorum resolves, so a caller that detaches on
// deadline does not stall durability — the batch still ships, the VDL still
// moves, and only the waiter returns early (the deadline-vs-durability
// contract in DESIGN.md).
func (c *Client) shipBatch(ctx context.Context, b *core.Batch, sp *trace.Span) error {
	all := *c.senders.Load()
	senders := all[int(b.PG)%len(all)]
	trCfg := c.q
	if c.q.Split() {
		// Role-split quorum (Taurus): commit acknowledgment waits only on
		// the synchronous log tier — the low replica indices, so sender
		// and tracker indices keep lining up. Page replicas receive
		// nothing in the foreground; they pull the redo stream from the
		// log tier asynchronously via gossip.
		trCfg = c.q.LogTier()
		senders = senders[:c.q.LogV]
	}
	tr := quorum.NewTracker(trCfg)
	bsp := sp.Child("batch.ship")
	bsp.Annotate("pg", b.PG)
	bsp.Annotate("records", len(b.Records))
	sh := shipment{batch: b, tr: tr, sp: bsp}
	for _, s := range senders {
		s.enqueue(sh)
	}
	done, _ := c.trackInflight()
	advanced := make(chan struct{})
	go func() {
		defer done()
		defer close(advanced)
		<-tr.Done()
		if tr.Err() != nil {
			return
		}
		first := b.Records[0].LSN
		last := b.Records[len(b.Records)-1].LSN
		newVDL := c.win.markAcked(first, last)
		if c.vdl.Advance(newVDL) {
			c.alloc.AdvanceVDL(newVDL)
			c.tails.Advance(newVDL)
		}
	}()
	qsp := bsp.Child("quorum.wait")
	select {
	case <-tr.Done():
	case <-ctx.Done():
		qsp.Annotate("abandoned", true)
		qsp.End()
		bsp.Annotate("err", ctx.Err())
		bsp.End()
		return fmt.Errorf("volume: quorum wait abandoned: %w", ctx.Err())
	}
	qsp.End()
	// The quorum resolved while we were still attached: wait for the
	// watcher's VDL advance so a successful Ship keeps its pre-deadline
	// contract — on return, the batch's records count toward the VDL.
	<-advanced
	err := tr.Err()
	if err != nil {
		bsp.Annotate("err", err)
	}
	bsp.End()
	return err
}
