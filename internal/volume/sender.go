package volume

import (
	"context"
	"fmt"
	"sync"
	"time"

	"aurora/internal/core"
	"aurora/internal/netsim"
	"aurora/internal/quorum"
	"aurora/internal/storage"
	"aurora/internal/trace"
)

// sendHop wraps one network send in a named child span of parent ("net.req",
// "net.ack", "net.resp"...), annotated with the endpoints and payload size.
// With a nil parent — the unsampled common case — only the send happens.
func sendHop(ctx context.Context, net *netsim.Network, parent *trace.Span, name string, from, to netsim.NodeID, size int) error {
	sp := parent.Child(name)
	sp.Annotate("from", from)
	sp.Annotate("to", to)
	sp.Annotate("bytes", size)
	err := net.Send(ctx, from, to, size)
	if err != nil {
		sp.Annotate("err", err)
	}
	sp.End()
	return err
}

// sendHopBytes is sendHop for a payload-carrying send: the views are
// borrowed by the network only for the duration of the call (see
// netsim.SendBytes), so the caller's arena can be recycled as soon as the
// delivery resolves.
func sendHopBytes(ctx context.Context, net *netsim.Network, parent *trace.Span, name string, from, to netsim.NodeID, payloads [][]byte) error {
	sp := parent.Child(name)
	sp.Annotate("from", from)
	sp.Annotate("to", to)
	size, err := net.SendBytes(ctx, from, to, payloads)
	sp.Annotate("bytes", size)
	if err != nil {
		sp.Annotate("err", err)
	}
	sp.End()
	return err
}

// shipment is one encoded batch awaiting delivery to one segment replica,
// with the quorum tracker that resolves its MTR. wire is a view into the
// group's arena; the shipment's holder keeps one reference on group for as
// long as it may touch wire, released exactly once when the shipment is
// acked, nacked, or dropped.
type shipment struct {
	wire  []byte
	pg    core.PGID
	recs  int
	group *core.FramedGroup
	tr    *quorum.Tracker
	sp    *trace.Span // batch.ship span of a sampled commit; nil otherwise
}

// replicaSender is the per-(PG, replica) delivery pipeline. Batches framed
// while a previous flight is on the wire accumulate in the queue and are
// coalesced into a single network message and a single hot-log write on
// the storage node — the batching of §3.2's IO flow. It is this pipeline
// that pushes network IOs per transaction below one at high concurrency
// (Table 1) and lets commit throughput scale with connections (Table 3).
//
// The queue is a ring buffer and the flight state (shipments, payload and
// view slices, per-batch results) is reusable scratch owned by the loop
// goroutine, so steady-state delivery allocates nothing.
type replicaSender struct {
	c    *Client
	pg   core.PGID
	idx  int
	node *storage.Node

	mu         sync.Mutex
	cond       *sync.Cond
	q          []shipment // ring buffer
	qhead      int
	qlen       int
	stopped    bool // terminal: loop exited, enqueue nacks
	draining   bool // graceful: loop delivers the queue, then stops
	noCoalesce bool

	// Loop-owned scratch, reused across flights.
	flight   []shipment
	payloads [][]byte
	views    []core.BatchView
	results  []storage.BatchResult
}

func newReplicaSender(c *Client, pg core.PGID, idx int, node *storage.Node, noCoalesce bool) *replicaSender {
	s := &replicaSender{c: c, pg: pg, idx: idx, node: node, noCoalesce: noCoalesce}
	s.cond = sync.NewCond(&s.mu)
	go s.loop()
	return s
}

// pushLocked appends to the ring, growing it by doubling when full (the
// steady state never grows: the ring keeps its high-water capacity).
func (s *replicaSender) pushLocked(sh shipment) {
	if s.qlen == len(s.q) {
		n := len(s.q) * 2
		if n == 0 {
			n = 16
		}
		nq := make([]shipment, n)
		for i := 0; i < s.qlen; i++ {
			nq[i] = s.q[(s.qhead+i)%len(s.q)]
		}
		s.q = nq
		s.qhead = 0
	}
	s.q[(s.qhead+s.qlen)%len(s.q)] = sh
	s.qlen++
}

// popLocked removes the oldest shipment, zeroing its slot so the ring does
// not pin the group's arena.
func (s *replicaSender) popLocked() shipment {
	sh := s.q[s.qhead]
	s.q[s.qhead] = shipment{}
	s.qhead = (s.qhead + 1) % len(s.q)
	s.qlen--
	return sh
}

// enqueue adds a shipment to the pipeline. The caller has already retained
// the shipment's group on this sender's behalf; every exit path out of the
// pipeline releases it exactly once.
func (s *replicaSender) enqueue(sh shipment) {
	s.mu.Lock()
	if s.stopped || s.draining {
		s.mu.Unlock()
		sh.tr.Nack(s.idx)
		sh.group.Release()
		return
	}
	s.pushLocked(sh)
	s.cond.Signal()
	s.mu.Unlock()
}

// stop tears the pipeline down abruptly: queued shipments are nacked and
// their group references dropped.
func (s *replicaSender) stop() {
	s.mu.Lock()
	s.stopped = true
	var pending []shipment
	for s.qlen > 0 {
		pending = append(pending, s.popLocked())
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, sh := range pending {
		sh.tr.Nack(s.idx)
		sh.group.Release()
	}
}

// drain stops the pipeline gracefully: queued shipments are delivered (the
// write path's retry budget still applies), then the loop exits. It blocks
// until the pipeline has fully stopped.
func (s *replicaSender) drain() {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	for !s.stopped {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

func (s *replicaSender) loop() {
	for {
		s.mu.Lock()
		for s.qlen == 0 && !s.stopped && !s.draining {
			s.cond.Wait()
		}
		if s.stopped || s.qlen == 0 {
			// Abrupt stop, or graceful drain with nothing left to deliver.
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		s.flight = s.flight[:0]
		if s.noCoalesce {
			s.flight = append(s.flight, s.popLocked())
		} else {
			for s.qlen > 0 {
				s.flight = append(s.flight, s.popLocked())
			}
		}
		s.mu.Unlock()

		s.deliver(s.flight)
		s.clearScratch()
	}
}

// clearScratch zeroes the flight scratch after a delivery so the retained
// capacity does not pin any group's arena between flights.
func (s *replicaSender) clearScratch() {
	for i := range s.flight {
		s.flight[i] = shipment{}
	}
	for i := range s.payloads {
		s.payloads[i] = nil
	}
	for i := range s.views {
		s.views[i] = core.BatchView{}
	}
	for i := range s.results {
		s.results[i] = storage.BatchResult{}
	}
}

// releaseFlight drops the pipeline's group references for a flight that has
// fully resolved (acked, nacked, or dropped as already-settled).
func releaseFlight(flight []shipment) {
	for _, sh := range flight {
		sh.group.Release()
	}
}

// deliver ships one coalesced flight: one send, one Ingest, one ack. A
// failed flight is redelivered with capped exponential backoff plus jitter
// — the gray case of a single dropped message must not nack a live replica
// — and the replica is nacked only once the retry budget is exhausted. A
// batch the node rejects for a NON-transient reason (wrong volume, stale
// geometry, corrupt bytes) is nacked immediately on an otherwise successful
// flight: redelivery cannot fix it. If every batch in the flight resolves
// its quorum while we back off, the redelivery is dropped: the 4/6 quorum
// absorbed the failure and gossip repairs this replica later (§3.3).
// Storage ingestion is idempotent, so a redelivery racing a flight that did
// land is harmless.
func (s *replicaSender) deliver(flight []shipment) {
	c := s.c
	// Delivery runs under the client's root context: a Crash abandons the
	// in-flight exchange and its backoff immediately. Per-commit deadlines
	// deliberately do NOT reach here — a committer detaching must not stop
	// its batch from shipping (durability is decided by the quorum, not the
	// waiter).
	ctx := c.rootCtx
	size := 0
	for i := range flight {
		size += len(flight[i].wire)
	}
	for try := 0; ; try++ {
		// One replica.flight span per traced shipment per attempt. The
		// first becomes the lead: the single physical exchange's net and
		// storage children hang off it; coalesced followers share the
		// flight's wall time but point at the lead for the breakdown.
		var lead *trace.Span
		var flightSpans []*trace.Span
		for _, sh := range flight {
			fsp := sh.sp.Child("replica.flight")
			if fsp == nil {
				continue
			}
			fsp.Annotate("replica", s.idx)
			fsp.Annotate("node", s.node.NodeID())
			fsp.Annotate("batches", len(flight))
			if try > 0 {
				fsp.Annotate("try", try+1)
			}
			if lead == nil {
				lead = fsp
			} else {
				fsp.Annotate("coalesced", true)
			}
			flightSpans = append(flightSpans, fsp)
		}
		start := time.Now()
		ack, results, err := s.attempt(ctx, flight, lead)
		for _, fsp := range flightSpans {
			if err != nil {
				fsp.Annotate("err", err)
			}
			fsp.End()
		}
		if err == nil {
			rtt := time.Since(start)
			c.fleet.health.ObserveOK(s.pg, s.idx, rtt)
			c.deliverWin.ObserveDuration(rtt)
			c.logBytes.Add(uint64(size))
			// A late ack from a retried flight may arrive after the quorum
			// already resolved; noteSCL is a monotonic max and Ack on a
			// resolved tracker is a no-op, so stale acks still advance the
			// segment's completeness view safely.
			c.noteSCL(ack)
			for i, sh := range flight {
				if results[i].Err != nil {
					sh.tr.Nack(s.idx)
				} else {
					sh.tr.Ack(s.idx)
				}
			}
			releaseFlight(flight)
			return
		}
		if ctx.Err() != nil {
			break // client torn down mid-flight; nack, don't blame health
		}
		c.fleet.health.ObserveFailure(s.pg, s.idx)
		if try+1 >= deliverAttempts {
			break
		}
		if s.resolvedAll(flight) {
			releaseFlight(flight)
			return // settled without us; gossip will catch this replica up
		}
		// Backoff selects on the root context so a crashing client never
		// waits out a retry schedule. The ceiling is a control-plane knob.
		bt := time.NewTimer(backoffFor(try, c.backoffCap()))
		select {
		case <-bt.C:
		case <-ctx.Done():
			bt.Stop()
		}
		s.mu.Lock()
		stopped := s.stopped
		s.mu.Unlock()
		if stopped || ctx.Err() != nil {
			break
		}
		c.fleet.health.retries.Inc()
	}
	for _, sh := range flight {
		sh.tr.Nack(s.idx)
	}
	releaseFlight(flight)
}

// attempt performs one delivery exchange: request send carrying the flight's
// borrowed wire views, persist+ack on the storage node, ack send back. sp
// (the lead flight span, nil when the flight carries no sampled commit)
// parents the hop and ingest spans. The returned results slice is the
// sender's scratch, valid until the next attempt.
func (s *replicaSender) attempt(ctx context.Context, flight []shipment, sp *trace.Span) (storage.Ack, []storage.BatchResult, error) {
	c := s.c
	s.payloads = s.payloads[:0]
	s.views = s.views[:0]
	for i := range flight {
		s.payloads = append(s.payloads, flight[i].wire)
		v, _, err := core.ParseBatchView(flight[i].wire)
		if err != nil {
			// Cannot happen for framer-produced wire; fail the flight rather
			// than ship garbage.
			return storage.Ack{}, nil, fmt.Errorf("volume: bad shipment wire: %w", err)
		}
		s.views = append(s.views, v)
	}
	if err := sendHopBytes(ctx, c.fleet.cfg.Net, sp, "net.req", c.node, s.node.NodeID(), s.payloads); err != nil {
		return storage.Ack{}, nil, err
	}
	vdlNow := c.vdl.VDL()
	mrpl := c.mrpl(vdlNow)
	ack, results, err := s.node.Ingest(trace.NewContext(ctx, sp), s.views, vdlNow, mrpl, s.results[:0])
	s.results = results
	if err != nil {
		return storage.Ack{}, nil, err
	}
	if err := sendHop(ctx, c.fleet.cfg.Net, sp, "net.ack", s.node.NodeID(), c.node, ackSize); err != nil {
		return storage.Ack{}, nil, err
	}
	return ack, results, nil
}

// resolvedAll reports whether every batch in the flight has already
// resolved its write quorum (success or failure) without this replica.
func (s *replicaSender) resolvedAll(flight []shipment) bool {
	for _, sh := range flight {
		if !sh.tr.Resolved() {
			return false
		}
	}
	return true
}

// shipBatch hands one encoded batch to every replica's sender pipeline and
// waits for the write quorum, or until ctx fires. A non-nil sp (a sampled
// commit's ship span) gets a batch.ship child carrying the per-replica
// flights, and a quorum.wait child covering the time blocked on the 4/6
// tracker.
//
// Each enqueue retains the framed group once on the pipeline's behalf, so
// the arena stays alive for exactly as long as any replica might read the
// batch's wire view — including retried and hedged flights that outlive a
// deadline-detached committer. VDL advancement is decoupled from the wait:
// a dedicated watcher advances the durable point when the quorum resolves
// (using First/Last copied out of the batch header, holding no group
// reference), so a caller that detaches on deadline does not stall
// durability — the batch still ships, the VDL still moves, and only the
// waiter returns early (the deadline-vs-durability contract in DESIGN.md).
func (c *Client) shipBatch(ctx context.Context, g *core.FramedGroup, b *core.FramedBatch, sp *trace.Span) error {
	all := *c.senders.Load()
	senders := all[int(b.PG)%len(all)]
	trCfg := c.q
	if c.q.Split() {
		// Role-split quorum (Taurus): commit acknowledgment waits only on
		// the synchronous log tier — the low replica indices, so sender
		// and tracker indices keep lining up. Page replicas receive
		// nothing in the foreground; they pull the redo stream from the
		// log tier asynchronously via gossip.
		trCfg = c.q.LogTier()
		senders = senders[:c.q.LogV]
	}
	tr := quorum.NewTracker(trCfg)
	bsp := sp.Child("batch.ship")
	bsp.Annotate("pg", b.PG)
	bsp.Annotate("records", b.Records)
	first, last := b.First, b.Last
	sh := shipment{wire: b.Wire, pg: b.PG, recs: b.Records, group: g, tr: tr, sp: bsp}
	for _, s := range senders {
		g.Retain()
		s.enqueue(sh)
	}
	done, _ := c.trackInflight()
	advanced := make(chan struct{})
	go func() {
		defer done()
		defer close(advanced)
		<-tr.Done()
		if tr.Err() != nil {
			return
		}
		newVDL := c.win.markAcked(first, last)
		if c.vdl.Advance(newVDL) {
			c.alloc.AdvanceVDL(newVDL)
			c.tails.Advance(newVDL)
		}
	}()
	qsp := bsp.Child("quorum.wait")
	select {
	case <-tr.Done():
	case <-ctx.Done():
		qsp.Annotate("abandoned", true)
		qsp.End()
		bsp.Annotate("err", ctx.Err())
		bsp.End()
		return fmt.Errorf("volume: quorum wait abandoned: %w", ctx.Err())
	}
	qsp.End()
	// The quorum resolved while we were still attached: wait for the
	// watcher's VDL advance so a successful Ship keeps its pre-deadline
	// contract — on return, the batch's records count toward the VDL.
	<-advanced
	err := tr.Err()
	if err != nil {
		bsp.Annotate("err", err)
	}
	bsp.End()
	return err
}
