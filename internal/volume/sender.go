package volume

import (
	"sync"
	"time"

	"aurora/internal/core"
	"aurora/internal/quorum"
	"aurora/internal/storage"
	"aurora/internal/trace"
)

// shipment is one batch awaiting delivery to one segment replica, with the
// quorum tracker that resolves its MTR.
type shipment struct {
	batch *core.Batch
	tr    *quorum.Tracker
	sp    *trace.Span // batch.ship span of a sampled commit; nil otherwise
}

// replicaSender is the per-(PG, replica) delivery pipeline. Batches framed
// while a previous flight is on the wire accumulate in the queue and are
// coalesced into a single network message and a single hot-log write on
// the storage node — the batching of §3.2's IO flow. It is this pipeline
// that pushes network IOs per transaction below one at high concurrency
// (Table 1) and lets commit throughput scale with connections (Table 3).
type replicaSender struct {
	c    *Client
	pg   core.PGID
	idx  int
	node *storage.Node

	mu         sync.Mutex
	cond       *sync.Cond
	queue      []shipment
	stopped    bool
	noCoalesce bool
}

func newReplicaSender(c *Client, pg core.PGID, idx int, node *storage.Node, noCoalesce bool) *replicaSender {
	s := &replicaSender{c: c, pg: pg, idx: idx, node: node, noCoalesce: noCoalesce}
	s.cond = sync.NewCond(&s.mu)
	go s.loop()
	return s
}

// enqueue adds a shipment to the pipeline.
func (s *replicaSender) enqueue(sh shipment) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		sh.tr.Nack(s.idx)
		return
	}
	s.queue = append(s.queue, sh)
	s.cond.Signal()
	s.mu.Unlock()
}

func (s *replicaSender) stop() {
	s.mu.Lock()
	s.stopped = true
	pending := s.queue
	s.queue = nil
	s.cond.Signal()
	s.mu.Unlock()
	for _, sh := range pending {
		sh.tr.Nack(s.idx)
	}
}

func (s *replicaSender) loop() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped {
			s.mu.Unlock()
			return
		}
		var flight []shipment
		if s.noCoalesce {
			flight = s.queue[:1]
			s.queue = append([]shipment(nil), s.queue[1:]...)
		} else {
			flight = s.queue
			s.queue = nil
		}
		s.mu.Unlock()

		s.deliver(flight)
	}
}

// deliver ships one coalesced flight: one send, one ReceiveBatches, one
// ack. A failed flight is redelivered with capped exponential backoff plus
// jitter — the gray case of a single dropped message must not nack a live
// replica — and the replica is nacked only once the retry budget is
// exhausted. If every batch in the flight resolves its quorum while we back
// off, the redelivery is dropped: the 4/6 quorum absorbed the failure and
// gossip repairs this replica later (§3.3). Storage ingestion is
// idempotent, so a redelivery racing a flight that did land is harmless.
func (s *replicaSender) deliver(flight []shipment) {
	c := s.c
	size := 0
	batches := make([]*core.Batch, len(flight))
	for i, sh := range flight {
		batches[i] = sh.batch
		size += sh.batch.EncodedSize()
	}
	for try := 0; ; try++ {
		// One replica.flight span per traced shipment per attempt. The
		// first becomes the lead: the single physical exchange's net and
		// storage children hang off it; coalesced followers share the
		// flight's wall time but point at the lead for the breakdown.
		var lead *trace.Span
		var flightSpans []*trace.Span
		for _, sh := range flight {
			fsp := sh.sp.Child("replica.flight")
			if fsp == nil {
				continue
			}
			fsp.Annotate("replica", s.idx)
			fsp.Annotate("node", s.node.NodeID())
			fsp.Annotate("batches", len(flight))
			if try > 0 {
				fsp.Annotate("try", try+1)
			}
			if lead == nil {
				lead = fsp
			} else {
				fsp.Annotate("coalesced", true)
			}
			flightSpans = append(flightSpans, fsp)
		}
		start := time.Now()
		ack, err := s.attempt(batches, size, lead)
		for _, fsp := range flightSpans {
			if err != nil {
				fsp.Annotate("err", err)
			}
			fsp.End()
		}
		if err == nil {
			c.fleet.health.ObserveOK(s.pg, s.idx, time.Since(start))
			// A late ack from a retried flight may arrive after the quorum
			// already resolved; noteSCL is a monotonic max and Ack on a
			// resolved tracker is a no-op, so stale acks still advance the
			// segment's completeness view safely.
			c.noteSCL(ack)
			for _, sh := range flight {
				sh.tr.Ack(s.idx)
			}
			return
		}
		c.fleet.health.ObserveFailure(s.pg, s.idx)
		if try+1 >= deliverAttempts {
			break
		}
		if s.resolvedAll(flight) {
			return // settled without us; gossip will catch this replica up
		}
		time.Sleep(backoffFor(try))
		s.mu.Lock()
		stopped := s.stopped
		s.mu.Unlock()
		if stopped {
			break
		}
		c.fleet.health.retries.Inc()
	}
	for _, sh := range flight {
		sh.tr.Nack(s.idx)
	}
}

// attempt performs one delivery exchange: request send, persist+ack on the
// storage node, ack send back. sp (the lead flight span, nil when the
// flight carries no sampled commit) parents the hop and ingest spans.
func (s *replicaSender) attempt(batches []*core.Batch, size int, sp *trace.Span) (storage.Ack, error) {
	c := s.c
	if err := c.fleet.cfg.Net.SendTraced(c.node, s.node.NodeID(), size, sp, "net.req"); err != nil {
		return storage.Ack{}, err
	}
	vdlNow := c.vdl.VDL()
	mrpl := c.reads.lowWaterMark(vdlNow)
	ack, err := s.node.ReceiveBatchesTraced(batches, vdlNow, mrpl, sp)
	if err != nil {
		return storage.Ack{}, err
	}
	if err := c.fleet.cfg.Net.SendTraced(s.node.NodeID(), c.node, ackSize, sp, "net.ack"); err != nil {
		return storage.Ack{}, err
	}
	return ack, nil
}

// resolvedAll reports whether every batch in the flight has already
// resolved its write quorum (success or failure) without this replica.
func (s *replicaSender) resolvedAll(flight []shipment) bool {
	for _, sh := range flight {
		if !sh.tr.Resolved() {
			return false
		}
	}
	return true
}

// shipBatch hands one batch to every replica's sender pipeline and waits
// for the write quorum. A non-nil sp (a sampled commit's ship span) gets a
// batch.ship child carrying the per-replica flights, and a quorum.wait
// child covering the time blocked on the 4/6 tracker.
func (c *Client) shipBatch(b *core.Batch, sp *trace.Span) error {
	all := *c.senders.Load()
	senders := all[int(b.PG)%len(all)]
	tr := quorum.NewTracker(c.q)
	bsp := sp.Child("batch.ship")
	bsp.Annotate("pg", b.PG)
	bsp.Annotate("records", len(b.Records))
	sh := shipment{batch: b, tr: tr, sp: bsp}
	for _, s := range senders {
		s.enqueue(sh)
	}
	qsp := bsp.Child("quorum.wait")
	<-tr.Done()
	qsp.End()
	err := tr.Err()
	if err != nil {
		bsp.Annotate("err", err)
	}
	bsp.End()
	if err != nil {
		return err
	}
	first := b.Records[0].LSN
	last := b.Records[len(b.Records)-1].LSN
	newVDL := c.win.markAcked(first, last)
	if c.vdl.Advance(newVDL) {
		c.alloc.AdvanceVDL(newVDL)
		c.tails.Advance(newVDL)
	}
	return nil
}
