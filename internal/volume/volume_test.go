package volume

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/netsim"
	"aurora/internal/quorum"
)

func testVolume(t *testing.T, pgs int) (*Fleet, *Client) {
	t.Helper()
	net := netsim.New(netsim.FastLocal())
	f, err := NewFleet(FleetConfig{Name: "t", Geometry: core.UniformGeometry(pgs), Net: net, Disk: disk.FastLocal()})
	if err != nil {
		t.Fatal(err)
	}
	c := Bootstrap(f, ClientConfig{WriterNode: "writer", WriterAZ: 0})
	t.Cleanup(c.Close)
	return f, c
}

// writeKV writes one MTR putting data at offset 0 of the page.
func writePage(t *testing.T, c *Client, id core.PageID, data string) core.LSN {
	t.Helper()
	m := &core.MTR{Txn: 1}
	m.AddDelta(c.PGOf(id), id, 0, []byte(data))
	cpl, err := c.WriteMTR(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	return cpl
}

func TestWriteAdvancesVDL(t *testing.T) {
	_, c := testVolume(t, 2)
	var last core.LSN
	for i := 0; i < 20; i++ {
		last = writePage(t, c, core.PageID(i%4), fmt.Sprintf("v%02d", i))
	}
	// All batches quorum-acked synchronously: VDL must have caught up.
	if got := c.VDL(); got != last {
		t.Fatalf("VDL %d, want %d", got, last)
	}
	done := c.DurableChan(last)
	select {
	case <-done:
	default:
		t.Fatal("DurableChan for reached LSN not closed")
	}
	s := c.Stats()
	if s.MTRs != 20 || s.RecordsWritten != 20 || s.Backlog != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestWriteReachesQuorumReplicas(t *testing.T) {
	f, c := testVolume(t, 1)
	writePage(t, c, 0, "hello")
	have := 0
	for _, n := range f.Replicas(0) {
		if n.SCL() >= 1 {
			have++
		}
	}
	if have < f.Quorum().Vw {
		t.Fatalf("record on %d replicas, want >= %d", have, f.Quorum().Vw)
	}
}

func TestReadPageLatestAndRouting(t *testing.T) {
	f, c := testVolume(t, 1)
	writePage(t, c, 7, "aaaa")
	writePage(t, c, 7, "bbbb")
	p, rp, err := c.ReadPage(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:4]); got != "bbbb" {
		t.Fatalf("payload %q", got)
	}
	if rp != c.VDL() {
		t.Fatalf("read point %d, want VDL %d", rp, c.VDL())
	}
	// The read must have been served by a single same-AZ segment (writer
	// is in AZ 0; replicas 0 and 1 are in AZ 0).
	_, _, recv0, _, _ := f.Net().NodeStats(f.Node(0, 0).NodeID())
	_, _, recv1, _, _ := f.Net().NodeStats(f.Node(0, 1).NodeID())
	if recv0+recv1 == 0 {
		t.Fatal("read did not touch a same-AZ replica")
	}
}

func TestReadAtOlderReadPoint(t *testing.T) {
	_, c := testVolume(t, 1)
	writePage(t, c, 3, "old!")
	snap, release := c.RegisterReadPoint()
	defer release()
	writePage(t, c, 3, "new!")
	p, err := c.ReadPageAt(context.Background(), 3, snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:4]); got != "old!" {
		t.Fatalf("snapshot read %q, want old!", got)
	}
	p, _, err = c.ReadPage(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:4]); got != "new!" {
		t.Fatalf("latest read %q, want new!", got)
	}
}

func TestWritesSurviveAZFailure(t *testing.T) {
	f, c := testVolume(t, 2)
	writePage(t, c, 0, "pre")
	f.Net().SetAZDown(2, true)
	defer f.Net().SetAZDown(2, false)
	// 4 replicas remain per PG: exactly the write quorum.
	for i := 0; i < 5; i++ {
		writePage(t, c, core.PageID(i), fmt.Sprintf("az%d", i))
	}
	p, _, err := c.ReadPage(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:3]); got != "az1" {
		t.Fatalf("payload %q", got)
	}
}

func TestWritesFailOnAZPlusOne(t *testing.T) {
	f, c := testVolume(t, 1)
	writePage(t, c, 0, "pre")
	f.Net().SetAZDown(2, true)
	defer f.Net().SetAZDown(2, false)
	f.Node(0, 0).Crash()
	m := &core.MTR{Txn: 9}
	m.AddDelta(0, 0, 0, []byte("xx"))
	if _, err := c.WriteMTR(context.Background(), m); !errors.Is(err, quorum.ErrQuorumImpossible) {
		t.Fatalf("AZ+1 write: %v", err)
	}
	if c.Stats().WriteFailures != 1 {
		t.Fatal("write failure not counted")
	}
	// Reads survive AZ+1: three healthy replicas remain and hold the data.
	p, _, err := c.ReadPage(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:3]); got != "pre" {
		t.Fatalf("payload %q", got)
	}
}

func TestSlowNodeAbsorbedByQuorum(t *testing.T) {
	f, c := testVolume(t, 1)
	// One replica drops every message silently: the 4/6 quorum never
	// notices as long as four others ack.
	if err := f.Net().SetNodeDown(f.Node(0, 5).NodeID(), false); err != nil {
		t.Fatal(err)
	}
	f.Node(0, 5).Crash()
	for i := 0; i < 10; i++ {
		writePage(t, c, 0, fmt.Sprintf("w%d", i))
	}
	if c.VDL() == 0 {
		t.Fatal("VDL did not advance with one crashed replica")
	}
	// The crashed node recovers and catches up via gossip, not the writer.
	f.Node(0, 5).Restart()
	if n := f.Node(0, 5).GossipOnce(); n == 0 {
		t.Fatal("gossip pulled nothing")
	}
	if got := f.Node(0, 5).SCL(); got != c.VDL() {
		t.Fatalf("lagging replica SCL %d, want %d", got, c.VDL())
	}
}

func TestLALBackpressure(t *testing.T) {
	net := netsim.New(netsim.FastLocal())
	f, err := NewFleet(FleetConfig{Name: "bp", Geometry: core.UniformGeometry(1), Net: net, Disk: disk.FastLocal()})
	if err != nil {
		t.Fatal(err)
	}
	c := Bootstrap(f, ClientConfig{WriterNode: "writer", WriterAZ: 0, LAL: 8})
	defer c.Close()
	// Stall the fleet: every replica down, so no write ever acks and the
	// VDL stays at zero. Writes consume the 8-LSN window and then block.
	for _, n := range f.Replicas(0) {
		n.Crash()
	}
	for i := 0; i < 8; i++ {
		m := &core.MTR{Txn: 1}
		m.AddDelta(0, 0, 0, []byte("x"))
		if _, err := c.WriteMTR(context.Background(), m); err == nil {
			t.Fatal("write succeeded with fleet down")
		}
	}
	blocked := make(chan struct{})
	go func() {
		m := &core.MTR{Txn: 2}
		m.AddDelta(0, 0, 0, []byte("y"))
		c.WriteMTR(context.Background(), m) //nolint:errcheck — released by Close below
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("ninth write was not throttled by the LAL")
	case <-time.After(50 * time.Millisecond):
	}
	c.Close() // releases the blocked allocator
	select {
	case <-blocked:
	case <-time.After(time.Second):
		t.Fatal("blocked writer not released on close")
	}
}

func TestLowWaterMarkMonotoneAndReadHeld(t *testing.T) {
	_, c := testVolume(t, 1)
	writePage(t, c, 0, "a")
	snap, release := c.RegisterReadPoint()
	for i := 0; i < 5; i++ {
		writePage(t, c, 0, "b")
	}
	if lwm := c.LowWaterMark(); lwm != snap {
		t.Fatalf("LWM %d, want held at %d", lwm, snap)
	}
	release()
	if lwm := c.LowWaterMark(); lwm != c.VDL() {
		t.Fatalf("LWM %d after release, want VDL %d", lwm, c.VDL())
	}
	// Monotonic even if VDL were to appear lower (cannot happen, but the
	// floor guards it).
	if lwm := c.LowWaterMark(); lwm < snap {
		t.Fatal("LWM regressed")
	}
}

func TestRecoveryCleanShutdown(t *testing.T) {
	f, c := testVolume(t, 2)
	var last core.LSN
	for i := 0; i < 30; i++ {
		last = writePage(t, c, core.PageID(i%5), fmt.Sprintf("r%02d", i))
	}
	c.Crash()
	c2, rep, err := Recover(context.Background(), f, ClientConfig{WriterNode: "writer2", WriterAZ: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if rep.VDL != last {
		t.Fatalf("recovered VDL %d, want %d", rep.VDL, last)
	}
	if rep.VCL < rep.VDL {
		t.Fatalf("VCL %d below VDL %d", rep.VCL, rep.VDL)
	}
	if rep.Epoch != 1 {
		t.Fatalf("epoch %d, want 1", rep.Epoch)
	}
	// All data readable through the new writer.
	for i := 0; i < 5; i++ {
		p, _, err := c2.ReadPage(context.Background(), core.PageID(i))
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		want := fmt.Sprintf("r%02d", 25+i)
		if got := string(p.Payload()[:3]); got != want[:3] {
			t.Fatalf("page %d payload %q, want %q", i, got, want)
		}
	}
	// And new writes continue above the recovered bound.
	cpl := writePage(t, c2, 1, "post-recovery")
	if cpl <= rep.UpperBound {
		t.Fatalf("new LSN %d not above recovery bound %d", cpl, rep.UpperBound)
	}
}

func TestRecoveryAdmitsUnackedButRecoverableTail(t *testing.T) {
	f, c := testVolume(t, 1)
	writePage(t, c, 0, "solid")
	// Crash three replicas: the next write persists on the three healthy
	// nodes but cannot reach the 4/6 quorum, so the client reports failure
	// and the VDL stays behind.
	f.Node(0, 3).Crash()
	f.Node(0, 4).Crash()
	f.Node(0, 5).Crash()
	m := &core.MTR{Txn: 5}
	m.AddDelta(0, 0, 0, []byte("maybe"))
	if _, err := c.WriteMTR(context.Background(), m); err == nil {
		t.Fatal("write should have failed quorum")
	}
	// The quorum failure resolves as soon as three crashed replicas nack;
	// wait for the delivery pipelines to land the record on the healthy
	// three before killing the writer.
	deadline := time.Now().Add(2 * time.Second)
	for f.Node(0, 0).SCL() < 2 || f.Node(0, 1).SCL() < 2 || f.Node(0, 2).SCL() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("record never landed on healthy replicas")
		}
		time.Sleep(time.Millisecond)
	}
	c.Crash()
	// The crashed replicas return; recovery finds the record on a read
	// quorum intersection, its chain is complete, so it becomes durable.
	f.Node(0, 3).Restart()
	f.Node(0, 4).Restart()
	f.Node(0, 5).Restart()
	c2, rep, err := Recover(context.Background(), f, ClientConfig{WriterNode: "writer2", WriterAZ: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if rep.VDL != 2 {
		t.Fatalf("recovered VDL %d, want 2 (unacked but recoverable)", rep.VDL)
	}
	p, _, err := c2.ReadPage(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:5]); got != "maybe" {
		t.Fatalf("payload %q", got)
	}
}

func TestRecoveryTruncatesDanglingTail(t *testing.T) {
	f, c := testVolume(t, 1)
	last := writePage(t, c, 0, "good")
	c.Crash()
	// Inject a record whose predecessor was lost forever: LSN 5 backlinked
	// to a phantom LSN 3 that no replica holds.
	orphan := core.Batch{PG: 0, Records: []core.Record{{
		LSN: 5, PrevLSN: 3, Type: core.RecPageDelta, PG: 0, Page: 0,
		Flags: core.FlagCPL, Data: []byte("orphan"),
	}}}
	if _, err := nodeIngest(f.Node(0, 0), &orphan, 0, 0); err != nil {
		t.Fatal(err)
	}
	c2, rep, err := Recover(context.Background(), f, ClientConfig{WriterNode: "writer2", WriterAZ: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if rep.VCL != last {
		t.Fatalf("VCL %d, want %d (dangling record must cap it)", rep.VCL, last)
	}
	if rep.VDL != last {
		t.Fatalf("VDL %d, want %d", rep.VDL, last)
	}
	// The orphan is annulled everywhere it landed.
	if got := f.Node(0, 0).HighestLSN(); got > last {
		t.Fatalf("orphan survived truncation: highest %d", got)
	}
	p, _, err := c2.ReadPage(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:4]); got != "good" {
		t.Fatalf("payload %q", got)
	}
}

func TestRecoveryFailsWithoutReadQuorum(t *testing.T) {
	f, c := testVolume(t, 1)
	writePage(t, c, 0, "x")
	c.Crash()
	for i := 0; i < 4; i++ {
		f.Node(0, i).Crash()
	}
	if _, _, err := Recover(context.Background(), f, ClientConfig{WriterNode: "w2", WriterAZ: 0}); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("recovery with 2/6 reachable: %v", err)
	}
}

func TestRecoveryEpochsIncrease(t *testing.T) {
	f, c := testVolume(t, 1)
	writePage(t, c, 0, "a")
	c.Crash()
	c2, rep2, err := Recover(context.Background(), f, ClientConfig{WriterNode: "w2", WriterAZ: 0})
	if err != nil {
		t.Fatal(err)
	}
	writePage(t, c2, 0, "b")
	c2.Crash()
	c3, rep3, err := Recover(context.Background(), f, ClientConfig{WriterNode: "w3", WriterAZ: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if rep3.Epoch <= rep2.Epoch {
		t.Fatalf("epochs %d then %d, want increasing", rep2.Epoch, rep3.Epoch)
	}
	p, _, err := c3.ReadPage(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Payload()[0]; got != 'b' {
		t.Fatalf("payload %c", got)
	}
}

func TestMigrateSegmentKeepsDataReadable(t *testing.T) {
	f, c := testVolume(t, 1)
	for i := 0; i < 10; i++ {
		writePage(t, c, core.PageID(i%2), fmt.Sprintf("m%d", i))
	}
	fresh, err := f.MigrateSegment(0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.SCL() != c.VDL() {
		t.Fatalf("migrated segment SCL %d, want %d", fresh.SCL(), c.VDL())
	}
	if fresh.AZ() != 2 {
		t.Fatalf("migrated to AZ %d, want 2", fresh.AZ())
	}
	// Writes and reads continue across the migration.
	writePage(t, c, 0, "post-migrate")
	p, _, err := c.ReadPage(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:4]); got != "post" {
		t.Fatalf("payload %q", got)
	}
}

func TestRepairSegmentAfterWipe(t *testing.T) {
	f, c := testVolume(t, 1)
	for i := 0; i < 6; i++ {
		writePage(t, c, 0, fmt.Sprintf("d%d", i))
	}
	f.Node(0, 2).Wipe()
	if err := f.RepairSegment(0, 2); err != nil {
		t.Fatal(err)
	}
	if got := f.Node(0, 2).SCL(); got != c.VDL() {
		t.Fatalf("repaired SCL %d, want %d", got, c.VDL())
	}
	// Repair with every peer down fails.
	f.Node(0, 2).Wipe()
	for i := 0; i < 6; i++ {
		if i != 2 {
			f.Node(0, i).Crash()
		}
	}
	if err := f.RepairSegment(0, 2); !errors.Is(err, ErrNoHealthyPeer) {
		t.Fatalf("repair without peers: %v", err)
	}
}

func TestPGStriping(t *testing.T) {
	f, _ := testVolume(t, 4)
	counts := make(map[core.PGID]int)
	for i := 0; i < 100; i++ {
		counts[f.PGOf(core.PageID(i))]++
	}
	for pg := core.PGID(0); pg < 4; pg++ {
		if counts[pg] != 25 {
			t.Fatalf("pg %d got %d pages, want 25", pg, counts[pg])
		}
	}
}

func TestFleetValidation(t *testing.T) {
	net := netsim.New(netsim.FastLocal())
	if _, err := NewFleet(FleetConfig{Geometry: core.UniformGeometry(0), Net: net}); err == nil {
		t.Fatal("zero PGs accepted")
	}
	if _, err := NewFleet(FleetConfig{Geometry: core.UniformGeometry(1)}); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := NewFleet(FleetConfig{Geometry: core.UniformGeometry(1), Net: net, Quorum: quorum.Config{V: 3, Vw: 1, Vr: 1}}); err == nil {
		t.Fatal("invalid quorum accepted")
	}
}

func TestClosedClientRejectsOps(t *testing.T) {
	_, c := testVolume(t, 1)
	writePage(t, c, 0, "x")
	c.Close()
	m := &core.MTR{Txn: 1}
	m.AddDelta(0, 0, 0, []byte("y"))
	if _, err := c.WriteMTR(context.Background(), m); !errors.Is(err, ErrClosed) {
		t.Fatalf("write on closed client: %v", err)
	}
	if _, _, err := c.ReadPage(context.Background(), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read on closed client: %v", err)
	}
	c.Close() // idempotent
}
