// Package volume implements the client side of Aurora's storage protocol:
// the storage volume as seen by the single writer instance. It maps pages
// onto protection groups, ships framed log batches to all six replicas of
// each PG, advances the Volume Durable LSN as write quorums are
// acknowledged, routes reads to individual segments known to be complete
// (no read quorums in the normal path), maintains the protection-group
// minimum read point for storage-side GC, and performs crash recovery with
// epoch-versioned truncation (§4).
package volume

import (
	"sync"

	"aurora/internal/core"
)

// ackWindow tracks which allocated LSNs have reached write quorum and
// derives the VDL: the highest CPL at or below the contiguous acked
// frontier. LSNs are allocated densely by the framer, so the frontier
// advances pointwise.
type ackWindow struct {
	mu       sync.Mutex
	frontier core.LSN // every LSN <= frontier has reached write quorum
	acked    map[core.LSN]struct{}
	cpls     lsnHeap
	vdl      core.LSN
}

// lsnHeap is a typed min-heap of LSNs. It deliberately avoids
// container/heap: the interface methods box every pushed and popped LSN,
// which costs one allocation per CPL on the commit hot path.
type lsnHeap []core.LSN

func (h *lsnHeap) push(x core.LSN) {
	s := append(*h, x)
	*h = s
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if s[p] <= s[i] {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *lsnHeap) pop() core.LSN {
	s := *h
	n := len(s) - 1
	x := s[0]
	s[0] = s[n]
	s = s[:n]
	*h = s
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[r] < s[l] {
			m = r
		}
		if s[i] <= s[m] {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return x
}

// newAckWindow starts a window with everything at or below start already
// durable (recovery seeds this with the recovered VDL).
func newAckWindow(start core.LSN) *ackWindow {
	return &ackWindow{
		frontier: start,
		acked:    make(map[core.LSN]struct{}),
		vdl:      start,
	}
}

// addCPL registers a framed MTR's consistency point.
func (w *ackWindow) addCPL(lsn core.LSN) {
	w.mu.Lock()
	w.cpls.push(lsn)
	w.mu.Unlock()
}

// addCPLs registers the consistency points of a framed group under one
// lock acquisition.
func (w *ackWindow) addCPLs(lsns []core.LSN) {
	w.mu.Lock()
	for _, lsn := range lsns {
		w.cpls.push(lsn)
	}
	w.mu.Unlock()
}

// markAcked records that the LSN range [first, last] reached write quorum
// and returns the new VDL (which may be unchanged).
func (w *ackWindow) markAcked(first, last core.LSN) core.LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	for l := first; l <= last; l++ {
		if l > w.frontier {
			w.acked[l] = struct{}{}
		}
	}
	for {
		if _, ok := w.acked[w.frontier+1]; !ok {
			break
		}
		delete(w.acked, w.frontier+1)
		w.frontier++
	}
	for len(w.cpls) > 0 && w.cpls[0] <= w.frontier {
		w.vdl = w.cpls.pop()
	}
	return w.vdl
}

// skipTo declares the range (frontier, to] abandoned — used when a write
// fails its quorum permanently and the volume is being torn down, so that
// observability does not report phantom outstanding writes.
func (w *ackWindow) skipTo(to core.LSN) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if to > w.frontier {
		w.frontier = to
	}
	for len(w.cpls) > 0 && w.cpls[0] <= w.frontier {
		lsn := w.cpls.pop()
		if lsn > w.vdl {
			w.vdl = lsn
		}
	}
}

// outstanding returns the number of acked-but-not-contiguous LSNs plus
// pending CPLs — a backlog signal.
func (w *ackWindow) outstanding() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.acked) + len(w.cpls)
}

// PGTailTracker tracks, per protection group, the highest record LSN that is at
// or below the VDL. This is the completeness the writer requires of a
// segment before routing a read to it: a segment whose SCL has reached the
// PG's durable tail holds every durable record of that PG, even when the
// volume-wide VDL (the read point) is far ahead because other PGs have been
// busier (§4.2.3).
type PGTailTracker struct {
	mu      sync.Mutex
	pending map[core.PGID][]core.LSN // framed record LSNs > last advance
	durable map[core.PGID]core.LSN
}

// NewPGTailTracker seeds the tracker (nil for a fresh volume).
func NewPGTailTracker(seed map[core.PGID]core.LSN) *PGTailTracker {
	d := make(map[core.PGID]core.LSN, len(seed))
	for pg, lsn := range seed {
		d[pg] = lsn
	}
	return &PGTailTracker{pending: make(map[core.PGID][]core.LSN), durable: d}
}

// AddMTR registers the record LSNs of one framed MTR. The framer stamps
// LSN and routed PG onto the MTR's records in place, ascending per PG in
// frame order, so feeding the tracker from the MTR is equivalent to feeding
// it from the per-PG batches — without materializing them.
func (t *PGTailTracker) AddMTR(m *core.MTR) {
	t.mu.Lock()
	t.addMTRLocked(m)
	t.mu.Unlock()
}

// AddMTRs registers a whole framed group under one lock acquisition.
func (t *PGTailTracker) AddMTRs(ms []*core.MTR) {
	t.mu.Lock()
	for _, m := range ms {
		t.addMTRLocked(m)
	}
	t.mu.Unlock()
}

func (t *PGTailTracker) addMTRLocked(m *core.MTR) {
	for i := range m.Records {
		r := &m.Records[i]
		t.pending[r.PG] = append(t.pending[r.PG], r.LSN)
	}
}

// Advance moves durable tails up to the new VDL.
func (t *PGTailTracker) Advance(vdl core.LSN) {
	t.mu.Lock()
	for pg, lsns := range t.pending {
		i := 0
		for i < len(lsns) && lsns[i] <= vdl {
			i++
		}
		if i > 0 {
			if lsns[i-1] > t.durable[pg] {
				t.durable[pg] = lsns[i-1]
			}
			// Compact in place instead of reslicing forward: keeping the
			// slice anchored preserves its append capacity, so steady-state
			// refills after each advance do not reallocate.
			n := copy(lsns, lsns[i:])
			t.pending[pg] = lsns[:n]
		}
	}
	t.mu.Unlock()
}

// DurableTail returns the completeness a read of the given PG requires.
func (t *PGTailTracker) DurableTail(pg core.PGID) core.LSN {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.durable[pg]
}

// readRegistry tracks outstanding read points (page reads and transaction
// read views). Its minimum is the volume's MRPL: the low-water mark below
// which no future read can be issued, which the writer gossips to storage
// nodes so they can coalesce and garbage collect (§4.2.3).
type readRegistry struct {
	mu     sync.Mutex
	next   int64
	points map[int64]core.LSN
	floor  core.LSN // monotonic published low-water mark
}

func newReadRegistry(start core.LSN) *readRegistry {
	return &readRegistry{points: make(map[int64]core.LSN), floor: start}
}

// register records an outstanding read point and returns a release func.
func (r *readRegistry) register(p core.LSN) func() {
	r.mu.Lock()
	id := r.next
	r.next++
	r.points[id] = p
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		delete(r.points, id)
		r.mu.Unlock()
	}
}

// lowWaterMark returns the MRPL given the current VDL: the minimum
// outstanding read point, or the VDL when no reads are outstanding. The
// result is monotonic.
func (r *readRegistry) lowWaterMark(vdl core.LSN) core.LSN {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := vdl
	for _, p := range r.points {
		if p < m {
			m = p
		}
	}
	if m > r.floor {
		r.floor = m
	}
	return r.floor
}
