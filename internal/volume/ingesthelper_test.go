package volume

import (
	"context"

	"aurora/internal/core"
	"aurora/internal/storage"
)

// nodeIngest wire-encodes one batch and drives it through the node's Ingest
// entry point the way a sender would, folding the per-batch result into the
// returned error. Tests use it to inject hand-built batches directly into a
// storage node.
func nodeIngest(n *storage.Node, b *core.Batch, vdl, mrpl core.LSN) (storage.Ack, error) {
	wire := b.AppendEncode(nil)
	v, _, err := core.ParseBatchView(wire)
	if err != nil {
		return storage.Ack{}, err
	}
	ack, results, err := n.Ingest(context.Background(), []core.BatchView{v}, vdl, mrpl, nil)
	if err != nil {
		return ack, err
	}
	if results[0].Err != nil {
		return ack, results[0].Err
	}
	return ack, nil
}
