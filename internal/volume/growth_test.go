package volume

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/netsim"
)

// TestGrowRoutesToNewPGs grows a quiet volume and verifies the geometry
// epoch advances, stripes land evenly, reads still return the right data,
// and the appended PGs actually serve reads (per-node IO counters).
func TestGrowRoutesToNewPGs(t *testing.T) {
	f, c := testVolume(t, 2)
	const pages = 200
	for i := 0; i < pages; i++ {
		writePage(t, c, core.PageID(i), fmt.Sprintf("v%03d", i))
	}
	e0 := f.Geometry().Epoch()

	rep, err := c.Grow(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.PGs(); got != 4 {
		t.Fatalf("PGs after grow: %d, want 4", got)
	}
	if len(rep.AddedPGs) != 2 || rep.AddedPGs[0] != 2 || rep.AddedPGs[1] != 3 {
		t.Fatalf("added PGs %v", rep.AddedPGs)
	}
	if rep.StripesMoved == 0 || rep.PagesCopied == 0 {
		t.Fatalf("no rebalancing happened: %+v", rep)
	}
	g := f.Geometry()
	if g.Epoch() <= e0+1 {
		t.Fatalf("epoch %d after grow from %d: no cutovers published", g.Epoch(), e0)
	}
	// Stripe distribution within one stripe of the mean.
	counts := make([]int, g.PGs())
	for s := 0; s < g.Stripes(); s++ {
		counts[g.StripePG(s)]++
	}
	base := g.Stripes() / g.PGs()
	for pg, n := range counts {
		if n < base || n > base+1 {
			t.Fatalf("pg %d holds %d stripes, want %d..%d", pg, n, base, base+1)
		}
	}
	// Every page still reads back its payload, and the new PGs serve reads.
	before := newPGReads(f)
	for i := 0; i < pages; i++ {
		p, _, err := c.ReadPage(context.Background(), core.PageID(i))
		if err != nil {
			t.Fatalf("page %d after grow: %v", i, err)
		}
		want := fmt.Sprintf("v%03d", i)
		if got := string(p.Payload()[:len(want)]); got != want {
			t.Fatalf("page %d after grow: %q, want %q", i, got, want)
		}
	}
	served := newPGReads(f) - before
	if served == 0 {
		t.Fatal("appended PGs served no reads after rebalance")
	}
	// A second growth is fine once the first finished.
	if _, err := c.Grow(1); err != nil {
		t.Fatal(err)
	}
	if f.PGs() != 5 {
		t.Fatalf("PGs after second grow: %d", f.PGs())
	}
	s := c.Stats()
	if s.WriteFailures != 0 {
		t.Fatalf("write failures during grow: %d", s.WriteFailures)
	}
	if s.PGs != 5 || s.GeometryEpoch != f.Geometry().Epoch() {
		t.Fatalf("stats out of sync: %+v", s)
	}
}

// newPGReads sums the read counters of PGs beyond the first two.
func newPGReads(f *Fleet) uint64 {
	var total uint64
	for g := 2; g < f.PGs(); g++ {
		for _, n := range f.Replicas(core.PGID(g)) {
			total += n.Reads()
		}
	}
	return total
}

// TestGrowUnderChaos grows the volume in the middle of a concurrent write/
// read workload with one gray-slow storage node. Invariants: zero failed
// commits, a monotone VDL, every write readable afterwards, and no read
// ever observing a stale-geometry page (the retry loop absorbs epoch
// nacks). Run with -race.
func TestGrowUnderChaos(t *testing.T) {
	f, c := testVolume(t, 2)

	// One replica of PG 0 turns gray: alive, acking, but slow.
	slow := f.Node(0, 1).NodeID()
	if err := f.Net().SetNodeDelay(slow, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer f.Net().SetNodeDelay(slow, 0)

	const (
		workers = 4
		pages   = 64
	)
	var (
		stop     atomic.Bool
		writes   atomic.Uint64
		writeErr atomic.Value
		seq      [pages]atomic.Uint64 // highest value written per page
		wg       sync.WaitGroup
	)
	worker := func(w int) {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			id := core.PageID((w*17 + i) % pages)
			v := writes.Add(1)
			m := &core.MTR{Txn: uint64(w + 1)}
			m.AddDelta(c.PGOf(id), id, 0, []byte(fmt.Sprintf("%012d", v)))
			if _, err := c.WriteMTR(context.Background(), m); err != nil {
				writeErr.Store(err)
				return
			}
			// Remember the highest value that reached this page; writes are
			// racing, so only monotone max is meaningful.
			for {
				cur := seq[id].Load()
				if v <= cur || seq[id].CompareAndSwap(cur, v) {
					break
				}
			}
			if i%7 == 0 {
				if _, _, err := c.ReadPage(context.Background(), id); err != nil {
					writeErr.Store(fmt.Errorf("read during grow: %w", err))
					return
				}
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go worker(w)
	}

	// VDL monotonicity watcher.
	var vdlViolation atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := c.VDL()
		for !stop.Load() {
			v := c.VDL()
			if v < last {
				vdlViolation.Store(true)
				return
			}
			last = v
			time.Sleep(100 * time.Microsecond)
		}
	}()

	time.Sleep(5 * time.Millisecond) // let the workload warm up
	rep, err := c.Grow(2)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // workload continues on the new geometry
	stop.Store(true)
	wg.Wait()

	if e := writeErr.Load(); e != nil {
		t.Fatalf("workload error during grow: %v", e)
	}
	if vdlViolation.Load() {
		t.Fatal("VDL went backwards during grow")
	}
	if f.PGs() != 4 || rep.StripesMoved == 0 {
		t.Fatalf("grow incomplete: pgs=%d rep=%+v", f.PGs(), rep)
	}
	s := c.Stats()
	if s.WriteFailures != 0 {
		t.Fatalf("%d failed commits during grow", s.WriteFailures)
	}
	// Every page reads back the newest value the workload recorded for it —
	// nothing was lost across the cutovers.
	for id := 0; id < pages; id++ {
		want := seq[id].Load()
		if want == 0 {
			continue
		}
		p, _, err := c.ReadPage(context.Background(), core.PageID(id))
		if err != nil {
			t.Fatalf("page %d after chaos grow: %v", id, err)
		}
		var got uint64
		if _, err := fmt.Sscanf(string(p.Payload()[:12]), "%d", &got); err != nil {
			t.Fatalf("page %d payload %q", id, p.Payload()[:12])
		}
		if got < want {
			t.Fatalf("page %d lost a write: read %d, newest %d", id, got, want)
		}
	}
}

// TestGrowRejectsConcurrentGrowth: only one growth at a time.
func TestGrowRejectsConcurrentGrowth(t *testing.T) {
	_, c := testVolume(t, 1)
	if !c.growing.CompareAndSwap(false, true) {
		t.Fatal("fresh client claims growth in progress")
	}
	if _, err := c.Grow(1); !errors.Is(err, ErrGrowthInProgress) {
		t.Fatalf("concurrent grow: %v", err)
	}
	c.growing.Store(false)
	if _, err := c.Grow(0); err == nil {
		t.Fatal("grow by zero accepted")
	}
}

// TestGrowPersistsGeometryForRestore: grow, write, back up, then restore at
// a point after the growth — the restored volume must provision the grown
// PG count, route with the grown geometry, and serve the data. A restore
// point before the growth yields the original geometry.
func TestGrowPersistsGeometryForRestore(t *testing.T) {
	f, c, store, setClock := pitrStack(t)
	const pages = 80
	for i := 0; i < pages; i++ {
		writePage(t, c, core.PageID(i), fmt.Sprintf("g%03d", i))
	}
	setClock(time.Unix(2000, 0))
	backupAll(t, f)

	// Grow at t=3000; the manifest versions carry the cutover epochs.
	setClock(time.Unix(3000, 0))
	if _, err := c.Grow(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		writePage(t, c, core.PageID(i), fmt.Sprintf("G%03d", i))
	}
	setClock(time.Unix(4000, 0))
	backupAll(t, f)

	// Restore after the growth: grown geometry, grown data.
	net2 := netsim.New(netsim.FastLocal())
	restored, rrep, err := RestoreFleet(FleetConfig{
		Name: "pitr", Geometry: core.UniformGeometry(2), Net: net2,
		Disk: disk.FastLocal(), Store: store,
	}, time.Unix(4500, 0))
	if err != nil {
		t.Fatal(err)
	}
	if restored.PGs() != 4 || rrep.PGs != 4 {
		t.Fatalf("restored volume has %d PGs (report %d), want 4", restored.PGs(), rrep.PGs)
	}
	if rrep.GeometryEpoch != f.Geometry().Epoch() {
		t.Fatalf("restored geometry epoch %d, source %d", rrep.GeometryEpoch, f.Geometry().Epoch())
	}
	c2, _, err := Recover(context.Background(), restored, ClientConfig{WriterNode: "rw", WriterAZ: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < pages; i++ {
		p, _, err := c2.ReadPage(context.Background(), core.PageID(i))
		if err != nil {
			t.Fatalf("restored page %d: %v", i, err)
		}
		want := fmt.Sprintf("G%03d", i)
		if got := string(p.Payload()[:len(want)]); got != want {
			t.Fatalf("restored page %d: %q, want %q", i, got, want)
		}
	}

	// Restore before the growth: the original 2-PG geometry and v1 data.
	net3 := netsim.New(netsim.FastLocal())
	old, orep, err := RestoreFleet(FleetConfig{
		Name: "pitr", Geometry: core.UniformGeometry(2), Net: net3,
		Disk: disk.FastLocal(), Store: store,
	}, time.Unix(2500, 0))
	if err != nil {
		t.Fatal(err)
	}
	if old.PGs() != 2 || orep.PGs != 2 {
		t.Fatalf("pre-grow restore has %d PGs, want 2", old.PGs())
	}
	c3, _, err := Recover(context.Background(), old, ClientConfig{WriterNode: "ow", WriterAZ: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	p, _, err := c3.ReadPage(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:4]); got != "g005" {
		t.Fatalf("pre-grow restore page 5: %q", got)
	}
}

// TestGrowSnapshotReadsRouteOldPG: a read point registered before a
// cutover keeps routing to the stripe's old PG via the geometry history.
func TestGrowSnapshotReadsRouteOldPG(t *testing.T) {
	f, c := testVolume(t, 1)
	writePage(t, c, 3, "before")
	snap, release := c.RegisterReadPoint()
	defer release()

	if _, err := c.Grow(1); err != nil {
		t.Fatal(err)
	}
	writePage(t, c, 3, "after!")

	// The snapshot routes with the pre-grow geometry...
	if pg := f.PGOfAt(3, snap); pg != 0 {
		t.Fatalf("snapshot read of page 3 routed to pg %d", pg)
	}
	// ...and still sees the old content.
	p, err := c.ReadPageAt(context.Background(), 3, snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:6]); got != "before" {
		t.Fatalf("snapshot read after cutover: %q", got)
	}
	// A fresh read sees the new write, wherever the stripe lives now.
	p, _, err = c.ReadPage(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:6]); got != "after!" {
		t.Fatalf("current read after cutover: %q", got)
	}
}
