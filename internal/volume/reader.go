package volume

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"aurora/internal/core"
	"aurora/internal/netsim"
	"aurora/internal/page"
	"aurora/internal/trace"
)

// ErrReaderClosed is returned by reads on a closed Reader.
var ErrReaderClosed = errors.New("volume: reader closed")

// Reader is a read-only attachment to a fleet, used by read replicas. A
// replica learns the per-PG durable tails from the writer's log stream, so
// it passes the completeness requirement explicitly.
type Reader struct {
	fleet *Fleet
	node  netsim.NodeID

	// ctx bounds the reader's lifetime: Close cancels it, which unwinds
	// every in-flight hedged attempt before the node leaves the network.
	ctx    context.Context
	cancel context.CancelFunc
	mu     sync.Mutex
	wg     sync.WaitGroup
	closed bool
}

// NewReader registers a read-only consumer of the volume on the network.
func NewReader(f *Fleet, node netsim.NodeID, az netsim.AZ) *Reader {
	f.cfg.Net.AddNode(node, az)
	ctx, cancel := context.WithCancel(context.Background())
	return &Reader{fleet: f, node: node, ctx: ctx, cancel: cancel}
}

// PinReadPoint registers the oldest view this reader may still serve with
// the fleet. The writer folds the minimum over all readers into its MRPL,
// so storage GC never collects a version a replica could request (§4.2.3).
// Pins are monotone: the reader advances its pin as its applied view moves.
func (r *Reader) PinReadPoint(lsn core.LSN) {
	r.fleet.setReaderPoint(r.node, lsn)
}

// ReadPageAt fetches the version of a page as of readPoint from a single
// segment whose SCL covers required. Candidates are ordered by health score
// (healthy before gray) and AZ locality, and the attempt is hedged: when
// the best replica overruns the PG's latency-derived deadline, the next is
// raced against it — a slow-but-alive segment must not stall the replica's
// read path (§4.2.3). A response lost after a successful segment read is
// counted distinctly (RespDrops) — the page was served, the network ate it.
// ctx cancellation abandons the read; a sampled span carried in ctx gets
// each hedged attempt as a child.
func (r *Reader) ReadPageAt(ctx context.Context, id core.PageID, readPoint, required core.LSN) (page.Page, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrReaderClosed
	}
	r.wg.Add(1)
	r.mu.Unlock()
	defer r.wg.Done()
	// Join the caller's deadline with the reader's lifetime: either one
	// canceling unwinds the hedged attempts below.
	rctx, rcancel := context.WithCancel(ctx)
	defer rcancel()
	stop := context.AfterFunc(r.ctx, rcancel)
	defer stop()

	sp := trace.FromContext(ctx)
	// Route through the geometry in force at the read point: across a live
	// stripe cutover a replica's snapshot reads keep going to the PG that
	// holds the page's history (see Fleet.PGOfAt).
	curEpoch := r.fleet.Geometry().Epoch()
	pg := r.fleet.PGOfAt(id, readPoint)
	if r.fleet.q.Split() && readPoint < required {
		// Same relaxation as the writer's read path: under a role split the
		// page tier trails the tail by design, and completeness through the
		// read point is sufficient for a version materialized at it.
		required = readPoint
	}
	replicas := r.fleet.Replicas(pg)
	myAZ, _ := r.fleet.cfg.Net.NodeAZ(r.node)
	order := r.fleet.health.Order(pg, replicas, myAZ)
	// Log-tier replicas hold redo, not pages (Taurus split): replica reads
	// route to the page tier only, same as the writer's read path.
	cands := make([]int, 0, len(order))
	for _, i := range order {
		if replicas[i].Role() == core.RoleLog {
			continue
		}
		cands = append(cands, i)
	}
	p, err := r.fleet.health.runHedged(rctx, pg, cands, func(actx context.Context, i int, hedged bool) (page.Page, error) {
		n := replicas[i]
		asp := sp.Child("read.attempt")
		asp.Annotate("replica", i)
		asp.Annotate("node", n.NodeID())
		if hedged {
			asp.Annotate("hedge", true)
		}
		if err := sendHop(actx, r.fleet.cfg.Net, asp, "net.req", r.node, n.NodeID(), reqSize); err != nil {
			asp.Annotate("err", err)
			asp.End()
			return nil, err
		}
		ssp := asp.Child("storage.read")
		p, err := n.ReadPageChecked(actx, id, readPoint, required, curEpoch)
		ssp.End()
		if err != nil {
			asp.Annotate("err", err)
			asp.End()
			return nil, err
		}
		if err := sendHop(actx, r.fleet.cfg.Net, asp, "net.resp", n.NodeID(), r.node, page.Size); err != nil {
			if !errors.Is(err, context.Canceled) {
				r.fleet.health.respDrops.Inc()
			}
			asp.Annotate("err", err)
			asp.End()
			return nil, err
		}
		asp.End()
		return p, nil
	})
	if err != nil {
		return nil, fmt.Errorf("reader %s page %d at %d: %w", r.node, id, readPoint, err)
	}
	return p, nil
}

// Close detaches the reader: new reads are refused, in-flight hedged
// attempts are canceled and drained, the read-point pin is released (so the
// writer's GC floor can advance past this replica's view), and only then
// does the node leave the network.
func (r *Reader) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	r.cancel()
	r.wg.Wait()
	r.fleet.unregisterReader(r.node)
	r.fleet.cfg.Net.RemoveNode(r.node)
}
