package volume

import (
	"fmt"

	"aurora/internal/core"
	"aurora/internal/netsim"
	"aurora/internal/page"
)

// Reader is a read-only attachment to a fleet, used by read replicas. A
// replica learns the per-PG durable tails from the writer's log stream, so
// it passes the completeness requirement explicitly.
type Reader struct {
	fleet *Fleet
	node  netsim.NodeID
}

// NewReader registers a read-only consumer of the volume on the network.
func NewReader(f *Fleet, node netsim.NodeID, az netsim.AZ) *Reader {
	f.cfg.Net.AddNode(node, az)
	return &Reader{fleet: f, node: node}
}

// ReadPageAt fetches the version of a page as of readPoint from a single
// segment whose SCL covers required, preferring same-AZ replicas.
func (r *Reader) ReadPageAt(id core.PageID, readPoint, required core.LSN) (page.Page, error) {
	pg := r.fleet.PGOf(id)
	replicas := r.fleet.Replicas(pg)
	myAZ, _ := r.fleet.cfg.Net.NodeAZ(r.node)
	order := make([]int, 0, len(replicas))
	var far []int
	for i, n := range replicas {
		if n.AZ() == myAZ {
			order = append(order, i)
		} else {
			far = append(far, i)
		}
	}
	order = append(order, far...)
	var lastErr error = ErrReadUnavailable
	for _, i := range order {
		n := replicas[i]
		if n.Down() {
			continue
		}
		if err := r.fleet.cfg.Net.Send(r.node, n.NodeID(), reqSize); err != nil {
			lastErr = err
			continue
		}
		p, err := n.ReadPage(id, readPoint, required)
		if err != nil {
			lastErr = err
			continue
		}
		if err := r.fleet.cfg.Net.Send(n.NodeID(), r.node, page.Size); err != nil {
			lastErr = err
			continue
		}
		return p, nil
	}
	return nil, fmt.Errorf("reader %s page %d at %d: %w", r.node, id, readPoint, lastErr)
}

// Close removes the reader from the network.
func (r *Reader) Close() { r.fleet.cfg.Net.RemoveNode(r.node) }
