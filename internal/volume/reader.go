package volume

import (
	"fmt"

	"aurora/internal/core"
	"aurora/internal/netsim"
	"aurora/internal/page"
)

// Reader is a read-only attachment to a fleet, used by read replicas. A
// replica learns the per-PG durable tails from the writer's log stream, so
// it passes the completeness requirement explicitly.
type Reader struct {
	fleet *Fleet
	node  netsim.NodeID
}

// NewReader registers a read-only consumer of the volume on the network.
func NewReader(f *Fleet, node netsim.NodeID, az netsim.AZ) *Reader {
	f.cfg.Net.AddNode(node, az)
	return &Reader{fleet: f, node: node}
}

// ReadPageAt fetches the version of a page as of readPoint from a single
// segment whose SCL covers required. Candidates are ordered by health score
// (healthy before gray) and AZ locality, and the attempt is hedged: when
// the best replica overruns the PG's latency-derived deadline, the next is
// raced against it — a slow-but-alive segment must not stall the replica's
// read path (§4.2.3). A response lost after a successful segment read is
// counted distinctly (RespDrops) — the page was served, the network ate it.
func (r *Reader) ReadPageAt(id core.PageID, readPoint, required core.LSN) (page.Page, error) {
	// Route through the geometry in force at the read point: across a live
	// stripe cutover a replica's snapshot reads keep going to the PG that
	// holds the page's history (see Fleet.PGOfAt).
	curEpoch := r.fleet.Geometry().Epoch()
	pg := r.fleet.PGOfAt(id, readPoint)
	replicas := r.fleet.Replicas(pg)
	myAZ, _ := r.fleet.cfg.Net.NodeAZ(r.node)
	cands := r.fleet.health.Order(pg, replicas, myAZ)
	p, err := r.fleet.health.runHedged(pg, cands, func(i int, _ bool) (page.Page, error) {
		n := replicas[i]
		if err := r.fleet.cfg.Net.Send(r.node, n.NodeID(), reqSize); err != nil {
			return nil, err
		}
		p, err := n.ReadPageChecked(id, readPoint, required, curEpoch)
		if err != nil {
			return nil, err
		}
		if err := r.fleet.cfg.Net.Send(n.NodeID(), r.node, page.Size); err != nil {
			r.fleet.health.respDrops.Inc()
			return nil, err
		}
		return p, nil
	})
	if err != nil {
		return nil, fmt.Errorf("reader %s page %d at %d: %w", r.node, id, readPoint, err)
	}
	return p, nil
}

// Close removes the reader from the network.
func (r *Reader) Close() { r.fleet.cfg.Net.RemoveNode(r.node) }
