package volume

import (
	"context"
	"errors"
	"fmt"
	"time"

	"aurora/internal/core"
	"aurora/internal/storage"
)

// ErrQuorumLost is returned when a protection group cannot assemble a read
// quorum during recovery — the volume's durability cannot be proven.
var ErrQuorumLost = errors.New("volume: read quorum unavailable during recovery")

// RecoveryReport describes what a volume recovery found and did. Aurora's
// recovery never replays redo at the database: redo application lives on
// the storage nodes and runs continuously, so recovery only has to
// re-establish the durable points and truncate the uncommitted tail (§4.3).
type RecoveryReport struct {
	VCL        core.LSN // highest LSN with all prior records available
	VDL        core.LSN // highest CPL <= VCL; volume truncated above this
	UpperBound core.LSN // provable bound on outstanding LSNs (VDL + LAL)
	Epoch      uint64   // the new truncation epoch
	PGs        int
	Contacted  int // storage nodes that answered
	Duration   time.Duration
	Tails      map[core.PGID]core.LSN // per-PG chain tails after truncation
}

// Recover attaches a new writer to a fleet with history: it contacts a
// read quorum of every protection group, lets the storage service complete
// its own gossip-driven repair, computes the VCL and VDL, writes an
// epoch-versioned truncation range that annuls every record above the VDL
// up to the provable allocation bound, and seeds a fresh client whose LSN
// space begins above that bound so annulled LSNs are never reused (§4.1,
// §4.3). ctx bounds the whole recovery conversation — probes, truncation
// sends — so a caller can abandon a recovery stuck on a slow fleet.
func Recover(ctx context.Context, f *Fleet, cfg ClientConfig) (*Client, *RecoveryReport, error) {
	start := time.Now()
	lal := cfg.LAL
	if lal <= 0 {
		lal = core.DefaultLAL
	}
	// The new writer must exist on the network before it can probe.
	f.cfg.Net.AddNode(cfg.WriterNode, cfg.WriterAZ)

	rep := &RecoveryReport{PGs: f.PGs(), Tails: make(map[core.PGID]core.LSN)}

	type pgState struct {
		reachable []*storage.Node
		scl       core.LSN
		highest   core.LSN
	}
	states := make([]pgState, f.PGs())
	var maxEpoch uint64

	// Pass 1: contact a read quorum per PG and let storage self-repair.
	for g := 0; g < f.PGs(); g++ {
		pg := core.PGID(g)
		var reachable []*storage.Node
		for _, n := range f.Replicas(pg) {
			if n.Down() || f.cfg.Net.NodeDown(n.NodeID()) {
				continue
			}
			// A recovery probe must actually cross the network.
			if err := f.cfg.Net.Send(ctx, cfg.WriterNode, n.NodeID(), reqSize); err != nil {
				if ctx.Err() != nil {
					return nil, nil, fmt.Errorf("volume: recovery abandoned: %w", ctx.Err())
				}
				continue
			}
			reachable = append(reachable, n)
		}
		if f.q.Split() {
			// Role-split quorum: durability is proven by the log tier alone
			// (acks wait only on LogVw of LogV), so recovery needs a log-tier
			// read quorum — LogVr log replicas — plus at least one
			// page-capable replica to serve materialized history afterwards.
			logUp, pageUp := 0, 0
			for _, n := range reachable {
				if n.Role() == core.RoleLog {
					logUp++
				} else {
					pageUp++
				}
			}
			if logUp < f.q.LogVr || pageUp < 1 {
				return nil, nil, fmt.Errorf("pg %d: %d/%d log replicas (need %d), %d page replicas (need 1): %w",
					g, logUp, f.q.LogV, f.q.LogVr, pageUp, ErrQuorumLost)
			}
		} else if len(reachable) < f.q.Vr {
			return nil, nil, fmt.Errorf("pg %d: %d of %d reachable, need %d: %w",
				g, len(reachable), f.q.V, f.q.Vr, ErrQuorumLost)
		}
		rep.Contacted += len(reachable)
		// The storage service completes its own recovery first: gossip
		// until the reachable replicas agree (§4.1).
		storage.SyncGroup(reachable)
		st := pgState{reachable: reachable}
		for _, n := range reachable {
			if s := n.SCL(); s > st.scl {
				st.scl = s
			}
			if h := n.HighestLSN(); h > st.highest {
				st.highest = h
			}
			if e := n.TruncationEpoch(); e > maxEpoch {
				maxEpoch = e
			}
		}
		states[g] = st
	}

	// Pass 2: compute the VCL. A PG whose replicas hold records above their
	// completeness point has lost a predecessor forever (those records can
	// never have been acked — a write quorum would intersect our read
	// quorum) and caps the VCL at its SCL. PGs with clean chains impose no
	// cap: absence of a record from a read quorum proves it never reached a
	// write quorum.
	var vcl core.LSN
	for _, st := range states {
		if st.scl > vcl {
			vcl = st.scl
		}
	}
	for _, st := range states {
		if st.highest > st.scl && st.scl < vcl {
			vcl = st.scl
		}
	}
	rep.VCL = vcl

	// Pass 3: VDL = highest CPL at or below the VCL, across all PGs.
	var vdl core.LSN
	for _, st := range states {
		for _, n := range st.reachable {
			if c := n.HighestCPLAtOrBelow(vcl); c > vdl {
				vdl = c
			}
		}
	}
	rep.VDL = vdl
	upper := vdl + core.LSN(lal)
	rep.UpperBound = upper
	rep.Epoch = maxEpoch + 1

	// Pass 4: truncate (VDL, upper] everywhere, durably and epoch-guarded,
	// so an interrupted-and-restarted recovery cannot resurrect the tail.
	tr := core.TruncationRange{Epoch: rep.Epoch, From: vdl, To: upper}
	for g := range states {
		for _, n := range states[g].reachable {
			if err := f.cfg.Net.Send(ctx, cfg.WriterNode, n.NodeID(), reqSize); err != nil {
				if ctx.Err() != nil {
					return nil, nil, fmt.Errorf("volume: recovery abandoned: %w", ctx.Err())
				}
				continue
			}
			if err := n.Truncate(tr); err != nil {
				return nil, nil, fmt.Errorf("pg %d truncate: %w", g, err)
			}
		}
	}

	// Pass 5: chain tails per PG (equal across reachable replicas after
	// sync + truncation) seed the framer's backlinks and read routing.
	tails := make(map[core.PGID]core.LSN, f.PGs())
	for g := range states {
		var tail core.LSN
		for _, n := range states[g].reachable {
			if s := n.SCL(); s > tail {
				tail = s
			}
		}
		if tail > core.ZeroLSN {
			tails[core.PGID(g)] = tail
		}
		rep.Tails[core.PGID(g)] = tail
	}

	// The new LSN space begins above the provable bound: LSNs in the
	// annulled range are never reused, so a replica that slept through
	// recovery can never confuse an old record with a new one.
	c := newClient(f, cfg, upper, tails, rep.Epoch)
	rep.Duration = time.Since(start)
	return c, rep, nil
}
