package volume

import (
	"context"
	"testing"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/netsim"
)

// BenchmarkCommitSteadyStateAllocs drives the full commit hot path — group
// framing into the arena, wire shipping to all six replicas, quorum ack,
// VDL wait, arena recycle — and reports allocations per record. The group
// shape (128 MTRs x 4 records) matches a loaded commit pipeline, where the
// per-group fixed costs (GroupWrite shell, per-batch trackers and watcher
// goroutines, durability channel) amortize across 512 records.
func BenchmarkCommitSteadyStateAllocs(b *testing.B) {
	const mtrs, recsPerMTR = 128, 4
	net := netsim.New(netsim.FastLocal())
	f, err := NewFleet(FleetConfig{Name: "bench", Geometry: core.UniformGeometry(2), Net: net, Disk: disk.FastLocal()})
	if err != nil {
		b.Fatal(err)
	}
	c := Bootstrap(f, ClientConfig{WriterNode: "writer", WriterAZ: 0})
	b.Cleanup(c.Close)

	ms := make([]*core.MTR, mtrs)
	payload := make([]byte, 48)
	for i := range ms {
		m := &core.MTR{Txn: uint64(i + 1)}
		for j := 0; j < recsPerMTR; j++ {
			m.AddDelta(0, core.PageID(i*recsPerMTR+j), 0, payload)
		}
		ms[i] = m
	}
	ctx := context.Background()

	commitGroup := func() {
		gw, err := c.FrameMTRs(ctx, ms)
		if err != nil {
			b.Fatal(err)
		}
		if err := gw.Ship(ctx); err != nil {
			b.Fatal(err)
		}
		c.WaitDurable(gw.MaxCPL())
		gw.Release()
	}
	commitGroup() // warm the pools before measuring

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		commitGroup()
	}
	b.StopTimer()
	b.ReportMetric(float64(mtrs*recsPerMTR), "records/op")
}

// TestCommitSteadyStateAllocs pins the hot path at under one allocation per
// record (i.e. 0 allocs/record once truncated to an integer): the wire
// image, CRC, and ship path must not allocate per record, only the small
// per-group fixed overhead remains. A regression here fails plain
// `go test`, not just a benchmark run.
func TestCommitSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation pin needs the full benchmark loop")
	}
	res := testing.Benchmark(BenchmarkCommitSteadyStateAllocs)
	const recordsPerOp = 128 * 4
	perRecord := float64(res.AllocsPerOp()) / recordsPerOp
	t.Logf("commit steady state: %d allocs/op over %d records = %.3f allocs/record",
		res.AllocsPerOp(), recordsPerOp, perRecord)
	if perRecord >= 1.0 {
		t.Fatalf("commit hot path allocates %.2f times per record, want < 1 (0 per record after amortization)", perRecord)
	}
}
