package volume

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/netsim"
	"aurora/internal/objstore"
)

// pitrStack builds a fleet with an object store and a controllable clock.
func pitrStack(t *testing.T) (*Fleet, *Client, *objstore.Store, func(time.Time)) {
	t.Helper()
	net := netsim.New(netsim.FastLocal())
	store := objstore.New()
	now := time.Unix(1000, 0)
	store.SetClock(func() time.Time { return now })
	f, err := NewFleet(FleetConfig{Name: "pitr", Geometry: core.UniformGeometry(2), Net: net, Disk: disk.FastLocal(), Store: store})
	if err != nil {
		t.Fatal(err)
	}
	c := Bootstrap(f, ClientConfig{WriterNode: "writer", WriterAZ: 0})
	t.Cleanup(c.Close)
	return f, c, store, func(tt time.Time) { now = tt }
}

func backupAll(t *testing.T, f *Fleet) {
	t.Helper()
	for g := 0; g < f.PGs(); g++ {
		for _, n := range f.Replicas(core.PGID(g)) {
			if v := n.BackupNow(); v == 0 {
				t.Fatal("backup failed")
			}
		}
	}
}

func TestPointInTimeRestore(t *testing.T) {
	f, c, store, setClock := pitrStack(t)

	// Epoch 1: write v1 everywhere, back up at t=2000.
	for i := 0; i < 10; i++ {
		writePage(t, c, core.PageID(i), fmt.Sprintf("v1-%02d", i))
	}
	setClock(time.Unix(2000, 0))
	backupAll(t, f)

	// Epoch 2: overwrite with v2, back up at t=3000.
	for i := 0; i < 10; i++ {
		writePage(t, c, core.PageID(i), fmt.Sprintf("v2-%02d", i))
	}
	setClock(time.Unix(3000, 0))
	backupAll(t, f)

	// Restore as of t=2500: must see v1, not v2.
	net2 := netsim.New(netsim.FastLocal())
	restored, rep, err := RestoreFleet(FleetConfig{
		Name: "pitr", Geometry: core.UniformGeometry(2), Net: net2, Disk: disk.FastLocal(), Store: store,
	}, time.Unix(2500, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments != 12 {
		t.Fatalf("restored %d segments, want 12", rep.Segments)
	}
	c2, rrep, err := Recover(context.Background(), restored, ClientConfig{WriterNode: "restored-writer", WriterAZ: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if rrep.VDL == 0 {
		t.Fatal("restored volume has no durable point")
	}
	for i := 0; i < 10; i++ {
		p, _, err := c2.ReadPage(context.Background(), core.PageID(i))
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		want := fmt.Sprintf("v1-%02d", i)
		if got := string(p.Payload()[:len(want)]); got != want {
			t.Fatalf("page %d after PITR: %q, want %q", i, got, want)
		}
	}
	// The restored volume is writable and independent of the source.
	writePage(t, c2, 0, "post-restore")
	p, _, err := c.ReadPage(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:2]); got != "v2" {
		t.Fatalf("source volume changed by restore: %q", got)
	}
}

func TestRestoreAtLatestSeesNewest(t *testing.T) {
	f, c, store, setClock := pitrStack(t)
	writePage(t, c, 0, "old")
	setClock(time.Unix(2000, 0))
	backupAll(t, f)
	writePage(t, c, 0, "new")
	setClock(time.Unix(3000, 0))
	backupAll(t, f)

	net2 := netsim.New(netsim.FastLocal())
	restored, _, err := RestoreFleet(FleetConfig{
		Name: "pitr", Geometry: core.UniformGeometry(2), Net: net2, Disk: disk.FastLocal(), Store: store,
	}, time.Unix(9999, 0))
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := Recover(context.Background(), restored, ClientConfig{WriterNode: "w2", WriterAZ: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	p, _, err := c2.ReadPage(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:3]); got != "new" {
		t.Fatalf("latest restore payload %q", got)
	}
}

func TestRestoreBeforeAnyBackupFails(t *testing.T) {
	f, c, store, setClock := pitrStack(t)
	writePage(t, c, 0, "x")
	setClock(time.Unix(2000, 0))
	backupAll(t, f)

	net2 := netsim.New(netsim.FastLocal())
	_, _, err := RestoreFleet(FleetConfig{
		Name: "pitr", Geometry: core.UniformGeometry(2), Net: net2, Disk: disk.FastLocal(), Store: store,
	}, time.Unix(500, 0))
	if !errors.Is(err, ErrNoBackup) {
		t.Fatalf("restore before first backup: %v", err)
	}
}

func TestRestoreRepairsMissingReplicas(t *testing.T) {
	f, c, store, setClock := pitrStack(t)
	for i := 0; i < 6; i++ {
		writePage(t, c, core.PageID(i), fmt.Sprintf("d%d", i))
	}
	setClock(time.Unix(2000, 0))
	// Back up only four replicas of each PG: restore must repair the rest
	// from the restored peers.
	for g := 0; g < f.PGs(); g++ {
		for r := 0; r < 4; r++ {
			if v := f.Node(core.PGID(g), r).BackupNow(); v == 0 {
				t.Fatal("backup failed")
			}
		}
	}
	net2 := netsim.New(netsim.FastLocal())
	restored, rep, err := RestoreFleet(FleetConfig{
		Name: "pitr", Geometry: core.UniformGeometry(2), Net: net2, Disk: disk.FastLocal(), Store: store,
	}, time.Unix(2500, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments != 8 {
		t.Fatalf("loaded %d from backups, want 8", rep.Segments)
	}
	// Every replica — including the repaired ones — is whole.
	for g := 0; g < restored.PGs(); g++ {
		for r := 0; r < 6; r++ {
			if restored.Node(core.PGID(g), r).SCL() == 0 {
				t.Fatalf("pg %d replica %d empty after restore+repair", g, r)
			}
		}
	}
	c2, _, err := Recover(context.Background(), restored, ClientConfig{WriterNode: "w2", WriterAZ: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	p, _, err := c2.ReadPage(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:2]); got != "d3" {
		t.Fatalf("payload %q", got)
	}
}

func TestRestoreRequiresStore(t *testing.T) {
	net := netsim.New(netsim.FastLocal())
	if _, _, err := RestoreFleet(FleetConfig{Name: "x", Geometry: core.UniformGeometry(1), Net: net}, time.Now()); err == nil {
		t.Fatal("restore without store accepted")
	}
}

// TestRestoreChecksummedHistory is the integrity contract behind PITR:
// write three epochs of seeded random payloads, record every page's
// SHA-256 per epoch, back each epoch up, then restore each point in time
// and require byte-identical payloads — not just recognizable prefixes.
// The middle restore additionally corrupts a base image on one replica of
// the restored fleet and requires the read path to keep serving clean
// bytes (the CRC gate refuses the bad image, hedging serves a peer) until
// the scrubber repairs it.
func TestRestoreChecksummedHistory(t *testing.T) {
	f, c, store, setClock := pitrStack(t)
	const pages = 8
	rng := rand.New(rand.NewSource(77))
	var digests []map[core.PageID][sha256.Size]byte
	var asOf []time.Time
	for epoch := 0; epoch < 3; epoch++ {
		for p := 0; p < pages; p++ {
			buf := make([]byte, 600)
			rng.Read(buf)
			m := &core.MTR{Txn: uint64(epoch*pages + p + 1)}
			m.AddDelta(c.PGOf(core.PageID(p)), core.PageID(p), 0, buf)
			if _, err := c.WriteMTR(context.Background(), m); err != nil {
				t.Fatal(err)
			}
		}
		digs := map[core.PageID][sha256.Size]byte{}
		for p := 0; p < pages; p++ {
			pg, _, err := c.ReadPage(context.Background(), core.PageID(p))
			if err != nil {
				t.Fatal(err)
			}
			digs[core.PageID(p)] = sha256.Sum256(pg.Payload())
		}
		digests = append(digests, digs)
		stamp := time.Unix(int64(2000+1000*epoch), 0)
		setClock(stamp)
		backupAll(t, f)
		asOf = append(asOf, stamp.Add(500*time.Second))
	}

	for epoch := 0; epoch < 3; epoch++ {
		restored, _, err := RestoreFleet(FleetConfig{
			Name: "pitr", Geometry: core.UniformGeometry(2), Net: netsim.New(netsim.FastLocal()),
			Disk: disk.FastLocal(), Store: store,
		}, asOf[epoch])
		if err != nil {
			t.Fatalf("epoch %d restore: %v", epoch, err)
		}
		c2, _, err := Recover(context.Background(), restored, ClientConfig{WriterNode: "cw", WriterAZ: 0})
		if err != nil {
			t.Fatalf("epoch %d recover: %v", epoch, err)
		}
		verify := func(p core.PageID) {
			t.Helper()
			pg, _, err := c2.ReadPage(context.Background(), p)
			if err != nil {
				t.Fatalf("epoch %d page %d: %v", epoch, p, err)
			}
			if sha256.Sum256(pg.Payload()) != digests[epoch][p] {
				t.Fatalf("epoch %d page %d: restored bytes differ from the epoch's digest", epoch, p)
			}
		}
		for p := 0; p < pages; p++ {
			verify(core.PageID(p))
		}
		if epoch == 1 {
			// Freshen PGMRPL on page 0's PG with a scratch write outside the
			// digest set, so the victim can materialize a base to corrupt.
			m := &core.MTR{Txn: 999}
			scratch := core.PageID(pages + int(restored.PGs()))
			for c2.PGOf(scratch) != c2.PGOf(0) {
				scratch++
			}
			m.AddDelta(c2.PGOf(scratch), scratch, 0, []byte("scratch"))
			if _, err := c2.WriteMTR(context.Background(), m); err != nil {
				t.Fatal(err)
			}
			victim := restored.Node(restored.PGOf(0), 0)
			victim.CoalesceOnce()
			if !victim.CorruptPage(0) {
				t.Fatal("no base image materialized to corrupt")
			}
			verify(0) // clean bytes despite the corrupt replica: gate + peers
			if bad := victim.ScrubOnce(); bad < 1 {
				t.Fatalf("scrub found %d corrupt pages, want >= 1", bad)
			}
			verify(0) // and clean after repair, now from the victim itself too
		}
		c2.Close()
	}
}
