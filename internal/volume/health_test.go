package volume

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/netsim"
	"aurora/internal/storage"
)

func TestHealthStateTransitions(t *testing.T) {
	h := newHealthTracker(HealthConfig{}, 1, 6)

	// Peers report normal latencies.
	for i := 1; i < 6; i++ {
		h.ObserveOK(0, i, 100*time.Microsecond)
	}
	if s := h.State(0, 0); s != Healthy {
		t.Fatalf("untouched replica: %v, want healthy", s)
	}

	// A short failure streak degrades; a long one makes the replica suspect.
	h.ObserveFailure(0, 0)
	if s := h.State(0, 0); s != Healthy {
		t.Fatalf("one failure: %v, want healthy", s)
	}
	h.ObserveFailure(0, 0)
	if s := h.State(0, 0); s != Degraded {
		t.Fatalf("two failures: %v, want degraded", s)
	}
	for i := 0; i < 3; i++ {
		h.ObserveFailure(0, 0)
	}
	if s := h.State(0, 0); s != Suspect {
		t.Fatalf("five failures: %v, want suspect", s)
	}

	// One success clears the streak: gray, not gone.
	h.ObserveOK(0, 0, 100*time.Microsecond)
	if s := h.State(0, 0); s != Healthy {
		t.Fatalf("after success: %v, want healthy", s)
	}

	// Gray-slow signature: success at a latency far above every peer.
	for i := 0; i < 20; i++ {
		h.ObserveOK(0, 0, 10*time.Millisecond)
	}
	if s := h.State(0, 0); s != Degraded {
		t.Fatalf("gray-slow replica: %v, want degraded", s)
	}
	// Peers at comparable latency are not penalized: an all-slow PG (e.g. a
	// cross-AZ view) classifies everyone healthy relative to each other.
	if s := h.State(0, 1); s != Healthy {
		t.Fatalf("normal peer: %v, want healthy", s)
	}
}

// TestWritesRideOutPacketLoss drops 15% of every message and expects the
// write path to absorb all of it through redelivery: zero failed writes,
// nonzero retries, no committed data lost (the gray network regime of the
// tentpole).
func TestWritesRideOutPacketLoss(t *testing.T) {
	net := netsim.New(netsim.FastLocal())
	f, err := NewFleet(FleetConfig{Name: "fl", Geometry: core.UniformGeometry(2), Net: net, Disk: disk.FastLocal()})
	if err != nil {
		t.Fatal(err)
	}
	c := Bootstrap(f, ClientConfig{WriterNode: "writer", WriterAZ: 0})
	t.Cleanup(c.Close)

	net.SetDropProb(0.15)
	var last core.LSN
	for i := 0; i < 96; i++ {
		last = writePage(t, c, core.PageID(i%8), fmt.Sprintf("v%03d", i))
	}
	net.SetDropProb(0)

	s := c.Stats()
	if s.WriteFailures != 0 {
		t.Fatalf("write failures under 15%% loss: %+v", s)
	}
	if s.WriteRetries == 0 {
		t.Fatal("no redeliveries recorded under 15% loss")
	}
	if c.VDL() != last {
		t.Fatalf("VDL %d, want %d", c.VDL(), last)
	}
	// Redeliveries dropped once the quorum resolved leave holes behind;
	// that is gossip's job (§3.3), so converge the fleet before reading.
	for pg := 0; pg < 2; pg++ {
		storage.SyncGroup(f.Replicas(core.PGID(pg)))
	}
	// Every page must read back as its final committed version.
	for i := 0; i < 8; i++ {
		p, _, err := c.ReadPage(context.Background(), core.PageID(i))
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		want := fmt.Sprintf("v%03d", 88+i)
		if got := string(p.Payload()[:4]); got != want {
			t.Fatalf("page %d: %q, want %q", i, got, want)
		}
	}
}

// TestRespDropCountedDistinctly kills only the response path from the
// best-ordered replica to a read-only attachment: the segment read succeeds
// on the node, the response vanishes, and that must be counted as RespDrops
// (a distinct failure mode) while the read itself still succeeds via the
// next candidate.
func TestRespDropCountedDistinctly(t *testing.T) {
	net := netsim.New(netsim.FastLocal())
	f, err := NewFleet(FleetConfig{Name: "rd", Geometry: core.UniformGeometry(1), Net: net, Disk: disk.FastLocal()})
	if err != nil {
		t.Fatal(err)
	}
	c := Bootstrap(f, ClientConfig{WriterNode: "writer", WriterAZ: 0})
	t.Cleanup(c.Close)
	writePage(t, c, 3, "page")

	r := NewReader(f, "replica-reader", 0)
	defer r.Close()

	// The reader sits in AZ0, so replicas 0 and 1 order first (same AZ;
	// write-path EWMAs pick which of the two leads). Break both of their
	// response paths: the segment reads succeed, the responses vanish, and
	// the read must fail over to a cross-AZ replica.
	net.SetLinkDropProb(f.Node(0, 0).NodeID(), "replica-reader", 1.0)
	net.SetLinkDropProb(f.Node(0, 1).NodeID(), "replica-reader", 1.0)

	p, err := r.ReadPageAt(context.Background(), 3, c.VDL(), c.VDL())
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got := string(p.Payload()[:4]); got != "page" {
		t.Fatalf("read %q, want %q", got, "page")
	}
	if drops := f.Health().Stats().RespDrops; drops == 0 {
		t.Fatal("lost response after successful segment read not counted as RespDrops")
	}
}

// TestHedgedReadBoundsTailLatency gray-slows both same-AZ replicas of a PG
// by 20ms — without hedging every read would stall on them, since locality
// orders them first. The deadline hedge must fail over to the cross-AZ
// replicas and keep the read p99 within 3x the healthy baseline (with a
// small absolute floor for simulation jitter).
func TestHedgedReadBoundsTailLatency(t *testing.T) {
	net := netsim.New(netsim.Datacenter())
	f, err := NewFleet(FleetConfig{Name: "hg", Geometry: core.UniformGeometry(1), Net: net, Disk: disk.FastLocal()})
	if err != nil {
		t.Fatal(err)
	}
	c := Bootstrap(f, ClientConfig{WriterNode: "writer", WriterAZ: 0})
	t.Cleanup(c.Close)
	for i := 0; i < 8; i++ {
		writePage(t, c, core.PageID(i), fmt.Sprintf("p%03d", i))
	}

	p99 := func(n int) time.Duration {
		lats := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			start := time.Now()
			if _, _, err := c.ReadPage(context.Background(), core.PageID(i%8)); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			lats = append(lats, time.Since(start))
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		return lats[len(lats)*99/100]
	}

	base := p99(100) // healthy baseline; also seeds the deadline estimator

	for _, idx := range []int{0, 1} { // both AZ0 replicas: locality's favorites
		if err := net.SetNodeDelay(f.Node(0, idx).NodeID(), 20*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	// The transient — reads hedged before the slow replicas' EWMAs catch up
	// and demote them — is a handful of reads at ~deadline latency; a wide
	// sample keeps p99 judging the steady state the tracker converges to.
	grayP99 := p99(1000)

	limit := 3 * base
	if floor := 3 * time.Millisecond; limit < floor {
		limit = floor
	}
	if grayP99 > limit {
		t.Fatalf("gray p99 %v exceeds limit %v (baseline %v)", grayP99, limit, base)
	}
	if hs := f.Health().Stats(); hs.Hedges == 0 {
		t.Fatal("no hedges launched while the preferred replicas were gray-slow")
	}
}

// TestMonitorAutoRepairsSuspect wipes a segment and lets the write path's
// failure streak push it to Suspect; one pass of the fleet's self-driven
// repair monitor must re-replicate it with no operator involvement.
func TestMonitorAutoRepairsSuspect(t *testing.T) {
	f, c := testVolume(t, 1)
	for i := 0; i < 4; i++ {
		writePage(t, c, core.PageID(i), "warm")
	}

	f.Node(0, 2).Wipe()
	// Each failed flight observes at least one failure on the wiped replica.
	// Its sender runs asynchronously and coalesces queued batches, so write
	// until the streak crosses the Suspect threshold (bounded).
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; f.Health().State(0, 2) != Suspect; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("wiped replica never became suspect (state %v)", f.Health().State(0, 2))
		}
		writePage(t, c, core.PageID(i%4), fmt.Sprintf("w%02d", i%100))
		time.Sleep(time.Millisecond)
	}

	f.healthMonitorOnce()

	if f.Health().Stats().AutoRepairs == 0 {
		t.Fatal("monitor pass did not record an auto repair")
	}
	if got, want := f.Node(0, 2).SCL(), f.Node(0, 0).SCL(); got != want {
		t.Fatalf("repaired SCL %d, want %d", got, want)
	}
	if s := f.Health().State(0, 2); s != Healthy {
		t.Fatalf("repaired replica state %v, want healthy", s)
	}
}
