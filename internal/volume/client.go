package volume

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aurora/internal/control"
	"aurora/internal/core"
	"aurora/internal/metrics"
	"aurora/internal/netsim"
	"aurora/internal/page"
	"aurora/internal/quorum"
	"aurora/internal/storage"
	"aurora/internal/trace"
)

// Wire-size constants for request/ack frames.
const (
	reqSize = 64
	ackSize = 64
)

// Errors returned by the client.
var (
	ErrClosed          = errors.New("volume: client closed")
	ErrReadUnavailable = errors.New("volume: no segment can satisfy the read")
)

// Client is the single writer instance's handle on the storage volume. It
// owns the LSN space: it frames MTRs, ships batches, advances the VDL as
// write quorums complete, and routes reads to individual complete segments.
type Client struct {
	fleet *Fleet
	node  netsim.NodeID // the writer's network identity
	q     quorum.Config

	alloc  *core.Allocator
	framer *core.Framer
	vdl    *core.VDLTracker
	win    *ackWindow
	tails  *PGTailTracker
	reads  *readRegistry
	epoch  uint64

	// rootCtx bounds the client's lifecycle: sender pipelines, retry
	// backoffs and rebalancer waits all select on it. Close cancels it after
	// draining; Crash cancels it immediately.
	rootCtx    context.Context
	rootCancel context.CancelFunc

	// inflight tracks quorum-resolution watchers (the goroutines that
	// advance the VDL when a batch's quorum resolves, even if the committing
	// waiter detached on deadline). Close waits for them so the VDL is final
	// before the trackers are torn down.
	infMu    sync.Mutex
	draining bool
	inflight sync.WaitGroup

	sclMu sync.RWMutex
	scls  map[core.SegmentID]core.LSN // writer's runtime view of completeness

	// senders is the per-PG, per-replica delivery pipeline table. It is
	// copy-on-write (Grow appends PGs while traffic continues) — load once
	// per use, never cache across a blocking call.
	senders    atomic.Pointer[[][]*replicaSender]
	noCoalesce bool

	// panel is the control-plane knob registry this client's tuning
	// parameters live in; the engine registers its pipeline knobs into the
	// same panel so one controller (and one Stats snapshot) owns them all.
	// boffCap is the sender redelivery backoff ceiling; deliverWin is the
	// windowed delivery-RTT distribution the controller scales it from.
	panel      *control.Panel
	boffCap    *control.Knob
	deliverWin *metrics.WindowedHistogram

	// geomMu is the geometry fence. Framing takes it shared; the rebalancer
	// takes it exclusively for the brief catch-up + cutover window of each
	// stripe move, so no MTR can be framed (and routed) while the stripe's
	// owner changes. Commits queue behind the fence; they never fail.
	geomMu  sync.RWMutex
	growing atomic.Bool

	closed atomic.Bool

	mtrs        atomic.Uint64
	frames      atomic.Uint64 // framing critical sections (groups count once)
	recsWritten atomic.Uint64
	logBytes    atomic.Uint64 // bytes delivered synchronously for commit ack
	readsServed atomic.Uint64
	readRetries atomic.Uint64
	writeFails  atomic.Uint64
	geomRetries atomic.Uint64 // reads re-routed after ErrStaleGeometry

	rebalTotal  atomic.Uint64 // stripes scheduled by Grow calls
	rebalMoved  atomic.Uint64 // stripes cut over
	rebalCopied atomic.Uint64 // pages copied by the rebalancer
}

// ClientConfig configures a writer session.
type ClientConfig struct {
	WriterNode netsim.NodeID
	WriterAZ   netsim.AZ
	// LAL is the LSN allocation limit; 0 selects core.DefaultLAL.
	LAL int64
	// NoCoalesce is an ablation: each framed batch flies as its own
	// network message instead of coalescing with queued neighbours.
	NoCoalesce bool
	// Knobs is the control-plane panel this client registers its tuning
	// knobs in; nil creates a private panel. An engine opening on this
	// client shares the panel so one feedback controller owns every knob.
	Knobs *control.Panel
}

// Bootstrap attaches a brand-new writer to an empty fleet (a freshly
// created volume). For a volume with history, use Recover.
func Bootstrap(f *Fleet, cfg ClientConfig) *Client {
	return newClient(f, cfg, core.ZeroLSN, nil, 0)
}

func newClient(f *Fleet, cfg ClientConfig, start core.LSN, tails map[core.PGID]core.LSN, epoch uint64) *Client {
	f.cfg.Net.AddNode(cfg.WriterNode, cfg.WriterAZ)
	alloc := core.NewAllocator(start, cfg.LAL)
	rootCtx, rootCancel := context.WithCancel(context.Background())
	c := &Client{
		rootCtx:    rootCtx,
		rootCancel: rootCancel,
		fleet:      f,
		node:       cfg.WriterNode,
		q:          f.q,
		alloc:      alloc,
		framer:     core.NewFramer(alloc, tails),
		vdl:        core.NewVDLTracker(start),
		win:        newAckWindow(start),
		tails:      NewPGTailTracker(tails),
		reads:      newReadRegistry(start),
		epoch:      epoch,
		scls:       make(map[core.SegmentID]core.LSN),
	}
	c.vdl.Advance(start)
	// Control plane: the volume's tuning knobs live in one panel (shared
	// with the engine when it passes one in). The hedge-deadline multiplier
	// is handed to the fleet's health tracker; the backoff ceiling is read
	// by every sender, so it must exist before the sender loops start. With
	// no controller steering them the knobs hold their static defaults and
	// behavior is identical to the old constants.
	c.panel = cfg.Knobs
	if c.panel == nil {
		c.panel = control.NewPanel()
	}
	hedgeDef := int64(f.health.cfg.HedgeMult * 100)
	hedge := c.panel.Register(control.KnobHedgeMultPct, hedgeDef,
		control.MinHedgeMultPct, control.MaxHedgeMultPct)
	f.health.SetHedgeKnob(hedge)
	c.boffCap = c.panel.Register(control.KnobBackoffCapUS, control.DefaultBackoffCapUS,
		control.MinBackoffCapUS, control.MaxBackoffCapUS)
	c.deliverWin = metrics.NewWindowedHistogram(f.health.cfg.WindowInterval)
	senders := make([][]*replicaSender, f.PGs())
	for g := range senders {
		replicas := f.Replicas(core.PGID(g))
		senders[g] = make([]*replicaSender, len(replicas))
		for i, n := range replicas {
			senders[g][i] = newReplicaSender(c, core.PGID(g), i, n, cfg.NoCoalesce)
		}
	}
	c.noCoalesce = cfg.NoCoalesce
	c.senders.Store(&senders)
	// Placement is resolved at frame time from the fleet's current geometry:
	// an MTR built before a stripe cutover but framed after it must route to
	// the stripe's new PG (see core.Framer).
	c.framer.SetPlacement(f.PGOf, func() uint64 { return f.Geometry().Epoch() })
	// Tenancy is stamped inside the framing pass: every record and batch
	// carries the fleet's volume from the moment it is encoded, and storage
	// verifies the stamp on ingest.
	c.framer.SetVolume(f.cfg.Vol)
	return c
}

// extendSenders appends delivery pipelines for protection groups added by
// Grow. Called under the exclusive geometry fence.
func (c *Client) extendSenders() {
	cur := *c.senders.Load()
	n := c.fleet.PGs()
	if n <= len(cur) {
		return
	}
	senders := make([][]*replicaSender, len(cur), n)
	copy(senders, cur)
	for g := len(cur); g < n; g++ {
		replicas := c.fleet.Replicas(core.PGID(g))
		row := make([]*replicaSender, len(replicas))
		for i, node := range replicas {
			row[i] = newReplicaSender(c, core.PGID(g), i, node, c.noCoalesce)
		}
		senders = append(senders, row)
	}
	c.senders.Store(&senders)
}

// VDL returns the current volume durable LSN.
func (c *Client) VDL() core.LSN { return c.vdl.VDL() }

// WaitDurable blocks until the VDL reaches lsn (or the client closes).
// This is the primitive behind asynchronous commit: the WAL protocol's
// equivalent is completing a commit if and only if VDL >= commit LSN
// (§4.2.2).
func (c *Client) WaitDurable(lsn core.LSN) { c.vdl.Wait(lsn) }

// DurableChan returns a channel closed once the VDL reaches lsn.
func (c *Client) DurableChan(lsn core.LSN) <-chan struct{} { return c.vdl.WaitChan(lsn) }

// Epoch returns the client's recovery epoch.
func (c *Client) Epoch() uint64 { return c.epoch }

// LAL returns the LSN allocation limit. Group framing must keep a group's
// total record count safely inside this window: an allocation larger than
// the whole window can never be granted, because the VDL cannot advance
// past the group's own unshipped records.
func (c *Client) LAL() uint64 { return c.alloc.Limit() }

// Fleet returns the underlying storage fleet.
func (c *Client) Fleet() *Fleet { return c.fleet }

// Knobs returns the control-plane panel holding this client's tuning
// knobs. The engine registers its pipeline knobs into the same panel, and
// the feedback controller steers all of them through it.
func (c *Client) Knobs() *control.Panel { return c.panel }

// backoffCap returns the current sender redelivery backoff ceiling.
func (c *Client) backoffCap() time.Duration {
	return time.Duration(c.boffCap.Load()) * time.Microsecond
}

// ReadWindow exposes the windowed read-attempt latency distribution — the
// controller's read-path signal.
func (c *Client) ReadWindow() *metrics.WindowedHistogram {
	return c.fleet.health.ReadWindow()
}

// DeliverWindow exposes the windowed replica delivery-RTT distribution —
// the signal the controller scales the backoff ceiling from.
func (c *Client) DeliverWindow() *metrics.WindowedHistogram { return c.deliverWin }

// PGOf maps a page to its protection group under the current geometry.
func (c *Client) PGOf(id core.PageID) core.PGID { return c.fleet.PGOf(id) }

// PGOfAt maps a page to the protection group holding its history as of
// readPoint (see Fleet.PGOfAt).
func (c *Client) PGOfAt(id core.PageID, readPoint core.LSN) core.PGID {
	return c.fleet.PGOfAt(id, readPoint)
}

// DurableTail returns the highest record LSN of a protection group at or
// below the VDL — the completeness a read of that PG requires (§4.2.3).
func (c *Client) DurableTail(pg core.PGID) core.LSN { return c.tails.DurableTail(pg) }

// LowWaterMark returns the current MRPL (see readRegistry), folded with the
// read points pinned by attached read replicas — storage GC must respect
// the oldest view any instance on the volume can still request (§4.2.3).
func (c *Client) LowWaterMark() core.LSN { return c.mrpl(c.vdl.VDL()) }

func (c *Client) mrpl(vdl core.LSN) core.LSN {
	m := c.reads.lowWaterMark(vdl)
	if floor, ok := c.fleet.readerFloor(); ok && floor < m {
		m = floor
	}
	return m
}

// RegisterReadPoint establishes a read view at the current VDL, holding
// the volume's low-water mark down until released. The engine uses it for
// transaction snapshots; page reads register internally.
func (c *Client) RegisterReadPoint() (core.LSN, func()) {
	p := c.vdl.VDL()
	return p, c.reads.register(p)
}

// PendingWrite is a framed mini-transaction whose batches have not yet
// been shipped. Framing (LSN assignment + arena encode) is cheap and can
// run under engine latches; shipping waits for write quorums and must not.
//
// The write holds the creator reference on its arena-backed FramedGroup:
// the caller must call Release exactly once when it is done with the write
// (after Ship returns, or on an error path). Senders hold their own
// references, so releasing never invalidates an in-flight delivery — even
// one that outlives a deadline-detached committer.
type PendingWrite struct {
	c        *Client
	g        *core.FramedGroup
	mtr      *core.MTR
	cpl      core.LSN
	shipped  bool
	released atomic.Bool
}

// CPL returns the mini-transaction's consistency point LSN.
func (p *PendingWrite) CPL() core.LSN { return p.cpl }

// LastLSNFor returns the highest LSN this MTR assigned to records of the
// given page (ZeroLSN if none) — the engine stamps cached page LSNs with
// it. It reads the framed LSNs straight off the MTR (stamped in place by
// the framer), so it stays valid after Release.
func (p *PendingWrite) LastLSNFor(id core.PageID) core.LSN {
	return p.mtr.LastLSNFor(id)
}

// Release drops the write's reference on its framed group. Idempotent.
func (p *PendingWrite) Release() {
	if !p.released.Swap(true) {
		p.g.Release()
	}
}

// frame frames ms through the arena pipeline under the shared geometry
// fence and registers consistency points and per-PG tails. Volume stamping
// happens inside the framer (SetVolume at client construction).
func (c *Client) frame(ctx context.Context, ms []*core.MTR) (*core.FramedGroup, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	c.geomMu.RLock()
	g, err := c.framer.FrameGroup(ctx, ms)
	if err != nil {
		c.geomMu.RUnlock()
		return nil, err
	}
	c.win.addCPLs(g.CPLs)
	// Feed the tail tracker from the stamped MTRs, not the batches: the
	// completeness demanded of a read (DurableTail) must cover exactly the
	// record LSNs that exist, and the MTRs carry them post-framing.
	c.tails.AddMTRs(ms)
	c.geomMu.RUnlock()
	total := 0
	for _, m := range ms {
		total += len(m.Records)
	}
	c.mtrs.Add(uint64(len(ms)))
	c.frames.Add(1)
	c.recsWritten.Add(uint64(total))
	return g, nil
}

// FrameMTR assigns LSNs and backlinks to the MTR and registers its
// consistency point, without performing any IO. The write is on the wire
// once Ship is called; until then it occupies the allocation window. The
// LAL back-pressure wait inside framing selects on ctx. The caller owns
// the returned write's group reference (see PendingWrite).
func (c *Client) FrameMTR(ctx context.Context, m *core.MTR) (*PendingWrite, error) {
	g, err := c.frame(ctx, []*core.MTR{m})
	if err != nil {
		return nil, err
	}
	return &PendingWrite{c: c, g: g, mtr: m, cpl: g.CPLs[0]}, nil
}

// shipGroup fans the group's encoded batches out to their sender pipelines
// and waits for every write quorum (or ctx).
func (c *Client) shipGroup(ctx context.Context, g *core.FramedGroup) error {
	sp := trace.FromContext(ctx)
	var wg sync.WaitGroup
	errs := make([]error, len(g.Batches))
	for i := range g.Batches {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.shipBatch(ctx, g, &g.Batches[i], sp)
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			c.writeFails.Add(1)
			return e
		}
	}
	return nil
}

// Ship delivers the framed batches to the storage fleet and returns once
// every batch has reached its write quorum or ctx fires. Durability of the
// MTR (VDL >= CPL) may still lag and is awaited separately — worker threads
// never stall on commit (§4.2.2). A ctx deadline detaches only the waiter:
// the batches stay in the sender pipelines (each holding its own group
// reference) and the VDL still advances when their quorums resolve. When
// ctx carries a sampled span, the quorum flights are recorded as its
// children. Ship must be called exactly once.
func (p *PendingWrite) Ship(ctx context.Context) error {
	if p.shipped {
		return errors.New("volume: pending write shipped twice")
	}
	p.shipped = true
	return p.c.shipGroup(ctx, p.g)
}

// GroupWrite is a framed group of mini-transactions: the unit the commit
// pipeline's framer stage produces. The group's records occupy one
// contiguous LSN range, its per-PG batches are merged across members (so a
// busy PG costs one quorum tracker per group, not per commit), and each
// member MTR keeps its own CPL so durability is still acknowledged
// per-transaction as the VDL advances.
//
// Like PendingWrite, the group holds the creator reference on its arena;
// the commit pipeline must Release it when done (after the durability
// wait). MaxCPL is cached at frame time and stays valid after Release.
type GroupWrite struct {
	c        *Client
	g        *core.FramedGroup
	maxCPL   core.LSN
	shipped  bool
	released atomic.Bool
}

// CPLs returns the per-MTR consistency points in group order. The slice is
// borrowed from the framed group: it is only valid before Release.
func (g *GroupWrite) CPLs() []core.LSN { return g.g.CPLs }

// MaxCPL returns the group's highest consistency point: VDL >= MaxCPL
// implies every member of the group is durable (the group's LSN range is
// contiguous).
func (g *GroupWrite) MaxCPL() core.LSN { return g.maxCPL }

// Release drops the group write's reference on its framed group. Idempotent.
func (g *GroupWrite) Release() {
	if !g.released.Swap(true) {
		g.g.Release()
	}
}

// FrameMTRs frames a group of MTRs through one LSN-allocation/ordering
// critical section and registers every member's consistency point. Like
// FrameMTR it performs no IO; the group is on the wire once Ship is
// called. The MTRs' own records are stamped with their LSNs in place, so
// callers can compute per-page stamp LSNs from each MTR directly.
func (c *Client) FrameMTRs(ctx context.Context, ms []*core.MTR) (*GroupWrite, error) {
	g, err := c.frame(ctx, ms)
	if err != nil {
		return nil, err
	}
	return &GroupWrite{c: c, g: g, maxCPL: g.CPLs[len(g.CPLs)-1]}, nil
}

// Ship delivers the group's merged batches to the storage fleet and
// returns once every batch has reached its write quorum or ctx fires. As
// with PendingWrite.Ship, durability (VDL >= CPL) may still lag and is
// awaited separately, a ctx deadline detaches only the waiter (the batches
// still ship and the VDL still advances), and a sampled span carried in ctx
// gets the per-replica flights and quorum waits as children. Ship must be
// called exactly once.
func (g *GroupWrite) Ship(ctx context.Context) error {
	if g.shipped {
		return errors.New("volume: group write shipped twice")
	}
	g.shipped = true
	return g.c.shipGroup(ctx, g.g)
}

// WriteMTR frames a mini-transaction into the log and ships it to the
// storage fleet, returning once every batch has reached its 4/6 write
// quorum. The returned LSN is the MTR's consistency point.
func (c *Client) WriteMTR(ctx context.Context, m *core.MTR) (core.LSN, error) {
	p, err := c.FrameMTR(ctx, m)
	if err != nil {
		return core.ZeroLSN, err
	}
	defer p.Release()
	return p.cpl, p.Ship(ctx)
}

// noteSCL folds a piggybacked segment completeness point into the writer's
// runtime view used for read routing.
func (c *Client) noteSCL(a storage.Ack) {
	c.sclMu.Lock()
	if a.SCL > c.scls[a.Seg] {
		c.scls[a.Seg] = a.SCL
	}
	c.sclMu.Unlock()
}

// trackedSCL returns the writer's last known SCL for a segment.
func (c *Client) trackedSCL(seg core.SegmentID) core.LSN {
	c.sclMu.RLock()
	defer c.sclMu.RUnlock()
	return c.scls[seg]
}

// ReadPage reads the latest durable version of a page. It establishes a
// read point (the current VDL), computes the completeness the owning PG
// requires, and asks a single segment known to be complete — quorum reads
// are never needed in the normal path (§4.1, §4.2.3). It returns the page
// and the read point it reflects. A sampled span carried in ctx gets each
// hedged attempt as a child; ctx cancellation abandons the read.
func (c *Client) ReadPage(ctx context.Context, id core.PageID) (page.Page, core.LSN, error) {
	if c.closed.Load() {
		return nil, core.ZeroLSN, ErrClosed
	}
	readPoint := c.vdl.VDL()
	release := c.reads.register(readPoint)
	defer release()
	p, err := c.readAt(ctx, id, readPoint)
	return p, readPoint, err
}

// ReadPageAt reads a page at a caller-held read point (a transaction
// snapshot previously registered with RegisterReadPoint).
func (c *Client) ReadPageAt(ctx context.Context, id core.PageID, readPoint core.LSN) (page.Page, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	return c.readAt(ctx, id, readPoint)
}

// readAt routes and executes one logical page read, retrying when a storage
// node rejects the attempt as framed under a superseded geometry: the client
// reloads the routing table (lock-free — the fleet publishes it atomically)
// and re-routes. Three rounds bound the loop; a volume never flips stripes
// faster than a read can chase them.
func (c *Client) readAt(ctx context.Context, id core.PageID, readPoint core.LSN) (page.Page, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		p, err := c.readAtOnce(ctx, id, readPoint)
		if err == nil {
			c.readsServed.Add(1)
			return p, nil
		}
		lastErr = err
		if !errors.Is(err, storage.ErrStaleGeometry) || ctx.Err() != nil {
			break
		}
		c.geomRetries.Add(1)
	}
	return nil, lastErr
}

func (c *Client) readAtOnce(ctx context.Context, id core.PageID, readPoint core.LSN) (page.Page, error) {
	sp := trace.FromContext(ctx)
	// Route through the geometry in force at the read point: a snapshot read
	// below a stripe cutover goes to the stripe's old PG, which retains every
	// record at or below the cutover (GC is bounded by the MRPL). The epoch
	// presented to the node is the client's current one — the check catches a
	// client that has not yet learned of a flip, not a historical route.
	curEpoch := c.fleet.Geometry().Epoch()
	pg := c.fleet.PGOfAt(id, readPoint)
	// required may exceed readPoint when the tail advanced concurrently;
	// that only makes the completeness demand conservative, never wrong.
	required := c.tails.DurableTail(pg)
	if c.q.Split() && readPoint < required {
		// Page replicas learn the redo stream asynchronously, so demanding
		// completeness through the durable tail would put every read behind
		// a catch-up pull. Completeness through the read point is the tight
		// sufficient demand: the version served materializes only records
		// with LSN <= readPoint, and SCL >= readPoint proves every one of
		// this segment's records in that prefix is present.
		required = readPoint
	}
	replicas := c.fleet.Replicas(pg)
	myAZ, _ := c.fleet.cfg.Net.NodeAZ(c.node)

	// Candidate order: health score first (healthy before gray), same-AZ
	// before cross-AZ within a class. Segments the writer knows are behind
	// the required completeness stay as last resorts — their SCL may have
	// advanced via gossip since the last piggybacked ack.
	order := c.fleet.health.Order(pg, replicas, myAZ)
	cands := make([]int, 0, len(order))
	var behind []int
	for _, i := range order {
		// Log-tier replicas never serve pages (Taurus split): they hold
		// the redo stream but no materialized state. Reads route to the
		// page tier; a page replica whose applied LSN trails the read
		// point replays the log from its peers before answering.
		if replicas[i].Role() == core.RoleLog {
			continue
		}
		if c.trackedSCL(replicas[i].Seg()) >= required {
			cands = append(cands, i)
		} else {
			behind = append(behind, i)
		}
	}
	cands = append(cands, behind...)

	// Hedged read: one attempt at a time, with a deadline derived from the
	// PG's observed latency percentiles; an attempt that overruns it races
	// a hedge to the next-best replica (§4.2.3 without quorum reads). When
	// a winner lands, the losing attempts are actively canceled.
	p, err := c.fleet.health.runHedged(ctx, pg, cands, func(actx context.Context, i int, hedged bool) (page.Page, error) {
		n := replicas[i]
		asp := sp.Child("read.attempt")
		asp.Annotate("replica", i)
		asp.Annotate("node", n.NodeID())
		if hedged {
			asp.Annotate("hedge", true)
		}
		if err := sendHop(actx, c.fleet.cfg.Net, asp, "net.req", c.node, n.NodeID(), reqSize); err != nil {
			asp.Annotate("err", err)
			asp.End()
			return nil, err
		}
		ssp := asp.Child("storage.read")
		p, err := n.ReadPageChecked(actx, id, readPoint, required, curEpoch)
		ssp.End()
		if err != nil {
			c.readRetries.Add(1)
			asp.Annotate("err", err)
			asp.End()
			return nil, err
		}
		if err := sendHop(actx, c.fleet.cfg.Net, asp, "net.resp", n.NodeID(), c.node, page.Size); err != nil {
			// The segment served the page but the response never arrived —
			// a distinct gray signature, counted apart from read errors
			// (unless this loser was canceled because a peer already won).
			if !errors.Is(err, context.Canceled) {
				c.fleet.health.respDrops.Inc()
			}
			asp.Annotate("err", err)
			asp.End()
			return nil, err
		}
		c.noteSCL(storage.Ack{Seg: n.Seg(), SCL: n.SCL()})
		asp.End()
		return p, nil
	})
	if err != nil {
		return nil, fmt.Errorf("page %d at %d: %w", id, readPoint, err)
	}
	return p, nil
}

// Stats is a snapshot of client counters, including the fleet's
// gray-failure tolerance counters (hedges, redeliveries, self-repairs).
type Stats struct {
	MTRs           uint64
	Frames         uint64 // framing critical sections (a group counts once)
	RecordsWritten uint64
	ReadsServed    uint64
	ReadRetries    uint64
	WriteRetries   uint64 // redelivered flights on this client's fleet
	WriteFailures  uint64
	Hedges         uint64 // hedged read attempts launched
	HedgeWins      uint64 // hedges that returned first
	HedgeCancels   uint64 // losing attempts actively canceled after a win
	AutoRepairs    uint64 // suspect replicas repaired by the fleet monitor
	RespDrops      uint64 // responses lost after a successful segment read
	VDL            core.LSN
	HighestLSN     core.LSN
	Backlog        int

	// Role-split byte accounting (Taurus, PAPERS.md). LogBytes counts
	// bytes delivered synchronously on the commit path (all replicas when
	// the split is off, log tier only when on); PageFeedBytes counts the
	// asynchronous log→page feed. "Fewer synchronous bytes per commit" is
	// LogBytes/commits shrinking while PageFeedBytes absorbs the rest.
	LogBytes      uint64
	PageFeedBytes uint64

	// Geometry & rebalancing (volume growth, §3).
	GeometryEpoch         uint64 // current routing-table epoch
	PGs                   int    // protection groups in the fleet
	RebalanceStripesTotal uint64 // stripe moves scheduled by Grow
	RebalanceStripesMoved uint64 // stripe moves cut over
	RebalancePagesCopied  uint64 // pages copied onto new PGs
	GeomRetries           uint64 // reads re-routed after a stale-geometry nack
}

// Stats returns a snapshot of client counters.
func (c *Client) Stats() Stats {
	hs := c.fleet.health.Stats()
	return Stats{
		GeometryEpoch:         c.fleet.Geometry().Epoch(),
		PGs:                   c.fleet.PGs(),
		RebalanceStripesTotal: c.rebalTotal.Load(),
		RebalanceStripesMoved: c.rebalMoved.Load(),
		RebalancePagesCopied:  c.rebalCopied.Load(),
		GeomRetries:           c.geomRetries.Load(),

		MTRs:           c.mtrs.Load(),
		Frames:         c.frames.Load(),
		RecordsWritten: c.recsWritten.Load(),
		ReadsServed:    c.readsServed.Load(),
		ReadRetries:    c.readRetries.Load(),
		WriteRetries:   hs.Retries,
		WriteFailures:  c.writeFails.Load(),
		Hedges:         hs.Hedges,
		HedgeWins:      hs.HedgeWins,
		HedgeCancels:   hs.HedgeCancels,
		AutoRepairs:    hs.AutoRepairs,
		RespDrops:      hs.RespDrops,
		VDL:            c.vdl.VDL(),
		HighestLSN:     c.alloc.HighestAllocated(),
		Backlog:        c.win.outstanding(),
		LogBytes:       c.logBytes.Load(),
		PageFeedBytes:  c.fleet.PageFeedBytes(),
	}
}

// Crash tears the writer down abruptly: the root context is canceled (any
// in-flight send or backoff is abandoned), pending shipments are nacked,
// and in-flight waiters are released to re-check durability themselves. The
// storage fleet is untouched — its durable state is what Recover reads.
func (c *Client) Crash() {
	if c.closed.Swap(true) {
		return
	}
	c.rootCancel()
	for _, pg := range *c.senders.Load() {
		for _, s := range pg {
			s.stop()
		}
	}
	c.stopInflight()
	c.alloc.Close()
	c.vdl.Close()
	c.fleet.cfg.Net.RemoveNode(c.node)
}

// Close shuts the writer down gracefully: no new operations are accepted,
// the sender pipelines drain their queued flights (delivering, not
// nacking), the quorum watchers finish advancing the VDL, and only then is
// the root context canceled and the allocator torn down.
func (c *Client) Close() {
	if c.closed.Swap(true) {
		return
	}
	for _, pg := range *c.senders.Load() {
		for _, s := range pg {
			s.drain()
		}
	}
	c.stopInflight()
	c.rootCancel()
	c.alloc.Close()
	c.vdl.Close()
	c.fleet.cfg.Net.RemoveNode(c.node)
}

// stopInflight waits for the in-flight quorum watchers and rejects new
// tracked registrations (late shipments still resolve, untracked).
func (c *Client) stopInflight() {
	c.infMu.Lock()
	c.draining = true
	c.infMu.Unlock()
	c.inflight.Wait()
}

// trackInflight registers one quorum watcher with the client's drain
// barrier. After Close/Crash began draining it reports false and the
// watcher runs untracked — everything it would advance is being torn down.
func (c *Client) trackInflight() (func(), bool) {
	c.infMu.Lock()
	defer c.infMu.Unlock()
	if c.draining {
		return func() {}, false
	}
	c.inflight.Add(1)
	return func() { c.inflight.Done() }, true
}
