// Package core implements the log-centric machinery at the heart of the
// Aurora design: log sequence numbers (LSNs), redo log records, mini-
// transaction (MTR) framing, the consistency points that drive the
// asynchronous commit protocol (VCL, VDL, CPL, SCL, PGMRPL), LSN-allocation
// back-pressure (LAL), and epoch-versioned truncation ranges used during
// volume recovery.
//
// The package is shared between the database engine (which generates the
// log) and the storage service (which consumes it); it has no dependencies
// on either side so that both can be tested against the same primitives.
package core

import "fmt"

// LSN is a log sequence number: a monotonically increasing value allocated
// by the single writer instance. LSN 0 is reserved and never allocated; it
// marks "no record" in backlinks and the initial value of all consistency
// points.
type LSN uint64

// ZeroLSN is the null LSN, used for backlinks of the first record of a
// protection group and as the initial durable point of an empty volume.
const ZeroLSN LSN = 0

// String renders the LSN for logs and errors.
func (l LSN) String() string { return fmt.Sprintf("lsn(%d)", uint64(l)) }

// PGID identifies a protection group: a set of six segment replicas spread
// two-per-AZ across three availability zones. A storage volume is a
// concatenation of protection groups.
type PGID uint32

// PageID identifies a fixed-size page within the volume's page space.
// The volume geometry maps PageIDs onto protection groups.
type PageID uint64

// SegmentID identifies one of the six replicas of a protection group.
type SegmentID struct {
	PG      PGID
	Replica uint8 // 0..5
}

// String renders the segment identity as pg/replica.
func (s SegmentID) String() string { return fmt.Sprintf("seg(%d/%d)", s.PG, s.Replica) }

// Points gathers the named consistency points from §4.1 of the paper for
// observability. All fields are advisory snapshots.
type Points struct {
	// VCL (Volume Complete LSN) is the highest LSN for which the storage
	// service can guarantee availability of all prior log records.
	VCL LSN
	// VDL (Volume Durable LSN) is the highest CPL that is <= VCL. Log
	// records above the VDL are truncated during recovery.
	VDL LSN
	// LastCPL is the most recent consistency-point LSN the writer emitted.
	LastCPL LSN
	// PGMRPL is the protection-group minimum read point: the low-water mark
	// below which no outstanding read can ever request a page version, and
	// hence below which storage nodes may coalesce and garbage collect.
	PGMRPL LSN
}

// TruncationRange annuls every log record with an LSN in (From, To] on the
// storage service. Ranges carry an epoch so that a recovery that is itself
// interrupted and restarted cannot resurrect records annulled by a newer
// recovery attempt (§4.3).
type TruncationRange struct {
	Epoch uint64
	From  LSN // exclusive: records at or below From survive
	To    LSN // inclusive: records in (From, To] are annulled
}

// Annuls reports whether the range annuls the record at lsn.
func (t TruncationRange) Annuls(lsn LSN) bool { return lsn > t.From && lsn <= t.To }

// Supersedes reports whether this range takes precedence over other.
// Higher epochs always win; within an epoch the wider range wins.
func (t TruncationRange) Supersedes(other TruncationRange) bool {
	if t.Epoch != other.Epoch {
		return t.Epoch > other.Epoch
	}
	return t.To > other.To
}
