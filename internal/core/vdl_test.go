package core

import (
	"sync"
	"testing"
	"time"
)

func TestVDLTrackerAdvance(t *testing.T) {
	v := NewVDLTracker(ZeroLSN)
	if !v.Advance(5) {
		t.Fatal("advance to 5 reported no movement")
	}
	if v.Advance(3) {
		t.Fatal("regression reported movement")
	}
	if v.VDL() != 5 {
		t.Fatalf("VDL %d, want 5", v.VDL())
	}
}

func TestVDLTrackerWaitAlreadyDurable(t *testing.T) {
	v := NewVDLTracker(10)
	select {
	case <-v.WaitChan(7):
	default:
		t.Fatal("wait for already-durable LSN did not complete immediately")
	}
}

func TestVDLTrackerWaitOrdering(t *testing.T) {
	v := NewVDLTracker(ZeroLSN)
	ch3 := v.WaitChan(3)
	ch7 := v.WaitChan(7)
	ch5 := v.WaitChan(5)
	if v.PendingWaiters() != 3 {
		t.Fatalf("pending %d, want 3", v.PendingWaiters())
	}
	v.Advance(5)
	assertClosed(t, ch3, "waiter@3")
	assertClosed(t, ch5, "waiter@5")
	select {
	case <-ch7:
		t.Fatal("waiter@7 released early")
	default:
	}
	v.Advance(9)
	assertClosed(t, ch7, "waiter@7")
}

func assertClosed(t *testing.T, ch <-chan struct{}, name string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatalf("%s not released", name)
	}
}

func TestVDLTrackerClose(t *testing.T) {
	v := NewVDLTracker(ZeroLSN)
	ch := v.WaitChan(100)
	v.Close()
	assertClosed(t, ch, "waiter after close")
	// Waiters registered after close complete immediately.
	assertClosed(t, v.WaitChan(200), "post-close waiter")
}

func TestVDLTrackerConcurrent(t *testing.T) {
	v := NewVDLTracker(ZeroLSN)
	const n = 200
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(target LSN) {
			defer wg.Done()
			v.Wait(target)
			if v.VDL() < target {
				t.Errorf("woken before VDL reached %d (vdl=%d)", target, v.VDL())
			}
		}(LSN(i))
	}
	go func() {
		for i := 1; i <= n; i++ {
			v.Advance(LSN(i))
		}
	}()
	wg.Wait()
}
