package core

// ReplicaRole says what a segment replica does with the redo stream it
// receives. Aurora's original design (§2–§4) makes every replica a full
// one: it accepts synchronous writes, materializes pages, and serves
// reads. The Taurus-style split (PAPERS.md) re-roles a protection group
// into a small synchronous log tier and an asynchronously-fed page tier:
// commit acknowledgment needs only the log tier, so the synchronous bytes
// per commit shrink while durability is unchanged.
type ReplicaRole uint8

const (
	// RoleFull is the classic Aurora replica: synchronous ingest, page
	// materialization, coalescing, and reads. The zero value, so every
	// pre-split configuration keeps its exact behavior.
	RoleFull ReplicaRole = iota
	// RoleLog is the synchronous log tier: append, CRC, fsync, ack. It
	// never materializes pages and refuses page reads; its log prefix is
	// garbage-collected only once every page peer has pulled it.
	RoleLog
	// RolePage is the asynchronous page tier: fed from the log tier's
	// redo stream by pull (the gossip machinery), it materializes,
	// coalesces, and serves reads — catching up to the read point on
	// demand when its applied LSN trails it.
	RolePage
)

func (r ReplicaRole) String() string {
	switch r {
	case RoleLog:
		return "log"
	case RolePage:
		return "page"
	default:
		return "full"
	}
}
