package core

import (
	"bytes"
	"context"
	"testing"
)

// Allocation pins for the zero-allocation log hot path. The benchmarks
// report allocs/op for the two encode stages; the tests pin them at zero in
// steady state so a regression fails plain `go test`, not just a benchmark
// someone has to remember to run.

func benchMTRs(n, recs int) []*MTR {
	ms := make([]*MTR, n)
	data := bytes.Repeat([]byte{0xA5}, 48)
	for i := range ms {
		m := &MTR{Txn: uint64(i + 1)}
		for j := 0; j < recs; j++ {
			m.AddDelta(PGID(j%3), PageID(i*recs+j), uint32(j*8), data)
		}
		ms[i] = m
	}
	return ms
}

func BenchmarkRecordBodyEncode(b *testing.B) {
	r := Record{LSN: 123456, PrevLSN: 123455, Type: RecPageDelta, PG: 4,
		Page: 8192, Txn: 99, Offset: 512, Data: bytes.Repeat([]byte{7}, 64)}
	buf := make([]byte, r.BodySize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		putRecordBody(buf, &r)
	}
}

// BenchmarkFrameGroup measures a full group frame — route, stamp, chain,
// arena encode, batched CRC — plus the release that recycles the arena.
// Steady state must be allocation-free: the arena, group shell, and per-PG
// scratch are all pooled.
func BenchmarkFrameGroup(b *testing.B) {
	f := NewFramer(NewAllocator(ZeroLSN, 0), nil)
	ms := benchMTRs(8, 4)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := f.FrameGroup(ctx, ms)
		if err != nil {
			b.Fatal(err)
		}
		g.Release()
	}
}

func TestRecordBodyEncodeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; exact-zero pin runs in normal builds")
	}
	r := Record{LSN: 9, PrevLSN: 8, Type: RecPageDelta, PG: 2, Page: 5,
		Txn: 3, Offset: 10, Data: []byte("payload")}
	buf := make([]byte, r.BodySize())
	if avg := testing.AllocsPerRun(200, func() { putRecordBody(buf, &r) }); avg != 0 {
		t.Fatalf("record body encode allocates %.2f times per record, want 0", avg)
	}
}

func TestFrameGroupSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; exact-zero pin runs in normal builds")
	}
	f := NewFramer(NewAllocator(ZeroLSN, 0), nil)
	ms := benchMTRs(8, 4)
	ctx := context.Background()
	frame := func() {
		g, err := f.FrameGroup(ctx, ms)
		if err != nil {
			t.Fatal(err)
		}
		g.Release()
	}
	// Warm the pools and scratch: the first frames grow the per-PG
	// accumulator, the touched list, and the arena/group pools.
	for i := 0; i < 8; i++ {
		frame()
	}
	if avg := testing.AllocsPerRun(100, frame); avg != 0 {
		t.Fatalf("steady-state FrameGroup allocates %.2f times per group, want 0", avg)
	}
}
