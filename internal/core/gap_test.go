package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGapTrackerInOrder(t *testing.T) {
	g := NewGapTracker(ZeroLSN)
	prev := ZeroLSN
	for lsn := LSN(1); lsn <= 10; lsn++ {
		if !g.Add(prev, lsn) {
			t.Fatalf("in-order add of %d did not advance", lsn)
		}
		prev = lsn
	}
	if g.SCL() != 10 {
		t.Fatalf("SCL %d, want 10", g.SCL())
	}
	if g.HasGap() {
		t.Fatal("no gaps expected")
	}
}

func TestGapTrackerHoleAndFill(t *testing.T) {
	g := NewGapTracker(ZeroLSN)
	g.Add(0, 1)
	// Record 2 is lost in transit; 3 and 4 arrive.
	g.Add(2, 3)
	g.Add(3, 4)
	if g.SCL() != 1 {
		t.Fatalf("SCL %d, want 1 while hole open", g.SCL())
	}
	if !g.HasGap() {
		t.Fatal("expected gap while record 2 missing")
	}
	// Gossip fills the hole: SCL must jump across everything pending.
	if !g.Add(1, 2) {
		t.Fatal("filling the hole should advance SCL")
	}
	if g.SCL() != 4 {
		t.Fatalf("SCL %d, want 4 after fill", g.SCL())
	}
	if g.HasGap() {
		t.Fatal("gap should be closed")
	}
}

func TestGapTrackerDuplicatesAndStale(t *testing.T) {
	g := NewGapTracker(ZeroLSN)
	g.Add(0, 1)
	g.Add(1, 2)
	if g.Add(0, 1) {
		t.Fatal("stale record advanced SCL")
	}
	if g.Add(1, 2) {
		t.Fatal("duplicate record advanced SCL")
	}
	if g.SCL() != 2 {
		t.Fatalf("SCL %d, want 2", g.SCL())
	}
}

func TestGapTrackerTruncateAbove(t *testing.T) {
	g := NewGapTracker(ZeroLSN)
	g.Add(0, 1)
	g.Add(1, 2)
	g.Add(3, 4) // pending beyond hole at 3
	g.TruncateAbove(1)
	if g.SCL() != 1 {
		t.Fatalf("SCL %d after truncate, want 1", g.SCL())
	}
	if g.HasGap() {
		t.Fatal("pending record above truncation survived")
	}
	// The chain can be rebuilt past the truncation point.
	g.Add(1, 5)
	if g.SCL() != 5 {
		t.Fatalf("SCL %d, want 5", g.SCL())
	}
}

func TestGapTrackerNonZeroBase(t *testing.T) {
	g := NewGapTracker(100)
	if g.Add(99, 100) {
		t.Fatal("record at base advanced SCL")
	}
	if !g.Add(100, 101) {
		t.Fatal("first record after base should advance")
	}
	if g.SCL() != 101 {
		t.Fatalf("SCL %d", g.SCL())
	}
}

// Property: for any permutation of a linear chain, once all records are
// added the SCL equals the chain tail and no gaps remain.
func TestGapTrackerPermutationProperty(t *testing.T) {
	f := func(seed int64, nSmall uint8) bool {
		n := int(nSmall%50) + 1
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(n)
		g := NewGapTracker(ZeroLSN)
		for _, i := range perm {
			g.Add(LSN(i), LSN(i+1))
		}
		return g.SCL() == LSN(n) && !g.HasGap()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: SCL never exceeds the highest contiguously delivered prefix.
func TestGapTrackerPrefixProperty(t *testing.T) {
	f := func(seed int64, nSmall, dropSmall uint8) bool {
		n := int(nSmall%60) + 2
		drop := int(dropSmall)%n + 1 // drop record with LSN == drop
		rng := rand.New(rand.NewSource(seed))
		g := NewGapTracker(ZeroLSN)
		for _, i := range rng.Perm(n) {
			lsn := i + 1
			if lsn == drop {
				continue
			}
			g.Add(LSN(lsn-1), LSN(lsn))
		}
		return g.SCL() == LSN(drop-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
