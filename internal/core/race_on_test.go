//go:build race

package core

// raceEnabled reports whether the race detector is active. Its
// instrumentation allocates on paths that are allocation-free in normal
// builds, so the exact-zero allocation pins skip themselves under -race
// (the amortized commit-path pin keeps enough slack to run either way).
const raceEnabled = true
