package core

import (
	"container/heap"
	"context"
	"sync"
	"sync/atomic"
)

// VDLTracker maintains the Volume Durable LSN and lets callers wait for it
// to reach a target. It is the primitive behind asynchronous commits
// (§4.2.2): the commit path registers the transaction's commit LSN and a
// dedicated goroutine acknowledges it once VDL >= commitLSN, so worker
// threads never stall on commit.
type VDLTracker struct {
	vdl     atomic.Uint64
	mu      sync.Mutex
	waiters waiterHeap
	closed  bool
}

type waiter struct {
	target LSN
	ch     chan struct{}
}

type waiterHeap []waiter

func (h waiterHeap) Len() int            { return len(h) }
func (h waiterHeap) Less(i, j int) bool  { return h[i].target < h[j].target }
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewVDLTracker returns a tracker initialised to start.
func NewVDLTracker(start LSN) *VDLTracker {
	t := &VDLTracker{}
	t.vdl.Store(uint64(start))
	return t
}

// VDL returns the current volume durable LSN.
func (t *VDLTracker) VDL() LSN { return LSN(t.vdl.Load()) }

// Advance moves the VDL forward (regressions are ignored) and wakes every
// waiter whose target has been reached. It reports whether the VDL moved.
func (t *VDLTracker) Advance(vdl LSN) bool {
	for {
		cur := t.vdl.Load()
		if uint64(vdl) <= cur {
			return false
		}
		if t.vdl.CompareAndSwap(cur, uint64(vdl)) {
			break
		}
	}
	t.mu.Lock()
	for len(t.waiters) > 0 && t.waiters[0].target <= vdl {
		w := heap.Pop(&t.waiters).(waiter)
		close(w.ch)
	}
	t.mu.Unlock()
	return true
}

// WaitChan returns a channel that is closed once the VDL reaches target.
// If the target is already durable the channel is closed immediately.
func (t *VDLTracker) WaitChan(target LSN) <-chan struct{} {
	ch := make(chan struct{})
	t.mu.Lock()
	if t.closed || t.VDL() >= target {
		t.mu.Unlock()
		close(ch)
		return ch
	}
	heap.Push(&t.waiters, waiter{target: target, ch: ch})
	t.mu.Unlock()
	return ch
}

// Wait blocks until the VDL reaches target or the tracker is closed.
func (t *VDLTracker) Wait(target LSN) { <-t.WaitChan(target) }

// WaitCtx blocks until the VDL reaches target, the tracker is closed (nil
// error in both cases — callers re-check durability), or ctx fires.
func (t *VDLTracker) WaitCtx(ctx context.Context, target LSN) error {
	select {
	case <-t.WaitChan(target):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// PendingWaiters returns the number of registered waiters (observability).
func (t *VDLTracker) PendingWaiters() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.waiters)
}

// Close releases all current and future waiters unconditionally. Callers
// must re-check durability themselves after a close (writer crash).
func (t *VDLTracker) Close() {
	t.mu.Lock()
	if !t.closed {
		t.closed = true
		for len(t.waiters) > 0 {
			w := heap.Pop(&t.waiters).(waiter)
			close(w.ch)
		}
	}
	t.mu.Unlock()
}
