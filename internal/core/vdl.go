package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// VDLTracker maintains the Volume Durable LSN and lets callers wait for it
// to reach a target. It is the primitive behind asynchronous commits
// (§4.2.2): the commit path registers the transaction's commit LSN and a
// dedicated goroutine acknowledges it once VDL >= commitLSN, so worker
// threads never stall on commit.
type VDLTracker struct {
	vdl     atomic.Uint64
	mu      sync.Mutex
	waiters waiterHeap
	closed  bool
}

type waiter struct {
	target LSN
	ch     chan struct{}
}

// waiterHeap is a typed min-heap on waiter.target. It deliberately avoids
// container/heap: the interface methods box every pushed and popped element,
// which puts an allocation on the commit hot path for each durability wait.
type waiterHeap []waiter

func (h *waiterHeap) push(w waiter) {
	s := append(*h, w)
	*h = s
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if s[p].target <= s[i].target {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *waiterHeap) pop() waiter {
	s := *h
	n := len(s) - 1
	x := s[0]
	s[0] = s[n]
	s[n] = waiter{} // drop the channel reference
	s = s[:n]
	*h = s
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[r].target < s[l].target {
			m = r
		}
		if s[i].target <= s[m].target {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return x
}

// NewVDLTracker returns a tracker initialised to start.
func NewVDLTracker(start LSN) *VDLTracker {
	t := &VDLTracker{}
	t.vdl.Store(uint64(start))
	return t
}

// VDL returns the current volume durable LSN.
func (t *VDLTracker) VDL() LSN { return LSN(t.vdl.Load()) }

// Advance moves the VDL forward (regressions are ignored) and wakes every
// waiter whose target has been reached. It reports whether the VDL moved.
func (t *VDLTracker) Advance(vdl LSN) bool {
	for {
		cur := t.vdl.Load()
		if uint64(vdl) <= cur {
			return false
		}
		if t.vdl.CompareAndSwap(cur, uint64(vdl)) {
			break
		}
	}
	t.mu.Lock()
	for len(t.waiters) > 0 && t.waiters[0].target <= vdl {
		close(t.waiters.pop().ch)
	}
	t.mu.Unlock()
	return true
}

// WaitChan returns a channel that is closed once the VDL reaches target.
// If the target is already durable the channel is closed immediately.
func (t *VDLTracker) WaitChan(target LSN) <-chan struct{} {
	ch := make(chan struct{})
	t.mu.Lock()
	if t.closed || t.VDL() >= target {
		t.mu.Unlock()
		close(ch)
		return ch
	}
	t.waiters.push(waiter{target: target, ch: ch})
	t.mu.Unlock()
	return ch
}

// Wait blocks until the VDL reaches target or the tracker is closed.
func (t *VDLTracker) Wait(target LSN) { <-t.WaitChan(target) }

// WaitCtx blocks until the VDL reaches target, the tracker is closed (nil
// error in both cases — callers re-check durability), or ctx fires.
func (t *VDLTracker) WaitCtx(ctx context.Context, target LSN) error {
	select {
	case <-t.WaitChan(target):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// PendingWaiters returns the number of registered waiters (observability).
func (t *VDLTracker) PendingWaiters() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.waiters)
}

// Close releases all current and future waiters unconditionally. Callers
// must re-check durability themselves after a close (writer crash).
func (t *VDLTracker) Close() {
	t.mu.Lock()
	if !t.closed {
		t.closed = true
		for len(t.waiters) > 0 {
			close(t.waiters.pop().ch)
		}
	}
	t.mu.Unlock()
}
