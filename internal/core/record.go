package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// RecordType discriminates the kinds of redo log records the engine emits.
type RecordType uint8

const (
	// RecPageDelta is the workhorse record: a byte-range delta to be applied
	// at Offset within the page identified by (PG, Page). Applying the
	// record to the before-image of the page produces its after-image.
	RecPageDelta RecordType = iota + 1
	// RecPageInit carries a full page image and establishes a new page
	// (or re-initialises an existing one, e.g. after a B+-tree split
	// allocates a fresh node).
	RecPageInit
	// RecTxnBegin is a metadata record marking the start of a transaction.
	// It carries no page payload; replicas use it to maintain their view of
	// transaction activity.
	RecTxnBegin
	// RecTxnCommit marks a transaction commit in the log stream. The commit
	// is durable once the VDL reaches the record's LSN.
	RecTxnCommit
	// RecTxnAbort marks a transaction rollback after its undo has been
	// applied (compensation records precede it as ordinary page deltas).
	RecTxnAbort
	// RecCheckpointHint is an advisory record the engine may emit so the
	// storage tier can prioritise coalescing of hot pages. It is never
	// required for correctness: the log is the database.
	RecCheckpointHint
)

func (t RecordType) String() string {
	switch t {
	case RecPageDelta:
		return "delta"
	case RecPageInit:
		return "init"
	case RecTxnBegin:
		return "begin"
	case RecTxnCommit:
		return "commit"
	case RecTxnAbort:
		return "abort"
	case RecCheckpointHint:
		return "ckpt-hint"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Record flags.
const (
	// FlagCPL marks the record as a consistency point (the final record of a
	// mini-transaction). The VDL only ever advances to CPL-tagged LSNs.
	FlagCPL uint8 = 1 << iota
	// FlagPlaced marks a record whose PG was chosen deliberately by its
	// producer (the rebalancer's stripe-copy records, addressed to the
	// destination PG of a pending cutover). The framer's router leaves such
	// records alone instead of re-routing them through the current geometry.
	FlagPlaced
)

// Record is a single redo log record. Each record affects at most one page
// of one protection group and carries a backlink to the previous record of
// the same protection group, which storage nodes use to track segment
// completeness (SCL) and to gossip for holes.
type Record struct {
	LSN     LSN
	PrevLSN LSN // backlink: LSN of the previous record for the same PG
	Type    RecordType
	Flags   uint8
	PG      PGID
	Vol     VolumeID // owning tenant volume (0 = legacy single-tenant)
	Page    PageID
	Txn     uint64
	Offset  uint32 // byte offset within the page for RecPageDelta
	Data    []byte // delta bytes, full image, or nil for metadata records
}

// IsCPL reports whether the record closes a mini-transaction.
func (r *Record) IsCPL() bool { return r.Flags&FlagCPL != 0 }

// PageRecord reports whether the record carries a page mutation that the
// log applicator must apply (as opposed to transaction metadata).
func (r *Record) PageRecord() bool {
	return r.Type == RecPageDelta || r.Type == RecPageInit
}

// String renders a compact description for debugging.
func (r *Record) String() string {
	return fmt.Sprintf("%s@%d pg=%d page=%d prev=%d txn=%d cpl=%v len=%d",
		r.Type, r.LSN, r.PG, r.Page, r.PrevLSN, r.Txn, r.IsCPL(), len(r.Data))
}

// Standalone record wire format (little endian). This self-delimiting,
// self-checksummed codec is used where records travel outside a batch
// (backup snapshots). On the hot path records are encoded as bare bodies
// inside a batch, covered by one batch-level CRC — see arena.go.
//
//	u32 crc      CRC-32C of everything after this field
//	u32 length   total encoded length including crc and length fields
//	u64 lsn
//	u64 prevLSN
//	u8  type
//	u8  flags
//	u32 pg
//	u32 vol
//	u64 page
//	u64 txn
//	u32 offset
//	u32 dataLen
//	... data
const recordHeaderSize = 4 + 4 + 8 + 8 + 1 + 1 + 4 + 4 + 8 + 8 + 4 + 4

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors surfaced by the decoder.
var (
	ErrShortBuffer   = errors.New("core: buffer too short for record")
	ErrBadChecksum   = errors.New("core: record checksum mismatch")
	ErrBadLength     = errors.New("core: record length field corrupt")
	ErrUnknownrecord = errors.New("core: unknown record type")
)

// EncodedSize returns the wire size of the record.
func (r *Record) EncodedSize() int { return recordHeaderSize + len(r.Data) }

// AppendEncode appends the wire encoding of r to buf and returns the
// extended slice. The encoding is self-delimiting and checksummed.
func (r *Record) AppendEncode(buf []byte) []byte {
	start := len(buf)
	total := r.EncodedSize()
	buf = append(buf, make([]byte, total)...)
	b := buf[start:]
	binary.LittleEndian.PutUint32(b[4:], uint32(total))
	binary.LittleEndian.PutUint64(b[8:], uint64(r.LSN))
	binary.LittleEndian.PutUint64(b[16:], uint64(r.PrevLSN))
	b[24] = byte(r.Type)
	b[25] = r.Flags
	binary.LittleEndian.PutUint32(b[26:], uint32(r.PG))
	binary.LittleEndian.PutUint32(b[30:], uint32(r.Vol))
	binary.LittleEndian.PutUint64(b[34:], uint64(r.Page))
	binary.LittleEndian.PutUint64(b[42:], r.Txn)
	binary.LittleEndian.PutUint32(b[50:], r.Offset)
	binary.LittleEndian.PutUint32(b[54:], uint32(len(r.Data)))
	copy(b[recordHeaderSize:], r.Data)
	crc := crc32.Checksum(b[4:], castagnoli)
	binary.LittleEndian.PutUint32(b, crc)
	return buf
}

// DecodeRecord decodes one record from the front of buf, returning the
// record and the number of bytes consumed. The returned record's Data
// aliases buf; callers that retain records past the life of buf must copy.
func DecodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < recordHeaderSize {
		return Record{}, 0, ErrShortBuffer
	}
	total := int(binary.LittleEndian.Uint32(buf[4:]))
	if total < recordHeaderSize {
		return Record{}, 0, ErrBadLength
	}
	if len(buf) < total {
		return Record{}, 0, ErrShortBuffer
	}
	if crc := crc32.Checksum(buf[4:total], castagnoli); crc != binary.LittleEndian.Uint32(buf) {
		return Record{}, 0, ErrBadChecksum
	}
	dataLen := int(binary.LittleEndian.Uint32(buf[54:]))
	if recordHeaderSize+dataLen != total {
		return Record{}, 0, ErrBadLength
	}
	r := Record{
		LSN:     LSN(binary.LittleEndian.Uint64(buf[8:])),
		PrevLSN: LSN(binary.LittleEndian.Uint64(buf[16:])),
		Type:    RecordType(buf[24]),
		Flags:   buf[25],
		PG:      PGID(binary.LittleEndian.Uint32(buf[26:])),
		Vol:     VolumeID(binary.LittleEndian.Uint32(buf[30:])),
		Page:    PageID(binary.LittleEndian.Uint64(buf[34:])),
		Txn:     binary.LittleEndian.Uint64(buf[42:]),
		Offset:  binary.LittleEndian.Uint32(buf[50:]),
	}
	if r.Type == 0 || r.Type > RecCheckpointHint {
		return Record{}, 0, ErrUnknownrecord
	}
	if dataLen > 0 {
		r.Data = buf[recordHeaderSize:total]
	}
	return r, total, nil
}

// Clone returns a deep copy of the record (Data included) so it can be
// retained independently of any decode buffer.
func (r *Record) Clone() Record {
	c := *r
	if len(r.Data) > 0 {
		c.Data = append([]byte(nil), r.Data...)
	}
	return c
}

// Batch is an ordered group of records destined for a single protection
// group. The IO flow batches fully ordered log records by destination PG
// and delivers each batch to all six replicas (§3.2). Epoch carries the
// geometry epoch the batch was framed under; storage nodes reject batches
// framed under a superseded geometry (Epoch 0 is unversioned and always
// accepted, for pre-geometry callers and tests).
type Batch struct {
	PG      PGID
	Vol     VolumeID // owning tenant volume (0 = legacy single-tenant)
	Epoch   uint64
	Records []Record
}

// EncodedSize returns the wire size of the whole batch (v2 format: one
// header, one CRC, record bodies back to back — see arena.go).
func (b *Batch) EncodedSize() int {
	n := batchHeaderSize
	for i := range b.Records {
		n += b.Records[i].BodySize()
	}
	return n
}

// AppendEncode appends the v2 batch encoding: one header carrying the
// first/last LSNs and a single CRC-32C over the contiguous record-body
// region. The per-record checksum of the standalone Record codec does not
// apply inside a batch.
func (b *Batch) AppendEncode(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, b.EncodedSize())...)
	w := buf[start:]
	off := batchHeaderSize
	for i := range b.Records {
		off += putRecordBody(w[off:], &b.Records[i])
	}
	var first, last LSN
	if len(b.Records) > 0 {
		first = b.Records[0].LSN
		last = b.Records[len(b.Records)-1].LSN
	}
	putBatchHeader(w, b.PG, len(b.Records), b.Epoch, b.Vol, first, last, w[batchHeaderSize:off])
	return buf
}

// DecodeBatch decodes and CRC-verifies a batch produced by AppendEncode.
// Record data aliases buf.
func DecodeBatch(buf []byte) (Batch, int, error) {
	v, n, err := ParseBatchView(buf)
	if err != nil {
		return Batch{}, 0, err
	}
	if err := v.Verify(); err != nil {
		return Batch{}, 0, err
	}
	b := Batch{
		PG:      v.PG(),
		Vol:     v.Vol(),
		Epoch:   v.Epoch(),
		Records: make([]Record, 0, v.NumRecords()),
	}
	err = v.EachRecord(func(r *Record) bool {
		b.Records = append(b.Records, *r)
		return true
	})
	if err != nil {
		return Batch{}, 0, fmt.Errorf("core: batch body: %w", err)
	}
	return b, n, nil
}
