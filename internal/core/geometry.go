package core

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Geometry is the volume's page→PG routing table: an immutable, epoch-
// numbered stripe map that is the single source of truth for placement.
// Pages hash onto a fixed number of stripes (page mod Stripes — the "high
// entropy" spread of §3.3) and each stripe is assigned to one protection
// group. Growing a volume (§3: PGs are appended on demand) never changes a
// page's stripe, only a stripe's PG, so a rebalance moves whole stripes and
// every reassignment is a new epoch. All methods are read-only; mutation
// constructors (WithPGs, MoveStripe) return a new table with Epoch+1.
type Geometry struct {
	epoch   uint64
	pgs     int
	stripes []PGID // stripe index -> protection group
}

// stripesPerPG sets the routing granularity: enough stripes per PG that a
// grown volume can rebalance to an even spread, with a floor so small
// volumes can still grow severalfold.
const (
	stripesPerPG = 16
	minStripes   = 64
)

// Geometry errors.
var (
	ErrBadGeometry  = errors.New("core: malformed geometry")
	ErrStripeRange  = errors.New("core: stripe index out of range")
	ErrPGRange      = errors.New("core: protection group out of range")
	ErrShrinkVolume = errors.New("core: geometry cannot drop protection groups")
)

// UniformGeometry returns the initial geometry for a volume of pgs
// protection groups: stripe i → PG i mod pgs (equivalent to the classic
// page-mod-PGs striping when pgs divides the stripe count). The first
// epoch is 1 so that epoch 0 can mean "no geometry learned yet".
func UniformGeometry(pgs int) *Geometry {
	if pgs <= 0 {
		return nil
	}
	n := pgs * stripesPerPG
	if n < minStripes {
		n = minStripes
	}
	stripes := make([]PGID, n)
	for i := range stripes {
		stripes[i] = PGID(i % pgs)
	}
	return &Geometry{epoch: 1, pgs: pgs, stripes: stripes}
}

// NewGeometry builds a geometry from explicit parts (the decode path).
func NewGeometry(epoch uint64, pgs int, stripes []PGID) (*Geometry, error) {
	if epoch == 0 || pgs <= 0 || len(stripes) == 0 {
		return nil, ErrBadGeometry
	}
	for _, pg := range stripes {
		if int(pg) >= pgs {
			return nil, fmt.Errorf("%w: stripe maps to pg %d of %d", ErrBadGeometry, pg, pgs)
		}
	}
	return &Geometry{epoch: epoch, pgs: pgs, stripes: append([]PGID(nil), stripes...)}, nil
}

// Epoch returns the geometry's version number.
func (g *Geometry) Epoch() uint64 { return g.epoch }

// PGs returns the number of protection groups the geometry routes over.
func (g *Geometry) PGs() int { return g.pgs }

// Stripes returns the number of stripes (fixed for the volume's lifetime).
func (g *Geometry) Stripes() int { return len(g.stripes) }

// StripeOf maps a page onto its stripe. Stripe membership never changes,
// only the stripe's PG assignment does.
func (g *Geometry) StripeOf(id PageID) int {
	return int(uint64(id) % uint64(len(g.stripes)))
}

// PG maps a page onto its protection group under this geometry.
func (g *Geometry) PG(id PageID) PGID {
	return g.stripes[g.StripeOf(id)]
}

// StripePG returns the PG a stripe is assigned to.
func (g *Geometry) StripePG(stripe int) PGID {
	return g.stripes[stripe]
}

// InStripe reports whether a page belongs to the given stripe.
func (g *Geometry) InStripe(id PageID, stripe int) bool {
	return g.StripeOf(id) == stripe
}

// WithPGs returns a new geometry (Epoch+1) covering n protection groups
// with the stripe table unchanged — the first half of a Grow: the new PGs
// exist but hold no stripes until the rebalancer moves some over.
func (g *Geometry) WithPGs(n int) (*Geometry, error) {
	if n < g.pgs {
		return nil, fmt.Errorf("%w: %d -> %d", ErrShrinkVolume, g.pgs, n)
	}
	return &Geometry{epoch: g.epoch + 1, pgs: n, stripes: g.stripes}, nil
}

// MoveStripe returns a new geometry (Epoch+1) with one stripe reassigned —
// the cutover step of a stripe migration.
func (g *Geometry) MoveStripe(stripe int, to PGID) (*Geometry, error) {
	if stripe < 0 || stripe >= len(g.stripes) {
		return nil, fmt.Errorf("%w: %d of %d", ErrStripeRange, stripe, len(g.stripes))
	}
	if int(to) >= g.pgs {
		return nil, fmt.Errorf("%w: pg %d of %d", ErrPGRange, to, g.pgs)
	}
	stripes := append([]PGID(nil), g.stripes...)
	stripes[stripe] = to
	return &Geometry{epoch: g.epoch + 1, pgs: g.pgs, stripes: stripes}, nil
}

// StripeMove is one step of a rebalance plan.
type StripeMove struct {
	Stripe int
	From   PGID
	To     PGID
}

// GrowthPlan returns the stripe moves that even the stripe distribution
// over the geometry's PGs: PGs holding more than their share donate
// stripes to PGs holding less (typically freshly appended, empty ones).
// The plan is deterministic; applying the moves in order via MoveStripe
// (one epoch per cutover) lands every PG within one stripe of the mean.
func (g *Geometry) GrowthPlan() []StripeMove {
	counts := make([]int, g.pgs)
	for _, pg := range g.stripes {
		counts[pg]++
	}
	base := len(g.stripes) / g.pgs
	extra := len(g.stripes) % g.pgs
	want := func(pg int) int {
		if pg < extra {
			return base + 1
		}
		return base
	}
	var movable []int
	for s, pg := range g.stripes {
		if counts[pg] > want(int(pg)) {
			counts[pg]--
			movable = append(movable, s)
		}
	}
	var moves []StripeMove
	i := 0
	for pg := 0; pg < g.pgs && i < len(movable); pg++ {
		for counts[pg] < want(pg) && i < len(movable) {
			s := movable[i]
			i++
			moves = append(moves, StripeMove{Stripe: s, From: g.stripes[s], To: PGID(pg)})
			counts[pg]++
		}
	}
	return moves
}

// geometryMagic guards the encoded form ("AGEO").
const geometryMagic = uint32(0x4147454F)

// AppendEncode appends the geometry's manifest serialisation to buf and
// returns the extended slice (append convention, matching Record/Batch),
// so a point-in-time restore of a grown volume routes pages correctly.
func (g *Geometry) AppendEncode(buf []byte) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], geometryMagic)
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:], g.epoch)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(g.pgs))
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(g.stripes)))
	buf = append(buf, tmp[:4]...)
	for _, pg := range g.stripes {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(pg))
		buf = append(buf, tmp[:4]...)
	}
	return buf
}

// DecodeGeometry decodes an AppendEncode payload.
func DecodeGeometry(buf []byte) (*Geometry, error) {
	if len(buf) < 20 {
		return nil, ErrBadGeometry
	}
	if binary.LittleEndian.Uint32(buf) != geometryMagic {
		return nil, ErrBadGeometry
	}
	epoch := binary.LittleEndian.Uint64(buf[4:])
	pgs := int(binary.LittleEndian.Uint32(buf[12:]))
	n := int(binary.LittleEndian.Uint32(buf[16:]))
	if n <= 0 || len(buf) < 20+4*n {
		return nil, ErrBadGeometry
	}
	stripes := make([]PGID, n)
	for i := range stripes {
		stripes[i] = PGID(binary.LittleEndian.Uint32(buf[20+4*i:]))
	}
	return NewGeometry(epoch, pgs, stripes)
}

// String renders a compact description.
func (g *Geometry) String() string {
	return fmt.Sprintf("geometry{epoch=%d pgs=%d stripes=%d}", g.epoch, g.pgs, len(g.stripes))
}
