package core

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestAllocatorSequential(t *testing.T) {
	a := NewAllocator(ZeroLSN, 1000)
	first, err := a.Alloc(context.Background(), 1)
	if err != nil || first != 1 {
		t.Fatalf("first alloc: %v %v", first, err)
	}
	second, err := a.Alloc(context.Background(), 5)
	if err != nil || second != 2 {
		t.Fatalf("second alloc: %v %v", second, err)
	}
	if got := a.HighestAllocated(); got != 6 {
		t.Fatalf("highest = %d, want 6", got)
	}
	if got := a.Next(); got != 7 {
		t.Fatalf("next = %d, want 7", got)
	}
}

func TestAllocatorLALBackpressure(t *testing.T) {
	a := NewAllocator(ZeroLSN, 10)
	if _, err := a.Alloc(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	// Window full: a blocking alloc must stall until VDL advances.
	if _, ok := a.TryAlloc(1); ok {
		t.Fatal("TryAlloc succeeded past the allocation limit")
	}
	done := make(chan LSN)
	go func() {
		lsn, err := a.Alloc(context.Background(), 3)
		if err != nil {
			t.Error(err)
		}
		done <- lsn
	}()
	select {
	case <-done:
		t.Fatal("alloc returned before VDL advanced")
	case <-time.After(20 * time.Millisecond):
	}
	a.AdvanceVDL(5) // headroom becomes 5+10=15, enough for LSNs 11..13
	select {
	case lsn := <-done:
		if lsn != 11 {
			t.Fatalf("resumed alloc got %d, want 11", lsn)
		}
	case <-time.After(time.Second):
		t.Fatal("alloc did not resume after VDL advance")
	}
}

func TestAllocatorVDLRegressionIgnored(t *testing.T) {
	a := NewAllocator(ZeroLSN, 10)
	a.AdvanceVDL(8)
	a.AdvanceVDL(3)
	if got := a.UpperBound(); got != 18 {
		t.Fatalf("upper bound %d, want 18", got)
	}
}

func TestAllocatorClose(t *testing.T) {
	a := NewAllocator(ZeroLSN, 1)
	if _, err := a.Alloc(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error)
	go func() {
		_, err := a.Alloc(context.Background(), 5)
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	if err := <-errs; err != ErrAllocatorClosed {
		t.Fatalf("got %v, want ErrAllocatorClosed", err)
	}
	if _, err := a.Alloc(context.Background(), 1); err != ErrAllocatorClosed {
		t.Fatalf("alloc after close: %v", err)
	}
}

func TestAllocatorConcurrentUnique(t *testing.T) {
	a := NewAllocator(ZeroLSN, 0)
	const workers, per = 16, 500
	var mu sync.Mutex
	seen := make(map[LSN]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := a.Alloc(context.Background(), 2)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[lsn] || seen[lsn+1] {
					t.Errorf("duplicate LSN handed out at %d", lsn)
				}
				seen[lsn], seen[lsn+1] = true, true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*per*2 {
		t.Fatalf("allocated %d LSNs, want %d", len(seen), workers*per*2)
	}
	if got := a.HighestAllocated(); got != LSN(workers*per*2) {
		t.Fatalf("highest %d, want %d", got, workers*per*2)
	}
}

func TestAllocatorPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc(0) did not panic")
		}
	}()
	NewAllocator(ZeroLSN, 0).Alloc(context.Background(), 0)
}
