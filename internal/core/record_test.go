package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRecordRoundTrip(t *testing.T) {
	cases := []Record{
		{LSN: 1, PrevLSN: 0, Type: RecPageDelta, PG: 0, Page: 0, Txn: 1, Offset: 0, Data: []byte{1}},
		{LSN: 42, PrevLSN: 17, Type: RecPageInit, Flags: FlagCPL, PG: 3, Page: 999, Txn: 7, Data: bytes.Repeat([]byte{0xAB}, 4096)},
		{LSN: 100, PrevLSN: 99, Type: RecTxnCommit, Flags: FlagCPL, PG: 1, Txn: 55},
		{LSN: 1 << 62, PrevLSN: 1<<62 - 1, Type: RecTxnAbort, PG: 1<<32 - 1, Page: 1<<63 - 1, Txn: 1<<64 - 1, Offset: 1<<32 - 1, Data: []byte("hello")},
	}
	for i, want := range cases {
		buf := want.AppendEncode(nil)
		if len(buf) != want.EncodedSize() {
			t.Fatalf("case %d: encoded %d bytes, EncodedSize says %d", i, len(buf), want.EncodedSize())
		}
		got, n, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if n != len(buf) {
			t.Fatalf("case %d: consumed %d of %d", i, n, len(buf))
		}
		if !recordsEqual(&got, &want) {
			t.Fatalf("case %d: got %v want %v", i, got.String(), want.String())
		}
	}
}

func recordsEqual(a, b *Record) bool {
	return a.LSN == b.LSN && a.PrevLSN == b.PrevLSN && a.Type == b.Type &&
		a.Flags == b.Flags && a.PG == b.PG && a.Page == b.Page &&
		a.Txn == b.Txn && a.Offset == b.Offset && bytes.Equal(a.Data, b.Data)
}

func TestRecordRoundTripQuick(t *testing.T) {
	f := func(lsn, prev, page, txn uint64, pg, offset uint32, typ uint8, cpl bool, data []byte) bool {
		r := Record{
			LSN: LSN(lsn), PrevLSN: LSN(prev), Page: PageID(page), Txn: txn,
			PG: PGID(pg), Offset: offset,
			Type: RecordType(typ%uint8(RecCheckpointHint)) + 1,
			Data: data,
		}
		if cpl {
			r.Flags = FlagCPL
		}
		buf := r.AppendEncode(nil)
		got, n, err := DecodeRecord(buf)
		if err != nil || n != len(buf) {
			return false
		}
		if len(got.Data) == 0 && len(r.Data) == 0 {
			got.Data, r.Data = nil, nil
		}
		return recordsEqual(&got, &r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordDecodeCorruption(t *testing.T) {
	r := Record{LSN: 9, PrevLSN: 8, Type: RecPageDelta, PG: 2, Page: 5, Txn: 3, Offset: 10, Data: []byte("payload")}
	buf := r.AppendEncode(nil)

	t.Run("short buffer", func(t *testing.T) {
		for i := 0; i < len(buf); i++ {
			if _, _, err := DecodeRecord(buf[:i]); err == nil {
				t.Fatalf("decode of %d-byte prefix succeeded", i)
			}
		}
	})
	t.Run("flipped bit", func(t *testing.T) {
		for i := 0; i < len(buf); i++ {
			bad := append([]byte(nil), buf...)
			bad[i] ^= 0x40
			if _, _, err := DecodeRecord(bad); err == nil {
				// A flip may legitimately decode only if it leaves the CRC
				// valid, which a single bit flip cannot.
				t.Fatalf("decode with corrupted byte %d succeeded", i)
			}
		}
	})
	t.Run("zero type rejected", func(t *testing.T) {
		bad := Record{LSN: 1, Type: RecordType(0), PG: 1}
		b := bad.AppendEncode(nil)
		if _, _, err := DecodeRecord(b); err == nil {
			t.Fatal("record with type 0 decoded")
		}
	})
}

func TestRecordAppendToExisting(t *testing.T) {
	prefix := []byte("prefix-bytes")
	r := Record{LSN: 2, PrevLSN: 1, Type: RecPageDelta, PG: 0, Page: 1, Data: []byte("x")}
	buf := r.AppendEncode(append([]byte(nil), prefix...))
	if !bytes.HasPrefix(buf, prefix) {
		t.Fatal("AppendEncode clobbered existing bytes")
	}
	got, _, err := DecodeRecord(buf[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != 2 {
		t.Fatalf("got LSN %d", got.LSN)
	}
}

func TestRecordClone(t *testing.T) {
	r := Record{LSN: 5, Type: RecPageDelta, Data: []byte{1, 2, 3}}
	c := r.Clone()
	r.Data[0] = 99
	if c.Data[0] != 1 {
		t.Fatal("clone shares data with original")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	b := Batch{PG: 7}
	for i := 0; i < 10; i++ {
		b.Records = append(b.Records, Record{
			LSN: LSN(i + 1), PrevLSN: LSN(i), Type: RecPageDelta, PG: 7,
			Page: PageID(i % 3), Txn: 1, Offset: uint32(i * 4), Data: []byte{byte(i)},
		})
	}
	buf := b.AppendEncode(nil)
	if len(buf) != b.EncodedSize() {
		t.Fatalf("encoded %d, EncodedSize %d", len(buf), b.EncodedSize())
	}
	got, n, err := DecodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) || got.PG != 7 || len(got.Records) != 10 {
		t.Fatalf("decode mismatch: n=%d pg=%d count=%d", n, got.PG, len(got.Records))
	}
	for i := range got.Records {
		if !recordsEqual(&got.Records[i], &b.Records[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestBatchDecodeEmpty(t *testing.T) {
	b := Batch{PG: 1}
	buf := b.AppendEncode(nil)
	got, _, err := DecodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 0 {
		t.Fatal("expected empty batch")
	}
	if _, _, err := DecodeBatch(nil); err == nil {
		t.Fatal("decode of nil buffer succeeded")
	}
}

func TestRecordPredicates(t *testing.T) {
	d := Record{Type: RecPageDelta}
	if !d.PageRecord() {
		t.Fatal("delta should be a page record")
	}
	c := Record{Type: RecTxnCommit, Flags: FlagCPL}
	if c.PageRecord() {
		t.Fatal("commit is not a page record")
	}
	if !c.IsCPL() {
		t.Fatal("flagged record should be CPL")
	}
}

func BenchmarkRecordEncode(b *testing.B) {
	r := Record{LSN: 123456, PrevLSN: 123455, Type: RecPageDelta, PG: 4, Page: 8192, Txn: 99, Offset: 512, Data: bytes.Repeat([]byte{7}, 64)}
	buf := make([]byte, 0, r.EncodedSize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = r.AppendEncode(buf[:0])
	}
}

func BenchmarkRecordDecode(b *testing.B) {
	r := Record{LSN: 123456, PrevLSN: 123455, Type: RecPageDelta, PG: 4, Page: 8192, Txn: 99, Offset: 512, Data: bytes.Repeat([]byte{7}, 64)}
	buf := r.AppendEncode(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeRecord(buf); err != nil {
			b.Fatal(err)
		}
	}
}
