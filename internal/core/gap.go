package core

import "sync"

// GapTracker tracks completeness of the per-PG backlink chain on one
// segment. Each log record carries the LSN of the previous record destined
// for the same protection group; a segment's SCL (Segment Complete LSN) is
// the greatest LSN below which every record of the chain has been received
// (§4.2.1). Records may arrive out of order or duplicated; the tracker
// advances the SCL as holes fill (normally via peer gossip).
type GapTracker struct {
	mu      sync.Mutex
	scl     LSN
	pending map[LSN]LSN // prevLSN -> LSN of a received record not yet linked
}

// NewGapTracker returns a tracker whose chain starts after base: the first
// expected record has PrevLSN == base (ZeroLSN for a fresh segment).
func NewGapTracker(base LSN) *GapTracker {
	return &GapTracker{scl: base, pending: make(map[LSN]LSN)}
}

// Add records receipt of a record with the given backlink and LSN and
// reports whether the SCL advanced. Duplicates and records below the SCL
// are ignored.
func (g *GapTracker) Add(prev, lsn LSN) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if lsn <= g.scl {
		return false
	}
	if prev != g.scl {
		g.pending[prev] = lsn
		return false
	}
	g.scl = lsn
	for {
		next, ok := g.pending[g.scl]
		if !ok {
			break
		}
		delete(g.pending, g.scl)
		g.scl = next
	}
	return true
}

// SCL returns the current segment complete LSN.
func (g *GapTracker) SCL() LSN {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.scl
}

// HasGap reports whether records have been received beyond a hole in the
// chain — the condition that triggers gossip with peers.
func (g *GapTracker) HasGap() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.pending) > 0
}

// PendingCount returns the number of received-but-unlinked records.
func (g *GapTracker) PendingCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.pending)
}

// TruncateAbove discards all chain knowledge above limit: the SCL is capped
// at limit and pending records beyond it are dropped. Used when a recovery
// truncation range annuls the tail of the log.
func (g *GapTracker) TruncateAbove(limit LSN) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.scl > limit {
		g.scl = limit
	}
	for prev, lsn := range g.pending {
		if lsn > limit {
			delete(g.pending, prev)
		}
	}
}
