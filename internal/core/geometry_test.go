package core

import (
	"errors"
	"testing"
)

func TestUniformGeometryStriping(t *testing.T) {
	g := UniformGeometry(4)
	if g.Epoch() != 1 {
		t.Fatalf("initial epoch %d, want 1", g.Epoch())
	}
	if g.PGs() != 4 {
		t.Fatalf("pgs %d", g.PGs())
	}
	if g.Stripes()%4 != 0 {
		t.Fatalf("stripes %d not a multiple of pgs", g.Stripes())
	}
	// With pgs dividing the stripe count, uniform striping must equal the
	// classic page-mod-PGs placement.
	for i := 0; i < 1000; i++ {
		if got, want := g.PG(PageID(i)), PGID(i%4); got != want {
			t.Fatalf("page %d -> pg %d, want %d", i, got, want)
		}
	}
	// Small volumes still get the stripe floor so they can grow severalfold.
	if g1 := UniformGeometry(1); g1.Stripes() < minStripes {
		t.Fatalf("1-pg volume has %d stripes", g1.Stripes())
	}
	if UniformGeometry(0) != nil {
		t.Fatal("0-pg geometry accepted")
	}
}

func TestGeometryMoveStripe(t *testing.T) {
	g := UniformGeometry(2)
	ng, err := g.WithPGs(3)
	if err != nil {
		t.Fatal(err)
	}
	if ng.Epoch() != 2 || ng.PGs() != 3 {
		t.Fatalf("WithPGs: epoch %d pgs %d", ng.Epoch(), ng.PGs())
	}
	if _, err := g.WithPGs(1); !errors.Is(err, ErrShrinkVolume) {
		t.Fatalf("shrink: %v", err)
	}
	moved, err := ng.MoveStripe(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if moved.Epoch() != 3 {
		t.Fatalf("MoveStripe epoch %d", moved.Epoch())
	}
	if moved.StripePG(0) != 2 {
		t.Fatalf("stripe 0 -> pg %d", moved.StripePG(0))
	}
	// Source geometry is immutable.
	if ng.StripePG(0) == 2 {
		t.Fatal("MoveStripe mutated its receiver")
	}
	if _, err := ng.MoveStripe(-1, 0); !errors.Is(err, ErrStripeRange) {
		t.Fatalf("bad stripe: %v", err)
	}
	if _, err := ng.MoveStripe(0, 99); !errors.Is(err, ErrPGRange) {
		t.Fatalf("bad pg: %v", err)
	}
}

func TestGrowthPlanEvensDistribution(t *testing.T) {
	g, err := UniformGeometry(2).WithPGs(4)
	if err != nil {
		t.Fatal(err)
	}
	plan := g.GrowthPlan()
	if len(plan) == 0 {
		t.Fatal("no moves planned for a grown volume")
	}
	cur := g
	for _, mv := range plan {
		if cur.StripePG(mv.Stripe) != mv.From {
			t.Fatalf("stripe %d: plan says from %d, geometry says %d",
				mv.Stripe, mv.From, cur.StripePG(mv.Stripe))
		}
		next, err := cur.MoveStripe(mv.Stripe, mv.To)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	counts := make([]int, cur.PGs())
	for s := 0; s < cur.Stripes(); s++ {
		counts[cur.StripePG(s)]++
	}
	base := cur.Stripes() / cur.PGs()
	for pg, n := range counts {
		if n < base || n > base+1 {
			t.Fatalf("pg %d holds %d stripes, want %d..%d (counts %v)", pg, n, base, base+1, counts)
		}
	}
	// A balanced geometry plans nothing.
	if again := cur.GrowthPlan(); len(again) != 0 {
		t.Fatalf("balanced geometry planned %d moves", len(again))
	}
}

func TestGeometryEncodeDecode(t *testing.T) {
	g, err := UniformGeometry(3).WithPGs(5)
	if err != nil {
		t.Fatal(err)
	}
	g, err = g.MoveStripe(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := DecodeGeometry(g.AppendEncode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Epoch() != g.Epoch() || rt.PGs() != g.PGs() || rt.Stripes() != g.Stripes() {
		t.Fatalf("roundtrip %v != %v", rt, g)
	}
	for s := 0; s < g.Stripes(); s++ {
		if rt.StripePG(s) != g.StripePG(s) {
			t.Fatalf("stripe %d: %d != %d", s, rt.StripePG(s), g.StripePG(s))
		}
	}
	for _, bad := range [][]byte{nil, {1, 2, 3}, g.AppendEncode(nil)[:10]} {
		if _, err := DecodeGeometry(bad); err == nil {
			t.Fatalf("decoded malformed input %v", bad)
		}
	}
	// Corrupt the magic.
	enc := g.AppendEncode(nil)
	enc[0] ^= 0xFF
	if _, err := DecodeGeometry(enc); !errors.Is(err, ErrBadGeometry) {
		t.Fatalf("bad magic: %v", err)
	}
}

func TestNewGeometryValidates(t *testing.T) {
	if _, err := NewGeometry(0, 1, []PGID{0}); err == nil {
		t.Fatal("epoch 0 accepted")
	}
	if _, err := NewGeometry(1, 0, nil); err == nil {
		t.Fatal("empty geometry accepted")
	}
	if _, err := NewGeometry(1, 2, []PGID{0, 5}); err == nil {
		t.Fatal("stripe mapping to out-of-range pg accepted")
	}
}
