package core

import "fmt"

// VolumeID identifies one tenant volume on a shared storage fleet. Aurora's
// storage service is explicitly multi-tenant (§1, §3): thousands of customer
// volumes share one fleet of storage nodes, with the service — not the
// hardware — enforcing isolation between them. The ID is threaded through
// records, batches, segment registries, gossip and backup keys so that one
// storage host can carry segments of many volumes without any possibility of
// cross-tenant record leakage.
//
// The zero value is the legacy single-tenant volume: a fleet that owns its
// nodes outright and predates multi-tenancy. Its wire format and object-store
// keys are unchanged, so existing volumes, backups and tests keep working.
type VolumeID uint32

// String renders the volume identity for logs and errors.
func (v VolumeID) String() string { return fmt.Sprintf("vol(%d)", uint32(v)) }
