package core

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

func TestArenaSizeClasses(t *testing.T) {
	var p framePool
	for _, n := range []int{1, 4 << 10, (4 << 10) + 1, 64 << 10, 1 << 20, 4 << 20} {
		a := p.getArena(n)
		if len(a.b) < n {
			t.Fatalf("arena for %d bytes has only %d", n, len(a.b))
		}
		if a.class < 0 {
			t.Fatalf("size %d should be pooled, got oversize class", n)
		}
	}
	// Oversize requests fall back to exact, unpooled buffers.
	big := p.getArena((4 << 20) + 1)
	if big.class != -1 {
		t.Fatalf("oversize arena got class %d, want -1", big.class)
	}
	if len(big.b) != (4<<20)+1 {
		t.Fatalf("oversize arena length %d", len(big.b))
	}
}

func TestFramedGroupRefcount(t *testing.T) {
	f := NewFramer(NewAllocator(ZeroLSN, 0), nil)
	m := &MTR{Txn: 1}
	m.AddDelta(0, 1, 0, []byte("x"))
	g, err := f.FrameGroup(context.Background(), []*MTR{m})
	if err != nil {
		t.Fatal(err)
	}
	g.Retain()
	g.Retain()
	wire := append([]byte(nil), g.Batches[0].Wire...)
	g.Release() // sender 1
	g.Release() // sender 2
	if !bytes.Equal(wire, g.Batches[0].Wire) {
		t.Fatal("wire bytes changed while creator reference still held")
	}
	g.Release() // creator: group returns to the pool here
}

// TestArenaRecyclingRace hammers the frame→verify→release cycle from many
// goroutines sharing one framer: groups are framed concurrently, each
// batch's wire image is handed to a delayed "sender" goroutine holding its
// own reference (the retry/hedge shape), and every view must checksum and
// decode correctly no matter how aggressively other goroutines recycle
// arenas through the shared pool. Run under -race this doubles as the
// recycling-safety proof for the pooled buffers.
func TestArenaRecyclingRace(t *testing.T) {
	f := NewFramer(NewAllocator(ZeroLSN, 0), nil)
	const workers, iters = 8, 200
	var wg, senders sync.WaitGroup
	var bad atomic.Int32
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m := &MTR{Txn: uint64(seed*iters + i)}
				m.AddDelta(PGID(i%4), PageID(i), 0, bytes.Repeat([]byte{byte(i)}, 1+i%128))
				m.AddDelta(PGID((i+1)%4), PageID(i+1), 8, []byte("tail"))
				g, err := f.FrameGroup(context.Background(), []*MTR{m})
				if err != nil {
					t.Error(err)
					return
				}
				for bi := range g.Batches {
					g.Retain()
					senders.Add(1)
					go func(b *FramedBatch) {
						defer senders.Done()
						defer g.Release()
						v, _, err := ParseBatchView(b.Wire)
						if err != nil || v.Verify() != nil {
							bad.Add(1)
							return
						}
						prev := ZeroLSN
						if err := v.EachRecord(func(r *Record) bool {
							if r.LSN <= prev {
								bad.Add(1)
								return false
							}
							prev = r.LSN
							return true
						}); err != nil {
							bad.Add(1)
						}
					}(&g.Batches[bi])
				}
				g.Release() // creator reference: senders keep the arena alive
			}
		}(w)
	}
	wg.Wait()
	senders.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d batch views corrupted or mis-ordered under concurrent recycling", n)
	}
}

// TestFramedGroupReleaseIdempotentUse checks that wire views stay intact up
// to the final release even when an arena is immediately reused: frame a
// group, keep one reference, frame more groups (forcing pool churn), then
// verify the held view still checksums.
func TestFramedGroupHeldViewSurvivesChurn(t *testing.T) {
	f := NewFramer(NewAllocator(ZeroLSN, 0), nil)
	m := &MTR{Txn: 1}
	m.AddDelta(0, 7, 0, []byte("survivor"))
	held, err := f.FrameGroup(context.Background(), []*MTR{m})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		m2 := &MTR{Txn: uint64(i + 2)}
		m2.AddDelta(1, PageID(i), 0, bytes.Repeat([]byte{0xFF}, 256))
		g, err := f.FrameGroup(context.Background(), []*MTR{m2})
		if err != nil {
			t.Fatal(err)
		}
		g.Release()
	}
	v, _, err := ParseBatchView(held.Batches[0].Wire)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(); err != nil {
		t.Fatalf("held view corrupted by pool churn: %v", err)
	}
	held.Release()
}
