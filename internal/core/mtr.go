package core

import (
	"context"
	"errors"
	"sync"
)

// MTR is a mini-transaction: an ordered group of contiguous log records
// that must be applied atomically (§4.1). The engine builds one MTR per
// atomic structural operation (e.g. a B+-tree split/merge) or per row
// mutation; the Framer stamps the final record as a CPL.
type MTR struct {
	Txn     uint64
	Records []Record // LSN/PrevLSN/Flags unset until framed
}

// AddDelta appends a page-delta record to the MTR.
func (m *MTR) AddDelta(pg PGID, page PageID, offset uint32, data []byte) {
	m.Records = append(m.Records, Record{
		Type: RecPageDelta, PG: pg, Page: page, Txn: m.Txn,
		Offset: offset, Data: data,
	})
}

// AddInit appends a full-page-image record to the MTR.
func (m *MTR) AddInit(pg PGID, page PageID, image []byte) {
	m.Records = append(m.Records, Record{
		Type: RecPageInit, PG: pg, Page: page, Txn: m.Txn, Data: image,
	})
}

// AddMeta appends a metadata record (begin/commit/abort) addressed to pg.
// Metadata records participate in the PG's backlink chain like any other
// record so completeness tracking covers them.
func (m *MTR) AddMeta(t RecordType, pg PGID) {
	m.Records = append(m.Records, Record{Type: t, PG: pg, Txn: m.Txn})
}

// Empty reports whether the MTR holds no records.
func (m *MTR) Empty() bool { return len(m.Records) == 0 }

// LastLSNFor returns the highest LSN this MTR assigned to records of the
// given page (ZeroLSN if none, or if the MTR has not been framed yet). The
// engine stamps cached page LSNs with it after framing.
func (m *MTR) LastLSNFor(id PageID) LSN {
	var last LSN
	for i := range m.Records {
		r := &m.Records[i]
		if r.PageRecord() && r.Page == id && r.LSN > last {
			last = r.LSN
		}
	}
	return last
}

// ErrEmptyMTR is returned when framing an MTR with no records.
var ErrEmptyMTR = errors.New("core: cannot frame empty mini-transaction")

// Framer serialises mini-transactions into the single ordered LSN domain:
// it allocates consecutive LSNs for the MTR's records, threads the per-PG
// backlink chains, and tags the final record as a CPL. Framing is atomic
// with respect to concurrent MTRs so that per-PG chain order always matches
// LSN order.
type Framer struct {
	mu    sync.Mutex
	alloc *Allocator
	last  map[PGID]LSN // last LSN emitted per protection group

	// Placement: route re-stamps each page record's PG inside the framing
	// critical section, and epoch stamps the current geometry epoch onto
	// every batch. Routing MUST happen at frame time, not when the MTR was
	// built: an MTR can sit in the commit pipeline's queue across a
	// geometry cutover, and a record shipped to the stripe's old PG after
	// the flip would be a lost write. Records carrying FlagPlaced keep
	// their producer-chosen PG (stripe-copy records of a pending cutover).
	// nil route/epoch means fixed placement (pre-geometry callers, tests).
	route func(PageID) PGID
	epoch func() uint64
}

// SetPlacement installs the frame-time router and geometry-epoch source.
func (f *Framer) SetPlacement(route func(PageID) PGID, epoch func() uint64) {
	f.mu.Lock()
	f.route = route
	f.epoch = epoch
	f.mu.Unlock()
}

// NewFramer returns a framer drawing LSNs from alloc. lastPerPG seeds the
// backlink chains (nil for a fresh volume); recovery passes the chain tails
// discovered from storage.
func NewFramer(alloc *Allocator, lastPerPG map[PGID]LSN) *Framer {
	last := make(map[PGID]LSN, len(lastPerPG))
	for pg, lsn := range lastPerPG {
		last[pg] = lsn
	}
	return &Framer{alloc: alloc, last: last}
}

// Frame assigns LSNs and backlinks to the MTR's records in place, marks the
// last record as a CPL, and returns the records sharded into per-PG batches
// together with the MTR's CPL. Frame blocks if the LSN allocator is at its
// allocation limit, until ctx cancels the wait.
func (f *Framer) Frame(ctx context.Context, m *MTR) ([]Batch, LSN, error) {
	batches, cpls, err := f.FrameGroup(ctx, []*MTR{m})
	if err != nil {
		return nil, ZeroLSN, err
	}
	return batches, cpls[0], nil
}

// FrameGroup frames a group of MTRs through one allocation/chaining
// critical section: a single Alloc covers every record of the group, and
// the per-PG backlink chains are threaded across all of them in order. The
// last record of each MTR is tagged as a CPL, so every member remains an
// individually trackable consistency point. Records are returned sharded
// into per-PG batches merged across the whole group (chain order equals
// LSN order within each batch), together with the per-MTR CPLs in group
// order. This is the group-commit primitive: N concurrent committers pay
// one framing critical section instead of N (§4.2.2's "no synchronous
// points" taken one step further).
func (f *Framer) FrameGroup(ctx context.Context, ms []*MTR) ([]Batch, []LSN, error) {
	total := 0
	for _, m := range ms {
		if m.Empty() {
			return nil, nil, ErrEmptyMTR
		}
		total += len(m.Records)
	}
	if total == 0 {
		return nil, nil, ErrEmptyMTR
	}
	// LSN order must match chain order, so allocation and chaining happen
	// under one lock — but that lock is held once per *group*, and only the
	// dedicated framer stage ever blocks here on LAL back-pressure.
	f.mu.Lock()
	first, err := f.alloc.Alloc(ctx, total)
	if err != nil {
		f.mu.Unlock()
		return nil, nil, err
	}
	var epoch uint64
	if f.epoch != nil {
		epoch = f.epoch()
	}
	byPG := make(map[PGID]*Batch)
	order := make([]PGID, 0, 2)
	cpls := make([]LSN, len(ms))
	lsn := first
	for mi, m := range ms {
		n := len(m.Records)
		for i := range m.Records {
			r := &m.Records[i]
			if f.route != nil && r.PageRecord() && r.Flags&FlagPlaced == 0 {
				r.PG = f.route(r.Page)
			}
			r.LSN = lsn
			lsn++
			r.PrevLSN = f.last[r.PG]
			f.last[r.PG] = r.LSN
			if i == n-1 {
				r.Flags |= FlagCPL
			}
			b, ok := byPG[r.PG]
			if !ok {
				b = &Batch{PG: r.PG, Epoch: epoch}
				byPG[r.PG] = b
				order = append(order, r.PG)
			}
			b.Records = append(b.Records, *r)
		}
		cpls[mi] = lsn - 1
	}
	f.mu.Unlock()
	batches := make([]Batch, 0, len(order))
	for _, pg := range order {
		batches = append(batches, *byPG[pg])
	}
	return batches, cpls, nil
}

// ChainTail returns the last LSN framed for pg (ZeroLSN if none).
func (f *Framer) ChainTail(pg PGID) LSN {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last[pg]
}
