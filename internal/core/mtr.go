package core

import (
	"context"
	"errors"
	"sync"
)

// MTR is a mini-transaction: an ordered group of contiguous log records
// that must be applied atomically (§4.1). The engine builds one MTR per
// atomic structural operation (e.g. a B+-tree split/merge) or per row
// mutation; the Framer stamps the final record as a CPL.
type MTR struct {
	Txn     uint64
	Records []Record // LSN/PrevLSN/Flags unset until framed
}

// AddDelta appends a page-delta record to the MTR.
func (m *MTR) AddDelta(pg PGID, page PageID, offset uint32, data []byte) {
	m.Records = append(m.Records, Record{
		Type: RecPageDelta, PG: pg, Page: page, Txn: m.Txn,
		Offset: offset, Data: data,
	})
}

// AddInit appends a full-page-image record to the MTR.
func (m *MTR) AddInit(pg PGID, page PageID, image []byte) {
	m.Records = append(m.Records, Record{
		Type: RecPageInit, PG: pg, Page: page, Txn: m.Txn, Data: image,
	})
}

// AddMeta appends a metadata record (begin/commit/abort) addressed to pg.
// Metadata records participate in the PG's backlink chain like any other
// record so completeness tracking covers them.
func (m *MTR) AddMeta(t RecordType, pg PGID) {
	m.Records = append(m.Records, Record{Type: t, PG: pg, Txn: m.Txn})
}

// Empty reports whether the MTR holds no records.
func (m *MTR) Empty() bool { return len(m.Records) == 0 }

// LastLSNFor returns the highest LSN this MTR assigned to records of the
// given page (ZeroLSN if none, or if the MTR has not been framed yet). The
// engine stamps cached page LSNs with it after framing.
func (m *MTR) LastLSNFor(id PageID) LSN {
	var last LSN
	for i := range m.Records {
		r := &m.Records[i]
		if r.PageRecord() && r.Page == id && r.LSN > last {
			last = r.LSN
		}
	}
	return last
}

// ErrEmptyMTR is returned when framing an MTR with no records.
var ErrEmptyMTR = errors.New("core: cannot frame empty mini-transaction")

// Framer serialises mini-transactions into the single ordered LSN domain:
// it allocates consecutive LSNs for the MTR's records, threads the per-PG
// backlink chains, and tags the final record as a CPL. Framing is atomic
// with respect to concurrent MTRs so that per-PG chain order always matches
// LSN order.
type Framer struct {
	mu    sync.Mutex
	alloc *Allocator
	last  map[PGID]LSN // last LSN emitted per protection group

	// Placement: route re-stamps each page record's PG inside the framing
	// critical section, and epoch stamps the current geometry epoch onto
	// every batch. Routing MUST happen at frame time, not when the MTR was
	// built: an MTR can sit in the commit pipeline's queue across a
	// geometry cutover, and a record shipped to the stripe's old PG after
	// the flip would be a lost write. Records carrying FlagPlaced keep
	// their producer-chosen PG (stripe-copy records of a pending cutover).
	// nil route/epoch means fixed placement (pre-geometry callers, tests).
	route func(PageID) PGID
	epoch func() uint64

	// vol is stamped onto every framed record and batch (0 = legacy
	// single-tenant volume).
	vol VolumeID

	// Reusable framing state, all guarded by mu. pool recycles arenas and
	// group shells; pgs is dense per-PG accumulator scratch indexed by PGID,
	// invalidated per FrameGroup call by a generation stamp instead of
	// clearing; touched lists the PGs of the current group in first-touch
	// order.
	pool    framePool
	pgs     []pgAccum
	touched []PGID
	gen     uint64
}

// pgAccum accumulates one PG's batch layout across the two framing passes.
type pgAccum struct {
	gen         uint64
	recs        int
	bytes       int // body bytes
	first, last LSN
	hdrOff      int // arena offset of the batch header
	bodyOff     int // arena write cursor during pass B
	bodyStart   int
}

// SetPlacement installs the frame-time router and geometry-epoch source.
func (f *Framer) SetPlacement(route func(PageID) PGID, epoch func() uint64) {
	f.mu.Lock()
	f.route = route
	f.epoch = epoch
	f.mu.Unlock()
}

// SetVolume installs the tenant volume the framer stamps onto every record
// and batch it frames (replacing the old post-frame re-stamping pass).
func (f *Framer) SetVolume(vol VolumeID) {
	f.mu.Lock()
	f.vol = vol
	f.mu.Unlock()
}

// NewFramer returns a framer drawing LSNs from alloc. lastPerPG seeds the
// backlink chains (nil for a fresh volume); recovery passes the chain tails
// discovered from storage.
func NewFramer(alloc *Allocator, lastPerPG map[PGID]LSN) *Framer {
	last := make(map[PGID]LSN, len(lastPerPG))
	for pg, lsn := range lastPerPG {
		last[pg] = lsn
	}
	return &Framer{alloc: alloc, last: last}
}

// Frame is the single-MTR convenience used by tests and cold paths: it
// frames through the same arena pipeline as FrameGroup, then materialises
// plain per-PG Batches (records deep-copied out of the arena, so callers
// own them outright) and releases the group. The hot path uses FrameGroup
// directly and ships the arena-backed wire images without materialising.
func (f *Framer) Frame(ctx context.Context, m *MTR) ([]Batch, LSN, error) {
	g, err := f.FrameGroup(ctx, []*MTR{m})
	if err != nil {
		return nil, ZeroLSN, err
	}
	defer g.Release()
	batches := make([]Batch, 0, len(g.Batches))
	for i := range g.Batches {
		b, _, err := DecodeBatch(g.Batches[i].Wire)
		if err != nil {
			return nil, ZeroLSN, err
		}
		for j := range b.Records {
			b.Records[j] = b.Records[j].Clone()
		}
		batches = append(batches, b)
	}
	return batches, g.CPLs[0], nil
}

// FrameGroup frames a group of MTRs through one allocation/chaining
// critical section: a single Alloc covers every record of the group, and
// the per-PG backlink chains are threaded across all of them in order. The
// last record of each MTR is tagged as a CPL, so every member remains an
// individually trackable consistency point. This is the group-commit
// primitive: N concurrent committers pay one framing critical section
// instead of N (§4.2.2's "no synchronous points" taken one step further).
//
// The group's records are encoded straight into a pooled arena — per-PG
// batches merged across the whole group (chain order equals LSN order
// within each batch), one contiguous wire image per batch, one CRC-32C
// pass per batch — and returned as a refcounted *FramedGroup. The caller
// owns the creator reference and must Release it; see arena.go for the
// byte-ownership contract. Framing allocates nothing in steady state: the
// arena, group shell, and per-PG scratch are all reused across calls.
//
// The MTRs' records are stamped in place (LSN, PrevLSN, CPL flag, volume,
// routed PG), so callers can read framed LSNs back off the MTRs they
// passed in; record LSNs ascend in frame order within each PG.
func (f *Framer) FrameGroup(ctx context.Context, ms []*MTR) (*FramedGroup, error) {
	total := 0
	for _, m := range ms {
		if m.Empty() {
			return nil, ErrEmptyMTR
		}
		total += len(m.Records)
	}
	if total == 0 {
		return nil, ErrEmptyMTR
	}
	// LSN order must match chain order, so allocation and chaining happen
	// under one lock — but that lock is held once per *group*, and only the
	// dedicated framer stage ever blocks here on LAL back-pressure. The
	// encode passes stay under the same lock because they use the framer's
	// reusable scratch (the rebalancer can frame concurrently with the
	// commit pipeline's framer stage).
	f.mu.Lock()
	first, err := f.alloc.Alloc(ctx, total)
	if err != nil {
		f.mu.Unlock()
		return nil, err
	}
	var epoch uint64
	if f.epoch != nil {
		epoch = f.epoch()
	}
	g := f.pool.getGroup()
	f.gen++
	f.touched = f.touched[:0]
	lsn := first
	// Pass A: route, stamp, and accumulate per-PG record counts and body
	// sizes. The generation stamp makes per-PG scratch reuse O(touched)
	// instead of O(all PGs ever seen).
	for _, m := range ms {
		n := len(m.Records)
		for i := range m.Records {
			r := &m.Records[i]
			if f.route != nil && r.PageRecord() && r.Flags&FlagPlaced == 0 {
				r.PG = f.route(r.Page)
			}
			r.LSN = lsn
			lsn++
			r.PrevLSN = f.last[r.PG]
			f.last[r.PG] = r.LSN
			if i == n-1 {
				r.Flags |= FlagCPL
			}
			r.Vol = f.vol
			if int(r.PG) >= len(f.pgs) {
				f.pgs = append(f.pgs, make([]pgAccum, int(r.PG)+1-len(f.pgs))...)
			}
			acc := &f.pgs[r.PG]
			if acc.gen != f.gen {
				*acc = pgAccum{gen: f.gen, first: r.LSN}
				f.touched = append(f.touched, r.PG)
			}
			acc.recs++
			acc.bytes += r.BodySize()
			acc.last = r.LSN
		}
		g.CPLs = append(g.CPLs, lsn-1)
	}
	// Layout: carve one contiguous header+body region per touched PG.
	off := 0
	for _, pg := range f.touched {
		acc := &f.pgs[pg]
		acc.hdrOff = off
		off += batchHeaderSize
		acc.bodyStart = off
		acc.bodyOff = off
		off += acc.bytes
	}
	g.arena = f.pool.getArena(off)
	buf := g.arena.b[:off]
	// Pass B: encode record bodies into their PG regions in LSN order.
	for _, m := range ms {
		for i := range m.Records {
			r := &m.Records[i]
			acc := &f.pgs[r.PG]
			acc.bodyOff += putRecordBody(buf[acc.bodyOff:], r)
		}
	}
	// Headers last: one batched CRC pass over each contiguous body.
	for _, pg := range f.touched {
		acc := &f.pgs[pg]
		end := acc.bodyStart + acc.bytes
		body := buf[acc.bodyStart:end]
		putBatchHeader(buf[acc.hdrOff:], pg, acc.recs, epoch, f.vol, acc.first, acc.last, body)
		g.Batches = append(g.Batches, FramedBatch{
			PG: pg, Vol: f.vol, Epoch: epoch,
			First: acc.first, Last: acc.last, Records: acc.recs,
			Wire: buf[acc.hdrOff:end:end],
		})
	}
	f.mu.Unlock()
	return g, nil
}

// ChainTail returns the last LSN framed for pg (ZeroLSN if none).
func (f *Framer) ChainTail(pg PGID) LSN {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last[pg]
}
