package core

import (
	"errors"
	"sync"
)

// MTR is a mini-transaction: an ordered group of contiguous log records
// that must be applied atomically (§4.1). The engine builds one MTR per
// atomic structural operation (e.g. a B+-tree split/merge) or per row
// mutation; the Framer stamps the final record as a CPL.
type MTR struct {
	Txn     uint64
	Records []Record // LSN/PrevLSN/Flags unset until framed
}

// AddDelta appends a page-delta record to the MTR.
func (m *MTR) AddDelta(pg PGID, page PageID, offset uint32, data []byte) {
	m.Records = append(m.Records, Record{
		Type: RecPageDelta, PG: pg, Page: page, Txn: m.Txn,
		Offset: offset, Data: data,
	})
}

// AddInit appends a full-page-image record to the MTR.
func (m *MTR) AddInit(pg PGID, page PageID, image []byte) {
	m.Records = append(m.Records, Record{
		Type: RecPageInit, PG: pg, Page: page, Txn: m.Txn, Data: image,
	})
}

// AddMeta appends a metadata record (begin/commit/abort) addressed to pg.
// Metadata records participate in the PG's backlink chain like any other
// record so completeness tracking covers them.
func (m *MTR) AddMeta(t RecordType, pg PGID) {
	m.Records = append(m.Records, Record{Type: t, PG: pg, Txn: m.Txn})
}

// Empty reports whether the MTR holds no records.
func (m *MTR) Empty() bool { return len(m.Records) == 0 }

// ErrEmptyMTR is returned when framing an MTR with no records.
var ErrEmptyMTR = errors.New("core: cannot frame empty mini-transaction")

// Framer serialises mini-transactions into the single ordered LSN domain:
// it allocates consecutive LSNs for the MTR's records, threads the per-PG
// backlink chains, and tags the final record as a CPL. Framing is atomic
// with respect to concurrent MTRs so that per-PG chain order always matches
// LSN order.
type Framer struct {
	mu    sync.Mutex
	alloc *Allocator
	last  map[PGID]LSN // last LSN emitted per protection group
}

// NewFramer returns a framer drawing LSNs from alloc. lastPerPG seeds the
// backlink chains (nil for a fresh volume); recovery passes the chain tails
// discovered from storage.
func NewFramer(alloc *Allocator, lastPerPG map[PGID]LSN) *Framer {
	last := make(map[PGID]LSN, len(lastPerPG))
	for pg, lsn := range lastPerPG {
		last[pg] = lsn
	}
	return &Framer{alloc: alloc, last: last}
}

// Frame assigns LSNs and backlinks to the MTR's records in place, marks the
// last record as a CPL, and returns the records sharded into per-PG batches
// together with the MTR's CPL. Frame blocks if the LSN allocator is at its
// allocation limit.
func (f *Framer) Frame(m *MTR) ([]Batch, LSN, error) {
	if m.Empty() {
		return nil, ZeroLSN, ErrEmptyMTR
	}
	n := len(m.Records)
	// Allocate outside the chain lock so back-pressure stalls do not block
	// other writers that still have headroom... but LSN order must match
	// chain order, so allocation and chaining happen under one lock.
	f.mu.Lock()
	first, err := f.alloc.Alloc(n)
	if err != nil {
		f.mu.Unlock()
		return nil, ZeroLSN, err
	}
	byPG := make(map[PGID]*Batch)
	order := make([]PGID, 0, 2)
	for i := range m.Records {
		r := &m.Records[i]
		r.LSN = first + LSN(i)
		r.PrevLSN = f.last[r.PG]
		f.last[r.PG] = r.LSN
		if i == n-1 {
			r.Flags |= FlagCPL
		}
		b, ok := byPG[r.PG]
		if !ok {
			b = &Batch{PG: r.PG}
			byPG[r.PG] = b
			order = append(order, r.PG)
		}
		b.Records = append(b.Records, *r)
	}
	f.mu.Unlock()
	batches := make([]Batch, 0, len(order))
	for _, pg := range order {
		batches = append(batches, *byPG[pg])
	}
	return batches, first + LSN(n-1), nil
}

// ChainTail returns the last LSN framed for pg (ZeroLSN if none).
func (f *Framer) ChainTail(pg PGID) LSN {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last[pg]
}
