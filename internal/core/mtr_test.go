package core

import (
	"context"
	"sync"
	"testing"
)

func TestFramerSingleMTR(t *testing.T) {
	f := NewFramer(NewAllocator(ZeroLSN, 0), nil)
	m := &MTR{Txn: 1}
	m.AddDelta(0, 1, 0, []byte("a"))
	m.AddDelta(0, 2, 4, []byte("b"))
	m.AddDelta(1, 100, 8, []byte("c"))
	batches, cpl, err := f.Frame(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if cpl != 3 {
		t.Fatalf("cpl %d, want 3", cpl)
	}
	if len(batches) != 2 {
		t.Fatalf("batches %d, want 2 (one per PG)", len(batches))
	}
	// PG 0 chain: 1 -> 2 with backlinks 0 -> 1.
	b0 := batches[0]
	if b0.PG != 0 || len(b0.Records) != 2 {
		t.Fatalf("pg0 batch wrong: %+v", b0)
	}
	if b0.Records[0].LSN != 1 || b0.Records[0].PrevLSN != 0 {
		t.Fatalf("pg0 rec0: %v", b0.Records[0].String())
	}
	if b0.Records[1].LSN != 2 || b0.Records[1].PrevLSN != 1 {
		t.Fatalf("pg0 rec1: %v", b0.Records[1].String())
	}
	// PG 1 gets LSN 3 with a fresh chain, and is the CPL.
	b1 := batches[1]
	if b1.Records[0].LSN != 3 || b1.Records[0].PrevLSN != 0 || !b1.Records[0].IsCPL() {
		t.Fatalf("pg1 rec: %v", b1.Records[0].String())
	}
	// Only the final record of the MTR is a CPL.
	if b0.Records[0].IsCPL() || b0.Records[1].IsCPL() {
		t.Fatal("non-final record tagged CPL")
	}
}

func TestFramerChainsAcrossMTRs(t *testing.T) {
	f := NewFramer(NewAllocator(ZeroLSN, 0), nil)
	m1 := &MTR{Txn: 1}
	m1.AddDelta(5, 1, 0, []byte("x"))
	if _, _, err := f.Frame(context.Background(), m1); err != nil {
		t.Fatal(err)
	}
	m2 := &MTR{Txn: 2}
	m2.AddDelta(5, 2, 0, []byte("y"))
	batches, _, err := f.Frame(context.Background(), m2)
	if err != nil {
		t.Fatal(err)
	}
	if got := batches[0].Records[0].PrevLSN; got != 1 {
		t.Fatalf("backlink across MTRs = %d, want 1", got)
	}
	if f.ChainTail(5) != 2 {
		t.Fatalf("chain tail %d, want 2", f.ChainTail(5))
	}
	if f.ChainTail(99) != ZeroLSN {
		t.Fatal("unknown PG should have zero tail")
	}
}

func TestFramerSeededChains(t *testing.T) {
	f := NewFramer(NewAllocator(500, 0), map[PGID]LSN{3: 480})
	m := &MTR{Txn: 9}
	m.AddDelta(3, 7, 0, []byte("z"))
	batches, cpl, err := f.Frame(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if cpl != 501 {
		t.Fatalf("cpl %d, want 501", cpl)
	}
	if batches[0].Records[0].PrevLSN != 480 {
		t.Fatalf("seeded backlink %d, want 480", batches[0].Records[0].PrevLSN)
	}
}

func TestFramerEmptyMTR(t *testing.T) {
	f := NewFramer(NewAllocator(ZeroLSN, 0), nil)
	if _, _, err := f.Frame(context.Background(), &MTR{}); err != ErrEmptyMTR {
		t.Fatalf("got %v, want ErrEmptyMTR", err)
	}
}

// Concurrent MTRs must produce per-PG chains whose backlink order matches
// LSN order — the invariant the storage tier's gap tracking relies on.
func TestFramerConcurrentChainConsistency(t *testing.T) {
	f := NewFramer(NewAllocator(ZeroLSN, 0), nil)
	const workers, perWorker = 8, 200
	var mu sync.Mutex
	var all []Record
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(txn uint64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m := &MTR{Txn: txn}
				m.AddDelta(PGID(i%3), PageID(i), 0, []byte{byte(i)})
				m.AddDelta(PGID((i+1)%3), PageID(i), 0, []byte{byte(i)})
				batches, _, err := f.Frame(context.Background(), m)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				for _, b := range batches {
					all = append(all, b.Records...)
				}
				mu.Unlock()
			}
		}(uint64(w))
	}
	wg.Wait()

	// Replay every record through per-PG gap trackers: each chain must be
	// complete and linear.
	trackers := map[PGID]*GapTracker{}
	highest := map[PGID]LSN{}
	for pg := PGID(0); pg < 3; pg++ {
		trackers[pg] = NewGapTracker(ZeroLSN)
	}
	for _, r := range all {
		trackers[r.PG].Add(r.PrevLSN, r.LSN)
		if r.LSN > highest[r.PG] {
			highest[r.PG] = r.LSN
		}
	}
	for pg, tr := range trackers {
		if tr.SCL() != highest[pg] {
			t.Fatalf("pg %d: chain incomplete, SCL %d highest %d pending %d",
				pg, tr.SCL(), highest[pg], tr.PendingCount())
		}
	}
	// Exactly one CPL per MTR.
	cpls := 0
	for _, r := range all {
		if r.IsCPL() {
			cpls++
		}
	}
	if cpls != workers*perWorker {
		t.Fatalf("cpl count %d, want %d", cpls, workers*perWorker)
	}
}

func TestMTRHelpers(t *testing.T) {
	m := &MTR{Txn: 4}
	if !m.Empty() {
		t.Fatal("new MTR should be empty")
	}
	m.AddInit(1, 2, []byte("img"))
	m.AddMeta(RecTxnCommit, 1)
	if m.Empty() || len(m.Records) != 2 {
		t.Fatal("records not appended")
	}
	if m.Records[0].Type != RecPageInit || m.Records[1].Type != RecTxnCommit {
		t.Fatal("record types wrong")
	}
	if m.Records[0].Txn != 4 || m.Records[1].Txn != 4 {
		t.Fatal("txn id not propagated")
	}
}
