package core

import (
	"testing"
	"testing/quick"
)

func TestTruncationRangeAnnuls(t *testing.T) {
	tr := TruncationRange{Epoch: 1, From: 10, To: 20}
	if tr.Annuls(10) {
		t.Fatal("From is exclusive")
	}
	if !tr.Annuls(11) || !tr.Annuls(20) {
		t.Fatal("interior/To must be annulled")
	}
	if tr.Annuls(21) {
		t.Fatal("beyond To annulled")
	}
}

func TestTruncationSupersedes(t *testing.T) {
	a := TruncationRange{Epoch: 1, From: 5, To: 10}
	b := TruncationRange{Epoch: 2, From: 7, To: 9}
	if !b.Supersedes(a) || a.Supersedes(b) {
		t.Fatal("higher epoch must win")
	}
	c := TruncationRange{Epoch: 1, From: 5, To: 12}
	if !c.Supersedes(a) || a.Supersedes(c) {
		t.Fatal("within an epoch the wider range wins")
	}
}

// Property: Supersedes is antisymmetric for distinct ranges that differ in
// epoch or extent.
func TestSupersedesAntisymmetry(t *testing.T) {
	f := func(e1, e2 uint8, to1, to2 uint16) bool {
		a := TruncationRange{Epoch: uint64(e1), To: LSN(to1)}
		b := TruncationRange{Epoch: uint64(e2), To: LSN(to2)}
		if a.Epoch == b.Epoch && a.To == b.To {
			return true // equal ranges: neither supersedes
		}
		return a.Supersedes(b) != b.Supersedes(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if LSN(42).String() != "lsn(42)" {
		t.Fatal(LSN(42).String())
	}
	s := SegmentID{PG: 3, Replica: 4}
	if s.String() != "seg(3/4)" {
		t.Fatal(s.String())
	}
	for _, rt := range []RecordType{RecPageDelta, RecPageInit, RecTxnBegin, RecTxnCommit, RecTxnAbort, RecCheckpointHint, RecordType(99)} {
		if rt.String() == "" {
			t.Fatalf("empty string for %d", rt)
		}
	}
}
