package core

import (
	"encoding/binary"
	"hash/crc32"
	"sync"
	"sync/atomic"
)

// This file is the allocation-free spine of the log hot path. The framer
// checks a size-classed arena out of a pool, encodes a whole commit group's
// batches into it contiguously (one Castagnoli pass per batch), and hands
// out a refcounted *FramedGroup whose FramedBatch entries are views into
// that arena. Senders retain the group per enqueued shipment and release
// after the replica acks (or the shipment is dropped); the group's creator
// holds one reference until the commit path is done with it. When the last
// reference drops, the arena and the group struct return to their pools.
//
// Byte-ownership contract:
//
//   - FramedBatch.Wire and every BatchView derived from it are views into
//     the group's arena. They are valid only while the viewer holds a group
//     reference. Anything that must outlive the reference (storage-node
//     retention, feed events) must copy.
//   - Release is forgiving: a group whose references are leaked is simply
//     reclaimed by the GC instead of recycled — never corrupted.

// Arena size classes. Groups are bounded by the commit pipeline
// (maxGroupRecs records, each record bounded by the page size), so the top
// class comfortably covers the largest group; larger requests fall back to
// an exact-size, unpooled buffer.
var arenaClasses = [...]int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}

// arena is one reusable encode buffer. class indexes arenaClasses, or -1
// for an oversized one-shot buffer that is not returned to a pool.
type arena struct {
	b     []byte
	class int8
}

// framePool recycles arenas (by size class) and FramedGroup shells.
type framePool struct {
	arenas [len(arenaClasses)]sync.Pool
	groups sync.Pool
}

func (p *framePool) getArena(n int) *arena {
	for ci, size := range arenaClasses {
		if n <= size {
			if a, _ := p.arenas[ci].Get().(*arena); a != nil {
				return a
			}
			return &arena{b: make([]byte, size), class: int8(ci)}
		}
	}
	return &arena{b: make([]byte, n), class: -1}
}

func (p *framePool) getGroup() *FramedGroup {
	g, _ := p.groups.Get().(*FramedGroup)
	if g == nil {
		g = &FramedGroup{}
	}
	g.pool = p
	g.refs.Store(1) // the creator's reference
	return g
}

func (p *framePool) put(g *FramedGroup) {
	if g.arena != nil && g.arena.class >= 0 {
		p.arenas[g.arena.class].Put(g.arena)
	}
	g.arena = nil
	for i := range g.Batches {
		g.Batches[i] = FramedBatch{} // drop arena views
	}
	g.Batches = g.Batches[:0]
	g.CPLs = g.CPLs[:0]
	g.pool = nil
	p.groups.Put(g)
}

// FramedBatch is one per-PG batch of a framed group, already encoded. Wire
// is the complete batch wire image (header + body) and aliases the group's
// arena: it is only valid while the holder has a group reference.
type FramedBatch struct {
	PG      PGID
	Vol     VolumeID
	Epoch   uint64
	First   LSN // lowest record LSN in the batch
	Last    LSN // highest record LSN in the batch
	Records int
	Wire    []byte
}

// View returns the batch's wire image as a BatchView (same aliasing rules
// as Wire).
func (b *FramedBatch) View() BatchView { return BatchView{b.Wire} }

// FramedGroup is the unit the framer emits and the senders ship: one arena
// holding every batch of one commit group, plus the per-MTR CPLs. It is
// reference-counted; see the ownership contract at the top of this file.
type FramedGroup struct {
	refs  atomic.Int32
	pool  *framePool
	arena *arena

	Batches []FramedBatch
	CPLs    []LSN // per-MTR consistency points, in group order
}

// Retain adds a reference. Each sender enqueue takes one; the matching
// Release happens when the shipment is acked, nacked, or dropped.
func (g *FramedGroup) Retain() { g.refs.Add(1) }

// Release drops a reference. When the last reference drops the arena and
// the group shell return to their pools; any view into the arena is invalid
// from that point on.
func (g *FramedGroup) Release() {
	if g.refs.Add(-1) == 0 {
		g.pool.put(g)
	}
}

// MaxCPL returns the highest CPL of the group (the group's overall
// durability point).
func (g *FramedGroup) MaxCPL() LSN {
	var max LSN
	for _, c := range g.CPLs {
		if c > max {
			max = c
		}
	}
	return max
}

// Batch wire format v2 (little endian). The batch is the unit of shipment
// and of checksumming: one CRC-32C covers the whole body, replacing the old
// per-record checksum pass.
//
//	u32 pg
//	u32 count      number of records in the body
//	u64 epoch      geometry epoch the batch was framed under
//	u32 vol        owning tenant volume
//	u64 firstLSN   lowest record LSN (ack bookkeeping without decoding)
//	u64 lastLSN    highest record LSN
//	u32 bodyLen
//	u32 crc        CRC-32C of the body
//	... body       count record bodies, back to back
const batchHeaderSize = 4 + 4 + 8 + 4 + 8 + 8 + 4 + 4

// Record body format (within a batch body; integrity is covered by the
// batch CRC, so record bodies carry no checksum of their own):
//
//	u32 total     body length including this field (recordBodySize + dataLen)
//	u64 lsn
//	u64 prevLSN
//	u8  type
//	u8  flags
//	u32 pg
//	u32 vol
//	u64 page
//	u64 txn
//	u32 offset
//	... data
const recordBodySize = 4 + 8 + 8 + 1 + 1 + 4 + 4 + 8 + 8 + 4

// BodySize returns the record's encoded size inside a batch body.
func (r *Record) BodySize() int { return recordBodySize + len(r.Data) }

// putRecordBody encodes r's body into b (len(b) >= r.BodySize()) and
// returns the bytes written.
func putRecordBody(b []byte, r *Record) int {
	total := recordBodySize + len(r.Data)
	binary.LittleEndian.PutUint32(b, uint32(total))
	binary.LittleEndian.PutUint64(b[4:], uint64(r.LSN))
	binary.LittleEndian.PutUint64(b[12:], uint64(r.PrevLSN))
	b[20] = byte(r.Type)
	b[21] = r.Flags
	binary.LittleEndian.PutUint32(b[22:], uint32(r.PG))
	binary.LittleEndian.PutUint32(b[26:], uint32(r.Vol))
	binary.LittleEndian.PutUint64(b[30:], uint64(r.Page))
	binary.LittleEndian.PutUint64(b[38:], r.Txn)
	binary.LittleEndian.PutUint32(b[46:], r.Offset)
	copy(b[recordBodySize:total], r.Data)
	return total
}

// DecodeRecordInto decodes one record body from the front of buf into *r
// without allocating: r.Data aliases buf. It returns the bytes consumed.
// Callers that retain the record past the life of buf must copy Data.
func DecodeRecordInto(buf []byte, r *Record) (int, error) {
	if len(buf) < recordBodySize {
		return 0, ErrShortBuffer
	}
	total := int(binary.LittleEndian.Uint32(buf))
	if total < recordBodySize {
		return 0, ErrBadLength
	}
	if len(buf) < total {
		return 0, ErrShortBuffer
	}
	r.LSN = LSN(binary.LittleEndian.Uint64(buf[4:]))
	r.PrevLSN = LSN(binary.LittleEndian.Uint64(buf[12:]))
	r.Type = RecordType(buf[20])
	r.Flags = buf[21]
	r.PG = PGID(binary.LittleEndian.Uint32(buf[22:]))
	r.Vol = VolumeID(binary.LittleEndian.Uint32(buf[26:]))
	r.Page = PageID(binary.LittleEndian.Uint64(buf[30:]))
	r.Txn = binary.LittleEndian.Uint64(buf[38:])
	r.Offset = binary.LittleEndian.Uint32(buf[46:])
	if r.Type == 0 || r.Type > RecCheckpointHint {
		return 0, ErrUnknownrecord
	}
	if total > recordBodySize {
		r.Data = buf[recordBodySize:total:total]
	} else {
		r.Data = nil
	}
	return total, nil
}

// BatchView is a zero-copy view over one encoded batch. It borrows the
// underlying buffer: a view derived from a FramedBatch is valid only while
// the group reference is held, and a view passed into storage ingest is
// valid only for the duration of the call.
type BatchView struct{ b []byte }

// ParseBatchView validates the framing of one batch at the front of buf
// (lengths only — call Verify for the checksum) and returns the view and
// the bytes consumed.
func ParseBatchView(buf []byte) (BatchView, int, error) {
	if len(buf) < batchHeaderSize {
		return BatchView{}, 0, ErrShortBuffer
	}
	bodyLen := int(binary.LittleEndian.Uint32(buf[36:]))
	total := batchHeaderSize + bodyLen
	if bodyLen < 0 || len(buf) < total {
		return BatchView{}, 0, ErrShortBuffer
	}
	return BatchView{buf[:total:total]}, total, nil
}

// PG returns the destination protection group.
func (v BatchView) PG() PGID { return PGID(binary.LittleEndian.Uint32(v.b)) }

// NumRecords returns the record count in the batch body.
func (v BatchView) NumRecords() int { return int(binary.LittleEndian.Uint32(v.b[4:])) }

// Epoch returns the geometry epoch the batch was framed under.
func (v BatchView) Epoch() uint64 { return binary.LittleEndian.Uint64(v.b[8:]) }

// Vol returns the owning tenant volume.
func (v BatchView) Vol() VolumeID { return VolumeID(binary.LittleEndian.Uint32(v.b[16:])) }

// First returns the lowest record LSN in the batch.
func (v BatchView) First() LSN { return LSN(binary.LittleEndian.Uint64(v.b[20:])) }

// Last returns the highest record LSN in the batch.
func (v BatchView) Last() LSN { return LSN(binary.LittleEndian.Uint64(v.b[28:])) }

// Len returns the total wire length of the batch.
func (v BatchView) Len() int { return len(v.b) }

// Bytes returns the full wire image (header + body). Borrowed, like the
// view itself.
func (v BatchView) Bytes() []byte { return v.b }

// Body returns the record-body region. Borrowed, like the view itself.
func (v BatchView) Body() []byte { return v.b[batchHeaderSize:] }

// Verify checks the batch body against the header CRC.
func (v BatchView) Verify() error {
	want := binary.LittleEndian.Uint32(v.b[40:])
	if crc32.Checksum(v.b[batchHeaderSize:], castagnoli) != want {
		return ErrBadChecksum
	}
	return nil
}

// EachRecord decodes the batch's records in order, calling fn with a record
// whose Data aliases the view's buffer. fn returning false stops the walk.
func (v BatchView) EachRecord(fn func(r *Record) bool) error {
	body := v.b[batchHeaderSize:]
	var r Record
	for i, n := 0, v.NumRecords(); i < n; i++ {
		consumed, err := DecodeRecordInto(body, &r)
		if err != nil {
			return err
		}
		body = body[consumed:]
		if !fn(&r) {
			return nil
		}
	}
	if len(body) != 0 {
		return ErrBadLength
	}
	return nil
}

// putBatchHeader writes the v2 batch header into b (len(b) >=
// batchHeaderSize); body is the encoded record region the header describes.
func putBatchHeader(b []byte, pg PGID, count int, epoch uint64, vol VolumeID, first, last LSN, body []byte) {
	binary.LittleEndian.PutUint32(b, uint32(pg))
	binary.LittleEndian.PutUint32(b[4:], uint32(count))
	binary.LittleEndian.PutUint64(b[8:], epoch)
	binary.LittleEndian.PutUint32(b[16:], uint32(vol))
	binary.LittleEndian.PutUint64(b[20:], uint64(first))
	binary.LittleEndian.PutUint64(b[28:], uint64(last))
	binary.LittleEndian.PutUint32(b[36:], uint32(len(body)))
	binary.LittleEndian.PutUint32(b[40:], crc32.Checksum(body, castagnoli))
}
