package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrAllocatorClosed is returned by Alloc after Close, e.g. when the writer
// instance is shutting down or has crashed.
var ErrAllocatorClosed = errors.New("core: LSN allocator closed")

// DefaultLAL is the default LSN Allocation Limit. The paper sets it to 10
// million; the constant here is the same and is scaled down by tests that
// want to exercise back-pressure quickly.
const DefaultLAL = 10_000_000

// Allocator hands out monotonically increasing LSNs to the writer, subject
// to the LSN Allocation Limit: no LSN may be allocated with a value greater
// than VDL + LAL. This bounds how far the database can run ahead of the
// storage service and introduces back-pressure that throttles incoming
// writes when storage or network cannot keep up (§4.2.1).
type Allocator struct {
	mu     sync.Mutex
	cond   *sync.Cond
	next   LSN // next LSN to hand out
	vdl    LSN // latest VDL the allocator has been told about
	lal    uint64
	closed bool
}

// NewAllocator returns an allocator that will hand out LSNs starting at
// start+1 with the given allocation limit. lal <= 0 selects DefaultLAL.
func NewAllocator(start LSN, lal int64) *Allocator {
	if lal <= 0 {
		lal = DefaultLAL
	}
	a := &Allocator{next: start + 1, vdl: start, lal: uint64(lal)}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// Alloc reserves n consecutive LSNs and returns the first. It blocks while
// the allocation would exceed VDL + LAL, resuming when AdvanceVDL frees
// headroom, the allocator closes, or ctx is canceled. n must be >= 1.
func (a *Allocator) Alloc(ctx context.Context, n int) (LSN, error) {
	if n < 1 {
		panic("core: Alloc of non-positive count")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.closed && uint64(a.next)+uint64(n)-1 > uint64(a.vdl)+a.lal {
		// Back-pressure wait: a context firing must wake the cond, so hook
		// a broadcast onto cancellation for the duration of the wait.
		stop := context.AfterFunc(ctx, func() {
			a.mu.Lock()
			a.cond.Broadcast()
			a.mu.Unlock()
		})
		defer stop()
		for !a.closed && ctx.Err() == nil && uint64(a.next)+uint64(n)-1 > uint64(a.vdl)+a.lal {
			a.cond.Wait()
		}
	}
	if a.closed {
		return ZeroLSN, ErrAllocatorClosed
	}
	if err := ctx.Err(); err != nil {
		return ZeroLSN, fmt.Errorf("core: Alloc canceled: %w", err)
	}
	first := a.next
	a.next += LSN(n)
	return first, nil
}

// TryAlloc is a non-blocking Alloc; ok is false when the LAL window is full.
func (a *Allocator) TryAlloc(n int) (lsn LSN, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed || uint64(a.next)+uint64(n)-1 > uint64(a.vdl)+a.lal {
		return ZeroLSN, false
	}
	first := a.next
	a.next += LSN(n)
	return first, true
}

// AdvanceVDL informs the allocator of a new volume durable LSN, releasing
// any writers blocked on the allocation limit. Regressions are ignored.
func (a *Allocator) AdvanceVDL(vdl LSN) {
	a.mu.Lock()
	if vdl > a.vdl {
		a.vdl = vdl
		a.cond.Broadcast()
	}
	a.mu.Unlock()
}

// Next returns the next LSN that would be allocated (for observability).
func (a *Allocator) Next() LSN {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next
}

// HighestAllocated returns the highest LSN handed out so far.
func (a *Allocator) HighestAllocated() LSN {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next - 1
}

// Limit returns the allocation limit (LAL): the maximum number of LSNs
// that may be outstanding beyond the VDL. A single allocation larger than
// this can never succeed, so batching callers must cap their requests.
func (a *Allocator) Limit() uint64 { return a.lal }

// UpperBound returns the highest LSN that could possibly have been
// allocated given the current VDL: VDL + LAL. Recovery uses this to bound
// the truncation range it must annul (§4.3).
func (a *Allocator) UpperBound() LSN {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.vdl + LSN(a.lal)
}

// Close releases all blocked allocators with ErrAllocatorClosed.
func (a *Allocator) Close() {
	a.mu.Lock()
	a.closed = true
	a.cond.Broadcast()
	a.mu.Unlock()
}
