package mysql

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"aurora/internal/disk"
	"aurora/internal/netsim"
	"aurora/internal/objstore"
)

func testDB(t *testing.T, mirrored bool, cfg Config) (*netsim.Network, *DB) {
	t.Helper()
	net := netsim.New(netsim.FastLocal())
	cfg.Instance = "mysql1"
	cfg.AZ = 0
	cfg.Mirrored = mirrored
	cfg.StandbyAZ = 1
	cfg.Net = net
	cfg.Disk = disk.FastLocal()
	db, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return net, db
}

func TestCRUD(t *testing.T) {
	_, db := testDB(t, false, Config{})
	if err := db.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("k"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("get %q %v %v", v, ok, err)
	}
	if err := db.Put([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get([]byte("k")); ok {
		t.Fatal("deleted key visible")
	}
	if db.Stats().Commits != 3 {
		t.Fatalf("commits %d", db.Stats().Commits)
	}
}

func TestTransactionIsolationAndAbort(t *testing.T) {
	_, db := testDB(t, false, Config{})
	if err := db.Put([]byte("x"), []byte("base")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Put([]byte("x"), []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get([]byte("x")); !ok {
		t.Fatal("committed row invisible")
	}
	v, _, _ := db.Get([]byte("x"))
	if string(v) != "base" {
		t.Fatalf("dirty read: %q", v)
	}
	tx.Abort()
	v, _, _ = db.Get([]byte("x"))
	if string(v) != "base" {
		t.Fatalf("abort lost data: %q", v)
	}
}

func TestScanOverlay(t *testing.T) {
	_, db := testDB(t, false, Config{})
	for i := 0; i < 5; i++ {
		if err := db.Put([]byte(fmt.Sprintf("r%d", i)), []byte("c")); err != nil {
			t.Fatal(err)
		}
	}
	tx := db.Begin()
	if err := tx.Delete([]byte("r2")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put([]byte("r9"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	var keys []string
	if err := tx.Scan(nil, nil, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5 {
		t.Fatalf("scan %v", keys)
	}
	tx.Abort()
}

func TestWALAndBinlogTraffic(t *testing.T) {
	net, db := testDB(t, true, Config{})
	net.ResetStats()
	if err := db.Put([]byte("key"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.WALFlushes == 0 || s.WALBytes == 0 {
		t.Fatalf("no WAL traffic: %+v", s)
	}
	if s.BinlogBytes == 0 {
		t.Fatal("no binlog traffic")
	}
	// Mirrored config: each logical write crosses the network many times
	// (instance->EBS->mirror, stage to standby, standby->EBS->mirror...).
	if net.Stats().Messages < 12 {
		t.Fatalf("mirrored write only produced %d messages", net.Stats().Messages)
	}
}

func TestCheckpointFlushesDirtyPages(t *testing.T) {
	_, db := testDB(t, false, Config{CheckpointDirtyPages: 1 << 30})
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats().PagesFlushed != 0 {
		t.Fatal("pages flushed before checkpoint")
	}
	redoBefore := db.Stats().RedoRecords
	if redoBefore == 0 {
		t.Fatal("no redo accumulated")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.PagesFlushed == 0 {
		t.Fatal("checkpoint flushed nothing")
	}
	if s.RedoRecords != 0 {
		t.Fatalf("redo not truncated at checkpoint: %d", s.RedoRecords)
	}
	if s.CheckpointLSN == 0 || s.CheckpointLSN != s.DurableLSN {
		t.Fatalf("checkpoint LSN %d durable %d", s.CheckpointLSN, s.DurableLSN)
	}
	// Double-write: two page writes per flushed page.
	if s.PagesFlushed%2 != 0 {
		t.Fatalf("double-write violated: %d", s.PagesFlushed)
	}
}

func TestAutomaticCheckpointInterferes(t *testing.T) {
	_, db := testDB(t, false, Config{CheckpointDirtyPages: 2})
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	s := db.Stats()
	if s.Checkpoints == 0 {
		t.Fatal("automatic checkpoint never fired")
	}
	if s.StallsOnFlush == 0 {
		t.Fatal("foreground never stalled on checkpoint")
	}
}

func TestCrashRecoveryReplaysRedo(t *testing.T) {
	_, db := testDB(t, false, Config{CheckpointDirtyPages: 1 << 30})
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := db.CrashAndRecover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RedoRecords == 0 || rep.PagesTouched == 0 {
		t.Fatalf("recovery did nothing: %+v", rep)
	}
	// All committed data readable after recovery.
	for i := 0; i < 100; i += 13 {
		k := []byte(fmt.Sprintf("k%03d", i))
		v, ok, err := db.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %s after recovery: %q %v %v", k, v, ok, err)
		}
	}
	// A checkpoint just before the crash shrinks redo to nothing.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep2, err := db.CrashAndRecover()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.RedoRecords != 0 {
		t.Fatalf("redo after checkpoint: %d", rep2.RedoRecords)
	}
}

func TestGroupCommitBatchesFlushes(t *testing.T) {
	// Batching only emerges when a flush takes real time: commits arriving
	// while one is on the wire share the next one.
	net := netsim.New(netsim.Config{IntraAZ: 200 * time.Microsecond})
	db, err := New(Config{
		Instance: "gc", AZ: 0, Net: net, Disk: disk.FastLocal(), GroupCommitMax: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const workers, per = 16, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := db.Put([]byte(fmt.Sprintf("g%d-%d", w, i)), []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := db.Stats()
	if s.Commits != workers*per {
		t.Fatalf("commits %d", s.Commits)
	}
	// Flushes must be (usually far) fewer than commits: group commit works.
	if s.WALFlushes >= s.Commits {
		t.Fatalf("no batching: %d flushes for %d commits", s.WALFlushes, s.Commits)
	}
}

func TestBinlogReplicationLag(t *testing.T) {
	net := netsim.New(netsim.FastLocal())
	primary, err := New(Config{Instance: "prim", AZ: 0, Net: net, Disk: disk.FastLocal()})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	rep, err := New(Config{Instance: "repl", AZ: 1, Net: net, Disk: disk.FastLocal()})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	link := primary.AttachReplica(rep)

	for i := 0; i < 100; i++ {
		if err := primary.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if !link.Drain(5 * time.Second) {
		t.Fatal("replica never caught up")
	}
	if link.Applied() != 100 {
		t.Fatalf("applied %d", link.Applied())
	}
	v, ok, err := rep.Get([]byte("k099"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("replica read: %q %v %v", v, ok, err)
	}
	_, max, _ := link.Lag()
	if max <= 0 {
		t.Fatal("no lag measured")
	}
}

func TestBinlogArchive(t *testing.T) {
	store := objstore.New()
	_, db := testDB(t, false, Config{BinlogArchive: store, CheckpointDirtyPages: 1 << 30})
	for i := 0; i < 10; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if len(store.List("binlog/")) == 0 {
		t.Fatal("binlog not archived")
	}
}

func TestCacheMissesAreForegroundReads(t *testing.T) {
	_, db := testDB(t, false, Config{CachePages: 4, CheckpointDirtyPages: 4})
	for i := 0; i < 400; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	db.cache.Invalidate()
	for i := 0; i < 400; i += 57 {
		if _, ok, err := db.Get([]byte(fmt.Sprintf("k%05d", i))); err != nil || !ok {
			t.Fatalf("get %d: %v %v", i, ok, err)
		}
	}
	if db.Stats().Cache.Misses == 0 {
		t.Fatal("no cache misses")
	}
}
