// Package mysql implements the paper's baseline: a traditional
// MySQL/InnoDB-style engine running on networked block storage. It shares
// the B+-tree, page format and lock table with the Aurora engine so that
// every comparison isolates the architectural difference the paper is
// about: what crosses the network and what stalls the foreground path.
//
// The write path follows Figure 2: redo log records to a write-ahead log,
// a binary log archived for point-in-time restore, modified data pages, a
// double-write of each page to prevent torn pages, all through EBS volumes
// that mirror synchronously — optionally chained to a cross-AZ standby
// whose steps 1, 3, 5 are sequential and synchronous. Checkpointing flushes
// dirty pages in the background and bounds ARIES-style redo at recovery.
package mysql

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aurora/internal/btree"
	"aurora/internal/bufcache"
	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/ebs"
	"aurora/internal/netsim"
	"aurora/internal/objstore"
	"aurora/internal/page"
	"aurora/internal/txn"
)

// BlockDev is the block-storage interface both plain EBS volumes and
// cross-AZ mirrored pairs satisfy.
type BlockDev interface {
	Write(ctx context.Context, size int) error
	Read(ctx context.Context, size int) error
}

// Errors returned by the engine.
var (
	ErrTxDone     = errors.New("mysql: transaction already finished")
	ErrReadOnlyTx = errors.New("mysql: write on read-only transaction")
)

// Config tunes the baseline engine.
type Config struct {
	// Instance is the database host's network identity (must be registered
	// by the caller or NewOnNetwork).
	Instance netsim.NodeID
	AZ       netsim.AZ
	// Mirrored selects the Figure 2 active-standby configuration with a
	// cross-AZ synchronous standby; otherwise a single-AZ EBS setup (the
	// configuration of the §6.1 comparisons).
	Mirrored  bool
	StandbyAZ netsim.AZ
	Net       *netsim.Network
	Disk      disk.Config

	CachePages  int
	LockTimeout time.Duration
	// CheckpointDirtyPages triggers a checkpoint once this many pages are
	// dirty (default 128). Checkpoints interfere with foreground traffic —
	// the positive correlation §3.3 contrasts with Aurora.
	CheckpointDirtyPages int
	// GroupCommitMax bounds how many commits one WAL flush can absorb
	// (default 16).
	GroupCommitMax int
	// BinlogArchive receives binlog segments for PITR; nil disables.
	BinlogArchive *objstore.Store
}

func (c *Config) fillDefaults() {
	if c.CachePages <= 0 {
		c.CachePages = 4096
	}
	if c.CheckpointDirtyPages <= 0 {
		c.CheckpointDirtyPages = 128
	}
	if c.GroupCommitMax <= 0 {
		c.GroupCommitMax = 16
	}
}

// Stats is a snapshot of engine counters.
type Stats struct {
	Commits       uint64
	Aborts        uint64
	WALFlushes    uint64
	WALBytes      uint64
	PagesFlushed  uint64
	Checkpoints   uint64
	BinlogBytes   uint64
	StallsOnFlush uint64 // foreground ops that waited behind a checkpoint
	Cache         bufcache.Stats
	RedoRecords   int
	CheckpointLSN core.LSN
	DurableLSN    core.LSN
}

// DB is the baseline engine instance.
type DB struct {
	cfg Config

	// rootCtx bounds the instance's block IO. The baseline has no
	// per-statement deadline story — it exists for architectural
	// comparison — so every volume exchange runs under this root.
	rootCtx context.Context

	logVol    BlockDev
	dataVol   BlockDev
	binlogVol BlockDev

	locks *txn.LockTable
	ids   txn.IDs
	cache *bufcache.Cache

	latch sync.RWMutex // tree latch, same discipline as the Aurora engine

	mu        sync.Mutex // engine state below
	stable    map[core.PageID]page.Page
	dirty     map[core.PageID]bool
	wal       []core.Record // durable redo since the last checkpoint
	nextLSN   core.LSN
	ckptLSN   core.LSN
	durable   core.LSN
	binlogSeq int

	flushMu sync.Mutex // serializes WAL flushes (the log mutex)

	group *groupCommitter

	repl *Replication

	ckptRunning atomic.Bool

	commits     atomic.Uint64
	aborts      atomic.Uint64
	walFlushes  atomic.Uint64
	walBytes    atomic.Uint64
	pagesFlush  atomic.Uint64
	checkpoints atomic.Uint64
	binlogBytes atomic.Uint64
	stalls      atomic.Uint64
}

// New creates a freshly formatted baseline database. The instance node is
// registered on the network; EBS volumes (and the standby, if mirrored)
// are provisioned around it.
func New(cfg Config) (*DB, error) {
	cfg.fillDefaults()
	if cfg.Net == nil {
		return nil, errors.New("mysql: network required")
	}
	cfg.Net.AddNode(cfg.Instance, cfg.AZ)
	db := &DB{
		cfg:     cfg,
		rootCtx: context.Background(),
		locks:   txn.NewLockTable(cfg.LockTimeout),
		stable:  make(map[core.PageID]page.Page),
		dirty:   make(map[core.PageID]bool),
	}
	db.cache = bufcache.New(cfg.CachePages, func() core.LSN { return core.LSN(1) << 62 })
	name := string(cfg.Instance)
	if cfg.Mirrored {
		stby := cfg.Instance + "-standby"
		cfg.Net.AddNode(stby, cfg.StandbyAZ)
		db.logVol = ebs.NewMirrored(cfg.Net, name+"-log", cfg.Instance, stby, cfg.AZ, cfg.StandbyAZ, cfg.Disk)
		db.dataVol = ebs.NewMirrored(cfg.Net, name+"-data", cfg.Instance, stby, cfg.AZ, cfg.StandbyAZ, cfg.Disk)
		db.binlogVol = ebs.NewMirrored(cfg.Net, name+"-binlog", cfg.Instance, stby, cfg.AZ, cfg.StandbyAZ, cfg.Disk)
	} else {
		db.logVol = ebs.NewVolume(cfg.Net, name+"-log", cfg.Instance, cfg.AZ, cfg.Disk)
		db.dataVol = ebs.NewVolume(cfg.Net, name+"-data", cfg.Instance, cfg.AZ, cfg.Disk)
		db.binlogVol = ebs.NewVolume(cfg.Net, name+"-binlog", cfg.Instance, cfg.AZ, cfg.Disk)
	}
	db.group = newGroupCommitter(db, cfg.GroupCommitMax)

	// Format: create the tree and flush the formatting MTR like a commit.
	ws := &mysqlStore{db: db}
	rec := btree.NewRecorder()
	if _, err := btree.Create(ws, rec); err != nil {
		return nil, err
	}
	m := &core.MTR{Txn: 0}
	if err := rec.AppendRecords(m, func(core.PageID) core.PGID { return 0 }); err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.stampAndLog(rec, m)
	db.mu.Unlock()
	ws.done()
	if err := db.flushWAL(m.Records); err != nil {
		return nil, err
	}
	return db, nil
}

// stampAndLog assigns LSNs to the MTR's records, stamps the cached pages
// and appends to the in-memory WAL buffer view. Caller holds db.mu.
func (db *DB) stampAndLog(rec *btree.Recorder, m *core.MTR) {
	for i := range m.Records {
		db.nextLSN++
		m.Records[i].LSN = db.nextLSN
	}
	rec.StampLSNs(func(id core.PageID) core.LSN {
		var last core.LSN
		for i := range m.Records {
			if m.Records[i].PageRecord() && m.Records[i].Page == id {
				last = m.Records[i].LSN
			}
		}
		return last
	})
	// Content is written through to the stable image immediately so cache
	// eviction can never lose data; the disk IO for the page write is still
	// charged when the dirty page is flushed (eviction or checkpoint),
	// which is what the experiments measure.
	for _, id := range rec.TouchedPages() {
		db.dirty[id] = true
		if p, ok := db.cache.Get(id); ok {
			db.stable[id] = p.Clone()
			db.cache.Unpin(id)
		}
	}
}

// flushWAL persists records through the log volume (sequential,
// synchronous; mirrored when configured) and makes them durable.
func (db *DB) flushWAL(records []core.Record) error {
	size := 0
	var last core.LSN
	for i := range records {
		size += records[i].EncodedSize()
		if records[i].LSN > last {
			last = records[i].LSN
		}
	}
	db.flushMu.Lock()
	defer db.flushMu.Unlock()
	if err := db.logVol.Write(db.rootCtx, size); err != nil {
		return err
	}
	db.mu.Lock()
	db.wal = append(db.wal, records...)
	if last > db.durable {
		db.durable = last
	}
	db.mu.Unlock()
	db.walFlushes.Add(1)
	db.walBytes.Add(uint64(size))
	return nil
}

// writeBinlog archives the statement log for point-in-time restore.
func (db *DB) writeBinlog(bytes int) error {
	if err := db.binlogVol.Write(db.rootCtx, bytes); err != nil {
		return err
	}
	db.binlogBytes.Add(uint64(bytes))
	return nil
}

// mysqlStore adapts the stable store + cache to the btree.Store interface.
type mysqlStore struct {
	db   *DB
	pins []core.PageID
}

func (s *mysqlStore) Page(id core.PageID) (page.Page, error) {
	if p, ok := s.db.cache.Get(id); ok {
		s.pins = append(s.pins, id)
		return p, nil
	}
	s.db.mu.Lock()
	stable, ok := s.db.stable[id]
	var cp page.Page
	if ok {
		cp = stable.Clone()
	}
	s.db.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("mysql: page %d missing", id)
	}
	// A cache miss is a synchronous, foreground disk read (§1) — and if
	// the cache is full of dirty pages, eviction first flushes one
	// (page write + double-write), the extra penalty §1 describes.
	if err := s.db.maybeFlushForEviction(); err != nil {
		return nil, err
	}
	if err := s.db.dataVol.Read(s.db.rootCtx, page.Size); err != nil {
		return nil, err
	}
	cached := s.db.cache.Put(id, cp)
	s.pins = append(s.pins, id)
	return cached, nil
}

func (s *mysqlStore) FreshPage(id core.PageID) (page.Page, error) {
	p := page.New(id)
	cached := s.db.cache.Put(id, p)
	s.pins = append(s.pins, id)
	return cached, nil
}

func (s *mysqlStore) done() {
	for _, id := range s.pins {
		s.db.cache.Unpin(id)
	}
	s.pins = s.pins[:0]
}

// maybeFlushForEviction flushes one dirty page when the cache is at
// capacity, charging the foreground path for it.
func (db *DB) maybeFlushForEviction() error {
	st := db.cache.Stats()
	if st.Len < st.Capacity {
		return nil
	}
	db.mu.Lock()
	var victim core.PageID
	found := false
	for id := range db.dirty {
		victim = id
		found = true
		break
	}
	db.mu.Unlock()
	if !found {
		return nil
	}
	db.stalls.Add(1)
	return db.flushPage(victim)
}

// flushPage writes one page to the data volume with the double-write
// technique: first to the double-write buffer, then in place. The caller
// must hold the tree latch (shared or exclusive) so the page image cannot
// be mutated mid-clone.
func (db *DB) flushPage(id core.PageID) error {
	if err := db.dataVol.Write(db.rootCtx, page.Size); err != nil { // double-write buffer
		return err
	}
	if err := db.dataVol.Write(db.rootCtx, page.Size); err != nil { // page in place
		return err
	}
	db.mu.Lock()
	if p, ok := db.cache.Get(id); ok {
		db.stable[id] = p.Clone()
		db.cache.Unpin(id)
	}
	delete(db.dirty, id)
	db.mu.Unlock()
	db.pagesFlush.Add(2)
	return nil
}

// Checkpoint flushes every dirty page and advances the checkpoint LSN,
// bounding recovery redo. The flush proceeds in bursts that hold the tree
// latch exclusively, so every concurrent statement — reads included —
// stalls for several milliseconds at a time. This is the foreground
// interference §3.3 contrasts with Aurora, where background storage work
// correlates negatively with foreground load.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	ids := make([]core.PageID, 0, len(db.dirty))
	for id := range db.dirty {
		ids = append(ids, id)
	}
	target := db.durable
	db.mu.Unlock()
	const burst = 8
	for i := 0; i < len(ids); i += burst {
		end := i + burst
		if end > len(ids) {
			end = len(ids)
		}
		db.latch.Lock()
		for _, id := range ids[i:end] {
			if err := db.flushPage(id); err != nil {
				db.latch.Unlock()
				return err
			}
		}
		db.latch.Unlock()
	}
	db.mu.Lock()
	if target > db.ckptLSN {
		db.ckptLSN = target
		// Drop WAL records no longer needed for redo.
		keep := db.wal[:0]
		for _, r := range db.wal {
			if r.LSN > db.ckptLSN {
				keep = append(keep, r)
			}
		}
		db.wal = keep
	}
	seq := db.binlogSeq
	db.binlogSeq++
	db.mu.Unlock()
	if err := db.logVol.Write(db.rootCtx, 64); err != nil { // checkpoint record
		return err
	}
	if db.cfg.BinlogArchive != nil {
		db.cfg.BinlogArchive.Put(fmt.Sprintf("binlog/%s/%06d", db.cfg.Instance, seq), nil)
	}
	db.checkpoints.Add(1)
	return nil
}

// maybeCheckpoint triggers a checkpoint when too many pages are dirty.
// Checkpoints are single-flight: with hundreds of connections crossing the
// dirty threshold together, all but one ride on the running checkpoint
// instead of convoying through their own.
func (db *DB) maybeCheckpoint() error {
	db.mu.Lock()
	need := len(db.dirty) >= db.cfg.CheckpointDirtyPages
	db.mu.Unlock()
	if !need {
		return nil
	}
	if !db.ckptRunning.CompareAndSwap(false, true) {
		return nil // one is already flushing on some other connection
	}
	defer db.ckptRunning.Store(false)
	db.stalls.Add(1)
	return db.Checkpoint()
}

// Stats returns a snapshot of counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	redo := len(db.wal)
	ckpt := db.ckptLSN
	dur := db.durable
	db.mu.Unlock()
	return Stats{
		Commits:       db.commits.Load(),
		Aborts:        db.aborts.Load(),
		WALFlushes:    db.walFlushes.Load(),
		WALBytes:      db.walBytes.Load(),
		PagesFlushed:  db.pagesFlush.Load(),
		Checkpoints:   db.checkpoints.Load(),
		BinlogBytes:   db.binlogBytes.Load(),
		StallsOnFlush: db.stalls.Load(),
		Cache:         db.cache.Stats(),
		RedoRecords:   redo,
		CheckpointLSN: ckpt,
		DurableLSN:    dur,
	}
}

// Rows returns the approximate live row count.
func (db *DB) Rows() (uint64, error) {
	db.latch.RLock()
	defer db.latch.RUnlock()
	s := &mysqlStore{db: db}
	defer s.done()
	t := btree.View(s)
	return t.Rows()
}

// Close releases lock waiters.
func (db *DB) Close() {
	db.locks.Close()
	if db.repl != nil {
		db.repl.Close()
	}
}
