package mysql

import (
	"sort"
	"time"

	"aurora/internal/core"
	"aurora/internal/page"
)

// RecoveryReport describes an ARIES-style crash recovery: the database is
// offline while the redo log since the last checkpoint is read back and
// applied page by page — the cost Aurora amortizes into normal foreground
// processing (§4.3).
type RecoveryReport struct {
	RedoRecords  int
	PagesTouched int
	Duration     time.Duration
	From         core.LSN // checkpoint LSN redo started at
	To           core.LSN // durable LSN redo finished at
}

// CrashAndRecover simulates an instance crash followed by restart
// recovery. The buffer cache and dirty-page set are lost; the stable store
// and the durable WAL survive. Recovery holds the database offline
// (exclusive latch) for its entire duration.
func (db *DB) CrashAndRecover() (*RecoveryReport, error) {
	db.latch.Lock()
	defer db.latch.Unlock()

	// Crash: runtime state vanishes.
	db.cache.Invalidate()
	db.mu.Lock()
	db.dirty = make(map[core.PageID]bool)
	redo := make([]core.Record, 0, len(db.wal))
	for _, r := range db.wal {
		if r.LSN > db.ckptLSN {
			redo = append(redo, r)
		}
	}
	from, to := db.ckptLSN, db.durable
	db.mu.Unlock()
	sort.Slice(redo, func(i, j int) bool { return redo[i].LSN < redo[j].LSN })

	start := time.Now()
	rep := &RecoveryReport{RedoRecords: len(redo), From: from, To: to}

	// Analysis + redo: sequential WAL read, then per-page load/apply/write.
	walBytes := 0
	for i := range redo {
		walBytes += redo[i].EncodedSize()
	}
	if walBytes > 0 {
		if err := db.logVol.Read(db.rootCtx, walBytes); err != nil {
			return nil, err
		}
	}
	loaded := make(map[core.PageID]page.Page)
	for i := range redo {
		r := &redo[i]
		if !r.PageRecord() {
			continue
		}
		p, ok := loaded[r.Page]
		if !ok {
			db.mu.Lock()
			stable, have := db.stable[r.Page]
			if have {
				p = stable.Clone()
			} else {
				p = page.New(r.Page)
			}
			db.mu.Unlock()
			if err := db.dataVol.Read(db.rootCtx, page.Size); err != nil {
				return nil, err
			}
			loaded[r.Page] = p
		}
		if r.LSN > p.LSN() {
			if err := p.Apply(r); err != nil {
				return nil, err
			}
		}
	}
	// Write recovered pages back.
	for id, p := range loaded {
		if err := db.dataVol.Write(db.rootCtx, page.Size); err != nil {
			return nil, err
		}
		db.mu.Lock()
		db.stable[id] = p
		db.mu.Unlock()
	}
	rep.PagesTouched = len(loaded)
	rep.Duration = time.Since(start)

	// With the write-set commit model every durable record belongs to a
	// committed transaction, so the undo pass finds nothing in flight —
	// lock state simply restarts empty.
	return rep, nil
}
