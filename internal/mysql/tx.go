package mysql

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"aurora/internal/btree"
	"aurora/internal/core"
	"aurora/internal/txn"
)

// Tx mirrors the Aurora engine's transaction model (private write set
// under exclusive row locks, applied at commit) so that the two engines
// differ only in their storage architecture.
type Tx struct {
	db     *DB
	id     uint64
	writes map[string]writeOp
	order  []string
	done   bool
}

type writeOp struct {
	val []byte
	del bool
}

// Begin starts a transaction.
func (db *DB) Begin() *Tx {
	return &Tx{db: db, id: db.ids.Next(), writes: make(map[string]writeOp)}
}

// Get returns the value for key as seen by this transaction.
func (tx *Tx) Get(key []byte) ([]byte, bool, error) {
	if tx.done {
		return nil, false, ErrTxDone
	}
	if w, ok := tx.writes[string(key)]; ok {
		if w.del {
			return nil, false, nil
		}
		return append([]byte(nil), w.val...), true, nil
	}
	tx.db.latch.RLock()
	defer tx.db.latch.RUnlock()
	s := &mysqlStore{db: tx.db}
	defer s.done()
	t := btree.View(s)
	return t.Get(key)
}

// Put buffers an insert/update under the row lock.
func (tx *Tx) Put(key, val []byte) error {
	if tx.done {
		return ErrTxDone
	}
	if len(key) == 0 {
		return btree.ErrEmptyKey
	}
	if len(key) > btree.MaxKey {
		return btree.ErrKeyTooLarge
	}
	if len(val) > btree.MaxValue {
		return btree.ErrValueTooLarge
	}
	if err := tx.lockRow(key); err != nil {
		return err
	}
	k := string(key)
	if _, seen := tx.writes[k]; !seen {
		tx.order = append(tx.order, k)
	}
	tx.writes[k] = writeOp{val: append([]byte(nil), val...)}
	return nil
}

// Delete buffers a deletion under the row lock.
func (tx *Tx) Delete(key []byte) error {
	if tx.done {
		return ErrTxDone
	}
	if len(key) == 0 {
		return btree.ErrEmptyKey
	}
	if err := tx.lockRow(key); err != nil {
		return err
	}
	k := string(key)
	if _, seen := tx.writes[k]; !seen {
		tx.order = append(tx.order, k)
	}
	tx.writes[k] = writeOp{del: true}
	return nil
}

func (tx *Tx) lockRow(key []byte) error {
	if err := tx.db.locks.Acquire(tx.id, string(key)); err != nil {
		tx.finish(false)
		return fmt.Errorf("txn %d key %q: %w", tx.id, key, err)
	}
	return nil
}

// Scan visits rows in range, overlaying the transaction's writes.
func (tx *Tx) Scan(from, to []byte, fn func(key, val []byte) bool) error {
	if tx.done {
		return ErrTxDone
	}
	var pend []string
	for k := range tx.writes {
		bk := []byte(k)
		if from != nil && bytes.Compare(bk, from) < 0 {
			continue
		}
		if to != nil && bytes.Compare(bk, to) >= 0 {
			continue
		}
		pend = append(pend, k)
	}
	sort.Strings(pend)
	pi := 0
	stopped := false
	emitPending := func(upTo []byte) bool {
		for pi < len(pend) && (upTo == nil || bytes.Compare([]byte(pend[pi]), upTo) < 0) {
			w := tx.writes[pend[pi]]
			if !w.del && !fn([]byte(pend[pi]), w.val) {
				return false
			}
			pi++
		}
		return true
	}
	tx.db.latch.RLock()
	s := &mysqlStore{db: tx.db}
	t := btree.View(s)
	err := t.Scan(from, to, func(k, v []byte) bool {
		if !emitPending(k) {
			stopped = true
			return false
		}
		if w, ok := tx.writes[string(k)]; ok {
			if pi < len(pend) && pend[pi] == string(k) {
				pi++
			}
			if w.del {
				return true
			}
			if !fn(k, w.val) {
				stopped = true
				return false
			}
			return true
		}
		if !fn(k, v) {
			stopped = true
			return false
		}
		return true
	})
	s.done()
	tx.db.latch.RUnlock()
	if err != nil {
		return err
	}
	if !stopped {
		emitPending(nil)
	}
	return nil
}

// Commit applies the write set to the tree, then performs the traditional
// durability protocol: WAL flush (group committed through the serialized
// log mutex and the synchronous EBS chain), binlog write, and — unlike
// Aurora — eventual data page writes with double-writes, plus checkpoint
// stalls when too many pages are dirty.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	if len(tx.writes) == 0 {
		tx.finish(true)
		return nil
	}
	tx.db.latch.Lock()
	s := &mysqlStore{db: tx.db}
	t := btree.View(s)
	rec := btree.NewRecorder()
	binlogBytes := 0
	for _, k := range tx.order {
		w := tx.writes[k]
		var err error
		if w.del {
			_, err = t.Delete(rec, []byte(k))
			binlogBytes += len(k) + 16
		} else {
			err = t.Put(rec, []byte(k), w.val)
			binlogBytes += len(k) + len(w.val) + 16
		}
		if err != nil {
			rec.Rollback()
			s.done()
			tx.db.latch.Unlock()
			tx.finish(false)
			return fmt.Errorf("txn %d apply: %w", tx.id, err)
		}
	}
	m := &core.MTR{Txn: tx.id}
	if err := rec.AppendRecords(m, func(core.PageID) core.PGID { return 0 }); err != nil {
		rec.Rollback()
		s.done()
		tx.db.latch.Unlock()
		tx.finish(false)
		return err
	}
	m.AddMeta(core.RecTxnCommit, 0)
	tx.db.mu.Lock()
	tx.db.stampAndLog(rec, m)
	tx.db.mu.Unlock()
	s.done()
	tx.db.latch.Unlock()

	// Durability: group-committed WAL flush + binlog.
	if err := tx.db.group.commit(m.Records, binlogBytes); err != nil {
		tx.finish(false)
		return err
	}
	// Replicate logical row events after the commit is durable.
	if tx.db.repl != nil {
		evs := make([]binlogEvent, 0, len(tx.order))
		now := time.Now()
		for _, k := range tx.order {
			w := tx.writes[k]
			evs = append(evs, binlogEvent{key: k, val: w.val, del: w.del, committed: now})
		}
		tx.db.repl.publish(evs)
	}
	if err := tx.db.maybeCheckpoint(); err != nil {
		tx.finish(false)
		return err
	}
	tx.finish(true)
	return nil
}

// Abort discards the write set.
func (tx *Tx) Abort() {
	if tx.done {
		return
	}
	tx.finish(false)
}

func (tx *Tx) finish(committed bool) {
	tx.done = true
	tx.db.locks.ReleaseAll(tx.id)
	if committed {
		tx.db.commits.Add(1)
	} else {
		tx.db.aborts.Add(1)
	}
}

// Autocommit helpers mirroring the Aurora engine's.

// Put writes one row in its own transaction.
func (db *DB) Put(key, val []byte) error {
	tx := db.Begin()
	if err := tx.Put(key, val); err != nil {
		return err
	}
	return tx.Commit()
}

// Get reads one row.
func (db *DB) Get(key []byte) ([]byte, bool, error) {
	tx := db.Begin()
	defer tx.Abort()
	return tx.Get(key)
}

// Delete removes one row in its own transaction.
func (db *DB) Delete(key []byte) error {
	tx := db.Begin()
	if err := tx.Delete(key); err != nil {
		return err
	}
	return tx.Commit()
}

// LockTable exposes the lock table for tests.
func (db *DB) LockTable() *txn.LockTable { return db.locks }
