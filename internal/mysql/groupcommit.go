package mysql

import "aurora/internal/core"

// groupCommitter batches concurrent commits into shared WAL flushes. The
// flush itself is serialized — InnoDB's log mutex — so commit throughput is
// bounded by the latency of one synchronous chain through EBS (and the
// standby, when mirrored) times the achievable group size. This is the
// structural stall Aurora removes by acknowledging quorums asynchronously
// (§3.1, §4.2.2).
type groupCommitter struct {
	db  *DB
	ch  chan commitReq
	max int
}

type commitReq struct {
	records []core.Record
	binlog  int
	done    chan error
}

func newGroupCommitter(db *DB, max int) *groupCommitter {
	g := &groupCommitter{db: db, ch: make(chan commitReq, 4096), max: max}
	go g.loop()
	return g
}

// commit enqueues and waits for the flush that covers this commit.
func (g *groupCommitter) commit(records []core.Record, binlogBytes int) error {
	req := commitReq{records: records, binlog: binlogBytes, done: make(chan error, 1)}
	g.ch <- req
	return <-req.done
}

func (g *groupCommitter) loop() {
	for req := range g.ch {
		batch := []commitReq{req}
		// Absorb whatever else is already queued, up to the group bound.
	drain:
		for len(batch) < g.max {
			select {
			case more := <-g.ch:
				batch = append(batch, more)
			default:
				break drain
			}
		}
		var all []core.Record
		binlog := 0
		for _, b := range batch {
			all = append(all, b.records...)
			binlog += b.binlog
		}
		err := g.db.flushWAL(all)
		if err == nil && binlog > 0 {
			err = g.db.writeBinlog(binlog)
		}
		for _, b := range batch {
			b.done <- err
		}
	}
}
