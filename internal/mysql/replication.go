package mysql

import (
	"sync"
	"time"
)

// binlogEvent is one logical row change shipped to the replica, stamped
// with its commit time so lag is directly measurable.
type binlogEvent struct {
	key       string
	val       []byte
	del       bool
	committed time.Time
}

// Replication is MySQL-style asynchronous binlog replication: the primary
// appends logical events to an unbounded relay queue and a single SQL
// thread on the replica applies them serially, each with the replica's own
// full write path. Under parallel primary load the serial apply falls
// behind and lag grows to seconds or minutes (Table 4, Figure 11's "before"
// world) — unlike Aurora replicas, which consume the writer's redo stream
// directly.
type Replication struct {
	replica *DB

	mu     sync.Mutex
	queue  []binlogEvent
	busy   bool
	wake   chan struct{}
	closed bool
	done   chan struct{}

	lagMu   sync.Mutex
	lastLag time.Duration
	maxLag  time.Duration
	applied uint64
}

// AttachReplica wires a previously created baseline DB as this primary's
// replica and starts the apply thread. The replica must start from the
// same (empty) state as the primary had when created.
func (db *DB) AttachReplica(replica *DB) *Replication {
	r := &Replication{
		replica: replica,
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	db.repl = r
	go r.applyLoop()
	return r
}

func (r *Replication) publish(evs []binlogEvent) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.queue = append(r.queue, evs...)
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

func (r *Replication) applyLoop() {
	defer close(r.done)
	for range r.wake {
		for {
			r.mu.Lock()
			if len(r.queue) == 0 {
				r.busy = false
				r.mu.Unlock()
				break
			}
			ev := r.queue[0]
			r.queue = r.queue[1:]
			r.busy = true
			r.mu.Unlock()

			// Serial apply through the replica's full write path.
			var err error
			if ev.del {
				err = r.replica.Delete([]byte(ev.key))
			} else {
				err = r.replica.Put([]byte(ev.key), ev.val)
			}
			lag := time.Since(ev.committed)
			r.lagMu.Lock()
			r.lastLag = lag
			if lag > r.maxLag {
				r.maxLag = lag
			}
			if err == nil {
				r.applied++
			}
			r.lagMu.Unlock()
		}
	}
}

// Lag returns the most recent and maximum observed replica lag, and the
// current relay queue depth.
func (r *Replication) Lag() (last, max time.Duration, queued int) {
	r.mu.Lock()
	queued = len(r.queue)
	r.mu.Unlock()
	r.lagMu.Lock()
	defer r.lagMu.Unlock()
	return r.lastLag, r.maxLag, queued
}

// Applied returns the number of events the replica has applied.
func (r *Replication) Applied() uint64 {
	r.lagMu.Lock()
	defer r.lagMu.Unlock()
	return r.applied
}

// Drain blocks until the relay queue is empty (tests and experiments).
func (r *Replication) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		r.mu.Lock()
		empty := len(r.queue) == 0 && !r.busy
		r.mu.Unlock()
		if empty {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Close stops the apply thread.
func (r *Replication) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.wake)
	<-r.done
}
