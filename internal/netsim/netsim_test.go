package netsim

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func twoNodeNet(cfg Config) *Network {
	n := New(cfg)
	n.AddNode("a", 0)
	n.AddNode("b", 1)
	n.AddNode("c", 0)
	return n
}

func TestSendCountsTraffic(t *testing.T) {
	n := twoNodeNet(FastLocal())
	for i := 0; i < 5; i++ {
		if err := n.Send(context.Background(), "a", "b", 100); err != nil {
			t.Fatal(err)
		}
	}
	s := n.Stats()
	if s.Messages != 5 || s.Bytes != 500 {
		t.Fatalf("stats %+v", s)
	}
	sent, sentB, _, _, ok := n.NodeStats("a")
	if !ok || sent != 5 || sentB != 500 {
		t.Fatalf("node a stats: %d %d", sent, sentB)
	}
	_, _, recv, recvB, _ := n.NodeStats("b")
	if recv != 5 || recvB != 500 {
		t.Fatalf("node b stats: %d %d", recv, recvB)
	}
	n.ResetStats()
	if s := n.Stats(); s.Messages != 0 || s.Bytes != 0 {
		t.Fatalf("reset failed: %+v", s)
	}
}

func TestSendUnknownAndDownNodes(t *testing.T) {
	n := twoNodeNet(FastLocal())
	if err := n.Send(context.Background(), "a", "zz", 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown dest: %v", err)
	}
	if err := n.Send(context.Background(), "zz", "a", 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown src: %v", err)
	}
	if err := n.SetNodeDown("b", true); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(context.Background(), "a", "b", 1); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("down dest: %v", err)
	}
	if !n.NodeDown("b") {
		t.Fatal("NodeDown not reported")
	}
	if err := n.SetNodeDown("b", false); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(context.Background(), "a", "b", 1); err != nil {
		t.Fatalf("restored node: %v", err)
	}
	if n.Stats().Rejects != 1 {
		t.Fatalf("rejects %d, want 1", n.Stats().Rejects)
	}
}

func TestAZFailureIsCorrelated(t *testing.T) {
	n := twoNodeNet(FastLocal())
	n.SetAZDown(0, true)
	// Both a and c live in AZ 0: everything touching them fails.
	if err := n.Send(context.Background(), "a", "b", 1); !errors.Is(err, ErrAZDown) {
		t.Fatalf("a->b: %v", err)
	}
	if err := n.Send(context.Background(), "b", "c", 1); !errors.Is(err, ErrAZDown) {
		t.Fatalf("b->c: %v", err)
	}
	n.SetAZDown(0, false)
	if err := n.Send(context.Background(), "a", "b", 1); err != nil {
		t.Fatal(err)
	}
}

func TestPartition(t *testing.T) {
	n := twoNodeNet(FastLocal())
	n.Partition("b", "a", true)
	if err := n.Send(context.Background(), "a", "b", 1); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned: %v", err)
	}
	// Order-insensitive and other links unaffected.
	if err := n.Send(context.Background(), "a", "c", 1); err != nil {
		t.Fatal(err)
	}
	n.Partition("a", "b", false)
	if err := n.Send(context.Background(), "a", "b", 1); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyModel(t *testing.T) {
	cfg := Config{IntraAZ: time.Millisecond, CrossAZ: 5 * time.Millisecond}
	n := twoNodeNet(cfg)
	var slept []time.Duration
	var mu sync.Mutex
	n.SetSleeper(func(d time.Duration) { mu.Lock(); slept = append(slept, d); mu.Unlock() })
	if err := n.Send(context.Background(), "a", "c", 0); err != nil { // same AZ
		t.Fatal(err)
	}
	if err := n.Send(context.Background(), "a", "b", 0); err != nil { // cross AZ
		t.Fatal(err)
	}
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 5*time.Millisecond {
		t.Fatalf("slept %v", slept)
	}
}

func TestBandwidthSerializationDelay(t *testing.T) {
	cfg := Config{IntraAZ: 0, Bandwidth: 1000} // 1000 B/s
	n := twoNodeNet(cfg)
	var slept time.Duration
	n.SetSleeper(func(d time.Duration) { slept += d })
	if err := n.Send(context.Background(), "a", "c", 500); err != nil {
		t.Fatal(err)
	}
	if slept != 500*time.Millisecond {
		t.Fatalf("serialization delay %v, want 500ms", slept)
	}
}

func TestSlowNodeMultiplier(t *testing.T) {
	cfg := Config{IntraAZ: time.Millisecond}
	n := twoNodeNet(cfg)
	var slept time.Duration
	n.SetSleeper(func(d time.Duration) { slept = d })
	if err := n.SetSlowNode("c", 8); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(context.Background(), "a", "c", 0); err != nil {
		t.Fatal(err)
	}
	if slept != 8*time.Millisecond {
		t.Fatalf("slow node latency %v, want 8ms", slept)
	}
	if err := n.SetSlowNode("c", 1); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(context.Background(), "a", "c", 0); err != nil {
		t.Fatal(err)
	}
	if slept != time.Millisecond {
		t.Fatalf("cleared slow node latency %v", slept)
	}
	if err := n.SetSlowNode("nope", 2); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestDropProbability(t *testing.T) {
	cfg := Config{DropProb: 0.5, Seed: 7}
	n := twoNodeNet(cfg)
	drops := 0
	const total = 2000
	for i := 0; i < total; i++ {
		err := n.Send(context.Background(), "a", "b", 10)
		if errors.Is(err, ErrDropped) {
			drops++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if drops < total/3 || drops > 2*total/3 {
		t.Fatalf("drops %d of %d, expected ~half", drops, total)
	}
	if n.Stats().Drops != uint64(drops) {
		t.Fatalf("drop counter %d != %d", n.Stats().Drops, drops)
	}
	// Dropped messages still cost sender traffic but never arrive.
	_, _, recv, _, _ := n.NodeStats("b")
	if recv != uint64(total-drops) {
		t.Fatalf("receiver saw %d, want %d", recv, total-drops)
	}
}

func TestNodeReplacementMovesAZ(t *testing.T) {
	n := twoNodeNet(FastLocal())
	if az, _ := n.NodeAZ("a"); az != 0 {
		t.Fatal("setup")
	}
	n.AddNode("a", 2)
	if az, _ := n.NodeAZ("a"); az != 2 {
		t.Fatal("AddNode did not move node")
	}
	n.RemoveNode("a")
	if _, ok := n.NodeAZ("a"); ok {
		t.Fatal("node not removed")
	}
}

func TestConcurrentSends(t *testing.T) {
	n := twoNodeNet(Config{Jitter: 0.3, OutlierProb: 0.01, OutlierMult: 5, DropProb: 0.01})
	n.SetSleeper(func(time.Duration) {})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				err := n.Send(context.Background(), "a", "b", 64)
				if err != nil && !errors.Is(err, ErrDropped) {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := n.Stats().Messages; got != 4000 {
		t.Fatalf("messages %d, want 4000", got)
	}
}

func TestNodeDelayGraySlow(t *testing.T) {
	n := New(FastLocal())
	var slept time.Duration
	n.SetSleeper(func(d time.Duration) { slept = d })
	n.AddNode("a", 0)
	n.AddNode("b", 0)
	if err := n.SetNodeDelay("b", 3*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(context.Background(), "a", "b", 10); err != nil {
		t.Fatal(err)
	}
	if slept < 3*time.Millisecond {
		t.Fatalf("slept %v, want >= 3ms from gray-slow delay", slept)
	}
	// Clearing restores zero latency even under FastLocal.
	if err := n.SetNodeDelay("b", 0); err != nil {
		t.Fatal(err)
	}
	slept = 0
	if err := n.Send(context.Background(), "a", "b", 10); err != nil {
		t.Fatal(err)
	}
	if slept != 0 {
		t.Fatalf("slept %v after clearing delay", slept)
	}
	if err := n.SetNodeDelay("ghost", time.Millisecond); err == nil {
		t.Fatal("delay on unknown node accepted")
	}
}

func TestRuntimeDropProbOverride(t *testing.T) {
	n := New(FastLocal())
	n.AddNode("a", 0)
	n.AddNode("b", 1)
	n.SetDropProb(1)
	if err := n.Send(context.Background(), "a", "b", 8); !errors.Is(err, ErrDropped) {
		t.Fatalf("send with p=1: %v", err)
	}
	n.SetDropProb(0)
	if err := n.Send(context.Background(), "a", "b", 8); err != nil {
		t.Fatalf("send after clearing drop prob: %v", err)
	}
}

func TestLinkDropIsDirectional(t *testing.T) {
	n := New(FastLocal())
	n.AddNode("a", 0)
	n.AddNode("b", 0)
	n.SetLinkDropProb("b", "a", 1)
	if err := n.Send(context.Background(), "a", "b", 8); err != nil {
		t.Fatalf("forward path: %v", err)
	}
	if err := n.Send(context.Background(), "b", "a", 8); !errors.Is(err, ErrDropped) {
		t.Fatalf("reverse path: %v", err)
	}
	n.SetLinkDropProb("b", "a", 0)
	if err := n.Send(context.Background(), "b", "a", 8); err != nil {
		t.Fatalf("reverse path after clear: %v", err)
	}
}
