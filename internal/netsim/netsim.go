// Package netsim simulates the multi-AZ network that Aurora's argument
// revolves around: the paper's central claim is that the bottleneck of a
// cloud database has moved to the network between the database tier and the
// storage tier (§1). The simulator models per-hop latency (intra-AZ vs
// cross-AZ), bandwidth, jitter and heavy-tailed outliers ("the tail at
// scale" [42]), silent message loss, node failures, AZ failures and
// partitions — and it counts every message and byte so experiments such as
// Table 1 can report network IOs per transaction.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// AZ identifies an availability zone (0..2 in the standard topology).
type AZ uint8

// NodeID names a participant in the network (database instance, storage
// node, replica, EBS server...).
type NodeID string

// Errors returned by Send.
var (
	ErrUnknownNode = errors.New("netsim: unknown node")
	ErrNodeDown    = errors.New("netsim: node down")
	ErrAZDown      = errors.New("netsim: availability zone down")
	ErrPartitioned = errors.New("netsim: link partitioned")
	ErrDropped     = errors.New("netsim: message silently dropped")
	// ErrAbandoned is returned when the caller's context is canceled while
	// the message is in flight: the sender stopped waiting for the reply.
	// The wrapped error includes ctx.Err(), so errors.Is also matches
	// context.Canceled / context.DeadlineExceeded.
	ErrAbandoned = errors.New("netsim: send abandoned")
)

// Config sets the latency model.
type Config struct {
	// IntraAZ is the one-way latency between two nodes in the same AZ.
	IntraAZ time.Duration
	// CrossAZ is the one-way latency between nodes in different AZs.
	CrossAZ time.Duration
	// Jitter is the fractional uniform jitter applied to every latency
	// sample (0.2 means ±20%).
	Jitter float64
	// OutlierProb is the probability that a message experiences a tail
	// event, multiplying its latency by OutlierMult. This reproduces the
	// outlier-performance arguments of §1 and §3.1.
	OutlierProb float64
	OutlierMult float64
	// DropProb is the probability a message is silently lost in transit
	// (the sender observes success). Lost log batches are what the storage
	// gossip protocol exists to repair (§3.3 step 4).
	DropProb float64
	// Bandwidth in bytes/second per link; 0 means unlimited. Serialization
	// delay size/Bandwidth is added to each message's latency.
	Bandwidth int64
	// Seed for the deterministic RNG. 0 selects a fixed default.
	Seed int64
}

// FastLocal returns a config with zero latencies for logic-focused tests.
func FastLocal() Config { return Config{} }

// Datacenter returns the default scaled-down three-AZ latency model used by
// the benchmark harness: 100µs intra-AZ, 500µs cross-AZ, light jitter and a
// 1-in-1000 10x outlier.
func Datacenter() Config {
	return Config{
		IntraAZ:     100 * time.Microsecond,
		CrossAZ:     500 * time.Microsecond,
		Jitter:      0.2,
		OutlierProb: 0.001,
		OutlierMult: 10,
		Bandwidth:   1 << 30, // 1 GiB/s per link
	}
}

// Stats is a snapshot of traffic counters.
type Stats struct {
	Messages uint64
	Bytes    uint64
	Drops    uint64
	Rejects  uint64 // sends refused due to down nodes/partitions
	Abandons uint64 // sends whose caller gave up (context canceled) mid-flight
}

type node struct {
	az         AZ
	down       atomic.Bool
	slowMult   atomic.Int64 // x1000 fixed point; 0 means 1.0
	extraDelay atomic.Int64 // nanoseconds added to every message touching the node
	sent       atomic.Uint64
	sentB      atomic.Uint64
	recv       atomic.Uint64
	recvB      atomic.Uint64
}

// Network is a simulated multi-AZ network. All methods are safe for
// concurrent use.
type Network struct {
	cfg Config

	mu         sync.RWMutex
	nodes      map[NodeID]*node
	azDown     [8]bool
	partitions map[[2]NodeID]bool
	linkDrops  map[[2]NodeID]float64 // directional [from,to] drop probability

	dropProb atomic.Uint64 // Float64bits; runtime override of cfg.DropProb

	rngMu sync.Mutex
	rng   *rand.Rand

	messages atomic.Uint64
	bytes    atomic.Uint64
	drops    atomic.Uint64
	rejects  atomic.Uint64
	abandons atomic.Uint64

	sleep func(time.Duration) // test override; nil means real timers
}

// New builds a network with the given latency model.
func New(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x44757261 // deterministic default
	}
	return &Network{
		cfg:        cfg,
		nodes:      make(map[NodeID]*node),
		partitions: make(map[[2]NodeID]bool),
		linkDrops:  make(map[[2]NodeID]float64),
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// SetSleeper overrides the sleep function (tests use a recording sleeper).
func (n *Network) SetSleeper(f func(time.Duration)) { n.sleep = f }

// AddNode registers a node in the given AZ. Registering an existing node
// moves it (used when a segment is repaired onto a new host).
func (n *Network) AddNode(id NodeID, az AZ) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if existing, ok := n.nodes[id]; ok {
		existing.az = az
		return
	}
	n.nodes[id] = &node{az: az}
}

// RemoveNode deletes a node entirely.
func (n *Network) RemoveNode(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, id)
}

// NodeAZ reports the AZ a node lives in.
func (n *Network) NodeAZ(id NodeID) (AZ, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	nd, ok := n.nodes[id]
	if !ok {
		return 0, false
	}
	return nd.az, true
}

// SetNodeDown marks a node failed (or repaired). Sends to or from a down
// node fail with ErrNodeDown.
func (n *Network) SetNodeDown(id NodeID, down bool) error {
	n.mu.RLock()
	nd, ok := n.nodes[id]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	nd.down.Store(down)
	return nil
}

// NodeDown reports whether the node is marked failed.
func (n *Network) NodeDown(id NodeID) bool {
	n.mu.RLock()
	nd, ok := n.nodes[id]
	n.mu.RUnlock()
	return ok && nd.down.Load()
}

// SetAZDown fails or restores an entire availability zone — the correlated
// failure mode §2.1 designs for.
func (n *Network) SetAZDown(az AZ, down bool) {
	n.mu.Lock()
	n.azDown[az%8] = down
	n.mu.Unlock()
}

// SetSlowNode applies a latency multiplier to all traffic touching the
// node, simulating a hot or throttled storage node (§3.3). mult <= 1 clears.
func (n *Network) SetSlowNode(id NodeID, mult float64) error {
	n.mu.RLock()
	nd, ok := n.nodes[id]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	if mult <= 1 {
		nd.slowMult.Store(0)
	} else {
		nd.slowMult.Store(int64(mult * 1000))
	}
	return nil
}

// SetNodeDelay adds a fixed latency to every message touching the node — a
// gray-slow node: alive, acking, but inflating the tail (§2.1's background
// noise without a Down signal). d <= 0 clears.
func (n *Network) SetNodeDelay(id NodeID, d time.Duration) error {
	n.mu.RLock()
	nd, ok := n.nodes[id]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	if d < 0 {
		d = 0
	}
	nd.extraDelay.Store(int64(d))
	return nil
}

// SetDropProb overrides the configured silent-loss probability at runtime —
// the probabilistic packet loss of a gray network path. p <= 0 restores the
// configured value.
func (n *Network) SetDropProb(p float64) {
	if p < 0 {
		p = 0
	}
	n.dropProb.Store(math.Float64bits(p))
}

// SetLinkDropProb drops the given fraction of messages on one directional
// link (from -> to only), modelling an asymmetric gray path where requests
// arrive but responses vanish. p <= 0 clears the link override.
func (n *Network) SetLinkDropProb(from, to NodeID, p float64) {
	key := [2]NodeID{from, to}
	n.mu.Lock()
	if p <= 0 {
		delete(n.linkDrops, key)
	} else {
		n.linkDrops[key] = p
	}
	n.mu.Unlock()
}

// Partition blocks (or restores) the link between two nodes in both
// directions.
func (n *Network) Partition(a, b NodeID, blocked bool) {
	if b < a {
		a, b = b, a
	}
	n.mu.Lock()
	if blocked {
		n.partitions[[2]NodeID{a, b}] = true
	} else {
		delete(n.partitions, [2]NodeID{a, b})
	}
	n.mu.Unlock()
}

// Send transports size bytes from one node to another, blocking for the
// modelled latency or until ctx is canceled, whichever comes first. It
// returns ErrDropped for silent loss (the message must not be delivered), a
// reachability error when either endpoint is down or the link is
// partitioned, and ErrAbandoned (wrapping ctx.Err()) when the caller's
// context fires mid-flight — the sender stopped waiting for the reply.
func (n *Network) Send(ctx context.Context, from, to NodeID, size int) error {
	return n.send(ctx, from, to, size)
}

// SendBytes transports the given payload views from one node to another
// with the same latency/loss model as Send, sized by the sum of the view
// lengths. The payloads are BORROWED: they are only guaranteed valid for
// the duration of the call, and the network never retains them — the
// simulated wire carries sizes, so zero-copy senders can pass views into a
// recyclable arena and reclaim it as soon as the delivery round-trip
// resolves. It returns the total payload size actually modelled.
func (n *Network) SendBytes(ctx context.Context, from, to NodeID, payloads [][]byte) (int, error) {
	size := 0
	for _, p := range payloads {
		size += len(p)
	}
	return size, n.send(ctx, from, to, size)
}

func (n *Network) send(ctx context.Context, from, to NodeID, size int) error {
	if err := ctx.Err(); err != nil {
		n.abandons.Add(1)
		return fmt.Errorf("%w: %w", ErrAbandoned, err)
	}
	n.mu.RLock()
	src, okSrc := n.nodes[from]
	dst, okDst := n.nodes[to]
	var partitioned bool
	var linkDrop float64
	if okSrc && okDst {
		a, b := from, to
		if b < a {
			a, b = b, a
		}
		partitioned = n.partitions[[2]NodeID{a, b}]
		linkDrop = n.linkDrops[[2]NodeID{from, to}]
	}
	var srcAZDown, dstAZDown bool
	if okSrc {
		srcAZDown = n.azDown[src.az%8]
	}
	if okDst {
		dstAZDown = n.azDown[dst.az%8]
	}
	n.mu.RUnlock()

	if !okSrc {
		return fmt.Errorf("%w: %s", ErrUnknownNode, from)
	}
	if !okDst {
		return fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	if src.down.Load() {
		n.rejects.Add(1)
		return fmt.Errorf("%w: %s", ErrNodeDown, from)
	}
	if dst.down.Load() {
		n.rejects.Add(1)
		return fmt.Errorf("%w: %s", ErrNodeDown, to)
	}
	if srcAZDown || dstAZDown {
		n.rejects.Add(1)
		return ErrAZDown
	}
	if partitioned {
		n.rejects.Add(1)
		return ErrPartitioned
	}

	dropP := n.cfg.DropProb
	if dyn := math.Float64frombits(n.dropProb.Load()); dyn > 0 {
		dropP = dyn
	}
	if linkDrop > dropP {
		dropP = linkDrop
	}
	lat, dropped := n.sample(src, dst, size, dropP)
	if lat > 0 {
		if n.sleep != nil {
			// Test-provided sleeper: run it, then honor a context that
			// fired while it slept.
			n.sleep(lat)
			if err := ctx.Err(); err != nil {
				n.abandons.Add(1)
				return fmt.Errorf("%w: %w", ErrAbandoned, err)
			}
		} else if done := ctx.Done(); done != nil {
			t := time.NewTimer(lat)
			select {
			case <-t.C:
			case <-done:
				t.Stop()
				n.abandons.Add(1)
				return fmt.Errorf("%w: %w", ErrAbandoned, ctx.Err())
			}
		} else {
			time.Sleep(lat)
		}
	}
	n.messages.Add(1)
	n.bytes.Add(uint64(size))
	src.sent.Add(1)
	src.sentB.Add(uint64(size))
	if dropped {
		n.drops.Add(1)
		return ErrDropped
	}
	dst.recv.Add(1)
	dst.recvB.Add(uint64(size))
	return nil
}

// sample computes latency and loss for one message.
func (n *Network) sample(src, dst *node, size int, dropP float64) (time.Duration, bool) {
	base := n.cfg.CrossAZ
	if src.az == dst.az {
		base = n.cfg.IntraAZ
	}
	if n.cfg.Bandwidth > 0 && size > 0 {
		base += time.Duration(int64(size) * int64(time.Second) / n.cfg.Bandwidth)
	}
	var dropped bool
	if n.cfg.Jitter > 0 || n.cfg.OutlierProb > 0 || dropP > 0 {
		n.rngMu.Lock()
		if n.cfg.Jitter > 0 {
			j := 1 + n.cfg.Jitter*(2*n.rng.Float64()-1)
			base = time.Duration(float64(base) * j)
		}
		if n.cfg.OutlierProb > 0 && n.rng.Float64() < n.cfg.OutlierProb {
			base = time.Duration(float64(base) * n.cfg.OutlierMult)
		}
		if dropP > 0 && n.rng.Float64() < dropP {
			dropped = true
		}
		n.rngMu.Unlock()
	}
	for _, nd := range [2]*node{src, dst} {
		if m := nd.slowMult.Load(); m > 0 {
			base = time.Duration(int64(base) * m / 1000)
		}
		if d := nd.extraDelay.Load(); d > 0 {
			base += time.Duration(d)
		}
	}
	return base, dropped
}

// Stats returns global traffic counters.
func (n *Network) Stats() Stats {
	return Stats{
		Messages: n.messages.Load(),
		Bytes:    n.bytes.Load(),
		Drops:    n.drops.Load(),
		Rejects:  n.rejects.Load(),
		Abandons: n.abandons.Load(),
	}
}

// NodeStats returns per-node counters: messages/bytes sent and received.
func (n *Network) NodeStats(id NodeID) (sent, sentBytes, recv, recvBytes uint64, ok bool) {
	n.mu.RLock()
	nd, found := n.nodes[id]
	n.mu.RUnlock()
	if !found {
		return 0, 0, 0, 0, false
	}
	return nd.sent.Load(), nd.sentB.Load(), nd.recv.Load(), nd.recvB.Load(), true
}

// ResetStats zeroes all counters (per-node and global).
func (n *Network) ResetStats() {
	n.messages.Store(0)
	n.bytes.Store(0)
	n.drops.Store(0)
	n.rejects.Store(0)
	n.abandons.Store(0)
	n.mu.RLock()
	for _, nd := range n.nodes {
		nd.sent.Store(0)
		nd.sentB.Store(0)
		nd.recv.Store(0)
		nd.recvB.Store(0)
	}
	n.mu.RUnlock()
}
