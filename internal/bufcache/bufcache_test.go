package bufcache

import (
	"sync"
	"testing"

	"aurora/internal/core"
	"aurora/internal/page"
)

func mkPage(id core.PageID, lsn core.LSN) page.Page {
	p := page.New(id)
	p.SetLSN(lsn)
	return p
}

func TestHitMissAndPin(t *testing.T) {
	c := New(4, func() core.LSN { return 100 })
	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, mkPage(1, 5))
	c.Unpin(1)
	p, ok := c.Get(1)
	if !ok || p.ID() != 1 {
		t.Fatal("miss after put")
	}
	c.Unpin(1)
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Len != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(2, func() core.LSN { return 100 })
	c.Put(1, mkPage(1, 1))
	c.Unpin(1)
	c.Put(2, mkPage(2, 2))
	c.Unpin(2)
	// Touch page 1 so page 2 is the LRU victim.
	if _, ok := c.Get(1); !ok {
		t.Fatal("page 1 missing")
	}
	c.Unpin(1)
	c.Put(3, mkPage(3, 3))
	c.Unpin(3)
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU page 2 survived")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("recently used page 1 evicted")
	}
	c.Unpin(1)
}

func TestVDLEvictionRule(t *testing.T) {
	vdl := core.LSN(10)
	c := New(2, func() core.LSN { return vdl })
	// Two pages whose latest changes are NOT durable yet.
	c.Put(1, mkPage(1, 20))
	c.Unpin(1)
	c.Put(2, mkPage(2, 25))
	c.Unpin(2)
	// Nothing is evictable: the cache must overflow, never drop them.
	c.Put(3, mkPage(3, 30))
	c.Unpin(3)
	if c.Len() != 3 {
		t.Fatalf("len %d, want 3 (overflow)", c.Len())
	}
	if c.Stats().Overflow != 1 {
		t.Fatalf("overflow %d", c.Stats().Overflow)
	}
	// The VDL advances past page 1 and 2: now eviction may proceed.
	vdl = 26
	c.Put(4, mkPage(4, 40))
	c.Unpin(4)
	if _, ok := c.Get(1); ok {
		t.Fatal("page 1 should have been evicted once durable")
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions counted")
	}
}

func TestPinnedPagesNeverEvicted(t *testing.T) {
	c := New(1, func() core.LSN { return 1000 })
	c.Put(1, mkPage(1, 1)) // stays pinned
	c.Put(2, mkPage(2, 2))
	c.Unpin(2)
	if _, ok := c.Get(1); !ok {
		t.Fatal("pinned page evicted")
	}
	c.Unpin(1)
	c.Unpin(1) // now unpinned
	if err := c.Evict(1); err != nil {
		t.Fatal(err)
	}
}

func TestEvictRespectsPins(t *testing.T) {
	c := New(4, func() core.LSN { return 1000 })
	c.Put(1, mkPage(1, 1))
	if err := c.Evict(1); err != ErrPinned {
		t.Fatalf("evict pinned: %v", err)
	}
	c.Unpin(1)
	if err := c.Evict(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Evict(99); err != nil {
		t.Fatal("evict of absent page should be nil")
	}
}

func TestPutReplacesAndRepins(t *testing.T) {
	c := New(4, func() core.LSN { return 100 })
	c.Put(1, mkPage(1, 5))
	c.Unpin(1)
	repl := mkPage(1, 9)
	got := c.Put(1, repl)
	if got.LSN() != 9 {
		t.Fatal("replacement not installed")
	}
	c.Unpin(1)
	if c.Len() != 1 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestInvalidateAndResize(t *testing.T) {
	c := New(4, func() core.LSN { return 100 })
	for i := core.PageID(1); i <= 4; i++ {
		c.Put(i, mkPage(i, 1))
		c.Unpin(i)
	}
	c.Invalidate()
	if c.Len() != 0 {
		t.Fatal("invalidate left pages")
	}
	c.Resize(2)
	for i := core.PageID(1); i <= 3; i++ {
		c.Put(i, mkPage(i, 1))
		c.Unpin(i)
	}
	if c.Len() != 2 {
		t.Fatalf("len %d after resize to 2", c.Len())
	}
	c.Resize(0) // clamps to 1
	if c.Stats().Capacity != 1 {
		t.Fatal("capacity clamp failed")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(32, func() core.LSN { return 1 << 40 })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := core.PageID(i % 64)
				if p, ok := c.Get(id); ok {
					_ = p.LSN()
					c.Unpin(id)
				} else {
					c.Put(id, mkPage(id, core.LSN(i)))
					c.Unpin(id)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 33 {
		t.Fatalf("cache grew unboundedly: %d", c.Len())
	}
}
