// Package bufcache implements the database engine's buffer cache. Aurora
// never writes pages out — not on eviction, not for checkpoints, not in the
// background — so eviction is governed by a durability rule instead of a
// write-back: a page may be evicted only if its page LSN (the LSN of the
// latest change applied to it) is at or below the VDL. That guarantees
// (a) every change to the page is hardened in the log, and (b) a cache miss
// can always be served by requesting the page as of the current VDL from
// the storage service (§4.2.3).
package bufcache

import (
	"container/list"
	"errors"
	"sync"

	"aurora/internal/core"
	"aurora/internal/page"
)

// ErrPinned is returned by Evict for a pinned page.
var ErrPinned = errors.New("bufcache: page pinned")

// Stats is a snapshot of cache counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Overflow counts inserts that exceeded capacity because no page was
	// evictable (all hot pages were above the VDL) — the back-pressure
	// signal a real engine would throttle on.
	Overflow uint64
	Len      int
	Capacity int
}

type entry struct {
	id   core.PageID
	p    page.Page
	pins int
	elem *list.Element
}

// Cache is a fixed-capacity page cache with LRU eviction under the VDL
// rule. All methods are safe for concurrent use; the pages themselves are
// mutated by the engine under its own latching discipline while pinned.
type Cache struct {
	mu       sync.Mutex
	capacity int
	vdl      func() core.LSN
	pages    map[core.PageID]*entry
	lru      *list.List // front = most recently used

	hits, misses, evictions, overflow uint64
}

// New returns a cache holding up to capacity pages. vdl supplies the
// current volume durable LSN (the eviction fence).
func New(capacity int, vdl func() core.LSN) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		vdl:      vdl,
		pages:    make(map[core.PageID]*entry, capacity),
		lru:      list.New(),
	}
}

// Get returns the cached page, pinning it until Unpin. The bool reports a
// hit. Pinned pages are never evicted.
func (c *Cache) Get(id core.PageID) (page.Page, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.pages[id]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	e.pins++
	c.lru.MoveToFront(e.elem)
	return e.p, true
}

// Unpin releases one pin taken by Get or Put.
func (c *Cache) Unpin(id core.PageID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.pages[id]; ok && e.pins > 0 {
		e.pins--
	}
}

// Put inserts (or replaces) a page and returns it pinned. If the cache is
// full it evicts the least-recently-used page whose pageLSN <= VDL; when
// nothing qualifies the cache overflows rather than lose an undurable page.
func (c *Cache) Put(id core.PageID, p page.Page) page.Page {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.pages[id]; ok {
		e.p = p
		e.pins++
		c.lru.MoveToFront(e.elem)
		return e.p
	}
	for len(c.pages) >= c.capacity {
		if !c.evictOneLocked() {
			c.overflow++
			break
		}
	}
	e := &entry{id: id, p: p, pins: 1}
	e.elem = c.lru.PushFront(e)
	c.pages[id] = e
	return e.p
}

// evictOneLocked drops the least-recently-used unpinned page that the VDL
// rule allows. It reports whether a page was evicted.
func (c *Cache) evictOneLocked() bool {
	fence := c.vdl()
	for elem := c.lru.Back(); elem != nil; elem = elem.Prev() {
		e := elem.Value.(*entry)
		if e.pins > 0 {
			continue
		}
		if e.p.LSN() > fence {
			// The latest change to this page is not yet durable in the
			// log; evicting would violate the "page in cache is always the
			// latest version" guarantee. Skip it.
			continue
		}
		c.lru.Remove(elem)
		delete(c.pages, e.id)
		c.evictions++
		return true
	}
	return false
}

// Evict removes a specific page, honouring pins (used by tests and by the
// engine when a page is deallocated).
func (c *Cache) Evict(id core.PageID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.pages[id]
	if !ok {
		return nil
	}
	if e.pins > 0 {
		return ErrPinned
	}
	c.lru.Remove(e.elem)
	delete(c.pages, id)
	c.evictions++
	return nil
}

// Invalidate drops every cached page regardless of pins — used when the
// writer crashes and the runtime state must be rebuilt from storage.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pages = make(map[core.PageID]*entry, c.capacity)
	c.lru.Init()
}

// Resize changes the capacity (instance scaling, §6.1.1). Shrinking evicts
// lazily on the next Put.
func (c *Cache) Resize(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	c.mu.Lock()
	c.capacity = capacity
	c.mu.Unlock()
}

// Len returns the number of cached pages.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pages)
}

// Stats returns a snapshot of counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Overflow: c.overflow, Len: len(c.pages), Capacity: c.capacity,
	}
}
