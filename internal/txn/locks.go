// Package txn provides the transaction-side concurrency control of the
// database engine. Aurora runs concurrency control entirely in the engine,
// exactly as if the pages were in local storage (§4.2.3): the storage
// service is not involved. This package implements the row lock table
// (exclusive locks, FIFO queuing, timeout-based deadlock resolution) and
// transaction identity; the write-set/commit machinery lives in the engine
// package, where it meets the B+-tree and the volume.
package txn

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Errors returned by the lock table.
var (
	ErrLockTimeout = errors.New("txn: lock wait timeout (possible deadlock)")
	ErrLockClosed  = errors.New("txn: lock table closed")
)

// DefaultLockTimeout bounds lock waits; a timeout aborts the waiter, which
// is how deadlocks are broken (InnoDB's innodb_lock_wait_timeout).
const DefaultLockTimeout = 2 * time.Second

type waiter struct {
	txn uint64
	ch  chan struct{}
}

type lockState struct {
	holder uint64
	held   bool
	queue  []*waiter
}

// LockTable grants exclusive row locks to transactions.
type LockTable struct {
	mu      sync.Mutex
	locks   map[string]*lockState
	held    map[uint64]map[string]struct{}
	timeout time.Duration
	closed  bool

	waits    atomic.Uint64
	timeouts atomic.Uint64
}

// NewLockTable returns an empty table. timeout <= 0 selects the default.
func NewLockTable(timeout time.Duration) *LockTable {
	if timeout <= 0 {
		timeout = DefaultLockTimeout
	}
	return &LockTable{
		locks:   make(map[string]*lockState),
		held:    make(map[uint64]map[string]struct{}),
		timeout: timeout,
	}
}

// Acquire takes the exclusive lock on key for txn, blocking behind earlier
// holders. Re-acquiring a held lock is a no-op. A wait longer than the
// table timeout fails with ErrLockTimeout and the caller must abort.
func (lt *LockTable) Acquire(txn uint64, key string) error {
	lt.mu.Lock()
	if lt.closed {
		lt.mu.Unlock()
		return ErrLockClosed
	}
	ls := lt.locks[key]
	if ls == nil {
		ls = &lockState{}
		lt.locks[key] = ls
	}
	if !ls.held {
		ls.held = true
		ls.holder = txn
		lt.noteHeldLocked(txn, key)
		lt.mu.Unlock()
		return nil
	}
	if ls.holder == txn {
		lt.mu.Unlock()
		return nil
	}
	w := &waiter{txn: txn, ch: make(chan struct{})}
	ls.queue = append(ls.queue, w)
	lt.mu.Unlock()
	lt.waits.Add(1)

	timer := time.NewTimer(lt.timeout)
	defer timer.Stop()
	select {
	case <-w.ch:
		// Granted by a release (the granter recorded us as holder) or the
		// table closed underneath us.
		lt.mu.Lock()
		closed := lt.closed
		lt.mu.Unlock()
		if closed {
			return ErrLockClosed
		}
		return nil
	case <-timer.C:
		lt.timeouts.Add(1)
		lt.mu.Lock()
		defer lt.mu.Unlock()
		// Race: the grant may have happened while the timer fired.
		select {
		case <-w.ch:
			if lt.closed {
				return ErrLockClosed
			}
			return nil
		default:
		}
		for i, q := range ls.queue {
			if q == w {
				ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
				break
			}
		}
		return ErrLockTimeout
	}
}

// TryAcquire takes the lock only if free (or already held by txn).
func (lt *LockTable) TryAcquire(txn uint64, key string) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.closed {
		return false
	}
	ls := lt.locks[key]
	if ls == nil {
		ls = &lockState{}
		lt.locks[key] = ls
	}
	if ls.held && ls.holder != txn {
		return false
	}
	ls.held = true
	ls.holder = txn
	lt.noteHeldLocked(txn, key)
	return true
}

func (lt *LockTable) noteHeldLocked(txn uint64, key string) {
	set := lt.held[txn]
	if set == nil {
		set = make(map[string]struct{})
		lt.held[txn] = set
	}
	set[key] = struct{}{}
}

// ReleaseAll drops every lock txn holds, granting each to its next waiter
// in FIFO order.
func (lt *LockTable) ReleaseAll(txn uint64) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for key := range lt.held[txn] {
		lt.releaseOneLocked(txn, key)
	}
	delete(lt.held, txn)
}

func (lt *LockTable) releaseOneLocked(txn uint64, key string) {
	ls := lt.locks[key]
	if ls == nil || !ls.held || ls.holder != txn {
		return
	}
	if len(ls.queue) == 0 {
		delete(lt.locks, key)
		return
	}
	next := ls.queue[0]
	ls.queue = ls.queue[1:]
	ls.holder = next.txn
	lt.noteHeldLocked(next.txn, key)
	close(next.ch)
}

// Holder reports the current holder of key, if locked.
func (lt *LockTable) Holder(key string) (uint64, bool) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	ls := lt.locks[key]
	if ls == nil || !ls.held {
		return 0, false
	}
	return ls.holder, true
}

// HeldBy returns the number of locks txn currently holds.
func (lt *LockTable) HeldBy(txn uint64) int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return len(lt.held[txn])
}

// Stats returns the total waits and timeouts observed.
func (lt *LockTable) Stats() (waits, timeouts uint64) {
	return lt.waits.Load(), lt.timeouts.Load()
}

// Close releases every waiter with ErrLockClosed (engine shutdown).
func (lt *LockTable) Close() {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.closed {
		return
	}
	lt.closed = true
	for _, ls := range lt.locks {
		for _, w := range ls.queue {
			close(w.ch)
		}
		ls.queue = nil
	}
}

// IDs hands out transaction identifiers.
type IDs struct{ next atomic.Uint64 }

// Next returns a fresh transaction id (starting at 1).
func (g *IDs) Next() uint64 { return g.next.Add(1) }
