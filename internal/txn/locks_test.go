package txn

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAcquireReleaseBasic(t *testing.T) {
	lt := NewLockTable(0)
	if err := lt.Acquire(1, "a"); err != nil {
		t.Fatal(err)
	}
	// Re-entrant.
	if err := lt.Acquire(1, "a"); err != nil {
		t.Fatal(err)
	}
	if h, ok := lt.Holder("a"); !ok || h != 1 {
		t.Fatalf("holder %d %v", h, ok)
	}
	if lt.HeldBy(1) != 1 {
		t.Fatalf("held %d", lt.HeldBy(1))
	}
	lt.ReleaseAll(1)
	if _, ok := lt.Holder("a"); ok {
		t.Fatal("lock survived release")
	}
}

func TestTryAcquire(t *testing.T) {
	lt := NewLockTable(0)
	if !lt.TryAcquire(1, "a") {
		t.Fatal("free lock refused")
	}
	if lt.TryAcquire(2, "a") {
		t.Fatal("held lock granted")
	}
	if !lt.TryAcquire(1, "a") {
		t.Fatal("re-entrant try refused")
	}
	lt.ReleaseAll(1)
	if !lt.TryAcquire(2, "a") {
		t.Fatal("released lock refused")
	}
}

func TestFIFOHandoff(t *testing.T) {
	lt := NewLockTable(time.Second)
	if err := lt.Acquire(1, "k"); err != nil {
		t.Fatal(err)
	}
	order := make(chan uint64, 2)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for _, id := range []uint64{2, 3} {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			<-start
			// Stagger entry so 2 queues before 3.
			if id == 3 {
				time.Sleep(30 * time.Millisecond)
			}
			if err := lt.Acquire(id, "k"); err != nil {
				t.Error(err)
				return
			}
			order <- id
			time.Sleep(10 * time.Millisecond)
			lt.ReleaseAll(id)
		}(id)
	}
	close(start)
	time.Sleep(60 * time.Millisecond)
	lt.ReleaseAll(1)
	wg.Wait()
	if a, b := <-order, <-order; a != 2 || b != 3 {
		t.Fatalf("grant order %d,%d want 2,3", a, b)
	}
}

func TestLockTimeout(t *testing.T) {
	lt := NewLockTable(50 * time.Millisecond)
	if err := lt.Acquire(1, "k"); err != nil {
		t.Fatal(err)
	}
	startedAt := time.Now()
	err := lt.Acquire(2, "k")
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	if time.Since(startedAt) < 40*time.Millisecond {
		t.Fatal("timed out too early")
	}
	_, timeouts := lt.Stats()
	if timeouts != 1 {
		t.Fatalf("timeouts %d", timeouts)
	}
	// After the holder releases, the key is free (the timed-out waiter was
	// removed from the queue).
	lt.ReleaseAll(1)
	if err := lt.Acquire(2, "k"); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockBrokenByTimeout(t *testing.T) {
	lt := NewLockTable(80 * time.Millisecond)
	if err := lt.Acquire(1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire(2, "b"); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- lt.Acquire(1, "b") }()
	go func() { errs <- lt.Acquire(2, "a") }()
	// At least one participant must time out, breaking the deadlock.
	gotTimeout := false
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrLockTimeout) {
				gotTimeout = true
				// The victim aborts, releasing its locks.
				if err == nil {
					continue
				}
			}
		case <-time.After(2 * time.Second):
			t.Fatal("deadlock not broken")
		}
		if gotTimeout {
			lt.ReleaseAll(1)
			lt.ReleaseAll(2)
		}
	}
	if !gotTimeout {
		t.Fatal("no participant timed out")
	}
}

func TestCloseReleasesWaiters(t *testing.T) {
	lt := NewLockTable(5 * time.Second)
	if err := lt.Acquire(1, "k"); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 1)
	go func() { errs <- lt.Acquire(2, "k") }()
	time.Sleep(20 * time.Millisecond)
	lt.Close()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrLockClosed) {
			t.Fatalf("want ErrLockClosed, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not released on close")
	}
	if err := lt.Acquire(3, "x"); !errors.Is(err, ErrLockClosed) {
		t.Fatalf("acquire after close: %v", err)
	}
}

func TestConcurrentDistinctKeysNoContention(t *testing.T) {
	lt := NewLockTable(time.Second)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := uint64(w + 1)
			for i := 0; i < 200; i++ {
				key := string(rune('a'+w)) + "-row"
				if err := lt.Acquire(id, key); err != nil {
					t.Error(err)
					return
				}
				lt.ReleaseAll(id)
			}
		}(w)
	}
	wg.Wait()
	waits, _ := lt.Stats()
	if waits != 0 {
		t.Fatalf("distinct keys produced %d waits", waits)
	}
}

func TestHotKeySerializes(t *testing.T) {
	lt := NewLockTable(5 * time.Second)
	var counter int
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := uint64(w + 1)
			for i := 0; i < 100; i++ {
				if err := lt.Acquire(id, "hot"); err != nil {
					t.Error(err)
					return
				}
				counter++ // protected by the row lock
				lt.ReleaseAll(id)
			}
		}(w)
	}
	wg.Wait()
	if counter != 800 {
		t.Fatalf("counter %d, want 800 — lock did not serialize", counter)
	}
}

func TestIDsUnique(t *testing.T) {
	var g IDs
	seen := make(map[uint64]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				id := g.Next()
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate id %d", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 8000 {
		t.Fatalf("ids %d", len(seen))
	}
}
