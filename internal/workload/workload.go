// Package workload implements the benchmark drivers the evaluation uses:
// SysBench-style read-only / write-only / OLTP mixes over a keyed table,
// and a TPC-C-like new-order mix with hot-row contention on warehouse and
// district counters (§6.1). The generators target a minimal transactional
// interface satisfied by both the Aurora engine and the MySQL baseline, so
// every experiment runs identical logic against both systems.
package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"aurora/internal/metrics"
)

// Tx is the transactional surface a workload drives.
type Tx interface {
	Get(key []byte) ([]byte, bool, error)
	Put(key, val []byte) error
	Delete(key []byte) error
	Scan(from, to []byte, fn func(k, v []byte) bool) error
	Commit() error
	Abort()
}

// DB abstracts the system under test.
type DB interface {
	Begin() Tx
}

// DBFunc adapts a Begin closure to DB.
type DBFunc func() Tx

// Begin implements DB.
func (f DBFunc) Begin() Tx { return f() }

// Key renders the canonical sbtest-style row key.
func Key(i int) []byte { return []byte(fmt.Sprintf("sbtest%010d", i)) }

// KeyDist generates row indices.
type KeyDist interface {
	Next(rng *rand.Rand) int
	Rows() int
}

// Uniform draws keys uniformly over [0, N).
type Uniform struct{ N int }

// Next implements KeyDist.
func (u Uniform) Next(rng *rand.Rand) int { return rng.Intn(u.N) }

// Rows implements KeyDist.
func (u Uniform) Rows() int { return u.N }

// HotSpot draws from a small hot set with probability HotProb — the
// hot-row contention of the TPC-C-style experiments (§6.1.5).
type HotSpot struct {
	N       int
	HotKeys int
	HotProb float64
}

// Next implements KeyDist.
func (h HotSpot) Next(rng *rand.Rand) int {
	if rng.Float64() < h.HotProb {
		return rng.Intn(h.HotKeys)
	}
	return h.HotKeys + rng.Intn(h.N-h.HotKeys)
}

// Rows implements KeyDist.
func (h HotSpot) Rows() int { return h.N }

// Mix describes one transaction template.
type Mix struct {
	// PointReads per transaction.
	PointReads int
	// Writes per transaction.
	Writes int
	// RangeScan rows per transaction (0 disables).
	ScanRows int
	// ValueSize of written values in bytes.
	ValueSize int
	// Dist chooses rows.
	Dist KeyDist
}

// SysbenchWriteOnly mirrors the SysBench write-only profile used by
// Table 1, Table 2 and Figure 7.
func SysbenchWriteOnly(rows int) Mix {
	return Mix{Writes: 1, ValueSize: 100, Dist: Uniform{N: rows}}
}

// SysbenchReadOnly mirrors the read-only profile of Figure 6.
func SysbenchReadOnly(rows int) Mix {
	return Mix{PointReads: 4, Dist: Uniform{N: rows}}
}

// SysbenchOLTP mirrors the mixed OLTP profile of Table 3.
func SysbenchOLTP(rows int) Mix {
	return Mix{PointReads: 4, Writes: 2, ValueSize: 100, Dist: Uniform{N: rows}}
}

// TPCCLike mirrors the Percona TPC-C variant's contention shape: every
// transaction updates a hot warehouse/district counter plus a few uniform
// rows (§6.1.5).
func TPCCLike(rows, warehouses int) Mix {
	return Mix{
		PointReads: 2,
		Writes:     3,
		ValueSize:  100,
		Dist:       HotSpot{N: rows, HotKeys: warehouses, HotProb: 0.35},
	}
}

// Result summarises one run.
type Result struct {
	Transactions uint64
	Errors       uint64
	Retries      uint64
	Elapsed      time.Duration
	Latency      *metrics.Histogram // per-transaction
	ReadLatency  *metrics.Histogram // per point read
	WriteLatency *metrics.Histogram // per write statement
}

// TPS returns transactions per second.
func (r Result) TPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Transactions) / r.Elapsed.Seconds()
}

// WritesPerSec returns write statements per second (Writes per txn × TPS).
func (r Result) WritesPerSec(mix Mix) float64 { return r.TPS() * float64(mix.Writes) }

// ReadsPerSec returns read statements per second.
func (r Result) ReadsPerSec(mix Mix) float64 { return r.TPS() * float64(mix.PointReads) }

// Options controls a run.
type Options struct {
	Clients  int
	Duration time.Duration // run for a duration...
	Txns     int           // ...or a fixed transaction count per client
	Seed     int64
	// MaxRetries bounds lock-timeout retries per transaction.
	MaxRetries int
}

// Load populates the table with the mix's row count before a run.
func Load(db DB, rows, valueSize int) error {
	const batch = 64
	for start := 0; start < rows; start += batch {
		tx := db.Begin()
		for i := start; i < start+batch && i < rows; i++ {
			if err := tx.Put(Key(i), value(rand.New(rand.NewSource(int64(i))), valueSize)); err != nil {
				tx.Abort()
				return err
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

func value(rng *rand.Rand, size int) []byte {
	if size <= 0 {
		size = 100
	}
	v := make([]byte, size)
	for i := range v {
		v[i] = byte('a' + rng.Intn(26))
	}
	return v
}

// Run drives the mix against the database with the given concurrency and
// returns aggregate results. Lock-timeout aborts are retried up to
// MaxRetries and counted.
func Run(db DB, mix Mix, opts Options) Result {
	if opts.Clients <= 0 {
		opts.Clients = 1
	}
	if opts.Duration <= 0 && opts.Txns <= 0 {
		opts.Txns = 100
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 3
	}
	res := Result{
		Latency:      metrics.NewHistogram(0),
		ReadLatency:  metrics.NewHistogram(0),
		WriteLatency: metrics.NewHistogram(0),
	}
	var txns, errs, retries atomic.Uint64
	stop := make(chan struct{})
	if opts.Duration > 0 {
		timer := time.AfterFunc(opts.Duration, func() { close(stop) })
		defer timer.Stop()
	}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(c)*7919))
			for n := 0; ; n++ {
				if opts.Duration > 0 {
					select {
					case <-stop:
						return
					default:
					}
				} else if n >= opts.Txns {
					return
				}
				t0 := time.Now()
				ok := false
				for attempt := 0; attempt <= opts.MaxRetries; attempt++ {
					err := runTxn(db, mix, rng, &res)
					if err == nil {
						ok = true
						break
					}
					retries.Add(1)
				}
				if ok {
					txns.Add(1)
					res.Latency.Record(time.Since(t0))
				} else {
					errs.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Transactions = txns.Load()
	res.Errors = errs.Load()
	res.Retries = retries.Load()
	return res
}

// runTxn executes one transaction of the mix.
func runTxn(db DB, mix Mix, rng *rand.Rand, res *Result) error {
	tx := db.Begin()
	for i := 0; i < mix.PointReads; i++ {
		k := Key(mix.Dist.Next(rng))
		t0 := time.Now()
		if _, _, err := tx.Get(k); err != nil {
			tx.Abort()
			return err
		}
		res.ReadLatency.Record(time.Since(t0))
	}
	if mix.ScanRows > 0 {
		from := mix.Dist.Next(rng)
		n := 0
		if err := tx.Scan(Key(from), nil, func(k, v []byte) bool {
			n++
			return n < mix.ScanRows
		}); err != nil {
			tx.Abort()
			return err
		}
	}
	for i := 0; i < mix.Writes; i++ {
		k := Key(mix.Dist.Next(rng))
		t0 := time.Now()
		if err := tx.Put(k, value(rng, mix.ValueSize)); err != nil {
			// Lock timeout aborted the transaction already.
			return err
		}
		res.WriteLatency.Record(time.Since(t0))
	}
	return tx.Commit()
}
