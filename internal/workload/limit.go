package workload

import (
	"sync"
	"sync/atomic"
	"time"
)

// Limiter is a pacing token source: Take blocks until the caller's turn at
// the configured rate. Waiters' sleeps aggregate, so very high rates stay
// accurate even though individual sleeps are coarse.
type Limiter struct {
	mu       sync.Mutex
	interval time.Duration
	next     time.Time
}

// NewLimiter returns a limiter admitting opsPerSec operations per second.
func NewLimiter(opsPerSec float64) *Limiter {
	if opsPerSec <= 0 {
		return nil
	}
	return &Limiter{interval: time.Duration(float64(time.Second) / opsPerSec)}
}

// Take blocks until the next slot. A nil limiter admits immediately.
func (l *Limiter) Take() {
	if l == nil {
		return
	}
	l.mu.Lock()
	now := time.Now()
	if l.next.Before(now) {
		l.next = now
	}
	at := l.next
	l.next = l.next.Add(l.interval)
	l.mu.Unlock()
	if wait := time.Until(at); wait > 0 {
		time.Sleep(wait)
	}
}

// Limit wraps a database so that every statement consumes one slot of the
// limiter — the harness's model of an instance's CPU capacity: an
// r3.large simply cannot execute as many statements per second as an
// r3.8xlarge, regardless of how fast the simulation host is (§6.1.1).
func Limit(db DB, opsPerSec float64) DB {
	l := NewLimiter(opsPerSec)
	return DBFunc(func() Tx { return &limitedTx{inner: db.Begin(), l: l} })
}

type limitedTx struct {
	inner Tx
	l     *Limiter
}

func (t *limitedTx) Get(key []byte) ([]byte, bool, error) {
	t.l.Take()
	return t.inner.Get(key)
}
func (t *limitedTx) Put(key, val []byte) error {
	t.l.Take()
	return t.inner.Put(key, val)
}
func (t *limitedTx) Delete(key []byte) error {
	t.l.Take()
	return t.inner.Delete(key)
}
func (t *limitedTx) Scan(from, to []byte, fn func(k, v []byte) bool) error {
	t.l.Take()
	return t.inner.Scan(from, to, fn)
}
func (t *limitedTx) Commit() error { return t.inner.Commit() }
func (t *limitedTx) Abort()        { t.inner.Abort() }

// ThreadThrash models the thread-per-connection scheduler of the
// traditional engine: beyond a threshold of concurrent connections, each
// transaction pays a context-switch toll that grows with the square of the
// excess — and the toll is paid inside the scheduler, serially. This is
// the mechanism behind MySQL's throughput collapse at thousands of
// connections (§6.1.3); Aurora's engine, with commits off the thread and
// storage absorbing the parallelism, keeps scaling instead.
func ThreadThrash(db DB, threshold int, perConnSquared time.Duration) DB {
	tt := &thrasher{inner: db, threshold: threshold, unit: perConnSquared}
	return tt
}

type thrasher struct {
	inner     DB
	threshold int
	unit      time.Duration
	active    atomic.Int64
	sched     sync.Mutex
}

// Begin implements DB.
func (t *thrasher) Begin() Tx {
	n := int(t.active.Add(1))
	if excess := n - t.threshold; excess > 0 && t.unit > 0 {
		toll := time.Duration(excess*excess) * t.unit
		t.sched.Lock()
		time.Sleep(toll)
		t.sched.Unlock()
	}
	return &thrashTx{inner: t.inner.Begin(), t: t}
}

type thrashTx struct {
	inner Tx
	t     *thrasher
	done  bool
}

func (x *thrashTx) release() {
	if !x.done {
		x.done = true
		x.t.active.Add(-1)
	}
}

func (x *thrashTx) Get(key []byte) ([]byte, bool, error) { return x.inner.Get(key) }
func (x *thrashTx) Put(key, val []byte) error            { return x.inner.Put(key, val) }
func (x *thrashTx) Delete(key []byte) error              { return x.inner.Delete(key) }
func (x *thrashTx) Scan(from, to []byte, fn func(k, v []byte) bool) error {
	return x.inner.Scan(from, to, fn)
}
func (x *thrashTx) Commit() error {
	defer x.release()
	return x.inner.Commit()
}
func (x *thrashTx) Abort() {
	defer x.release()
	x.inner.Abort()
}
