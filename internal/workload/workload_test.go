package workload

import (
	"math/rand"
	"testing"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/netsim"
	"aurora/internal/volume"
)

func auroraDB(t *testing.T) DB {
	t.Helper()
	net := netsim.New(netsim.FastLocal())
	f, err := volume.NewFleet(volume.FleetConfig{Name: "w", Geometry: core.UniformGeometry(2), Net: net, Disk: disk.FastLocal()})
	if err != nil {
		t.Fatal(err)
	}
	vol := volume.Bootstrap(f, volume.ClientConfig{WriterNode: "writer", WriterAZ: 0})
	db, err := engine.Create(vol, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return DBFunc(func() Tx { return db.Begin() })
}

func TestKeyDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := Uniform{N: 100}
	for i := 0; i < 1000; i++ {
		k := u.Next(rng)
		if k < 0 || k >= 100 {
			t.Fatalf("uniform out of range: %d", k)
		}
	}
	h := HotSpot{N: 1000, HotKeys: 5, HotProb: 0.5}
	hot := 0
	for i := 0; i < 10000; i++ {
		if h.Next(rng) < 5 {
			hot++
		}
	}
	if hot < 4000 || hot > 6000 {
		t.Fatalf("hot fraction %d/10000, want ~5000", hot)
	}
	if u.Rows() != 100 || h.Rows() != 1000 {
		t.Fatal("Rows() wrong")
	}
}

func TestLoadAndRun(t *testing.T) {
	db := auroraDB(t)
	if err := Load(db, 200, 64); err != nil {
		t.Fatal(err)
	}
	// All rows present.
	tx := db.Begin()
	count := 0
	if err := tx.Scan(Key(0), nil, func(k, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if count != 200 {
		t.Fatalf("loaded %d rows", count)
	}

	mix := SysbenchOLTP(200)
	res := Run(db, mix, Options{Clients: 4, Txns: 25, Seed: 42})
	if res.Transactions != 100 {
		t.Fatalf("transactions %d, want 100", res.Transactions)
	}
	if res.Errors != 0 {
		t.Fatalf("errors %d", res.Errors)
	}
	if res.TPS() <= 0 {
		t.Fatal("zero TPS")
	}
	if res.Latency.Count() != 100 {
		t.Fatalf("latency samples %d", res.Latency.Count())
	}
	if res.ReadLatency.Count() == 0 || res.WriteLatency.Count() == 0 {
		t.Fatal("per-op latencies missing")
	}
	if res.WritesPerSec(mix) <= 0 || res.ReadsPerSec(mix) <= 0 {
		t.Fatal("derived rates zero")
	}
}

func TestRunForDuration(t *testing.T) {
	db := auroraDB(t)
	if err := Load(db, 50, 32); err != nil {
		t.Fatal(err)
	}
	res := Run(db, SysbenchWriteOnly(50), Options{Clients: 2, Duration: 100 * time.Millisecond, Seed: 1})
	if res.Transactions == 0 {
		t.Fatal("no transactions in timed run")
	}
	if res.Elapsed < 100*time.Millisecond {
		t.Fatalf("elapsed %v", res.Elapsed)
	}
}

func TestHotContentionStillCompletes(t *testing.T) {
	db := auroraDB(t)
	if err := Load(db, 100, 32); err != nil {
		t.Fatal(err)
	}
	mix := TPCCLike(100, 2)
	res := Run(db, mix, Options{Clients: 8, Txns: 10, Seed: 3})
	if res.Transactions+res.Errors != 80 {
		t.Fatalf("txns %d errors %d", res.Transactions, res.Errors)
	}
	if res.Transactions == 0 {
		t.Fatal("hot contention starved everything")
	}
}

func TestScanMix(t *testing.T) {
	db := auroraDB(t)
	if err := Load(db, 100, 16); err != nil {
		t.Fatal(err)
	}
	mix := Mix{ScanRows: 10, Dist: Uniform{N: 100}}
	res := Run(db, mix, Options{Clients: 1, Txns: 5, Seed: 9})
	if res.Transactions != 5 {
		t.Fatalf("transactions %d", res.Transactions)
	}
}
