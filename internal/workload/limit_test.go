package workload

import (
	"sync"
	"testing"
	"time"
)

// fakeTx counts operations.
type fakeTx struct{ gets, puts int }

func (f *fakeTx) Get([]byte) ([]byte, bool, error)                 { f.gets++; return nil, false, nil }
func (f *fakeTx) Put(_, _ []byte) error                            { f.puts++; return nil }
func (f *fakeTx) Delete([]byte) error                              { return nil }
func (f *fakeTx) Scan(_, _ []byte, _ func(k, v []byte) bool) error { return nil }
func (f *fakeTx) Commit() error                                    { return nil }
func (f *fakeTx) Abort()                                           {}

func TestLimiterRate(t *testing.T) {
	l := NewLimiter(1000) // 1ms apart
	start := time.Now()
	for i := 0; i < 50; i++ {
		l.Take()
	}
	elapsed := time.Since(start)
	if elapsed < 40*time.Millisecond {
		t.Fatalf("50 ops at 1000/s took %v, want >= ~49ms", elapsed)
	}
}

func TestLimiterNilAdmitsAll(t *testing.T) {
	var l *Limiter
	start := time.Now()
	for i := 0; i < 1000; i++ {
		l.Take()
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("nil limiter throttled")
	}
	if NewLimiter(0) != nil {
		t.Fatal("zero rate should return nil limiter")
	}
}

func TestLimiterConcurrentAggregateRate(t *testing.T) {
	l := NewLimiter(2000)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				l.Take()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// 200 ops at 2000/s ≈ 100ms regardless of concurrency.
	if elapsed < 80*time.Millisecond {
		t.Fatalf("200 ops at 2000/s took %v across 8 goroutines", elapsed)
	}
}

func TestLimitWrapsStatements(t *testing.T) {
	inner := &fakeTx{}
	db := Limit(DBFunc(func() Tx { return inner }), 1e9)
	tx := db.Begin()
	if _, _, err := tx.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if inner.gets != 1 || inner.puts != 1 {
		t.Fatalf("ops not forwarded: %+v", inner)
	}
}

func TestThreadThrashTollGrowsAndSerializes(t *testing.T) {
	db := ThreadThrash(DBFunc(func() Tx { return &fakeTx{} }), 2, 50*time.Microsecond)

	// Hold transactions open so the active count climbs past the
	// threshold; each further Begin pays a growing quadratic toll.
	var txs []Tx
	start := time.Now()
	for i := 0; i < 6; i++ {
		txs = append(txs, db.Begin())
	}
	elapsed := time.Since(start)
	// Tolls for begins 3..6: (1+4+9+16)*50µs = 1.5ms.
	if elapsed < time.Millisecond {
		t.Fatalf("no thrash toll observed (%v)", elapsed)
	}
	for _, tx := range txs {
		tx.Commit() //nolint:errcheck
	}
	// After commits release the actives, a fresh Begin is cheap again.
	start = time.Now()
	db.Begin().Commit() //nolint:errcheck
	if time.Since(start) > 500*time.Microsecond {
		t.Fatalf("toll persisted after release (%v)", time.Since(start))
	}
	// Below the threshold there is no toll.
	fast := ThreadThrash(DBFunc(func() Tx { return &fakeTx{} }), 100, time.Millisecond)
	start = time.Now()
	for i := 0; i < 50; i++ {
		tx := fast.Begin()
		tx.Commit() //nolint:errcheck
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("toll charged below threshold")
	}
}
