package integration

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"aurora"
)

// settleGoroutines waits for the runtime's goroutine count to stop moving
// and returns it. Background GC workers and timer goroutines come and go;
// sampling until two consecutive readings agree filters that noise.
func settleGoroutines() int {
	prev := -1
	for i := 0; i < 50; i++ {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n == prev {
			return n
		}
		prev = n
		time.Sleep(10 * time.Millisecond)
	}
	return prev
}

// TestNoGoroutineLeaks provisions a full cluster — background storage
// loops, replicas, tracing — drives it through the paths that spawn
// goroutines (group commits, hedged reads, deadline-detached commits,
// failover machinery), then closes everything and requires the goroutine
// count to return to its pre-cluster baseline. Every background loop in
// engine/volume/storage runs under a context now; this is the regression
// net that keeps it so.
func TestNoGoroutineLeaks(t *testing.T) {
	base := settleGoroutines()

	c, err := aurora.NewCluster(aurora.Options{Name: "leak", TraceEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.AddReplica("r0", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		key := []byte(fmt.Sprintf("k%03d", i))
		if err := c.Put(key, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot reads go straight to storage (hedged read path).
	snap := c.BeginSnapshot()
	if _, _, err := snap.Get([]byte("k000")); err != nil {
		t.Fatal(err)
	}
	snap.Abort()
	if _, _, err := rep.Get([]byte("k001")); err != nil {
		t.Fatal(err)
	}
	// A deadline-detached commit leaves a watcher goroutine behind by
	// design; Close must drain it.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	tx := c.Begin()
	if err := tx.Put([]byte("detach"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.CommitCtx(ctx); !errors.Is(err, aurora.ErrDeadlineExceeded) {
		t.Fatalf("CommitCtx under expired deadline: %v", err)
	}
	cancel()
	rep.Close()
	c.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		n := settleGoroutines()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			var buf strings.Builder
			_ = pprof.Lookup("goroutine").WriteTo(&buf, 1)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", base, n, buf.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
