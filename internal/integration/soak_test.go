// Package integration exercises the whole stack end to end: the Aurora
// engine over the storage fleet on the simulated multi-AZ network, with
// background storage loops running, faults injected, a writer crash and
// recovery in the middle, and replicas attached — all while a model-based
// workload verifies that every committed value is exactly preserved.
package integration

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/netsim"
	"aurora/internal/objstore"
	"aurora/internal/replica"
	"aurora/internal/volume"
)

type stack struct {
	net   *netsim.Network
	store *objstore.Store
	fleet *volume.Fleet
	db    *engine.DB
	gen   int
}

func newStack(t *testing.T, seed int64) *stack {
	t.Helper()
	cfg := netsim.Datacenter()
	cfg.Seed = seed
	net := netsim.New(cfg)
	store := objstore.New()
	fleet, err := volume.NewFleet(volume.FleetConfig{
		Name: "soak", Geometry: core.UniformGeometry(4), Net: net, Disk: disk.FastLocal(), Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	vol := volume.Bootstrap(fleet, volume.ClientConfig{WriterNode: "soak-writer", WriterAZ: 0})
	db, err := engine.Create(vol, engine.Config{CachePages: 512})
	if err != nil {
		t.Fatal(err)
	}
	fleet.Start()
	s := &stack{net: net, store: store, fleet: fleet, db: db}
	t.Cleanup(func() {
		s.db.Close()
		s.fleet.Stop()
	})
	return s
}

func (s *stack) failover(t *testing.T) {
	t.Helper()
	s.gen++
	db, rep, err := engine.Recover(context.Background(), s.fleet, volume.ClientConfig{
		WriterNode: netsim.NodeID(fmt.Sprintf("soak-writer-g%d", s.gen)), WriterAZ: 0,
	}, engine.Config{CachePages: 512})
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if rep.VDL == 0 {
		t.Fatal("failover found empty volume")
	}
	s.db = db
}

// model tracks exactly-committed state. Writers own disjoint key ranges so
// the model is exact without cross-goroutine ordering ambiguity.
type model struct {
	mu   sync.Mutex
	rows map[string]string
}

func (m *model) set(k, v string) {
	m.mu.Lock()
	m.rows[k] = v
	m.mu.Unlock()
}

func (m *model) del(k string) {
	m.mu.Lock()
	delete(m.rows, k)
	m.mu.Unlock()
}

func (m *model) snapshot() map[string]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]string, len(m.rows))
	for k, v := range m.rows {
		out[k] = v
	}
	return out
}

func verifyModel(t *testing.T, db *engine.DB, m *model, stage string) {
	t.Helper()
	for k, want := range m.snapshot() {
		got, ok, err := db.Get([]byte(k))
		if err != nil {
			t.Fatalf("%s: get %s: %v", stage, k, err)
		}
		if !ok || string(got) != want {
			t.Fatalf("%s: key %s = %q/%v, want %q", stage, k, got, ok, want)
		}
	}
}

func TestSoakWithChaosAndFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	s := newStack(t, 1)
	m := &model{rows: make(map[string]string)}

	const writers = 6
	phase := func(dur time.Duration, label string) {
		var wg sync.WaitGroup
		stop := make(chan struct{})
		time.AfterFunc(dur, func() { close(stop) })
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)*97 + int64(dur)))
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					k := fmt.Sprintf("w%d-key%03d", w, rng.Intn(80))
					tx := s.db.Begin()
					switch rng.Intn(10) {
					case 0: // delete
						if err := tx.Delete([]byte(k)); err != nil {
							continue
						}
						if err := tx.Commit(); err == nil {
							m.del(k)
						}
					case 1: // multi-key transaction in own range
						k2 := fmt.Sprintf("w%d-key%03d", w, rng.Intn(80))
						v := fmt.Sprintf("%s-multi-%d", label, i)
						if tx.Put([]byte(k), []byte(v)) != nil {
							continue
						}
						if tx.Put([]byte(k2), []byte(v)) != nil {
							continue
						}
						if err := tx.Commit(); err == nil {
							m.set(k, v)
							m.set(k2, v)
						}
					case 2: // abort on purpose
						if tx.Put([]byte(k), []byte("never")) != nil {
							continue
						}
						tx.Abort()
					default:
						v := fmt.Sprintf("%s-%d-%d", label, w, i)
						if tx.Put([]byte(k), []byte(v)) != nil {
							continue
						}
						if err := tx.Commit(); err == nil {
							m.set(k, v)
						}
					}
				}
			}(w)
		}
		wg.Wait()
	}

	// Phase 1: clean load.
	phase(300*time.Millisecond, "clean")
	verifyModel(t, s.db, m, "after clean phase")

	// Phase 2: background chaos — node crashes and an AZ outage — while
	// writing continues. Single faults never break the 4/6 quorum.
	chaosStop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-chaosStop:
				return
			default:
			}
			pg := core.PGID(rng.Intn(4))
			r := rng.Intn(6)
			switch i % 3 {
			case 0:
				n := s.fleet.Node(pg, r)
				n.Crash()
				time.Sleep(30 * time.Millisecond)
				n.Restart()
				n.GossipOnce()
			case 1:
				az := netsim.AZ(1 + rng.Intn(2)) // never the writer's AZ
				s.net.SetAZDown(az, true)
				time.Sleep(30 * time.Millisecond)
				s.net.SetAZDown(az, false)
			case 2:
				d := s.fleet.Node(pg, r).Disk()
				d.SetSlow(10)
				time.Sleep(30 * time.Millisecond)
				d.SetSlow(0)
			}
		}
	}()
	phase(400*time.Millisecond, "chaos")
	close(chaosStop)
	chaosWG.Wait()
	verifyModel(t, s.db, m, "after chaos phase")

	// Phase 3: writer crash + failover; everything committed survives.
	s.db.Crash()
	s.failover(t)
	verifyModel(t, s.db, m, "after failover")

	// Phase 4: replicas attach to the recovered writer and converge.
	rep := replica.Attach(s.db, s.fleet, replica.Config{Name: "soak-replica", AZ: 1})
	defer rep.Close()
	phase(200*time.Millisecond, "post-failover")
	verifyModel(t, s.db, m, "after post-failover phase")

	probe := []byte("w0-key000")
	want, _, err := s.db.Get(probe)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, ok, err := rep.Get(probe)
		if err == nil && ok == (want != nil) && (want == nil || string(got) == string(want)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never converged on %s: %q vs %q", probe, got, want)
		}
		time.Sleep(time.Millisecond)
	}

	// Final: the row count matches the model exactly.
	snap := m.snapshot()
	count := 0
	tx := s.db.Begin()
	defer tx.Abort()
	if err := tx.Scan([]byte("w"), []byte("x"), func(k, v []byte) bool {
		if wantV, ok := snap[string(k)]; !ok || wantV != string(v) {
			t.Fatalf("scan found unexpected row %s=%q", k, v)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != len(snap) {
		t.Fatalf("scan found %d rows, model has %d", count, len(snap))
	}
	t.Logf("soak complete: %d rows verified, commits=%d", count, s.db.Stats().Commits)
}

func TestSnapshotConsistencyUnderLoad(t *testing.T) {
	s := newStack(t, 2)
	// Seed rows whose values always sum to a constant across two keys.
	const total = 1000
	tx := s.db.Begin()
	if err := tx.Put([]byte("bal:a"), []byte(fmt.Sprintf("%d", total))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put([]byte("bal:b"), []byte("0")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Transfer a random amount between the accounts atomically.
			x := rng.Intn(total)
			tx := s.db.Begin()
			if tx.Put([]byte("bal:a"), []byte(fmt.Sprintf("%d", total-x))) != nil {
				continue
			}
			if tx.Put([]byte("bal:b"), []byte(fmt.Sprintf("%d", x))) != nil {
				continue
			}
			tx.Commit() //nolint:errcheck
		}
	}()

	// Snapshot transactions must always see a consistent pair.
	for i := 0; i < 25; i++ {
		snap := s.db.BeginSnapshot()
		var a, b int
		va, okA, err := snap.Get([]byte("bal:a"))
		if err != nil || !okA {
			t.Fatalf("snapshot read a: %v %v", okA, err)
		}
		vb, okB, err := snap.Get([]byte("bal:b"))
		if err != nil || !okB {
			t.Fatalf("snapshot read b: %v %v", okB, err)
		}
		fmt.Sscanf(string(va), "%d", &a)
		fmt.Sscanf(string(vb), "%d", &b)
		if a+b != total {
			t.Fatalf("snapshot %d saw torn transfer: %d + %d != %d", i, a, b, total)
		}
		snap.Abort()
	}
	close(stop)
	wg.Wait()
}

func TestMultiTenantSharedNetwork(t *testing.T) {
	// Two independent volumes share one simulated network — the
	// multi-tenant fleet of §7.1. Faults scoped to one tenant's nodes must
	// not affect the other.
	cfg := netsim.Datacenter()
	cfg.Seed = 3
	net := netsim.New(cfg)
	mk := func(name string) (*volume.Fleet, *engine.DB) {
		f, err := volume.NewFleet(volume.FleetConfig{Name: name, Geometry: core.UniformGeometry(2), Net: net, Disk: disk.FastLocal()})
		if err != nil {
			t.Fatal(err)
		}
		vol := volume.Bootstrap(f, volume.ClientConfig{WriterNode: netsim.NodeID(name + "-writer"), WriterAZ: 0})
		db, err := engine.Create(vol, engine.Config{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(db.Close)
		return f, db
	}
	fa, dba := mk("tenant-a")
	_, dbb := mk("tenant-b")

	if err := dba.Put([]byte("k"), []byte("a-data")); err != nil {
		t.Fatal(err)
	}
	if err := dbb.Put([]byte("k"), []byte("b-data")); err != nil {
		t.Fatal(err)
	}
	// Crash half of tenant A's storage (3 replicas of each PG): A loses
	// write quorum; B is untouched.
	for g := 0; g < fa.PGs(); g++ {
		for r := 0; r < 3; r++ {
			fa.Node(core.PGID(g), r).Crash()
		}
	}
	if err := dba.Put([]byte("k2"), []byte("x")); err == nil {
		t.Fatal("tenant A wrote without quorum")
	}
	if err := dbb.Put([]byte("k2"), []byte("b-more")); err != nil {
		t.Fatalf("tenant B impacted by tenant A faults: %v", err)
	}
	v, _, err := dbb.Get([]byte("k"))
	if err != nil || string(v) != "b-data" {
		t.Fatalf("tenant B data: %q %v", v, err)
	}
}
