// Package replica implements Aurora read replicas. Up to 15 replicas mount
// the same storage volume as the writer, adding no storage or write IO: the
// writer streams its redo log to each replica, which applies records to
// pages already in its buffer cache and discards the rest (§4.2.4). Two
// rules keep a replica consistent: only records at or below the writer's
// VDL are applied, and the records of one mini-transaction are applied
// atomically. Cache misses are served by the shared storage service at the
// replica's own read point.
package replica

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"aurora/internal/btree"
	"aurora/internal/bufcache"
	"aurora/internal/core"
	"aurora/internal/engine"
	"aurora/internal/netsim"
	"aurora/internal/page"
	"aurora/internal/trace"
	"aurora/internal/volume"
)

// ErrClosed is returned by reads on a closed replica.
var ErrClosed = errors.New("replica: closed")

// Config tunes one read replica.
type Config struct {
	Name       netsim.NodeID
	AZ         netsim.AZ
	CachePages int
	// Tracer, when non-nil, samples replica apply batches and cache-miss
	// reads into the same collector as the writer's commit spans, so
	// replica lag decomposes stage-by-stage the way commits do.
	Tracer *trace.Collector
}

// Stats is a snapshot of replica counters.
type Stats struct {
	Events    uint64
	Applied   uint64 // records applied to cached pages
	Discarded uint64 // records for uncached pages
	Buffered  int    // records above the VDL awaiting durability
	VDL       core.LSN
	Cache     bufcache.Stats
}

// Replica is one read-only instance attached to the writer's log stream
// and the shared storage volume.
type Replica struct {
	name   netsim.NodeID
	reader *volume.Reader
	cache  *bufcache.Cache
	tracer *trace.Collector
	// ctx bounds the replica's own storage reads; Close cancels it so
	// in-flight hedged fetches unwind before the reader detaches.
	ctx       context.Context
	ctxCancel context.CancelFunc
	// pgOfAt routes a page at a read point: across a live stripe cutover
	// the replica's snapshot reads must keep going to the PG that holds the
	// page's history as of that point (volume growth, §3).
	pgOfAt func(core.PageID, core.LSN) core.PGID

	mu      sync.RWMutex // excludes reads during atomic MTR application
	vdl     core.LSN
	vdlA    atomic.Uint64 // lock-free mirror of vdl for the eviction fence
	pending []core.Record // records above vdl, in LSN order
	tails   map[core.PGID]core.LSN

	cancel func()
	stop   chan struct{}
	done   chan struct{}
	closed atomic.Bool

	events    atomic.Uint64
	applied   atomic.Uint64
	discarded atomic.Uint64
}

// Attach creates a replica consuming db's log stream and reading cold
// pages from the fleet.
func Attach(db *engine.DB, f *volume.Fleet, cfg Config) *Replica {
	if cfg.CachePages <= 0 {
		cfg.CachePages = 4096
	}
	ctx, ctxCancel := context.WithCancel(context.Background())
	r := &Replica{
		name:      cfg.Name,
		reader:    volume.NewReader(f, cfg.Name, cfg.AZ),
		tracer:    cfg.Tracer,
		ctx:       ctx,
		ctxCancel: ctxCancel,
		pgOfAt:    f.PGOfAt,
		tails:     make(map[core.PGID]core.LSN),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	// The replica's cache eviction fence is its own applied VDL.
	r.cache = bufcache.New(cfg.CachePages, r.VDL)
	events, cancel := db.Subscribe()
	r.cancel = cancel
	// Seed the view from the writer's current durable state so reads issued
	// before the first stream event see real data, not an empty volume.
	// Events already queued re-advance idempotently.
	vol := db.Volume()
	r.vdl = vol.VDL()
	r.vdlA.Store(uint64(r.vdl))
	// Pin the starting view: storage GC must keep every version this
	// replica could still read (the writer folds reader pins into its
	// MRPL). The pin advances with the applied VDL in ingest.
	r.reader.PinReadPoint(r.vdl)
	for g := 0; g < f.PGs(); g++ {
		if tail := vol.DurableTail(core.PGID(g)); tail > 0 {
			r.tails[core.PGID(g)] = tail
		}
	}
	go r.loop(events)
	return r
}

func (r *Replica) loop(events <-chan engine.Event) {
	defer close(r.done)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return
			}
			r.events.Add(1)
			r.ingest(ev)
		case <-r.stop:
			return
		}
	}
}

// ingest buffers the event's records and applies everything at or below
// the new VDL atomically.
func (r *Replica) ingest(ev engine.Event) {
	sp := r.traceStart("replica.apply")
	sp.Annotate("records", len(ev.Records))
	sp.Annotate("stream_vdl", ev.VDL)
	r.mu.Lock()
	defer r.mu.Unlock()
	bsp := sp.Child("replica.buffer")
	r.pending = append(r.pending, ev.Records...)
	bsp.End()
	newVDL := r.vdl
	if ev.VDL > newVDL {
		newVDL = ev.VDL
	}
	// Apply the prefix of pending records at or below the VDL. The VDL is
	// always a CPL, so this prefix is a whole number of MTRs; holding the
	// exclusive lock for the whole prefix makes the application atomic
	// with respect to replica reads.
	asp := sp.Child("replica.advance")
	cut := 0
	for cut < len(r.pending) && r.pending[cut].LSN <= newVDL {
		rec := &r.pending[cut]
		r.applyLocked(rec)
		cut++
	}
	if cut > 0 {
		r.pending = append([]core.Record(nil), r.pending[cut:]...)
	}
	asp.Annotate("applied", cut)
	asp.Annotate("lag_records", len(r.pending))
	asp.End()
	if newVDL > r.vdl {
		r.vdl = newVDL
		r.vdlA.Store(uint64(newVDL))
		// Advance the GC pin with the applied view (monotone).
		r.reader.PinReadPoint(newVDL)
	}
	sp.Annotate("vdl", r.vdl)
	sp.End()
}

// traceStart samples a replica-side root span; nil when no tracer is
// attached or this event loses the sampling lottery.
func (r *Replica) traceStart(name string) *trace.Span {
	if r.tracer == nil {
		return nil
	}
	return r.tracer.Start(name)
}

func (r *Replica) applyLocked(rec *core.Record) {
	if rec.PageRecord() {
		if rec.LSN > r.tails[rec.PG] {
			r.tails[rec.PG] = rec.LSN
		}
	}
	if !rec.PageRecord() {
		return
	}
	p, ok := r.cache.Get(rec.Page)
	if !ok {
		r.discarded.Add(1)
		return
	}
	defer r.cache.Unpin(rec.Page)
	if rec.LSN <= p.LSN() {
		return // already reflected (page fetched fresh from storage)
	}
	if err := p.Apply(rec); err == nil {
		r.applied.Add(1)
	}
}

// VDL returns the replica's applied durable point. It is lock-free so the
// buffer cache can consult it as its eviction fence from any context.
func (r *Replica) VDL() core.LSN { return core.LSN(r.vdlA.Load()) }

// replicaStore serves tree pages at the replica's read point: cache first,
// then the shared storage volume. Callers hold r.mu.RLock for the whole
// tree operation, so the apply loop cannot interleave.
type replicaStore struct {
	r         *Replica
	ctx       context.Context
	readPoint core.LSN
}

func (s *replicaStore) Page(id core.PageID) (page.Page, error) {
	if p, ok := s.r.cache.Get(id); ok {
		s.r.cache.Unpin(id)
		return p, nil
	}
	sp := s.r.traceStart("replica.read")
	sp.Annotate("page", id)
	sp.Annotate("read_point", s.readPoint)
	required := s.r.tails[s.r.pgOfAt(id, s.readPoint)] // under RLock
	p, err := s.r.reader.ReadPageAt(trace.NewContext(s.ctx, sp), id, s.readPoint, required)
	sp.End()
	if err != nil {
		return nil, err
	}
	cached := s.r.cache.Put(id, p)
	s.r.cache.Unpin(id)
	return cached, nil
}

func (s *replicaStore) FreshPage(core.PageID) (page.Page, error) {
	return nil, errors.New("replica: read-only")
}

// Get reads a row at the replica's current view.
func (r *Replica) Get(key []byte) ([]byte, bool, error) {
	return r.GetCtx(context.Background(), key)
}

// GetCtx is Get with cold-page fetches bounded by ctx.
func (r *Replica) GetCtx(ctx context.Context, key []byte) ([]byte, bool, error) {
	if r.closed.Load() {
		return nil, false, ErrClosed
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	t := btree.View(&replicaStore{r: r, ctx: r.joinCtx(ctx), readPoint: r.vdl})
	return t.Get(key)
}

// Scan visits rows in range at the replica's current view.
func (r *Replica) Scan(from, to []byte, fn func(k, v []byte) bool) error {
	return r.ScanCtx(context.Background(), from, to, fn)
}

// ScanCtx is Scan with cold-page fetches bounded by ctx.
func (r *Replica) ScanCtx(ctx context.Context, from, to []byte, fn func(k, v []byte) bool) error {
	if r.closed.Load() {
		return ErrClosed
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	t := btree.View(&replicaStore{r: r, ctx: r.joinCtx(ctx), readPoint: r.vdl})
	return t.Scan(from, to, fn)
}

// joinCtx returns the replica's root ctx unless the caller brought a
// cancelable one — the common Background case costs nothing.
func (r *Replica) joinCtx(ctx context.Context) context.Context {
	if ctx == context.Background() {
		return r.ctx
	}
	return ctx
}

// WarmUp pre-loads the pages holding the given key range into the cache so
// subsequent log records for them are applied rather than discarded.
func (r *Replica) WarmUp(from, to []byte) error {
	return r.Scan(from, to, func(k, v []byte) bool { return true })
}

// Stats returns a snapshot of replica counters.
func (r *Replica) Stats() Stats {
	r.mu.RLock()
	buffered := len(r.pending)
	vdl := r.vdl
	r.mu.RUnlock()
	return Stats{
		Events:    r.events.Load(),
		Applied:   r.applied.Load(),
		Discarded: r.discarded.Load(),
		Buffered:  buffered,
		VDL:       vdl,
		Cache:     r.cache.Stats(),
	}
}

// Close detaches the replica from the stream and the network.
func (r *Replica) Close() {
	if r.closed.Swap(true) {
		return
	}
	r.cancel()
	r.ctxCancel()
	close(r.stop)
	<-r.done
	// Reader.Close drains in-flight hedged fetches and releases this
	// replica's read-point pin before leaving the network.
	r.reader.Close()
}
