package replica

import (
	"fmt"
	"testing"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/netsim"
	"aurora/internal/volume"
)

func testStack(t *testing.T) (*volume.Fleet, *engine.DB) {
	t.Helper()
	net := netsim.New(netsim.FastLocal())
	f, err := volume.NewFleet(volume.FleetConfig{Name: "r", Geometry: core.UniformGeometry(2), Net: net, Disk: disk.FastLocal()})
	if err != nil {
		t.Fatal(err)
	}
	vol := volume.Bootstrap(f, volume.ClientConfig{WriterNode: "writer", WriterAZ: 0})
	db, err := engine.Create(vol, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return f, db
}

func waitVisible(t *testing.T, r *Replica, key, want string) time.Duration {
	t.Helper()
	start := time.Now()
	deadline := start.Add(5 * time.Second)
	for {
		v, ok, err := r.Get([]byte(key))
		if err != nil {
			t.Fatal(err)
		}
		if ok && string(v) == want {
			return time.Since(start)
		}
		if time.Now().After(deadline) {
			t.Fatalf("key %q=%q not visible on replica (got %q ok=%v)", key, want, v, ok)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestReplicaSeesCommittedWrites(t *testing.T) {
	f, db := testStack(t)
	r := Attach(db, f, Config{Name: "replica1", AZ: 1})
	defer r.Close()
	if err := db.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	waitVisible(t, r, "k", "v1")
	if err := db.Put([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	waitVisible(t, r, "k", "v2")
	if r.VDL() == 0 {
		t.Fatal("replica VDL never advanced")
	}
}

func TestReplicaAppliesToCachedPages(t *testing.T) {
	f, db := testStack(t)
	r := Attach(db, f, Config{Name: "replica1", AZ: 1})
	defer r.Close()
	for i := 0; i < 20; i++ {
		if err := db.Put([]byte(fmt.Sprintf("row%02d", i)), []byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	waitVisible(t, r, "row19", "a")
	// Warm the replica cache, then keep writing: records should be applied
	// in place rather than discarded.
	if err := r.WarmUp(nil, nil); err != nil {
		t.Fatal(err)
	}
	before := r.Stats().Applied
	for i := 0; i < 20; i++ {
		if err := db.Put([]byte(fmt.Sprintf("row%02d", i)), []byte("b")); err != nil {
			t.Fatal(err)
		}
	}
	waitVisible(t, r, "row19", "b")
	if r.Stats().Applied <= before {
		t.Fatalf("no records applied to warm cache (applied=%d)", r.Stats().Applied)
	}
	// And the data read from the cache is correct for every row.
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("row%02d", i)
		v, ok, err := r.Get([]byte(k))
		if err != nil || !ok || string(v) != "b" {
			t.Fatalf("%s: %q %v %v", k, v, ok, err)
		}
	}
}

func TestReplicaDiscardsUncachedRecords(t *testing.T) {
	f, db := testStack(t)
	r := Attach(db, f, Config{Name: "replica1", AZ: 1, CachePages: 4})
	defer r.Close()
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("x%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	waitVisible(t, r, "x049", "v")
	if r.Stats().Discarded == 0 {
		t.Fatal("cold replica should discard records for uncached pages")
	}
}

func TestReplicaLagIsSmall(t *testing.T) {
	f, db := testStack(t)
	r := Attach(db, f, Config{Name: "replica1", AZ: 1})
	defer r.Close()
	if err := db.Put([]byte("seed"), []byte("s")); err != nil {
		t.Fatal(err)
	}
	waitVisible(t, r, "seed", "s")
	var worst time.Duration
	for i := 0; i < 10; i++ {
		val := fmt.Sprintf("v%d", i)
		if err := db.Put([]byte("lagkey"), []byte(val)); err != nil {
			t.Fatal(err)
		}
		if lag := waitVisible(t, r, "lagkey", val); lag > worst {
			worst = lag
		}
	}
	// The paper reports ~2.6–5.4ms lag at scale; in-process with a fast
	// network the bound is generous but still demonstrates "well under a
	// second", versus MySQL's seconds-to-minutes.
	if worst > 500*time.Millisecond {
		t.Fatalf("replica lag %v too high", worst)
	}
}

func TestMultipleReplicas(t *testing.T) {
	f, db := testStack(t)
	var reps []*Replica
	for i := 0; i < 4; i++ {
		r := Attach(db, f, Config{Name: netsim.NodeID(fmt.Sprintf("rep%d", i)), AZ: netsim.AZ(i % 3)})
		defer r.Close()
		reps = append(reps, r)
	}
	if err := db.Put([]byte("fan"), []byte("out")); err != nil {
		t.Fatal(err)
	}
	for _, r := range reps {
		waitVisible(t, r, "fan", "out")
	}
}

func TestReplicaScan(t *testing.T) {
	f, db := testStack(t)
	r := Attach(db, f, Config{Name: "replica1", AZ: 1})
	defer r.Close()
	for i := 0; i < 30; i++ {
		if err := db.Put([]byte(fmt.Sprintf("s%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	waitVisible(t, r, "s029", "v")
	count := 0
	if err := r.Scan([]byte("s010"), []byte("s020"), func(k, v []byte) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("scanned %d rows, want 10", count)
	}
}

func TestReplicaCloseIsCleanAndIdempotent(t *testing.T) {
	f, db := testStack(t)
	r := Attach(db, f, Config{Name: "replica1", AZ: 1})
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close()
	if _, _, err := r.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("read after close: %v", err)
	}
	// The writer keeps working after a replica detaches.
	if err := db.Put([]byte("k2"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaAddsNoStorageWrites(t *testing.T) {
	f, db := testStack(t)
	for i := 0; i < 10; i++ {
		if err := db.Put([]byte(fmt.Sprintf("pre%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var before uint64
	for g := 0; g < f.PGs(); g++ {
		for i := 0; i < 6; i++ {
			before += f.Node(0, i).Disk().Stats().Writes
		}
	}
	r := Attach(db, f, Config{Name: "replica1", AZ: 1})
	defer r.Close()
	waitVisible(t, r, "pre9", "v")
	if err := r.WarmUp(nil, nil); err != nil {
		t.Fatal(err)
	}
	var after uint64
	for g := 0; g < f.PGs(); g++ {
		for i := 0; i < 6; i++ {
			after += f.Node(0, i).Disk().Stats().Writes
		}
	}
	// Replica activity (attach + reads) must not add disk writes: read
	// replicas add no storage or write cost (§4.2.4).
	if after != before {
		t.Fatalf("replica caused %d storage writes", after-before)
	}
}
