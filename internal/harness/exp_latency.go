package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/netsim"
	"aurora/internal/trace"
	"aurora/internal/workload"
)

// LatencyAttribution answers "where does a 4/6-quorum commit's latency go"
// with the causal tracing subsystem: it drives a write-only workload with
// commit sampling on, collects every sampled commit's critical path, and
// prints each stage's share of end-to-end commit latency under three
// conditions — normal, one gray-slow storage node per PG (alive, acking,
// +2ms on every message), and an entire AZ down. The shares in a column
// are a true decomposition: each sampled commit's wall time is attributed
// to exactly one stage at every instant, so a column sums to ~100%.
//
// The shape this reproduces: under a gray-slow node the write quorum masks
// the slow replica (§2.1 — its flights become stragglers past the 4/6
// point, visible in the stage histograms but off the critical path), while
// an AZ failure removes the slack — the quorum needs every surviving
// replica, so the commit path inherits the fleet's tail (§3.1's "bottom
// 0.01%" sensitivity) and the gray-failure machinery (retries against the
// dead AZ) engages.
func LatencyAttribution(s Scale) *Result {
	type scenario struct {
		name   string
		fault  func(a *AuroraStack)
		shares map[string]float64
		p50    time.Duration
		p99    time.Duration
		n      int
	}
	scenarios := []*scenario{
		{name: "normal", fault: func(a *AuroraStack) {}},
		{name: "gray-slow", fault: func(a *AuroraStack) {
			// One replica per PG goes gray: alive and acking, +2ms per hop.
			for g := 0; g < a.Fleet.PGs(); g++ {
				_ = a.Net.SetNodeDelay(a.Fleet.Node(core.PGID(g), 0).NodeID(), 2*time.Millisecond)
			}
		}},
		{name: "az-down", fault: func(a *AuroraStack) {
			a.Net.SetAZDown(netsim.AZ(2), true)
		}},
	}

	mix := workload.SysbenchWriteOnly(s.Rows)
	metrics := map[string]float64{}
	var raw strings.Builder
	for i, sc := range scenarios {
		au, err := NewAurora(AuroraConfig{
			PGs: 4, CachePages: 4096,
			Net:    benchNet(71 + int64(i)),
			Disk:   disk.NVMe(),
			Engine: engine.Config{TraceEvery: 4, TraceRing: 1024},
		})
		if err != nil {
			panic(err)
		}
		if err := workload.Load(au.WL(), s.Rows, 100); err != nil {
			panic(err)
		}
		sc.fault(au)
		workload.Run(au.WL(), mix, workload.Options{Clients: s.Clients, Duration: s.Duration, Seed: 71})

		sc.shares, sc.p50, sc.p99, sc.n = commitPathShares(au.DB.Tracer())
		vs := au.DB.Stats().Volume
		metrics[sc.name+"_commits_traced"] = float64(sc.n)
		metrics[sc.name+"_p50_ms"] = float64(sc.p50.Microseconds()) / 1000
		metrics[sc.name+"_p99_ms"] = float64(sc.p99.Microseconds()) / 1000
		metrics[sc.name+"_write_retries"] = float64(vs.WriteRetries)
		metrics[sc.name+"_hedges"] = float64(vs.Hedges)

		if sc.name == "normal" {
			raw.WriteString("per-stage latency attribution (normal):\n")
			raw.WriteString(trace.FormatStages(au.DB.Tracer().Stages()))
			if ex := au.DB.Tracer().Exemplars("commit"); len(ex) > 0 {
				raw.WriteString("\nslowest sampled commit (critical-path exemplar):\n")
				raw.WriteString(ex[0].Render())
				raw.WriteString("critical path: ")
				for j, seg := range trace.CriticalPath(ex[0].Snapshot()) {
					if j > 0 {
						raw.WriteString(" + ")
					}
					fmt.Fprintf(&raw, "%s %v", seg.Name, seg.Dur.Round(time.Microsecond))
				}
				raw.WriteString("\n")
			}
		}
		au.Close()
	}

	// Rows: union of stages on any scenario's critical paths, ordered by
	// the normal scenario's share descending.
	stageSet := map[string]bool{}
	for _, sc := range scenarios {
		for st := range sc.shares {
			stageSet[st] = true
		}
	}
	stages := make([]string, 0, len(stageSet))
	for st := range stageSet {
		stages = append(stages, st)
	}
	sort.Slice(stages, func(a, b int) bool {
		if scenarios[0].shares[stages[a]] != scenarios[0].shares[stages[b]] {
			return scenarios[0].shares[stages[a]] > scenarios[0].shares[stages[b]]
		}
		return stages[a] < stages[b]
	})
	t := &Table{Header: []string{"Stage (critical-path share)", "normal", "gray-slow", "az-down"}}
	for _, st := range stages {
		t.Add(st,
			fmt.Sprintf("%.1f%%", scenarios[0].shares[st]),
			fmt.Sprintf("%.1f%%", scenarios[1].shares[st]),
			fmt.Sprintf("%.1f%%", scenarios[2].shares[st]))
	}
	t.Add("commit p50",
		fmtDur(scenarios[0].p50), fmtDur(scenarios[1].p50), fmtDur(scenarios[2].p50))
	t.Add("commit p99",
		fmtDur(scenarios[0].p99), fmtDur(scenarios[1].p99), fmtDur(scenarios[2].p99))

	return &Result{
		ID: "Latency", Title: "where a 4/6-quorum commit's latency goes (critical-path attribution)",
		Table:   t,
		Metrics: metrics,
		Notes: []string{
			"each column decomposes sampled commits' end-to-end latency; columns sum to ~100%",
			"gray-slow: the 4/6 quorum keeps the slow replica off the critical path (§2.1)",
			"az-down: the quorum needs all 4 survivors, so the commit inherits the fleet tail (§3.1)",
		},
		Raw: raw.String(),
	}
}

// commitPathShares folds every finished sampled commit's critical path into
// per-stage shares of total commit time, plus the p50/p99 of the sampled
// commits' end-to-end latencies.
func commitPathShares(col *trace.Collector) (map[string]float64, time.Duration, time.Duration, int) {
	acc := map[string]time.Duration{}
	var total time.Duration
	var durs []time.Duration
	for _, tr := range col.Traces() {
		if tr.RootName() != "commit" {
			continue
		}
		snap := tr.Snapshot()
		if snap.End == 0 {
			continue
		}
		for _, seg := range trace.CriticalPath(snap) {
			acc[seg.Name] += seg.Dur
		}
		total += snap.Duration()
		durs = append(durs, snap.Duration())
	}
	shares := map[string]float64{}
	if total > 0 {
		for k, v := range acc {
			shares[k] = 100 * float64(v) / float64(total)
		}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	q := func(p float64) time.Duration {
		if len(durs) == 0 {
			return 0
		}
		i := int(p * float64(len(durs)-1))
		return durs[i]
	}
	return shares, q(0.50), q(0.99), len(durs)
}
