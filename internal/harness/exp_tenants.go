package harness

import (
	"fmt"
	"sync"

	"aurora"
	"aurora/internal/workload"
)

// TenantsExperiment measures the multi-tenant storage fleet: many
// independent volumes — each its own writer, LSN space and geometry —
// sharing one pool of storage hosts (§1: Aurora's storage service is
// explicitly multi-tenant). It runs through the public aurora API
// (NewStorageFleet / OpenVolume), so it doubles as an end-to-end test of
// the multi-tenant surface.
//
// Phase A (scaling): N tenants run the same OLTP mix concurrently on one
// shared 9-host fleet. Tenants bring their own writers, so aggregate
// writes/sec should INCREASE with N — the hosts are shared, not the
// bottleneck — which is the economic argument for fleet sharing.
//
// Phase B (noisy neighbor): three tenants on a QoS-shaped fleet, one
// deliberately hot (big-transaction flood). Per-host fair-share token
// buckets must throttle the hot tenant's excess while each quiet tenant
// retains at least ~70% of its solo fair-share throughput — measured
// against a baseline run of one quiet tenant alone with its fair share
// (capacity/3) as the whole budget.
func TenantsExperiment(s Scale) *Result {
	quietMix := workload.SysbenchOLTP(s.Rows)

	// --- Phase A: aggregate throughput scaling 1 -> N tenants ---
	// Per-tenant concurrency is pinned to a moderate level so the measured
	// bottleneck is the simulated fleet (network + disk latency), not the
	// test host's CPU: 4 tenants x 32 clients of pure simulation overruns a
	// small CI machine and the collapse would be scheduler churn, not a
	// storage property.
	sA := s
	if sA.Clients > 4 {
		sA.Clients = 4
	}
	counts := []int{1, 2, 4}
	aggregate := make([]float64, len(counts))
	t := &Table{Header: []string{"Config", "tenants", "writes/sec", "per-tenant", "throttles", "rejects"}}
	for ci, n := range counts {
		fleet, err := aurora.NewStorageFleet(aurora.FleetOptions{
			Name: fmt.Sprintf("scale%d", n), Hosts: 9, Network: aurora.NetDatacenter,
		})
		if err != nil {
			panic(err)
		}
		wps := runTenants(fleet, sA, makeTenants(fleet, sA, n, "t"), quietMix, nil)
		total := 0.0
		for _, w := range wps {
			total += w
		}
		aggregate[ci] = total
		t.Add(fmt.Sprintf("scale-%dx", n), fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", total), fmt.Sprintf("%.0f", total/float64(n)), "-", "-")
		fleet.Close()
	}

	// --- Phase B: noisy-neighbor throttling under per-host QoS ---
	// Host ingest budget C: generous for three well-behaved tenants
	// (fair share C/3 each), far below what the flood offers.
	const hostIngest = 6 << 20 // 6 MiB/s per host
	hotMix := workload.Mix{Writes: 8, ValueSize: 1024, Dist: workload.Uniform{N: s.Rows}}

	// Baseline: one quiet tenant alone, with exactly its fair share as the
	// whole host budget (capacity/3 and one active tenant ≡ capacity and
	// three active tenants).
	baseFleet, err := aurora.NewStorageFleet(aurora.FleetOptions{
		Name: "qos-base", Hosts: 9, Network: aurora.NetDatacenter,
		IngestBytesPerSec: hostIngest / 3,
	})
	if err != nil {
		panic(err)
	}
	baseWPS := runTenants(baseFleet, s, makeTenants(baseFleet, s, 1, "base"), quietMix, nil)[0]
	baseFleet.Close()

	// Contended: two quiet tenants plus one hot flooder on the full budget.
	qosFleet, err := aurora.NewStorageFleet(aurora.FleetOptions{
		Name: "qos", Hosts: 9, Network: aurora.NetDatacenter,
		IngestBytesPerSec: hostIngest,
	})
	if err != nil {
		panic(err)
	}
	quiet := makeTenants(qosFleet, s, 2, "quiet")
	hot := makeTenants(qosFleet, s, 1, "hot")[0]
	hotClients := s.Clients * 4
	quietWPS := runTenants(qosFleet, s, quiet, quietMix, func(wg *sync.WaitGroup) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			workload.Run(wlOf(hot.c), hotMix, workload.Options{
				Clients: hotClients, Duration: s.Duration, Seed: 99,
			})
		}()
	})
	stats := qosFleet.TenantStats()
	hotQoS := stats[hot.c.VolumeID()]
	minQuiet := quietWPS[0]
	for _, w := range quietWPS {
		if w < minQuiet {
			minQuiet = w
		}
	}
	retention := ratio(minQuiet, baseWPS)
	for i, w := range quietWPS {
		q := stats[quiet[i].c.VolumeID()]
		t.Add(fmt.Sprintf("qos-quiet-%d", i+1), "3", fmt.Sprintf("%.0f", w), fmt.Sprintf("%.0f", w),
			fmt.Sprintf("%d", q.Throttles), fmt.Sprintf("%d", q.Rejects))
	}
	t.Add("qos-hot-flood", "3", "-", "-",
		fmt.Sprintf("%d", hotQoS.Throttles), fmt.Sprintf("%d", hotQoS.Rejects))
	t.Add("qos-solo-baseline", "1", fmt.Sprintf("%.0f", baseWPS), fmt.Sprintf("%.0f", baseWPS), "-", "-")
	qosFleet.Close()

	return &Result{
		ID:    "Tenants",
		Title: "Multi-tenant storage fleet: shared hosts, per-tenant QoS",
		Table: t,
		Metrics: map[string]float64{
			"aggregate_1":        aggregate[0],
			"aggregate_2":        aggregate[1],
			"aggregate_4":        aggregate[2],
			"scaling_4v1":        ratio(aggregate[2], aggregate[0]),
			"quiet_retention":    retention,
			"quiet_min_wps":      minQuiet,
			"solo_fairshare_wps": baseWPS,
			"hot_throttles":      float64(hotQoS.Throttles),
			"hot_rejects":        float64(hotQoS.Rejects),
			"hot_throttle_secs":  hotQoS.ThrottleWait.Seconds(),
		},
		Notes: []string{
			"expect scaling_4v1 > 1 (aggregate throughput grows with tenant count on shared hosts)",
			"expect quiet_retention >= 0.7 (quiet tenants keep their fair share beside a flooding neighbor)",
			"expect hot_throttles > 0 (the flood is visibly shaped, not the quiet tenants)",
		},
	}
}

// tenant pairs an open volume with its name for workload runs.
type tenant struct {
	name string
	c    *aurora.Cluster
}

// makeTenants opens and preloads n volumes on the fleet.
func makeTenants(fleet *aurora.StorageFleet, s Scale, n int, prefix string) []tenant {
	out := make([]tenant, n)
	for i := range out {
		name := fmt.Sprintf("%s%d", prefix, i+1)
		c, err := fleet.OpenVolume(name, aurora.Options{PGs: 2, CachePages: 4096})
		if err != nil {
			panic(err)
		}
		if err := workload.Load(wlOf(c), s.Rows, 100); err != nil {
			panic(err)
		}
		out[i] = tenant{name: name, c: c}
	}
	return out
}

// runTenants drives the mix against every tenant concurrently (plus any
// extra load started by extra) and returns each tenant's writes/sec.
func runTenants(fleet *aurora.StorageFleet, s Scale, tenants []tenant, mix workload.Mix, extra func(*sync.WaitGroup)) []float64 {
	_ = fleet
	var wg sync.WaitGroup
	wps := make([]float64, len(tenants))
	if extra != nil {
		extra(&wg)
	}
	for i, tn := range tenants {
		wg.Add(1)
		go func(i int, tn tenant) {
			defer wg.Done()
			res := workload.Run(wlOf(tn.c), mix, workload.Options{
				Clients: s.Clients, Duration: s.Duration, Seed: int64(31 + i),
			})
			wps[i] = res.WritesPerSec(mix)
		}(i, tn)
	}
	wg.Wait()
	return wps
}

// wlOf adapts a public cluster to the workload driver — aurora.Tx satisfies
// workload.Tx structurally, which is itself part of what this experiment
// verifies about the public API.
func wlOf(c *aurora.Cluster) workload.DB {
	return workload.DBFunc(func() workload.Tx { return c.Begin() })
}
