package harness

import (
	"fmt"
	"time"

	"aurora/internal/quorum"
)

// DurabilityExperiment reproduces the §2 durability argument with the
// Monte-Carlo failure model: under the same background noise of node
// failures plus correlated AZ outages, the 2/3 scheme loses read quorum
// (i.e. can no longer prove durability or rebuild replication) far more
// often than Aurora's 4/6 AZ+1 design, and the mirrored 4/4 configuration
// loses write availability on any single failure. It also shows the §2.2
// segmentation argument: shrinking MTTR (small segments repair in seconds)
// collapses the window of vulnerability to double faults.
func DurabilityExperiment(Scale) *Result {
	base := quorum.DurabilityParams{
		NodeMTTF: 1000 * time.Hour,
		NodeMTTR: 1 * time.Hour,
		AZMTTF:   4000 * time.Hour,
		AZMTTR:   8 * time.Hour,
		Mission:  10 * 365 * 24 * time.Hour,
		Trials:   600,
		Seed:     2,
	}
	schemes := []struct {
		name string
		cfg  quorum.Config
	}{
		{"Aurora 4/6 (2 per AZ x 3 AZ)", quorum.Aurora()},
		{"2/3 (1 per AZ x 3 AZ)", quorum.TwoOfThree()},
		{"Mirrored 4/4 (2 AZ)", quorum.MirroredFourOfFour()},
	}
	t := &Table{Header: []string{"Scheme", "P(read quorum loss)", "P(write quorum loss)", "Write unavail (fraction)"}}
	metrics := map[string]float64{}
	for _, sc := range schemes {
		r := quorum.SimulateDurability(sc.cfg, base)
		t.Add(sc.name,
			fmt.Sprintf("%.4f", r.ReadQuorumLossProb),
			fmt.Sprintf("%.4f", r.WriteQuorumLossProb),
			fmt.Sprintf("%.6f", r.WriteUnavailFraction))
		key := map[string]string{
			"Aurora 4/6 (2 per AZ x 3 AZ)": "aurora",
			"2/3 (1 per AZ x 3 AZ)":        "twothree",
			"Mirrored 4/4 (2 AZ)":          "mirrored",
		}[sc.name]
		metrics[key+"_read_loss"] = r.ReadQuorumLossProb
		metrics[key+"_write_loss"] = r.WriteQuorumLossProb
		metrics[key+"_unavail"] = r.WriteUnavailFraction
	}

	// Segmentation: fast repair (10GB on 10Gbps ≈ seconds) vs slow.
	fast := base
	fast.NodeMTTR = quorum.RepairTime(10_000_000_000, 10_000_000_000)
	rFast := quorum.SimulateDurability(quorum.Aurora(), fast)
	rSlow := quorum.SimulateDurability(quorum.Aurora(), base)
	t.Add("Aurora 4/6, 10s segment repair",
		fmt.Sprintf("%.4f", rFast.ReadQuorumLossProb),
		fmt.Sprintf("%.4f", rFast.WriteQuorumLossProb),
		fmt.Sprintf("%.6f", rFast.WriteUnavailFraction))
	metrics["aurora_fast_repair_read_loss"] = rFast.ReadQuorumLossProb
	metrics["aurora_slow_repair_read_loss"] = rSlow.ReadQuorumLossProb

	return &Result{
		ID: "Durability (§2)", Title: "Monte-Carlo quorum durability under node + AZ failures (10-year mission)",
		Table: t, Metrics: metrics,
		Notes: []string{
			"AZ+1 goal: 4/6 tolerates an AZ loss plus one more failure for reads, an AZ loss for writes",
			"segmented storage shrinks MTTR, collapsing the double-fault window (§2.2)",
		},
	}
}
