package harness

import (
	"context"
	"fmt"
	"time"

	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/volume"
	"aurora/internal/workload"
)

// RecoveryExperiment reproduces the §4.3 claim: an Aurora database
// recovers "generally under 10 seconds" even when it crashes under heavy
// write load, because redo application lives on the storage fleet and
// recovery only re-establishes durable points and truncates the tail. The
// traditional engine must replay every redo record since its last
// checkpoint while offline, so its recovery time grows with the redo
// backlog. The experiment crashes both engines after increasing amounts of
// post-checkpoint work.
func RecoveryExperiment(s Scale) *Result {
	backlogs := []int{s.Rows / 8, s.Rows / 2, s.Rows * 2}
	t := &Table{Header: []string{"Txns since checkpoint", "Aurora recovery", "MySQL recovery", "MySQL redo records"}}
	metrics := map[string]float64{}

	var aTimes, mTimes []float64
	for i, n := range backlogs {
		// Aurora: crash after n commits, recover, time it.
		au, err := NewAurora(AuroraConfig{PGs: 4, CachePages: 4096, Net: benchNet(61 + int64(i)), Disk: disk.FastLocal()})
		if err != nil {
			panic(err)
		}
		for j := 0; j < n; j++ {
			if err := au.DB.Put(workload.Key(j%s.Rows), []byte("recov")); err != nil {
				panic(err)
			}
		}
		au.DB.Crash()
		start := time.Now()
		db2, _, err := engine.Recover(context.Background(), au.Fleet, volume.ClientConfig{WriterNode: "au-writer2", WriterAZ: 0}, engine.Config{})
		if err != nil {
			panic(err)
		}
		// Recovery is complete when the database serves its first read.
		if _, _, err := db2.Get(workload.Key(0)); err != nil {
			panic(err)
		}
		aDur := time.Since(start)
		db2.Close()
		au.Fleet.Stop()

		// MySQL: same backlog with checkpoints disabled beyond the start.
		ms2, err := NewMySQL(MySQLConfig{CachePages: 4096, Net: benchNet(161 + int64(i)), Disk: disk.FastLocal(), Checkpoint: 1 << 30})
		if err != nil {
			panic(err)
		}
		for j := 0; j < n; j++ {
			if err := ms2.DB.Put(workload.Key(j%s.Rows), []byte("recov")); err != nil {
				panic(err)
			}
		}
		redo := ms2.DB.Stats().RedoRecords
		rep, err := ms2.DB.CrashAndRecover()
		if err != nil {
			panic(err)
		}
		ms2.Close()

		t.Add(fmt.Sprintf("%d", n), fmtDur(aDur), fmtDur(rep.Duration), fmt.Sprintf("%d", redo))
		aTimes = append(aTimes, ms(aDur))
		mTimes = append(mTimes, ms(rep.Duration))
	}
	last := len(backlogs) - 1
	metrics["aurora_ms_at_max"] = aTimes[last]
	metrics["mysql_ms_at_max"] = mTimes[last]
	metrics["mysql_growth"] = ratio(mTimes[last], mTimes[0])
	metrics["aurora_growth"] = ratio(aTimes[last], aTimes[0])
	return &Result{
		ID: "Recovery (§4.3)", Title: "Crash recovery time vs redo backlog",
		Table: t, Metrics: metrics,
		Notes: []string{
			"paper: Aurora recovers in <10s even at 100k writes/sec; no redo replay at startup",
			"Aurora recovery time is flat in backlog; ARIES redo grows with it",
		},
	}
}
