package harness

import (
	"fmt"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/workload"
)

// AblationSyncCommit quantifies §4.2.2's asynchronous commit: the same
// engine with commits that hold the engine exclusively through quorum
// shipping and durability (a synchronous design) against the default
// asynchronous pipeline.
func AblationSyncCommit(s Scale) *Result {
	mix := workload.SysbenchWriteOnly(s.Rows)
	opts := workload.Options{Clients: s.Clients, Duration: s.Duration, Seed: 71}

	run := func(sync bool, seed int64) float64 {
		au, err := NewAurora(AuroraConfig{
			PGs: 4, CachePages: 4096, Net: benchNet(seed), Disk: disk.FastLocal(),
			Engine: engine.Config{SyncCommit: sync},
		})
		if err != nil {
			panic(err)
		}
		defer au.Close()
		if err := workload.Load(au.WL(), s.Rows, 100); err != nil {
			panic(err)
		}
		return workload.Run(au.WL(), mix, opts).TPS()
	}
	syncTPS := run(true, 71)
	asyncTPS := run(false, 72)

	t := &Table{Header: []string{"Commit protocol", "Transactions/sec"}}
	t.Add("synchronous (stalls engine)", fmt.Sprintf("%.0f", syncTPS))
	t.Add("asynchronous (Aurora, §4.2.2)", fmt.Sprintf("%.0f", asyncTPS))
	return &Result{
		ID: "Ablation: async commit", Title: "Synchronous vs asynchronous commit",
		Table: t,
		Metrics: map[string]float64{
			"sync_tps":  syncTPS,
			"async_tps": asyncTPS,
			"speedup":   ratio(asyncTPS, syncTPS),
		},
	}
}

// AblationCoalesce quantifies the §3.2 IO-flow batching: per-segment
// sender pipelines that coalesce queued log batches into one network IO,
// against one message per batch.
func AblationCoalesce(s Scale) *Result {
	mix := workload.SysbenchWriteOnly(s.Rows)
	opts := workload.Options{Clients: s.Clients, Duration: s.Duration, Seed: 73}

	run := func(noCoalesce bool, seed int64) (tps, iosPerTxn float64) {
		au, err := NewAurora(AuroraConfig{
			PGs: 4, CachePages: 4096, Net: benchNet(seed), Disk: disk.FastLocal(),
			NoCoalesce: noCoalesce,
		})
		if err != nil {
			panic(err)
		}
		defer au.Close()
		if err := workload.Load(au.WL(), s.Rows, 100); err != nil {
			panic(err)
		}
		au.Net.ResetStats()
		res := workload.Run(au.WL(), mix, opts)
		sent, _, _, _, _ := au.Net.NodeStats(au.WriterNode())
		return res.TPS(), ratio(float64(sent), float64(res.Transactions))
	}
	nTPS, nIOs := run(true, 73)
	cTPS, cIOs := run(false, 74)

	t := &Table{Header: []string{"Log shipping", "Transactions/sec", "IOs/txn at writer"}}
	t.Add("one message per batch", fmt.Sprintf("%.0f", nTPS), fmtF(nIOs))
	t.Add("coalesced sender pipeline", fmt.Sprintf("%.0f", cTPS), fmtF(cIOs))
	return &Result{
		ID: "Ablation: log batching", Title: "Per-segment batch coalescing (§3.2 IO flow)",
		Table: t,
		Metrics: map[string]float64{
			"coalesced_tps": cTPS, "uncoalesced_tps": nTPS,
			"coalesced_ios": cIOs, "uncoalesced_ios": nIOs,
		},
	}
}

// AblationFullPages quantifies §3.1's "what is written" argument: shipping
// full page images instead of redo deltas multiplies the bytes crossing
// the network per transaction.
func AblationFullPages(s Scale) *Result {
	mix := workload.SysbenchWriteOnly(s.Rows)
	opts := workload.Options{Clients: s.Clients, Duration: s.Duration, Seed: 75}

	run := func(full bool, seed int64) (tps, bytesPerTxn float64) {
		au, err := NewAurora(AuroraConfig{
			PGs: 4, CachePages: 4096, Net: benchNet(seed), Disk: disk.FastLocal(),
			Engine: engine.Config{FullPageWrites: full},
		})
		if err != nil {
			panic(err)
		}
		defer au.Close()
		if err := workload.Load(au.WL(), s.Rows, 100); err != nil {
			panic(err)
		}
		au.Net.ResetStats()
		res := workload.Run(au.WL(), mix, opts)
		_, sentBytes, _, _, _ := au.Net.NodeStats(au.WriterNode())
		return res.TPS(), ratio(float64(sentBytes), float64(res.Transactions))
	}
	fTPS, fBytes := run(true, 75)
	dTPS, dBytes := run(false, 76)

	t := &Table{Header: []string{"Log contents", "Transactions/sec", "Bytes/txn on wire"}}
	t.Add("full page images", fmt.Sprintf("%.0f", fTPS), fmt.Sprintf("%.0f", fBytes))
	t.Add("redo deltas (Aurora)", fmt.Sprintf("%.0f", dTPS), fmt.Sprintf("%.0f", dBytes))
	return &Result{
		ID: "Ablation: redo vs pages", Title: "Shipping redo deltas vs full pages (§3.1)",
		Table: t,
		Metrics: map[string]float64{
			"delta_bytes_per_txn": dBytes,
			"page_bytes_per_txn":  fBytes,
			"amplification":       ratio(fBytes, dBytes),
		},
	}
}

// AblationMaterialize quantifies §3.2's background materialization: a page
// with a long delta chain is expensive to read until the storage node
// coalesces it; materialization is purely an optimization — the content is
// identical either way.
func AblationMaterialize(s Scale) *Result {
	au, err := NewAurora(AuroraConfig{PGs: 1, CachePages: 64, Net: benchNet(77), Disk: disk.FastLocal()})
	if err != nil {
		panic(err)
	}
	defer au.Close()
	// Hammer one row so a single page accumulates a long chain.
	key := []byte("hot-row")
	const updates = 400
	for i := 0; i < updates; i++ {
		if err := au.DB.Put(key, []byte(fmt.Sprintf("v%06d", i))); err != nil {
			panic(err)
		}
	}
	node := au.Fleet.Node(0, 0)
	var hotPage core.PageID
	var longest int
	for p := core.PageID(0); p < 16; p++ {
		if l := node.ChainLength(p); l > longest {
			longest = l
			hotPage = p
		}
	}

	readOnce := func() time.Duration {
		au.DB.Cache().Invalidate()
		start := time.Now()
		if _, _, err := au.DB.Get(key); err != nil {
			panic(err)
		}
		return time.Since(start)
	}
	before := readOnce()
	chainBefore := node.ChainLength(hotPage)
	// Let every replica materialize.
	coalesced := 0
	for i := 0; i < 6; i++ {
		coalesced += au.Fleet.Node(0, i).CoalesceOnce()
	}
	after := readOnce()
	chainAfter := node.ChainLength(hotPage)

	t := &Table{Header: []string{"State", "Hot page chain length", "Cold read latency"}}
	t.Add("before materialization", fmt.Sprintf("%d", chainBefore), fmtDur(before))
	t.Add("after materialization", fmt.Sprintf("%d", chainAfter), fmtDur(after))
	return &Result{
		ID: "Ablation: materialization", Title: "Background page materialization vs on-demand apply (§3.2)",
		Table: t,
		Metrics: map[string]float64{
			"chain_before":    float64(chainBefore),
			"chain_after":     float64(chainAfter),
			"pages_coalesced": float64(coalesced),
		},
		Notes: []string{
			"materialization is optional for correctness: the log is the database",
		},
	}
}
