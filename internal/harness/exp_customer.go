package harness

import (
	"time"

	"aurora/internal/disk"
	"aurora/internal/workload"
)

// customerRun measures one "production workload" (§6.2): an OLTP mix at
// moderate concurrency on the given stack, returning per-transaction and
// per-statement latency histograms.
func customerRun(db workload.DB, s Scale, seed int64) workload.Result {
	mix := workload.Mix{PointReads: 3, Writes: 1, ValueSize: 120, Dist: workload.Uniform{N: s.Rows}}
	return workload.Run(db, mix, workload.Options{Clients: s.Clients / 2, Duration: s.Duration, Seed: seed})
}

// migrationPair runs the same customer workload before (MySQL) and after
// (Aurora) the migration, as §6.2's customers did.
func migrationPair(s Scale, seed int64) (before, after workload.Result) {
	// A cache far smaller than the working set: the customer's pain was
	// outlier latency on the IO path, which needs misses to surface.
	cache := s.Rows / 60
	if cache < 16 {
		cache = 16
	}
	ms, err := NewMySQL(MySQLConfig{CachePages: cache, Net: benchNet(seed), Disk: disk.FastLocal(), Checkpoint: 24})
	if err != nil {
		panic(err)
	}
	if err := workload.Load(ms.WL(), s.Rows, 120); err != nil {
		panic(err)
	}
	before = customerRun(ms.WL(), s, seed)
	ms.Close()

	au, err := NewAurora(AuroraConfig{PGs: 4, CachePages: cache, Net: benchNet(seed + 100), Disk: disk.FastLocal()})
	if err != nil {
		panic(err)
	}
	if err := workload.Load(au.WL(), s.Rows, 120); err != nil {
		panic(err)
	}
	after = customerRun(au.WL(), s, seed)
	au.Close()
	return before, after
}

// Figure8 reproduces §6.2.1: the internet gaming company's web transaction
// response time dropped from ~15ms on MySQL to ~5.5ms after migrating to
// Aurora. The reproduction reports mean transaction latency before and
// after the same migration.
func Figure8(s Scale) *Result {
	before, after := migrationPair(s, 81)
	t := &Table{Header: []string{"Deployment", "Avg response time", "P95"}}
	t.Add("MySQL (before migration)", fmtDur(before.Latency.Mean()), fmtDur(before.Latency.Percentile(95)))
	t.Add("Aurora (after migration)", fmtDur(after.Latency.Mean()), fmtDur(after.Latency.Percentile(95)))
	return &Result{
		ID: "Figure 8", Title: "Web application response time across the migration",
		Table: t,
		Metrics: map[string]float64{
			"before_ms":   ms(before.Latency.Mean()),
			"after_ms":    ms(after.Latency.Mean()),
			"improvement": ratio(ms(before.Latency.Mean()), ms(after.Latency.Mean())),
		},
		Notes: []string{"paper: 15ms → 5.5ms average response time (3x)"},
	}
}

// Figure9 reproduces §6.2.2 Figure 9: SELECT latency P50 vs P95. On MySQL
// the P95 sits far above the P50 (cache-miss reads queue behind dirty-page
// flushes, checkpoints and the EBS chain's outliers); on Aurora the P95
// collapses toward the P50.
func Figure9(s Scale) *Result {
	before, after := migrationPair(s, 91)
	t := &Table{Header: []string{"Deployment", "SELECT P50", "SELECT P95", "P95/P50"}}
	bp50, bp95 := before.ReadLatency.Percentile(50), before.ReadLatency.Percentile(95)
	ap50, ap95 := after.ReadLatency.Percentile(50), after.ReadLatency.Percentile(95)
	t.Add("MySQL (before)", fmtDur(bp50), fmtDur(bp95), fmtF(ratio(ms(bp95), ms(bp50))))
	t.Add("Aurora (after)", fmtDur(ap50), fmtDur(ap95), fmtF(ratio(ms(ap95), ms(ap50))))
	return &Result{
		ID: "Figure 9", Title: "SELECT latency P50 vs P95 across the migration",
		Table: t,
		Metrics: map[string]float64{
			"mysql_p95_over_p50":  ratio(ms(bp95), ms(bp50)),
			"aurora_p95_over_p50": ratio(ms(ap95), ms(ap50)),
			"p95_improvement":     ratio(ms(bp95), ms(ap95)),
		},
		Notes: []string{"paper: P95 40–80ms vs P50 ~1ms before; P95 ≈ P50 after"},
	}
}

// Figure10 reproduces §6.2.2 Figure 10: per-record INSERT latency P50 vs
// P95 across the migration; the same outlier collapse on the write path.
// A per-record insert is a single-row autocommit transaction, so its
// latency is the full durability path.
func Figure10(s Scale) *Result {
	insertRun := func(db workload.DB, seed int64) workload.Result {
		mix := workload.SysbenchWriteOnly(s.Rows)
		return workload.Run(db, mix, workload.Options{Clients: s.Clients / 2, Duration: s.Duration, Seed: seed})
	}
	ms2, err := NewMySQL(MySQLConfig{CachePages: 1024, Net: benchNet(101), Disk: disk.FastLocal(), Checkpoint: 48})
	if err != nil {
		panic(err)
	}
	if err := workload.Load(ms2.WL(), s.Rows, 120); err != nil {
		panic(err)
	}
	before := insertRun(ms2.WL(), 101)
	ms2.Close()
	au, err := NewAurora(AuroraConfig{PGs: 4, CachePages: 1024, Net: benchNet(201), Disk: disk.FastLocal()})
	if err != nil {
		panic(err)
	}
	if err := workload.Load(au.WL(), s.Rows, 120); err != nil {
		panic(err)
	}
	after := insertRun(au.WL(), 101)
	au.Close()

	t := &Table{Header: []string{"Deployment", "INSERT P50", "INSERT P95", "P95/P50"}}
	bp50, bp95 := before.Latency.Percentile(50), before.Latency.Percentile(95)
	ap50, ap95 := after.Latency.Percentile(50), after.Latency.Percentile(95)
	t.Add("MySQL (before)", fmtDur(bp50), fmtDur(bp95), fmtF(ratio(ms(bp95), ms(bp50))))
	t.Add("Aurora (after)", fmtDur(ap50), fmtDur(ap95), fmtF(ratio(ms(ap95), ms(ap50))))
	return &Result{
		ID: "Figure 10", Title: "INSERT per-record latency P50 vs P95 across the migration",
		Table: t,
		Metrics: map[string]float64{
			"mysql_p95_ms":    ms(bp95),
			"aurora_p95_ms":   ms(ap95),
			"p95_improvement": ratio(ms(bp95), ms(ap95)),
		},
		Notes: []string{"paper: P95 latencies improved dramatically and approximated the P50s"},
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
