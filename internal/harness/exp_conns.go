package harness

import (
	"fmt"
	"time"

	"aurora/internal/disk"
	"aurora/internal/workload"
)

// Table3 reproduces §6.1.3 Table 3: SysBench OLTP writes/sec as the number
// of client connections grows 100x. The paper's 50/500/5000 connections
// scale here by s.Clients; the shape to preserve is that Aurora's
// throughput keeps rising with connections (commits are asynchronous, the
// storage fleet absorbs the parallelism) while MySQL peaks at the middle
// count and then falls: its connections hold row locks across the
// serialized group-commit flush chain, so added concurrency turns into
// lock waits and timeouts rather than work.
func Table3(s Scale) *Result {
	conns := []int{s.Clients / 4, s.Clients, s.Clients * 10}
	mix := workload.SysbenchOLTP(s.Rows)

	t := &Table{Header: []string{"Connections", "Aurora writes/sec", "MySQL writes/sec"}}
	aRates := make([]float64, len(conns))
	mRates := make([]float64, len(conns))
	for i, c := range conns {
		au, err := NewAurora(AuroraConfig{PGs: 4, CachePages: 4096, Net: benchNet(31 + int64(i)), Disk: disk.FastLocal()})
		if err != nil {
			panic(err)
		}
		if err := workload.Load(au.WL(), s.Rows, 100); err != nil {
			panic(err)
		}
		ares := workload.Run(au.WL(), mix, workload.Options{Clients: c, Duration: s.Duration, Seed: 31})
		aRates[i] = ares.WritesPerSec(mix)
		au.Close()

		ms, err := NewMySQL(MySQLConfig{CachePages: 4096, Net: benchNet(131 + int64(i)), Disk: disk.FastLocal()})
		if err != nil {
			panic(err)
		}
		if err := workload.Load(ms.WL(), s.Rows, 100); err != nil {
			panic(err)
		}
		// The baseline is thread-per-connection: past ~2x the base client
		// count, every extra connection pays a quadratic scheduler toll
		// (§6.1.3's collapse). Aurora's engine runs the same workload
		// without the wrapper: commits leave the thread immediately and the
		// storage fleet absorbs the parallelism.
		mwl := workload.ThreadThrash(ms.WL(), s.Clients*2, 30*time.Nanosecond)
		mres := workload.Run(mwl, mix, workload.Options{Clients: c, Duration: s.Duration, Seed: 31, MaxRetries: 1})
		mRates[i] = mres.WritesPerSec(mix)
		ms.Close()

		t.Add(fmt.Sprintf("%d", c), fmt.Sprintf("%.0f", aRates[i]), fmt.Sprintf("%.0f", mRates[i]))
	}

	last := len(conns) - 1
	return &Result{
		ID: "Table 3", Title: "SysBench OLTP writes/sec vs connections",
		Table: t,
		Metrics: map[string]float64{
			"aurora_growth":                ratio(aRates[last], aRates[0]),
			"mysql_tail_vs_peak":           ratio(mRates[last], maxF(mRates)),
			"aurora_vs_mysql_at_max_conns": ratio(aRates[last], mRates[last]),
		},
		Notes: []string{
			"paper: Aurora 40k→110k rising; MySQL peaks at 500 conns (21k) then drops to 13k at 5000",
		},
	}
}

func maxF(vs []float64) float64 {
	m := 0.0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}
