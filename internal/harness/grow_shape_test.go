package harness_test

import (
	"testing"

	"aurora/internal/harness"
)

func TestGrowShape(t *testing.T) {
	r := harness.GrowExperiment(harness.Quick())
	m := r.Metrics
	if m["errors"] != 0 || m["write_failures"] != 0 {
		t.Fatalf("workload errors during growth: %+v", m)
	}
	if m["stripes_moved"] == 0 || m["pages_copied"] == 0 {
		t.Fatalf("no rebalance happened: %+v", m)
	}
	if m["new_pg_reads"] == 0 {
		t.Fatalf("appended PGs served no reads: %+v", m)
	}
	if m["during_ratio"] < 0.2 {
		t.Fatalf("throughput collapsed during growth: %+v", m)
	}
}
