package harness

import (
	"fmt"
	"sync"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/volume"
	"aurora/internal/workload"
)

// GrowExperiment measures §3's claim that Aurora volumes grow by appending
// protection groups without interrupting the workload. One Aurora stack
// starts on 2 PGs; the same OLTP mix runs in three equal windows — before
// the growth, with GrowVolume-equivalent rebalancing racing the middle
// window, and after cutover on the doubled fleet. Growth must complete with
// zero workload errors, and the appended PGs must serve reads afterwards.
func GrowExperiment(s Scale) *Result {
	// A cache smaller than the working set so the read path reaches the
	// storage fleet and the post-grow window exercises the new PGs.
	cache := s.Rows / 30
	if cache < 32 {
		cache = 32
	}
	au, err := NewAurora(AuroraConfig{Name: "grow", PGs: 2, CachePages: cache, Net: benchNet(31), Disk: disk.FastLocal()})
	if err != nil {
		panic(err)
	}
	defer au.Close()
	if err := workload.Load(au.WL(), s.Rows, 100); err != nil {
		panic(err)
	}
	mix := workload.SysbenchOLTP(s.Rows)
	run := func(seed int64) workload.Result {
		return workload.Run(au.WL(), mix, workload.Options{Clients: s.Clients / 2, Duration: s.Duration, Seed: seed})
	}

	before := run(311)

	// Growth races the middle window: kick the rebalance off a quarter of
	// the way in so cutovers land under load.
	var (
		grep *volume.GrowthReport
		gerr error
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(s.Duration / 4)
		grep, gerr = au.Vol.Grow(2)
	}()
	during := run(312)
	wg.Wait()
	if gerr != nil {
		panic(gerr)
	}

	after := run(313)
	newReads := func() uint64 {
		var total uint64
		for pg := 2; pg < au.Fleet.PGs(); pg++ {
			for _, n := range au.Fleet.Replicas(core.PGID(pg)) {
				total += n.Reads()
			}
		}
		return total
	}()

	vs := au.Vol.Stats()
	t := &Table{Header: []string{"Phase", "PGs", "TPS", "Txn P95", "Errors"}}
	t.Add("before growth", "2", fmtF(before.TPS()), fmtDur(before.Latency.Percentile(95)), fmt.Sprintf("%d", before.Errors))
	t.Add("during growth", "2→4", fmtF(during.TPS()), fmtDur(during.Latency.Percentile(95)), fmt.Sprintf("%d", during.Errors))
	t.Add("after growth", "4", fmtF(after.TPS()), fmtDur(after.Latency.Percentile(95)), fmt.Sprintf("%d", after.Errors))
	return &Result{
		ID: "Grow", Title: "Live volume growth: PG append + stripe rebalance under load (§3)",
		Table: t,
		Metrics: map[string]float64{
			"before_tps":       before.TPS(),
			"during_tps":       during.TPS(),
			"after_tps":        after.TPS(),
			"during_ratio":     ratio(during.TPS(), before.TPS()),
			"errors":           float64(before.Errors + during.Errors + after.Errors),
			"write_failures":   float64(vs.WriteFailures),
			"stripes_moved":    float64(grep.StripesMoved),
			"pages_copied":     float64(grep.PagesCopied),
			"geometry_epoch":   float64(vs.GeometryEpoch),
			"new_pg_reads":     float64(newReads),
			"rebalance_ms":     ms(grep.Duration),
			"geometry_retries": float64(vs.GeomRetries),
		},
		Notes: []string{
			fmt.Sprintf("rebalance moved %d stripes (%d pages) in %s; geometry epoch %d→%d",
				grep.StripesMoved, grep.PagesCopied, grep.Duration.Round(time.Microsecond), grep.FromEpoch, grep.ToEpoch),
			"paper §3: volumes grow by appending PGs while the database keeps serving",
		},
	}
}
