package harness

import (
	"fmt"

	"aurora/internal/disk"
	"aurora/internal/workload"
)

// Table1 reproduces Table 1 (§3.2): write IOs per transaction for the
// SysBench write-only workload, mirrored MySQL vs Aurora. The paper
// measured 780k txns at 7.4 IOs/txn for mirrored MySQL against 27.4M txns
// at 0.95 IOs/txn for Aurora over 30 minutes.
//
// Accounting follows the paper's: a logical write issued by the database
// instance counts once, regardless of replication fan-out — the paper's
// Aurora number is below 1.0 precisely because one batched log write
// carries several transactions, "despite amplifying writes six times".
// For mirrored MySQL the instance issues a redo-log write, a binlog write,
// and (eventually) a data-page plus double-write for each dirtied page,
// each synchronously chained through EBS and the standby.
func Table1(s Scale) *Result {
	mix := workload.SysbenchWriteOnly(s.Rows)
	opts := workload.Options{Clients: s.Clients, Duration: s.Duration, Seed: 11}

	// Mirrored MySQL (Figure 2 configuration). The paper's setup predates
	// binary-log group commit: every transaction flushes its own chain.
	ms, err := NewMySQL(MySQLConfig{
		Mirrored: true, CachePages: 4096, Net: benchNet(11), Disk: disk.FastLocal(),
		GroupMax: 1, Checkpoint: 64,
	})
	if err != nil {
		panic(err)
	}
	defer ms.Close()
	if err := workload.Load(ms.WL(), s.Rows, 100); err != nil {
		panic(err)
	}
	base := ms.DB.Stats()
	mres := workload.Run(ms.WL(), mix, opts)
	st := ms.DB.Stats()
	// Logical write IOs issued by the engine during the run: WAL flushes,
	// binlog writes (one per flush), page flushes (incl. double-writes)
	// and checkpoint markers.
	mWrites := float64((st.WALFlushes-base.WALFlushes)*2 +
		(st.PagesFlushed - base.PagesFlushed) +
		(st.Checkpoints - base.Checkpoints))
	mIOs := ratio(mWrites, float64(mres.Transactions))

	// Aurora: the instance's only writes are batched redo-log deliveries;
	// one logical IO fans out to the six segment replicas.
	au, err := NewAurora(AuroraConfig{PGs: 4, CachePages: 4096, Net: benchNet(12), Disk: disk.FastLocal()})
	if err != nil {
		panic(err)
	}
	defer au.Close()
	if err := workload.Load(au.WL(), s.Rows, 100); err != nil {
		panic(err)
	}
	au.Net.ResetStats()
	ares := workload.Run(au.WL(), mix, opts)
	aSent, _, _, _, _ := au.Net.NodeStats(au.WriterNode())
	aIOs := ratio(float64(aSent)/6, float64(ares.Transactions))

	t := &Table{Header: []string{"Configuration", "Transactions", "IOs/Transaction"}}
	t.Add("Mirrored MySQL", fmt.Sprintf("%d", mres.Transactions), fmtF(mIOs))
	t.Add("Aurora with Replicas", fmt.Sprintf("%d", ares.Transactions), fmtF(aIOs))

	return &Result{
		ID:    "Table 1",
		Title: "Network IOs for Aurora vs MySQL (SysBench write-only)",
		Table: t,
		Metrics: map[string]float64{
			"mysql_txns":         float64(mres.Transactions),
			"aurora_txns":        float64(ares.Transactions),
			"mysql_ios_per_txn":  mIOs,
			"aurora_ios_per_txn": aIOs,
			"txn_ratio":          ratio(float64(ares.Transactions), float64(mres.Transactions)),
			"io_ratio":           ratio(mIOs, aIOs),
		},
		Notes: []string{
			"paper: 780,000 txns @ 7.4 IOs/txn (mirrored MySQL) vs 27,378,000 @ 0.95 (Aurora)",
			"one logical IO may fan out (6 segment copies / EBS mirror chains); fan-out is not recounted",
		},
	}
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
