package harness

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/netsim"
	"aurora/internal/volume"
	"aurora/internal/workload"
	"aurora/internal/zdp"
)

// Figure12 reproduces §7.4 Figure 12: Zero-Downtime Patching. Client
// sessions run live traffic through the proxy while the engine is patched
// underneath; the patch waits for a transaction-free instant, spools
// session state, swaps the engine, reloads and resumes. The shape to
// preserve: every session survives, no statement fails, and the pause is
// a small bounded blip rather than a 30-second downtime.
func Figure12(s Scale) *Result {
	au, err := NewAurora(AuroraConfig{PGs: 4, CachePages: 2048, Net: benchNet(121), Disk: disk.FastLocal()})
	if err != nil {
		panic(err)
	}
	defer au.Close()
	if err := workload.Load(au.WL(), s.Rows, 100); err != nil {
		panic(err)
	}
	proxy := zdp.NewProxy(au.DB)

	const sessions = 8
	var stmts, errs atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := proxy.Connect()
			proxy.SetVar(id, "app", fmt.Sprintf("conn-%d", i)) //nolint:errcheck
			rng := newRand(int64(121 + i))
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := proxy.Exec(id, func(db *engine.DB) error {
					return db.Put(workload.Key(rng.Intn(s.Rows)), []byte("zdp"))
				})
				if err != nil {
					errs.Add(1)
					return
				}
				stmts.Add(1)
			}
		}(i)
	}

	// Let traffic build, patch mid-flight, keep running, then stop.
	time.Sleep(s.Duration / 3)
	gen := 0
	rep, err := proxy.Patch(func(old *engine.DB) (*engine.DB, error) {
		old.Crash()
		gen++
		db, _, err := engine.Recover(context.Background(), au.Fleet, volume.ClientConfig{
			WriterNode: netsim.NodeID(fmt.Sprintf("au-writer-g%d", gen)), WriterAZ: 0,
		}, engine.Config{CachePages: 2048})
		return db, err
	}, 10*time.Second)
	if err != nil {
		panic(err)
	}
	time.Sleep(s.Duration / 3)
	close(stop)
	wg.Wait()
	proxy.DB().Close()

	t := &Table{Header: []string{"Metric", "Value"}}
	t.Add("sessions at patch time", fmt.Sprintf("%d", rep.Sessions))
	t.Add("statements executed", fmt.Sprintf("%d", stmts.Load()))
	t.Add("statements failed", fmt.Sprintf("%d", errs.Load()))
	t.Add("engine pause", fmtDur(rep.PauseLatency))
	t.Add("spooled session state", fmt.Sprintf("%d bytes", rep.SpoolBytes))

	return &Result{
		ID: "Figure 12", Title: "Zero-Downtime Patching under live connections",
		Table: t,
		Metrics: map[string]float64{
			"sessions":     float64(rep.Sessions),
			"failed_stmts": float64(errs.Load()),
			"pause_ms":     ms(rep.PauseLatency),
			"stmts":        float64(stmts.Load()),
		},
		Notes: []string{
			"paper: user sessions remain active and oblivious while the engine is patched",
		},
	}
}
