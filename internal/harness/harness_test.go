package harness

import (
	"io"
	"testing"
)

// The harness tests assert the *shape* of each reproduced result — who
// wins, in which direction, by at least a conservative factor — at quick
// scale. The recorded full-scale numbers live in EXPERIMENTS.md.

func metrics(t *testing.T, r *Result) map[string]float64 {
	t.Helper()
	r.Print(io.Discard)
	if len(r.Table.Rows) == 0 {
		t.Fatalf("%s produced no rows", r.ID)
	}
	return r.Metrics
}

func TestTable1Shape(t *testing.T) {
	m := metrics(t, Table1(Quick()))
	if m["aurora_txns"] <= m["mysql_txns"] {
		t.Fatalf("Aurora txns %v must exceed MySQL %v", m["aurora_txns"], m["mysql_txns"])
	}
	if m["txn_ratio"] < 3 {
		t.Fatalf("txn ratio %v, want >= 3 (paper: 35x)", m["txn_ratio"])
	}
	if m["aurora_ios_per_txn"] >= m["mysql_ios_per_txn"] {
		t.Fatalf("Aurora IOs/txn %v must be below MySQL %v", m["aurora_ios_per_txn"], m["mysql_ios_per_txn"])
	}
	if m["aurora_ios_per_txn"] >= 2 {
		t.Fatalf("Aurora IOs/txn %v, want < 2 (paper: 0.95)", m["aurora_ios_per_txn"])
	}
}

func TestFigure6Shape(t *testing.T) {
	m := metrics(t, Figure6(Quick()))
	if m["aurora_scaling_factor"] < 5 {
		t.Fatalf("Aurora read scaling %v across 16x vCPUs, want >= 5", m["aurora_scaling_factor"])
	}
	if m["aurora_vs_mysql_top"] < 1.3 {
		t.Fatalf("Aurora/MySQL at top size %v, want >= 1.3 (paper: 5x)", m["aurora_vs_mysql_top"])
	}
}

func TestFigure7Shape(t *testing.T) {
	m := metrics(t, Figure7(Quick()))
	if m["aurora_scaling_factor"] < 3 {
		t.Fatalf("Aurora write scaling %v across 16x vCPUs, want >= 3", m["aurora_scaling_factor"])
	}
	if m["aurora_vs_mysql_top"] < 1.2 {
		t.Fatalf("Aurora/MySQL at top size %v, want >= 1.2 (paper: 5x)", m["aurora_vs_mysql_top"])
	}
}

func TestTable2Shape(t *testing.T) {
	m := metrics(t, Table2(Quick()))
	if m["mysql_degradation"] <= m["aurora_degradation"] {
		t.Fatalf("MySQL degradation %v must exceed Aurora %v (out-of-cache collapse)",
			m["mysql_degradation"], m["aurora_degradation"])
	}
	if m["advantage_at_max"] < 2 {
		t.Fatalf("Aurora advantage at max size %v, want >= 2 (paper: 34x)", m["advantage_at_max"])
	}
}

func TestTable3Shape(t *testing.T) {
	m := metrics(t, Table3(Quick()))
	if m["aurora_growth"] < 1.5 {
		t.Fatalf("Aurora writes/sec must grow with connections, got %v", m["aurora_growth"])
	}
	if m["mysql_tail_vs_peak"] > 0.85 {
		t.Fatalf("MySQL at max connections %v of its peak, want <= 0.85 (the §6.1.3 collapse)",
			m["mysql_tail_vs_peak"])
	}
	if m["aurora_vs_mysql_at_max_conns"] < 2 {
		t.Fatalf("Aurora/MySQL at max conns %v, want >= 2 (paper: ~8.5x)",
			m["aurora_vs_mysql_at_max_conns"])
	}
}

func TestTable4Shape(t *testing.T) {
	m := metrics(t, Table4(Quick()))
	if m["lag_ratio_at_max"] < 3 {
		t.Fatalf("MySQL/Aurora lag at max rate %v, want >= 3 (paper: orders of magnitude)",
			m["lag_ratio_at_max"])
	}
	if m["aurora_lag_ms_at_1000"] > 500 {
		t.Fatalf("Aurora lag %vms at the top rate, want bounded in ms", m["aurora_lag_ms_at_1000"])
	}
}

func TestTable5Shape(t *testing.T) {
	m := metrics(t, Table5(Quick()))
	if m["max_ratio"] < 1.5 {
		t.Fatalf("best-case Aurora/MySQL tpmC %v, want >= 1.5 (paper: up to 16.3x)", m["max_ratio"])
	}
	// High-contention quick runs are noisy cell by cell; the worst cell
	// must not collapse and the grid mean must clearly favour Aurora.
	if m["min_ratio"] < 0.6 {
		t.Fatalf("worst-case Aurora/MySQL tpmC %v, want >= 0.6 (paper: >= 2.3x)", m["min_ratio"])
	}
	if m["mean_ratio"] < 1.3 {
		t.Fatalf("mean Aurora/MySQL tpmC %v across the grid, want >= 1.3", m["mean_ratio"])
	}
}

func TestFigure8Shape(t *testing.T) {
	m := metrics(t, Figure8(Quick()))
	if m["improvement"] < 1.5 {
		t.Fatalf("response-time improvement %v, want >= 1.5 (paper: 3x)", m["improvement"])
	}
}

func TestFigure9Shape(t *testing.T) {
	m := metrics(t, Figure9(Quick()))
	if m["p95_improvement"] < 1.3 {
		t.Fatalf("SELECT P95 improvement %v, want >= 1.3", m["p95_improvement"])
	}
	if m["aurora_p95_over_p50"] >= m["mysql_p95_over_p50"]*1.2 {
		t.Fatalf("Aurora tail ratio %v should not exceed MySQL's %v (P95 collapses toward P50)",
			m["aurora_p95_over_p50"], m["mysql_p95_over_p50"])
	}
}

func TestFigure10Shape(t *testing.T) {
	m := metrics(t, Figure10(Quick()))
	if m["p95_improvement"] < 2 {
		t.Fatalf("INSERT P95 improvement %v, want >= 2 (paper: dramatic)", m["p95_improvement"])
	}
}

func TestFigure11Shape(t *testing.T) {
	m := metrics(t, Figure11(Quick()))
	if m["max_lag_ms"] > 1000 {
		t.Fatalf("max replica lag %vms, want bounded (paper: < 20ms at scale)", m["max_lag_ms"])
	}
}

func TestFigure12Shape(t *testing.T) {
	m := metrics(t, Figure12(Quick()))
	if m["failed_stmts"] != 0 {
		t.Fatalf("%v statements failed across the patch, want 0", m["failed_stmts"])
	}
	if m["sessions"] != 8 {
		t.Fatalf("sessions preserved %v, want 8", m["sessions"])
	}
	if m["stmts"] == 0 {
		t.Fatal("no statements executed")
	}
}

func TestRecoveryShape(t *testing.T) {
	m := metrics(t, RecoveryExperiment(Quick()))
	if m["mysql_growth"] < 2 {
		t.Fatalf("MySQL recovery growth with backlog %v, want >= 2 (ARIES redo)", m["mysql_growth"])
	}
	if m["aurora_growth"] > m["mysql_growth"] {
		t.Fatalf("Aurora recovery growth %v must stay below MySQL's %v",
			m["aurora_growth"], m["mysql_growth"])
	}
	if m["aurora_ms_at_max"] > 10000 {
		t.Fatalf("Aurora recovery %vms, want well under the paper's 10s", m["aurora_ms_at_max"])
	}
}

func TestDurabilityShape(t *testing.T) {
	m := metrics(t, DurabilityExperiment(Quick()))
	if m["aurora_read_loss"] >= m["twothree_read_loss"] {
		t.Fatalf("4/6 read-quorum loss %v must be below 2/3's %v (§2.1)",
			m["aurora_read_loss"], m["twothree_read_loss"])
	}
	if m["mirrored_unavail"] <= m["aurora_unavail"] {
		t.Fatalf("4/4 write unavailability %v must exceed 4/6's %v (§3.1)",
			m["mirrored_unavail"], m["aurora_unavail"])
	}
	if m["aurora_fast_repair_read_loss"] > m["aurora_slow_repair_read_loss"] {
		t.Fatalf("fast segment repair %v must not raise loss probability over %v (§2.2)",
			m["aurora_fast_repair_read_loss"], m["aurora_slow_repair_read_loss"])
	}
}

func TestAblationShapes(t *testing.T) {
	m := metrics(t, AblationSyncCommit(Quick()))
	if m["speedup"] < 2 {
		t.Fatalf("async-commit speedup %v, want >= 2", m["speedup"])
	}
	m = metrics(t, AblationCoalesce(Quick()))
	if m["coalesced_tps"] <= m["uncoalesced_tps"] {
		t.Fatalf("coalescing tps %v must beat uncoalesced %v", m["coalesced_tps"], m["uncoalesced_tps"])
	}
	if m["coalesced_ios"] >= m["uncoalesced_ios"] {
		t.Fatalf("coalescing IOs/txn %v must be below uncoalesced %v", m["coalesced_ios"], m["uncoalesced_ios"])
	}
	m = metrics(t, AblationFullPages(Quick()))
	if m["amplification"] < 3 {
		t.Fatalf("full-page write amplification %v, want >= 3", m["amplification"])
	}
	m = metrics(t, AblationMaterialize(Quick()))
	if m["chain_after"] >= m["chain_before"] {
		t.Fatalf("materialization did not shorten the chain: %v -> %v", m["chain_before"], m["chain_after"])
	}
	if m["chain_before"] < 100 {
		t.Fatalf("hot page chain %v too short to be interesting", m["chain_before"])
	}
}

func TestLogSplitShape(t *testing.T) {
	m := metrics(t, LogSplitExperiment(Quick()))
	if m["sync_bytes_ratio"] > 0.7 {
		t.Fatalf("split sync bytes/commit %v of baseline, want <= 0.7 (3 log copies vs 6)",
			m["sync_bytes_ratio"])
	}
	if m["p50_ratio"] >= 1 {
		t.Fatalf("split commit p50 %vx baseline, want < 1 (acks free of page materialization)",
			m["p50_ratio"])
	}
	if m["p95_ratio"] >= 1 {
		t.Fatalf("split commit p95 %vx baseline, want < 1", m["p95_ratio"])
	}
	if m["writes_ratio"] < 1 {
		t.Fatalf("split writes/sec %vx baseline, want >= 1", m["writes_ratio"])
	}
	if m["split_feed_bytes"] <= 0 {
		t.Fatalf("page tier pulled no feed bytes; the async feed is not running")
	}
}

func TestTenantsShape(t *testing.T) {
	m := metrics(t, TenantsExperiment(Quick()))
	if m["scaling_4v1"] <= 1 {
		t.Fatalf("aggregate writes/sec at 4 tenants is %vx the 1-tenant run, want > 1 (shared hosts must scale)",
			m["scaling_4v1"])
	}
	if m["quiet_retention"] < 0.7 {
		t.Fatalf("quiet tenant kept %v of its solo fair-share throughput beside the flood, want >= 0.7",
			m["quiet_retention"])
	}
	if m["hot_throttles"] <= 0 {
		t.Fatalf("hot tenant was never throttled; the flood ran unshaped")
	}
}
