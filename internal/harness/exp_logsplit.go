package harness

import (
	"fmt"

	"aurora/internal/disk"
	"aurora/internal/quorum"
	"aurora/internal/workload"
)

// LogSplitExperiment measures the Taurus-style role split (PAPERS.md:
// Taurus's frugal replication) against the paper's 4/6 scheme at high
// concurrency: the same SysBench OLTP workload at 5x the base client count
// (160 connections at Full scale, Table 3's middle regime) runs once on the
// classic quorum and once with each PG re-roled into a 3-replica
// synchronous log tier plus an asynchronous page tier, both on the NVMe
// disk model (page-write amplification is invisible on zero-latency disks).
//
// What the split buys — and what this experiment asserts, not assumes:
//
//   - Fewer synchronous bytes per commit: the commit path ships redo to 3
//     log replicas instead of 6, so Stats.LogBytes/commit roughly halves.
//     The other half moves off the commit path into the background
//     log→page feed (Stats.PageFeedBytes).
//   - Lower commit latency: a log replica's ack path is append + fsync —
//     it never materializes pages, so foreground acks stop queueing behind
//     the coalescer's page writes. Classically all six replicas interleave
//     materialization with ingest and the 4/6 quorum regularly lands on a
//     replica mid-coalesce; the split moves that work to page replicas no
//     commit ever waits on, and p50/p95 drop accordingly.
func LogSplitExperiment(s Scale) *Result {
	conns := s.Clients * 5
	mix := workload.SysbenchOLTP(s.Rows)

	type run struct {
		name          string
		q             quorum.Config
		writesPerSec  float64
		p50ms, p95ms  float64
		syncPerCommit float64
		feedPerCommit float64
	}
	runs := []run{
		{name: "aurora-4/6", q: quorum.Config{}},
		{name: "logsplit-3+3", q: quorum.TaurusMix()},
	}

	for i := range runs {
		r := &runs[i]
		au, err := NewAurora(AuroraConfig{
			PGs: 4, CachePages: 4096, Net: benchNet(71 + int64(i)),
			Disk: disk.NVMe(), Quorum: r.q,
			// The page tier is fed by the background gossip pull; both
			// configurations run with background loops on so the comparison
			// differs only in the quorum scheme.
			Background: true,
		})
		if err != nil {
			panic(err)
		}
		if err := workload.Load(au.WL(), s.Rows, 100); err != nil {
			panic(err)
		}
		res := workload.Run(au.WL(), mix, workload.Options{Clients: conns, Duration: s.Duration, Seed: 71})
		es := au.DB.Stats()
		r.writesPerSec = res.WritesPerSec(mix)
		// Workload-side percentiles (exact reservoir samples): the engine's
		// lock-free commit histogram is only factor-of-two accurate, too
		// coarse to compare configurations.
		r.p50ms = ms(res.Latency.Percentile(50))
		r.p95ms = ms(res.Latency.Percentile(95))
		if es.Commits > 0 {
			r.syncPerCommit = float64(es.Volume.LogBytes) / float64(es.Commits)
			r.feedPerCommit = float64(es.Volume.PageFeedBytes) / float64(es.Commits)
		}
		au.Close()
	}

	t := &Table{Header: []string{"Config", "writes/sec", "commit p50", "commit p95", "sync B/commit", "feed B/commit"}}
	for _, r := range runs {
		t.Add(r.name,
			fmt.Sprintf("%.0f", r.writesPerSec),
			fmt.Sprintf("%.2fms", r.p50ms),
			fmt.Sprintf("%.2fms", r.p95ms),
			fmt.Sprintf("%.0f", r.syncPerCommit),
			fmt.Sprintf("%.0f", r.feedPerCommit))
	}

	base, split := runs[0], runs[1]
	return &Result{
		ID: "LogSplit", Title: fmt.Sprintf("Log/page role split vs 4/6 quorum, %d connections", conns),
		Table: t,
		Metrics: map[string]float64{
			"sync_bytes_ratio": ratio(split.syncPerCommit, base.syncPerCommit),
			"p50_ratio":        ratio(split.p50ms, base.p50ms),
			"p95_ratio":        ratio(split.p95ms, base.p95ms),
			"writes_ratio":     ratio(split.writesPerSec, base.writesPerSec),
			"split_feed_bytes": split.feedPerCommit,
		},
		Notes: []string{
			"split acks commits on 2/3 log replicas; page replicas pull redo asynchronously",
			"expect sync_bytes_ratio ~0.5 and p50/p95 ratios < 1 (log-tier acks never queue behind page materialization)",
		},
	}
}
