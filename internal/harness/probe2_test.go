package harness

import (
	"os"
	"strings"
	"testing"
)

// TestProbeSome prints selected experiments (PROBE_IDS=comma,list).
func TestProbeSome(t *testing.T) {
	ids := os.Getenv("PROBE_IDS")
	if ids == "" {
		t.Skip("set PROBE_IDS to run")
	}
	s := Quick()
	for _, id := range strings.Split(ids, ",") {
		res := Registry[id](s)
		res.Print(os.Stdout)
		for k, v := range res.Metrics {
			t.Logf("%s %s=%v", id, k, v)
		}
	}
}
