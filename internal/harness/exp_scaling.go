package harness

import (
	"aurora/internal/disk"
	"aurora/internal/workload"
)

// instanceSize models the r3 family sweep of §6.1.1: each size doubles the
// vCPUs and memory of the previous one. Concurrency and buffer cache scale
// with the instance.
type instanceSize struct {
	name    string
	vcpus   int
	clients int
	cache   int
}

func r3Sizes(base Scale) []instanceSize {
	mk := func(name string, vcpus int) instanceSize {
		return instanceSize{name: name, vcpus: vcpus, clients: vcpus * 2, cache: 512 * vcpus}
	}
	return []instanceSize{
		mk("r3.large", 2), mk("r3.xlarge", 4), mk("r3.2xlarge", 8),
		mk("r3.4xlarge", 16), mk("r3.8xlarge", 32),
	}
}

// stmtCapacity is the per-vCPU statement rate of the instance CPU model:
// the host machine running the simulation does not itself scale 16x across
// "instance sizes", so each engine is capped at its instance's capacity.
// Aurora's engine scales with every vCPU (the paper attributes this to
// removing contention points once the IO bottleneck fell away, §1); the
// 5.6-era baseline's useful parallelism saturates at 8 vCPUs.
const stmtCapacity = 4000

func auroraCap(size instanceSize) float64 { return float64(size.vcpus) * stmtCapacity }

func mysqlCap(size instanceSize) float64 {
	v := size.vcpus
	if v > 8 {
		v = 8
	}
	return float64(v) * stmtCapacity
}

// scalingRun measures statements/sec for one engine at one size.
func scalingRun(db workload.DB, mix workload.Mix, size instanceSize, s Scale, seed int64) float64 {
	res := workload.Run(db, mix, workload.Options{Clients: size.clients, Duration: s.Duration, Seed: seed})
	stmts := float64(mix.Writes + mix.PointReads)
	return res.TPS() * stmts
}

// Figure6 reproduces the read-only instance-size sweep (§6.1.1, Figure 6):
// Aurora's read throughput roughly doubles per size and ends a multiple of
// MySQL's at the top size.
func Figure6(s Scale) *Result {
	return scalingFigure(s, "Figure 6", "read-only throughput scales with instance size",
		workload.SysbenchReadOnly(s.Rows), "reads/sec", 61)
}

// Figure7 reproduces the write-only sweep (§6.1.1, Figure 7).
func Figure7(s Scale) *Result {
	return scalingFigure(s, "Figure 7", "write-only throughput scales with instance size",
		workload.SysbenchWriteOnly(s.Rows), "writes/sec", 71)
}

func scalingFigure(s Scale, id, title string, mix workload.Mix, unit string, seed int64) *Result {
	sizes := r3Sizes(s)
	t := &Table{Header: []string{"Instance", "Aurora " + unit, "MySQL " + unit, "Aurora/MySQL"}}
	var aFirst, aLast, mLast float64

	for i, size := range sizes {
		au, err := NewAurora(AuroraConfig{PGs: 4, CachePages: size.cache, Net: benchNet(seed + int64(i)), Disk: disk.FastLocal()})
		if err != nil {
			panic(err)
		}
		if err := workload.Load(au.WL(), s.Rows, 100); err != nil {
			panic(err)
		}
		aRate := scalingRun(workload.Limit(au.WL(), auroraCap(size)), mix, size, s, seed)
		au.Close()

		ms, err := NewMySQL(MySQLConfig{CachePages: size.cache, Net: benchNet(seed + 100 + int64(i)), Disk: disk.FastLocal()})
		if err != nil {
			panic(err)
		}
		if err := workload.Load(ms.WL(), s.Rows, 100); err != nil {
			panic(err)
		}
		mRate := scalingRun(workload.Limit(ms.WL(), mysqlCap(size)), mix, size, s, seed)
		ms.Close()

		t.Add(size.name, fmtF(aRate), fmtF(mRate), fmtF(ratio(aRate, mRate)))
		if i == 0 {
			aFirst = aRate
		}
		if i == len(sizes)-1 {
			aLast, mLast = aRate, mRate
		}
	}
	return &Result{
		ID: id, Title: title, Table: t,
		Metrics: map[string]float64{
			"aurora_scaling_factor": ratio(aLast, aFirst), // across 16x vCPUs
			"aurora_vs_mysql_top":   ratio(aLast, mLast),
		},
		Notes: []string{
			"paper: Aurora performance doubles per size; 5x MySQL at r3.8xlarge",
		},
	}
}
