// Package harness regenerates every table and figure from the paper's
// evaluation (§3.2 Table 1, §6.1 Figures 6–7 and Tables 2–5, §6.2 Figures
// 8–11, §7.4 Figure 12), plus the §4.3 recovery claim, the §2 durability
// model, and ablations of the design choices DESIGN.md calls out. Each
// experiment builds fresh Aurora and/or MySQL-baseline stacks on the
// simulated substrate, drives identical workloads against them, and prints
// rows shaped like the paper's. Absolute numbers differ (the substrate is
// a scaled-down simulator); the comparisons' shape is the reproduction
// target.
package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/mysql"
	"aurora/internal/netsim"
	"aurora/internal/objstore"
	"aurora/internal/quorum"
	"aurora/internal/volume"
	"aurora/internal/workload"
)

// Scale sizes an experiment run. Quick keeps the full test suite fast;
// Full is what cmd/aurora-bench uses for the recorded results.
type Scale struct {
	Duration time.Duration // measured window per configuration
	Rows     int           // base table rows
	Clients  int           // base concurrency
}

// Quick returns the CI-sized scale.
func Quick() Scale { return Scale{Duration: 250 * time.Millisecond, Rows: 1200, Clients: 16} }

// Full returns the scale used for recorded EXPERIMENTS.md results.
func Full() Scale { return Scale{Duration: 1500 * time.Millisecond, Rows: 6000, Clients: 32} }

// Result is one experiment's output: a printable table plus named scalar
// metrics the tests assert shape on.
type Result struct {
	ID      string
	Title   string
	Table   *Table
	Metrics map[string]float64
	Notes   []string
	// Raw is preformatted supplemental output (attribution tables,
	// rendered exemplar trace trees) printed verbatim after the table.
	Raw string `json:",omitempty"`
}

// Print renders the result.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s — %s ==\n", r.ID, r.Title)
	r.Table.Print(w)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	if r.Raw != "" {
		fmt.Fprintf(w, "\n%s", r.Raw)
	}
}

// Table is a simple aligned text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
}

// AuroraConfig configures an Aurora stack for one experiment.
type AuroraConfig struct {
	Name       string
	PGs        int
	CachePages int
	Net        netsim.Config
	Disk       disk.Config
	Engine     engine.Config
	NoCoalesce bool
	Background bool          // start storage-node background loops
	Quorum     quorum.Config // zero value selects quorum.Aurora()
}

// AuroraStack is a complete Aurora deployment for one experiment.
type AuroraStack struct {
	Net   *netsim.Network
	Fleet *volume.Fleet
	Vol   *volume.Client
	DB    *engine.DB
	Store *objstore.Store
}

// NewAurora builds the stack.
func NewAurora(cfg AuroraConfig) (*AuroraStack, error) {
	if cfg.Name == "" {
		cfg.Name = "au"
	}
	if cfg.PGs <= 0 {
		cfg.PGs = 4
	}
	net := netsim.New(cfg.Net)
	store := objstore.New()
	fleet, err := volume.NewFleet(volume.FleetConfig{
		Name: cfg.Name, Geometry: core.UniformGeometry(cfg.PGs), Net: net, Disk: cfg.Disk, Store: store,
		Quorum: cfg.Quorum,
	})
	if err != nil {
		return nil, err
	}
	ecfg := cfg.Engine
	ecfg.CachePages = cfg.CachePages
	vol := volume.Bootstrap(fleet, volume.ClientConfig{
		WriterNode: netsim.NodeID(cfg.Name + "-writer"), WriterAZ: 0, NoCoalesce: cfg.NoCoalesce,
	})
	db, err := engine.Create(vol, ecfg)
	if err != nil {
		vol.Close()
		return nil, err
	}
	if cfg.Background {
		fleet.Start()
	}
	return &AuroraStack{Net: net, Fleet: fleet, Vol: vol, DB: db, Store: store}, nil
}

// WriterNode returns the writer's network identity.
func (s *AuroraStack) WriterNode() netsim.NodeID { return netsim.NodeID("au-writer") }

// WL adapts the stack to the workload driver.
func (s *AuroraStack) WL() workload.DB {
	return workload.DBFunc(func() workload.Tx { return s.DB.Begin() })
}

// Close tears the stack down.
func (s *AuroraStack) Close() {
	s.DB.Close()
	s.Fleet.Stop()
}

// MySQLConfig configures a baseline stack.
type MySQLConfig struct {
	Mirrored    bool
	CachePages  int
	Net         netsim.Config
	Disk        disk.Config
	Checkpoint  int
	GroupMax    int
	LockTimeout time.Duration
}

// MySQLStack is a baseline deployment.
type MySQLStack struct {
	Net *netsim.Network
	DB  *mysql.DB
}

// NewMySQL builds the baseline stack.
func NewMySQL(cfg MySQLConfig) (*MySQLStack, error) {
	net := netsim.New(cfg.Net)
	db, err := mysql.New(mysql.Config{
		Instance: "mysql", AZ: 0, Mirrored: cfg.Mirrored, StandbyAZ: 1,
		Net: net, Disk: cfg.Disk, CachePages: cfg.CachePages,
		CheckpointDirtyPages: cfg.Checkpoint, GroupCommitMax: cfg.GroupMax,
		LockTimeout: cfg.LockTimeout,
	})
	if err != nil {
		return nil, err
	}
	return &MySQLStack{Net: net, DB: db}, nil
}

// WL adapts the stack to the workload driver.
func (s *MySQLStack) WL() workload.DB {
	return workload.DBFunc(func() workload.Tx { return s.DB.Begin() })
}

// Close tears the stack down.
func (s *MySQLStack) Close() { s.DB.Close() }

// benchNet returns the standard scaled-down datacenter network for
// experiments (deterministic seed per experiment id).
func benchNet(seed int64) netsim.Config {
	cfg := netsim.Datacenter()
	cfg.Seed = seed
	return cfg
}

// fmtF renders a float with sensible precision.
func fmtF(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// fmtDur renders a duration in ms with two decimals.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

// Registry maps experiment ids to runners (used by cmd/aurora-bench).
var Registry = map[string]func(Scale) *Result{
	"table1":               Table1,
	"fig6":                 Figure6,
	"fig7":                 Figure7,
	"table2":               Table2,
	"table3":               Table3,
	"table4":               Table4,
	"table5":               Table5,
	"fig8":                 Figure8,
	"fig9":                 Figure9,
	"fig10":                Figure10,
	"fig11":                Figure11,
	"fig12":                Figure12,
	"recovery":             RecoveryExperiment,
	"durability":           DurabilityExperiment,
	"ablation-sync-commit": AblationSyncCommit,
	"ablation-coalesce":    AblationCoalesce,
	"ablation-full-pages":  AblationFullPages,
	"ablation-materialize": AblationMaterialize,
	"latency":              LatencyAttribution,
	"grow":                 GrowExperiment,
	"logsplit":             LogSplitExperiment,
	"tenants":              TenantsExperiment,
	"autotune":             AutotuneExperiment,
}

// Order is the canonical experiment order for "run everything".
var Order = []string{
	"table1", "fig6", "fig7", "table2", "table3", "table4", "table5",
	"fig8", "fig9", "fig10", "fig11", "fig12", "recovery", "durability",
	"ablation-sync-commit", "ablation-coalesce", "ablation-full-pages",
	"ablation-materialize", "latency", "grow", "logsplit", "tenants",
	"autotune",
}
