package harness

import (
	"os"
	"testing"
)

// TestProbeAll prints all experiments at quick scale (manual inspection;
// run with -run TestProbeAll -v). Shape assertions live in harness_test.go.
func TestProbeAll(t *testing.T) {
	if os.Getenv("PROBE") == "" {
		t.Skip("set PROBE=1 to run")
	}
	s := Quick()
	for _, id := range Order {
		res := Registry[id](s)
		res.Print(os.Stdout)
		for k, v := range res.Metrics {
			t.Logf("%s %s=%v", id, k, v)
		}
	}
}
