package harness_test

import (
	"testing"

	"aurora/internal/harness"
)

// TestAutotuneShape runs the static-vs-adaptive experiment at CI scale and
// asserts the controller's liveness and safety properties. The headline
// quantitative claim (queue-share reduction at no throughput cost) is a
// Full-scale property recorded in EXPERIMENTS.md; at Quick scale the run is
// too short for tight ratios, so the shape assertions are: the workload
// stays clean, the controller actually runs and moves knobs under 5x
// connection pressure, the static stack's knobs never move, and adaptive
// throughput is in the same ballpark as static (steering must never
// collapse the pipeline).
func TestAutotuneShape(t *testing.T) {
	r := harness.AutotuneExperiment(harness.Quick())
	m := r.Metrics
	if m["errors"] != 0 {
		t.Fatalf("workload errors: %+v", m)
	}
	if m["autotune_steps"] == 0 {
		t.Fatalf("controller never stepped: %+v", m)
	}
	if m["static_adjusts"] != 0 {
		t.Fatalf("static stack's knobs moved: %+v", m)
	}
	if m["static_commits_traced"] == 0 || m["adaptive_commits_traced"] == 0 {
		t.Fatalf("no commits traced, queue shares are meaningless: %+v", m)
	}
	if m["throughput_ratio"] < 0.5 {
		t.Fatalf("adaptive mode collapsed throughput: %+v", m)
	}
}
