package harness

import (
	"fmt"
	"strings"
	"time"

	"aurora/internal/control"
	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/workload"
)

// AutotuneExperiment measures the adaptive control plane: the same
// write-heavy workload at 5x the base connection count runs once with every
// latency knob pinned at its static default and once with AutoTune steering
// them from windowed per-stage measurements. At this concurrency the static
// inflight-group budget saturates, so commits pile up in commit.queue — the
// controller's job is to notice that queueing dominates framing+shipping
// and widen the batching knobs until the queue share falls, without giving
// back throughput.
//
// The shape to reproduce: adaptive mode cuts commit.queue's share of the
// commit critical path versus static at equal load, with writes/sec no
// worse than a whisker below static, and the knob trajectory (visible here
// and in Stats/aurora-bench -json) shows the controller actually moved —
// the gain comes from steering, not from a different static default.
func AutotuneExperiment(s Scale) *Result {
	conns := s.Clients * 5
	mix := workload.SysbenchWriteOnly(s.Rows)

	type mode struct {
		name       string
		cfg        engine.Config
		rate       float64
		errors     uint64
		p50, p95   time.Duration
		queueShare float64
		traced     int
		steps      uint64
		adjusts    uint64
		knobs      []control.KnobState
	}
	modes := []*mode{
		{name: "static", cfg: engine.Config{TraceEvery: 4, TraceRing: 1024}},
		{name: "adaptive", cfg: engine.Config{
			TraceEvery: 4, TraceRing: 1024,
			AutoTune: true, AutoTuneInterval: 25 * time.Millisecond,
		}},
	}

	var raw strings.Builder
	for i, m := range modes {
		au, err := NewAurora(AuroraConfig{
			PGs: 4, CachePages: 4096,
			Net:    benchNet(151 + int64(i)),
			Disk:   disk.NVMe(),
			Engine: m.cfg,
		})
		if err != nil {
			panic(err)
		}
		if err := workload.Load(au.WL(), s.Rows, 100); err != nil {
			panic(err)
		}

		// Sample the knob panel while the workload runs so the trajectory —
		// not just the endpoint — is on record for the adaptive mode.
		stop := make(chan struct{})
		done := make(chan struct{})
		var traj []string
		go func() {
			defer close(done)
			last := map[string]int64{}
			tick := time.NewTicker(s.Duration / 10)
			defer tick.Stop()
			start := time.Now()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					for _, k := range au.DB.Stats().Knobs {
						if last[k.Name] != k.Value {
							traj = append(traj, fmt.Sprintf("  %6s  %s: %d -> %d",
								time.Since(start).Round(time.Millisecond),
								k.Name, last[k.Name], k.Value))
							last[k.Name] = k.Value
						}
					}
				}
			}
		}()
		res := workload.Run(au.WL(), mix, workload.Options{
			Clients: conns, Duration: s.Duration, Seed: 151,
		})
		close(stop)
		<-done

		shares, _, _, n := commitPathShares(au.DB.Tracer())
		es := au.DB.Stats()
		m.rate = res.WritesPerSec(mix)
		m.errors = res.Errors
		m.p50 = es.Pipeline.CommitP50
		m.p95 = es.Pipeline.CommitP95
		m.queueShare = shares["commit.queue"]
		m.traced = n
		m.steps = es.AutoTuneSteps
		m.adjusts = es.AutoTuneAdjusts
		m.knobs = es.Knobs
		au.Close()

		if m.name == "adaptive" {
			fmt.Fprintf(&raw, "knob trajectory (adaptive, %d conns):\n", conns)
			if len(traj) == 0 {
				raw.WriteString("  (no knob movement recorded)\n")
			}
			for _, line := range traj {
				raw.WriteString(line + "\n")
			}
		}
	}

	st, ad := modes[0], modes[1]
	t := &Table{Header: []string{"Mode", "writes/sec", "commit p50", "commit p95", "commit.queue share", "knob adjusts"}}
	for _, m := range modes {
		t.Add(m.name, fmt.Sprintf("%.0f", m.rate), fmtDur(m.p50), fmtDur(m.p95),
			fmt.Sprintf("%.1f%%", m.queueShare), fmt.Sprintf("%d", m.adjusts))
	}
	knobRow := func(name string) {
		var sv, av int64
		for _, k := range st.knobs {
			if k.Name == name {
				sv = k.Value
			}
		}
		for _, k := range ad.knobs {
			if k.Name == name {
				av = k.Value
			}
		}
		t.Add("knob "+name, fmt.Sprintf("%d", sv), "", "", fmt.Sprintf("-> %d", av), "")
	}
	knobRow(control.KnobCommitGroup)
	knobRow(control.KnobInflightGroups)
	knobRow(control.KnobHedgeMultPct)
	knobRow(control.KnobBackoffCapUS)

	return &Result{
		ID: "Autotune", Title: "static knobs vs adaptive control plane at 5x connections",
		Table: t,
		Metrics: map[string]float64{
			"conns":                   float64(conns),
			"static_writes_sec":       st.rate,
			"adaptive_writes_sec":     ad.rate,
			"throughput_ratio":        ratio(ad.rate, st.rate),
			"static_queue_share":      st.queueShare,
			"adaptive_queue_share":    ad.queueShare,
			"static_commits_traced":   float64(st.traced),
			"adaptive_commits_traced": float64(ad.traced),
			"autotune_steps":          float64(ad.steps),
			"autotune_adjusts":        float64(ad.adjusts),
			"static_adjusts":          float64(st.adjusts),
			"errors":                  float64(st.errors + ad.errors),
		},
		Notes: []string{
			"same workload, same substrate; only the control plane differs",
			"adaptive should cut commit.queue's critical-path share at equal-or-better writes/sec",
			"knob rows show static value -> controller-steered value at run end",
		},
		Raw: raw.String(),
	}
}
