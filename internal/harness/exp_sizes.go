package harness

import (
	"fmt"

	"aurora/internal/disk"
	"aurora/internal/workload"
)

// Table2 reproduces §6.1.2 Table 2: SysBench write-only throughput as the
// database grows past the buffer cache. The paper's DB sizes (1GB → 1TB
// against a 170GB cache) scale here to row counts against a fixed small
// cache; the shape to preserve is that MySQL collapses once the working
// set leaves the cache (every miss is a synchronous EBS read, often behind
// a dirty-page flush) while Aurora degrades far more gently (misses are
// single-segment quorum-free reads and there are no dirty-page writes).
func Table2(s Scale) *Result {
	// Sizes as multiples of the base row count; the cache is fixed to hold
	// roughly the smallest size.
	sizes := []struct {
		label string
		rows  int
	}{
		{"1 GB", s.Rows / 4},
		{"10 GB", s.Rows},
		{"100 GB", s.Rows * 4},
		{"1 TB", s.Rows * 10},
	}
	// ~30 rows fit per page; the cache comfortably holds the two smaller
	// databases (as the paper's 170GB cache held its 1GB and 10GB sets)
	// and progressively less of the larger ones.
	cache := s.Rows / 15
	if cache < 32 {
		cache = 32
	}

	t := &Table{Header: []string{"DB Size", "Aurora writes/sec", "MySQL writes/sec"}}
	var aFirst, aLast, mFirst, mLast float64
	for i, sz := range sizes {
		mix := workload.SysbenchWriteOnly(sz.rows)
		opts := workload.Options{Clients: s.Clients, Duration: s.Duration, Seed: 21}

		au, err := NewAurora(AuroraConfig{PGs: 4, CachePages: cache, Net: benchNet(21 + int64(i)), Disk: disk.FastLocal()})
		if err != nil {
			panic(err)
		}
		if err := workload.Load(au.WL(), sz.rows, 100); err != nil {
			panic(err)
		}
		ares := workload.Run(au.WL(), mix, opts)
		aRate := ares.WritesPerSec(mix)
		au.Close()

		ms, err := NewMySQL(MySQLConfig{CachePages: cache, Net: benchNet(121 + int64(i)), Disk: disk.FastLocal(), Checkpoint: 128})
		if err != nil {
			panic(err)
		}
		if err := workload.Load(ms.WL(), sz.rows, 100); err != nil {
			panic(err)
		}
		mres := workload.Run(ms.WL(), mix, opts)
		mRate := mres.WritesPerSec(mix)
		ms.Close()

		t.Add(sz.label, fmt.Sprintf("%.0f", aRate), fmt.Sprintf("%.0f", mRate))
		if i == 0 {
			aFirst, mFirst = aRate, mRate
		}
		if i == len(sizes)-1 {
			aLast, mLast = aRate, mRate
		}
	}
	return &Result{
		ID: "Table 2", Title: "SysBench write-only throughput vs database size (fixed cache)",
		Table: t,
		Metrics: map[string]float64{
			"aurora_degradation": ratio(aFirst, aLast),
			"mysql_degradation":  ratio(mFirst, mLast),
			"advantage_at_max":   ratio(aLast, mLast),
		},
		Notes: []string{
			"paper: Aurora 107k→41k (2.6x degradation), MySQL 8.4k→1.2k (7x), 34x advantage at 1TB",
		},
	}
}
