package harness

import (
	"fmt"
	"time"

	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/workload"
)

// Table5 reproduces §6.1.5 Table 5: throughput (tpmC-style, transactions
// per minute) on a TPC-C-like mix with hot-row contention, across a grid
// of connection counts and database sizes. Every transaction updates a hot
// warehouse/district counter; under MySQL the hot row's lock is held
// across the serialized synchronous flush, so contention collapses
// throughput, while Aurora's shorter, asynchronous commits keep the hot
// lock hot — the paper reports 2.3x–16.3x advantages.
func Table5(s Scale) *Result {
	grid := []struct {
		label      string
		clients    int
		rows       int
		warehouses int
	}{
		{"500/10GB/100", s.Clients, s.Rows, 10},
		{"5000/10GB/100", s.Clients * 4, s.Rows, 10},
		{"500/100GB/1000", s.Clients, s.Rows * 4, 40},
		{"5000/100GB/1000", s.Clients * 4, s.Rows * 4, 40},
	}
	t := &Table{Header: []string{"Conns/Size/WH", "Aurora tpmC", "MySQL tpmC", "Ratio"}}
	minRatio, maxRatio, sumRatio := 0.0, 0.0, 0.0

	for i, g := range grid {
		mix := workload.TPCCLike(g.rows, g.warehouses)

		au, err := NewAurora(AuroraConfig{
			PGs: 4, CachePages: 2048, Net: benchNet(51 + int64(i)), Disk: disk.FastLocal(),
			Engine: engine.Config{LockTimeout: 150 * time.Millisecond},
		})
		if err != nil {
			panic(err)
		}
		if err := workload.Load(au.WL(), g.rows, 100); err != nil {
			panic(err)
		}
		ares := workload.Run(au.WL(), mix, workload.Options{Clients: g.clients, Duration: s.Duration, Seed: 51, MaxRetries: 2})
		aTpm := ares.TPS() * 60
		au.Close()

		ms, err := NewMySQL(MySQLConfig{
			CachePages: 2048, Net: benchNet(151 + int64(i)), Disk: disk.FastLocal(),
			LockTimeout: 150 * time.Millisecond, Checkpoint: 96,
		})
		if err != nil {
			panic(err)
		}
		if err := workload.Load(ms.WL(), g.rows, 100); err != nil {
			panic(err)
		}
		mres := workload.Run(ms.WL(), mix, workload.Options{Clients: g.clients, Duration: s.Duration, Seed: 51, MaxRetries: 2})
		mTpm := mres.TPS() * 60
		ms.Close()

		r := ratio(aTpm, mTpm)
		sumRatio += r
		if minRatio == 0 || r < minRatio {
			minRatio = r
		}
		if r > maxRatio {
			maxRatio = r
		}
		t.Add(g.label, fmt.Sprintf("%.0f", aTpm), fmt.Sprintf("%.0f", mTpm), fmtF(r))
	}
	return &Result{
		ID: "Table 5", Title: "Percona TPC-C-variant throughput under hot-row contention",
		Table: t,
		Metrics: map[string]float64{
			"min_ratio":  minRatio,
			"max_ratio":  maxRatio,
			"mean_ratio": sumRatio / float64(len(grid)),
		},
		Notes: []string{
			"paper: Aurora sustains 2.3x–16.3x MySQL 5.7 across the grid",
		},
	}
}
