package harness

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"aurora/internal/disk"
	"aurora/internal/mysql"
	"aurora/internal/netsim"
	"aurora/internal/replica"
	"aurora/internal/workload"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// runPaced issues single-row timestamped writes at roughly the target rate
// for the window and returns how many committed.
func runPaced(db workload.DB, rows, ratePerSec int, dur time.Duration, seed int64) int {
	interval := time.Second / time.Duration(ratePerSec)
	rng := newRand(seed)
	n := 0
	next := time.Now()
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		next = next.Add(interval)
		tx := db.Begin()
		k := workload.Key(rng.Intn(rows))
		v := strconv.FormatInt(time.Now().UnixNano(), 10)
		if err := tx.Put(k, []byte(v)); err != nil {
			tx.Abort()
			continue
		}
		if tx.Commit() == nil {
			n++
		}
	}
	return n
}

// auroraReplicaLag measures visibility lag on an Aurora replica: a probe
// key is written with the commit wall-clock and the replica is polled
// until it sees that value.
func auroraReplicaLag(au *AuroraStack, r *replica.Replica, probes int) time.Duration {
	var worst time.Duration
	for i := 0; i < probes; i++ {
		want := fmt.Sprintf("probe-%d-%d", i, time.Now().UnixNano())
		if err := au.DB.Put([]byte("lag-probe"), []byte(want)); err != nil {
			continue
		}
		committed := time.Now()
		for {
			v, ok, err := r.Get([]byte("lag-probe"))
			if err == nil && ok && string(v) == want {
				break
			}
			if time.Since(committed) > 2*time.Second {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
		if lag := time.Since(committed); lag > worst {
			worst = lag
		}
	}
	return worst
}

// Table4 reproduces §6.1.4 Table 4: replica lag as the write rate grows.
// Aurora replicas consume the writer's redo stream and stay within
// milliseconds at every rate; the MySQL binlog replica's single-threaded
// apply falls behind once the primary's parallel rate exceeds its serial
// capacity, and lag explodes to orders of magnitude more.
func Table4(s Scale) *Result {
	rates := []int{100, 200, 500, 1000}
	t := &Table{Header: []string{"Writes/sec (target)", "Aurora lag", "MySQL lag"}}
	metrics := map[string]float64{}

	for i, rate := range rates {
		// Aurora: writer + one replica.
		au, err := NewAurora(AuroraConfig{PGs: 4, CachePages: 4096, Net: benchNet(41 + int64(i)), Disk: disk.FastLocal()})
		if err != nil {
			panic(err)
		}
		if err := workload.Load(au.WL(), s.Rows, 100); err != nil {
			panic(err)
		}
		rep := replica.Attach(au.DB, au.Fleet, replica.Config{Name: "lag-replica", AZ: 1})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			runPaced(au.WL(), s.Rows, rate, s.Duration, 41)
		}()
		wg.Wait()
		aLag := auroraReplicaLag(au, rep, 3)
		rep.Close()
		au.Close()

		// MySQL: primary + binlog replica.
		net := netsim.New(benchNet(141 + int64(i)))
		prim, err := mysql.New(mysql.Config{Instance: "prim", AZ: 0, Net: net, Disk: disk.FastLocal()})
		if err != nil {
			panic(err)
		}
		repl, err := mysql.New(mysql.Config{Instance: "repl", AZ: 1, Net: net, Disk: disk.FastLocal()})
		if err != nil {
			panic(err)
		}
		primWL := workload.DBFunc(func() workload.Tx { return prim.Begin() })
		if err := workload.Load(primWL, s.Rows, 100); err != nil {
			panic(err)
		}
		link := prim.AttachReplica(repl)
		// Drive the paced load from several clients so the primary can
		// exceed the replica's serial apply rate.
		var pw sync.WaitGroup
		perClient := rate / 4
		if perClient < 1 {
			perClient = 1
		}
		for c := 0; c < 4; c++ {
			pw.Add(1)
			go func(c int) {
				defer pw.Done()
				runPaced(primWL, s.Rows, perClient, s.Duration, int64(141+c))
			}(c)
		}
		pw.Wait()
		_, mLag, _ := link.Lag()
		link.Drain(5 * time.Second)
		link.Close()
		prim.Close()
		repl.Close()

		t.Add(fmt.Sprintf("%d", rate), fmtDur(aLag), fmtDur(mLag))
		metrics[fmt.Sprintf("aurora_lag_ms_at_%d", rate)] = float64(aLag.Microseconds()) / 1000
		metrics[fmt.Sprintf("mysql_lag_ms_at_%d", rate)] = float64(mLag.Microseconds()) / 1000
	}
	top := rates[len(rates)-1]
	metrics["lag_ratio_at_max"] = ratio(metrics[fmt.Sprintf("mysql_lag_ms_at_%d", top)],
		metrics[fmt.Sprintf("aurora_lag_ms_at_%d", top)])
	return &Result{
		ID: "Table 4", Title: "Replica lag for SysBench write-only",
		Table: t, Metrics: metrics,
		Notes: []string{
			"paper: Aurora 2.62→5.38ms as load grows 10x; MySQL <1s → 300s",
		},
	}
}

// Figure11 reproduces §6.2.3 Figure 11: the maximum replica lag across
// four Aurora replicas stays bounded in milliseconds under sustained write
// load (the paper's customer saw <20ms where MySQL spiked to 12 minutes).
func Figure11(s Scale) *Result {
	au, err := NewAurora(AuroraConfig{PGs: 4, CachePages: 4096, Net: benchNet(111), Disk: disk.FastLocal()})
	if err != nil {
		panic(err)
	}
	defer au.Close()
	if err := workload.Load(au.WL(), s.Rows, 100); err != nil {
		panic(err)
	}
	reps := make([]*replica.Replica, 4)
	for i := range reps {
		reps[i] = replica.Attach(au.DB, au.Fleet, replica.Config{
			Name: netsim.NodeID(fmt.Sprintf("fig11-r%d", i)), AZ: netsim.AZ(i % 3),
		})
		defer reps[i].Close()
	}
	// Sustained background write load.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := newRand(111)
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := workload.Key(rng.Intn(s.Rows))
			au.DB.Put(k, []byte("fig11")) //nolint:errcheck
		}
	}()
	// Sample max lag across all replicas.
	var worst time.Duration
	samples := 5
	t := &Table{Header: []string{"Sample", "Max lag across 4 replicas"}}
	for i := 0; i < samples; i++ {
		var sampleWorst time.Duration
		for _, r := range reps {
			if lag := auroraReplicaLag(au, r, 1); lag > sampleWorst {
				sampleWorst = lag
			}
		}
		if sampleWorst > worst {
			worst = sampleWorst
		}
		t.Add(fmt.Sprintf("%d", i+1), fmtDur(sampleWorst))
	}
	close(stop)
	wg.Wait()
	return &Result{
		ID: "Figure 11", Title: "Maximum replica lag across 4 Aurora replicas under load",
		Table: t,
		Metrics: map[string]float64{
			"max_lag_ms": float64(worst.Microseconds()) / 1000,
		},
		Notes: []string{"paper: maximum lag across 4 replicas never exceeded 20ms"},
	}
}
