// Package ebs simulates Amazon EBS-style networked block volumes, including
// the synchronous mirroring chain of Figure 2: a write issued by a database
// instance travels to the EBS server, then to an AZ-local EBS mirror, and is
// only acknowledged when both copies are durable. The package also provides
// the cross-AZ software-mirrored pair used by the mirrored-MySQL baseline,
// in which steps 1 (primary EBS+mirror), 3 (stage to standby instance) and
// 5 (standby EBS+mirror) are sequential and synchronous — the write
// amplification and latency chaining that §3.1 argues is untenable.
package ebs

import (
	"context"
	"fmt"
	"sync/atomic"

	"aurora/internal/disk"
	"aurora/internal/netsim"
)

// Volume is one EBS volume: a server node plus an AZ-local mirror node,
// both with simulated SSDs, attached to a single instance node.
type Volume struct {
	net      *netsim.Network
	instance netsim.NodeID
	server   netsim.NodeID
	mirror   netsim.NodeID
	ssd      *disk.SSD
	mirrSSD  *disk.SSD

	writes atomic.Uint64
	reads  atomic.Uint64
	bytes  atomic.Uint64
}

// NewVolume creates an EBS volume in az, attached to the given instance
// node (which must already be registered with the network). The volume
// registers two nodes: name-ebs and name-ebs-mirror.
func NewVolume(net *netsim.Network, name string, instance netsim.NodeID, az netsim.AZ, cfg disk.Config) *Volume {
	v := &Volume{
		net:      net,
		instance: instance,
		server:   netsim.NodeID(name + "-ebs"),
		mirror:   netsim.NodeID(name + "-ebs-mirror"),
		ssd:      disk.New(cfg),
		mirrSSD:  disk.New(cfg),
	}
	net.AddNode(v.server, az)
	net.AddNode(v.mirror, az)
	return v
}

// Write performs one synchronous block write of size bytes: instance →
// EBS server (disk write) → AZ-local mirror (disk write), acknowledged when
// both copies are durable (Figure 2 steps 1–2).
func (v *Volume) Write(ctx context.Context, size int) error {
	if err := v.net.Send(ctx, v.instance, v.server, size); err != nil {
		return fmt.Errorf("ebs %s: %w", v.server, err)
	}
	if err := v.ssd.Write(size); err != nil {
		return fmt.Errorf("ebs %s: %w", v.server, err)
	}
	if err := v.net.Send(ctx, v.server, v.mirror, size); err != nil {
		return fmt.Errorf("ebs %s mirror: %w", v.server, err)
	}
	if err := v.mirrSSD.Write(size); err != nil {
		return fmt.Errorf("ebs %s mirror: %w", v.server, err)
	}
	// Acknowledgement back to the instance.
	if err := v.net.Send(ctx, v.server, v.instance, ackSize); err != nil {
		return fmt.Errorf("ebs %s ack: %w", v.server, err)
	}
	v.writes.Add(1)
	v.bytes.Add(uint64(size))
	return nil
}

// Read performs one synchronous block read of size bytes from the EBS
// server.
func (v *Volume) Read(ctx context.Context, size int) error {
	if err := v.net.Send(ctx, v.instance, v.server, reqSize); err != nil {
		return fmt.Errorf("ebs %s read: %w", v.server, err)
	}
	if err := v.ssd.Read(size); err != nil {
		return fmt.Errorf("ebs %s read: %w", v.server, err)
	}
	if err := v.net.Send(ctx, v.server, v.instance, size); err != nil {
		return fmt.Errorf("ebs %s read: %w", v.server, err)
	}
	v.reads.Add(1)
	return nil
}

// Disk exposes the primary SSD for fault injection.
func (v *Volume) Disk() *disk.SSD { return v.ssd }

// Stats returns write count, read count and bytes written.
func (v *Volume) Stats() (writes, reads, bytes uint64) {
	return v.writes.Load(), v.reads.Load(), v.bytes.Load()
}

const (
	ackSize = 64 // bytes on the wire for an acknowledgement
	reqSize = 64 // bytes on the wire for a read request
)

// Mirrored is the active-standby, cross-AZ software-mirrored configuration
// of Figure 2: a primary instance with its EBS volume in one AZ and a
// standby instance with its EBS volume in another, synchronised by
// block-level software mirroring.
type Mirrored struct {
	net      *netsim.Network
	primary  *Volume
	standby  *Volume
	primInst netsim.NodeID
	stbyInst netsim.NodeID

	writes atomic.Uint64
}

// NewMirrored builds the mirrored pair. Both instance nodes must already be
// registered; the volumes are created in the instances' AZs.
func NewMirrored(net *netsim.Network, name string, primInst, stbyInst netsim.NodeID, primAZ, stbyAZ netsim.AZ, cfg disk.Config) *Mirrored {
	return &Mirrored{
		net:      net,
		primary:  NewVolume(net, name+"-prim", primInst, primAZ, cfg),
		standby:  NewVolume(net, name+"-stby", stbyInst, stbyAZ, cfg),
		primInst: primInst,
		stbyInst: stbyInst,
	}
}

// Write performs the full five-step synchronous chain of Figure 2:
//
//  1. write to primary EBS, 2. primary EBS mirrors locally,
//  3. stage the write to the standby instance (cross-AZ),
//  4. write to standby EBS, 5. standby EBS mirrors locally.
//
// Steps 1, 3 and 5 are sequential; latency is additive and jitter is
// amplified because every step waits for its slowest participant (§3.1).
func (m *Mirrored) Write(ctx context.Context, size int) error {
	if err := m.primary.Write(ctx, size); err != nil {
		return err
	}
	if err := m.net.Send(ctx, m.primInst, m.stbyInst, size); err != nil {
		return fmt.Errorf("mirror stage: %w", err)
	}
	if err := m.standby.Write(ctx, size); err != nil {
		return err
	}
	// Standby acknowledges the staged write back to the primary.
	if err := m.net.Send(ctx, m.stbyInst, m.primInst, ackSize); err != nil {
		return fmt.Errorf("mirror ack: %w", err)
	}
	m.writes.Add(1)
	return nil
}

// Read reads from the primary volume only.
func (m *Mirrored) Read(ctx context.Context, size int) error { return m.primary.Read(ctx, size) }

// Primary exposes the primary volume (fault injection, stats).
func (m *Mirrored) Primary() *Volume { return m.primary }

// Standby exposes the standby volume.
func (m *Mirrored) Standby() *Volume { return m.standby }

// Writes returns the number of completed mirrored writes.
func (m *Mirrored) Writes() uint64 { return m.writes.Load() }
