package ebs

import (
	"context"
	"testing"
	"time"

	"aurora/internal/disk"
	"aurora/internal/netsim"
)

func testNet() *netsim.Network {
	n := netsim.New(netsim.FastLocal())
	n.AddNode("db1", 0)
	n.AddNode("db2", 1)
	return n
}

func TestVolumeWriteChain(t *testing.T) {
	net := testNet()
	v := NewVolume(net, "vol", "db1", 0, disk.FastLocal())
	if err := v.Write(context.Background(), 4096); err != nil {
		t.Fatal(err)
	}
	w, r, b := v.Stats()
	if w != 1 || r != 0 || b != 4096 {
		t.Fatalf("stats %d %d %d", w, r, b)
	}
	// One write = instance->server, server->mirror, server->instance ack.
	if got := net.Stats().Messages; got != 3 {
		t.Fatalf("messages %d, want 3", got)
	}
	// Both the server and the mirror persisted the block.
	if s := v.Disk().Stats(); s.Writes != 1 || s.BytesWritten != 4096 {
		t.Fatalf("primary ssd %+v", s)
	}
}

func TestVolumeRead(t *testing.T) {
	net := testNet()
	v := NewVolume(net, "vol", "db1", 0, disk.FastLocal())
	if err := v.Read(context.Background(), 4096); err != nil {
		t.Fatal(err)
	}
	_, r, _ := v.Stats()
	if r != 1 {
		t.Fatal("read not counted")
	}
	if got := net.Stats().Messages; got != 2 {
		t.Fatalf("messages %d, want 2 (request + response)", got)
	}
}

func TestVolumeFailedDisk(t *testing.T) {
	net := testNet()
	v := NewVolume(net, "vol", "db1", 0, disk.FastLocal())
	v.Disk().Fail(true)
	if err := v.Write(context.Background(), 1); err == nil {
		t.Fatal("write to failed volume succeeded")
	}
}

func TestMirroredWriteIsSequentialChain(t *testing.T) {
	cfg := netsim.Config{IntraAZ: time.Millisecond, CrossAZ: 10 * time.Millisecond}
	net := netsim.New(cfg)
	var total time.Duration
	net.SetSleeper(func(d time.Duration) { total += d })
	net.AddNode("db1", 0)
	net.AddNode("db2", 1)
	m := NewMirrored(net, "data", "db1", "db2", 0, 1, disk.FastLocal())
	if err := m.Write(context.Background(), 4096); err != nil {
		t.Fatal(err)
	}
	if m.Writes() != 1 {
		t.Fatal("write not counted")
	}
	// 8 messages: 3 on the primary volume, 1 cross-AZ stage, 3 on the
	// standby volume, 1 cross-AZ ack.
	if got := net.Stats().Messages; got != 8 {
		t.Fatalf("messages %d, want 8", got)
	}
	// Latency is additive: six intra-AZ hops + two cross-AZ hops.
	want := 6*time.Millisecond + 2*10*time.Millisecond
	if total != want {
		t.Fatalf("accumulated latency %v, want %v", total, want)
	}
}

func TestMirroredSurfacesStandbyFailure(t *testing.T) {
	net := testNet()
	m := NewMirrored(net, "data", "db1", "db2", 0, 1, disk.FastLocal())
	m.Standby().Disk().Fail(true)
	if err := m.Write(context.Background(), 1); err == nil {
		t.Fatal("mirrored write succeeded with failed standby — 4/4 quorum should block")
	}
	// This is the availability weakness of the 4/4 model (§3.1): a single
	// failed replica stalls every write.
}

func TestMirroredAZFailureBlocksWrites(t *testing.T) {
	net := testNet()
	m := NewMirrored(net, "data", "db1", "db2", 0, 1, disk.FastLocal())
	net.SetAZDown(1, true)
	if err := m.Write(context.Background(), 1); err == nil {
		t.Fatal("mirrored write survived standby AZ failure")
	}
	net.SetAZDown(1, false)
	if err := m.Write(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestMirroredRead(t *testing.T) {
	net := testNet()
	m := NewMirrored(net, "data", "db1", "db2", 0, 1, disk.FastLocal())
	if err := m.Read(context.Background(), 4096); err != nil {
		t.Fatal(err)
	}
	_, r, _ := m.Primary().Stats()
	if r != 1 {
		t.Fatal("read did not hit primary volume")
	}
}
