package zdp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/netsim"
	"aurora/internal/volume"
)

func stack(t *testing.T) (*volume.Fleet, *engine.DB) {
	t.Helper()
	net := netsim.New(netsim.FastLocal())
	f, err := volume.NewFleet(volume.FleetConfig{Name: "z", Geometry: core.UniformGeometry(2), Net: net, Disk: disk.FastLocal()})
	if err != nil {
		t.Fatal(err)
	}
	vol := volume.Bootstrap(f, volume.ClientConfig{WriterNode: "writer", WriterAZ: 0})
	db, err := engine.Create(vol, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return f, db
}

// rebuild produces the "patched" engine: the old writer closes and a new
// one recovers the same volume.
func rebuild(f *volume.Fleet, gen *int) func(old *engine.DB) (*engine.DB, error) {
	return func(old *engine.DB) (*engine.DB, error) {
		old.Crash()
		*gen++
		db, _, err := engine.Recover(context.Background(), f, volume.ClientConfig{
			WriterNode: netsim.NodeID(fmt.Sprintf("writer-g%d", *gen)), WriterAZ: 0,
		}, engine.Config{})
		return db, err
	}
}

func TestSessionsSurvivePatch(t *testing.T) {
	f, db := stack(t)
	p := NewProxy(db)
	gen := 0

	// Three sessions with state and data.
	ids := make([]int, 3)
	for i := range ids {
		ids[i] = p.Connect()
		if err := p.SetVar(ids[i], "name", fmt.Sprintf("client-%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := p.Exec(ids[i], func(db *engine.DB) error {
			return db.Put([]byte(fmt.Sprintf("s%d", i)), []byte("pre-patch"))
		}); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := p.Patch(rebuild(f, &gen), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 3 || rep.SpoolBytes == 0 {
		t.Fatalf("report %+v", rep)
	}
	if p.Patches() != 1 {
		t.Fatal("patch not counted")
	}

	// Sessions, their state, and the data all survive.
	for i, id := range ids {
		v, err := p.Var(id, "name")
		if err != nil || v != fmt.Sprintf("client-%d", i) {
			t.Fatalf("session %d var %q %v", id, v, err)
		}
		if err := p.Exec(id, func(db *engine.DB) error {
			got, ok, err := db.Get([]byte(fmt.Sprintf("s%d", i)))
			if err != nil || !ok || string(got) != "pre-patch" {
				return fmt.Errorf("data lost: %q %v %v", got, ok, err)
			}
			return db.Put([]byte(fmt.Sprintf("s%d-post", i)), []byte("post-patch"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	p.DB().Close()
}

func TestPatchUnderLiveLoad(t *testing.T) {
	f, db := stack(t)
	p := NewProxy(db)
	gen := 0

	const workers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := p.Connect()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				err := p.Exec(id, func(db *engine.DB) error {
					return db.Put([]byte(fmt.Sprintf("w%d-%06d", w, i)), []byte("x"))
				})
				if err != nil {
					errs <- fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	time.Sleep(30 * time.Millisecond)
	rep, err := p.Patch(rebuild(f, &gen), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("a connection observed the patch: %v", err)
	default:
	}
	if rep.Sessions != workers {
		t.Fatalf("sessions %d", rep.Sessions)
	}
	// In-flight connections were never dropped and writes continued on the
	// patched engine.
	if p.DB().Stats().Commits == 0 {
		t.Fatal("no commits on patched engine")
	}
	p.DB().Close()
}

func TestPatchTimesOutWithHungStatement(t *testing.T) {
	f, db := stack(t)
	defer db.Close()
	p := NewProxy(db)
	id := p.Connect()
	release := make(chan struct{})
	go p.Exec(id, func(*engine.DB) error { <-release; return nil }) //nolint:errcheck
	time.Sleep(20 * time.Millisecond)
	gen := 0
	_, err := p.Patch(rebuild(f, &gen), 80*time.Millisecond)
	if !errors.Is(err, ErrNoQuiesce) {
		t.Fatalf("want ErrNoQuiesce, got %v", err)
	}
	close(release)
	// Engine still works after the failed patch.
	if err := p.Exec(id, func(db *engine.DB) error { return db.Put([]byte("k"), []byte("v")) }); err != nil {
		t.Fatal(err)
	}
}

func TestDisconnectAndUnknownSession(t *testing.T) {
	_, db := stack(t)
	defer db.Close()
	p := NewProxy(db)
	id := p.Connect()
	if p.Sessions() != 1 {
		t.Fatal("session count")
	}
	p.Disconnect(id)
	if err := p.Exec(id, func(*engine.DB) error { return nil }); !errors.Is(err, ErrSessionUnknown) {
		t.Fatalf("exec on dead session: %v", err)
	}
	if _, err := p.Var(id, "k"); !errors.Is(err, ErrSessionUnknown) {
		t.Fatalf("var on dead session: %v", err)
	}
	if err := p.SetVar(id, "k", "v"); !errors.Is(err, ErrSessionUnknown) {
		t.Fatalf("setvar on dead session: %v", err)
	}
}
