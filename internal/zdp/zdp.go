// Package zdp implements Zero-Downtime Patching (§7.4, Figure 12): the
// engine looks for an instant when no transactions are active, spools
// session state to local ephemeral storage, swaps the engine underneath,
// reloads the state, and resumes — with client connections unaffected and
// oblivious to the swap.
package zdp

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"aurora/internal/engine"
)

// Errors returned by the proxy.
var (
	ErrNoQuiesce      = errors.New("zdp: no transaction-free instant found within timeout")
	ErrSessionUnknown = errors.New("zdp: unknown session")
)

// Session is the per-connection state that must survive a patch: the
// application-visible context (variables, sequence counters) that a
// connection accumulates.
type Session struct {
	ID   int               `json:"id"`
	Vars map[string]string `json:"vars"`
	Seq  int               `json:"seq"` // statements executed on this session
}

// PatchReport describes one zero-downtime patch.
type PatchReport struct {
	Sessions     int           // sessions spooled and restored
	SpoolBytes   int           // bytes written to ephemeral storage
	PauseLatency time.Duration // how long new statements were held
	WaitedFor    time.Duration // time spent waiting for a quiet instant
}

// Proxy fronts the database engine: clients hold sessions on the proxy,
// and the proxy routes statements to whichever engine is current. During a
// patch, statements are briefly held, never dropped.
type Proxy struct {
	mu       sync.Mutex
	cond     *sync.Cond
	db       *engine.DB
	sessions map[int]*Session
	nextID   int
	active   int  // statements in flight
	paused   bool // patch in progress: hold new statements

	patches int
}

// NewProxy wraps an engine.
func NewProxy(db *engine.DB) *Proxy {
	p := &Proxy{db: db, sessions: make(map[int]*Session)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Connect opens a new client session.
func (p *Proxy) Connect() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextID
	p.nextID++
	p.sessions[id] = &Session{ID: id, Vars: make(map[string]string)}
	return id
}

// Disconnect closes a session.
func (p *Proxy) Disconnect(id int) {
	p.mu.Lock()
	delete(p.sessions, id)
	p.mu.Unlock()
}

// SetVar records session state (the kind of context ZDP must preserve).
func (p *Proxy) SetVar(id int, k, v string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.sessions[id]
	if !ok {
		return ErrSessionUnknown
	}
	s.Vars[k] = v
	return nil
}

// Var reads session state.
func (p *Proxy) Var(id int, k string) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.sessions[id]
	if !ok {
		return "", ErrSessionUnknown
	}
	return s.Vars[k], nil
}

// Exec runs one statement on a session. If a patch is in progress the
// statement waits for the new engine; the connection never errors.
func (p *Proxy) Exec(id int, fn func(db *engine.DB) error) error {
	p.mu.Lock()
	s, ok := p.sessions[id]
	if !ok {
		p.mu.Unlock()
		return ErrSessionUnknown
	}
	for p.paused {
		p.cond.Wait()
	}
	db := p.db
	p.active++
	s.Seq++
	p.mu.Unlock()

	err := fn(db)

	p.mu.Lock()
	p.active--
	p.cond.Broadcast()
	p.mu.Unlock()
	return err
}

// Sessions returns the number of live sessions.
func (p *Proxy) Sessions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.sessions)
}

// Patches returns how many patches have been applied.
func (p *Proxy) Patches() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.patches
}

// DB returns the current engine (tests).
func (p *Proxy) DB() *engine.DB {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.db
}

// Patch performs the zero-downtime patch: wait for an instant with no
// active statements (bounded by timeout), spool session state, swap the
// engine for the one produced by build (the "patched" engine), restore the
// sessions, and resume held statements.
func (p *Proxy) Patch(build func(old *engine.DB) (*engine.DB, error), timeout time.Duration) (*PatchReport, error) {
	waitStart := time.Now()
	deadline := waitStart.Add(timeout)
	// A deadline waker so the quiesce loop re-checks even if no statement
	// completes (e.g. a hung client).
	stopWake := make(chan struct{})
	defer close(stopWake)
	go func() {
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case <-t.C:
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		case <-stopWake:
		}
	}()

	p.mu.Lock()
	p.paused = true
	for p.active > 0 {
		if time.Now().After(deadline) {
			p.paused = false
			p.cond.Broadcast()
			p.mu.Unlock()
			return nil, ErrNoQuiesce
		}
		// Poll: waiters signal on completion via cond.
		p.cond.Wait()
	}
	waited := time.Since(waitStart)
	pauseStart := time.Now()

	// Spool application state to ephemeral storage.
	spool, err := json.Marshal(p.sessions)
	if err != nil {
		p.paused = false
		p.cond.Broadcast()
		p.mu.Unlock()
		return nil, err
	}
	old := p.db
	p.mu.Unlock()

	// Patch the engine while no statement is running.
	patched, err := build(old)
	if err != nil {
		p.mu.Lock()
		p.paused = false
		p.cond.Broadcast()
		p.mu.Unlock()
		return nil, fmt.Errorf("zdp: engine build failed, resuming on old engine: %w", err)
	}

	// Reload the spooled state and resume.
	var restored map[int]*Session
	if err := json.Unmarshal(spool, &restored); err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.db = patched
	p.sessions = restored
	p.patches++
	p.paused = false
	p.cond.Broadcast()
	n := len(restored)
	p.mu.Unlock()

	return &PatchReport{
		Sessions:     n,
		SpoolBytes:   len(spool),
		PauseLatency: time.Since(pauseStart),
		WaitedFor:    waited,
	}, nil
}
