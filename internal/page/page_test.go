package page

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"aurora/internal/core"
)

func deltaRec(lsn core.LSN, id core.PageID, off uint32, data []byte) *core.Record {
	return &core.Record{LSN: lsn, Type: core.RecPageDelta, Page: id, Offset: off, Data: data}
}

func TestApplyDelta(t *testing.T) {
	p := New(7)
	if err := p.Apply(deltaRec(5, 7, 10, []byte("hello"))); err != nil {
		t.Fatal(err)
	}
	if p.LSN() != 5 {
		t.Fatalf("page LSN %d, want 5", p.LSN())
	}
	if !bytes.Equal(p.Payload()[10:15], []byte("hello")) {
		t.Fatal("delta not applied")
	}
}

func TestApplyInitClearsTail(t *testing.T) {
	p := New(1)
	if err := p.Apply(deltaRec(1, 1, PayloadSize-3, []byte{9, 9, 9})); err != nil {
		t.Fatal(err)
	}
	init := &core.Record{LSN: 2, Type: core.RecPageInit, Page: 1, Data: []byte("fresh")}
	if err := p.Apply(init); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Payload()[:5], []byte("fresh")) {
		t.Fatal("init image not applied")
	}
	for i := 5; i < PayloadSize; i++ {
		if p.Payload()[i] != 0 {
			t.Fatalf("byte %d not cleared by init", i)
		}
	}
}

func TestApplyRejections(t *testing.T) {
	p := New(3)
	if err := p.Apply(deltaRec(1, 4, 0, []byte("x"))); err == nil {
		t.Fatal("wrong page accepted")
	}
	if err := p.Apply(deltaRec(2, 3, PayloadSize-1, []byte("xy"))); err == nil {
		t.Fatal("out-of-bounds delta accepted")
	}
	if err := p.Apply(deltaRec(3, 3, 0, []byte("x"))); err != nil {
		t.Fatal(err)
	}
	if err := p.Apply(deltaRec(3, 3, 0, []byte("y"))); err == nil {
		t.Fatal("stale record accepted")
	}
	meta := &core.Record{LSN: 9, Type: core.RecTxnCommit, Page: 3}
	if err := p.Apply(meta); err == nil {
		t.Fatal("metadata record applied to page")
	}
	short := Page(make([]byte, 10))
	if err := short.Apply(deltaRec(1, 0, 0, []byte("x"))); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestChecksumRoundTrip(t *testing.T) {
	p := New(11)
	copy(p.Payload(), []byte("content"))
	p.SetLSN(44)
	p.UpdateChecksum()
	if err := p.VerifyChecksum(); err != nil {
		t.Fatal(err)
	}
	p.Payload()[0] ^= 1
	if err := p.VerifyChecksum(); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestMaterializeFromNilBase(t *testing.T) {
	chain := []*core.Record{
		{LSN: 1, Type: core.RecPageInit, Page: 5, Data: []byte("base")},
		deltaRec(3, 5, 0, []byte("B")),
		deltaRec(7, 5, 2, []byte("XY")),
	}
	p, err := Materialize(5, nil, chain, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:4]); got != "BaXY" {
		t.Fatalf("payload %q, want BaXY", got)
	}
	if p.LSN() != 7 {
		t.Fatalf("LSN %d, want 7", p.LSN())
	}
}

func TestMaterializeReadPointCutsChain(t *testing.T) {
	chain := []*core.Record{
		{LSN: 1, Type: core.RecPageInit, Page: 5, Data: []byte("base")},
		deltaRec(3, 5, 0, []byte("B")),
		deltaRec(7, 5, 2, []byte("XY")),
	}
	p, err := Materialize(5, nil, chain, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:4]); got != "Base" {
		t.Fatalf("payload %q, want Base (read point 5 excludes LSN 7)", got)
	}
	if p.LSN() != 3 {
		t.Fatalf("LSN %d, want 3", p.LSN())
	}
}

func TestMaterializeSkipsRecordsInBase(t *testing.T) {
	base := New(9)
	if err := base.Apply(deltaRec(4, 9, 0, []byte("old"))); err != nil {
		t.Fatal(err)
	}
	chain := []*core.Record{
		deltaRec(2, 9, 0, []byte("zzz")), // already reflected: LSN 2 <= 4
		deltaRec(6, 9, 3, []byte("new")),
	}
	p, err := Materialize(9, base, chain, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(p.Payload()[:6]); got != "oldnew" {
		t.Fatalf("payload %q, want oldnew", got)
	}
	// Base must be untouched.
	if base.LSN() != 4 {
		t.Fatal("Materialize mutated base")
	}
}

// Property: materializing a random delta chain equals applying the same
// writes to a plain byte array (model-based check of the log applicator).
func TestMaterializeMatchesModel(t *testing.T) {
	f := func(seed int64, nSmall uint8) bool {
		n := int(nSmall%40) + 1
		rng := rand.New(rand.NewSource(seed))
		model := make([]byte, PayloadSize)
		var chain []*core.Record
		for i := 0; i < n; i++ {
			off := rng.Intn(PayloadSize)
			l := rng.Intn(64) + 1
			if off+l > PayloadSize {
				l = PayloadSize - off
			}
			data := make([]byte, l)
			rng.Read(data)
			copy(model[off:], data)
			chain = append(chain, deltaRec(core.LSN(i+1), 1, uint32(off), data))
		}
		p, err := Materialize(1, nil, chain, core.LSN(n))
		if err != nil {
			return false
		}
		return bytes.Equal(p.Payload(), model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: materializing in two steps (base at k, then the rest) matches
// materializing the full chain — the "pages are a cache of log applications"
// claim from §3.2.
func TestMaterializeComposes(t *testing.T) {
	f := func(seed int64, nSmall, kSmall uint8) bool {
		n := int(nSmall%30) + 2
		k := int(kSmall) % n
		rng := rand.New(rand.NewSource(seed))
		var chain []*core.Record
		for i := 0; i < n; i++ {
			off := rng.Intn(PayloadSize - 8)
			data := make([]byte, 8)
			rng.Read(data)
			chain = append(chain, deltaRec(core.LSN(i+1), 2, uint32(off), data))
		}
		full, err := Materialize(2, nil, chain, core.LSN(n))
		if err != nil {
			return false
		}
		mid, err := Materialize(2, nil, chain, core.LSN(k))
		if err != nil {
			return false
		}
		two, err := Materialize(2, mid, chain, core.LSN(n))
		if err != nil {
			return false
		}
		return bytes.Equal(full, two)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaRecordBounds(t *testing.T) {
	if _, err := DeltaRecord(0, 1, 1, -1, []byte("x")); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := DeltaRecord(0, 1, 1, PayloadSize, []byte("x")); err == nil {
		t.Fatal("offset past payload accepted")
	}
	r, err := DeltaRecord(2, 3, 4, 8, []byte("ok"))
	if err != nil {
		t.Fatal(err)
	}
	if r.PG != 2 || r.Page != 3 || r.Txn != 4 || r.Offset != 8 {
		t.Fatalf("fields wrong: %+v", r)
	}
	// Data must be copied, not aliased.
	src := []byte("abc")
	r2, _ := DeltaRecord(0, 1, 1, 0, src)
	src[0] = 'z'
	if r2.Data[0] != 'a' {
		t.Fatal("DeltaRecord aliased caller data")
	}
}

func BenchmarkApplyDelta(b *testing.B) {
	p := New(1)
	data := bytes.Repeat([]byte{1}, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := deltaRec(core.LSN(i+1), 1, uint32(i%(PayloadSize-64)), data)
		if err := p.Apply(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaterializeChain64(b *testing.B) {
	var chain []*core.Record
	for i := 0; i < 64; i++ {
		chain = append(chain, deltaRec(core.LSN(i+1), 1, uint32(i*8), []byte{1, 2, 3, 4}))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Materialize(1, nil, chain, 64); err != nil {
			b.Fatal(err)
		}
	}
}
