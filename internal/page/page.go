// Package page defines the fixed-size database page format and the redo log
// applicator: the function that applies a log record to the before-image of
// a page to produce its after-image (§3.2). The same applicator runs in the
// engine's buffer cache (forward path), on storage nodes (background
// coalescing and on-demand materialization), and in read replicas.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"aurora/internal/core"
)

// Size is the page size in bytes. Aurora inherits InnoDB's fixed page size;
// the reproduction scales it to 4KiB to keep simulated volumes small.
const Size = 4096

// HeaderSize is the number of bytes reserved at the front of each page for
// the page LSN, checksum and page id. The remainder is payload.
const HeaderSize = 24

// PayloadSize is the number of usable bytes per page.
const PayloadSize = Size - HeaderSize

// Header layout:
//
//	[0:8)   pageLSN  — LSN of the latest log record applied to this page
//	[8:12)  crc      — CRC-32C over bytes [12:Size)
//	[12:20) pageID
//	[20:24) reserved
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by the applicator.
var (
	ErrWrongPage     = errors.New("page: record addressed to a different page")
	ErrOutOfBounds   = errors.New("page: delta outside page payload")
	ErrStaleRecord   = errors.New("page: record LSN not newer than page LSN")
	ErrNotPageRecord = errors.New("page: record carries no page mutation")
	ErrBadSize       = errors.New("page: buffer is not a full page")
	ErrChecksum      = errors.New("page: checksum mismatch")
)

// Page is a fixed-size database page: header plus payload.
type Page []byte

// New returns a zeroed page carrying the given id.
func New(id core.PageID) Page {
	p := make(Page, Size)
	p.setID(id)
	return p
}

// LSN returns the page LSN: the LSN of the latest change applied.
func (p Page) LSN() core.LSN { return core.LSN(binary.LittleEndian.Uint64(p[0:8])) }

// SetLSN stamps the page LSN.
func (p Page) SetLSN(l core.LSN) { binary.LittleEndian.PutUint64(p[0:8], uint64(l)) }

// ID returns the page id stored in the header.
func (p Page) ID() core.PageID { return core.PageID(binary.LittleEndian.Uint64(p[12:20])) }

func (p Page) setID(id core.PageID) { binary.LittleEndian.PutUint64(p[12:20], uint64(id)) }

// Payload returns the mutable payload region of the page.
func (p Page) Payload() []byte { return p[HeaderSize:Size] }

// Clone returns an independent copy of the page.
func (p Page) Clone() Page { return append(Page(nil), p...) }

// UpdateChecksum recomputes and stores the page CRC. Storage nodes call this
// before persisting; the scrubber verifies it (Figure 4 step 8).
func (p Page) UpdateChecksum() {
	crc := crc32.Checksum(p[12:Size], castagnoli)
	binary.LittleEndian.PutUint32(p[8:12], crc)
}

// VerifyChecksum reports whether the stored CRC matches the page contents.
func (p Page) VerifyChecksum() error {
	if len(p) != Size {
		return ErrBadSize
	}
	crc := crc32.Checksum(p[12:Size], castagnoli)
	if crc != binary.LittleEndian.Uint32(p[8:12]) {
		return fmt.Errorf("%w: page %d", ErrChecksum, p.ID())
	}
	return nil
}

// Apply applies one redo record to the page in place, advancing the page
// LSN. Records whose LSN is not strictly greater than the page LSN are
// rejected as stale: the applicator is idempotent when driven from a chain
// because every chain LSN is distinct and increasing.
func (p Page) Apply(r *core.Record) error {
	if len(p) != Size {
		return ErrBadSize
	}
	if !r.PageRecord() {
		return ErrNotPageRecord
	}
	if r.Page != p.ID() {
		return fmt.Errorf("%w: record for %d, page is %d", ErrWrongPage, r.Page, p.ID())
	}
	if r.LSN <= p.LSN() {
		return fmt.Errorf("%w: record %d, page %d", ErrStaleRecord, r.LSN, p.LSN())
	}
	switch r.Type {
	case core.RecPageInit:
		if len(r.Data) > PayloadSize {
			return fmt.Errorf("%w: init image %d bytes", ErrOutOfBounds, len(r.Data))
		}
		payload := p.Payload()
		n := copy(payload, r.Data)
		for i := n; i < len(payload); i++ {
			payload[i] = 0
		}
	case core.RecPageDelta:
		end := int(r.Offset) + len(r.Data)
		if end > PayloadSize {
			return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfBounds, r.Offset, end, PayloadSize)
		}
		copy(p.Payload()[r.Offset:], r.Data)
	}
	p.SetLSN(r.LSN)
	return nil
}

// Materialize produces the version of the page as of readPoint by applying
// the chain of records (which must be sorted by ascending LSN) on top of
// base. base may be nil for a page whose chain begins with RecPageInit.
// Records already reflected in base and records beyond readPoint are
// skipped. The returned page is a fresh copy; base is not modified.
func Materialize(id core.PageID, base Page, chain []*core.Record, readPoint core.LSN) (Page, error) {
	var p Page
	if base != nil {
		if len(base) != Size {
			return nil, ErrBadSize
		}
		p = base.Clone()
	} else {
		p = New(id)
	}
	for _, r := range chain {
		if r.LSN > readPoint {
			break
		}
		if r.LSN <= p.LSN() {
			continue // already reflected in the base image
		}
		if err := p.Apply(r); err != nil {
			return nil, fmt.Errorf("materialize page %d at %d: %w", id, r.LSN, err)
		}
	}
	return p, nil
}

// DeltaRecord builds a page-delta record payload for the byte range
// [offset, offset+len(data)) of a page. It is a convenience for engine code
// and validates bounds eagerly so corruption is caught at generation time
// rather than at apply time on a storage node.
func DeltaRecord(pg core.PGID, id core.PageID, txn uint64, offset int, data []byte) (core.Record, error) {
	if offset < 0 || offset+len(data) > PayloadSize {
		return core.Record{}, fmt.Errorf("%w: [%d,%d)", ErrOutOfBounds, offset, offset+len(data))
	}
	return core.Record{
		Type: core.RecPageDelta, PG: pg, Page: id, Txn: txn,
		Offset: uint32(offset), Data: append([]byte(nil), data...),
	}, nil
}
