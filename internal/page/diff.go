package page

import "aurora/internal/core"

// Span is one contiguous modified byte range of a page payload.
type Span struct {
	Offset int
	Data   []byte
}

// Diff computes the changed spans between two equal-length payloads,
// merging changes separated by fewer than gap unchanged bytes so that a
// cluster of nearby edits becomes a single compact record. Data slices are
// copies of after.
//
// This is how the engine produces redo records: it mutates the cached page
// image freely and logs the difference between the after-image and the
// before-image (§3.1).
func Diff(before, after []byte, gap int) []Span {
	if gap < 1 {
		gap = 1
	}
	n := len(before)
	if len(after) < n {
		n = len(after)
	}
	var spans []Span
	i := 0
	for i < n {
		if before[i] == after[i] {
			i++
			continue
		}
		start := i
		last := i
		for j := i + 1; j < n && j-last <= gap; j++ {
			if before[j] != after[j] {
				last = j
			}
		}
		spans = append(spans, Span{
			Offset: start,
			Data:   append([]byte(nil), after[start:last+1]...),
		})
		i = last + 1
	}
	// Length changes (should not occur for fixed pages) are appended.
	if len(after) > len(before) {
		spans = append(spans, Span{Offset: len(before), Data: append([]byte(nil), after[len(before):]...)})
	}
	return spans
}

// DiffRecords converts the changed spans of a page payload into redo
// records for the MTR under construction.
func DiffRecords(pg core.PGID, id core.PageID, txn uint64, before, after []byte, gap int) ([]core.Record, error) {
	spans := Diff(before, after, gap)
	recs := make([]core.Record, 0, len(spans))
	for _, s := range spans {
		r, err := DeltaRecord(pg, id, txn, s.Offset, s.Data)
		if err != nil {
			return nil, err
		}
		recs = append(recs, r)
	}
	return recs, nil
}
