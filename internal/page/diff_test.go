package page

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"aurora/internal/core"
)

func TestDiffBasic(t *testing.T) {
	before := []byte("aaaaaaaaaa")
	after := []byte("aaXXaaaaYa")
	spans := Diff(before, after, 1)
	if len(spans) != 2 {
		t.Fatalf("spans %v", spans)
	}
	if spans[0].Offset != 2 || string(spans[0].Data) != "XX" {
		t.Fatalf("span0 %+v", spans[0])
	}
	if spans[1].Offset != 8 || string(spans[1].Data) != "Y" {
		t.Fatalf("span1 %+v", spans[1])
	}
}

func TestDiffIdentical(t *testing.T) {
	b := []byte("same")
	if spans := Diff(b, b, 4); spans != nil {
		t.Fatalf("identical payloads diffed: %v", spans)
	}
}

func TestDiffGapMerging(t *testing.T) {
	before := make([]byte, 32)
	after := make([]byte, 32)
	after[0], after[3], after[6] = 1, 1, 1
	// With a large gap the three edits merge into one span covering 0..6.
	spans := Diff(before, after, 8)
	if len(spans) != 1 || spans[0].Offset != 0 || len(spans[0].Data) != 7 {
		t.Fatalf("merged spans %v", spans)
	}
	// With gap 1 they stay separate.
	spans = Diff(before, after, 1)
	if len(spans) != 3 {
		t.Fatalf("unmerged spans %v", spans)
	}
}

func TestDiffDataIsCopied(t *testing.T) {
	before := []byte{0, 0}
	after := []byte{1, 0}
	spans := Diff(before, after, 1)
	after[0] = 9
	if spans[0].Data[0] != 1 {
		t.Fatal("span aliases after buffer")
	}
}

// Property: applying the diff spans to before always reproduces after.
func TestDiffRoundTripProperty(t *testing.T) {
	f := func(seed int64, edits, gap uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		before := make([]byte, 256)
		rng.Read(before)
		after := append([]byte(nil), before...)
		for e := 0; e < int(edits%12); e++ {
			off := rng.Intn(len(after))
			after[off] = byte(rng.Intn(256))
		}
		spans := Diff(before, after, int(gap%9)+1)
		got := append([]byte(nil), before...)
		for _, s := range spans {
			copy(got[s.Offset:], s.Data)
		}
		return bytes.Equal(got, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: replaying DiffRecords through the log applicator reproduces
// the after-image — the end-to-end engine->storage contract.
func TestDiffRecordsApplyProperty(t *testing.T) {
	f := func(seed int64, edits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(3)
		rng.Read(p.Payload())
		before := append([]byte(nil), p.Payload()...)
		after := append([]byte(nil), before...)
		for e := 0; e < int(edits%10)+1; e++ {
			off := rng.Intn(PayloadSize)
			after[off] ^= 0xFF
		}
		recs, err := DiffRecords(1, 3, 7, before, after, 16)
		if err != nil {
			return false
		}
		for i := range recs {
			recs[i].LSN = core.LSN(i + 100)
			if err := p.Apply(&recs[i]); err != nil {
				return false
			}
		}
		return bytes.Equal(p.Payload(), after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
