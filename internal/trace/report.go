package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// PathSeg is one segment of a critical path: the span that the traced
// request was waiting on during Dur of its lifetime.
type PathSeg struct {
	Name string
	Dur  time.Duration
}

// CriticalPath attributes the root span's entire duration to the chain of
// spans the request was actually waiting on, walking backward from the
// root's end: at each instant the blamed span is the deepest child whose
// interval covers it; time covered by no ended child is the span's own
// (self) time. Segments with the same name are merged. By construction the
// segment durations sum exactly to the root's duration, so the table a
// report prints is a true decomposition of the end-to-end latency — the
// property the §3.1/§4.2 "where does a commit's time go" analysis needs.
//
// Concurrent children (the per-replica quorum flights) are handled by the
// backward walk: the child that ends last before the current instant is the
// one the parent was waiting on, which for a 4/6 quorum is the 4th-fastest
// replica — exactly the replica that gated the commit.
func CriticalPath(root *SpanInfo) []PathSeg {
	acc := make(map[string]time.Duration)
	var order []string
	add := func(name string, d time.Duration) {
		if d <= 0 {
			return
		}
		if _, ok := acc[name]; !ok {
			order = append(order, name)
		}
		acc[name] += d
	}
	var walk func(s *SpanInfo, lo, hi time.Duration)
	walk = func(s *SpanInfo, lo, hi time.Duration) {
		cur := hi
		for cur > lo {
			// The child on the path at instant cur: latest-ending ended
			// child whose interval is live strictly before cur.
			var pick *SpanInfo
			var pickEnd time.Duration
			for _, k := range s.Children {
				if k.End == 0 || k.Start >= cur {
					continue
				}
				e := k.End
				if e > cur {
					e = cur
				}
				if pick == nil || e > pickEnd {
					pick, pickEnd = k, e
				}
			}
			if pick == nil {
				add(s.Name, cur-lo)
				return
			}
			if pickEnd < cur {
				add(s.Name, cur-pickEnd) // gap: the parent itself was running
			}
			klo := pick.Start
			if klo < lo {
				klo = lo
			}
			walk(pick, klo, pickEnd)
			cur = klo
		}
	}
	if root.End == 0 {
		return nil
	}
	walk(root, root.Start, root.End)
	segs := make([]PathSeg, 0, len(order))
	for _, name := range order {
		segs = append(segs, PathSeg{Name: name, Dur: acc[name]})
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].Dur != segs[j].Dur {
			return segs[i].Dur > segs[j].Dur
		}
		return segs[i].Name < segs[j].Name
	})
	return segs
}

// PathTotal sums a critical path's segments (equals the root duration).
func PathTotal(segs []PathSeg) time.Duration {
	var sum time.Duration
	for _, s := range segs {
		sum += s.Dur
	}
	return sum
}

// Render draws the trace's span tree with offsets, durations and
// annotations — the exemplar view a latency report prints.
//
//	commit 1.83ms txn=42
//	├─ commit.latch @2µs 1µs
//	├─ commit.queue @5µs 210µs
//	└─ group.ship @520µs 1.1ms
//	   ├─ batch.ship @521µs 1.09ms pg=2 records=3
//	   ...
func (t *Trace) Render() string {
	var b strings.Builder
	renderSpan(&b, t.Snapshot(), "", true, true)
	return b.String()
}

func renderSpan(b *strings.Builder, si *SpanInfo, prefix string, last, root bool) {
	if !root {
		if last {
			b.WriteString(prefix + "└─ ")
		} else {
			b.WriteString(prefix + "├─ ")
		}
	}
	b.WriteString(si.Name)
	if !root {
		fmt.Fprintf(b, " @%v", si.Start.Round(time.Microsecond))
	}
	if si.End > 0 {
		fmt.Fprintf(b, " %v", si.Duration().Round(time.Microsecond))
	} else {
		b.WriteString(" (unfinished)")
	}
	for _, a := range si.Attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Val)
	}
	b.WriteByte('\n')
	childPrefix := prefix
	if !root {
		if last {
			childPrefix += "   "
		} else {
			childPrefix += "│  "
		}
	}
	for i, c := range si.Children {
		renderSpan(b, c, childPrefix, i == len(si.Children)-1, false)
	}
}

// FormatStages renders the attribution table: one line per stage with
// counts, mean, tail percentiles and the share of the total traced time.
// Concurrent stages (per-replica flights) can push the share sum past 100%
// — they overlap; the critical path, not the share column, is the true
// decomposition.
func FormatStages(stages []StageStat) string {
	if len(stages) == 0 {
		return "(no traces collected)\n"
	}
	var total time.Duration
	for _, s := range stages {
		total += s.Total
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %10s %10s %10s %10s %7s\n",
		"stage", "count", "mean", "p50", "p95", "p99", "share")
	for _, s := range stages {
		share := 0.0
		if total > 0 {
			share = 100 * float64(s.Total) / float64(total)
		}
		fmt.Fprintf(&b, "%-18s %8d %10v %10v %10v %10v %6.1f%%\n",
			s.Name, s.Count,
			s.Mean.Round(time.Microsecond),
			s.P50.Round(time.Microsecond),
			s.P95.Round(time.Microsecond),
			s.P99.Round(time.Microsecond),
			share)
	}
	return b.String()
}
