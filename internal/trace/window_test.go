package trace

import (
	"testing"
	"time"
)

// finishRoot runs one sampled trace through the collector with a single
// child stage, backdating nothing — the stage histograms only care about
// the observed durations, which we inject via observeStage directly to
// keep the test deterministic.
func observeN(c *Collector, stage string, d time.Duration, n int) {
	for i := 0; i < n; i++ {
		c.observeStage(stage, d)
	}
}

func TestStageWindowDeltas(t *testing.T) {
	c := NewCollector(16)
	// Pre-window history: a slow cold start the window must not see.
	observeN(c, "commit.queue", 50*time.Millisecond, 100)

	w := c.NewStageWindow()

	// First window: fast queue waits only.
	observeN(c, "commit.queue", time.Millisecond, 200)
	observeN(c, "group.frame", 200*time.Microsecond, 50)
	d1 := w.Advance()

	q, ok := d1["commit.queue"]
	if !ok {
		t.Fatal("commit.queue missing from window")
	}
	if q.Count != 200 {
		t.Fatalf("window count = %d, want 200 (lifetime history leaked in)", q.Count)
	}
	// The 50ms cold-start samples are lifetime-only; the windowed p95 must
	// reflect the 1ms traffic (factor-of-two bucket resolution).
	if q.P95 > 4*time.Millisecond {
		t.Fatalf("window p95 = %v, cold-start outliers leaked into the delta", q.P95)
	}
	if f := d1["group.frame"]; f.Count != 50 {
		t.Fatalf("group.frame count = %d, want 50", f.Count)
	}

	// Second window: nothing happened — stage omitted entirely.
	d2 := w.Advance()
	if len(d2) != 0 {
		t.Fatalf("idle window reported %d stages, want 0", len(d2))
	}

	// Third window: load shifts to framing; deltas must follow.
	observeN(c, "group.frame", 8*time.Millisecond, 150)
	d3 := w.Advance()
	if _, ok := d3["commit.queue"]; ok {
		t.Fatal("commit.queue reported with zero new observations")
	}
	f := d3["group.frame"]
	if f.Count != 150 {
		t.Fatalf("group.frame count = %d, want 150", f.Count)
	}
	if f.P95 < 4*time.Millisecond {
		t.Fatalf("group.frame window p95 = %v, want ~8ms", f.P95)
	}
	if f.P50 > f.P95 || f.P95 > f.P99 {
		t.Fatalf("window quantiles not monotone: %v/%v/%v", f.P50, f.P95, f.P99)
	}
}

func TestStageWindowNewStagesAppearMidStream(t *testing.T) {
	c := NewCollector(16)
	w := c.NewStageWindow()
	// A stage born after the window anchor must still be fully counted.
	observeN(c, "read.attempt", 500*time.Microsecond, 40)
	d := w.Advance()
	if r := d["read.attempt"]; r.Count != 40 {
		t.Fatalf("new stage count = %d, want 40", r.Count)
	}
}

func TestStageWindowThroughSampledTraces(t *testing.T) {
	// End-to-end: real sampled spans (not direct observeStage) must land in
	// the stage windows once their trace finishes.
	c := NewCollector(16)
	c.SetSampleEvery(1)
	w := c.NewStageWindow()
	for i := 0; i < 10; i++ {
		root := c.Start("commit")
		sp := root.Child("commit.queue")
		sp.End()
		root.End()
	}
	d := w.Advance()
	if d["commit.queue"].Count != 10 {
		t.Fatalf("sampled spans in window = %d, want 10", d["commit.queue"].Count)
	}
	if d["commit"].Count != 10 {
		t.Fatalf("root spans in window = %d, want 10", d["commit"].Count)
	}
}
