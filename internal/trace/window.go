package trace

import (
	"time"

	"aurora/internal/metrics"
)

// StageDelta is the distribution one stage accumulated during one window:
// delta quantiles between two snapshots of the stage's histogram, so the
// adaptive control plane reacts to where time goes *now*, not to lifetime
// aggregates that never forget cold-start outliers.
type StageDelta struct {
	Name  string
	Count uint64
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// StageWindow tracks per-stage histogram snapshots across successive
// Advance calls. It is owned by a single consumer (the controller's
// gather closure); the underlying stage histograms stay lock-free and
// shared with the live tracers.
type StageWindow struct {
	col  *Collector
	prev map[string]metrics.HistSnapshot
}

// NewStageWindow returns a window anchored at the collector's current
// stage state: the first Advance reports only observations made after
// this call.
func (c *Collector) NewStageWindow() *StageWindow {
	w := &StageWindow{col: c, prev: make(map[string]metrics.HistSnapshot)}
	w.snapshotInto(w.prev)
	return w
}

func (w *StageWindow) snapshotInto(dst map[string]metrics.HistSnapshot) {
	w.col.stageMu.RLock()
	defer w.col.stageMu.RUnlock()
	for name, h := range w.col.stages {
		dst[name] = h.Snapshot()
	}
}

// Advance closes the current window and returns each stage's delta
// distribution since the previous Advance (or since NewStageWindow).
// Stages with no observations in the window are omitted. Not safe for
// concurrent use by multiple goroutines; one window has one consumer.
func (w *StageWindow) Advance() map[string]StageDelta {
	cur := make(map[string]metrics.HistSnapshot, len(w.prev))
	w.snapshotInto(cur)
	out := make(map[string]StageDelta, len(cur))
	for name, snap := range cur {
		d := snap.Delta(w.prev[name])
		if d.N == 0 {
			continue
		}
		out[name] = StageDelta{
			Name:  name,
			Count: d.N,
			P50:   d.QuantileDuration(0.50),
			P95:   d.QuantileDuration(0.95),
			P99:   d.QuantileDuration(0.99),
		}
	}
	w.prev = cur
	return out
}
