package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsSafeAndFree(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("child of nil span must be nil")
	}
	s.Annotate("k", "v")
	s.End()
	if s.TraceID() != 0 {
		t.Fatal("nil span trace id")
	}
}

func TestSamplingGate(t *testing.T) {
	c := NewCollector(8)
	if sp := c.Start("commit"); sp != nil {
		t.Fatal("sampling off must yield nil spans")
	}
	c.SetSampleEvery(3)
	var sampled int
	for i := 0; i < 30; i++ {
		if sp := c.Start("commit"); sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 10 {
		t.Fatalf("1-in-3 gate sampled %d of 30", sampled)
	}
	st := c.Stats()
	if st.Started != 10 || st.Finished != 10 || st.SampleEvery != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestUnsampledPathDoesNotAllocate(t *testing.T) {
	c := NewCollector(8)
	if n := testing.AllocsPerRun(1000, func() {
		sp := c.Start("commit")
		ch := sp.Child("stage")
		ch.End()
		sp.End()
	}); n != 0 {
		t.Fatalf("unsampled path allocates %.1f objects per op", n)
	}
	// Sampling on but losing the lottery must not allocate either.
	c.SetSampleEvery(1 << 40)
	if n := testing.AllocsPerRun(1000, func() {
		sp := c.Start("commit")
		sp.End()
	}); n != 0 {
		t.Fatalf("unlucky path allocates %.1f objects per op", n)
	}
}

func TestSpanTreeAndAnnotations(t *testing.T) {
	c := NewCollector(8)
	c.SetSampleEvery(1)
	root := c.Start("commit")
	root.Annotate("txn", 42)
	a := root.Child("apply")
	time.Sleep(time.Millisecond)
	a.End()
	s := root.Child("ship")
	f := s.Child("flight")
	f.Annotate("replica", 3)
	time.Sleep(time.Millisecond)
	f.End()
	s.End()
	root.End()

	traces := c.Traces()
	if len(traces) != 1 {
		t.Fatalf("ring holds %d traces", len(traces))
	}
	snap := traces[0].Snapshot()
	if snap.Attr("txn") != "42" {
		t.Fatalf("root attrs %v", snap.Attrs)
	}
	if snap.Find("flight") == nil || snap.Find("flight").Attr("replica") != "3" {
		t.Fatal("nested span lost")
	}
	if d := snap.Find("apply").Duration(); d < time.Millisecond {
		t.Fatalf("apply duration %v", d)
	}
	if !strings.Contains(traces[0].Render(), "replica=3") {
		t.Fatalf("render missing annotation:\n%s", traces[0].Render())
	}
}

func TestCriticalPathSumsToRootDuration(t *testing.T) {
	// Hand-built tree: sequential stages plus overlapping "replica" spans,
	// one of which ends after the root (a straggler past the quorum).
	mk := func(name string, start, end time.Duration, kids ...*SpanInfo) *SpanInfo {
		return &SpanInfo{Name: name, Start: start, End: end, Children: kids}
	}
	root := mk("commit", 0, 1000,
		mk("latch", 10, 50),
		mk("apply", 50, 200),
		mk("ship", 200, 900,
			mk("flight", 210, 600),
			mk("flight", 220, 880),
			mk("flight", 230, 0), // never ended: must be ignored
		),
		mk("vdl", 900, 990),
	)
	segs := CriticalPath(root)
	if got, want := PathTotal(segs), time.Duration(1000); got != want {
		t.Fatalf("critical path sums to %v, want %v\n%v", got, want, segs)
	}
	byName := map[string]time.Duration{}
	for _, s := range segs {
		byName[s.Name] = s.Dur
	}
	// The path must blame the latest-ending flight (the quorum-gating
	// replica), not the fastest.
	if byName["flight"] < 600 {
		t.Fatalf("flight on path for %v, want >= 600ns\n%v", byName["flight"], segs)
	}
	if byName["commit"] == 0 {
		t.Fatal("root self time (gaps) missing from path")
	}
}

func TestRingBounded(t *testing.T) {
	c := NewCollector(4)
	c.SetSampleEvery(1)
	for i := 0; i < 20; i++ {
		c.Start("r").End()
	}
	if n := len(c.Traces()); n != 4 {
		t.Fatalf("ring holds %d, want 4", n)
	}
}

func TestStagesAndExemplars(t *testing.T) {
	c := NewCollector(16)
	c.SetSampleEvery(1)
	for i := 0; i < 6; i++ {
		root := c.Start("commit")
		ch := root.Child("apply")
		time.Sleep(time.Duration(i+1) * 100 * time.Microsecond)
		ch.End()
		root.End()
	}
	stages := c.Stages()
	var apply *StageStat
	for i := range stages {
		if stages[i].Name == "apply" {
			apply = &stages[i]
		}
	}
	if apply == nil || apply.Count != 6 {
		t.Fatalf("apply stage missing or wrong count: %+v", stages)
	}
	if apply.P50 > apply.P95 || apply.P95 > apply.P99 {
		t.Fatalf("quantiles not monotone: %+v", *apply)
	}
	ex := c.Exemplars("commit")
	if len(ex) == 0 || len(ex) > exemplarsPerRoot {
		t.Fatalf("exemplars %d", len(ex))
	}
	for i := 1; i < len(ex); i++ {
		if ex[i].Duration() > ex[i-1].Duration() {
			t.Fatal("exemplars not sorted slowest-first")
		}
	}
	out := FormatStages(stages)
	if !strings.Contains(out, "apply") || !strings.Contains(out, "share") {
		t.Fatalf("stage table:\n%s", out)
	}
}

func TestLateSpanEndAfterRootFinish(t *testing.T) {
	c := NewCollector(8)
	c.SetSampleEvery(1)
	root := c.Start("commit")
	straggler := root.Child("flight")
	root.End()
	// The trace is done: new children are refused, but the straggler's end
	// still lands in the stage aggregation.
	if root.Child("x") != nil {
		t.Fatal("child after finish must be nil")
	}
	straggler.End()
	found := false
	for _, s := range c.Stages() {
		if s.Name == "flight" && s.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("late span end not aggregated")
	}
}

func TestConcurrentSpans(t *testing.T) {
	c := NewCollector(64)
	c.SetSampleEvery(1)
	root := c.Start("commit")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.Child("flight")
			sp.Annotate("replica", i)
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	snap := c.Traces()[0].Snapshot()
	if n := len(snap.Children); n != 16 {
		t.Fatalf("concurrent children %d", n)
	}
}

func TestSpanCap(t *testing.T) {
	c := NewCollector(8)
	c.SetSampleEvery(1)
	root := c.Start("commit")
	var made int
	for i := 0; i < maxSpansPerTrace+100; i++ {
		if sp := root.Child("s"); sp != nil {
			made++
			sp.End()
		}
	}
	if made != maxSpansPerTrace-1 {
		t.Fatalf("span cap admitted %d children", made)
	}
	root.End()
}

func BenchmarkStartUnsampled(b *testing.B) {
	c := NewCollector(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := c.Start("commit")
		ch := sp.Child("stage")
		ch.End()
		sp.End()
	}
}

func BenchmarkStartSampled(b *testing.B) {
	c := NewCollector(256)
	c.SetSampleEvery(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := c.Start("commit")
		ch := sp.Child("stage")
		ch.End()
		sp.End()
	}
}
