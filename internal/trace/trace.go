// Package trace is the engine's causal tracing subsystem: per-commit (and
// per-read) critical-path spans from the SQL-side latch all the way to the
// storage node's fsync, with stage-level latency attribution. The paper's
// argument is about *where time goes* — Figure 2's write amplification,
// Table 1's network IOs per transaction, the commit path's sensitivity to
// the bottom 0.01% of storage outliers — and every one of those claims is a
// latency-attribution claim. This package gives the repo the measurement
// substrate to make them about itself.
//
// Model: a Trace is a tree of Spans. A Span has a name, nanosecond begin
// and end offsets from the trace epoch, key/value annotations, and
// children. Spans may be created and ended from any goroutine (the commit
// path hops from the committer to the framer to per-replica sender
// pipelines to completion watchers); all mutation is serialized on the
// owning trace's mutex, which only sampled requests ever touch.
//
// Sampling: a Collector samples 1 in N requests through an atomic gate.
// When sampling is off (N = 0) the only cost on the hot path is a single
// atomic load and nil-span method calls, with zero allocations — tracing is
// compiled in, never compiled out, and still near-free (see
// BenchmarkStartUnsampled and TestUnsampledPathDoesNotAllocate).
// Every Span method is safe on a nil receiver, so instrumented code never
// branches on "am I sampled".
//
// Completed traces land in a bounded lock-free ring (newest overwrite
// oldest) and feed a per-stage aggregator: one lock-free histogram per span
// name plus the slowest exemplar traces per root kind, from which reports
// render attribution tables and critical-path trees.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aurora/internal/metrics"
)

// maxSpansPerTrace bounds one trace's memory; Child returns nil once a
// trace is full (annotations on the existing spans still work).
const maxSpansPerTrace = 512

// exemplarsPerRoot is how many slowest traces are retained per root name.
const exemplarsPerRoot = 4

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string
	Val string
}

// Span is one timed stage of a trace. The zero of *Span is nil, and every
// method is a no-op on nil — unsampled paths carry nil spans for free.
type Span struct {
	tr       *Trace
	parent   *Span
	name     string
	start    time.Duration // offset from the trace epoch
	end      time.Duration // 0 until ended
	attrs    []Attr
	children []*Span
}

// Trace is one sampled request: a tree of spans under a root.
type Trace struct {
	id    uint64
	col   *Collector
	epoch time.Time

	mu    sync.Mutex
	root  *Span
	spans int
	done  bool
}

// ID returns the trace's id (unique per collector).
func (t *Trace) ID() uint64 { return t.id }

// Child opens a sub-span under s, started now. It returns nil when s is
// nil, the trace has already finished (a straggler — e.g. the 6th replica's
// flight landing after the 4/6 quorum resolved and the commit completed),
// or the trace is at its span cap.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done || t.spans >= maxSpansPerTrace {
		return nil
	}
	c := &Span{tr: t, parent: s, name: name, start: time.Since(t.epoch)}
	s.children = append(s.children, c)
	t.spans++
	return c
}

// Annotate attaches a key/value pair to the span.
func (s *Span) Annotate(key string, val any) {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: fmt.Sprint(val)})
	t.mu.Unlock()
}

// TraceID returns the owning trace's id (0 for a nil span).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.tr.id
}

// End closes the span at now. Ending the root finishes the trace: it is
// aggregated and published to the collector's ring exactly once. A span
// ended after its trace finished (a late replica flight) is still folded
// into the stage aggregation, so tail replicas are not invisible.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	if s.end != 0 {
		t.mu.Unlock()
		return
	}
	s.end = time.Since(t.epoch)
	late := t.done && s.parent != nil
	dur := s.end - s.start
	name := s.name
	finish := s.parent == nil && !t.done
	if finish {
		t.done = true
	}
	t.mu.Unlock()
	if finish {
		t.col.finish(t)
	} else if late {
		t.col.observeStage(name, dur)
	}
}

// SpanInfo is an immutable snapshot of one span, safe to walk and render
// while the live trace may still be receiving late span ends.
type SpanInfo struct {
	Name     string
	Start    time.Duration // offset from the trace epoch
	End      time.Duration // 0 if the span never ended
	Attrs    []Attr
	Children []*SpanInfo
}

// Duration returns the span's length (0 if it never ended).
func (si *SpanInfo) Duration() time.Duration {
	if si.End == 0 {
		return 0
	}
	return si.End - si.Start
}

// Attr returns the value of the named annotation ("" if absent).
func (si *SpanInfo) Attr(key string) string {
	for _, a := range si.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// Find returns the first span named name in a depth-first walk (itself
// included), or nil.
func (si *SpanInfo) Find(name string) *SpanInfo {
	if si.Name == name {
		return si
	}
	for _, c := range si.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Walk visits every span in the tree depth-first.
func (si *SpanInfo) Walk(fn func(*SpanInfo)) {
	fn(si)
	for _, c := range si.Children {
		c.Walk(fn)
	}
}

// Snapshot returns an immutable copy of the trace's span tree.
func (t *Trace) Snapshot() *SpanInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	return snapSpan(t.root)
}

func snapSpan(s *Span) *SpanInfo {
	si := &SpanInfo{
		Name:  s.name,
		Start: s.start,
		End:   s.end,
		Attrs: append([]Attr(nil), s.attrs...),
	}
	for _, c := range s.children {
		si.Children = append(si.Children, snapSpan(c))
	}
	return si
}

// Duration returns the root span's length (the traced request's end-to-end
// latency), 0 while unfinished.
func (t *Trace) Duration() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root.end == 0 {
		return 0
	}
	return t.root.end - t.root.start
}

// RootName returns the root span's name ("commit", "read.page", ...).
func (t *Trace) RootName() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.name
}

// Stats is a snapshot of a collector's accounting.
type Stats struct {
	SampleEvery uint64 // 0 = sampling off
	Started     uint64 // traces sampled
	Finished    uint64 // traces whose root ended
}

// StageStat is the latency attribution of one stage (span name) across all
// finished traces.
type StageStat struct {
	Name  string
	Count uint64
	Total time.Duration
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Collector owns the sampling gate, the ring of completed traces, and the
// stage aggregation. All methods are safe for concurrent use.
type Collector struct {
	every atomic.Uint64 // sample 1 in N; 0 = off
	seq   atomic.Uint64
	ids   atomic.Uint64

	started  atomic.Uint64
	finished atomic.Uint64

	ring     []atomic.Pointer[Trace]
	ringHead atomic.Uint64

	stageMu sync.RWMutex
	stages  map[string]*metrics.LockFreeHistogram

	exMu      sync.Mutex
	exemplars map[string][]*Trace // per root name, slowest first
}

// NewCollector returns a collector with a completed-trace ring of the given
// capacity (<= 0 selects 256).
func NewCollector(ringCap int) *Collector {
	if ringCap <= 0 {
		ringCap = 256
	}
	return &Collector{
		ring:      make([]atomic.Pointer[Trace], ringCap),
		stages:    make(map[string]*metrics.LockFreeHistogram),
		exemplars: make(map[string][]*Trace),
	}
}

// SetSampleEvery sets the sampling gate: sample 1 in n requests; 0 turns
// sampling off. Takes effect immediately.
func (c *Collector) SetSampleEvery(n uint64) { c.every.Store(n) }

// SampleEvery returns the current gate.
func (c *Collector) SampleEvery() uint64 { return c.every.Load() }

// Start begins a trace rooted at a span with the given name if this request
// wins the sampling lottery, and returns nil otherwise. With sampling off
// the cost is one atomic load and no allocation.
func (c *Collector) Start(name string) *Span {
	n := c.every.Load()
	if n == 0 {
		return nil
	}
	if c.seq.Add(1)%n != 0 {
		return nil
	}
	t := &Trace{id: c.ids.Add(1), col: c, epoch: time.Now()}
	t.root = &Span{tr: t, name: name}
	t.spans = 1
	c.started.Add(1)
	return t.root
}

// finish aggregates and publishes one completed trace.
func (c *Collector) finish(t *Trace) {
	c.finished.Add(1)
	root := t.Snapshot()
	root.Walk(func(si *SpanInfo) {
		if si.End > 0 {
			c.observeStage(si.Name, si.Duration())
		}
	})
	idx := c.ringHead.Add(1) - 1
	c.ring[idx%uint64(len(c.ring))].Store(t)
	c.noteExemplar(root.Name, root.Duration(), t)
}

func (c *Collector) observeStage(name string, d time.Duration) {
	c.stageMu.RLock()
	h := c.stages[name]
	c.stageMu.RUnlock()
	if h == nil {
		c.stageMu.Lock()
		if h = c.stages[name]; h == nil {
			h = &metrics.LockFreeHistogram{}
			c.stages[name] = h
		}
		c.stageMu.Unlock()
	}
	h.ObserveDuration(d)
}

// noteExemplar keeps the slowest few traces per root name.
func (c *Collector) noteExemplar(root string, d time.Duration, t *Trace) {
	c.exMu.Lock()
	defer c.exMu.Unlock()
	ex := c.exemplars[root]
	i := sort.Search(len(ex), func(j int) bool { return ex[j].Duration() < d })
	if i >= exemplarsPerRoot {
		return
	}
	ex = append(ex, nil)
	copy(ex[i+1:], ex[i:])
	ex[i] = t
	if len(ex) > exemplarsPerRoot {
		ex = ex[:exemplarsPerRoot]
	}
	c.exemplars[root] = ex
}

// Stats returns the collector's accounting snapshot.
func (c *Collector) Stats() Stats {
	return Stats{
		SampleEvery: c.every.Load(),
		Started:     c.started.Load(),
		Finished:    c.finished.Load(),
	}
}

// Traces returns the completed traces currently in the ring, newest last.
func (c *Collector) Traces() []*Trace {
	head := c.ringHead.Load()
	n := uint64(len(c.ring))
	var out []*Trace
	start := uint64(0)
	if head > n {
		start = head - n
	}
	for i := start; i < head; i++ {
		if t := c.ring[i%n].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Exemplars returns the slowest retained traces for the given root name
// ("commit", "read.page"), slowest first.
func (c *Collector) Exemplars(root string) []*Trace {
	c.exMu.Lock()
	defer c.exMu.Unlock()
	return append([]*Trace(nil), c.exemplars[root]...)
}

// Stages returns per-stage latency attribution across all finished traces
// (including late-ended spans), sorted by total time descending.
func (c *Collector) Stages() []StageStat {
	c.stageMu.RLock()
	defer c.stageMu.RUnlock()
	out := make([]StageStat, 0, len(c.stages))
	for name, h := range c.stages {
		n := h.Count()
		if n == 0 {
			continue
		}
		st := StageStat{
			Name:  name,
			Count: n,
			Total: time.Duration(h.Sum()),
			Mean:  time.Duration(h.Mean()),
			P50:   h.QuantileDuration(0.50),
			P95:   h.QuantileDuration(0.95),
			P99:   h.QuantileDuration(0.99),
			Max:   time.Duration(h.Max()),
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}
