package trace

import "context"

// spanKey is the context key under which the active span travels. Spans are
// carried in a context.Context rather than threaded as explicit parameters,
// so one signature serves both the sampled and unsampled paths (the former
// *Traced API fork).
type spanKey struct{}

// NewContext returns a context carrying sp. A nil span — the unsampled
// common case — returns ctx unchanged, so the hot path allocates nothing.
func NewContext(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil when there is none.
// The returned span is safe to use directly: all Span methods are nil-safe.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}
