package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"aurora/internal/control"
)

func knobValue(t *testing.T, s Stats, name string) control.KnobState {
	t.Helper()
	for _, k := range s.Knobs {
		if k.Name == name {
			return k
		}
	}
	t.Fatalf("knob %q missing from Stats (have %v)", name, s.Knobs)
	return control.KnobState{}
}

// TestKnobsSurfaceInStats verifies every canonical knob appears in Stats
// with its static default when AutoTune is off, and that the promoted
// MaxInflightGroups config field lands in its knob.
func TestKnobsSurfaceInStats(t *testing.T) {
	_, db := testDB(t, Config{MaxCommitGroup: 32, MaxInflightGroups: 7})
	s := db.Stats()
	if len(s.Knobs) != 4 {
		t.Fatalf("Stats has %d knobs, want 4: %v", len(s.Knobs), s.Knobs)
	}
	if g := knobValue(t, s, control.KnobCommitGroup); g.Value != 32 || g.Default != 32 {
		t.Fatalf("commit_group knob = %+v, want value/default 32", g)
	}
	if i := knobValue(t, s, control.KnobInflightGroups); i.Value != 7 {
		t.Fatalf("inflight_groups knob = %+v, want 7", i)
	}
	if h := knobValue(t, s, control.KnobHedgeMultPct); h.Value != control.DefaultHedgeMultPct {
		t.Fatalf("hedge knob = %+v", h)
	}
	if b := knobValue(t, s, control.KnobBackoffCapUS); b.Value != control.DefaultBackoffCapUS {
		t.Fatalf("backoff knob = %+v", b)
	}
	if s.AutoTuneSteps != 0 || s.AutoTuneAdjusts != 0 {
		t.Fatalf("controller counters nonzero with AutoTune off: %d/%d", s.AutoTuneSteps, s.AutoTuneAdjusts)
	}
}

// TestMaxInflightGroupsConfig verifies the promoted field defaults to 4
// when zero and accepts an out-of-range sweep value (bounds widen rather
// than clamp, so ablations get exactly what they asked for).
func TestMaxInflightGroupsConfig(t *testing.T) {
	_, db := testDB(t, Config{})
	if v := knobValue(t, db.Stats(), control.KnobInflightGroups); v.Value != control.DefaultInflightGroups {
		t.Fatalf("zero config inflight = %+v, want default %d", v, control.DefaultInflightGroups)
	}

	_, db2 := testDB(t, Config{MaxCommitGroup: 1, MaxInflightGroups: 100})
	s := db2.Stats()
	if v := knobValue(t, s, control.KnobCommitGroup); v.Value != 1 {
		t.Fatalf("MaxCommitGroup=1 sweep clamped to %d", v.Value)
	}
	if v := knobValue(t, s, control.KnobInflightGroups); v.Value != 100 {
		t.Fatalf("MaxInflightGroups=100 sweep clamped to %d", v.Value)
	}
	// Commits still work at the extreme settings.
	for i := 0; i < 10; i++ {
		if err := db2.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAutoTuneLiveController runs a real workload with AutoTune on and a
// fast control interval: the controller must step, trace sampling must be
// forced on for its signal, and commits must stay correct throughout.
func TestAutoTuneLiveController(t *testing.T) {
	_, db := testDB(t, Config{AutoTune: true, AutoTuneInterval: 5 * time.Millisecond})
	if db.Tracer().SampleEvery() == 0 {
		t.Fatal("AutoTune did not enable trace sampling")
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := db.Put([]byte(fmt.Sprintf("w%d-%03d", w, i)), []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for db.Stats().AutoTuneSteps == 0 {
		if time.Now().After(deadline) {
			t.Fatal("controller never stepped")
		}
		time.Sleep(time.Millisecond)
	}
	// Every write must be readable with the controller live.
	for w := 0; w < 4; w++ {
		for i := 0; i < 100; i += 25 {
			k := []byte(fmt.Sprintf("w%d-%03d", w, i))
			if _, ok, err := db.Get(k); err != nil || !ok {
				t.Fatalf("get %s: %v %v", k, ok, err)
			}
		}
	}
}

// TestKnobUpdatesRaceFramer is the engine half of the knob-safety
// satellite: hammer the batching knobs from a steering goroutine while
// committers and the framer run full tilt, under -race. The knobs bound
// budgets, not invariants, so any interleaving must stay correct.
func TestKnobUpdatesRaceFramer(t *testing.T) {
	_, db := testDB(t, Config{})
	panel := db.Volume().Knobs()
	group := panel.Knob(control.KnobCommitGroup)
	infl := panel.Knob(control.KnobInflightGroups)

	stop := make(chan struct{})
	var steer sync.WaitGroup
	steer.Add(1)
	go func() {
		defer steer.Done()
		v := int64(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			group.Set(v%128 + 1)
			infl.Set(v%16 + 1)
			v++
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				if err := db.Put([]byte(fmt.Sprintf("r%d-%03d", w, i)), []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	steer.Wait()
	for w := 0; w < 8; w++ {
		k := []byte(fmt.Sprintf("r%d-%03d", w, 149))
		if _, ok, err := db.Get(k); err != nil || !ok {
			t.Fatalf("get %s after knob race: %v %v", k, ok, err)
		}
	}
}
