package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/netsim"
	"aurora/internal/volume"
)

// pipelineDB builds an engine on a 1-PG fleet with a caller-chosen LAL and
// returns the network so tests can inject latency.
func pipelineDB(t *testing.T, lal int64, cfg Config) (*netsim.Network, *volume.Fleet, *DB) {
	t.Helper()
	net := netsim.New(netsim.FastLocal())
	f, err := volume.NewFleet(volume.FleetConfig{Name: "pl", Geometry: core.UniformGeometry(1), Net: net, Disk: disk.FastLocal()})
	if err != nil {
		t.Fatal(err)
	}
	vol := volume.Bootstrap(f, volume.ClientConfig{WriterNode: "pl-writer", WriterAZ: 0, LAL: lal})
	db, err := Create(vol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return net, f, db
}

// TestBackpressureDoesNotBlockReaders is the reader-starvation regression
// test: a commit stalled on LAL back-pressure (the §4.2.1 throttle) must
// not block concurrent Tx.Get/Scan. On the pre-pipeline engine the
// throttled committer blocked inside FrameMTR while holding the exclusive
// engine latch, so every reader stalled behind it; the pipeline moves the
// stall into the framer stage and the reservation gate, neither of which
// holds the latch.
func TestBackpressureDoesNotBlockReaders(t *testing.T) {
	const ackDelay = 400 * time.Millisecond
	net, f, db := pipelineDB(t, 48, Config{})

	// Seed a row while the fleet is fast, so the reader has something to
	// find and the page is cached.
	if err := db.Put([]byte("k0"), []byte("v0")); err != nil {
		t.Fatal(err)
	}

	// Slow every replica's acks: the VDL stalls for ackDelay per exchange,
	// so a burst of commits exhausts the 48-LSN allocation window and the
	// framer blocks on the LAL.
	for _, n := range f.Replicas(0) {
		if err := net.SetNodeDelay(n.NodeID(), ackDelay); err != nil {
			t.Fatal(err)
		}
	}

	// Fire enough commits to exhaust the window (each commit is ~3 records).
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := db.Begin()
			if err := tx.Put([]byte(fmt.Sprintf("bp-%02d", i)), []byte("v")); err != nil {
				return
			}
			tx.Commit() //nolint:errcheck — some may fail if the test ends first
		}(i)
	}
	defer wg.Wait()

	// Give the burst time to pile into the pipeline and hit the LAL.
	time.Sleep(50 * time.Millisecond)

	// Reads must complete promptly even though commits are throttled.
	type res struct {
		ok  bool
		err error
	}
	done := make(chan res, 1)
	go func() {
		tx := db.Begin()
		defer tx.Abort()
		_, ok, err := tx.Get([]byte("k0"))
		if err == nil {
			err = tx.Scan([]byte("k0"), []byte("k1"), func(k, v []byte) bool { return true })
		}
		done <- res{ok: ok, err: err}
	}()
	select {
	case r := <-done:
		if r.err != nil || !r.ok {
			t.Fatalf("reader failed under back-pressure: ok=%v err=%v", r.ok, r.err)
		}
	case <-time.After(ackDelay / 2):
		t.Fatalf("reader blocked behind a back-pressured commit for >%v: the LAL stall is holding the engine latch", ackDelay/2)
	}

	// Un-stall the fleet so the commit backlog drains quickly.
	for _, n := range f.Replicas(0) {
		if err := net.SetNodeDelay(n.NodeID(), 0); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentCommittersGroupAndSerialize is the pipeline stress test: N
// goroutines commit concurrently and the test asserts (a) serialized
// visibility — every committed row is readable and no aborted/failed write
// leaks, (b) the VDL and highest allocated LSN are monotone throughout,
// and (c) framing critical sections < commits, i.e. group commit actually
// engages with mean framed group size > 1.
func TestConcurrentCommittersGroupAndSerialize(t *testing.T) {
	const (
		committers = 16
		perWorker  = 10
	)
	net, f, db := pipelineDB(t, 0, Config{})
	// A little ack latency widens the in-flight window so queues form and
	// groups grow; it is not load-bearing for correctness.
	for _, n := range f.Replicas(0) {
		if err := net.SetNodeDelay(n.NodeID(), 2*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	// VDL monotonicity watcher.
	stopWatch := make(chan struct{})
	watchErr := make(chan error, 1)
	go func() {
		var last core.LSN
		for {
			select {
			case <-stopWatch:
				watchErr <- nil
				return
			default:
			}
			v := db.VDL()
			if v < last {
				watchErr <- fmt.Errorf("VDL regressed: %d after %d", v, last)
				return
			}
			last = v
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, committers)
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := db.Begin()
				key := []byte(fmt.Sprintf("w%02d-%03d", w, i))
				if err := tx.Put(key, []byte(fmt.Sprintf("val-%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
				// Read-your-writes through a fresh transaction: the apply
				// stage made the row visible before the ack returned.
				if _, ok, err := db.Get(key); err != nil || !ok {
					errs <- fmt.Errorf("committed row %q not visible: ok=%v err=%v", key, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopWatch)
	if err := <-watchErr; err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Every committed row is present with the right value.
	for w := 0; w < committers; w++ {
		for i := 0; i < perWorker; i++ {
			key := fmt.Sprintf("w%02d-%03d", w, i)
			v, ok, err := db.Get([]byte(key))
			if err != nil || !ok || string(v) != fmt.Sprintf("val-%d-%d", w, i) {
				t.Fatalf("row %q: %q ok=%v err=%v", key, v, ok, err)
			}
		}
	}

	s := db.Stats()
	commits := committers * perWorker
	if s.Commits != uint64(commits) {
		t.Fatalf("commits %d, want %d", s.Commits, commits)
	}
	// Grouping must actually engage: fewer framing ops than commits, mean
	// framed group size above 1. (Frames includes the Create-time format
	// MTR and the seed rows, so the bound is conservative.)
	if s.Volume.Frames >= s.Commits+2 {
		t.Fatalf("framing ops %d >= commits %d: group commit never engaged", s.Volume.Frames, s.Commits)
	}
	if s.Pipeline.MeanGroupSize <= 1.0 {
		t.Fatalf("mean framed group size %.2f, want > 1 under %d concurrent committers",
			s.Pipeline.MeanGroupSize, committers)
	}
	if s.Pipeline.CommitP50 <= 0 || s.Pipeline.CommitP99 < s.Pipeline.CommitP50 {
		t.Fatalf("commit latency gauges malformed: p50=%v p99=%v", s.Pipeline.CommitP50, s.Pipeline.CommitP99)
	}
	// The volume's LSN space stayed dense and ahead of the VDL.
	if s.Volume.VDL > s.Volume.HighestLSN {
		t.Fatalf("VDL %d above highest allocated LSN %d", s.Volume.VDL, s.Volume.HighestLSN)
	}
	t.Logf("commits=%d frames=%d mean group=%.2f max group=%d p50=%v p95=%v p99=%v",
		s.Commits, s.Volume.Frames, s.Pipeline.MeanGroupSize, s.Pipeline.MaxGroupSize,
		s.Pipeline.CommitP50, s.Pipeline.CommitP95, s.Pipeline.CommitP99)
}

// TestPipelineCommitDurableAtReturn: the WAL-equivalent rule survives the
// pipeline — when Commit returns, VDL >= the transaction's commit record.
func TestPipelineCommitDurableAtReturn(t *testing.T) {
	_, _, db := pipelineDB(t, 0, Config{})
	for i := 0; i < 10; i++ {
		tx := db.Begin()
		if err := tx.Put([]byte(fmt.Sprintf("d%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if db.VDL() < db.Volume().Stats().HighestLSN {
			t.Fatalf("iteration %d: VDL %d below highest LSN %d after commit ack",
				i, db.VDL(), db.Volume().Stats().HighestLSN)
		}
	}
}

// TestPipelineBackpressureBoundsQueue: with a stalled fleet the pipeline's
// reservation gate must hold committers at the configured depth instead of
// queueing unboundedly ahead of storage.
func TestPipelineBackpressureBoundsQueue(t *testing.T) {
	const depth = 4
	net, f, db := pipelineDB(t, 16, Config{CommitQueueDepth: depth})
	for _, n := range f.Replicas(0) {
		if err := net.SetNodeDelay(n.NodeID(), 300*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 3*depth; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := db.Begin()
			if err := tx.Put([]byte(fmt.Sprintf("q%02d", i)), []byte("v")); err != nil {
				return
			}
			tx.Commit() //nolint:errcheck — released by test cleanup
		}(i)
	}
	defer wg.Wait()
	time.Sleep(50 * time.Millisecond)
	if q := db.Stats().Pipeline.QueuedCommits; q > depth {
		t.Fatalf("queued commits %d exceed configured depth %d", q, depth)
	}
	for _, n := range f.Replicas(0) {
		if err := net.SetNodeDelay(n.NodeID(), 0); err != nil {
			t.Fatal(err)
		}
	}
}
