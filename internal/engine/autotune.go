package engine

import (
	"aurora/internal/control"
)

// This file wires the adaptive control plane: one feedback controller per
// instance, gathering windowed signal from three sources —
//
//	trace stage windows  → commit.queue / group.frame / group.ship delta
//	                       p95s (the write-path pressure-vs-service signal)
//	health read window   → windowed read-attempt p95 + hedge win rate
//	                       (the hedged-read deadline signal)
//	sender deliver window→ windowed replica delivery RTT (the backoff
//	                       ceiling signal)
//
// — and steering the knobs registered in the volume client's panel. The
// signal is always windowed deltas, never lifetime aggregates: the
// controller reacts to where time goes now. All decision logic lives in
// control.Controller.Step; this file only plumbs measurements.

// startAutoTune launches the controller when Config.AutoTune is set. Trace
// sampling is already forced on by withDefaults (the write-path signal
// rides the stage histograms, which only sampled commits feed).
func (db *DB) startAutoTune() {
	if !db.cfg.AutoTune {
		return
	}
	stages := db.tracer.NewStageWindow()
	var prevHedges, prevWins uint64
	gather := func() control.Window {
		var w control.Window
		deltas := stages.Advance()
		if q, ok := deltas["commit.queue"]; ok {
			w.QueueP95 = q.P95
			w.Commits = q.Count
		}
		w.FrameP95 = deltas["group.frame"].P95
		w.ShipP95 = deltas["group.ship"].P95

		rw := db.vol.ReadWindow()
		w.ReadP95 = rw.QuantileDuration(0.95)
		w.Reads = rw.Count()
		// Hedge launch/win counters are lifetime; the controller wants
		// per-window rates, so difference them here. The gather closure is
		// the single consumer, so plain locals carry the previous values.
		hs := db.vol.Stats()
		w.Hedges = hs.Hedges - prevHedges
		w.HedgeWins = hs.HedgeWins - prevWins
		prevHedges, prevWins = hs.Hedges, hs.HedgeWins

		dw := db.vol.DeliverWindow()
		w.DeliveryP95 = dw.QuantileDuration(0.95)
		w.Deliveries = dw.Count()
		return w
	}
	db.ctl = control.NewController(control.Config{
		Panel:    db.vol.Knobs(),
		Gather:   gather,
		Interval: db.cfg.AutoTuneInterval,
	})
	db.ctl.Start(db.rootCtx)
}

// stopAutoTune halts the controller (idempotent; no-op when AutoTune is
// off). Knobs keep their last steered values until a new engine registers
// over them.
func (db *DB) stopAutoTune() {
	if db.ctl != nil {
		db.ctl.Stop()
	}
}
