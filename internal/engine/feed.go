package engine

import (
	"sync"

	"aurora/internal/core"
)

// Event is one element of the log stream the writer sends to its read
// replicas: redo records in LSN order plus the writer's VDL at emission
// time (§4.2.4). Events with no records are pure VDL advancements.
type Event struct {
	Records []core.Record
	VDL     core.LSN
}

type subscriber struct {
	ch   chan Event
	done chan struct{}
}

// feed fans the log stream out to subscribers. Record events are enqueued
// in frame order — the commit pipeline's framer publishes one event per
// framed group, and VDL-only advancement events may interleave from the
// completion watchers (subscribers take the max, so ordering of pure VDL
// events is immaterial). A dedicated goroutine pumps the queue so the
// write path never blocks on a slow replica's channel.
type feed struct {
	mu     sync.Mutex
	queue  []Event
	subs   map[int]*subscriber
	nextID int
	wake   chan struct{}
	closed bool
}

func newFeed() *feed {
	f := &feed{subs: make(map[int]*subscriber), wake: make(chan struct{}, 1)}
	go f.pump()
	return f
}

// publish enqueues an event for delivery. With no subscribers attached the
// event is dropped outright — identical semantics to the pump fanning out
// to an empty set (subscribers only see events published after they
// attach), but the hot path skips the queue append entirely.
func (f *feed) publish(ev Event) {
	f.mu.Lock()
	if f.closed || len(f.subs) == 0 {
		f.mu.Unlock()
		return
	}
	f.queue = append(f.queue, ev)
	f.mu.Unlock()
	select {
	case f.wake <- struct{}{}:
	default:
	}
}

// active reports whether any subscriber is attached. Publishers use it to
// skip building record clones nobody would receive; a subscriber attaching
// right after the check simply misses that event, exactly as subscribe's
// contract allows.
func (f *feed) active() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.closed && len(f.subs) > 0
}

func (f *feed) pump() {
	for range f.wake {
		for {
			f.mu.Lock()
			if len(f.queue) == 0 {
				f.mu.Unlock()
				break
			}
			ev := f.queue[0]
			f.queue = f.queue[1:]
			subs := make([]*subscriber, 0, len(f.subs))
			for _, s := range f.subs {
				subs = append(subs, s)
			}
			f.mu.Unlock()
			for _, s := range subs {
				select {
				case s.ch <- ev:
				case <-s.done: // subscriber cancelled: drop
				}
			}
		}
	}
	// Feed closed: signal every subscriber.
	f.mu.Lock()
	for id, s := range f.subs {
		close(s.ch)
		delete(f.subs, id)
	}
	f.mu.Unlock()
}

// subscribe attaches a new consumer; it receives all events published
// after this call.
func (f *feed) subscribe() (<-chan Event, func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		ch := make(chan Event)
		close(ch)
		return ch, func() {}
	}
	id := f.nextID
	f.nextID++
	s := &subscriber{ch: make(chan Event, 4096), done: make(chan struct{})}
	f.subs[id] = s
	var once sync.Once
	return s.ch, func() {
		once.Do(func() {
			f.mu.Lock()
			delete(f.subs, id)
			f.mu.Unlock()
			close(s.done)
		})
	}
}

func (f *feed) close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	close(f.wake)
}

// Subscribe attaches a log-stream consumer (a read replica) to the writer.
// The returned cancel function detaches it.
func (db *DB) Subscribe() (<-chan Event, func()) { return db.feed.subscribe() }
