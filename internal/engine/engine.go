// Package engine implements the Aurora database engine: the part of the
// kernel that stays on the database instance. Query processing (a key/value
// + range-scan API standing in for SQL), transactions, locking, the buffer
// cache and the B+-tree access method all live here, exactly as in §1 —
// while redo logging, durable storage, backup and crash recovery are
// offloaded to the storage service behind the volume client.
//
// The engine never writes a page anywhere: every mutation becomes redo
// records in a mini-transaction, and cached pages are just the engine's
// private materialization of the log.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aurora/internal/btree"
	"aurora/internal/bufcache"
	"aurora/internal/control"
	"aurora/internal/core"
	"aurora/internal/metrics"
	"aurora/internal/page"
	"aurora/internal/trace"
	"aurora/internal/txn"
	"aurora/internal/volume"
)

// Errors returned by the engine.
var (
	ErrTxDone     = errors.New("engine: transaction already finished")
	ErrReadOnlyTx = errors.New("engine: write on read-only transaction")
	ErrDegraded   = errors.New("engine: storage quorum lost; writes suspended")
	ErrClosed     = errors.New("engine: database closed")
	// ErrDeadlineExceeded is returned by CommitCtx (and ctx-bounded reads)
	// when the caller's deadline fires before the commit acknowledgement.
	// The commit itself is NOT rolled back: once applied and enqueued it
	// still frames, ships and becomes durable — only the waiter detaches
	// (see DESIGN.md, "Deadlines & cancellation").
	ErrDeadlineExceeded = errors.New("engine: deadline exceeded")
)

// Config tunes a database instance.
type Config struct {
	// CachePages is the buffer cache capacity in pages (instance size knob;
	// Figures 6–7 sweep it).
	CachePages int
	// LockTimeout bounds row lock waits; 0 selects the default.
	LockTimeout time.Duration
	// SyncCommit is an ablation: hold the engine's exclusive latch through
	// framing, quorum shipping and durability, as a traditional synchronous
	// commit would stall its worker thread (§4.2.2 inverted). It bypasses
	// the commit pipeline entirely — group size is forced to 1 and the old
	// stall semantics apply.
	SyncCommit bool
	// FullPageWrites is an ablation: ship full page images instead of byte
	// deltas, as a page-shipping architecture would (§3.1).
	FullPageWrites bool
	// CommitQueueDepth bounds the commit pipeline's apply→framing queue
	// (default 256). When the framer stalls on LAL back-pressure the queue
	// fills and new committers block before taking the engine latch — so
	// back-pressure throttles writers without ever blocking readers.
	CommitQueueDepth int
	// MaxCommitGroup caps how many queued commits one framing critical
	// section absorbs (default 64). This is the static starting point of
	// the engine.commit_group knob; AutoTune steers it from there.
	MaxCommitGroup int
	// MaxInflightGroups bounds how many framed groups may be awaiting
	// durability at once before the framer pauses (default 4; previously a
	// hardcoded pipeline constant). Static starting point of the
	// engine.inflight_groups knob.
	MaxInflightGroups int
	// AutoTune runs the adaptive control plane: a feedback controller that
	// steers every latency knob (commit group size, in-flight group budget,
	// hedged-read deadline multiplier, sender backoff ceiling) from
	// windowed per-stage latency distributions. Off, the knobs hold the
	// static values above. AutoTune needs the write-path stage signal, so
	// it enables trace sampling (TraceEvery = 8) when sampling is off.
	AutoTune bool
	// AutoTuneInterval is the controller's window length (default 100ms at
	// simulation scale; the paper's deployment would use ~1s).
	AutoTuneInterval time.Duration
	// TraceEvery samples 1 in N commits (and cache-miss page reads) into
	// the causal tracing subsystem; 0 disables sampling, leaving only an
	// atomic load on the hot path. It can be changed at runtime through
	// Tracer().SetSampleEvery.
	TraceEvery int
	// TraceRing is the completed-trace ring capacity (default 256).
	TraceRing int
}

func (c Config) withDefaults() Config {
	if c.CachePages <= 0 {
		c.CachePages = 4096
	}
	if c.CommitQueueDepth <= 0 {
		c.CommitQueueDepth = 256
	}
	if c.MaxCommitGroup <= 0 {
		c.MaxCommitGroup = control.DefaultCommitGroup
	}
	if c.MaxInflightGroups <= 0 {
		c.MaxInflightGroups = control.DefaultInflightGroups
	}
	if c.AutoTuneInterval <= 0 {
		c.AutoTuneInterval = 100 * time.Millisecond
	}
	if c.AutoTune && c.TraceEvery <= 0 {
		c.TraceEvery = 8
	}
	return c
}

// DB is one database instance attached as the single writer of a volume.
type DB struct {
	cfg      Config
	vol      *volume.Client
	cache    *bufcache.Cache
	locks    *txn.LockTable
	ids      txn.IDs
	latch    sync.RWMutex // tree structure latch: shared reads, exclusive writes
	feed     *feed
	pipeline *commitPipeline
	tracer   *trace.Collector
	ctl      *control.Controller // adaptive control plane; nil unless AutoTune

	// rootCtx bounds the instance's own IO (background framing, group
	// shipping, default read paths). Close cancels it only after the commit
	// pipeline drains; Crash cancels it immediately.
	rootCtx    context.Context
	rootCancel context.CancelFunc

	degraded atomic.Bool

	begins  atomic.Uint64
	commits atomic.Uint64
	aborts  atomic.Uint64
	reads   atomic.Uint64

	// Commit-path gauges, recorded lock-free on the hot path.
	commitLat  metrics.LockFreeHistogram // commit latency, nanoseconds
	groupSizes metrics.LockFreeHistogram // commits per framed group
}

// Create formats a brand-new database on an empty volume.
func Create(vol *volume.Client, cfg Config) (*DB, error) {
	cfg = cfg.withDefaults()
	db := newDB(vol, cfg)
	ws := &writeStore{db: db, ctx: db.rootCtx}
	rec := btree.NewRecorder()
	if _, err := btree.Create(ws, rec); err != nil {
		ws.done()
		return nil, err
	}
	m := &core.MTR{Txn: 0}
	if err := rec.AppendRecords(m, vol.PGOf); err != nil {
		ws.done()
		return nil, err
	}
	pending, err := vol.FrameMTR(db.rootCtx, m)
	if err != nil {
		ws.done()
		return nil, err
	}
	rec.StampLSNs(pending.LastLSNFor)
	db.feed.publish(Event{Records: cloneRecords(m.Records), VDL: vol.VDL()})
	ws.done()
	if err := pending.Ship(db.rootCtx); err != nil {
		pending.Release()
		return nil, fmt.Errorf("engine: formatting volume: %w", err)
	}
	vol.WaitDurable(pending.CPL())
	pending.Release()
	db.feed.publish(Event{VDL: vol.VDL()})
	db.pipeline = newCommitPipeline(db)
	db.startAutoTune()
	return db, nil
}

// Open attaches to an existing database (e.g. after Recover). Nothing is
// replayed: the storage service already holds every durable change, and
// pages materialize on demand (§4.3 — "nothing is required at database
// startup").
func Open(vol *volume.Client, cfg Config) (*DB, error) {
	cfg = cfg.withDefaults()
	db := newDB(vol, cfg)
	if _, err := btree.Open(&readStore{db: db, ctx: db.rootCtx}); err != nil {
		return nil, err
	}
	db.pipeline = newCommitPipeline(db)
	db.startAutoTune()
	return db, nil
}

func newDB(vol *volume.Client, cfg Config) *DB {
	rootCtx, rootCancel := context.WithCancel(context.Background())
	return &DB{
		cfg:        cfg,
		vol:        vol,
		cache:      bufcache.New(cfg.CachePages, vol.VDL),
		locks:      txn.NewLockTable(cfg.LockTimeout),
		feed:       newFeed(),
		tracer:     newTracer(cfg),
		rootCtx:    rootCtx,
		rootCancel: rootCancel,
	}
}

// Recover performs volume recovery against the fleet and opens the
// database on the recovered volume. The returned report carries the
// recovery's durable points and timing.
// ctx bounds the recovery conversation with the storage fleet.
func Recover(ctx context.Context, f *volume.Fleet, vcfg volume.ClientConfig, cfg Config) (*DB, *volume.RecoveryReport, error) {
	vol, rep, err := volume.Recover(ctx, f, vcfg)
	if err != nil {
		return nil, nil, err
	}
	db, err := Open(vol, cfg)
	if err != nil {
		vol.Close()
		return nil, nil, err
	}
	return db, rep, nil
}

func newTracer(cfg Config) *trace.Collector {
	c := trace.NewCollector(cfg.TraceRing)
	if cfg.TraceEvery > 0 {
		c.SetSampleEvery(uint64(cfg.TraceEvery))
	}
	return c
}

// Tracer returns the instance's causal-tracing collector. Sampling can be
// toggled at runtime with Tracer().SetSampleEvery.
func (db *DB) Tracer() *trace.Collector { return db.tracer }

// Volume returns the underlying volume client.
func (db *DB) Volume() *volume.Client { return db.vol }

// Cache returns the buffer cache (observability and the ZDP spooler).
func (db *DB) Cache() *bufcache.Cache { return db.cache }

// VDL returns the current volume durable LSN.
func (db *DB) VDL() core.LSN { return db.vol.VDL() }

// Degraded reports whether a write quorum failure has suspended writes.
func (db *DB) Degraded() bool { return db.degraded.Load() }

// Close shuts the engine down gracefully: lock waiters are released, the
// commit pipeline is drained (closing the volume client first unblocks a
// framer stalled on the LAL), and cached state is discarded.
func (db *DB) Close() {
	db.stopAutoTune()
	db.locks.Close()
	db.pipeline.stop()
	db.vol.Close()
	db.pipeline.wait()
	// Cancel the root only after the drain: in-flight groups must ship
	// gracefully, not be abandoned mid-quorum.
	db.rootCancel()
	db.feed.close()
}

// Crash simulates an instance failure: runtime state (cache, locks,
// feeds, the commit pipeline) is lost; the storage fleet keeps everything
// durable.
func (db *DB) Crash() {
	db.rootCancel()
	db.stopAutoTune()
	db.locks.Close()
	db.pipeline.stop()
	db.cache.Invalidate()
	db.vol.Crash()
	db.pipeline.wait()
	db.feed.close()
}

// PipelineStats summarises the commit pipeline's behaviour: how many
// framing critical sections ran, how large the framed groups were, and the
// commit latency distribution, all collected lock-free on the hot path.
type PipelineStats struct {
	Frames         uint64  // framing ops (one per group; < Commits when grouping engages)
	GroupedCommits uint64  // commits that passed through the pipeline
	MeanGroupSize  float64 // GroupedCommits / Frames
	MaxGroupSize   uint64
	CommitP50      time.Duration
	CommitP95      time.Duration
	CommitP99      time.Duration
	CommitMean     time.Duration
	QueuedCommits  int // commits currently waiting to be framed
}

// Stats is a snapshot of engine counters.
type Stats struct {
	Begins   uint64
	Commits  uint64
	Aborts   uint64
	Reads    uint64
	Cache    bufcache.Stats
	Volume   volume.Stats
	Pipeline PipelineStats
	Trace    trace.Stats
	Waits    uint64
	Wounds   uint64

	// Knobs is the control-plane panel snapshot: every latency knob's
	// current value, static default, bounds and adjustment count — the
	// knob trajectories experiments and chaos observe the controller by.
	Knobs []control.KnobState
	// AutoTuneSteps / AutoTuneAdjusts count controller windows stepped and
	// knob movements made (both 0 with AutoTune off).
	AutoTuneSteps   uint64
	AutoTuneAdjusts uint64
}

// Stats returns a snapshot of engine counters.
func (db *DB) Stats() Stats {
	waits, wounds := db.locks.Stats()
	vs := db.vol.Stats()
	ps := PipelineStats{
		Frames:         vs.Frames,
		GroupedCommits: db.groupSizes.Sum(),
		MaxGroupSize:   db.groupSizes.Max(),
		CommitP50:      db.commitLat.QuantileDuration(0.50),
		CommitP95:      db.commitLat.QuantileDuration(0.95),
		CommitP99:      db.commitLat.QuantileDuration(0.99),
		CommitMean:     time.Duration(db.commitLat.Mean()),
	}
	if n := db.groupSizes.Count(); n > 0 {
		ps.MeanGroupSize = float64(ps.GroupedCommits) / float64(n)
	}
	if db.pipeline != nil {
		db.pipeline.mu.Lock()
		ps.QueuedCommits = len(db.pipeline.queue)
		db.pipeline.mu.Unlock()
	}
	s := Stats{
		Begins:   db.begins.Load(),
		Commits:  db.commits.Load(),
		Aborts:   db.aborts.Load(),
		Reads:    db.reads.Load(),
		Cache:    db.cache.Stats(),
		Volume:   vs,
		Pipeline: ps,
		Trace:    db.tracer.Stats(),
		Waits:    waits,
		Wounds:   wounds,
		Knobs:    db.vol.Knobs().Snapshot(),
	}
	if db.ctl != nil {
		s.AutoTuneSteps = db.ctl.Steps()
		s.AutoTuneAdjusts = db.ctl.Adjusts()
	}
	return s
}

// Rows returns the approximate number of live rows.
func (db *DB) Rows() (uint64, error) {
	db.latch.RLock()
	defer db.latch.RUnlock()
	t := btree.View(&readStore{db: db})
	return t.Rows()
}

// readStore serves tree reads from the cache, falling back to the volume.
// Pages are not pinned: readers hold the tree latch, which excludes all
// mutation, so a page reference stays valid for the whole operation even
// if the cache evicts the entry.
type readStore struct {
	db  *DB
	ctx context.Context
}

func (s *readStore) Page(id core.PageID) (page.Page, error) {
	if p, ok := s.db.cache.Get(id); ok {
		s.db.cache.Unpin(id)
		return p, nil
	}
	sp := s.db.tracer.Start("read.page")
	sp.Annotate("page", id)
	p, _, err := s.db.vol.ReadPage(trace.NewContext(s.ctx, sp), id)
	sp.End()
	if err != nil {
		return nil, err
	}
	s.db.reads.Add(1)
	cached := s.db.cache.Put(id, p)
	s.db.cache.Unpin(id)
	return cached, nil
}

func (s *readStore) FreshPage(core.PageID) (page.Page, error) {
	return nil, errors.New("engine: fresh page on read path")
}

// writeStore serves the mutation path: every page is pinned until done()
// so that the op's own allocations cannot evict a page it is mutating
// before the new LSN is stamped.
type writeStore struct {
	db   *DB
	ctx  context.Context
	pins []core.PageID
}

func (s *writeStore) Page(id core.PageID) (page.Page, error) {
	if p, ok := s.db.cache.Get(id); ok {
		s.pins = append(s.pins, id)
		return p, nil
	}
	p, _, err := s.db.vol.ReadPage(s.ctx, id)
	if err != nil {
		return nil, err
	}
	s.db.reads.Add(1)
	cached := s.db.cache.Put(id, p)
	s.pins = append(s.pins, id)
	return cached, nil
}

func (s *writeStore) FreshPage(id core.PageID) (page.Page, error) {
	p := page.New(id)
	cached := s.db.cache.Put(id, p)
	s.pins = append(s.pins, id)
	return cached, nil
}

func (s *writeStore) done() {
	for _, id := range s.pins {
		s.db.cache.Unpin(id)
	}
	s.pins = s.pins[:0]
}

// snapStore reads pages as of a historical read point directly from the
// storage service, bypassing the cache (whose pages are newer). It backs
// consistent snapshot transactions.
type snapStore struct {
	db        *DB
	ctx       context.Context
	readPoint core.LSN
}

func (s *snapStore) Page(id core.PageID) (page.Page, error) {
	sp := s.db.tracer.Start("read.page")
	sp.Annotate("page", id)
	sp.Annotate("snapshot", s.readPoint)
	p, err := s.db.vol.ReadPageAt(trace.NewContext(s.ctx, sp), id, s.readPoint)
	sp.End()
	if err != nil {
		return nil, err
	}
	s.db.reads.Add(1)
	return p, nil
}

func (s *snapStore) FreshPage(core.PageID) (page.Page, error) {
	return nil, errors.New("engine: fresh page on snapshot path")
}

func cloneRecords(in []core.Record) []core.Record {
	out := make([]core.Record, len(in))
	for i := range in {
		out[i] = in[i].Clone()
	}
	return out
}
