package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestEvolverLazyUpgrade(t *testing.T) {
	_, db := testDB(t, Config{})
	e := NewEvolver(db)

	// v0 rows.
	tx := db.Begin()
	if err := e.Put(tx, []byte("u1"), []byte("ada")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// DDL: instant, touches no rows.
	v := e.Migrate(func(old []byte) []byte { return []byte(strings.ToUpper(string(old))) })
	if v != 1 || e.Version() != 1 {
		t.Fatalf("version %d", v)
	}

	// Reads decode through the history; the stored row stays at v0.
	tx = db.Begin()
	got, ok, err := e.Get(tx, []byte("u1"))
	if err != nil || !ok || string(got) != "ADA" {
		t.Fatalf("get: %q %v %v", got, ok, err)
	}
	ver, _, err := e.StoredVersion(tx, []byte("u1"))
	if err != nil || ver != 0 {
		t.Fatalf("stored version %d %v (lazy upgrade must not rewrite)", ver, err)
	}
	tx.Abort()

	// A write upgrades the row (modify-on-write).
	tx = db.Begin()
	if err := e.Put(tx, []byte("u1"), []byte("ada lovelace")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin()
	defer tx.Abort()
	ver, _, _ = e.StoredVersion(tx, []byte("u1"))
	if ver != 1 {
		t.Fatalf("version after write %d, want 1", ver)
	}
	got, _, _ = e.Get(tx, []byte("u1"))
	if string(got) != "ada lovelace" {
		t.Fatalf("current-version row double-upgraded: %q", got)
	}
}

func TestEvolverChainedMigrations(t *testing.T) {
	_, db := testDB(t, Config{})
	e := NewEvolver(db)
	tx := db.Begin()
	if err := e.Put(tx, []byte("r"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.Migrate(func(old []byte) []byte { return append(old, '1') })
	e.Migrate(func(old []byte) []byte { return append(old, '2') })
	e.Migrate(func(old []byte) []byte { return append(old, '3') })
	tx = db.Begin()
	defer tx.Abort()
	got, _, err := e.Get(tx, []byte("r"))
	if err != nil || string(got) != "x123" {
		t.Fatalf("chained decode %q %v", got, err)
	}
}

func TestEvolverScanDecodesMixedVersions(t *testing.T) {
	_, db := testDB(t, Config{})
	e := NewEvolver(db)
	tx := db.Begin()
	if err := e.Put(tx, []byte("a"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.Migrate(func(old []byte) []byte { return append([]byte("v1:"), old...) })
	tx = db.Begin()
	if err := e.Put(tx, []byte("b"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin()
	defer tx.Abort()
	vals := map[string]string{}
	if err := e.Scan(tx, nil, nil, func(k, v []byte) bool {
		vals[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if vals["a"] != "v1:old" || vals["b"] != "new" {
		t.Fatalf("scan vals %v", vals)
	}
}

func TestEvolverUpgradeAllBackfill(t *testing.T) {
	_, db := testDB(t, Config{})
	e := NewEvolver(db)
	const n = 100
	tx := db.Begin()
	for i := 0; i < n; i++ {
		if err := e.Put(tx, []byte(fmt.Sprintf("row%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.Migrate(func(old []byte) []byte { return append(old, '!') })

	upgraded, err := e.UpgradeAll(nil, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if upgraded != n {
		t.Fatalf("upgraded %d, want %d", upgraded, n)
	}
	tx = db.Begin()
	defer tx.Abort()
	for _, k := range []string{"row000", "row050", "row099"} {
		ver, _, err := e.StoredVersion(tx, []byte(k))
		if err != nil || ver != 1 {
			t.Fatalf("%s at version %d after backfill (%v)", k, ver, err)
		}
		v, _, _ := e.Get(tx, []byte(k))
		if string(v) != "v!" {
			t.Fatalf("%s = %q", k, v)
		}
	}
	// Idempotent.
	again, err := e.UpgradeAll(nil, nil, 16)
	if err != nil || again != 0 {
		t.Fatalf("second backfill touched %d rows (%v)", again, err)
	}
}

func TestEvolverFutureVersionRejected(t *testing.T) {
	_, db := testDB(t, Config{})
	e := NewEvolver(db)
	e.Migrate(func(old []byte) []byte { return old })
	tx := db.Begin()
	if err := e.Put(tx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// A second registry that never saw the migration reads the row.
	e2 := NewEvolver(db)
	tx = db.Begin()
	defer tx.Abort()
	if _, _, err := e2.Get(tx, []byte("k")); !errors.Is(err, ErrFutureSchema) {
		t.Fatalf("future version: %v", err)
	}
}
