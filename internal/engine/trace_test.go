package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/netsim"
	"aurora/internal/trace"
	"aurora/internal/volume"
)

// tracedDB builds a DB on a network with real (scaled-down) latencies and
// NVMe-modelled disks so stage durations are visible, sampling every commit.
func tracedDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	net := netsim.New(netsim.Config{IntraAZ: 200 * time.Microsecond, CrossAZ: time.Millisecond})
	f, err := volume.NewFleet(volume.FleetConfig{Name: "tr", Geometry: core.UniformGeometry(4), Net: net, Disk: disk.NVMe()})
	if err != nil {
		t.Fatal(err)
	}
	vol := volume.Bootstrap(f, volume.ClientConfig{WriterNode: "writer", WriterAZ: 0})
	if cfg.TraceEvery == 0 {
		cfg.TraceEvery = 1
	}
	db, err := Create(vol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func lastCommitTrace(t *testing.T, db *DB) *trace.Trace {
	t.Helper()
	var last *trace.Trace
	for _, tr := range db.Tracer().Traces() {
		if tr.RootName() == "commit" {
			last = tr
		}
	}
	if last == nil {
		t.Fatal("no commit trace collected")
	}
	return last
}

// TestCommitTraceCoversEveryStage is the acceptance check for the tracing
// tentpole: a sampled commit's trace must contain a span for every stage of
// the write path — latch, queue wait, framing, per-replica network + disk,
// quorum wait, VDL wait — and its critical path must decompose the measured
// end-to-end commit latency to within 10%.
func TestCommitTraceCoversEveryStage(t *testing.T) {
	db := tracedDB(t, Config{})

	tx := db.Begin()
	if err := tx.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	snap := lastCommitTrace(t, db).Snapshot()
	for _, stage := range []string{
		"commit.reserve", // back-pressure gate
		"commit.latch",   // exclusive latch wait
		"commit.apply",   // btree apply
		"commit.queue",   // apply→framer queue wait
		"group.frame",    // LSN allocation critical section
		"group.stamp",    // page LSN stamping + feed publish
		"group.ship",     // ship + quorum
		"batch.ship",     // one per framed batch
		"replica.flight", // per-replica delivery
		"net.req",        // network hop to the storage node
		"storage.ingest", // storage node receive
		"disk.write",     // hot-log write
		"disk.sync",      // fsync
		"storage.apply",  // ingest into log/gap tracker
		"net.ack",        // ack hop back
		"quorum.wait",    // 4/6 tracker resolution
		"vdl.wait",       // durability wait
	} {
		if snap.Find(stage) == nil {
			t.Errorf("commit trace missing stage %q", stage)
		}
	}
	if t.Failed() {
		t.Fatalf("trace:\n%s", lastCommitTrace(t, db).Render())
	}

	// The critical path sums exactly to the root span by construction; the
	// root span must itself cover the measured commit latency to within 10%
	// (plus a small absolute slack for scheduler noise outside the span).
	segs := trace.CriticalPath(snap)
	pathSum := trace.PathTotal(segs)
	if pathSum != snap.Duration() {
		t.Fatalf("critical path %v != root duration %v", pathSum, snap.Duration())
	}
	diff := elapsed - pathSum
	if diff < 0 {
		diff = -diff
	}
	if diff > elapsed/10+300*time.Microsecond {
		t.Fatalf("critical path %v vs measured commit %v: off by %v", pathSum, elapsed, diff)
	}
}

// TestGroupedCommitTracesDecompose drives concurrent committers so groups
// form, and checks that every sampled commit still decomposes: the group's
// adopter carries the detailed stage spans, every other member carries a
// group.inflight span covering its ride.
func TestGroupedCommitTracesDecompose(t *testing.T) {
	db := tracedDB(t, Config{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := db.Put([]byte(key), []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var adopters, riders int
	for _, tr := range db.Tracer().Traces() {
		if tr.RootName() != "commit" {
			continue
		}
		snap := tr.Snapshot()
		switch {
		case snap.Find("group.frame") != nil:
			adopters++
		case snap.Find("group.inflight") != nil:
			riders++
		default:
			t.Fatalf("commit trace carries neither detailed group spans nor group.inflight:\n%s", tr.Render())
		}
	}
	if adopters == 0 {
		t.Fatal("no adopter traces collected")
	}
	if db.Stats().Pipeline.MaxGroupSize > 1 && riders == 0 {
		t.Log("groups formed but every sampled member adopted; acceptable, just unlikely")
	}
	// Stage aggregation must have seen the whole write path.
	stages := map[string]bool{}
	for _, s := range db.Tracer().Stages() {
		stages[s.Name] = true
	}
	for _, want := range []string{"commit", "group.frame", "replica.flight", "quorum.wait", "vdl.wait"} {
		if !stages[want] {
			t.Errorf("stage aggregation missing %q", want)
		}
	}
}

// TestReadTraceHasPerAttemptSpans checks the read path: a snapshot read
// bypasses the cache, so it must produce a read.page trace with at least
// one read.attempt child carrying the network and storage-read spans.
func TestReadTraceHasPerAttemptSpans(t *testing.T) {
	db := tracedDB(t, Config{})
	if err := db.Put([]byte("r"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	snapTx := db.BeginSnapshot()
	defer snapTx.Abort()
	if _, ok, err := snapTx.Get([]byte("r")); err != nil || !ok {
		t.Fatalf("snapshot get: %v %v", ok, err)
	}

	var read *trace.Trace
	for _, tr := range db.Tracer().Traces() {
		if tr.RootName() == "read.page" {
			read = tr
		}
	}
	if read == nil {
		t.Fatal("no read.page trace collected")
	}
	snap := read.Snapshot()
	for _, stage := range []string{"read.attempt", "net.req", "storage.read", "net.resp"} {
		if snap.Find(stage) == nil {
			t.Fatalf("read trace missing %q:\n%s", stage, read.Render())
		}
	}
}

// TestTracingOffLeavesNoTraces confirms the default config samples nothing.
func TestTracingOffLeavesNoTraces(t *testing.T) {
	_, db := testDB(t, Config{})
	for i := 0; i < 20; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(db.Tracer().Traces()); got != 0 {
		t.Fatalf("sampling off but %d traces collected", got)
	}
	if st := db.Stats().Trace; st.Started != 0 {
		t.Fatalf("sampling off but %d traces started", st.Started)
	}
}
