package engine

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"time"

	"aurora/internal/btree"
	"aurora/internal/core"
	"aurora/internal/trace"
)

// Tx is a transaction. Writer transactions buffer their writes privately
// under exclusive row locks (2PL on the write set) and apply them to the
// tree as a single mini-transaction at commit — so pages, the log, and
// hence replicas and recovery only ever contain committed data. Snapshot
// transactions are read-only views at a fixed read point served straight
// from the storage service (§4.2.3).
type Tx struct {
	db       *DB
	ctx      context.Context // bounds this transaction's reads
	id       uint64
	writes   map[string]writeOp
	order    []string
	snapshot bool
	point    core.LSN
	release  func()
	done     bool
}

type writeOp struct {
	val []byte
	del bool
}

// Begin starts a read-committed writer transaction.
func (db *DB) Begin() *Tx { return db.BeginCtx(context.Background()) }

// BeginCtx starts a writer transaction whose reads are bounded by ctx.
// The commit acknowledgement wait takes its own ctx (CommitCtx).
func (db *DB) BeginCtx(ctx context.Context) *Tx {
	db.begins.Add(1)
	return &Tx{db: db, ctx: ctx, id: db.ids.Next(), writes: make(map[string]writeOp)}
}

// BeginSnapshot starts a read-only transaction pinned to the current VDL.
// Its read point holds the volume's low-water mark down until the
// transaction finishes, keeping the page versions it needs alive on the
// storage nodes.
func (db *DB) BeginSnapshot() *Tx { return db.BeginSnapshotCtx(context.Background()) }

// BeginSnapshotCtx is BeginSnapshot with the reads bounded by ctx.
func (db *DB) BeginSnapshotCtx(ctx context.Context) *Tx {
	db.begins.Add(1)
	point, release := db.vol.RegisterReadPoint()
	return &Tx{db: db, ctx: ctx, id: db.ids.Next(), snapshot: true, point: point, release: release}
}

// ReadPoint returns the snapshot's read point (ZeroLSN for writer txs).
func (tx *Tx) ReadPoint() core.LSN { return tx.point }

// Get returns the value for key as seen by this transaction.
func (tx *Tx) Get(key []byte) ([]byte, bool, error) {
	if tx.done {
		return nil, false, ErrTxDone
	}
	if tx.snapshot {
		t := btree.View(&snapStore{db: tx.db, ctx: tx.ctx, readPoint: tx.point})
		return t.Get(key)
	}
	if w, ok := tx.writes[string(key)]; ok {
		if w.del {
			return nil, false, nil
		}
		return append([]byte(nil), w.val...), true, nil
	}
	tx.db.latch.RLock()
	defer tx.db.latch.RUnlock()
	t := btree.View(&readStore{db: tx.db, ctx: tx.ctx})
	return t.Get(key)
}

// Put buffers an insert/update, taking the exclusive row lock. A lock
// timeout aborts the transaction.
func (tx *Tx) Put(key, val []byte) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.snapshot {
		return ErrReadOnlyTx
	}
	if len(key) == 0 {
		return btree.ErrEmptyKey
	}
	if len(key) > btree.MaxKey {
		return btree.ErrKeyTooLarge
	}
	if len(val) > btree.MaxValue {
		return btree.ErrValueTooLarge
	}
	if err := tx.lockRow(key); err != nil {
		return err
	}
	k := string(key)
	if _, seen := tx.writes[k]; !seen {
		tx.order = append(tx.order, k)
	}
	// Ownership: val is BORROWED until the transaction resolves — the engine
	// does not copy it. Callers must not mutate the backing array between
	// Put and Commit/Rollback; the B+-tree apply path copies the bytes into
	// page images (and the framer copies them into the wire arena), so
	// nothing references val after commit. Get's read-your-writes path
	// copies out, so a caller mutating a value returned by Get cannot alias
	// this buffer either.
	tx.writes[k] = writeOp{val: val}
	return nil
}

// Delete buffers a deletion, taking the exclusive row lock.
func (tx *Tx) Delete(key []byte) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.snapshot {
		return ErrReadOnlyTx
	}
	if len(key) == 0 {
		return btree.ErrEmptyKey
	}
	if err := tx.lockRow(key); err != nil {
		return err
	}
	k := string(key)
	if _, seen := tx.writes[k]; !seen {
		tx.order = append(tx.order, k)
	}
	tx.writes[k] = writeOp{del: true}
	return nil
}

// lockRow acquires the row lock, aborting the transaction on timeout so
// deadlocks resolve (the caller sees the error and must not reuse the tx).
func (tx *Tx) lockRow(key []byte) error {
	if err := tx.db.locks.Acquire(tx.id, string(key)); err != nil {
		tx.finish(false)
		return fmt.Errorf("txn %d key %q: %w", tx.id, key, err)
	}
	return nil
}

// Scan visits rows with from <= key < to in key order, overlaying this
// transaction's own uncommitted writes on the committed tree state.
func (tx *Tx) Scan(from, to []byte, fn func(key, val []byte) bool) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.snapshot {
		t := btree.View(&snapStore{db: tx.db, ctx: tx.ctx, readPoint: tx.point})
		return t.Scan(from, to, fn)
	}

	// Pending write keys in range, sorted.
	var pend []string
	for k := range tx.writes {
		bk := []byte(k)
		if from != nil && bytes.Compare(bk, from) < 0 {
			continue
		}
		if to != nil && bytes.Compare(bk, to) >= 0 {
			continue
		}
		pend = append(pend, k)
	}
	sort.Strings(pend)
	pi := 0
	stopped := false

	emitPending := func(upTo []byte) bool {
		for pi < len(pend) && (upTo == nil || bytes.Compare([]byte(pend[pi]), upTo) < 0) {
			w := tx.writes[pend[pi]]
			if !w.del {
				if !fn([]byte(pend[pi]), w.val) {
					return false
				}
			}
			pi++
		}
		return true
	}

	tx.db.latch.RLock()
	t := btree.View(&readStore{db: tx.db, ctx: tx.ctx})
	err := t.Scan(from, to, func(k, v []byte) bool {
		if !emitPending(k) {
			stopped = true
			return false
		}
		if w, ok := tx.writes[string(k)]; ok {
			if pi < len(pend) && pend[pi] == string(k) {
				pi++
			}
			if w.del {
				return true
			}
			if !fn(k, w.val) {
				stopped = true
				return false
			}
			return true
		}
		if !fn(k, v) {
			stopped = true
			return false
		}
		return true
	})
	tx.db.latch.RUnlock()
	if err != nil {
		return err
	}
	if !stopped {
		emitPending(nil)
	}
	return nil
}

// Commit applies the write set to the tree as one mini-transaction, hands
// its records to the commit pipeline, and returns once the commit is
// durable (VDL has reached the commit record). The calling goroutine
// blocks — that is the client waiting for its commit acknowledgement — but
// no engine thread or latch is held while waiting, and no latch is held
// across framing or LAL throttling either: the exclusive latch covers only
// the btree apply (§4.2.2, see the pipeline stages in pipeline.go).
func (tx *Tx) Commit() error { return tx.CommitCtx(context.Background()) }

// CommitCtx is Commit with the acknowledgement wait bounded by ctx. When
// the deadline fires after the write set is applied and enqueued, the
// commit is NOT withdrawn — it still frames, ships, and becomes durable;
// only this waiter detaches, returning an error wrapping
// ErrDeadlineExceeded. A caller seeing that error must treat the
// transaction's outcome as unknown-but-probably-committed (§DESIGN.md,
// "Deadlines & cancellation"). A deadline that fires before the apply is a
// clean abort.
func (tx *Tx) CommitCtx(ctx context.Context) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.snapshot || len(tx.writes) == 0 {
		tx.finish(true)
		return nil
	}
	if err := ctx.Err(); err != nil {
		tx.finish(false)
		return fmt.Errorf("txn %d: %w: %w", tx.id, ErrDeadlineExceeded, err)
	}
	if tx.db.Degraded() {
		tx.finish(false)
		return ErrDegraded
	}
	if tx.db.cfg.SyncCommit {
		return tx.commitSync()
	}
	return tx.commitPipelined(ctx)
}

// apply materializes the write set into the tree under the exclusive
// latch, which the caller holds. On error the pages are rolled back to
// their before-images and the pins released; the caller still owns the
// latch.
func (tx *Tx) apply(ws *writeStore, rec *btree.Recorder) (*core.MTR, error) {
	t := btree.View(ws)
	for _, k := range tx.order {
		w := tx.writes[k]
		var err error
		if w.del {
			_, err = t.Delete(rec, []byte(k))
		} else {
			err = t.Put(rec, []byte(k), w.val)
		}
		if err != nil {
			rec.Rollback()
			ws.done()
			return nil, fmt.Errorf("txn %d apply: %w", tx.id, err)
		}
	}
	m := &core.MTR{Txn: tx.id}
	if tx.db.cfg.FullPageWrites {
		rec.AppendFullPages(m, tx.db.vol.PGOf)
	} else if err := rec.AppendRecords(m, tx.db.vol.PGOf); err != nil {
		rec.Rollback()
		ws.done()
		return nil, err
	}
	m.AddMeta(core.RecTxnCommit, tx.db.vol.PGOf(btree.MetaPageID))
	return m, nil
}

// commitPipelined is the default commit path: stage 1 of the pipeline.
// Back-pressure is taken in reserve, before any latch; the exclusive latch
// covers only the apply and a pointer enqueue; framing, shipping and
// durability happen in the pipeline's own stages while this goroutine
// waits on its completion channel.
func (tx *Tx) commitPipelined(ctx context.Context) error {
	start := time.Now()
	p := tx.db.pipeline
	root := tx.db.tracer.Start("commit")
	root.Annotate("txn", tx.id)
	rsp := root.Child("commit.reserve")
	if err := p.reserve(ctx); err != nil {
		rsp.End()
		root.End()
		tx.finish(false)
		return fmt.Errorf("txn %d: %w", tx.id, err)
	}
	rsp.End()
	lsp := root.Child("commit.latch")
	tx.db.latch.Lock()
	lsp.End()
	ws := &writeStore{db: tx.db, ctx: tx.db.rootCtx}
	rec := btree.NewRecorder()
	asp := root.Child("commit.apply")
	m, err := tx.apply(ws, rec)
	asp.End()
	if err != nil {
		tx.db.latch.Unlock()
		p.unreserve()
		root.Annotate("err", err)
		root.End()
		tx.finish(false)
		return err
	}
	req := &commitReq{txn: tx.id, mtr: m, rec: rec, ws: ws, errc: make(chan error, 1),
		sp: root, queueSp: root.Child("commit.queue")}
	// Enqueue under the latch: queue order is apply order, so the framer
	// assigns LSNs in exactly the order the tree changed.
	p.enqueue(req)
	tx.db.latch.Unlock()

	select {
	case err := <-req.errc:
		if err != nil {
			root.Annotate("err", err)
			root.End()
			tx.finish(false)
			return fmt.Errorf("txn %d: %w (%v)", tx.id, ErrDegraded, err)
		}
	case <-ctx.Done():
		// Applied and enqueued: the commit cannot be withdrawn. The group
		// still frames and ships; only this waiter detaches. A detached
		// goroutine drains the completion channel and ends the root span —
		// safe because the pipeline ends every child span before the errc
		// send, and span mutation is serialized on the owning trace.
		root.Annotate("deadline", ctx.Err())
		go func() {
			<-req.errc
			root.End()
		}()
		tx.finish(true)
		return fmt.Errorf("txn %d: %w: %w", tx.id, ErrDeadlineExceeded, ctx.Err())
	}
	root.End()
	tx.db.commitLat.ObserveDuration(time.Since(start))
	tx.finish(true)
	return nil
}

// commitSync is the synchronous-commit ablation: the worker holds the
// engine's exclusive latch through framing, quorum shipping and
// durability, forcing group size 1 — the stall the pipeline exists to
// remove. One feed event carries the records together with the final VDL,
// so the commit publishes exactly once.
func (tx *Tx) commitSync() error {
	start := time.Now()
	root := tx.db.tracer.Start("commit")
	root.Annotate("txn", tx.id)
	root.Annotate("sync", true)
	lsp := root.Child("commit.latch")
	tx.db.latch.Lock()
	lsp.End()
	ws := &writeStore{db: tx.db, ctx: tx.db.rootCtx}
	rec := btree.NewRecorder()
	asp := root.Child("commit.apply")
	m, err := tx.apply(ws, rec)
	asp.End()
	if err != nil {
		tx.db.latch.Unlock()
		root.End()
		tx.finish(false)
		return err
	}
	// The sync ablation holds the latch throughout, so it is deliberately
	// deadline-oblivious past this point: abandoning mid-ship would leave
	// applied-but-unframed tree state. It runs under the instance root.
	fsp := root.Child("group.frame")
	pending, err := tx.db.vol.FrameMTR(tx.db.rootCtx, m)
	fsp.End()
	if err != nil {
		rec.Rollback()
		ws.done()
		tx.db.latch.Unlock()
		root.End()
		tx.finish(false)
		return err
	}
	ssp := root.Child("group.stamp")
	rec.StampLSNs(pending.LastLSNFor)
	ws.done()
	ssp.End()
	tx.db.groupSizes.Observe(1)
	shipSp := root.Child("group.ship")
	err = pending.Ship(trace.NewContext(tx.db.rootCtx, shipSp))
	shipSp.End()
	if err == nil {
		vsp := root.Child("vdl.wait")
		tx.db.vol.WaitDurable(pending.CPL())
		vsp.End()
	}
	pending.Release()
	tx.db.latch.Unlock()
	if err != nil {
		root.Annotate("err", err)
		root.End()
		tx.db.degraded.Store(true)
		tx.finish(false)
		return fmt.Errorf("txn %d: %w (%v)", tx.id, ErrDegraded, err)
	}
	tx.db.feed.publish(Event{Records: cloneRecords(m.Records), VDL: tx.db.vol.VDL()})
	root.End()
	tx.db.commitLat.ObserveDuration(time.Since(start))
	tx.finish(true)
	return nil
}

// Abort discards the write set and releases the transaction's locks.
// Nothing was ever applied to the tree or the log, so there is nothing to
// undo.
func (tx *Tx) Abort() {
	if tx.done {
		return
	}
	tx.finish(false)
}

func (tx *Tx) finish(committed bool) {
	tx.done = true
	if tx.release != nil {
		tx.release()
	}
	tx.db.locks.ReleaseAll(tx.id)
	if committed {
		tx.db.commits.Add(1)
	} else {
		tx.db.aborts.Add(1)
	}
}

// Convenience autocommit helpers.

// Put writes one row in its own transaction.
func (db *DB) Put(key, val []byte) error {
	tx := db.Begin()
	if err := tx.Put(key, val); err != nil {
		return err
	}
	return tx.Commit()
}

// Get reads one row (read committed).
func (db *DB) Get(key []byte) ([]byte, bool, error) {
	return db.GetCtx(context.Background(), key)
}

// GetCtx reads one row (read committed) with the read bounded by ctx.
func (db *DB) GetCtx(ctx context.Context, key []byte) ([]byte, bool, error) {
	tx := db.BeginCtx(ctx)
	defer tx.Abort()
	return tx.Get(key)
}

// Delete removes one row in its own transaction.
func (db *DB) Delete(key []byte) error {
	tx := db.Begin()
	if err := tx.Delete(key); err != nil {
		return err
	}
	return tx.Commit()
}
