package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Evolver implements §7.3's efficient online DDL. Rails-style applications
// issue frequent schema migrations; copying whole tables per migration is
// untenable. Instead, every stored row carries its schema version; a DDL
// registers a migration and returns instantly regardless of table size;
// reads decode any row on demand through its schema history; and writes
// lazily upgrade rows to the latest schema (modify-on-write).
type Evolver struct {
	db *DB
	mu sync.RWMutex
	// migrations[i] upgrades a row from version i to version i+1.
	migrations []func(old []byte) []byte
}

// ErrFutureSchema is returned when a row claims a version newer than any
// registered migration — corruption or a registry that lost state.
var ErrFutureSchema = errors.New("engine: row from a future schema version")

// NewEvolver wraps a database with a schema registry at version 0.
func NewEvolver(db *DB) *Evolver { return &Evolver{db: db} }

// Version returns the current schema version.
func (e *Evolver) Version() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.migrations)
}

// Migrate registers a migration from the current version to the next and
// returns the new version. It is O(1): no row is touched now — this is the
// property that lets a DBA absorb "a few dozen migrations a week" (§7.3).
func (e *Evolver) Migrate(up func(old []byte) []byte) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.migrations = append(e.migrations, up)
	return len(e.migrations)
}

// encode stamps a value with the current schema version.
func (e *Evolver) encode(val []byte) []byte {
	v := e.Version()
	buf := make([]byte, binary.MaxVarintLen32+len(val))
	n := binary.PutUvarint(buf, uint64(v))
	copy(buf[n:], val)
	return buf[:n+len(val)]
}

// decode returns the row's payload upgraded to the current version, plus
// the version it was stored at.
func (e *Evolver) decode(stored []byte) ([]byte, int, error) {
	ver64, n := binary.Uvarint(stored)
	if n <= 0 {
		return nil, 0, errors.New("engine: row missing schema version")
	}
	ver := int(ver64)
	payload := stored[n:]
	e.mu.RLock()
	defer e.mu.RUnlock()
	if ver > len(e.migrations) {
		return nil, ver, fmt.Errorf("%w: row v%d, registry v%d", ErrFutureSchema, ver, len(e.migrations))
	}
	out := append([]byte(nil), payload...)
	for i := ver; i < len(e.migrations); i++ {
		out = e.migrations[i](out)
	}
	return out, ver, nil
}

// Put writes a row at the current schema version within tx — writing is
// what upgrades a row (modify-on-write).
func (e *Evolver) Put(tx *Tx, key, val []byte) error {
	return tx.Put(key, e.encode(val))
}

// Get reads a row within tx, decoding through its schema history. The
// stored row is not rewritten: upgrades stay lazy.
func (e *Evolver) Get(tx *Tx, key []byte) ([]byte, bool, error) {
	stored, ok, err := tx.Get(key)
	if err != nil || !ok {
		return nil, ok, err
	}
	out, _, err := e.decode(stored)
	if err != nil {
		return nil, true, err
	}
	return out, true, nil
}

// StoredVersion reports which schema version a row currently sits at
// (observability: how far lazy upgrading has progressed).
func (e *Evolver) StoredVersion(tx *Tx, key []byte) (int, bool, error) {
	stored, ok, err := tx.Get(key)
	if err != nil || !ok {
		return 0, ok, err
	}
	ver, n := binary.Uvarint(stored)
	if n <= 0 {
		return 0, true, errors.New("engine: row missing schema version")
	}
	return int(ver), true, nil
}

// Scan visits rows in range, each decoded through its history.
func (e *Evolver) Scan(tx *Tx, from, to []byte, fn func(key, val []byte) bool) error {
	var decodeErr error
	err := tx.Scan(from, to, func(k, stored []byte) bool {
		out, _, err := e.decode(stored)
		if err != nil {
			decodeErr = fmt.Errorf("key %q: %w", k, err)
			return false
		}
		return fn(k, out)
	})
	if decodeErr != nil {
		return decodeErr
	}
	return err
}

// UpgradeAll eagerly rewrites every row in range at the latest version —
// the optional backfill an operator may run in quiet hours. It processes
// rows in batches of batch per transaction and returns how many rows were
// upgraded.
func (e *Evolver) UpgradeAll(from, to []byte, batch int) (int, error) {
	if batch <= 0 {
		batch = 128
	}
	current := e.Version()
	upgraded := 0
	cursor := from
	for {
		type rowKV struct{ k, v []byte }
		var stale []rowKV
		tx := e.db.Begin()
		err := tx.Scan(cursor, to, func(k, stored []byte) bool {
			ver, n := binary.Uvarint(stored)
			if n > 0 && int(ver) < current {
				out, _, derr := e.decode(stored)
				if derr == nil {
					stale = append(stale, rowKV{append([]byte(nil), k...), out})
				}
			}
			cursor = append(append([]byte(nil), k...), 0) // resume after k
			return len(stale) < batch
		})
		tx.Abort()
		if err != nil {
			return upgraded, err
		}
		if len(stale) == 0 {
			return upgraded, nil
		}
		wtx := e.db.Begin()
		for _, r := range stale {
			if err := e.Put(wtx, r.k, r.v); err != nil {
				wtx.Abort()
				return upgraded, err
			}
		}
		if err := wtx.Commit(); err != nil {
			return upgraded, err
		}
		upgraded += len(stale)
	}
}
