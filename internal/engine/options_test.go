package engine

import (
	"context"
	"fmt"
	"testing"

	"aurora/internal/core"
	"aurora/internal/page"
	"aurora/internal/volume"
)

func TestSyncCommitOptionCorrectness(t *testing.T) {
	_, db := testDB(t, Config{SyncCommit: true})
	for i := 0; i < 20; i++ {
		if err := db.Put([]byte(fmt.Sprintf("s%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if db.VDL() == 0 {
		t.Fatal("VDL did not advance")
	}
	for i := 0; i < 20; i += 5 {
		v, ok, err := db.Get([]byte(fmt.Sprintf("s%02d", i)))
		if err != nil || !ok || string(v) != "v" {
			t.Fatalf("get: %q %v %v", v, ok, err)
		}
	}
	// Snapshot reads work under sync commit too.
	snap := db.BeginSnapshot()
	defer snap.Abort()
	if _, ok, err := snap.Get([]byte("s00")); err != nil || !ok {
		t.Fatalf("snapshot get: %v %v", ok, err)
	}
}

func TestFullPageWritesOptionShipsImages(t *testing.T) {
	f, db := testDB(t, Config{FullPageWrites: true})
	events, cancel := db.Subscribe()
	defer cancel()
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// The stream must contain full page-image records, each a whole
	// payload, instead of small deltas.
	sawInit := false
	for !sawInit {
		ev := <-events
		for _, r := range ev.Records {
			if r.Type == core.RecPageInit {
				if len(r.Data) != page.PayloadSize {
					t.Fatalf("init record %d bytes, want full payload %d", len(r.Data), page.PayloadSize)
				}
				sawInit = true
			}
			if r.Type == core.RecPageDelta {
				t.Fatal("delta record under FullPageWrites")
			}
		}
	}
	// Data still correct, including from cold storage.
	db.Cache().Invalidate()
	v, ok, err := db.Get([]byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("cold get: %q %v %v", v, ok, err)
	}
	_ = f
}

func TestFullPageWritesSurviveRecovery(t *testing.T) {
	f, db := testDB(t, Config{FullPageWrites: true})
	for i := 0; i < 15; i++ {
		if err := db.Put([]byte(fmt.Sprintf("fp%02d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	db.Crash()
	db2, _, err := Recover(context.Background(), f, volume.ClientConfig{WriterNode: "w2", WriterAZ: 0}, Config{FullPageWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 15; i += 3 {
		v, ok, err := db2.Get([]byte(fmt.Sprintf("fp%02d", i)))
		if err != nil || !ok || string(v) != "x" {
			t.Fatalf("get after recovery: %q %v %v", v, ok, err)
		}
	}
}

func TestFeedMultipleSubscribers(t *testing.T) {
	_, db := testDB(t, Config{})
	ch1, cancel1 := db.Subscribe()
	ch2, cancel2 := db.Subscribe()
	defer cancel2()
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	saw := func(ch <-chan Event) bool {
		for ev := range ch {
			for _, r := range ev.Records {
				if r.Type == core.RecTxnCommit {
					return true
				}
			}
		}
		return false
	}
	if !saw(limitChan(ch1, 10)) {
		t.Fatal("subscriber 1 missed the commit")
	}
	// Cancel one subscriber; the other keeps receiving.
	cancel1()
	cancel1() // idempotent
	if err := db.Put([]byte("k2"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if !saw(limitChan(ch2, 20)) {
		t.Fatal("subscriber 2 missed events after the other cancelled")
	}
}

// limitChan copies up to n events so range loops terminate.
func limitChan(ch <-chan Event, n int) <-chan Event {
	out := make(chan Event, n)
	go func() {
		defer close(out)
		for i := 0; i < n; i++ {
			ev, ok := <-ch
			if !ok {
				return
			}
			out <- ev
		}
	}()
	return out
}
