package engine

import (
	"context"
	"fmt"
	"sync"

	"aurora/internal/control"
	"aurora/internal/core"
	"aurora/internal/trace"
	"aurora/internal/volume"
)

// This file implements the staged group-commit pipeline (§4.2 taken to its
// conclusion): workers apply, hand their records to the log, and commits
// complete asynchronously as the VDL advances — with no synchronous point
// under the engine latch.
//
//	Stage 1 — apply.   Tx.Commit reserves a pipeline slot (the only place a
//	    committer can stall on back-pressure, and it holds no latch there),
//	    applies its write set under a short exclusive latch, enqueues its
//	    MTR, and releases the latch before any framing or LAL throttling.
//	    Enqueue happens under the latch so queue order always equals apply
//	    order — the log must replay in the order the tree changed.
//	Stage 2 — framing. A dedicated framer goroutine drains the queue and
//	    frames whole groups of MTRs through Client.FrameMTRs: one
//	    LSN-allocation/ordering critical section amortized over every
//	    committer that arrived while the previous group was in flight.
//	    LAL back-pressure now stalls only this goroutine (the queue bound
//	    propagates it to reserve), never a latch holder — so readers keep
//	    running while storage catches up.
//	Stage 3 — completion. A per-group watcher ships the merged batches and
//	    subscribes to the VDL via DurableChan keyed by the group's highest
//	    CPL; each committer just waits on its request's channel. Feed
//	    events for the whole group are published once.
type commitPipeline struct {
	db *DB

	mu       sync.Mutex
	cond     *sync.Cond // wakes the framer (work) and reservers (space)
	queue    []*commitReq
	reserved int // slots promised to committers not yet enqueued
	depth    int
	closed   bool

	// groupKnob and inflKnob are the pipeline's batching budgets, owned by
	// the control plane: groupKnob caps commits per framing critical
	// section (Config.MaxCommitGroup is its static default), inflKnob caps
	// framed groups awaiting durability before the framer pauses
	// (Config.MaxInflightGroups; previously a hardcoded constant). The
	// framer re-reads them every iteration — one atomic load each — so the
	// controller's adjustments take effect on the next group without any
	// synchronization with the hot path. Under sustained load pausing at
	// the in-flight bound builds queue between frames so groups actually
	// amortize: a commit's durability needs every earlier LSN durable
	// anyway (the VDL is contiguous), so holding its frame behind
	// in-flight groups does not delay its ack, it only widens the batch.
	groupKnob *control.Knob
	inflKnob  *control.Knob

	// maxGroupRecs caps a group's total record count. An Alloc larger than
	// the LAL window can never be granted (the VDL cannot advance past the
	// group's own unshipped records), so groups stay well inside it; the
	// quarter-window default keeps several groups pipelined inside one LAL.
	maxGroupRecs int

	// inflight counts framed groups whose watcher has not yet completed.
	inflight int

	framerDone chan struct{}
	ships      sync.WaitGroup
}

// commitReq is one transaction's passage through the pipeline: the MTR to
// frame, the recorder whose pages need LSN stamps, the write store whose
// pins are released once stamped, and the channel the committer waits on.
type commitReq struct {
	txn  uint64
	mtr  *core.MTR
	rec  stamper
	ws   *writeStore
	errc chan error // buffered(1): framing/ship error, or nil once durable

	// Tracing (nil unless this commit won the sampling lottery). sp is the
	// commit root; queueSp covers enqueue→dequeue; groupSp is either the
	// detailed group spans' parent (the group's adopted trace) or a single
	// group.inflight span for sampled commits riding another group member's
	// detailed trace.
	sp      *trace.Span
	queueSp *trace.Span
	groupSp *trace.Span
}

// stamper is the slice of btree.Recorder the pipeline needs (page LSN
// stamping after framing).
type stamper interface {
	StampLSNs(lastFor func(core.PageID) core.LSN)
}

func newCommitPipeline(db *DB) *commitPipeline {
	budget := int(db.vol.LAL() / 4)
	if budget < 1 {
		budget = 1
	}
	p := &commitPipeline{
		db:           db,
		depth:        db.cfg.CommitQueueDepth,
		maxGroupRecs: budget,
		framerDone:   make(chan struct{}),
	}
	// The batching budgets register in the volume client's knob panel so
	// one controller (and one Stats snapshot) owns every latency knob. The
	// knob bounds widen to admit an out-of-range configured value — an
	// ablation sweeping MaxCommitGroup=1 must get exactly 1, not a clamp.
	p.groupKnob = registerKnob(db.vol.Knobs(), control.KnobCommitGroup,
		int64(db.cfg.MaxCommitGroup), control.MinCommitGroup, control.MaxCommitGroup)
	p.inflKnob = registerKnob(db.vol.Knobs(), control.KnobInflightGroups,
		int64(db.cfg.MaxInflightGroups), control.MinInflightGroups, control.MaxInflightGroups)
	p.cond = sync.NewCond(&p.mu)
	go p.framerLoop()
	return p
}

// registerKnob registers a knob whose bounds are widened to include the
// configured default, then resets it to that default — an engine reopened
// on a client whose panel already holds the knob must start from its own
// config, not the previous engine's steered value.
func registerKnob(panel *control.Panel, name string, def, min, max int64) *control.Knob {
	if def < min {
		min = def
	}
	if def > max {
		max = def
	}
	k := panel.Register(name, def, min, max)
	k.Set(def)
	return k
}

// groupMax returns the current commits-per-group budget.
func (p *commitPipeline) groupMax() int { return int(p.groupKnob.Load()) }

// maxInflight returns the current framed-groups-in-flight budget.
func (p *commitPipeline) maxInflight() int { return int(p.inflKnob.Load()) }

// reserve blocks until the pipeline has room for one more commit (the
// back-pressure point: when the framer is stalled on the LAL the queue
// fills and new committers wait HERE, holding no latch). It returns
// ErrClosed once the pipeline shuts down, and a deadline error when ctx
// fires first — nothing has been applied yet, so this is a clean abort.
func (p *commitPipeline) reserve(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	for !p.closed && ctx.Err() == nil && len(p.queue)+p.reserved >= p.depth {
		p.cond.Wait()
	}
	if p.closed {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	}
	p.reserved++
	return nil
}

// unreserve returns a reservation unused (the commit failed during apply).
func (p *commitPipeline) unreserve() {
	p.mu.Lock()
	p.reserved--
	p.cond.Broadcast()
	p.mu.Unlock()
}

// enqueue converts a reservation into a queued request. It is called with
// the engine latch held, which is what guarantees framing order equals
// apply order; the critical section here is a pointer append.
func (p *commitPipeline) enqueue(req *commitReq) {
	p.mu.Lock()
	p.reserved--
	p.queue = append(p.queue, req)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// stop shuts the pipeline down. Queued and reserved committers are
// released with an error by the framer draining the queue against the
// (now closed) volume client. stop does not wait; callers that need
// quiescence call wait after closing the volume client so nothing can
// block on the LAL.
func (p *commitPipeline) stop() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// wait blocks until the framer has drained and every in-flight group
// watcher has finished. Call only after stop plus volume close/crash.
func (p *commitPipeline) wait() {
	<-p.framerDone
	p.ships.Wait()
}

// framerLoop is stage 2: it drains the queue in arrival order, frames each
// drained group through one FrameMTRs call, stamps page LSNs, publishes
// the group's feed event, and hands the group to a completion watcher.
func (p *commitPipeline) framerLoop() {
	defer close(p.framerDone)
	for {
		p.mu.Lock()
		// Wait for work; once the in-flight bound is hit, also wait for a
		// group to complete (except at shutdown, where the queue must drain
		// unconditionally so every committer is released).
		for !p.closed && (len(p.queue) == 0 || p.inflight >= p.maxInflight()) {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		// Take the longest queue prefix within both the group-size cap and
		// the record budget; always take at least one commit (a single MTR
		// above the budget still frames alone — only the full LAL window
		// is a hard wall).
		n, recs := 0, 0
		maxGroup := p.groupMax()
		for n < len(p.queue) && n < maxGroup {
			r := len(p.queue[n].mtr.Records)
			if n > 0 && recs+r > p.maxGroupRecs {
				break
			}
			n++
			recs += r
		}
		// The group slice escapes to the completion watcher, so it is copied
		// out; the queue itself compacts in place (no per-group reallocation),
		// with vacated tail slots cleared so completed requests are not pinned.
		group := append(make([]*commitReq, 0, n), p.queue[:n]...)
		m := copy(p.queue, p.queue[n:])
		for i := m; i < len(p.queue); i++ {
			p.queue[i] = nil
		}
		p.queue = p.queue[:m]
		p.cond.Broadcast() // queue space freed: wake reservers
		p.mu.Unlock()

		p.frameGroup(group)
	}
}

// frameGroup frames one group of commits and launches its completion
// watcher. On a framing error (only possible when the volume client is
// closing) the group's committers are failed and writes are suspended —
// the applied-but-unframed tree state must not be shipped piecemeal later.
func (p *commitPipeline) frameGroup(group []*commitReq) {
	db := p.db
	ms := make([]*core.MTR, len(group))
	for i, req := range group {
		ms[i] = req.mtr
	}
	// The group adopts the first sampled member's trace: its spans carry
	// the per-stage breakdown (framing, stamping, ship, VDL wait) for the
	// whole group. Other sampled members get one group.inflight span, so
	// their critical path still decomposes their full latency without
	// duplicating every flight span on each trace.
	var gsp *trace.Span
	for _, req := range group {
		req.queueSp.End()
		if req.sp == nil {
			continue
		}
		if gsp == nil {
			gsp = req.sp
			req.groupSp = gsp
		} else {
			inflight := req.sp.Child("group.inflight")
			inflight.Annotate("adopted_by", gsp.TraceID())
			req.groupSp = inflight
		}
	}
	fsp := gsp.Child("group.frame")
	fsp.Annotate("mtrs", len(group))
	gw, err := db.vol.FrameMTRs(db.rootCtx, ms)
	if err != nil {
		fsp.End()
		db.degraded.Store(true)
		for _, req := range group {
			req.ws.done()
			req.errc <- err
		}
		return
	}
	fsp.End()
	// Stamp cached page LSNs while the pages are still pinned (the pins
	// keep the eviction scan away from the header bytes being written),
	// then release the pins: from here the VDL rule governs eviction.
	ssp := gsp.Child("group.stamp")
	for _, req := range group {
		req.rec.StampLSNs(req.mtr.LastLSNFor)
	}
	// Record clones for the feed are built only when someone is listening:
	// with no subscribers the clones would be dropped by the pump anyway,
	// and the steady-state commit path stays allocation-free.
	var recs []core.Record
	if db.feed.active() {
		for _, req := range group {
			recs = append(recs, cloneRecords(req.mtr.Records)...)
		}
	}
	for _, req := range group {
		req.ws.done()
	}
	// One feed event for the framed group: records in LSN order, VDL as of
	// publication. The durability advancement event follows once, from the
	// watcher — not once per commit.
	db.feed.publish(Event{Records: recs, VDL: db.vol.VDL()})
	db.groupSizes.Observe(int64(len(group)))
	ssp.End()

	p.mu.Lock()
	p.inflight++
	p.mu.Unlock()
	p.ships.Add(1)
	go p.completeGroup(group, gw, gsp)
}

// completeGroup is stage 3: ship the group's batches, wait for the VDL to
// pass the group's highest CPL, publish the durability event, and release
// every committer. A write-quorum failure suspends writes and fails the
// whole group — identical semantics to the unpipelined path.
func (p *commitPipeline) completeGroup(group []*commitReq, gw *volume.GroupWrite, gsp *trace.Span) {
	defer p.ships.Done()
	defer func() {
		p.mu.Lock()
		p.inflight--
		p.cond.Broadcast()
		p.mu.Unlock()
	}()
	db := p.db
	// Group shipping runs under the instance root, never a commit deadline:
	// a detached committer must not stop the group from becoming durable.
	shipSp := gsp.Child("group.ship")
	if err := gw.Ship(trace.NewContext(db.rootCtx, shipSp)); err != nil {
		shipSp.Annotate("err", err)
		shipSp.End()
		gw.Release()
		db.degraded.Store(true)
		for _, req := range group {
			endGroupSpan(req, gsp)
			req.errc <- err
		}
		return
	}
	shipSp.End()
	// DurableChan returns a closed channel if the tracker shut down (writer
	// crash); committers then complete exactly as WaitDurable used to.
	vsp := gsp.Child("vdl.wait")
	<-db.vol.DurableChan(gw.MaxCPL())
	vsp.End()
	// The pipeline is done with the group's wire arena: any sender still
	// retrying holds its own reference, so releasing here recycles the
	// arena at the earliest safe point.
	gw.Release()
	db.feed.publish(Event{VDL: db.vol.VDL()})
	for _, req := range group {
		endGroupSpan(req, gsp)
		req.errc <- nil
	}
}

// endGroupSpan closes a non-adopter member's group.inflight span (the
// adopter's groupSp is its own root, ended by the committer itself).
func endGroupSpan(req *commitReq, gsp *trace.Span) {
	if req.groupSp != nil && req.groupSp != gsp {
		req.groupSp.End()
	}
}
