package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/netsim"
	"aurora/internal/txn"
	"aurora/internal/volume"
)

func testDB(t *testing.T, cfg Config) (*volume.Fleet, *DB) {
	t.Helper()
	net := netsim.New(netsim.FastLocal())
	f, err := volume.NewFleet(volume.FleetConfig{Name: "e", Geometry: core.UniformGeometry(4), Net: net, Disk: disk.FastLocal()})
	if err != nil {
		t.Fatal(err)
	}
	vol := volume.Bootstrap(f, volume.ClientConfig{WriterNode: "writer", WriterAZ: 0})
	db, err := Create(vol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return f, db
}

func TestAutocommitCRUD(t *testing.T) {
	_, db := testDB(t, Config{})
	if err := db.Put([]byte("user:1"), []byte("ada")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("user:1"))
	if err != nil || !ok || string(v) != "ada" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	if err := db.Put([]byte("user:1"), []byte("grace")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = db.Get([]byte("user:1"))
	if string(v) != "grace" {
		t.Fatalf("after update: %q", v)
	}
	if err := db.Delete([]byte("user:1")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get([]byte("user:1")); ok {
		t.Fatal("deleted row visible")
	}
	s := db.Stats()
	if s.Commits != 3 {
		t.Fatalf("commits %d", s.Commits)
	}
}

func TestCommitIsDurableAtReturn(t *testing.T) {
	_, db := testDB(t, Config{})
	tx := db.Begin()
	if err := tx.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// The engine's WAL-equivalent rule: commit acked iff VDL >= commit LSN.
	// All records of the tx (including the commit record) must be durable.
	if db.VDL() < db.Volume().Stats().HighestLSN {
		t.Fatalf("VDL %d below highest LSN %d after commit", db.VDL(), db.Volume().Stats().HighestLSN)
	}
}

func TestUncommittedWritesInvisible(t *testing.T) {
	_, db := testDB(t, Config{})
	tx := db.Begin()
	if err := tx.Put([]byte("x"), []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	// Own reads see it.
	v, ok, _ := tx.Get([]byte("x"))
	if !ok || string(v) != "dirty" {
		t.Fatalf("own read: %q %v", v, ok)
	}
	// Other transactions do not.
	if _, ok, _ := db.Get([]byte("x")); ok {
		t.Fatal("dirty read")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := db.Get([]byte("x")); !ok || string(v) != "dirty" {
		t.Fatalf("after commit: %q %v", v, ok)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	_, db := testDB(t, Config{})
	if err := db.Put([]byte("x"), []byte("base")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Put([]byte("x"), []byte("mod")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete([]byte("x")); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if v, ok, _ := db.Get([]byte("x")); !ok || string(v) != "base" {
		t.Fatalf("after abort: %q %v", v, ok)
	}
	// A finished tx rejects everything.
	if err := tx.Put([]byte("y"), nil); !errors.Is(err, ErrTxDone) {
		t.Fatalf("put after abort: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("commit after abort: %v", err)
	}
}

func TestRowLockConflictAndHandoff(t *testing.T) {
	_, db := testDB(t, Config{})
	tx1 := db.Begin()
	if err := tx1.Put([]byte("hot"), []byte("t1")); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		tx2 := db.Begin()
		if err := tx2.Put([]byte("hot"), []byte("t2")); err != nil {
			got <- err
			return
		}
		got <- tx2.Commit()
	}()
	select {
	case <-got:
		t.Fatal("second writer proceeded while lock held")
	case <-time.After(30 * time.Millisecond):
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	v, _, _ := db.Get([]byte("hot"))
	if string(v) != "t2" {
		t.Fatalf("final value %q", v)
	}
}

func TestLockTimeoutAbortsTx(t *testing.T) {
	_, db := testDB(t, Config{LockTimeout: 40 * time.Millisecond})
	tx1 := db.Begin()
	if err := tx1.Put([]byte("k"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	err := tx2.Put([]byte("k"), []byte("2"))
	if !errors.Is(err, txn.ErrLockTimeout) {
		t.Fatalf("want lock timeout, got %v", err)
	}
	// tx2 is aborted; tx1 can still commit.
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Aborts == 0 {
		t.Fatal("timeout did not count an abort")
	}
}

func TestScanWithOverlay(t *testing.T) {
	_, db := testDB(t, Config{})
	for i := 0; i < 10; i++ {
		if err := db.Put([]byte(fmt.Sprintf("r%02d", i)), []byte("c")); err != nil {
			t.Fatal(err)
		}
	}
	tx := db.Begin()
	if err := tx.Put([]byte("r03"), []byte("updated")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete([]byte("r05")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put([]byte("r99"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put([]byte("r0a"), []byte("between")); err != nil {
		t.Fatal(err)
	}
	var keys []string
	vals := map[string]string{}
	if err := tx.Scan(nil, nil, func(k, v []byte) bool {
		keys = append(keys, string(k))
		vals[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	// 10 committed - 1 deleted + 2 inserted = 11 visible.
	if len(keys) != 11 {
		t.Fatalf("scan keys %v", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("scan out of order: %v", keys)
		}
	}
	if vals["r03"] != "updated" || vals["r99"] != "new" || vals["r0a"] != "between" {
		t.Fatalf("vals %v", vals)
	}
	if _, ok := vals["r05"]; ok {
		t.Fatal("deleted row scanned")
	}
	// Another transaction sees none of it.
	count := 0
	other := db.Begin()
	defer other.Abort()
	if err := other.Scan(nil, nil, func(k, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("other tx saw %d rows", count)
	}
	tx.Abort()
}

func TestSnapshotTransactionFrozenView(t *testing.T) {
	_, db := testDB(t, Config{})
	if err := db.Put([]byte("acct"), []byte("100")); err != nil {
		t.Fatal(err)
	}
	snap := db.BeginSnapshot()
	defer snap.Abort()
	if err := db.Put([]byte("acct"), []byte("50")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := snap.Get([]byte("acct"))
	if err != nil || !ok || string(v) != "100" {
		t.Fatalf("snapshot read %q %v %v", v, ok, err)
	}
	// Snapshot scans too.
	got := ""
	if err := snap.Scan([]byte("a"), []byte("b"), func(k, v []byte) bool { got = string(v); return true }); err != nil {
		t.Fatal(err)
	}
	if got != "100" {
		t.Fatalf("snapshot scan %q", got)
	}
	// Writes rejected.
	if err := snap.Put([]byte("acct"), nil); !errors.Is(err, ErrReadOnlyTx) {
		t.Fatalf("snapshot write: %v", err)
	}
	// Latest view unchanged.
	v, _, _ = db.Get([]byte("acct"))
	if string(v) != "50" {
		t.Fatalf("latest %q", v)
	}
}

func TestManyRowsWithSmallCache(t *testing.T) {
	_, db := testDB(t, Config{CachePages: 8})
	const n = 800
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key%05d", i)), []byte(fmt.Sprintf("val%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Force cold reads through the storage service.
	db.Cache().Invalidate()
	for i := 0; i < n; i += 37 {
		k := []byte(fmt.Sprintf("key%05d", i))
		v, ok, err := db.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("val%d", i) {
			t.Fatalf("get %s: %q %v %v", k, v, ok, err)
		}
	}
	if db.Stats().Cache.Misses == 0 {
		t.Fatal("expected cache misses")
	}
	rows, err := db.Rows()
	if err != nil || rows != n {
		t.Fatalf("rows %d %v", rows, err)
	}
}

func TestCrashRecoveryKeepsCommittedOnly(t *testing.T) {
	f, db := testDB(t, Config{})
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("c%03d", i)), []byte("committed")); err != nil {
			t.Fatal(err)
		}
	}
	// A transaction in flight at crash time: buffered writes never reach
	// the log, so recovery has nothing to undo.
	inflight := db.Begin()
	if err := inflight.Put([]byte("zz-inflight"), []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	db.Crash()

	db2, rep, err := Recover(context.Background(), f, volume.ClientConfig{WriterNode: "writer2", WriterAZ: 0}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rep.VDL == 0 {
		t.Fatal("recovery found no durable data")
	}
	for i := 0; i < 50; i += 7 {
		k := []byte(fmt.Sprintf("c%03d", i))
		v, ok, err := db2.Get(k)
		if err != nil || !ok || string(v) != "committed" {
			t.Fatalf("get %s after recovery: %q %v %v", k, v, ok, err)
		}
	}
	if _, ok, _ := db2.Get([]byte("zz-inflight")); ok {
		t.Fatal("in-flight write survived crash")
	}
	// The recovered writer continues.
	if err := db2.Put([]byte("after"), []byte("recovery")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := db2.Get([]byte("after")); !ok || string(v) != "recovery" {
		t.Fatalf("post-recovery write: %q %v", v, ok)
	}
}

func TestFeedDeliversCommittedRecords(t *testing.T) {
	_, db := testDB(t, Config{})
	events, cancel := db.Subscribe()
	defer cancel()
	tx := db.Begin()
	if err := tx.Put([]byte("feed"), []byte("me")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	var sawCommit bool
	var lastVDL core.LSN
	for !sawCommit || lastVDL == 0 {
		select {
		case ev := <-events:
			if ev.VDL > lastVDL {
				lastVDL = ev.VDL
			}
			for _, r := range ev.Records {
				if r.Type == core.RecTxnCommit && r.Txn == tx.id {
					sawCommit = true
				}
			}
		case <-deadline:
			t.Fatalf("feed incomplete: commit=%v vdl=%d", sawCommit, lastVDL)
		}
	}
}

func TestDegradedAfterQuorumLoss(t *testing.T) {
	f, db := testDB(t, Config{})
	if err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	// Take 3 replicas of every PG down: write quorum impossible.
	for g := 0; g < f.PGs(); g++ {
		for r := 0; r < 3; r++ {
			f.Node(core.PGID(g), r).Crash()
		}
	}
	err := db.Put([]byte("b"), []byte("2"))
	if err == nil {
		t.Fatal("write succeeded without quorum")
	}
	if !db.Degraded() {
		t.Fatal("engine not degraded after quorum loss")
	}
	if err := db.Put([]byte("c"), []byte("3")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded write: %v", err)
	}
	// Reads still work (read availability survives).
	if v, ok, _ := db.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("read while degraded: %q %v", v, ok)
	}
}

func TestConcurrentWorkload(t *testing.T) {
	_, db := testDB(t, Config{CachePages: 256})
	const workers, per = 8, 60
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("w%d-k%03d", w, i))
				if err := db.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
					errCh <- err
					return
				}
				if i%3 == 0 {
					if _, _, err := db.Get(k); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	rows, err := db.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if rows != workers*per {
		t.Fatalf("rows %d, want %d", rows, workers*per)
	}
	if db.Stats().Commits != workers*per {
		t.Fatalf("commits %d", db.Stats().Commits)
	}
}

func TestEmptyCommitAndSnapshotCommit(t *testing.T) {
	_, db := testDB(t, Config{})
	tx := db.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := db.BeginSnapshot()
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
}
