package quorum

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// DurabilityParams drives the Monte-Carlo durability model of §2.2. The
// model answers the paper's question: given independent node failures
// (MTTF) repaired within MTTR, plus correlated whole-AZ failures, what is
// the probability that a protection group loses read quorum (can no longer
// prove durability) or write quorum (loses write availability) during the
// mission time?
type DurabilityParams struct {
	NodeMTTF time.Duration // mean time between failures of one copy's node
	NodeMTTR time.Duration // time to repair one failed copy (re-replication)
	AZMTTF   time.Duration // mean time between whole-AZ failures; 0 disables
	AZMTTR   time.Duration // duration of an AZ outage
	Mission  time.Duration // observation window (e.g. one year)
	Trials   int
	Seed     int64
}

// DurabilityResult summarises the trials.
type DurabilityResult struct {
	Trials int
	// ReadQuorumLossProb is the fraction of trials in which, at some
	// instant, fewer than Vr copies were healthy — the model's proxy for
	// data loss risk (durability cannot be proven and write quorum cannot
	// be rebuilt).
	ReadQuorumLossProb float64
	// WriteQuorumLossProb is the fraction of trials in which write
	// availability was lost at some instant.
	WriteQuorumLossProb float64
	// WriteUnavailFraction is the mean fraction of mission time without
	// write availability.
	WriteUnavailFraction float64
}

// RepairTime returns the time to re-replicate a segment of the given size
// over a link of the given bandwidth — the §2.2 observation that a 10GB
// segment repairs in 10 seconds on a 10Gbps link, which is why segmenting
// shrinks the window of vulnerability to a double fault.
func RepairTime(segmentBytes int64, linkBitsPerSec int64) time.Duration {
	if linkBitsPerSec <= 0 {
		return 0
	}
	secs := float64(segmentBytes*8) / float64(linkBitsPerSec)
	return time.Duration(secs * float64(time.Second))
}

// interval is a half-open outage window [from, to).
type interval struct{ from, to float64 }

// sampleOutages generates outage intervals over [0, mission) for a
// component with exponential inter-failure times.
func sampleOutages(rng *rand.Rand, mttf, mttr, mission float64) []interval {
	if mttf <= 0 {
		return nil
	}
	var out []interval
	t := rng.ExpFloat64() * mttf
	for t < mission {
		end := t + mttr
		out = append(out, interval{t, math.Min(end, mission)})
		t = end + rng.ExpFloat64()*mttf
	}
	return out
}

// SimulateDurability runs the Monte-Carlo model for one protection group
// under the given quorum scheme.
func SimulateDurability(cfg Config, p DurabilityParams) DurabilityResult {
	if p.Trials <= 0 {
		p.Trials = 1000
	}
	seed := p.Seed
	if seed == 0 {
		seed = 0x5175 // deterministic default
	}
	rng := rand.New(rand.NewSource(seed))
	mission := p.Mission.Seconds()

	var readLoss, writeLoss int
	var unavailTotal float64

	for trial := 0; trial < p.Trials; trial++ {
		// Outage intervals for each copy: its own node failures plus the
		// failures of its AZ.
		azOutages := make([][]interval, cfg.AZs)
		if p.AZMTTF > 0 {
			for az := 0; az < cfg.AZs; az++ {
				azOutages[az] = sampleOutages(rng, p.AZMTTF.Seconds(), p.AZMTTR.Seconds(), mission)
			}
		}
		// Build a sweep line: +1 when a copy goes down, -1 when it
		// recovers.
		type event struct {
			t     float64
			delta int
		}
		var events []event
		addIntervals := func(ivs []interval) {
			for _, iv := range ivs {
				events = append(events, event{iv.from, +1}, event{iv.to, -1})
			}
		}
		for i := 0; i < cfg.V; i++ {
			addIntervals(sampleOutages(rng, p.NodeMTTF.Seconds(), p.NodeMTTR.Seconds(), mission))
			if cfg.AZs > 0 {
				addIntervals(azOutages[cfg.ReplicaAZ(i)])
			}
		}
		if len(events) == 0 {
			continue
		}
		sort.Slice(events, func(a, b int) bool { return events[a].t < events[b].t })

		// Note: a copy down for two overlapping reasons (node + AZ) counts
		// twice in the sweep; that overcounts failures slightly, making the
		// model conservative (it can only over-estimate loss probability,
		// never under-estimate it).
		down := 0
		lostRead, lostWrite := false, false
		var unavail, prevT float64
		writeBlocked := false
		for _, e := range events {
			if writeBlocked {
				unavail += e.t - prevT
			}
			prevT = e.t
			down += e.delta
			if !cfg.ReadAvailable(down) {
				lostRead = true
			}
			writeBlocked = !cfg.WriteAvailable(down)
			if writeBlocked {
				lostWrite = true
			}
		}
		if lostRead {
			readLoss++
		}
		if lostWrite {
			writeLoss++
		}
		unavailTotal += unavail / mission
	}

	return DurabilityResult{
		Trials:               p.Trials,
		ReadQuorumLossProb:   float64(readLoss) / float64(p.Trials),
		WriteQuorumLossProb:  float64(writeLoss) / float64(p.Trials),
		WriteUnavailFraction: unavailTotal / float64(p.Trials),
	}
}
