package quorum

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"aurora/internal/core"
)

// DurabilityParams drives the Monte-Carlo durability model of §2.2. The
// model answers the paper's question: given independent node failures
// (MTTF) repaired within MTTR, plus correlated whole-AZ failures, what is
// the probability that a protection group loses read quorum (can no longer
// prove durability) or write quorum (loses write availability) during the
// mission time?
type DurabilityParams struct {
	NodeMTTF time.Duration // mean time between failures of one copy's node
	NodeMTTR time.Duration // time to repair one failed copy (re-replication)
	AZMTTF   time.Duration // mean time between whole-AZ failures; 0 disables
	AZMTTR   time.Duration // duration of an AZ outage
	Mission  time.Duration // observation window (e.g. one year)
	Trials   int
	Seed     int64
	// LogMTTR is the reprotection time of one log-tier copy in a split
	// scheme (Taurus, PAPERS.md): a log segment is a tiny append-only
	// suffix, so when its node or AZ goes dark the writer re-places it on
	// any healthy node in seconds rather than waiting out the outage.
	// Zero falls back to NodeMTTR (no reprotection advantage). Ignored by
	// non-split schemes.
	LogMTTR time.Duration
}

// DurabilityResult summarises the trials.
type DurabilityResult struct {
	Trials int
	// ReadQuorumLossProb is the fraction of trials in which, at some
	// instant, fewer than Vr copies were healthy — the model's proxy for
	// data loss risk (durability cannot be proven and write quorum cannot
	// be rebuilt).
	ReadQuorumLossProb float64
	// WriteQuorumLossProb is the fraction of trials in which write
	// availability was lost at some instant.
	WriteQuorumLossProb float64
	// WriteUnavailFraction is the mean fraction of mission time without
	// write availability.
	WriteUnavailFraction float64
}

// RepairTime returns the time to re-replicate a segment of the given size
// over a link of the given bandwidth — the §2.2 observation that a 10GB
// segment repairs in 10 seconds on a 10Gbps link, which is why segmenting
// shrinks the window of vulnerability to a double fault.
func RepairTime(segmentBytes int64, linkBitsPerSec int64) time.Duration {
	if linkBitsPerSec <= 0 {
		return 0
	}
	secs := float64(segmentBytes*8) / float64(linkBitsPerSec)
	return time.Duration(secs * float64(time.Second))
}

// interval is a half-open outage window [from, to).
type interval struct{ from, to float64 }

// sampleOutages generates outage intervals over [0, mission) for a
// component with exponential inter-failure times.
func sampleOutages(rng *rand.Rand, mttf, mttr, mission float64) []interval {
	if mttf <= 0 {
		return nil
	}
	var out []interval
	t := rng.ExpFloat64() * mttf
	for t < mission {
		end := t + mttr
		out = append(out, interval{t, math.Min(end, mission)})
		t = end + rng.ExpFloat64()*mttf
	}
	return out
}

// SimulateDurability runs the Monte-Carlo model for one protection group
// under the given quorum scheme.
func SimulateDurability(cfg Config, p DurabilityParams) DurabilityResult {
	if p.Trials <= 0 {
		p.Trials = 1000
	}
	seed := p.Seed
	if seed == 0 {
		seed = 0x5175 // deterministic default
	}
	rng := rand.New(rand.NewSource(seed))
	mission := p.Mission.Seconds()

	if cfg.Split() {
		return simulateSplitDurability(cfg, p, rng, mission)
	}

	var readLoss, writeLoss int
	var unavailTotal float64

	for trial := 0; trial < p.Trials; trial++ {
		// Outage intervals for each copy: its own node failures plus the
		// failures of its AZ.
		azOutages := make([][]interval, cfg.AZs)
		if p.AZMTTF > 0 {
			for az := 0; az < cfg.AZs; az++ {
				azOutages[az] = sampleOutages(rng, p.AZMTTF.Seconds(), p.AZMTTR.Seconds(), mission)
			}
		}
		// Build a sweep line: +1 when a copy goes down, -1 when it
		// recovers.
		type event struct {
			t     float64
			delta int
		}
		var events []event
		addIntervals := func(ivs []interval) {
			for _, iv := range ivs {
				events = append(events, event{iv.from, +1}, event{iv.to, -1})
			}
		}
		for i := 0; i < cfg.V; i++ {
			addIntervals(sampleOutages(rng, p.NodeMTTF.Seconds(), p.NodeMTTR.Seconds(), mission))
			if cfg.AZs > 0 {
				addIntervals(azOutages[cfg.ReplicaAZ(i)])
			}
		}
		if len(events) == 0 {
			continue
		}
		sort.Slice(events, func(a, b int) bool { return events[a].t < events[b].t })

		// Note: a copy down for two overlapping reasons (node + AZ) counts
		// twice in the sweep; that overcounts failures slightly, making the
		// model conservative (it can only over-estimate loss probability,
		// never under-estimate it).
		down := 0
		lostRead, lostWrite := false, false
		var unavail, prevT float64
		writeBlocked := false
		for _, e := range events {
			if writeBlocked {
				unavail += e.t - prevT
			}
			prevT = e.t
			down += e.delta
			if !cfg.ReadAvailable(down) {
				lostRead = true
			}
			writeBlocked = !cfg.WriteAvailable(down)
			if writeBlocked {
				lostWrite = true
			}
		}
		if lostRead {
			readLoss++
		}
		if lostWrite {
			writeLoss++
		}
		unavailTotal += unavail / mission
	}

	return DurabilityResult{
		Trials:               p.Trials,
		ReadQuorumLossProb:   float64(readLoss) / float64(p.Trials),
		WriteQuorumLossProb:  float64(writeLoss) / float64(p.Trials),
		WriteUnavailFraction: unavailTotal / float64(p.Trials),
	}
}

// simulateSplitDurability runs the model for a role-split scheme, tracking
// the two tiers separately. Loss rules:
//
//   - Durability (the read-loss proxy) is gone when the log tier drops
//     below LogVr healthy copies — the acked suffix can no longer be
//     proven — or when every page copy is down at once, because
//     materialized bases below the log-GC floor exist nowhere else.
//   - Write availability is gone when the log tier drops below LogVw.
//
// Log-tier outages are capped at LogMTTR regardless of cause: a log
// segment is a tiny append-only suffix, so even an AZ outage only costs
// the reprotection time of re-placing it on a healthy AZ (the Taurus
// frugal-replication argument). Page copies wait out their full outages.
func simulateSplitDurability(cfg Config, p DurabilityParams, rng *rand.Rand, mission float64) DurabilityResult {
	logMTTR := p.LogMTTR.Seconds()
	if logMTTR <= 0 {
		logMTTR = p.NodeMTTR.Seconds()
	}
	pageV := cfg.PageV()

	var readLoss, writeLoss int
	var unavailTotal float64

	for trial := 0; trial < p.Trials; trial++ {
		azOutages := make([][]interval, cfg.AZs)
		if p.AZMTTF > 0 {
			for az := 0; az < cfg.AZs; az++ {
				azOutages[az] = sampleOutages(rng, p.AZMTTF.Seconds(), p.AZMTTR.Seconds(), mission)
			}
		}
		type event struct {
			t     float64
			delta int
			log   bool
		}
		var events []event
		add := func(ivs []interval, isLog bool, capTo float64) {
			for _, iv := range ivs {
				to := iv.to
				if capTo > 0 && iv.from+capTo < to {
					to = iv.from + capTo
				}
				events = append(events, event{iv.from, +1, isLog}, event{to, -1, isLog})
			}
		}
		for i := 0; i < cfg.V; i++ {
			isLog := cfg.Role(i) == core.RoleLog
			if isLog {
				add(sampleOutages(rng, p.NodeMTTF.Seconds(), logMTTR, mission), true, 0)
			} else {
				add(sampleOutages(rng, p.NodeMTTF.Seconds(), p.NodeMTTR.Seconds(), mission), false, 0)
			}
			if cfg.AZs > 0 {
				if isLog {
					add(azOutages[cfg.ReplicaAZ(i)], true, logMTTR)
				} else {
					add(azOutages[cfg.ReplicaAZ(i)], false, 0)
				}
			}
		}
		if len(events) == 0 {
			continue
		}
		sort.Slice(events, func(a, b int) bool { return events[a].t < events[b].t })

		downLog, downPage := 0, 0
		lostRead, lostWrite := false, false
		var unavail, prevT float64
		writeBlocked := false
		for _, e := range events {
			if writeBlocked {
				unavail += e.t - prevT
			}
			prevT = e.t
			if e.log {
				downLog += e.delta
			} else {
				downPage += e.delta
			}
			if cfg.LogV-downLog < cfg.LogVr || pageV-downPage < 1 {
				lostRead = true
			}
			writeBlocked = cfg.LogV-downLog < cfg.LogVw
			if writeBlocked {
				lostWrite = true
			}
		}
		if lostRead {
			readLoss++
		}
		if lostWrite {
			writeLoss++
		}
		unavailTotal += unavail / mission
	}

	return DurabilityResult{
		Trials:               p.Trials,
		ReadQuorumLossProb:   float64(readLoss) / float64(p.Trials),
		WriteQuorumLossProb:  float64(writeLoss) / float64(p.Trials),
		WriteUnavailFraction: unavailTotal / float64(p.Trials),
	}
}
