// Package quorum implements Aurora's quorum model (§2): V copies of each
// data item spread across availability zones, a write quorum Vw and a read
// quorum Vr obeying Vr+Vw > V and Vw > V/2. It provides the write-ack
// tracker used on the volume write path, availability predicates used by
// chaos tests, and a Monte-Carlo durability model that reproduces the
// paper's argument that 2/3 quorums are inadequate while the 4/6 AZ+1
// design survives an AZ failure plus background noise (§2.1–2.2).
package quorum

import (
	"errors"
	"fmt"
	"sync"

	"aurora/internal/core"
)

// Config describes a quorum scheme and its placement across AZs.
//
// When LogV > 0 the scheme is role-split (Taurus-style, PAPERS.md):
// replicas 0..LogV-1 form a synchronous log tier and the remaining
// V-LogV replicas form an asynchronously-fed page tier. Commit
// acknowledgment then needs only LogVw log-tier acks; V/Vw/Vr keep
// describing the whole group for placement and legacy availability
// predicates.
type Config struct {
	V     int // total copies
	Vw    int // write quorum
	Vr    int // read quorum
	AZs   int // number of availability zones copies are spread over
	PerAZ int // copies per AZ (V == AZs*PerAZ for the symmetric schemes)

	LogV  int // log-tier copies (0 = no split, all replicas are full)
	LogVw int // log-tier write quorum for commit acknowledgment
	LogVr int // log-tier read quorum (recovery must reach this many)
}

// Aurora returns the paper's design point: 6 copies, 2 per AZ across 3 AZs,
// write quorum 4/6, read quorum 3/6.
func Aurora() Config { return Config{V: 6, Vw: 4, Vr: 3, AZs: 3, PerAZ: 2} }

// TwoOfThree returns the common 2/3 quorum with one copy per AZ — the
// scheme §2.1 argues is inadequate.
func TwoOfThree() Config { return Config{V: 3, Vw: 2, Vr: 2, AZs: 3, PerAZ: 1} }

// MirroredFourOfFour models the mirrored-MySQL configuration of §3.1
// (primary EBS + mirror, standby EBS + mirror, all synchronous): 4 copies
// across 2 AZs where every write must reach all 4.
func MirroredFourOfFour() Config { return Config{V: 4, Vw: 4, Vr: 1, AZs: 2, PerAZ: 2} }

// TaurusMix returns the frugal replication mix (Taurus, PAPERS.md): the
// same six copies across three AZs as Aurora, but re-roled into a 3-way
// synchronous log tier (one log replica per AZ, 2/3 ack for commit) and
// three asynchronously-fed page replicas (one per AZ) that serve reads.
// Durability still rides on the log tier's majority; the page tier only
// needs one survivor because any page replica can be rebuilt from the
// retained log.
func TaurusMix() Config {
	return Config{V: 6, Vw: 4, Vr: 3, AZs: 3, PerAZ: 2, LogV: 3, LogVw: 2, LogVr: 2}
}

// Split reports whether the scheme separates a synchronous log tier from
// an asynchronous page tier.
func (c Config) Split() bool { return c.LogV > 0 }

// PageV returns the number of page-tier copies of a split scheme (0 when
// not split — every replica is full and page-capable).
func (c Config) PageV() int {
	if !c.Split() {
		return 0
	}
	return c.V - c.LogV
}

// Role returns what replica i does under this scheme. Low indices are the
// log tier so that write-tracker indices line up with sender indices.
func (c Config) Role(i int) core.ReplicaRole {
	if !c.Split() {
		return core.RoleFull
	}
	if i < c.LogV {
		return core.RoleLog
	}
	return core.RolePage
}

// LogTier returns the log tier viewed as a quorum scheme of its own — the
// config a write tracker resolves against when the split is on: LogVw of
// LogV acks commit, more than LogV-LogVw rejections make it impossible.
func (c Config) LogTier() Config {
	return Config{V: c.LogV, Vw: c.LogVw, Vr: c.LogVr, AZs: c.AZs, PerAZ: 1}
}

// Validate checks the two consistency rules from [6]: Vr + Vw > V (reads
// see the newest write) and Vw > V/2 (no conflicting writes), plus
// placement sanity.
func (c Config) Validate() error {
	if c.V <= 0 || c.Vw <= 0 || c.Vr <= 0 {
		return errors.New("quorum: V, Vw, Vr must be positive")
	}
	if c.Vr+c.Vw <= c.V {
		return fmt.Errorf("quorum: Vr+Vw=%d must exceed V=%d", c.Vr+c.Vw, c.V)
	}
	if 2*c.Vw <= c.V {
		return fmt.Errorf("quorum: 2*Vw=%d must exceed V=%d", 2*c.Vw, c.V)
	}
	if c.AZs > 0 && c.PerAZ > 0 && c.AZs*c.PerAZ != c.V {
		return fmt.Errorf("quorum: AZs*PerAZ=%d != V=%d", c.AZs*c.PerAZ, c.V)
	}
	if c.Split() {
		if c.LogV >= c.V {
			return fmt.Errorf("quorum: split needs at least one page replica, LogV=%d of V=%d", c.LogV, c.V)
		}
		if c.LogVw <= 0 || c.LogVr <= 0 {
			return errors.New("quorum: split needs positive LogVw and LogVr")
		}
		if c.LogVw > c.LogV || c.LogVr > c.LogV {
			return fmt.Errorf("quorum: log quorums (Vw=%d, Vr=%d) cannot exceed LogV=%d", c.LogVw, c.LogVr, c.LogV)
		}
		// The log tier carries durability alone, so it must obey the same
		// two consistency rules the whole group does.
		if c.LogVr+c.LogVw <= c.LogV {
			return fmt.Errorf("quorum: LogVr+LogVw=%d must exceed LogV=%d", c.LogVr+c.LogVw, c.LogV)
		}
		if 2*c.LogVw <= c.LogV {
			return fmt.Errorf("quorum: 2*LogVw=%d must exceed LogV=%d", 2*c.LogVw, c.LogV)
		}
		if c.AZs > 0 && c.LogV > c.AZs {
			return fmt.Errorf("quorum: LogV=%d log replicas cannot spread one-per-AZ over %d AZs", c.LogV, c.AZs)
		}
	}
	return nil
}

// ReplicaAZ returns the AZ index hosting replica i under symmetric
// placement (two consecutive replicas per AZ for the Aurora scheme). A
// split scheme stripes each tier across the AZs instead, so that losing
// one AZ costs at most one log replica and one page replica.
func (c Config) ReplicaAZ(i int) int {
	if c.PerAZ == 0 || c.AZs == 0 {
		return 0
	}
	if c.Split() {
		if i < c.LogV {
			return i % c.AZs
		}
		return (i - c.LogV) % c.AZs
	}
	return (i / c.PerAZ) % c.AZs
}

// WriteAvailable reports whether writes can proceed with the given number
// of failed copies.
func (c Config) WriteAvailable(failed int) bool { return c.V-failed >= c.Vw }

// ReadAvailable reports whether read quorum survives the given number of
// failed copies (and hence whether write quorum can be rebuilt, §2.1).
func (c Config) ReadAvailable(failed int) bool { return c.V-failed >= c.Vr }

// SurvivesAZPlusOne reports whether the scheme keeps read availability
// after losing one full AZ plus one additional copy — the paper's AZ+1
// durability goal.
func (c Config) SurvivesAZPlusOne() bool { return c.ReadAvailable(c.PerAZ + 1) }

// SurvivesAZForWrites reports whether the scheme keeps write availability
// after losing one full AZ.
func (c Config) SurvivesAZForWrites() bool { return c.WriteAvailable(c.PerAZ) }

// ErrQuorumImpossible is reported by a Tracker when enough replicas have
// rejected that the write quorum can never be reached.
var ErrQuorumImpossible = errors.New("quorum: write quorum unreachable")

// Tracker accumulates acknowledgements for one write (a log batch sent to
// all V replicas) and resolves once Vw have acked, or fails once more than
// V-Vw have rejected. It is safe for concurrent use and resolves exactly
// once.
type Tracker struct {
	mu      sync.Mutex
	cfg     Config
	acked   map[int]bool
	nacked  map[int]bool
	done    chan struct{}
	failed  bool
	resolve sync.Once
}

// NewTracker returns a tracker for one quorum write.
func NewTracker(cfg Config) *Tracker {
	return &Tracker{
		cfg:    cfg,
		acked:  make(map[int]bool, cfg.V),
		nacked: make(map[int]bool, cfg.V),
		done:   make(chan struct{}),
	}
}

// Ack records a positive acknowledgement from replica i.
func (t *Tracker) Ack(i int) {
	t.mu.Lock()
	if !t.nacked[i] {
		t.acked[i] = true
	}
	reached := len(t.acked) >= t.cfg.Vw
	t.mu.Unlock()
	if reached {
		t.resolve.Do(func() { close(t.done) })
	}
}

// Nack records a failure from replica i (node down, send error...).
func (t *Tracker) Nack(i int) {
	t.mu.Lock()
	if !t.acked[i] {
		t.nacked[i] = true
	}
	impossible := len(t.nacked) > t.cfg.V-t.cfg.Vw
	t.mu.Unlock()
	if impossible {
		t.resolve.Do(func() {
			t.mu.Lock()
			t.failed = true
			t.mu.Unlock()
			close(t.done)
		})
	}
}

// Done returns a channel closed when the write resolves (success or
// failure).
func (t *Tracker) Done() <-chan struct{} { return t.done }

// Resolved reports whether the write has already resolved. Delivery
// pipelines use it to stop redelivering a flight whose every batch has
// settled without this replica — gossip, not the writer, repairs the
// replica then (§3.3).
func (t *Tracker) Resolved() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// Err returns nil on success, ErrQuorumImpossible when the quorum can no
// longer be reached. Only meaningful after Done is closed.
func (t *Tracker) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failed {
		return ErrQuorumImpossible
	}
	return nil
}

// Acks returns the number of positive acknowledgements so far.
func (t *Tracker) Acks() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.acked)
}
