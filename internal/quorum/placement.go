package quorum

import (
	"errors"
	"fmt"
)

// ErrNoPlacement is returned when the fleet cannot satisfy a protection
// group's AZ-spread constraint (some replica's required AZ has no host left).
var ErrNoPlacement = errors.New("quorum: no feasible placement for protection group")

// HostInfo is a placement-time view of one storage host in a shared fleet.
type HostInfo struct {
	AZ       int // availability zone index, matching Config.ReplicaAZ
	Segments int // total segments hosted, all tenants
	Tenant   int // segments hosted for the volume being placed
	Shared   int // distinct other tenants already on this host
}

// PlacePG chooses one host per replica of a new protection group on a shared
// multi-tenant fleet, returning host indices (into hosts) ordered by replica
// index. Hard constraints: replica i must land in cfg.ReplicaAZ(i) and no two
// replicas of the PG may share a host. Among feasible hosts, preference order
// implements blast-radius control (§2.2: correlated failures must stay
// independent per tenant) and load balance:
//
//  1. fewest segments of the tenant being placed — spread each volume thin so
//     losing a host costs the tenant at most a couple of segments, and so no
//     two tenants end up fully co-resident on the same machines;
//  2. fewest distinct other tenants — do not pile every volume on the same
//     popular host (bounds how many tenants one machine failure touches);
//  3. fewest total segments — global load balance;
//  4. lowest index — determinism for tests and reproducible fleets.
func PlacePG(cfg Config, hosts []HostInfo) ([]int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	picks := make([]int, 0, cfg.V)
	used := make(map[int]bool, cfg.V)
	for i := 0; i < cfg.V; i++ {
		az := cfg.ReplicaAZ(i)
		best := -1
		for j := range hosts {
			if used[j] || hosts[j].AZ != az {
				continue
			}
			if best < 0 || better(hosts[j], hosts[best]) {
				best = j
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("%w: replica %d needs az %d", ErrNoPlacement, i, az)
		}
		picks = append(picks, best)
		used[best] = true
	}
	return picks, nil
}

// better reports whether host a is strictly preferred over host b.
func better(a, b HostInfo) bool {
	if a.Tenant != b.Tenant {
		return a.Tenant < b.Tenant
	}
	if a.Shared != b.Shared {
		return a.Shared < b.Shared
	}
	return a.Segments < b.Segments
}
