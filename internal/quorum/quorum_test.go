package quorum

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"aurora/internal/core"
)

func TestConfigValidation(t *testing.T) {
	for _, c := range []Config{Aurora(), TwoOfThree(), MirroredFourOfFour()} {
		if err := c.Validate(); err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
	}
	bad := []Config{
		{V: 6, Vw: 3, Vr: 3, AZs: 3, PerAZ: 2}, // Vr+Vw == V: stale reads possible
		{V: 6, Vw: 3, Vr: 4, AZs: 3, PerAZ: 2}, // 2*Vw == V: conflicting writes
		{V: 0, Vw: 0, Vr: 0},
		{V: 6, Vw: 4, Vr: 3, AZs: 3, PerAZ: 3}, // placement mismatch
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("%+v validated", c)
		}
	}
}

// Property: any valid (V,Vw,Vr) has intersecting read/write sets and
// non-conflicting write sets.
func TestQuorumRulesProperty(t *testing.T) {
	f := func(v, vw, vr uint8) bool {
		c := Config{V: int(v%9) + 1, Vw: int(vw%9) + 1, Vr: int(vr%9) + 1}
		err := c.Validate()
		intersect := c.Vr+c.Vw > c.V
		majority := 2*c.Vw > c.V
		sane := c.Vw <= c.V && c.Vr <= c.V
		// Validate must accept exactly the schemes with both properties
		// (bounded by V); note Validate does not require Vw<=V explicitly,
		// but Vr+Vw>V with Vw>V/2 and Vr>=1 is what the paper needs.
		if err == nil && (!intersect || !majority) {
			return false
		}
		if err != nil && intersect && majority && sane {
			// Placement fields unset: should have validated.
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAuroraAZPlusOne(t *testing.T) {
	a := Aurora()
	// (a) lose an entire AZ (2 copies) plus one more node: reads survive.
	if !a.SurvivesAZPlusOne() {
		t.Fatal("Aurora scheme must survive AZ+1 for reads")
	}
	if !a.ReadAvailable(3) || a.ReadAvailable(4) {
		t.Fatal("read availability boundary should be exactly 3 failures")
	}
	// (b) lose an entire AZ: writes survive; any third failure blocks them.
	if !a.SurvivesAZForWrites() {
		t.Fatal("Aurora scheme must keep writing through an AZ loss")
	}
	if !a.WriteAvailable(2) || a.WriteAvailable(3) {
		t.Fatal("write availability boundary should be exactly 2 failures")
	}
}

func TestTwoOfThreeBreaksUnderAZPlusOne(t *testing.T) {
	c := TwoOfThree()
	// AZ failure (1 copy) plus one background-noise failure = 2 failures:
	// only 1 copy left, below Vr=2 — the §2.1 inadequacy argument.
	if c.SurvivesAZPlusOne() {
		t.Fatal("2/3 should NOT survive AZ+1")
	}
	if !c.WriteAvailable(1) {
		t.Fatal("2/3 keeps writes through a single failure")
	}
	if c.WriteAvailable(2) {
		t.Fatal("2/3 loses writes at two failures")
	}
}

func TestMirroredFourOfFourFragility(t *testing.T) {
	c := MirroredFourOfFour()
	// A single failed copy blocks all writes — §3.1's criticism.
	if c.WriteAvailable(1) {
		t.Fatal("4/4 should lose write availability on any failure")
	}
}

func TestReplicaAZPlacement(t *testing.T) {
	a := Aurora()
	want := []int{0, 0, 1, 1, 2, 2}
	for i, az := range want {
		if got := a.ReplicaAZ(i); got != az {
			t.Fatalf("replica %d in AZ %d, want %d", i, got, az)
		}
	}
}

func TestTrackerReachesQuorum(t *testing.T) {
	tr := NewTracker(Aurora())
	tr.Ack(0)
	tr.Ack(1)
	tr.Ack(1) // duplicate must not double count
	tr.Ack(2)
	select {
	case <-tr.Done():
		t.Fatal("resolved with 3 acks, need 4")
	default:
	}
	tr.Ack(5)
	select {
	case <-tr.Done():
	case <-time.After(time.Second):
		t.Fatal("did not resolve at 4 acks")
	}
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
	if tr.Acks() != 4 {
		t.Fatalf("acks %d", tr.Acks())
	}
}

func TestTrackerImpossible(t *testing.T) {
	tr := NewTracker(Aurora())
	tr.Nack(0)
	tr.Nack(1)
	select {
	case <-tr.Done():
		t.Fatal("resolved with 2 nacks; one more failure still allows 4/6")
	default:
	}
	tr.Nack(2)
	select {
	case <-tr.Done():
	case <-time.After(time.Second):
		t.Fatal("did not fail at 3 nacks")
	}
	if tr.Err() != ErrQuorumImpossible {
		t.Fatalf("err %v", tr.Err())
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker(Aurora())
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); tr.Ack(i) }(i)
	}
	wg.Wait()
	<-tr.Done()
	if tr.Err() != nil || tr.Acks() != 6 {
		t.Fatalf("err=%v acks=%d", tr.Err(), tr.Acks())
	}
}

func TestRepairTime(t *testing.T) {
	// The paper's example: 10GB on a 10Gbps link ≈ 10 seconds (§2.2, using
	// 1GB = 1e9 bytes as the paper's arithmetic implies).
	got := RepairTime(10_000_000_000, 10_000_000_000)
	if got != 8*time.Second { // 80Gbit over 10Gbps = 8s with SI units
		t.Fatalf("repair time %v", got)
	}
	if RepairTime(1, 0) != 0 {
		t.Fatal("zero bandwidth should return 0")
	}
}

func TestSimulateDurabilityShape(t *testing.T) {
	// Key claim of §2.2: with fast repair (small segments), the 4/6 scheme
	// rides through an AZ failure plus background noise, while 2/3 loses
	// quorum far more often under the same conditions.
	p := DurabilityParams{
		NodeMTTF: 500 * time.Hour,
		NodeMTTR: 1 * time.Hour,
		AZMTTF:   2000 * time.Hour,
		AZMTTR:   12 * time.Hour,
		Mission:  24 * 365 * time.Hour,
		Trials:   400,
		Seed:     42,
	}
	aurora := SimulateDurability(Aurora(), p)
	twoThree := SimulateDurability(TwoOfThree(), p)
	if aurora.ReadQuorumLossProb >= twoThree.ReadQuorumLossProb {
		t.Fatalf("4/6 read-loss %v should be below 2/3 read-loss %v",
			aurora.ReadQuorumLossProb, twoThree.ReadQuorumLossProb)
	}
	mirrored := SimulateDurability(MirroredFourOfFour(), p)
	if mirrored.WriteUnavailFraction <= aurora.WriteUnavailFraction {
		t.Fatalf("4/4 write-unavail %v should exceed 4/6 %v",
			mirrored.WriteUnavailFraction, aurora.WriteUnavailFraction)
	}
}

func TestSimulateDurabilityFastRepairShrinksRisk(t *testing.T) {
	// Reducing MTTR (the segmented-storage argument) must reduce the
	// probability of double faults compounding into quorum loss.
	base := DurabilityParams{
		NodeMTTF: 200 * time.Hour,
		AZMTTF:   1000 * time.Hour,
		AZMTTR:   6 * time.Hour,
		Mission:  24 * 365 * time.Hour,
		Trials:   300,
		Seed:     7,
	}
	slow := base
	slow.NodeMTTR = 10 * time.Hour
	fast := base
	fast.NodeMTTR = 10 * time.Second // 10GB segment on 10Gbps
	rSlow := SimulateDurability(Aurora(), slow)
	rFast := SimulateDurability(Aurora(), fast)
	if rFast.ReadQuorumLossProb > rSlow.ReadQuorumLossProb {
		t.Fatalf("fast repair %v should not exceed slow repair %v",
			rFast.ReadQuorumLossProb, rSlow.ReadQuorumLossProb)
	}
	if rFast.WriteUnavailFraction >= rSlow.WriteUnavailFraction {
		t.Fatalf("fast repair unavail %v should be below slow %v",
			rFast.WriteUnavailFraction, rSlow.WriteUnavailFraction)
	}
}

func TestTaurusMixValidationAndRoles(t *testing.T) {
	c := TaurusMix()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c.Split() || Aurora().Split() {
		t.Fatal("TaurusMix must be split, Aurora must not")
	}
	if c.PageV() != 3 {
		t.Fatalf("page tier size %d, want 3", c.PageV())
	}
	for i := 0; i < 3; i++ {
		if c.Role(i) != core.RoleLog {
			t.Fatalf("replica %d role %v, want log", i, c.Role(i))
		}
	}
	for i := 3; i < 6; i++ {
		if c.Role(i) != core.RolePage {
			t.Fatalf("replica %d role %v, want page", i, c.Role(i))
		}
	}
	if Aurora().Role(0) != core.RoleFull {
		t.Fatal("non-split replicas must be full")
	}
	// Each tier stripes one replica per AZ: losing an AZ costs at most one
	// log and one page replica.
	for i := 0; i < 3; i++ {
		if c.ReplicaAZ(i) != i || c.ReplicaAZ(3+i) != i {
			t.Fatalf("split placement wrong: log %d in AZ %d, page %d in AZ %d",
				i, c.ReplicaAZ(i), 3+i, c.ReplicaAZ(3+i))
		}
	}
	bad := []Config{
		{V: 6, Vw: 4, Vr: 3, AZs: 3, PerAZ: 2, LogV: 6, LogVw: 4, LogVr: 3}, // no page replica
		{V: 6, Vw: 4, Vr: 3, AZs: 3, PerAZ: 2, LogV: 3, LogVw: 1, LogVr: 1}, // 2*LogVw <= LogV
		{V: 6, Vw: 4, Vr: 3, AZs: 3, PerAZ: 2, LogV: 3, LogVw: 2, LogVr: 1}, // LogVr+LogVw <= LogV
		{V: 6, Vw: 4, Vr: 3, AZs: 3, PerAZ: 2, LogV: 3, LogVw: 0, LogVr: 2}, // zero LogVw
		{V: 8, Vw: 5, Vr: 4, AZs: 2, PerAZ: 4, LogV: 4, LogVw: 3, LogVr: 2}, // LogV > AZs
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("%+v validated", b)
		}
	}
}

func TestLogTierTracker(t *testing.T) {
	// With the split on, commit acknowledgment resolves against the log
	// tier alone: 2 of 3 acks commit, 2 nacks make it impossible.
	lt := TaurusMix().LogTier()
	if lt.V != 3 || lt.Vw != 2 || lt.Vr != 2 {
		t.Fatalf("log tier %+v", lt)
	}
	tr := NewTracker(lt)
	tr.Ack(0)
	select {
	case <-tr.Done():
		t.Fatal("resolved with 1 ack, need 2")
	default:
	}
	tr.Ack(2)
	select {
	case <-tr.Done():
	case <-time.After(time.Second):
		t.Fatal("did not resolve at 2 log-tier acks")
	}
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}

	tr = NewTracker(lt)
	tr.Nack(1)
	select {
	case <-tr.Done():
		t.Fatal("resolved with 1 nack; 2/3 still reachable")
	default:
	}
	tr.Nack(2)
	<-tr.Done()
	if tr.Err() != ErrQuorumImpossible {
		t.Fatalf("err %v", tr.Err())
	}
}

func TestSimulateDurabilityTaurusMixNoWorse(t *testing.T) {
	// The satellite claim: the frugal mix — 3 synchronous log copies with
	// fast reprotection plus 3 async page copies — is no worse than the
	// 4/6 scheme on durability, and strictly better on write availability
	// (only 2 of 3 tiny log appends must land instead of 4 of 6 full
	// replica writes).
	p := DurabilityParams{
		NodeMTTF: 500 * time.Hour,
		NodeMTTR: 1 * time.Hour,
		AZMTTF:   2000 * time.Hour,
		AZMTTR:   12 * time.Hour,
		Mission:  24 * 365 * time.Hour,
		Trials:   400,
		Seed:     42,
		LogMTTR:  30 * time.Second, // tiny append-only suffix re-placed in seconds
	}
	aurora := SimulateDurability(Aurora(), p)
	taurus := SimulateDurability(TaurusMix(), p)
	if taurus.ReadQuorumLossProb > aurora.ReadQuorumLossProb {
		t.Fatalf("TaurusMix read-loss %v must not exceed 4/6's %v",
			taurus.ReadQuorumLossProb, aurora.ReadQuorumLossProb)
	}
	if taurus.WriteQuorumLossProb > aurora.WriteQuorumLossProb {
		t.Fatalf("TaurusMix write-loss %v must not exceed 4/6's %v",
			taurus.WriteQuorumLossProb, aurora.WriteQuorumLossProb)
	}
	if taurus.WriteUnavailFraction > aurora.WriteUnavailFraction {
		t.Fatalf("TaurusMix write-unavail %v must not exceed 4/6's %v",
			taurus.WriteUnavailFraction, aurora.WriteUnavailFraction)
	}
	// Without fast log reprotection the mix loses its edge: a 2-of-3
	// synchronous tier waiting out full outages is the §2.1 argument
	// against small quorums all over again.
	slow := p
	slow.LogMTTR = 0 // falls back to NodeMTTR, AZ outages ride full length
	taurusSlow := SimulateDurability(TaurusMix(), slow)
	if taurusSlow.ReadQuorumLossProb < taurus.ReadQuorumLossProb {
		t.Fatalf("slow reprotection %v should not beat fast %v",
			taurusSlow.ReadQuorumLossProb, taurus.ReadQuorumLossProb)
	}
}

func TestSimulateDurabilityDefaults(t *testing.T) {
	r := SimulateDurability(Aurora(), DurabilityParams{
		NodeMTTF: time.Hour, NodeMTTR: time.Minute, Mission: 10 * time.Hour,
	})
	if r.Trials != 1000 {
		t.Fatalf("default trials %d", r.Trials)
	}
}
