package quorum

import (
	"errors"
	"testing"
)

// nine hosts, three per AZ, empty fleet.
func emptyHosts() []HostInfo {
	hosts := make([]HostInfo, 9)
	for i := range hosts {
		hosts[i].AZ = i % 3
	}
	return hosts
}

func TestPlacePGSpreadsAZs(t *testing.T) {
	q := Aurora()
	picks, err := PlacePG(q, emptyHosts())
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != q.V {
		t.Fatalf("%d picks, want %d", len(picks), q.V)
	}
	seen := map[int]bool{}
	for i, j := range picks {
		if seen[j] {
			t.Fatalf("host %d picked twice", j)
		}
		seen[j] = true
		if got, want := j%3, q.ReplicaAZ(i); got != want {
			t.Fatalf("replica %d on AZ %d, want %d", i, got, want)
		}
	}
}

func TestPlacePGPrefersThinTenantSpread(t *testing.T) {
	hosts := emptyHosts()
	// The tenant already has segments on hosts 0 and 1: placement must
	// prefer the tenant-free hosts in each AZ.
	hosts[0].Tenant = 2
	hosts[1].Tenant = 2
	picks, err := PlacePG(Aurora(), hosts)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range picks {
		if j == 0 || j == 1 {
			t.Fatalf("picked loaded host %d over a tenant-free one", j)
		}
	}
}

func TestPlacePGAvoidsCrowdedHosts(t *testing.T) {
	hosts := emptyHosts()
	// Host 3 (AZ 0) carries many other tenants; 0 and 6 are quieter.
	hosts[3].Shared = 5
	hosts[3].Segments = 30
	picks, err := PlacePG(Aurora(), hosts)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range picks {
		if j == 3 {
			t.Fatal("picked the most-shared host while empty peers exist")
		}
	}
}

func TestPlacePGNoFeasiblePlacement(t *testing.T) {
	// Only AZ 0 and 1 have hosts: the 4/6 quorum needs two hosts in AZ 2.
	hosts := []HostInfo{{AZ: 0}, {AZ: 0}, {AZ: 1}, {AZ: 1}}
	if _, err := PlacePG(Aurora(), hosts); !errors.Is(err, ErrNoPlacement) {
		t.Fatalf("err = %v, want ErrNoPlacement", err)
	}
}

func TestPlacePGSplitQuorum(t *testing.T) {
	q := TaurusMix()
	picks, err := PlacePG(q, emptyHosts())
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range picks {
		if got, want := j%3, q.ReplicaAZ(i); got != want {
			t.Fatalf("split replica %d on AZ %d, want %d", i, got, want)
		}
	}
}
