// Package chaos provides scripted fault injection against an Aurora
// cluster: node crashes, AZ outages, slow and failed disks, partitions and
// page corruption — the "continuous low level background noise of node,
// disk and network path failures" of §2.1 — together with invariant
// checkers that verify the cluster's availability claims while faults are
// active.
package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"aurora/internal/core"
	"aurora/internal/engine"
	"aurora/internal/netsim"
	"aurora/internal/volume"
)

// Fault is one injectable failure with its undo.
type Fault struct {
	Name   string
	Inject func()
	Heal   func()
}

// CrashNode crashes one storage node.
func CrashNode(f *volume.Fleet, pg core.PGID, replica int) Fault {
	n := f.Node(pg, replica)
	return Fault{
		Name:   fmt.Sprintf("crash %s", n.NodeID()),
		Inject: n.Crash,
		Heal: func() {
			n.Restart()
			n.GossipOnce()
		},
	}
}

// WipeAndRepairNode destroys a segment's disk; healing re-replicates it.
func WipeAndRepairNode(f *volume.Fleet, pg core.PGID, replica int) Fault {
	n := f.Node(pg, replica)
	return Fault{
		Name:   fmt.Sprintf("wipe %s", n.NodeID()),
		Inject: n.Wipe,
		Heal: func() {
			if err := f.RepairSegment(pg, replica); err != nil {
				panic(fmt.Sprintf("chaos: repair failed: %v", err))
			}
		},
	}
}

// AZOutage fails a whole availability zone.
func AZOutage(net *netsim.Network, az netsim.AZ) Fault {
	return Fault{
		Name:   fmt.Sprintf("AZ %d outage", az),
		Inject: func() { net.SetAZDown(az, true) },
		Heal:   func() { net.SetAZDown(az, false) },
	}
}

// SlowDisk makes one segment's SSD 20x slower (a hot disk, §2.3).
func SlowDisk(f *volume.Fleet, pg core.PGID, replica int) Fault {
	d := f.Node(pg, replica).Disk()
	return Fault{
		Name:   fmt.Sprintf("slow disk pg%d/%d", pg, replica),
		Inject: func() { d.SetSlow(20) },
		Heal:   func() { d.SetSlow(0) },
	}
}

// CorruptPage flips bits in a materialized page; the scrubber heals it.
func CorruptPage(f *volume.Fleet, pg core.PGID, replica int, page core.PageID) Fault {
	n := f.Node(pg, replica)
	return Fault{
		Name:   fmt.Sprintf("corrupt pg%d/%d page %d", pg, replica, page),
		Inject: func() { n.CorruptPage(page) },
		Heal:   func() { n.ScrubOnce() },
	}
}

// Report summarises a chaos run.
type Report struct {
	FaultsInjected  int
	WritesAttempted int
	WritesOK        int
	ReadsAttempted  int
	ReadsOK         int
	DataErrors      int // reads that returned wrong data: must be zero
}

// Runner drives a workload while injecting faults from a schedule.
type Runner struct {
	DB     *engine.DB
	Faults []Fault
	// HoldFor is how long each fault stays active (default 20ms).
	HoldFor time.Duration
	Seed    int64
}

// Run injects each fault in turn while writing and reading a set of probe
// rows, verifying that every successful read returns the value most
// recently committed for that key.
func (r *Runner) Run() Report {
	if r.HoldFor <= 0 {
		r.HoldFor = 20 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(r.Seed))
	rep := Report{}
	expected := map[string]string{}

	probe := func() {
		// One write and two reads per probe round.
		k := fmt.Sprintf("chaos-%02d", rng.Intn(16))
		v := fmt.Sprintf("v%d", rng.Int63())
		rep.WritesAttempted++
		if err := r.DB.Put([]byte(k), []byte(v)); err == nil {
			rep.WritesOK++
			expected[k] = v
		}
		for i := 0; i < 2; i++ {
			k := fmt.Sprintf("chaos-%02d", rng.Intn(16))
			want, known := expected[k]
			rep.ReadsAttempted++
			got, ok, err := r.DB.Get([]byte(k))
			if err != nil {
				continue
			}
			rep.ReadsOK++
			if known && ok && string(got) != want {
				rep.DataErrors++
			}
			if known && !ok {
				rep.DataErrors++
			}
		}
	}

	for _, f := range r.Faults {
		f.Inject()
		rep.FaultsInjected++
		deadline := time.Now().Add(r.HoldFor)
		for time.Now().Before(deadline) {
			probe()
		}
		f.Heal()
		// And probe again healthy.
		for i := 0; i < 5; i++ {
			probe()
		}
	}
	return rep
}
