// Package chaos provides scripted fault injection against an Aurora
// cluster: node crashes, AZ outages, slow and failed disks, partitions,
// page corruption, and the gray regime — probabilistic packet loss and
// slow-but-alive nodes — the "continuous low level background noise of
// node, disk and network path failures" of §2.1, together with invariant
// checkers that verify the cluster's availability claims while faults are
// active.
package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"aurora/internal/core"
	"aurora/internal/engine"
	"aurora/internal/netsim"
	"aurora/internal/volume"
)

// Fault is one injectable failure with its undo. Heal reports whether the
// undo itself succeeded; a fleet healthy enough to probe may still be too
// degraded to repair, and that is a result, not a panic.
type Fault struct {
	Name   string
	Inject func()
	Heal   func() error
}

// CrashNode crashes one storage node.
func CrashNode(f *volume.Fleet, pg core.PGID, replica int) Fault {
	n := f.Node(pg, replica)
	return Fault{
		Name:   fmt.Sprintf("crash %s", n.NodeID()),
		Inject: n.Crash,
		Heal: func() error {
			n.Restart()
			n.GossipOnce()
			return nil
		},
	}
}

// WipeAndRepairNode destroys a segment's disk; healing re-replicates it. A
// failed repair is propagated into the report's HealErrors, not panicked —
// the probe workload keeps judging the cluster either way.
func WipeAndRepairNode(f *volume.Fleet, pg core.PGID, replica int) Fault {
	n := f.Node(pg, replica)
	return Fault{
		Name:   fmt.Sprintf("wipe %s", n.NodeID()),
		Inject: n.Wipe,
		Heal: func() error {
			if err := f.RepairSegment(pg, replica); err != nil {
				return fmt.Errorf("repair %s: %w", n.NodeID(), err)
			}
			return nil
		},
	}
}

// WipeNode destroys a segment's disk and deliberately leaves healing to the
// fleet's self-driven repair monitor: the write path's failure streak marks
// the replica suspect, and the monitor re-replicates it (§2.3's MTTR loop)
// with no chaos-script intervention.
func WipeNode(f *volume.Fleet, pg core.PGID, replica int) Fault {
	n := f.Node(pg, replica)
	return Fault{
		Name:   fmt.Sprintf("wipe %s (self-heal)", n.NodeID()),
		Inject: n.Wipe,
		Heal:   func() error { return nil },
	}
}

// AZOutage fails a whole availability zone.
func AZOutage(net *netsim.Network, az netsim.AZ) Fault {
	return Fault{
		Name:   fmt.Sprintf("AZ %d outage", az),
		Inject: func() { net.SetAZDown(az, true) },
		Heal:   func() error { net.SetAZDown(az, false); return nil },
	}
}

// SlowDisk makes one segment's SSD 20x slower (a hot disk, §2.3).
func SlowDisk(f *volume.Fleet, pg core.PGID, replica int) Fault {
	d := f.Node(pg, replica).Disk()
	return Fault{
		Name:   fmt.Sprintf("slow disk pg%d/%d", pg, replica),
		Inject: func() { d.SetSlow(20) },
		Heal:   func() error { d.SetSlow(0); return nil },
	}
}

// PacketLoss silently drops a fraction of every message on the network —
// the gray path regime. The write path must ride it out with redelivery,
// the read path with hedging; no committed data may be lost.
func PacketLoss(net *netsim.Network, prob float64) Fault {
	return Fault{
		Name:   fmt.Sprintf("packet loss %.0f%%", prob*100),
		Inject: func() { net.SetDropProb(prob) },
		Heal:   func() error { net.SetDropProb(0); return nil },
	}
}

// GraySlowNode inflates the latency of every message touching one node
// without marking it down — the classic gray failure: alive, acking,
// stalling. Hedged reads and health-ordered routing must keep the tail
// bounded while the quorum absorbs the slow acks.
func GraySlowNode(net *netsim.Network, id netsim.NodeID, delay time.Duration) Fault {
	return Fault{
		Name:   fmt.Sprintf("gray-slow %s (+%v)", id, delay),
		Inject: func() { _ = net.SetNodeDelay(id, delay) },
		Heal:   func() error { return net.SetNodeDelay(id, 0) },
	}
}

// CorruptPage flips bits in a materialized page; the scrubber heals it.
func CorruptPage(f *volume.Fleet, pg core.PGID, replica int, page core.PageID) Fault {
	n := f.Node(pg, replica)
	return Fault{
		Name:   fmt.Sprintf("corrupt pg%d/%d page %d", pg, replica, page),
		Inject: func() { n.CorruptPage(page) },
		Heal:   func() error { n.ScrubOnce(); return nil },
	}
}

// Compose bundles several faults into one that injects and heals them
// together — a failure regime (e.g. packet loss plus gray-slow replicas)
// rather than a single event.
func Compose(name string, faults ...Fault) Fault {
	return Fault{
		Name: name,
		Inject: func() {
			for _, f := range faults {
				f.Inject()
			}
		},
		Heal: func() error {
			var firstErr error
			for _, f := range faults {
				if err := f.Heal(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			return firstErr
		},
	}
}

// Report summarises a chaos run.
type Report struct {
	FaultsInjected  int
	WritesAttempted int
	WritesOK        int
	ReadsAttempted  int
	ReadsOK         int
	DataErrors      int     // reads that returned wrong data: must be zero
	HealErrors      []error // fault undos that failed (e.g. repair without peers)
}

// Runner drives a workload while injecting faults from a schedule.
type Runner struct {
	DB     *engine.DB
	Faults []Fault
	// ProbesPerFault is how many probe rounds run while each fault is
	// active (default 40). Pacing is a deterministic probe count, not a
	// wall-clock window, so a loaded CI machine exercises exactly the
	// same schedule as an idle one.
	ProbesPerFault int
	// HealedProbes is how many probe rounds run after each heal
	// (default 5).
	HealedProbes int
	Seed         int64
}

// Run injects each fault in turn while writing and reading a set of probe
// rows, verifying that every successful read returns the value most
// recently committed for that key.
func (r *Runner) Run() Report {
	if r.ProbesPerFault <= 0 {
		r.ProbesPerFault = 40
	}
	if r.HealedProbes <= 0 {
		r.HealedProbes = 5
	}
	rng := rand.New(rand.NewSource(r.Seed))
	rep := Report{}
	expected := map[string]string{}

	check := func(k string, got []byte, ok bool) {
		want, known := expected[k]
		if known && ok && string(got) != want {
			rep.DataErrors++
		}
		if known && !ok {
			rep.DataErrors++
		}
	}
	probe := func() {
		// One write, two cached-path reads and one storage-truth read per
		// probe round.
		k := fmt.Sprintf("chaos-%02d", rng.Intn(16))
		v := fmt.Sprintf("v%d", rng.Int63())
		rep.WritesAttempted++
		if err := r.DB.Put([]byte(k), []byte(v)); err == nil {
			rep.WritesOK++
			expected[k] = v
		}
		for i := 0; i < 2; i++ {
			k := fmt.Sprintf("chaos-%02d", rng.Intn(16))
			rep.ReadsAttempted++
			got, ok, err := r.DB.Get([]byte(k))
			if err != nil {
				continue
			}
			rep.ReadsOK++
			check(k, got, ok)
		}
		// The snapshot read bypasses the buffer cache and fetches pages from
		// the storage fleet itself: it proves committed data is durable out
		// there (not merely warm in the writer's cache) and is what drives
		// the hedged read path while gray faults are active.
		k = fmt.Sprintf("chaos-%02d", rng.Intn(16))
		rep.ReadsAttempted++
		tx := r.DB.BeginSnapshot()
		got, ok, err := tx.Get([]byte(k))
		tx.Abort()
		if err == nil {
			rep.ReadsOK++
			check(k, got, ok)
		}
	}

	for _, f := range r.Faults {
		f.Inject()
		rep.FaultsInjected++
		for i := 0; i < r.ProbesPerFault; i++ {
			probe()
		}
		if err := f.Heal(); err != nil {
			rep.HealErrors = append(rep.HealErrors, fmt.Errorf("%s: %w", f.Name, err))
		}
		// And probe again healthy.
		for i := 0; i < r.HealedProbes; i++ {
			probe()
		}
	}
	return rep
}
