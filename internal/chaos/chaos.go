// Package chaos provides scripted fault injection against an Aurora
// cluster: node crashes, AZ outages, slow and failed disks, partitions,
// page corruption, and the gray regime — probabilistic packet loss and
// slow-but-alive nodes — the "continuous low level background noise of
// node, disk and network path failures" of §2.1, together with invariant
// checkers that verify the cluster's availability claims while faults are
// active.
//
// Faults are context-aware: both injection and healing observe a
// context.Context, so a drill under a deadline can abort its schedule
// cleanly (the matrix harness in chaos/matrix relies on this). Timed
// compositions are expressed with Timeline, which injects and heals faults
// at deterministic tick offsets while a workload runs between ticks.
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"aurora/internal/core"
	"aurora/internal/engine"
	"aurora/internal/netsim"
	"aurora/internal/volume"
)

// Fault is one injectable failure with its undo. Both halves observe ctx:
// a heal that needs fleet cooperation (e.g. re-replication) gives up when
// the context fires rather than hanging the drill. Heal reports whether the
// undo itself succeeded; a fleet healthy enough to probe may still be too
// degraded to repair, and that is a result, not a panic.
type Fault struct {
	Name   string
	Inject func(ctx context.Context)
	Heal   func(ctx context.Context) error
}

// CrashNode crashes one storage node.
func CrashNode(f *volume.Fleet, pg core.PGID, replica int) Fault {
	n := f.Node(pg, replica)
	return Fault{
		Name:   fmt.Sprintf("crash %s", n.NodeID()),
		Inject: func(context.Context) { n.Crash() },
		Heal: func(context.Context) error {
			n.Restart()
			n.GossipOnce()
			return nil
		},
	}
}

// WipeAndRepairNode destroys a segment's disk; healing re-replicates it. A
// failed repair is propagated into the report's HealErrors, not panicked —
// the probe workload keeps judging the cluster either way.
func WipeAndRepairNode(f *volume.Fleet, pg core.PGID, replica int) Fault {
	n := f.Node(pg, replica)
	return Fault{
		Name:   fmt.Sprintf("wipe %s", n.NodeID()),
		Inject: func(context.Context) { n.Wipe() },
		Heal: func(ctx context.Context) error {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("repair %s: %w", n.NodeID(), err)
			}
			if err := f.RepairSegment(pg, replica); err != nil {
				return fmt.Errorf("repair %s: %w", n.NodeID(), err)
			}
			return nil
		},
	}
}

// WipeNode destroys a segment's disk and deliberately leaves healing to the
// fleet's self-driven repair monitor: the write path's failure streak marks
// the replica suspect, and the monitor re-replicates it (§2.3's MTTR loop)
// with no chaos-script intervention.
func WipeNode(f *volume.Fleet, pg core.PGID, replica int) Fault {
	n := f.Node(pg, replica)
	return Fault{
		Name:   fmt.Sprintf("wipe %s (self-heal)", n.NodeID()),
		Inject: func(context.Context) { n.Wipe() },
		Heal:   func(context.Context) error { return nil },
	}
}

// AZOutage fails a whole availability zone.
func AZOutage(net *netsim.Network, az netsim.AZ) Fault {
	return Fault{
		Name:   fmt.Sprintf("AZ %d outage", az),
		Inject: func(context.Context) { net.SetAZDown(az, true) },
		Heal:   func(context.Context) error { net.SetAZDown(az, false); return nil },
	}
}

// SlowDisk makes one segment's SSD 20x slower (a hot disk, §2.3).
func SlowDisk(f *volume.Fleet, pg core.PGID, replica int) Fault {
	d := f.Node(pg, replica).Disk()
	return Fault{
		Name:   fmt.Sprintf("slow disk pg%d/%d", pg, replica),
		Inject: func(context.Context) { d.SetSlow(20) },
		Heal:   func(context.Context) error { d.SetSlow(0); return nil },
	}
}

// PacketLoss silently drops a fraction of every message on the network —
// the gray path regime. The write path must ride it out with redelivery,
// the read path with hedging; no committed data may be lost.
func PacketLoss(net *netsim.Network, prob float64) Fault {
	return Fault{
		Name:   fmt.Sprintf("packet loss %.0f%%", prob*100),
		Inject: func(context.Context) { net.SetDropProb(prob) },
		Heal:   func(context.Context) error { net.SetDropProb(0); return nil },
	}
}

// GraySlowNode inflates the latency of every message touching one node
// without marking it down — the classic gray failure: alive, acking,
// stalling. Hedged reads and health-ordered routing must keep the tail
// bounded while the quorum absorbs the slow acks.
func GraySlowNode(net *netsim.Network, id netsim.NodeID, delay time.Duration) Fault {
	return Fault{
		Name:   fmt.Sprintf("gray-slow %s (+%v)", id, delay),
		Inject: func(context.Context) { _ = net.SetNodeDelay(id, delay) },
		Heal:   func(context.Context) error { return net.SetNodeDelay(id, 0) },
	}
}

// CorruptPage flips bits in a materialized page; the scrubber heals it. The
// read path refuses to serve a base image whose CRC fails (hedging to a
// peer instead), so the corruption window is invisible to readers.
func CorruptPage(f *volume.Fleet, pg core.PGID, replica int, page core.PageID) Fault {
	n := f.Node(pg, replica)
	return Fault{
		Name:   fmt.Sprintf("corrupt pg%d/%d page %d", pg, replica, page),
		Inject: func(context.Context) { n.CorruptPage(page) },
		Heal:   func(context.Context) error { n.ScrubOnce(); return nil },
	}
}

// Compose bundles several faults into one that injects and heals them
// together — a failure regime (e.g. packet loss plus gray-slow replicas)
// rather than a single event.
func Compose(name string, faults ...Fault) Fault {
	return Fault{
		Name: name,
		Inject: func(ctx context.Context) {
			for _, f := range faults {
				f.Inject(ctx)
			}
		},
		Heal: func(ctx context.Context) error {
			var firstErr error
			for _, f := range faults {
				if err := f.Heal(ctx); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			return firstErr
		},
	}
}

// Step schedules one fault on a Timeline: the fault injects when the
// timeline reaches tick Start and heals Duration ticks later (a Duration of
// 0 heals on the next tick). Overlapping steps compose failures; repeating
// the same fault in back-to-back windows models rapid kill/restore cycles.
type Step struct {
	Start    int
	Duration int
	Fault    Fault
}

// Timeline drives a set of timed fault steps from a deterministic tick
// counter. The caller owns the clock: it calls Tick once per workload round
// (the same probe-count pacing Runner uses), so schedules replay exactly
// under any machine load. Heal failures accumulate; HealAll force-heals
// whatever is still active — including steps whose start never arrived,
// which are skipped, not injected.
type Timeline struct {
	Steps []Step

	active []bool
	done   []bool
	errs   []error
}

// Tick fires every step due at tick t: steps whose window opens inject,
// steps whose window closed heal. Injection order follows Steps order.
func (tl *Timeline) Tick(ctx context.Context, t int) {
	tl.ensure()
	for i := range tl.Steps {
		s := &tl.Steps[i]
		if !tl.active[i] && !tl.done[i] && t >= s.Start {
			s.Fault.Inject(ctx)
			tl.active[i] = true
		}
		if tl.active[i] && t >= s.Start+s.Duration+1 {
			tl.healStep(ctx, i)
		}
	}
}

// HealAll heals every still-active step (in Steps order) and marks pending
// steps done without injecting them. It returns the accumulated heal
// errors, including those from earlier Ticks.
func (tl *Timeline) HealAll(ctx context.Context) []error {
	tl.ensure()
	for i := range tl.Steps {
		if tl.active[i] {
			tl.healStep(ctx, i)
		}
		tl.done[i] = true
	}
	return tl.errs
}

// End returns the first tick at which every step has injected and healed.
func (tl *Timeline) End() int {
	end := 0
	for _, s := range tl.Steps {
		if e := s.Start + s.Duration + 1; e > end {
			end = e
		}
	}
	return end
}

func (tl *Timeline) healStep(ctx context.Context, i int) {
	if err := tl.Steps[i].Fault.Heal(ctx); err != nil {
		tl.errs = append(tl.errs, fmt.Errorf("%s: %w", tl.Steps[i].Fault.Name, err))
	}
	tl.active[i] = false
	tl.done[i] = true
}

func (tl *Timeline) ensure() {
	if tl.active == nil {
		tl.active = make([]bool, len(tl.Steps))
		tl.done = make([]bool, len(tl.Steps))
	}
}

// Report summarises a chaos run. Everything a caller needs to judge the
// run — including an abort and the heals that failed — is carried here, so
// a scenario driver can render one verdict without out-of-band state.
type Report struct {
	FaultsInjected  int
	WritesAttempted int
	WritesOK        int
	ReadsAttempted  int
	ReadsOK         int
	DataErrors      int     // reads that returned wrong data: must be zero
	HealErrors      []error // fault undos that failed (e.g. repair without peers)

	// Aborted is set when the run's context fired before the schedule
	// completed; Err carries the context's error. Faults already active are
	// still healed on the way out (under a detached context), so an aborted
	// drill does not leak injected faults into the next one.
	Aborted bool
	Err     error
}

// Runner drives a workload while injecting faults from a schedule.
type Runner struct {
	DB     *engine.DB
	Faults []Fault
	// ProbesPerFault is how many probe rounds run while each fault is
	// active (default 40). Pacing is a deterministic probe count, not a
	// wall-clock window, so a loaded CI machine exercises exactly the
	// same schedule as an idle one.
	ProbesPerFault int
	// HealedProbes is how many probe rounds run after each heal
	// (default 5).
	HealedProbes int
	Seed         int64
}

// Run injects each fault in turn while writing and reading a set of probe
// rows, verifying that every successful read returns the value most
// recently committed for that key.
func (r *Runner) Run() Report { return r.RunCtx(context.Background()) }

// RunCtx is Run bounded by ctx: when the context fires mid-schedule the
// runner heals the active fault, marks the report aborted and returns —
// remaining faults are never injected.
func (r *Runner) RunCtx(ctx context.Context) Report {
	if r.ProbesPerFault <= 0 {
		r.ProbesPerFault = 40
	}
	if r.HealedProbes <= 0 {
		r.HealedProbes = 5
	}
	rng := rand.New(rand.NewSource(r.Seed))
	rep := Report{}
	expected := map[string]string{}

	check := func(k string, got []byte, ok bool) {
		want, known := expected[k]
		if known && ok && string(got) != want {
			rep.DataErrors++
		}
		if known && !ok {
			rep.DataErrors++
		}
	}
	probe := func() {
		// One write, two cached-path reads and one storage-truth read per
		// probe round.
		k := fmt.Sprintf("chaos-%02d", rng.Intn(16))
		v := fmt.Sprintf("v%d", rng.Int63())
		rep.WritesAttempted++
		if err := r.DB.Put([]byte(k), []byte(v)); err == nil {
			rep.WritesOK++
			expected[k] = v
		}
		for i := 0; i < 2; i++ {
			k := fmt.Sprintf("chaos-%02d", rng.Intn(16))
			rep.ReadsAttempted++
			got, ok, err := r.DB.Get([]byte(k))
			if err != nil {
				continue
			}
			rep.ReadsOK++
			check(k, got, ok)
		}
		// The snapshot read bypasses the buffer cache and fetches pages from
		// the storage fleet itself: it proves committed data is durable out
		// there (not merely warm in the writer's cache) and is what drives
		// the hedged read path while gray faults are active.
		k = fmt.Sprintf("chaos-%02d", rng.Intn(16))
		rep.ReadsAttempted++
		tx := r.DB.BeginSnapshot()
		got, ok, err := tx.Get([]byte(k))
		tx.Abort()
		if err == nil {
			rep.ReadsOK++
			check(k, got, ok)
		}
	}
	abort := func(f *Fault) Report {
		rep.Aborted = true
		rep.Err = ctx.Err()
		if f != nil {
			// Heal under a detached context: the deadline that aborted the
			// drill must not also strand the fault injected.
			if err := f.Heal(context.WithoutCancel(ctx)); err != nil {
				rep.HealErrors = append(rep.HealErrors, fmt.Errorf("%s: %w", f.Name, err))
			}
		}
		return rep
	}

	for fi := range r.Faults {
		f := &r.Faults[fi]
		if ctx.Err() != nil {
			return abort(nil)
		}
		f.Inject(ctx)
		rep.FaultsInjected++
		for i := 0; i < r.ProbesPerFault; i++ {
			if ctx.Err() != nil {
				return abort(f)
			}
			probe()
		}
		if err := f.Heal(ctx); err != nil {
			rep.HealErrors = append(rep.HealErrors, fmt.Errorf("%s: %w", f.Name, err))
		}
		// And probe again healthy.
		for i := 0; i < r.HealedProbes; i++ {
			if ctx.Err() != nil {
				return abort(nil)
			}
			probe()
		}
	}
	return rep
}
