package chaos

import (
	"os"
	"strconv"
	"time"
)

// The chaos drills pace fault schedules by deterministic probe counts, not
// wall-clock windows, so a loaded CI runner exercises exactly the same
// schedule as an idle machine. The residual places where wall-clock time is
// unavoidable — waiting for background monitors to settle, poll intervals,
// gray-slow injection delays, VDL sampling — all derive from the single
// scale factor here, so one knob stretches every chaos timer together
// instead of each test pinning its own magic sleep.
//
// AURORA_CHAOS_TIMESCALE multiplies every scaled duration; set it to 2 or 4
// on runners where the race detector or shared tenancy makes the defaults
// too tight. Values below 1 are clamped: shrinking the windows can only
// manufacture flakes.
var timeScale = func() float64 {
	s := os.Getenv("AURORA_CHAOS_TIMESCALE")
	if s == "" {
		return 1
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f < 1 {
		return 1
	}
	return f
}()

// Scaled stretches a base duration by the chaos time scale.
func Scaled(d time.Duration) time.Duration {
	if timeScale == 1 {
		return d
	}
	return time.Duration(float64(d) * timeScale)
}

// SettleTimeout bounds waits for background machinery (repair monitors,
// scrub loops, recovery convergence) to finish after the last fault heals.
func SettleTimeout() time.Duration { return Scaled(2 * time.Second) }

// PollInterval paces polls inside a SettleTimeout window.
func PollInterval() time.Duration { return Scaled(5 * time.Millisecond) }

// SampleInterval paces high-frequency invariant samplers (the VDL
// monotonicity watcher).
func SampleInterval() time.Duration { return Scaled(50 * time.Microsecond) }

// GraySlowDelay is the canonical per-message delay injected by gray-slow
// faults in drills: large against the simulated network's RTT, small
// against the test's wall-clock budget.
func GraySlowDelay() time.Duration { return Scaled(2 * time.Millisecond) }
