package matrix

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"aurora/internal/chaos"
	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/netsim"
	"aurora/internal/volume"
)

// Config selects a matrix run.
type Config struct {
	// Seed is the master seed: it shuffles the matrix and derives every
	// scenario's own seed, so the same Seed+Tier+Count replays the same
	// campaign.
	Seed int64
	// Tier picks the default scenario count: "smoke" (12, CI-sized) or
	// "full" (132, three sweeps of the matrix — nightly-sized).
	Tier string
	// Count overrides the tier's scenario count when > 0.
	Count int
	// Only filters scenarios to those whose fault/stressor name contains
	// this substring — the replay knob printed with every failure.
	Only string
	// Out receives per-scenario progress lines; nil discards them.
	Out io.Writer
}

// Outcomes of one scenario.
const (
	OutcomePass  = "pass"
	OutcomeFail  = "FAIL"
	OutcomeFlaky = "flaky" // failed once, passed on an identical-seed retry
)

// ScenarioResult is one scenario's verdict with everything needed to judge
// and replay it.
type ScenarioResult struct {
	Scenario
	Outcome    string
	Violations []string // first run's violations (kept when a retry passes)
	Retried    bool
	Writes     int
	WritesOK   int
	Reads      int
	ReadsOK    int
}

func (r ScenarioResult) failed() bool { return len(r.Violations) > 0 }

// Run executes the campaign: each scenario gets a private cluster, a
// seeded checksumming workload, its fault timeline, and the invariant
// checks. A scenario that fails is retried once with the identical seed;
// passing the retry classifies it flaky rather than failed — the
// distinction the nightly table exists to surface.
func Run(ctx context.Context, cfg Config) (*Results, error) {
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	if cfg.Tier == "" {
		cfg.Tier = "smoke"
	}
	count := cfg.Count
	if count <= 0 {
		if cfg.Tier == "full" {
			count = 132
		} else {
			count = 12
		}
	}
	res := &Results{Seed: cfg.Seed, Tier: cfg.Tier, Count: count}
	for _, sc := range Plan(cfg.Seed, count) {
		if cfg.Only != "" && !strings.Contains(sc.Name(), cfg.Only) {
			continue
		}
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		fmt.Fprintf(out, "[%2d/%d] %-24s seed=%-12d ", sc.Index+1, count, sc.Name(), sc.Seed)
		r := runScenario(ctx, sc)
		r.Outcome = OutcomePass
		if r.failed() {
			r.Outcome = OutcomeFail
			if ctx.Err() == nil {
				fmt.Fprintf(out, "fail(%d), retry... ", len(r.Violations))
				r.Retried = true
				if retry := runScenario(ctx, sc); !retry.failed() {
					r.Outcome = OutcomeFlaky
				}
			}
		}
		fmt.Fprintln(out, r.Outcome)
		res.Scenarios = append(res.Scenarios, r)
	}
	return res, ctx.Err()
}

// runScenario provisions, stresses, heals, verifies and tears down one
// scenario, returning every invariant violation observed.
func runScenario(ctx context.Context, sc Scenario) ScenarioResult {
	res := ScenarioResult{Scenario: sc}
	baseline := settleGoroutines()

	st, err := newStack(sc)
	if err != nil {
		res.Violations = append(res.Violations, "provision: "+err.Error())
		return res
	}
	led := NewLedger()
	nclients := 3
	if sc.Stress == StressCommitters {
		nclients = 8
	}
	clients := newClients(nclients, sc, st.db, led)
	rng := rand.New(rand.NewSource(sc.Seed ^ 0x5eed))
	var windows []window
	tl := buildTimeline(sc, st, led, rng, &windows)

	stopWatch := watchVDL(st.db)
	for _, c := range clients {
		c.seed(ctx)
	}

	// The tick loop: fault schedule advances between workload rounds, two
	// op rounds per tick, plus healed ticks after the last window closes.
	aborted := false
	for t := 0; t <= tl.End()+4; t++ {
		if ctx.Err() != nil {
			aborted = true
			break
		}
		tl.Tick(ctx, t)
		round(ctx, clients)
		round(ctx, clients)
	}
	// Heal under a detached context: an abort must not strand injected
	// faults (satellite contract shared with chaos.Runner).
	for _, e := range tl.HealAll(context.WithoutCancel(ctx)) {
		res.Violations = append(res.Violations, "heal: "+e.Error())
	}

	if !aborted {
		res.Violations = append(res.Violations, verifyRecovered(ctx, st.db, led, allKeys(clients))...)
		if len(windows) > 0 {
			res.Violations = append(res.Violations, verifyRestore(ctx, st, led, allKeys(clients), windows[len(windows)-1])...)
		}
	}

	if regressions := stopWatch(); regressions > 0 {
		res.Violations = append(res.Violations, fmt.Sprintf("VDL regressed %d times", regressions))
	}
	for _, c := range clients {
		res.Writes += c.writes
		res.WritesOK += c.writesOK
		res.Reads += c.reads
		res.ReadsOK += c.readsOK
		res.Violations = append(res.Violations, c.violations...)
	}
	st.teardown()
	if settled := settleGoroutines(); settled > baseline {
		res.Violations = append(res.Violations, fmt.Sprintf("goroutine leak: %d after teardown, baseline %d", settled, baseline))
	}
	if aborted {
		res.Violations = append(res.Violations, "aborted: "+ctx.Err().Error())
	}
	return res
}

// verifyRecovered holds the cluster to a bounded recovery time: after the
// last heal, a fully clean read-back pass (every key, cached and snapshot
// paths) must complete within the scaled bound. Read errors are transient
// and retried; wrong bytes are permanent violations immediately.
func verifyRecovered(ctx context.Context, db *engine.DB, led *Ledger, keys []string) []string {
	bound := chaos.Scaled(10 * time.Second)
	deadline := time.Now().Add(bound)
	for {
		viols, err := verifyOnce(ctx, db, led, keys)
		if len(viols) > 0 {
			return viols
		}
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return []string{fmt.Sprintf("recovery exceeded %v bound: %v", bound, err)}
		}
		time.Sleep(chaos.PollInterval())
	}
}

// verifyRestore replays the volume as of the scenario's last backup sweep
// onto a brand-new fleet, recovers it, and holds every key to the ledger's
// restore-window rule.
func verifyRestore(ctx context.Context, st *stack, led *Ledger, keys []string, w window) (viols []string) {
	rf, _, err := volume.RestoreFleet(volume.FleetConfig{
		Name:     st.name + "r",
		Geometry: core.UniformGeometry(2),
		Net:      netsim.New(netsim.FastLocal()),
		Disk:     disk.FastLocal(),
		Store:    st.store,
	}, w.asOf)
	if err != nil {
		return []string{"restore: " + err.Error()}
	}
	defer rf.Stop()
	rdb, _, err := engine.Recover(ctx, rf, volume.ClientConfig{WriterNode: netsim.NodeID(st.name + "r-writer"), WriterAZ: 0}, engine.Config{})
	if err != nil {
		return []string{"restore recovery: " + err.Error()}
	}
	defer rdb.Close()
	for _, key := range keys {
		val, found, err := rdb.Get([]byte(key))
		if err != nil {
			viols = append(viols, fmt.Sprintf("restored read %s: %v", key, err))
			continue
		}
		if verr := led.VerifyRestored(key, w.s0, w.s1, val, found); verr != nil {
			viols = append(viols, "restored: "+verr.Error())
		}
	}
	return viols
}

func allKeys(clients []*client) []string {
	var out []string
	for _, c := range clients {
		out = append(out, c.keys...)
	}
	return out
}
