package matrix

import (
	"strings"
	"testing"
)

func TestLedgerVerifyReadRules(t *testing.T) {
	l := NewLedger()
	v1, v2, v3 := []byte("one"), []byte("two"), []byte("three")

	// Nothing acked yet: not-found is fine, and any attempted value is fine.
	m, had := l.ReadMarker("k")
	if had {
		t.Fatal("marker before any ack")
	}
	if err := l.VerifyRead("k", m, had, nil, false); err != nil {
		t.Fatalf("not-found before ack: %v", err)
	}

	s1 := l.Begin("k", v1)
	l.Ack("k", s1)
	m, had = l.ReadMarker("k")
	if !had || m != s1 {
		t.Fatalf("marker = %d/%v, want %d/true", m, had, s1)
	}

	// The acked value passes; not-found and never-written values fail.
	if err := l.VerifyRead("k", m, had, v1, true); err != nil {
		t.Fatalf("acked value rejected: %v", err)
	}
	if err := l.VerifyRead("k", m, had, nil, false); err == nil {
		t.Fatal("vanished acked key accepted")
	}
	if err := l.VerifyRead("k", m, had, []byte("bogus"), true); err == nil ||
		!strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("unknown digest: %v", err)
	}

	// A maybe (unacked) newer write is allowed but not required.
	s2 := l.Begin("k", v2)
	if err := l.VerifyRead("k", m, had, v2, true); err != nil {
		t.Fatalf("maybe write rejected: %v", err)
	}
	if err := l.VerifyRead("k", m, had, v1, true); err != nil {
		t.Fatalf("floor value rejected while newer write unacked: %v", err)
	}

	// Once the newer write acks, a marker captured after it must refuse v1.
	l.Ack("k", s2)
	m2, _ := l.ReadMarker("k")
	if m2 != s2 {
		t.Fatalf("marker = %d, want %d", m2, s2)
	}
	if err := l.VerifyRead("k", m2, true, v1, true); err == nil {
		t.Fatal("stale value accepted after newer ack")
	}
	// But a read issued against the OLD marker may still legally see v2 or v3.
	l.Begin("k", v3)
	if err := l.VerifyRead("k", m, had, v3, true); err != nil {
		t.Fatalf("newer maybe rejected against old marker: %v", err)
	}
}

func TestLedgerDuplicatePayloadNotStale(t *testing.T) {
	l := NewLedger()
	same := []byte("same-bytes")
	s1 := l.Begin("k", same)
	l.Ack("k", s1)
	s2 := l.Begin("k", same) // rewrite of identical bytes
	l.Ack("k", s2)
	m, _ := l.ReadMarker("k")
	if m != s2 {
		t.Fatalf("marker %d, want %d", m, s2)
	}
	// The digest matches an old entry AND the marker entry: not stale.
	if err := l.VerifyRead("k", m, true, same, true); err != nil {
		t.Fatalf("duplicate payload flagged stale: %v", err)
	}
}

func TestLedgerVerifyRestoredWindow(t *testing.T) {
	l := NewLedger()
	vPre, vIn, vPost := []byte("pre"), []byte("in"), []byte("post")
	sPre := l.Begin("k", vPre)
	l.Ack("k", sPre)
	s0 := l.Mark()
	sIn := l.Begin("k", vIn) // racing the sweep: may or may not be captured
	s1 := l.Mark()
	l.Ack("k", sIn)
	sPost := l.Begin("k", vPost) // after the restore point: must never appear
	l.Ack("k", sPost)

	if err := l.VerifyRestored("k", s0, s1, vPre, true); err != nil {
		t.Fatalf("pre-sweep floor rejected: %v", err)
	}
	if err := l.VerifyRestored("k", s0, s1, vIn, true); err != nil {
		t.Fatalf("in-window write rejected: %v", err)
	}
	if err := l.VerifyRestored("k", s0, s1, vPost, true); err == nil {
		t.Fatal("post-window write accepted")
	}
	if err := l.VerifyRestored("k", s0, s1, nil, false); err == nil {
		t.Fatal("missing pre-sweep acked key accepted")
	}
	// A key never acked before the sweep may legitimately be absent.
	l.Begin("fresh", vPost)
	if err := l.VerifyRestored("fresh", s0, s0, nil, false); err != nil {
		t.Fatalf("absent unacked key rejected: %v", err)
	}
}

// A deadline-detached commit keeps shipping after its caller gave up: its
// bytes may surface in any backup taken after it was begun, even though it
// predates the sweep mark and was never acknowledged.
func TestLedgerVerifyRestoredDetachedCommit(t *testing.T) {
	l := NewLedger()
	vAcked, vDetached := []byte("acked"), []byte("detached")
	sA := l.Begin("k", vAcked)
	l.Ack("k", sA)
	l.Begin("k", vDetached) // CommitCtx deadline fired: maybe, never acked
	s0 := l.Mark()
	s1 := s0 // sweep with nothing racing it
	if err := l.VerifyRestored("k", s0, s1, vDetached, true); err != nil {
		t.Fatalf("pre-sweep detached write rejected: %v", err)
	}
	if err := l.VerifyRestored("k", s0, s1, vAcked, true); err != nil {
		t.Fatalf("floor rejected: %v", err)
	}
	// A detached write begun AFTER the sweep finished can never appear.
	l.Begin("k", []byte("late-detach"))
	if err := l.VerifyRestored("k", s0, s1, []byte("late-detach"), true); err == nil {
		t.Fatal("post-sweep detached write accepted")
	}
}

func TestPlanIsDeterministicAndSeedsDiffer(t *testing.T) {
	a, b := Plan(42, 40), Plan(42, 40)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if a[0].Seed == a[1].Seed {
		t.Fatal("adjacent scenarios share a seed")
	}
	// One sweep covers every cell before cycling.
	seen := map[string]bool{}
	for _, sc := range a[:32] {
		seen[sc.Name()] = true
	}
	if len(seen) != 32 {
		t.Fatalf("first sweep covered %d/32 cells", len(seen))
	}
	if c := Plan(7, 40); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatal("different master seeds drew identical prefixes")
	}
}
