package matrix

import (
	"runtime"
	"time"

	"aurora/internal/chaos"
	"aurora/internal/engine"
)

// watchVDL samples the volume durable LSN and counts regressions: VDL is
// the engine's externally visible durability promise and must never move
// backwards, faults or not. The returned stop joins the watcher and
// reports the violation count.
func watchVDL(db *engine.DB) (stop func() int) {
	done := make(chan struct{})
	out := make(chan int, 1)
	go func() {
		regressions := 0
		last := db.VDL()
		t := time.NewTicker(chaos.SampleInterval())
		defer t.Stop()
		for {
			select {
			case <-done:
				out <- regressions
				return
			case <-t.C:
				v := db.VDL()
				if v < last {
					regressions++
				}
				last = v
			}
		}
	}()
	return func() int {
		close(done)
		return <-out
	}
}

// settleGoroutines waits for the goroutine count to stop moving and
// returns it — the baseline/after pair around a scenario is the leak
// check: every goroutine a scenario spawns (background storage loops,
// hedged reads, detached commits, growth rebalancers) must be gone once
// its stack is torn down.
func settleGoroutines() int {
	prev := -1
	for i := 0; i < 50; i++ {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n == prev {
			return n
		}
		prev = n
		time.Sleep(chaos.Scaled(10 * time.Millisecond))
	}
	return prev
}
