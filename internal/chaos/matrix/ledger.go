// Package matrix is the randomized end-to-end integrity chaos harness: a
// seeded PRNG draws scenarios from the cross product of faults (crash,
// wipe+repair, AZ outage, packet loss, gray-slow, page corruption, live
// growth, backup/restore) and stressors (rapid kill/restore cycles,
// concurrent committers, large multi-page transactions, commit deadlines),
// runs a checksumming workload through each, and checks the invariants the
// paper's availability claims reduce to: zero checksum mismatches, no lost
// acknowledged commits, monotone VDL, bounded recovery after the last heal,
// and no goroutine leaks. Every failure prints a one-line replay command
// carrying the seed.
package matrix

import (
	"crypto/sha256"
	"fmt"
	"sync"
)

// digest is a SHA-256 of a value's bytes: the client-side truth the harness
// verifies every read against.
type digest [sha256.Size]byte

func digestOf(val []byte) digest { return sha256.Sum256(val) }

// entry is one write a client attempted: its global sequence number, the
// value's digest, and whether the commit was acknowledged. Unacknowledged
// entries (commit deadline fired, commit error under faults) are "maybe"
// writes: the engine's detach-without-withdrawal contract means they may
// still become durable, so reads are allowed — never required — to see
// them.
type entry struct {
	seq   uint64
	dig   digest
	acked bool
}

// keyState is the per-key write history, ascending by seq. Each key is
// written by exactly one client goroutine, so the history is totally
// ordered and the last acknowledged entry is the floor every subsequent
// read must reach.
type keyState struct {
	entries []entry
}

// Ledger is the client-side acknowledgment ledger: the ground truth the
// integrity checks compare storage against. All methods are safe for
// concurrent use by the workload clients.
type Ledger struct {
	mu   sync.Mutex
	seq  uint64
	keys map[string]*keyState
}

func NewLedger() *Ledger { return &Ledger{keys: make(map[string]*keyState)} }

// Begin records an attempted write of val to key before the commit is
// issued, returning the entry's global sequence number. Until Ack, the
// entry is a "maybe": observable but not required.
func (l *Ledger) Begin(key string, val []byte) uint64 {
	d := digestOf(val)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	ks := l.keys[key]
	if ks == nil {
		ks = &keyState{}
		l.keys[key] = ks
	}
	ks.entries = append(ks.entries, entry{seq: l.seq, dig: d})
	return l.seq
}

// Ack marks a write acknowledged: from this point on, no read of the key
// may ever observe a value older than this entry.
func (l *Ledger) Ack(key string, seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ks := l.keys[key]
	for i := len(ks.entries) - 1; i >= 0; i-- {
		if ks.entries[i].seq == seq {
			ks.entries[i].acked = true
			return
		}
	}
}

// Mark returns the current global sequence number — a consistent cut used
// to bracket backup sweeps for restore-time verification.
func (l *Ledger) Mark() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// ReadMarker captures the verification floor for a read about to be issued:
// the sequence of the key's last acknowledged write (ok=false when nothing
// has been acknowledged yet). Capturing the marker BEFORE the read begins
// makes the check sound under concurrency: any commit acknowledged after
// capture only widens what the read is allowed to return.
func (l *Ledger) ReadMarker(key string) (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ks := l.keys[key]
	if ks == nil {
		return 0, false
	}
	for i := len(ks.entries) - 1; i >= 0; i-- {
		if ks.entries[i].acked {
			return ks.entries[i].seq, true
		}
	}
	return 0, false
}

// VerifyRead judges a completed read against the marker captured before it
// was issued. The rules:
//
//   - found: the value's digest must match the marker entry or any later
//     entry (acked or maybe). A match against an entry OLDER than the
//     marker is a lost acknowledged commit; an unknown digest is
//     corruption. Both are violations.
//   - not found: a violation iff a write had been acknowledged (marker
//     exists) — an acknowledged key can never vanish.
func (l *Ledger) VerifyRead(key string, marker uint64, hadMarker bool, val []byte, found bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ks := l.keys[key]
	if !found {
		if hadMarker {
			return fmt.Errorf("key %s: acknowledged write (seq %d) not found", key, marker)
		}
		return nil
	}
	d := digestOf(val)
	if ks == nil {
		return fmt.Errorf("key %s: read returned a value never written", key)
	}
	for i := len(ks.entries) - 1; i >= 0; i-- {
		e := ks.entries[i]
		if e.dig != d {
			continue
		}
		if !hadMarker || e.seq >= marker {
			return nil
		}
		// The digest matches only entries below the floor: a committed
		// write was lost. Distinguish from the duplicate-payload case by
		// scanning the remainder for an at-or-above-floor match.
		for j := i - 1; j >= 0; j-- {
			if ks.entries[j].dig == d && ks.entries[j].seq >= marker {
				return nil
			}
		}
		return fmt.Errorf("key %s: stale value (seq %d) observed after ack of seq %d", key, e.seq, marker)
	}
	return fmt.Errorf("key %s: checksum mismatch — value matches no write ever attempted", key)
}

// VerifyRestored judges a key read from a point-in-time restore bracketed
// by ledger marks s0 (taken when the backup sweep started) and s1 (taken
// when the restore point was stamped). The restored value must be one of:
//
//   - the floor: the last write acknowledged at or before s0;
//   - any write attempted in (s0, s1] — commits racing the sweep may or
//     may not have made the cut;
//   - any UNACKNOWLEDGED write with seq ≤ s1: a deadline-detached commit
//     keeps shipping asynchronously after its caller gave up, so its bytes
//     can surface in any backup taken after it was begun.
//
// Values begun after s1 can never appear (the sweep had finished), an
// acknowledged-then-superseded value older than the floor can never
// reappear (both were durable before the sweep), and the floor itself can
// never be missing.
func (l *Ledger) VerifyRestored(key string, s0, s1 uint64, val []byte, found bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ks := l.keys[key]
	var floor *entry
	if ks != nil {
		for i := len(ks.entries) - 1; i >= 0; i-- {
			e := ks.entries[i]
			if e.acked && e.seq <= s0 {
				floor = &ks.entries[i]
				break
			}
		}
	}
	if !found {
		if floor != nil {
			return fmt.Errorf("key %s: write acked before backup (seq %d) missing after restore", key, floor.seq)
		}
		return nil
	}
	d := digestOf(val)
	if ks == nil {
		return fmt.Errorf("key %s: restore returned a value never written", key)
	}
	for i := range ks.entries {
		e := ks.entries[i]
		if e.dig != d {
			continue
		}
		if floor != nil && e.seq == floor.seq {
			return nil
		}
		if e.seq > s0 && e.seq <= s1 {
			return nil
		}
		if !e.acked && e.seq <= s1 {
			return nil
		}
	}
	return fmt.Errorf("key %s: restored value outside the backup window [floor..s1=%d]", key, s1)
}

// Keys returns every key the ledger has seen (sorted order not guaranteed).
func (l *Ledger) Keys() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.keys))
	for k := range l.keys {
		out = append(out, k)
	}
	return out
}

// Stats summarises ledger volume for scenario reporting.
func (l *Ledger) Stats() (keys int, writes, acked uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ks := range l.keys {
		for _, e := range ks.entries {
			writes++
			if e.acked {
				acked++
			}
		}
	}
	return len(l.keys), writes, acked
}
