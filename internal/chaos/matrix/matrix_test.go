package matrix

import (
	"context"
	"testing"
)

// TestMatrixSlice runs a seeded slice of the matrix end to end — enough to
// exercise the harness machinery (stacks, timelines, ledger verification,
// teardown) inside the regular test suite. The CI-sized campaign lives
// behind `make chaos-matrix-smoke`.
func TestMatrixSlice(t *testing.T) {
	res, err := Run(context.Background(), Config{Seed: 1, Count: 3, Out: testWriter{t}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 3 {
		t.Fatalf("ran %d scenarios, want 3", len(res.Scenarios))
	}
	if !res.Passed() {
		t.Fatalf("matrix slice failed:\n%s", res.Summary())
	}
	for _, s := range res.Scenarios {
		if s.WritesOK == 0 || s.ReadsOK == 0 {
			t.Fatalf("%s: no verified traffic (%d writes, %d reads)", s.Name(), s.WritesOK, s.ReadsOK)
		}
	}
}

// TestMatrixBackupScenario pins the PITR leg: a backup/committers scenario
// must produce a restore window and verify it.
func TestMatrixBackupScenario(t *testing.T) {
	sc := Scenario{Index: 0, Fault: FaultBackup, Stress: StressCommitters, Seed: 11}
	res := runScenario(context.Background(), sc)
	if res.failed() {
		t.Fatalf("backup scenario violations: %v", res.Violations)
	}
	if res.WritesOK == 0 {
		t.Fatal("no acked writes")
	}
}

// TestMatrixOnlyFilter: -only narrows the campaign without changing the draw.
func TestMatrixOnlyFilter(t *testing.T) {
	res, err := Run(context.Background(), Config{Seed: 3, Count: 32, Only: "crash/"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 4 {
		t.Fatalf("filter matched %d scenarios, want 4", len(res.Scenarios))
	}
	for _, s := range res.Scenarios {
		if s.Fault != FaultCrash {
			t.Fatalf("filter leaked %s", s.Name())
		}
	}
	if !res.Passed() {
		t.Fatalf("crash scenarios failed:\n%s", res.Summary())
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

// TestMatrixAutotuneScenario pins the adaptive-control row: the controller
// runs live while a gray-slow replica and a co-tenant flood force it to
// adapt, and every ledger/VDL/recovery invariant must still hold. The heal
// itself asserts the controller stepped, so a pass also proves liveness.
func TestMatrixAutotuneScenario(t *testing.T) {
	sc := Scenario{Index: 0, Fault: FaultAutotune, Stress: StressCommitters, Seed: 17}
	res := runScenario(context.Background(), sc)
	if res.failed() {
		t.Fatalf("autotune scenario violations: %v", res.Violations)
	}
	if res.WritesOK == 0 || res.ReadsOK == 0 {
		t.Fatalf("no verified traffic (%d writes, %d reads)", res.WritesOK, res.ReadsOK)
	}
}
