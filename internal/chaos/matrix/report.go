package matrix

import (
	"fmt"
	"strings"
)

// Results is a whole campaign's verdicts.
type Results struct {
	Seed      int64
	Tier      string
	Count     int
	Scenarios []ScenarioResult
}

// Passed reports whether every scenario ended pass or flaky. Flaky does
// not fail the run — it is a signal for the table, not a verdict against
// the cluster — but Flaky() lets a stricter caller gate on it.
func (r *Results) Passed() bool {
	for _, s := range r.Scenarios {
		if s.Outcome == OutcomeFail {
			return false
		}
	}
	return true
}

// Flaky reports whether any scenario needed its retry to pass.
func (r *Results) Flaky() bool {
	for _, s := range r.Scenarios {
		if s.Outcome == OutcomeFlaky {
			return true
		}
	}
	return false
}

// ReplayCommand is the one-liner that reproduces a scenario: same master
// seed and count keep the matrix draw identical, -only narrows to the
// failing cell.
func (r *Results) ReplayCommand(sc Scenario) string {
	return fmt.Sprintf("go run ./cmd/aurora-chaos -matrix -tier %s -seed %d -count %d -only %s",
		r.Tier, r.Seed, r.Count, sc.Name())
}

// Table renders the scenario × stressor cross-tab as a markdown table.
// Cells aggregate every instance of that cell in the campaign: any fail
// wins, then any flaky, then pass; a dash marks a cell the draw never
// visited. Multi-instance cells carry a ×N count.
func (r *Results) Table() string {
	type cell struct{ pass, flaky, fail int }
	cells := map[FaultKind]map[StressKind]*cell{}
	for _, s := range r.Scenarios {
		row := cells[s.Fault]
		if row == nil {
			row = map[StressKind]*cell{}
			cells[s.Fault] = row
		}
		c := row[s.Stress]
		if c == nil {
			c = &cell{}
			row[s.Stress] = c
		}
		switch s.Outcome {
		case OutcomeFail:
			c.fail++
		case OutcomeFlaky:
			c.flaky++
		default:
			c.pass++
		}
	}
	var b strings.Builder
	b.WriteString("| fault \\ stressor |")
	for _, st := range Stressors {
		fmt.Fprintf(&b, " %s |", st)
	}
	b.WriteString("\n|---|")
	for range Stressors {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, f := range Faults {
		fmt.Fprintf(&b, "| %s |", f)
		for _, st := range Stressors {
			c := cells[f][st]
			switch {
			case c == nil:
				b.WriteString(" – |")
			case c.fail > 0:
				fmt.Fprintf(&b, " **FAIL** ×%d |", c.fail)
			case c.flaky > 0:
				fmt.Fprintf(&b, " flaky ×%d |", c.flaky)
			case c.pass > 1:
				fmt.Fprintf(&b, " pass ×%d |", c.pass)
			default:
				b.WriteString(" pass |")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Summary is the campaign's one-paragraph footer: totals, op counts, and a
// replay command for every non-passing scenario.
func (r *Results) Summary() string {
	var pass, flaky, fail, writes, writesOK, reads, readsOK int
	for _, s := range r.Scenarios {
		switch s.Outcome {
		case OutcomeFail:
			fail++
		case OutcomeFlaky:
			flaky++
		default:
			pass++
		}
		writes += s.Writes
		writesOK += s.WritesOK
		reads += s.Reads
		readsOK += s.ReadsOK
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d scenarios: %d pass, %d flaky, %d fail (seed %d, tier %s)\n",
		len(r.Scenarios), pass, flaky, fail, r.Seed, r.Tier)
	fmt.Fprintf(&b, "ops: %d/%d writes acked, %d/%d reads verified\n", writesOK, writes, readsOK, reads)
	for _, s := range r.Scenarios {
		if s.Outcome == OutcomePass {
			continue
		}
		fmt.Fprintf(&b, "%s %s:\n", s.Outcome, s.Name())
		for _, v := range s.Violations {
			fmt.Fprintf(&b, "  - %s\n", v)
		}
		fmt.Fprintf(&b, "  replay: %s\n", r.ReplayCommand(s.Scenario))
	}
	return b.String()
}
