package matrix

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"aurora/internal/chaos"
	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/netsim"
	"aurora/internal/objstore"
	"aurora/internal/quorum"
	"aurora/internal/storage"
	"aurora/internal/volume"
)

// FaultKind names one axis of the scenario matrix: what breaks.
type FaultKind string

const (
	FaultCrash         FaultKind = "crash"          // storage node crash + restart
	FaultWipeRepair    FaultKind = "wipe-repair"    // segment disk destroyed, re-replicated on heal
	FaultAZOutage      FaultKind = "az-down"        // whole availability zone dark
	FaultPacketLoss    FaultKind = "loss"           // 10% of every message silently dropped
	FaultGraySlow      FaultKind = "gray-slow"      // alive-but-stalling replica (gray failure)
	FaultCorruptPage   FaultKind = "corrupt"        // bit flips in a materialized base image
	FaultGrow          FaultKind = "grow"           // live volume growth + rebalancing mid-traffic
	FaultBackup        FaultKind = "backup"         // backup sweep mid-run, PITR verified after
	FaultPageLag       FaultKind = "pagestore-lag"  // log/page split: feed paused, lagging page replica crashed
	FaultNoisyNeighbor FaultKind = "noisy-neighbor" // co-tenant floods the shared hosts; quiet tenant's invariants must hold
	FaultAutotune      FaultKind = "autotune"       // gray-slow replica + co-tenant flood with the adaptive controller live
)

// StressKind names the other axis: how the workload leans on the fault.
type StressKind string

const (
	StressCycles     StressKind = "cycles"     // rapid inject/heal/inject windows
	StressCommitters StressKind = "committers" // many concurrent committing clients
	StressBigTx      StressKind = "bigtx"      // large multi-key, multi-page transactions
	StressDeadline   StressKind = "deadline"   // tight CommitCtx deadlines (detach storms)
)

// Faults and Stressors enumerate the axes in matrix order.
var (
	Faults = []FaultKind{FaultCrash, FaultWipeRepair, FaultAZOutage, FaultPacketLoss,
		FaultGraySlow, FaultCorruptPage, FaultGrow, FaultBackup, FaultPageLag,
		FaultNoisyNeighbor, FaultAutotune}
	Stressors = []StressKind{StressCycles, StressCommitters, StressBigTx, StressDeadline}
)

// Scenario is one cell draw from the matrix: a fault kind crossed with a
// stressor, plus the derived seed that makes its schedule and payloads
// replayable.
type Scenario struct {
	Index  int
	Fault  FaultKind
	Stress StressKind
	Seed   int64
}

// Name is the stable scenario identifier used for -only filters and the
// results table.
func (s Scenario) Name() string { return fmt.Sprintf("%s/%s", s.Fault, s.Stress) }

// Plan draws count scenarios from the matrix: the full cross product is
// shuffled by the master seed, then cycled if count exceeds one sweep. Each
// scenario's own seed is derived from the master seed and its index, so
// replaying with the same -seed and -count reproduces every schedule and
// payload, and -only narrows to one cell without changing the draw.
func Plan(masterSeed int64, count int) []Scenario {
	cells := make([]Scenario, 0, len(Faults)*len(Stressors))
	for _, f := range Faults {
		for _, st := range Stressors {
			cells = append(cells, Scenario{Fault: f, Stress: st})
		}
	}
	rng := rand.New(rand.NewSource(masterSeed))
	rng.Shuffle(len(cells), func(i, j int) { cells[i], cells[j] = cells[j], cells[i] })
	out := make([]Scenario, count)
	for i := range out {
		out[i] = cells[i%len(cells)]
		out[i].Index = i
		out[i].Seed = masterSeed + int64(i)*1315423911 // odd stride: distinct per-index streams
	}
	return out
}

// stack is one scenario's private cluster: its own simulated network,
// 2-PG × 6-replica fleet, writer, and engine. Backup scenarios also get an
// object store for the restore leg; noisy-neighbor scenarios get a shared
// host pool and a second, hostile tenant for the fault to flood.
type stack struct {
	name  string
	net   *netsim.Network
	store *objstore.Store
	fleet *volume.Fleet
	vol   *volume.Client
	db    *engine.DB

	pool     *storage.Pool
	hotFleet *volume.Fleet
	hotVol   *volume.Client
	hotDB    *engine.DB
}

func newStack(sc Scenario) (*stack, error) {
	st := &stack{
		name: fmt.Sprintf("mx%02d", sc.Index),
		net:  netsim.New(netsim.FastLocal()),
	}
	cfg := volume.FleetConfig{
		Name:     st.name,
		Geometry: core.UniformGeometry(2),
		Net:      st.net,
		Disk:     disk.FastLocal(),
	}
	// The autotune fault reuses the noisy-neighbor topology: both tenants
	// share one host pool so the co-tenant flood has somewhere to land.
	needsPool := sc.Fault == FaultNoisyNeighbor || sc.Fault == FaultAutotune
	if needsPool {
		// Both tenants share one 9-host pool with per-tenant QoS: the cap is
		// far above the quiet workload's needs, so only the flood is shaped.
		st.pool = storage.NewPool(storage.PoolConfig{
			Name: st.name + "p", Hosts: 9, Net: st.net, Disk: disk.FastLocal(),
			QoS: storage.QoSConfig{IngestBytesPerSec: 4 << 20},
		})
		cfg.Vol, cfg.Pool = 1, st.pool
	}
	if sc.Fault == FaultBackup {
		// Continuous backups would blur the ledger's restore window: only
		// the scenario's explicit bracketed sweeps may reach the store.
		st.store = objstore.New()
		cfg.Store = st.store
		cfg.BackupInterval = time.Hour
	}
	if sc.Fault == FaultPageLag {
		// The pagestore-lag fault only exists under the log/page role split:
		// its cluster runs the 3+3 mix instead of the classic 4/6.
		cfg.Quorum = quorum.TaurusMix()
	}
	f, err := volume.NewFleet(cfg)
	if err != nil {
		return nil, err
	}
	st.fleet = f
	st.vol = volume.Bootstrap(f, volume.ClientConfig{WriterNode: netsim.NodeID(st.name + "-writer"), WriterAZ: 0})
	// A small cache keeps snapshot readers going to the storage fleet for
	// truth instead of serving everything warm from the writer's memory.
	ecfg := engine.Config{CachePages: 128}
	if sc.Fault == FaultAutotune {
		// The controller must be live and stepping fast enough to re-steer
		// its knobs inside the fault window.
		ecfg.AutoTune = true
		ecfg.AutoTuneInterval = chaos.Scaled(10 * time.Millisecond)
	}
	db, err := engine.Create(st.vol, ecfg)
	if err != nil {
		st.vol.Close()
		return nil, err
	}
	st.db = db
	f.Start()
	if needsPool {
		hf, err := volume.NewFleet(volume.FleetConfig{
			Name: st.name + "hot", Vol: 2, Pool: st.pool,
			Geometry: core.UniformGeometry(2), Net: st.net, Disk: disk.FastLocal(),
		})
		if err != nil {
			st.teardown()
			return nil, err
		}
		st.hotFleet = hf
		st.hotVol = volume.Bootstrap(hf, volume.ClientConfig{WriterNode: netsim.NodeID(st.name + "hot-writer"), WriterAZ: 0})
		hdb, err := engine.Create(st.hotVol, engine.Config{CachePages: 128})
		if err != nil {
			st.hotVol.Close()
			hf.Stop()
			st.hotFleet = nil
			st.teardown()
			return nil, err
		}
		st.hotDB = hdb
		hf.Start()
	}
	return st, nil
}

func (st *stack) teardown() {
	if st.hotDB != nil {
		st.hotDB.Close()
		st.hotFleet.Stop()
	}
	st.db.Close()
	st.fleet.Stop()
}

// window brackets one backup sweep in ledger sequence numbers: s0 at sweep
// start, asOf stamped at sweep end, s1 right after. VerifyRestored judges
// the restored bytes against it.
type window struct {
	s0, s1 uint64
	asOf   time.Time
}

// buildTimeline lays the scenario's fault onto tick offsets. The cycles
// stressor turns one long window into three rapid inject/heal/inject
// windows — each with a freshly drawn fault instance, so a cycling crash
// can hit a different replica every window.
func buildTimeline(sc Scenario, st *stack, led *Ledger, rng *rand.Rand, windows *[]window) *chaos.Timeline {
	if sc.Stress == StressCycles {
		steps := make([]chaos.Step, 0, 3)
		for c := 0; c < 3; c++ {
			steps = append(steps, chaos.Step{Start: 2 + c*3, Duration: 1, Fault: makeFault(sc.Fault, st, led, rng, windows)})
		}
		return &chaos.Timeline{Steps: steps}
	}
	return &chaos.Timeline{Steps: []chaos.Step{{Start: 2, Duration: 6, Fault: makeFault(sc.Fault, st, led, rng, windows)}}}
}

// makeFault draws one concrete fault instance (target node, AZ, page) from
// the scenario's rng.
func makeFault(kind FaultKind, st *stack, led *Ledger, rng *rand.Rand, windows *[]window) chaos.Fault {
	pg := core.PGID(rng.Intn(st.fleet.PGs()))
	replica := rng.Intn(6)
	switch kind {
	case FaultCrash:
		return chaos.CrashNode(st.fleet, pg, replica)
	case FaultWipeRepair:
		return chaos.WipeAndRepairNode(st.fleet, pg, replica)
	case FaultAZOutage:
		return chaos.AZOutage(st.net, netsim.AZ(1+rng.Intn(2))) // never the writer's AZ
	case FaultPacketLoss:
		return chaos.PacketLoss(st.net, 0.10)
	case FaultGraySlow:
		// A same-AZ replica: the preferred read target without
		// health-ordered hedging, so the stall actually lands on the path.
		slow := st.fleet.Node(pg, rng.Intn(2))
		return chaos.GraySlowNode(st.net, slow.NodeID(), chaos.GraySlowDelay())
	case FaultCorruptPage:
		return corruptFault(st, pg, replica)
	case FaultGrow:
		return growFault(st.vol)
	case FaultBackup:
		return backupFault(st, led, windows)
	case FaultPageLag:
		return pageLagFault(st, pg, rng)
	case FaultNoisyNeighbor:
		return noisyNeighborFault(st)
	case FaultAutotune:
		return autotuneFault(st, pg, rng)
	}
	panic("matrix: unknown fault kind " + string(kind))
}

// autotuneFault runs the adaptive control plane through a compound fault: a
// same-AZ replica of the quiet tenant goes gray-slow while the co-tenant
// floods the shared host pool, so the controller is forced to re-steer the
// hedge deadline and batching budgets mid-chaos. The ledger, VDL and
// recovery invariants are judged exactly as in every other scenario —
// adaptation may trade latency but must never cost correctness. Heal
// additionally asserts the controller actually stepped: an autotune row
// whose controller slept would prove nothing.
func autotuneFault(st *stack, pg core.PGID, rng *rand.Rand) chaos.Fault {
	slow := st.fleet.Node(pg, rng.Intn(2))
	flood := noisyNeighborFault(st)
	return chaos.Fault{
		Name: fmt.Sprintf("autotune: gray-slow %s + co-tenant flood", slow.NodeID()),
		Inject: func(ctx context.Context) {
			_ = st.net.SetNodeDelay(slow.NodeID(), chaos.GraySlowDelay())
			flood.Inject(ctx)
		},
		Heal: func(ctx context.Context) error {
			if err := st.net.SetNodeDelay(slow.NodeID(), 0); err != nil {
				return err
			}
			if err := flood.Heal(ctx); err != nil {
				return err
			}
			if st.db.Stats().AutoTuneSteps == 0 {
				return errors.New("adaptive controller never stepped during the fault window")
			}
			return nil
		},
	}
}

// noisyNeighborFault floods the co-tenant sharing the quiet tenant's host
// pool with big multi-page commits for the fault window. The per-tenant QoS
// on every shared host must contain the blast: the quiet tenant's ledger,
// VDL and recovery invariants are judged exactly as in every other
// scenario, with no allowance for the neighbor. Heal stops the flooders and
// waits them out, so the goroutine-leak check also covers this fault.
func noisyNeighborFault(st *stack) chaos.Fault {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	return chaos.Fault{
		Name: "co-tenant bigtx flood",
		Inject: func(context.Context) {
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					val := bytes.Repeat([]byte{0xbb}, 900)
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						opCtx, cancel := context.WithTimeout(context.Background(), chaos.Scaled(3*time.Second))
						tx := st.hotDB.BeginCtx(opCtx)
						ok := true
						for k := 0; k < 4; k++ {
							if err := tx.Put([]byte(fmt.Sprintf("hot%d-k%d", g, k)), val); err != nil {
								tx.Abort()
								ok = false
								break
							}
						}
						if ok {
							_ = tx.CommitCtx(opCtx) // throttled/rejected commits are the point
						}
						cancel()
					}
				}(g)
			}
		},
		Heal: func(context.Context) error {
			close(stop)
			wg.Wait()
			return nil
		},
	}
}

// pageLagFault exercises the split's worst read-path case: the log→page
// feed is paused on every page replica of the victim PG (so the whole page
// tier goes stale while commits keep landing on the log tier), then one of
// the lagging page replicas crashes outright. Reads must hedge to the
// surviving page replicas, which replay the log at read time; acked commits
// never depend on the page tier, so none may be lost. Heal restarts the
// victim, resumes the feeds, and lets the background pull re-converge the
// tier.
func pageLagFault(st *stack, pg core.PGID, rng *rand.Rand) chaos.Fault {
	q := st.fleet.Quorum()
	victim := st.fleet.Node(pg, q.LogV+rng.Intn(q.PageV()))
	pageNodes := func() []*storage.Node {
		var out []*storage.Node
		for _, n := range st.fleet.Replicas(pg) {
			if n.Role() == core.RolePage {
				out = append(out, n)
			}
		}
		return out
	}
	return chaos.Fault{
		Name: fmt.Sprintf("pagestore lag, crash %s", victim.NodeID()),
		Inject: func(context.Context) {
			for _, n := range pageNodes() {
				n.PauseFeed(true)
			}
			victim.Crash()
		},
		Heal: func(context.Context) error {
			victim.Restart()
			for _, n := range pageNodes() {
				n.PauseFeed(false)
			}
			storage.SyncGroup(st.fleet.Replicas(pg))
			return nil
		},
	}
}

// corruptFault flips bits in whatever base image the victim has
// materialized (coalescing first so one exists). The read-path CRC gate
// must refuse the bad image — hedging serves a peer — until the scrubber
// repairs it on heal.
func corruptFault(st *stack, pg core.PGID, replica int) chaos.Fault {
	n := st.fleet.Node(pg, replica)
	return chaos.Fault{
		Name: fmt.Sprintf("corrupt base on %s", n.NodeID()),
		Inject: func(context.Context) {
			n.CoalesceOnce()
			for p := core.PageID(0); p < 64; p++ {
				if n.CorruptPage(p) {
					return
				}
			}
		},
		Heal: func(context.Context) error {
			n.ScrubOnce()
			return nil
		},
	}
}

// growFault starts a live volume growth under traffic; healing waits for
// the rebalance to finish. A second inject while one is running (cycles
// stressor) gets ErrGrowthInProgress, which is the documented benign
// answer, not a failure.
func growFault(vol *volume.Client) chaos.Fault {
	done := make(chan error, 1)
	return chaos.Fault{
		Name: "grow +1 PG",
		Inject: func(context.Context) {
			go func() {
				_, err := vol.Grow(1)
				done <- err
			}()
		},
		Heal: func(ctx context.Context) error {
			select {
			case err := <-done:
				if err != nil && !errors.Is(err, volume.ErrGrowthInProgress) {
					return err
				}
				return nil
			case <-time.After(chaos.Scaled(5 * time.Second)):
				return errors.New("growth did not complete")
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	}
}

// backupFault snapshots every segment to the object store mid-run,
// bracketing the sweep with ledger marks. Ticks run between workload
// rounds (no commits in flight), so the marks are clean cuts; the restore
// leg after the scenario replays the volume as of the sweep and holds the
// bytes to the window rule.
func backupFault(st *stack, led *Ledger, windows *[]window) chaos.Fault {
	return chaos.Fault{
		Name: "backup sweep",
		Inject: func(context.Context) {
			s0 := led.Mark()
			for g := 0; g < st.fleet.PGs(); g++ {
				for _, n := range st.fleet.Replicas(core.PGID(g)) {
					n.BackupNow()
				}
			}
			*windows = append(*windows, window{s0: s0, s1: led.Mark(), asOf: time.Now()})
		},
		Heal: func(context.Context) error { return nil },
	}
}
