package matrix

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"aurora/internal/chaos"
	"aurora/internal/engine"
)

// client is one workload goroutine with a disjoint key set and its own
// deterministic rng. One op per round, dispatched behind a barrier so the
// fault timeline ticks between rounds with nothing in flight.
type client struct {
	id     int
	rng    *rand.Rand
	keys   []string
	db     *engine.DB
	led    *Ledger
	stress StressKind

	writes, writesOK int
	reads, readsOK   int
	violations       []string
}

func newClients(n int, sc Scenario, db *engine.DB, led *Ledger) []*client {
	out := make([]*client, n)
	for i := range out {
		c := &client{
			id:     i,
			rng:    rand.New(rand.NewSource(sc.Seed + int64(i)*7919)),
			db:     db,
			led:    led,
			stress: sc.Stress,
		}
		for k := 0; k < 4; k++ {
			c.keys = append(c.keys, fmt.Sprintf("c%02d-k%02d", i, k))
		}
		out[i] = c
	}
	return out
}

// round runs one op per client concurrently and waits for all of them —
// the barrier that keeps timeline ticks off the commit path.
func round(ctx context.Context, clients []*client) {
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *client) {
			defer wg.Done()
			c.step(ctx)
		}(c)
	}
	wg.Wait()
}

func (c *client) step(ctx context.Context) {
	switch r := c.rng.Float64(); {
	case r < 0.55:
		c.write(ctx)
	case r < 0.80:
		c.read(ctx, false)
	default:
		c.read(ctx, true)
	}
}

// opTimeout bounds one workload op. The deadline stressor runs tight
// enough that commits routinely detach (ErrDeadlineExceeded with the write
// possibly still landing) — exactly the maybe-writes the ledger is built
// to judge.
func (c *client) opTimeout() time.Duration {
	if c.stress == StressDeadline {
		return chaos.Scaled(600 * time.Microsecond)
	}
	return chaos.Scaled(3 * time.Second)
}

func (c *client) randVal(lo, hi int) []byte {
	v := make([]byte, lo+c.rng.Intn(hi-lo+1))
	c.rng.Read(v)
	return v
}

func (c *client) write(ctx context.Context) {
	if c.stress == StressBigTx {
		c.bigTx(ctx)
		return
	}
	key := c.keys[c.rng.Intn(len(c.keys))]
	val := c.randVal(24, 192)
	seq := c.led.Begin(key, val)
	c.writes++
	opCtx, cancel := context.WithTimeout(ctx, c.opTimeout())
	defer cancel()
	tx := c.db.BeginCtx(opCtx)
	if err := tx.Put([]byte(key), val); err != nil {
		tx.Abort()
		return
	}
	if err := tx.CommitCtx(opCtx); err != nil {
		return // maybe: detached or failed, never acknowledged
	}
	c.writesOK++
	c.led.Ack(key, seq)
}

// bigTx writes every one of the client's keys in one transaction with
// payloads large enough to span pages — the multi-page MTR path under
// faults. All-or-nothing acknowledgment: the commit acks every staged
// entry or none.
func (c *client) bigTx(ctx context.Context) {
	opCtx, cancel := context.WithTimeout(ctx, c.opTimeout())
	defer cancel()
	c.writes++
	type staged struct {
		key string
		seq uint64
	}
	tx := c.db.BeginCtx(opCtx)
	var entries []staged
	for _, key := range c.keys {
		val := c.randVal(512, 1000) // near the engine's value cap: spans pages, still legal
		entries = append(entries, staged{key: key, seq: c.led.Begin(key, val)})
		if err := tx.Put([]byte(key), val); err != nil {
			tx.Abort()
			return
		}
	}
	if err := tx.CommitCtx(opCtx); err != nil {
		return
	}
	c.writesOK++
	for _, e := range entries {
		c.led.Ack(e.key, e.seq)
	}
}

// read verifies one of the client's keys: marker captured before the read
// is issued, digest judged after. The snapshot variant bypasses the buffer
// cache and fetches pages from the storage fleet — committed data must be
// durable out there, not merely warm in the writer's memory.
func (c *client) read(ctx context.Context, snapshot bool) {
	key := c.keys[c.rng.Intn(len(c.keys))]
	marker, had := c.led.ReadMarker(key)
	c.reads++
	opCtx, cancel := context.WithTimeout(ctx, chaos.Scaled(3*time.Second))
	defer cancel()
	var (
		val   []byte
		found bool
		err   error
	)
	if snapshot {
		tx := c.db.BeginSnapshotCtx(opCtx)
		val, found, err = tx.Get([]byte(key))
		tx.Abort()
	} else {
		val, found, err = c.db.GetCtx(opCtx, []byte(key))
	}
	if err != nil {
		return // availability blip under an active fault; integrity is the invariant
	}
	c.readsOK++
	if verr := c.led.VerifyRead(key, marker, had, val, found); verr != nil {
		c.violations = append(c.violations, verr.Error())
	}
}

// seed writes every key once before the fault timeline starts, so each key
// has an acknowledged floor for read verification to bite on.
func (c *client) seed(ctx context.Context) {
	for _, key := range c.keys {
		for attempt := 0; attempt < 3; attempt++ {
			val := c.randVal(24, 192)
			seq := c.led.Begin(key, val)
			c.writes++
			opCtx, cancel := context.WithTimeout(ctx, chaos.Scaled(3*time.Second))
			tx := c.db.BeginCtx(opCtx)
			err := tx.Put([]byte(key), val)
			if err == nil {
				err = tx.CommitCtx(opCtx)
			} else {
				tx.Abort()
			}
			cancel()
			if err == nil {
				c.writesOK++
				c.led.Ack(key, seq)
				break
			}
		}
	}
}

// verifyOnce is one full read-back pass over every key through both the
// cached path and a storage-truth snapshot. Integrity violations are
// returned in viols (permanent: retrying cannot unsee wrong bytes); read
// errors are returned in err (transient: the recovery loop retries them
// until its bound expires).
func verifyOnce(ctx context.Context, db *engine.DB, led *Ledger, keys []string) (viols []string, err error) {
	for _, key := range keys {
		marker, had := led.ReadMarker(key)
		opCtx, cancel := context.WithTimeout(ctx, chaos.Scaled(3*time.Second))
		val, found, gerr := db.GetCtx(opCtx, []byte(key))
		if gerr == nil {
			if verr := led.VerifyRead(key, marker, had, val, found); verr != nil {
				viols = append(viols, "cached read: "+verr.Error())
			}
			tx := db.BeginSnapshotCtx(opCtx)
			val, found, gerr = tx.Get([]byte(key))
			tx.Abort()
			if gerr == nil {
				if verr := led.VerifyRead(key, marker, had, val, found); verr != nil {
					viols = append(viols, "snapshot read: "+verr.Error())
				}
			}
		}
		cancel()
		if gerr != nil && err == nil {
			err = fmt.Errorf("key %s: %w", key, gerr)
		}
	}
	return viols, err
}
