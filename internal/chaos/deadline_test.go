package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/netsim"
	"aurora/internal/volume"
)

// TestCommitDeadlineUnderGraySlowNode is the deadline-vs-durability drill:
// with gray-slow storage nodes in the writer's AZ, a commit under a tight
// deadline returns ErrDeadlineExceeded — but the commit is not withdrawn.
// Its MTR still ships and becomes durable (visible to a snapshot read at
// the advanced VDL), the VDL stays monotone throughout, and the hedged
// read path actively cancels losing attempts (HedgeCancels > 0).
func TestCommitDeadlineUnderGraySlowNode(t *testing.T) {
	net := netsim.New(netsim.Datacenter())
	f, err := volume.NewFleet(volume.FleetConfig{
		Name: "dl", Geometry: core.UniformGeometry(1), Net: net, Disk: disk.FastLocal(),
	})
	if err != nil {
		t.Fatal(err)
	}
	vol := volume.Bootstrap(f, volume.ClientConfig{WriterNode: "writer", WriterAZ: 0})
	db, err := engine.Create(vol, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)

	// VDL monotonicity watcher: samples concurrently for the whole test.
	var monotone atomic.Bool
	monotone.Store(true)
	stopMon := make(chan struct{})
	monDone := make(chan struct{})
	go func() {
		defer close(monDone)
		last := vol.VDL()
		for {
			select {
			case <-stopMon:
				return
			default:
			}
			v := vol.VDL()
			if v < last {
				monotone.Store(false)
				return
			}
			last = v
			time.Sleep(SampleInterval())
		}
	}()

	// Seed rows, then turn both same-AZ replicas gray-slow: the writer's
	// locality-ordered read candidates are now the worst choices, and the
	// 4/6 write quorum must resolve through the other two AZs.
	for i := 0; i < 8; i++ {
		if err := db.Put([]byte(fmt.Sprintf("seed%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for _, idx := range []int{0, 1} {
		if err := net.SetNodeDelay(f.Node(0, idx).NodeID(), Scaled(20*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}

	// A commit under a deadline far below the cross-AZ round trip must
	// detach with ErrDeadlineExceeded. The deadline can occasionally fire
	// before the apply (a clean abort: nothing durable, nothing visible),
	// so retry with fresh keys until a detach-after-apply instance is
	// caught — detected by the applied write being visible in the tree.
	var detachedKey []byte
	for attempt := 0; attempt < 20 && detachedKey == nil; attempt++ {
		key := []byte(fmt.Sprintf("detach%02d", attempt))
		ctx, cancel := context.WithTimeout(context.Background(), Scaled(300*time.Microsecond))
		tx := db.Begin()
		if err := tx.Put(key, []byte("survives")); err != nil {
			t.Fatal(err)
		}
		err := tx.CommitCtx(ctx)
		cancel()
		if err == nil {
			continue // quorum beat the deadline; tighten by retrying
		}
		if !errors.Is(err, engine.ErrDeadlineExceeded) {
			t.Fatalf("commit under deadline: got %v, want ErrDeadlineExceeded", err)
		}
		if _, ok, _ := db.Get(key); ok {
			detachedKey = key
		}
	}
	if detachedKey == nil {
		t.Fatal("never caught a detached-after-apply commit")
	}

	// The detached commit must still become durable: a later unbounded
	// commit durably acks, and VDL contiguity puts the detached MTR at or
	// below that CPL — so a snapshot read (served from storage at the
	// durable point, never the writer's cache) must see it.
	if err := db.Put([]byte("after-detach"), []byte("v")); err != nil {
		t.Fatalf("follow-up commit after detach: %v", err)
	}
	snap := db.BeginSnapshot()
	v, ok, err := snap.Get(detachedKey)
	snap.Abort()
	if err != nil || !ok || string(v) != "survives" {
		t.Fatalf("detached commit not durable: val=%q ok=%v err=%v", v, ok, err)
	}

	// Hedged-read load against the gray-slow preferred replicas: winners
	// must actively cancel the losing attempts they raced.
	for i := 0; i < 300; i++ {
		snap := db.BeginSnapshot()
		if _, _, err := snap.Get([]byte(fmt.Sprintf("seed%02d", i%8))); err != nil {
			t.Fatalf("hedged read %d: %v", i, err)
		}
		snap.Abort()
	}
	hs := f.Health().Stats()
	if hs.Hedges == 0 {
		t.Fatal("no hedges launched against gray-slow replicas")
	}
	if hs.HedgeCancels == 0 {
		t.Fatal("winning hedges never canceled their losing attempts")
	}

	close(stopMon)
	<-monDone
	if !monotone.Load() {
		t.Fatal("VDL regressed during the drill")
	}
}
