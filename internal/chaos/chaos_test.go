package chaos

import (
	"testing"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/netsim"
	"aurora/internal/volume"
)

func stack(t *testing.T) (*netsim.Network, *volume.Fleet, *engine.DB) {
	t.Helper()
	net := netsim.New(netsim.FastLocal())
	f, err := volume.NewFleet(volume.FleetConfig{Name: "c", Geometry: core.UniformGeometry(2), Net: net, Disk: disk.FastLocal()})
	if err != nil {
		t.Fatal(err)
	}
	vol := volume.Bootstrap(f, volume.ClientConfig{WriterNode: "writer", WriterAZ: 0})
	db, err := engine.Create(vol, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return net, f, db
}

func TestSingleNodeCrashIsInvisible(t *testing.T) {
	_, f, db := stack(t)
	r := &Runner{DB: db, Faults: []Fault{CrashNode(f, 0, 0), CrashNode(f, 1, 5)}, Seed: 1}
	rep := r.Run()
	if rep.DataErrors != 0 {
		t.Fatalf("data errors: %+v", rep)
	}
	if rep.WritesOK != rep.WritesAttempted {
		t.Fatalf("writes failed under single-node crash: %+v", rep)
	}
	if rep.ReadsOK != rep.ReadsAttempted {
		t.Fatalf("reads failed under single-node crash: %+v", rep)
	}
}

func TestAZOutageWritesContinue(t *testing.T) {
	net, f, db := stack(t)
	r := &Runner{DB: db, Faults: []Fault{AZOutage(net, 2)}, Seed: 2}
	rep := r.Run()
	if rep.DataErrors != 0 {
		t.Fatalf("data errors: %+v", rep)
	}
	if rep.WritesOK != rep.WritesAttempted {
		t.Fatalf("writes failed during AZ outage: %+v", rep)
	}
	_ = f
}

func TestWipeRepairAndSlowDisk(t *testing.T) {
	_, f, db := stack(t)
	r := &Runner{
		DB: db,
		Faults: []Fault{
			WipeAndRepairNode(f, 0, 2),
			SlowDisk(f, 0, 1),
		},
		Seed: 3,
	}
	rep := r.Run()
	if rep.DataErrors != 0 {
		t.Fatalf("data errors: %+v", rep)
	}
	if rep.WritesOK != rep.WritesAttempted {
		t.Fatalf("writes failed: %+v", rep)
	}
	// The wiped segment must be whole again.
	if f.Node(0, 2).SCL() == 0 {
		t.Fatal("repair did not restore the segment")
	}
}

func TestCorruptionHealedByScrub(t *testing.T) {
	_, f, db := stack(t)
	// Materialize some pages first so there is something to corrupt.
	for i := 0; i < 20; i++ {
		if err := db.Put([]byte{byte('a' + i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		f.Node(0, i).CoalesceOnce()
		f.Node(1, i).CoalesceOnce()
	}
	victim := f.Node(0, 0)
	r := &Runner{DB: db, Faults: []Fault{CorruptPage(f, 0, 0, 0)}, Seed: 4}
	rep := r.Run()
	if rep.DataErrors != 0 {
		t.Fatalf("data errors: %+v", rep)
	}
	// The drill must not pass vacuously: the fault's heal runs the scrubber,
	// which must have found the corruption and repaired it from a peer.
	if got := victim.Stats().ScrubsRepaired; got == 0 {
		t.Fatal("scrubber never detected/repaired the injected corruption")
	}
	if got := victim.Stats().CorruptReads; got != 0 {
		// Probe reads route by health ordering and may or may not touch the
		// corrupt replica, but any that did must have been refused, not
		// served — CorruptReads counts refusals, so a nonzero value here is
		// fine; what can never happen is a DataError (checked above). Log
		// for visibility.
		t.Logf("read path refused %d corrupt page reads before scrub", got)
	}
}

// TestGrayRegimeMachineryEngages runs the gray drill end to end: 10% packet
// loss plus a gray-slow same-AZ replica per PG, and one wiped segment left
// for the fleet's self-driven repair monitor. No committed data may be lost
// and every piece of the gray-failure machinery — write redelivery, hedged
// reads, auto repair — must actually engage.
func TestGrayRegimeMachineryEngages(t *testing.T) {
	net := netsim.New(netsim.Datacenter())
	f, err := volume.NewFleet(volume.FleetConfig{Name: "gray", Geometry: core.UniformGeometry(4), Net: net, Disk: disk.FastLocal()})
	if err != nil {
		t.Fatal(err)
	}
	vol := volume.Bootstrap(f, volume.ClientConfig{WriterNode: "gray-writer", WriterAZ: 0})
	db, err := engine.Create(vol, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	f.Start()
	t.Cleanup(f.Stop)

	regime := []Fault{PacketLoss(net, 0.10)}
	for pg := 0; pg < f.PGs(); pg++ {
		slow := f.Node(core.PGID(pg), pg%2)
		regime = append(regime, GraySlowNode(net, slow.NodeID(), GraySlowDelay()))
	}
	faults := []Fault{
		Compose("gray regime", regime...),
		// PG0 holds the btree root, so every probe write ships it a delta:
		// the wiped replica's failure streak is guaranteed to build.
		WipeNode(f, 0, 3),
	}
	r := &Runner{DB: db, Faults: faults, ProbesPerFault: 25, Seed: 11}
	rep := r.Run()

	if rep.DataErrors != 0 {
		t.Fatalf("data errors under gray regime: %+v", rep)
	}
	if rep.WritesOK*100 < rep.WritesAttempted*99 {
		t.Fatalf("write success below 99%%: %+v", rep)
	}
	hs := f.Health().Stats()
	if hs.Retries == 0 {
		t.Fatal("write path never redelivered under 10% packet loss")
	}
	if hs.Hedges == 0 {
		t.Fatal("no read was hedged with a gray-slow replica per PG")
	}
	// The monitor may still be mid-repair when the probes stop.
	deadline := time.Now().Add(SettleTimeout())
	for f.Health().Stats().AutoRepairs == 0 && time.Now().Before(deadline) {
		time.Sleep(PollInterval())
	}
	if f.Health().Stats().AutoRepairs == 0 {
		t.Fatal("wiped segment was never self-repaired")
	}
}
