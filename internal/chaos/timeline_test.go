package chaos

import (
	"context"
	"errors"
	"testing"
)

// fakeFault records inject/heal transitions so schedules can be asserted
// without a cluster.
type fakeFault struct {
	injects int
	heals   int
	active  bool
	healErr error
}

func (ff *fakeFault) fault(name string) Fault {
	return Fault{
		Name: name,
		Inject: func(context.Context) {
			ff.injects++
			ff.active = true
		},
		Heal: func(context.Context) error {
			ff.heals++
			ff.active = false
			return ff.healErr
		},
	}
}

func TestTimelineSchedulesWindows(t *testing.T) {
	var a, b fakeFault
	tl := &Timeline{Steps: []Step{
		{Start: 2, Duration: 3, Fault: a.fault("a")},
		{Start: 4, Duration: 1, Fault: b.fault("b")},
	}}
	ctx := context.Background()
	for tick := 0; tick < tl.End()+1; tick++ {
		tl.Tick(ctx, tick)
		switch {
		case tick < 2:
			if a.active || b.active {
				t.Fatalf("tick %d: premature injection a=%v b=%v", tick, a.active, b.active)
			}
		case tick == 4:
			if !a.active || !b.active {
				t.Fatalf("tick %d: overlap expected, a=%v b=%v", tick, a.active, b.active)
			}
		}
	}
	if a.active || b.active {
		t.Fatal("faults still active after End")
	}
	if a.injects != 1 || a.heals != 1 || b.injects != 1 || b.heals != 1 {
		t.Fatalf("transitions: a=%d/%d b=%d/%d", a.injects, a.heals, b.injects, b.heals)
	}
	if errs := tl.HealAll(ctx); len(errs) != 0 {
		t.Fatalf("heal errors: %v", errs)
	}
}

func TestTimelineRapidCyclesReinject(t *testing.T) {
	var ff fakeFault
	steps := make([]Step, 0, 4)
	for c := 0; c < 4; c++ {
		steps = append(steps, Step{Start: c * 3, Duration: 1, Fault: ff.fault("cycle")})
	}
	tl := &Timeline{Steps: steps}
	for tick := 0; tick <= tl.End(); tick++ {
		tl.Tick(context.Background(), tick)
	}
	if ff.injects != 4 || ff.heals != 4 {
		t.Fatalf("rapid cycles: %d injects, %d heals, want 4/4", ff.injects, ff.heals)
	}
}

func TestTimelineHealAllSkipsPendingAndKeepsErrors(t *testing.T) {
	var a, b fakeFault
	b.healErr = errors.New("no peers")
	tl := &Timeline{Steps: []Step{
		{Start: 0, Duration: 10, Fault: b.fault("active")},
		{Start: 50, Duration: 1, Fault: a.fault("never-started")},
	}}
	tl.Tick(context.Background(), 0)
	errs := tl.HealAll(context.Background())
	if len(errs) != 1 || !errors.Is(errs[0], b.healErr) {
		t.Fatalf("heal errors: %v", errs)
	}
	if a.injects != 0 {
		t.Fatal("HealAll injected a pending step")
	}
	if b.heals != 1 {
		t.Fatalf("active step healed %d times", b.heals)
	}
}

// TestRunnerAbortsOnContext verifies the runner stops its schedule when the
// context fires, heals the in-flight fault on the way out, and reports the
// abort through the Report rather than hanging or panicking.
func TestRunnerAbortsOnContext(t *testing.T) {
	_, f, db := stack(t)
	var ff fakeFault
	ctx, cancel := context.WithCancel(context.Background())
	faults := []Fault{
		ff.fault("first"),
		CrashNode(f, 0, 0), // must never run
	}
	r := &Runner{DB: db, Faults: faults, ProbesPerFault: 1, HealedProbes: 1, Seed: 9}
	cancel() // fire before the run: first fault must not inject
	rep := r.RunCtx(ctx)
	if !rep.Aborted || rep.Err == nil {
		t.Fatalf("report not aborted: %+v", rep)
	}
	if ff.injects != 0 {
		t.Fatal("fault injected after context fired")
	}
	if f.Node(0, 0).Down() {
		t.Fatal("second fault ran despite abort")
	}

	// Now abort mid-fault: the injected fault must be healed on the way out.
	ctx2, cancel2 := context.WithCancel(context.Background())
	healed := false
	r2 := &Runner{DB: db, ProbesPerFault: 3, Seed: 9, Faults: []Fault{{
		Name:   "inject then abort",
		Inject: func(context.Context) { cancel2() },
		Heal:   func(context.Context) error { healed = true; return nil },
	}}}
	rep2 := r2.RunCtx(ctx2)
	if !rep2.Aborted {
		t.Fatalf("mid-fault abort not reported: %+v", rep2)
	}
	if !healed {
		t.Fatal("aborted run left its fault injected")
	}
}
