// Package control is the unified adaptive control plane: every latency
// tuning constant on the write and read paths lives behind a Knob, and one
// trace-fed feedback Controller owns them all. The paper's throughput story
// (§4.2) depends on batching aggressively without letting queueing delay eat
// the latency budget — but the right batch size, in-flight budget, hedge
// deadline and retry backoff depend on the deployment (disk model, network,
// connection count), and hardcoded constants smeared across layers
// systematically miss where time actually goes. Here the knobs are atomic
// variables with static defaults (a deployment that never starts the
// controller behaves exactly as before), and the controller steers them from
// windowed per-stage latency distributions — deltas over ~1s windows, never
// lifetime histograms, so a cold-start outlier cannot pin a knob forever.
package control

import (
	"sync"
	"sync/atomic"
)

// Knob is one adaptively tunable parameter: an atomic current value bounded
// to [Min, Max], with the static default it holds when no controller steers
// it. Hot paths call Load (a single atomic load); only the controller — or a
// test — calls Set. Values are int64; duration-valued knobs store
// microseconds, ratio-valued knobs store percent, by convention recorded in
// the knob's name suffix ("_us", "_pct").
type Knob struct {
	name     string
	def      int64
	min, max int64
	v        atomic.Int64
	adjusts  atomic.Uint64
}

// NewKnob returns a standalone knob (see Panel.Register for the usual path).
func NewKnob(name string, def, min, max int64) *Knob {
	if min > max {
		min, max = max, min
	}
	k := &Knob{name: name, def: clamp(def, min, max), min: min, max: max}
	k.v.Store(k.def)
	return k
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Load returns the knob's current value. This is the hot-path read: one
// atomic load, safe from any goroutine, never blocking.
func (k *Knob) Load() int64 { return k.v.Load() }

// Set moves the knob, clamped to its bounds, and reports whether the stored
// value actually changed. Concurrent with Load by design — the framer or a
// read path may consume the old value for one more iteration, which is
// harmless: every knob bounds a budget, not a correctness invariant.
func (k *Knob) Set(v int64) bool {
	v = clamp(v, k.min, k.max)
	if k.v.Swap(v) == v {
		return false
	}
	k.adjusts.Add(1)
	return true
}

// Reset returns the knob to its static default.
func (k *Knob) Reset() { k.Set(k.def) }

// Name returns the knob's registry name.
func (k *Knob) Name() string { return k.name }

// Default returns the static fallback value.
func (k *Knob) Default() int64 { return k.def }

// Min returns the lower bound.
func (k *Knob) Min() int64 { return k.min }

// Max returns the upper bound.
func (k *Knob) Max() int64 { return k.max }

// Adjusts returns how many times Set changed the stored value — the knob's
// trajectory length, surfaced in Stats so experiments can see the
// controller steering.
func (k *Knob) Adjusts() uint64 { return k.adjusts.Load() }

// KnobState is an observable snapshot of one knob for Stats and benchmarks.
type KnobState struct {
	Name    string
	Value   int64
	Default int64
	Min     int64
	Max     int64
	Adjusts uint64
}

// Panel is a named registry of knobs — the single place every latency
// tuning constant now lives. Layers register their knobs at construction
// (volume: hedge deadline, sender backoff; engine: commit group and
// in-flight budgets); the controller looks them up by name; Stats snapshots
// them all. Future knobs (QoS shares, feed cadence) join by registering.
type Panel struct {
	mu    sync.Mutex
	knobs map[string]*Knob
	order []string
}

// NewPanel returns an empty panel.
func NewPanel() *Panel { return &Panel{knobs: make(map[string]*Knob)} }

// Register adds a knob (or returns the existing one of that name — layers
// recreated against a shared panel, e.g. an engine reopened on a volume
// client, reuse the knob rather than resetting it).
func (p *Panel) Register(name string, def, min, max int64) *Knob {
	p.mu.Lock()
	defer p.mu.Unlock()
	if k, ok := p.knobs[name]; ok {
		return k
	}
	k := NewKnob(name, def, min, max)
	p.knobs[name] = k
	p.order = append(p.order, name)
	return k
}

// Knob returns the named knob, or nil if none is registered.
func (p *Panel) Knob(name string) *Knob {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.knobs[name]
}

// Snapshot returns every knob's state in registration order.
func (p *Panel) Snapshot() []KnobState {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]KnobState, 0, len(p.order))
	for _, name := range p.order {
		k := p.knobs[name]
		out = append(out, KnobState{
			Name: k.name, Value: k.Load(), Default: k.def,
			Min: k.min, Max: k.max, Adjusts: k.Adjusts(),
		})
	}
	return out
}

// Canonical knob names. Every layer registers under these so the controller,
// Stats and experiments agree on identity.
const (
	// KnobCommitGroup is the engine pipeline's max commits per framed group
	// (was the MaxCommitGroup constant's role).
	KnobCommitGroup = "engine.commit_group"
	// KnobInflightGroups is the pipeline's framed-groups-in-flight budget
	// (was the unexported maxInflightGroups constant).
	KnobInflightGroups = "engine.inflight_groups"
	// KnobHedgeMultPct is the hedged-read deadline multiplier in percent of
	// the windowed read-attempt p95 (was HealthConfig.HedgeMult x100).
	KnobHedgeMultPct = "volume.hedge_mult_pct"
	// KnobBackoffCapUS is the sender redelivery backoff ceiling in
	// microseconds (was the deliverMaxBackoff constant).
	KnobBackoffCapUS = "volume.backoff_cap_us"
)

// Static defaults and bounds for the canonical knobs. These are the single
// home of the retired tuning constants: layers register their knobs with
// these values, and without a controller the system behaves exactly as it
// did when they were hardcoded.
const (
	DefaultCommitGroup    = 64
	MinCommitGroup        = 8
	MaxCommitGroup        = 512
	DefaultInflightGroups = 4
	MinInflightGroups     = 1
	MaxInflightGroups     = 64
	DefaultHedgeMultPct   = 300 // 3x the windowed read p95
	MinHedgeMultPct       = 150
	MaxHedgeMultPct       = 800
	DefaultBackoffCapUS   = 2000 // the old 2ms deliverMaxBackoff
	MinBackoffCapUS       = 200
	MaxBackoffCapUS       = 50000
)
