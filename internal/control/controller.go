package control

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Window is one interval's worth of observed signal: delta quantiles over
// the stage histograms since the previous window, never lifetime values.
// Durations are what the trace windows measured; counts gate significance
// (a window with three commits says nothing about queue pressure).
type Window struct {
	// Write-path stages, from the trace stage windows.
	QueueP95 time.Duration // commit.queue: apply→framer wait
	FrameP95 time.Duration // group.frame: framing critical section
	ShipP95  time.Duration // group.ship: quorum ship + VDL wait
	Commits  uint64        // commit.queue observations in the window

	// Read path, from the volume's windowed read-attempt histogram.
	ReadP95   time.Duration // read attempt p95 (windowed)
	Reads     uint64        // read attempts in the window
	Hedges    uint64        // hedges launched in the window
	HedgeWins uint64        // hedges that beat the primary in the window

	// Sender path: observed replica delivery RTT (windowed p95).
	DeliveryP95 time.Duration
	Deliveries  uint64
}

// Config wires a Controller to its signal source and its knobs.
type Config struct {
	// Panel holds the knobs to steer. Knobs the panel lacks are skipped.
	Panel *Panel
	// Gather produces the next window's signal. Called once per interval
	// from the controller goroutine. Required.
	Gather func() Window
	// Interval between control steps. The paper's scale suggests ~1s; the
	// scaled-down simulator defaults to 100ms so short runs still adapt.
	Interval time.Duration
}

// Controller is the single feedback loop that owns every latency knob.
// One goroutine wakes each interval, gathers a windowed signal, and runs
// a deterministic Step. All decision logic lives in Step so tests can
// drive synthetic step-loads without goroutines or clocks.
//
// Stability comes from hysteresis, not gain tuning: multiplicative moves
// are small (×2 up, halve down for budgets; ±25% for deadlines), each
// direction requires a streak of consecutive agreeing windows, and
// low-signal windows (too few observations) reset streaks rather than
// extrapolate. Knob bounds clamp everything, so a misbehaving signal can
// cost performance but never correctness — every knob bounds a budget.
type Controller struct {
	cfg   Config
	group *Knob
	infl  *Knob
	hedge *Knob
	boff  *Knob

	// Hysteresis streaks: consecutive windows agreeing on a direction.
	growStreak   int
	shrinkStreak int

	steps   atomic.Uint64
	adjusts atomic.Uint64

	cancel context.CancelFunc
	done   chan struct{}
	once   sync.Once
}

// Minimum per-window observation counts below which a signal is ignored.
const (
	minCommitsPerWindow = 16
	minHedgesPerWindow  = 8
	minDeliverPerWindow = 16
)

// Hysteresis thresholds. Queue time is pure wait — a commit sitting in
// commit.queue is throttled by the inflight budget, not doing work — so the
// budgets grow whenever queue p95 is a meaningful fraction of service
// (frame+ship) p95 for growAfter consecutive windows. Ship time is quorum
// RTT the batching knobs cannot reduce, so shrinking is NOT the mirror
// condition: it fires only when the framing critical section itself is both
// expensive in absolute terms (> frameFloor) and exceeds the queueing it
// amortizes — the over-batched regime. Everything between is the dead band
// where the pipeline is balanced and knobs hold still.
const (
	growRatio   = 0.4              // queue wait > 40% of service ⇒ budget-throttled
	frameFloor  = time.Millisecond // framing must genuinely cost before shrinking
	growAfter   = 2
	shrinkAfter = 2
)

// Hedge win-rate bands: if most hedges win, the deadline fires too late
// (primary was doomed long before) — tighten. If almost none win, hedges
// are wasted reads — relax. Between the bands the deadline holds.
const (
	hedgeWinHigh = 0.50
	hedgeWinLow  = 0.05
)

// NewController builds a controller over the panel's knobs. Knobs are
// looked up by their canonical names; a panel missing some knobs yields a
// controller that steers only the ones present.
func NewController(cfg Config) *Controller {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	c := &Controller{cfg: cfg, done: make(chan struct{})}
	if p := cfg.Panel; p != nil {
		c.group = p.Knob(KnobCommitGroup)
		c.infl = p.Knob(KnobInflightGroups)
		c.hedge = p.Knob(KnobHedgeMultPct)
		c.boff = p.Knob(KnobBackoffCapUS)
	}
	return c
}

// Start launches the control loop. ctx cancellation or Stop ends it.
func (c *Controller) Start(ctx context.Context) {
	ctx, c.cancel = context.WithCancel(ctx)
	go c.run(ctx)
}

// Stop halts the control loop and waits for it to exit. Knobs keep their
// last steered values — static behavior resumes only via Reset.
func (c *Controller) Stop() {
	c.once.Do(func() {
		if c.cancel != nil {
			c.cancel()
		}
		<-c.done
	})
}

func (c *Controller) run(ctx context.Context) {
	defer close(c.done)
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.Step(c.cfg.Gather())
		}
	}
}

// Steps returns how many control intervals have run.
func (c *Controller) Steps() uint64 { return c.steps.Load() }

// Adjusts returns how many knob movements the controller has made.
func (c *Controller) Adjusts() uint64 { return c.adjusts.Load() }

// Step runs one deterministic control decision on a window of signal.
// Exported so tests can drive synthetic step-loads directly.
func (c *Controller) Step(w Window) {
	c.steps.Add(1)
	c.stepBatching(w)
	c.stepHedge(w)
	c.stepBackoff(w)
}

// stepBatching grows the commit-group and inflight budgets while queueing
// dominates service, shrinks them while framing dominates, with streak
// hysteresis in both directions.
func (c *Controller) stepBatching(w Window) {
	if c.group == nil && c.infl == nil {
		return
	}
	if w.Commits < minCommitsPerWindow {
		// Idle or trickle traffic: no pressure evidence either way.
		c.growStreak, c.shrinkStreak = 0, 0
		return
	}
	service := w.FrameP95 + w.ShipP95
	if service <= 0 {
		return
	}
	ratio := float64(w.QueueP95) / float64(service)
	switch {
	case ratio > growRatio:
		c.growStreak++
		c.shrinkStreak = 0
		if c.growStreak >= growAfter {
			c.growStreak = 0
			c.bump(c.group, 2.0)
			c.bump(c.infl, 2.0)
		}
	case w.FrameP95 > frameFloor && w.FrameP95 > w.QueueP95:
		c.shrinkStreak++
		c.growStreak = 0
		if c.shrinkStreak >= shrinkAfter {
			c.shrinkStreak = 0
			c.bump(c.group, 0.5)
			c.bump(c.infl, 0.5)
		}
	default:
		// Dead band: balanced pipeline, hold still and decay streaks.
		c.growStreak, c.shrinkStreak = 0, 0
	}
}

// stepHedge moves the hedge deadline multiplier against the windowed hedge
// win rate. The deadline itself is mult × windowed read p95, computed at
// the read path; the controller only steers the multiplier.
func (c *Controller) stepHedge(w Window) {
	if c.hedge == nil || w.Hedges < minHedgesPerWindow {
		return
	}
	winRate := float64(w.HedgeWins) / float64(w.Hedges)
	if winRate > hedgeWinHigh {
		c.bump(c.hedge, 0.75) // hedges usually win: deadline too loose
	} else if winRate < hedgeWinLow {
		c.bump(c.hedge, 1.25) // hedges almost never win: wasted reads
	}
}

// stepBackoff eases the sender redelivery backoff ceiling halfway toward
// 4× the observed windowed delivery RTT p95, so retries on a fast network
// stop sleeping for a slow network's worst case and vice versa.
func (c *Controller) stepBackoff(w Window) {
	if c.boff == nil || w.Deliveries < minDeliverPerWindow || w.DeliveryP95 <= 0 {
		return
	}
	target := 4 * w.DeliveryP95.Microseconds()
	cur := c.boff.Load()
	next := cur + (target-cur)/2
	if c.boff.Set(next) {
		c.adjusts.Add(1)
	}
}

// bump multiplies a knob by factor (nil-safe, clamped by the knob).
func (c *Controller) bump(k *Knob, factor float64) {
	if k == nil {
		return
	}
	next := int64(float64(k.Load()) * factor)
	if next < 1 {
		next = 1
	}
	if k.Set(next) {
		c.adjusts.Add(1)
	}
}
