package control

import (
	"context"
	"sync"
	"testing"
	"time"
)

func testPanel() *Panel {
	p := NewPanel()
	p.Register(KnobCommitGroup, 64, 8, 512)
	p.Register(KnobInflightGroups, 4, 1, 64)
	p.Register(KnobHedgeMultPct, 300, 150, 800)
	p.Register(KnobBackoffCapUS, 2000, 200, 50000)
	return p
}

func TestKnobClampAndAdjusts(t *testing.T) {
	k := NewKnob("x", 10, 1, 100)
	if got := k.Load(); got != 10 {
		t.Fatalf("default = %d, want 10", got)
	}
	if !k.Set(500) {
		t.Fatal("Set(500) reported no change")
	}
	if got := k.Load(); got != 100 {
		t.Fatalf("clamped value = %d, want 100", got)
	}
	if k.Set(100) {
		t.Fatal("Set to same value reported a change")
	}
	if !k.Set(-5) {
		t.Fatal("Set(-5) reported no change")
	}
	if got := k.Load(); got != 1 {
		t.Fatalf("clamped value = %d, want 1", got)
	}
	if got := k.Adjusts(); got != 2 {
		t.Fatalf("adjusts = %d, want 2", got)
	}
	k.Reset()
	if got := k.Load(); got != 10 {
		t.Fatalf("after Reset = %d, want 10", got)
	}
}

func TestPanelRegisterIdempotentAndSnapshot(t *testing.T) {
	p := testPanel()
	k1 := p.Knob(KnobCommitGroup)
	k1.Set(128)
	// Re-registering must return the live knob, not reset it.
	k2 := p.Register(KnobCommitGroup, 64, 8, 512)
	if k2 != k1 {
		t.Fatal("Register returned a different knob for an existing name")
	}
	if got := k2.Load(); got != 128 {
		t.Fatalf("re-register reset knob to %d", got)
	}
	snap := p.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d knobs, want 4", len(snap))
	}
	if snap[0].Name != KnobCommitGroup || snap[0].Value != 128 {
		t.Fatalf("snapshot[0] = %+v, want commit_group=128", snap[0])
	}
	if p.Knob("nope") != nil {
		t.Fatal("unknown knob lookup returned non-nil")
	}
}

// queueDominated models an under-batched pipeline: commits pile up waiting
// for the framer while framing and shipping themselves are fast.
func queueDominated() Window {
	return Window{
		QueueP95: 8 * time.Millisecond,
		FrameP95: 500 * time.Microsecond,
		ShipP95:  2 * time.Millisecond,
		Commits:  400,
	}
}

// frameDominated models over-batching: giant groups make framing/shipping
// slow while the queue drains instantly.
func frameDominated() Window {
	return Window{
		QueueP95: 200 * time.Microsecond,
		FrameP95: 3 * time.Millisecond,
		ShipP95:  5 * time.Millisecond,
		Commits:  400,
	}
}

// balanced sits inside the dead band: queue wait is a small fraction of
// service and framing is cheap, so neither direction has evidence.
func balanced() Window {
	return Window{
		QueueP95: 1 * time.Millisecond,
		FrameP95: 500 * time.Microsecond,
		ShipP95:  4 * time.Millisecond,
		Commits:  400,
	}
}

// TestStepLoadConvergence is the satellite's step-load unit test: a
// queue-dominated phase must grow the batching knobs, a frame-dominated
// phase must shrink them back, and a balanced phase must hold them still.
func TestStepLoadConvergence(t *testing.T) {
	p := testPanel()
	c := NewController(Config{Panel: p, Gather: func() Window { return Window{} }})
	group := p.Knob(KnobCommitGroup)
	infl := p.Knob(KnobInflightGroups)

	// Phase 1: queue-dominated step load. Knobs must grow.
	g0, i0 := group.Load(), infl.Load()
	for n := 0; n < 6; n++ {
		c.Step(queueDominated())
	}
	if group.Load() <= g0 || infl.Load() <= i0 {
		t.Fatalf("queue-dominated load did not grow knobs: group %d→%d, inflight %d→%d",
			g0, group.Load(), i0, infl.Load())
	}
	if group.Load() > group.Max() || infl.Load() > infl.Max() {
		t.Fatalf("knobs exceeded bounds: group %d, inflight %d", group.Load(), infl.Load())
	}

	// Phase 2: balanced. Knobs must settle (no movement).
	g1, i1 := group.Load(), infl.Load()
	a1 := c.Adjusts()
	for n := 0; n < 6; n++ {
		c.Step(balanced())
	}
	if group.Load() != g1 || infl.Load() != i1 || c.Adjusts() != a1 {
		t.Fatalf("balanced load moved knobs: group %d→%d, inflight %d→%d, adjusts %d→%d",
			g1, group.Load(), i1, infl.Load(), a1, c.Adjusts())
	}

	// Phase 3: frame-dominated step. Knobs must shrink.
	for n := 0; n < 6; n++ {
		c.Step(frameDominated())
	}
	if group.Load() >= g1 || infl.Load() >= i1 {
		t.Fatalf("frame-dominated load did not shrink knobs: group %d→%d, inflight %d→%d",
			g1, group.Load(), i1, infl.Load())
	}
	if group.Load() < group.Min() || infl.Load() < infl.Min() {
		t.Fatalf("knobs undershot bounds: group %d, inflight %d", group.Load(), infl.Load())
	}

	// Sustained shrink pressure must converge to the floor, not oscillate.
	for n := 0; n < 40; n++ {
		c.Step(frameDominated())
	}
	if group.Load() != group.Min() || infl.Load() != infl.Min() {
		t.Fatalf("sustained shrink did not settle at floor: group %d (min %d), inflight %d (min %d)",
			group.Load(), group.Min(), infl.Load(), infl.Min())
	}
	steady := c.Adjusts()
	for n := 0; n < 10; n++ {
		c.Step(frameDominated())
	}
	if c.Adjusts() != steady {
		t.Fatal("controller kept adjusting after knobs hit their floor")
	}
}

// TestHysteresisSingleWindowNoise verifies one noisy window cannot move a
// knob: the streak requirement demands consecutive agreeing windows, and
// an idle window in between resets the streak.
func TestHysteresisSingleWindowNoise(t *testing.T) {
	p := testPanel()
	c := NewController(Config{Panel: p, Gather: func() Window { return Window{} }})
	group := p.Knob(KnobCommitGroup)
	g0 := group.Load()

	c.Step(queueDominated())
	if group.Load() != g0 {
		t.Fatal("a single queue-dominated window moved the knob")
	}
	// An idle window (below the commit floor) must reset the streak.
	c.Step(Window{Commits: 3, QueueP95: time.Second, FrameP95: time.Microsecond, ShipP95: time.Microsecond})
	c.Step(queueDominated())
	if group.Load() != g0 {
		t.Fatal("streak survived an idle window")
	}
	// Two consecutive windows complete the streak.
	c.Step(queueDominated())
	if group.Load() == g0 {
		t.Fatal("two consecutive pressure windows did not move the knob")
	}
}

func TestHedgeDeadlineControl(t *testing.T) {
	p := testPanel()
	c := NewController(Config{Panel: p, Gather: func() Window { return Window{} }})
	hedge := p.Knob(KnobHedgeMultPct)
	h0 := hedge.Load()

	// Hedges winning most races: deadline too loose, multiplier tightens.
	c.Step(Window{Reads: 100, Hedges: 20, HedgeWins: 15})
	if hedge.Load() >= h0 {
		t.Fatalf("high hedge win rate did not tighten multiplier: %d→%d", h0, hedge.Load())
	}
	// Too few hedges: no evidence, no movement.
	h1 := hedge.Load()
	c.Step(Window{Reads: 100, Hedges: 3, HedgeWins: 3})
	if hedge.Load() != h1 {
		t.Fatal("low-signal hedge window moved the multiplier")
	}
	// Hedges never winning: wasted reads, multiplier relaxes.
	c.Step(Window{Reads: 100, Hedges: 50, HedgeWins: 0})
	if hedge.Load() <= h1 {
		t.Fatalf("zero hedge win rate did not relax multiplier: %d→%d", h1, hedge.Load())
	}
}

func TestBackoffTracksDeliveryRTT(t *testing.T) {
	p := testPanel()
	c := NewController(Config{Panel: p, Gather: func() Window { return Window{} }})
	boff := p.Knob(KnobBackoffCapUS)
	b0 := boff.Load() // 2000µs default

	// Slow replicas: cap eases up toward 4×RTT.
	c.Step(Window{Deliveries: 100, DeliveryP95: 5 * time.Millisecond}) // target 20000µs
	if boff.Load() <= b0 {
		t.Fatalf("slow delivery RTT did not raise backoff cap: %d→%d", b0, boff.Load())
	}
	// Fast replicas: cap eases back down.
	hi := boff.Load()
	for n := 0; n < 10; n++ {
		c.Step(Window{Deliveries: 100, DeliveryP95: 100 * time.Microsecond}) // target 400µs
	}
	if boff.Load() >= hi {
		t.Fatalf("fast delivery RTT did not lower backoff cap: %d→%d", hi, boff.Load())
	}
	if boff.Load() < boff.Min() {
		t.Fatalf("backoff cap undershot floor: %d", boff.Load())
	}
}

// TestControllerLoopStartStop exercises the goroutine lifecycle: the loop
// must gather on its interval and Stop must be idempotent and not hang.
func TestControllerLoopStartStop(t *testing.T) {
	p := testPanel()
	var mu sync.Mutex
	gathers := 0
	c := NewController(Config{
		Panel:    p,
		Interval: time.Millisecond,
		Gather: func() Window {
			mu.Lock()
			gathers++
			mu.Unlock()
			return queueDominated()
		},
	})
	c.Start(context.Background())
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		n := gathers
		mu.Unlock()
		if n >= 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("controller loop never gathered")
		case <-time.After(time.Millisecond):
		}
	}
	c.Stop()
	c.Stop() // idempotent
	if c.Steps() < 3 {
		t.Fatalf("steps = %d, want >= 3", c.Steps())
	}
	// Knobs must have moved under sustained pressure from the live loop.
	if p.Knob(KnobCommitGroup).Load() == p.Knob(KnobCommitGroup).Default() {
		t.Fatal("live loop under sustained pressure never moved the group knob")
	}
}

// TestKnobRace hammers Set/Load/Snapshot concurrently; run under -race this
// is the satellite's knob-vs-hot-path safety check at the package level
// (the engine/volume -race tests cover the integrated paths).
func TestKnobRace(t *testing.T) {
	p := testPanel()
	k := p.Knob(KnobCommitGroup)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			v := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				k.Set(v%512 + 1)
				v += 7
			}
		}(int64(i * 13))
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v := k.Load(); v < k.Min() || v > k.Max() {
					panic("knob value escaped bounds")
				}
				_ = p.Snapshot()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
