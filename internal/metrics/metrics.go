// Package metrics provides the measurement primitives the benchmark
// harness uses to regenerate the paper's tables and figures: latency
// histograms with percentiles (the P50/P95 plots of §6.2), counters, and
// timestamped series (the replica-lag and response-time charts).
package metrics

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter, safe for concurrent
// use. The gray-failure tolerance layer threads its retry, hedge and
// auto-repair counts through Counters so chaos drills can assert the
// machinery actually engaged.
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.n.Load() }

// Histogram collects duration samples and reports percentiles. Beyond the
// reservoir capacity it keeps a uniform random sample, which preserves
// percentile estimates under long runs.
type Histogram struct {
	mu       sync.Mutex
	samples  []time.Duration
	count    uint64
	sum      time.Duration
	max      time.Duration
	capacity int
	rng      *rand.Rand
}

// NewHistogram returns a histogram with the given reservoir capacity
// (<=0 selects 64k samples).
func NewHistogram(capacity int) *Histogram {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Histogram{capacity: capacity, rng: rand.New(rand.NewSource(1))}
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if len(h.samples) < h.capacity {
		h.samples = append(h.samples, d)
		return
	}
	// Reservoir replacement.
	if i := h.rng.Int63n(int64(h.count)); int(i) < h.capacity {
		h.samples[i] = d
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of all samples.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns the p-th percentile (0 < p <= 100).
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Summary renders count/mean/p50/p95/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean().Round(time.Microsecond),
		h.Percentile(50).Round(time.Microsecond),
		h.Percentile(95).Round(time.Microsecond),
		h.Percentile(99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}

// LockFreeHistogram is a histogram safe for use on the hottest paths: a
// fixed array of power-of-two buckets updated with atomic increments only —
// no lock, no allocation, no reservoir sampling. Observations land in the
// bucket of their bit length, so quantiles are exact to within a factor of
// two; the commit pipeline records every commit's latency and every framed
// group's size through it without adding a synchronization point of its own.
type LockFreeHistogram struct {
	buckets [65]atomic.Uint64 // index = bits.Len64(value)
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// Observe records one non-negative value (negative values clamp to zero).
func (h *LockFreeHistogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	h.buckets[bits.Len64(u)].Add(1)
	h.count.Add(1)
	h.sum.Add(u)
	for {
		cur := h.max.Load()
		if u <= cur || h.max.CompareAndSwap(cur, u) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *LockFreeHistogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *LockFreeHistogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *LockFreeHistogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest observation.
func (h *LockFreeHistogram) Max() uint64 { return h.max.Load() }

// Mean returns the arithmetic mean of all observations (0 when empty).
func (h *LockFreeHistogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an estimate of the q-th quantile (0 < q <= 1): the
// geometric midpoint of the bucket where the cumulative count crosses
// q*count. The estimate is exact to within the bucket's factor-of-two
// resolution. Concurrent Observe calls may skew an in-flight snapshot by a
// few samples; that is acceptable for observability.
func (h *LockFreeHistogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i == 0 {
				return 0
			}
			lo := uint64(1) << (i - 1) // smallest value in bucket i
			hi := lo<<1 - 1            // largest value in bucket i
			if m := h.max.Load(); hi > m {
				hi = m
			}
			if hi < lo {
				hi = lo
			}
			return lo + (hi-lo)/2
		}
	}
	return h.max.Load()
}

// QuantileDuration is Quantile for duration-valued histograms.
func (h *LockFreeHistogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// Point is one timestamped observation.
type Point struct {
	At    time.Duration // offset from the series start
	Value float64
}

// Series is an append-only timestamped value sequence.
type Series struct {
	mu     sync.Mutex
	start  time.Time
	points []Point
}

// NewSeries starts a series anchored at now.
func NewSeries() *Series { return &Series{start: time.Now()} }

// Add appends an observation at the current time.
func (s *Series) Add(v float64) {
	s.mu.Lock()
	s.points = append(s.points, Point{At: time.Since(s.start), Value: v})
	s.mu.Unlock()
}

// Points returns a copy of the observations.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Point(nil), s.points...)
}

// Max returns the largest observed value (0 when empty).
func (s *Series) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := 0.0
	for _, p := range s.points {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Mean returns the mean observed value (0 when empty).
func (s *Series) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.points {
		sum += p.Value
	}
	return sum / float64(len(s.points))
}
