package metrics

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// HistSnapshot is a point-in-time copy of a LockFreeHistogram's buckets.
// Subtracting two snapshots yields the distribution of only the
// observations made between them — the delta quantiles the adaptive
// control plane steers on, as opposed to lifetime quantiles that never
// forget cold-start outliers.
type HistSnapshot struct {
	Buckets [65]uint64
	N       uint64
	Total   uint64 // sum of observed values
	Peak    uint64 // lifetime max at snapshot time (not windowed)
}

// Snapshot copies the histogram's current bucket state. Concurrent
// Observe calls may skew the copy by a few samples; acceptable for
// observability.
func (h *LockFreeHistogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.N = h.count.Load()
	s.Total = h.sum.Load()
	s.Peak = h.max.Load()
	return s
}

// Delta returns the distribution observed since prev: this snapshot's
// buckets minus prev's. prev must be an earlier snapshot of the same
// histogram; stale or crossed snapshots clamp at zero rather than wrap.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	var d HistSnapshot
	for i := range s.Buckets {
		if s.Buckets[i] > prev.Buckets[i] {
			d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
		}
	}
	if s.N > prev.N {
		d.N = s.N - prev.N
	}
	if s.Total > prev.Total {
		d.Total = s.Total - prev.Total
	}
	d.Peak = s.Peak
	return d
}

// Quantile estimates the q-th quantile (0 < q <= 1) of the snapshot, with
// the same geometric-midpoint, factor-of-two resolution as
// LockFreeHistogram.Quantile.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.N == 0 {
		return 0
	}
	target := uint64(q * float64(s.N))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= target {
			if i == 0 {
				return 0
			}
			lo := uint64(1) << (i - 1)
			hi := lo<<1 - 1
			if s.Peak > 0 && hi > s.Peak {
				hi = s.Peak
			}
			if hi < lo {
				hi = lo
			}
			return lo + (hi-lo)/2
		}
	}
	return s.Peak
}

// QuantileDuration is Quantile for duration-valued snapshots.
func (s HistSnapshot) QuantileDuration(q float64) time.Duration {
	return time.Duration(s.Quantile(q))
}

// winBank is one window's worth of lock-free bucket counters.
type winBank struct {
	buckets [65]atomic.Uint64
	count   atomic.Uint64
	max     atomic.Uint64
}

func (b *winBank) observe(u uint64) {
	b.buckets[bits.Len64(u)].Add(1)
	b.count.Add(1)
	for {
		cur := b.max.Load()
		if u <= cur || b.max.CompareAndSwap(cur, u) {
			return
		}
	}
}

func (b *winBank) reset() {
	for i := range b.buckets {
		b.buckets[i].Store(0)
	}
	b.count.Store(0)
	b.max.Store(0)
}

// WindowedHistogram keeps power-of-two bucket counts for only the most
// recent ~two window intervals, rotating lazily on observation: the
// current bank fills, the previous bank ages out, anything older is gone.
// Quantile merges both banks, so estimates always reflect between one and
// two intervals of recent traffic and a startup outlier stops influencing
// them one rotation later. This is the fix for hedged-read deadlines
// computed from lifetime P95, and the signal source for the adaptive
// backoff ceiling. Observe is lock-free (atomic adds into the active
// bank); only the rotation itself takes a mutex, at most once per
// interval per caller.
type WindowedHistogram struct {
	interval time.Duration
	now      func() time.Time // injectable for deterministic tests

	active   atomic.Uint32 // index of the current bank
	curStart atomic.Int64  // unix nanos of the current window's start
	rotateMu sync.Mutex
	banks    [2]winBank
}

// NewWindowedHistogram returns a histogram whose memory spans roughly
// interval..2×interval of recent observations (<=0 selects one second).
func NewWindowedHistogram(interval time.Duration) *WindowedHistogram {
	if interval <= 0 {
		interval = time.Second
	}
	w := &WindowedHistogram{interval: interval, now: time.Now}
	w.curStart.Store(w.now().UnixNano())
	return w
}

// maybeRotate advances the window banks if the current interval has
// elapsed. A rotation clears the stale bank and makes it current; an idle
// gap of two or more intervals clears both banks.
func (w *WindowedHistogram) maybeRotate() {
	nowNS := w.now().UnixNano()
	start := w.curStart.Load()
	if nowNS-start < int64(w.interval) {
		return
	}
	w.rotateMu.Lock()
	defer w.rotateMu.Unlock()
	start = w.curStart.Load()
	elapsed := nowNS - start
	if elapsed < int64(w.interval) {
		return // someone else rotated while we waited
	}
	cur := w.active.Load()
	if elapsed >= 2*int64(w.interval) {
		// Idle gap: everything on hand is older than two windows.
		w.banks[cur].reset()
	}
	next := 1 - cur
	w.banks[next].reset()
	w.active.Store(next)
	w.curStart.Store(nowNS)
}

// Observe records one non-negative value into the current window
// (negative values clamp to zero). An observation racing a rotation may
// land in the just-retired bank, where it still counts as recent data.
func (w *WindowedHistogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	w.maybeRotate()
	w.banks[w.active.Load()].observe(uint64(v))
}

// ObserveDuration records a duration in nanoseconds.
func (w *WindowedHistogram) ObserveDuration(d time.Duration) { w.Observe(int64(d)) }

// Count returns the number of observations within the current memory
// span (current + previous window).
func (w *WindowedHistogram) Count() uint64 {
	w.maybeRotate()
	return w.banks[0].count.Load() + w.banks[1].count.Load()
}

// Quantile estimates the q-th quantile (0 < q <= 1) over the current and
// previous windows merged, with factor-of-two bucket resolution.
func (w *WindowedHistogram) Quantile(q float64) uint64 {
	w.maybeRotate()
	var s HistSnapshot
	for b := range w.banks {
		for i := range w.banks[b].buckets {
			s.Buckets[i] += w.banks[b].buckets[i].Load()
		}
		s.N += w.banks[b].count.Load()
		if m := w.banks[b].max.Load(); m > s.Peak {
			s.Peak = m
		}
	}
	return s.Quantile(q)
}

// QuantileDuration is Quantile for duration-valued histograms.
func (w *WindowedHistogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(w.Quantile(q))
}
